type t = int array

let create ~threads =
  if threads <= 0 then invalid_arg "Vector_clock.create: threads must be positive";
  Array.make threads 0

let copy = Array.copy
let get t i = t.(i)
let set t i v = t.(i) <- v
let tick t i = t.(i) <- t.(i) + 1

let join ~into src =
  for i = 0 to Array.length into - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let leq a b =
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let size = Array.length
let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "@[<h><%a>@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (Array.to_list t)
