type epoch = { tid : int; clock : int }

type cell = {
  mutable write : epoch option;
  mutable reads : (int * int) list;
}

type t = (int, cell) Hashtbl.t

let create () = Hashtbl.create 4096

let cell_of t addr =
  let granule = addr lsr 3 in
  match Hashtbl.find_opt t granule with
  | Some cell -> cell
  | None ->
    let cell = { write = None; reads = [] } in
    Hashtbl.replace t granule cell;
    cell

let clear t addr = Hashtbl.remove t (addr lsr 3)
let cells t = Hashtbl.length t
let bytes t = 32 * Hashtbl.length t
