lib/baselines/shadow_memory.mli: Kard_mpk
