lib/baselines/vector_clock.ml: Array Format
