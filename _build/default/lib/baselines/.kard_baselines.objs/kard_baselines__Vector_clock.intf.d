lib/baselines/vector_clock.mli: Format
