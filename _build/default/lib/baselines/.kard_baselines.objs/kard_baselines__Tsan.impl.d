lib/baselines/tsan.ml: Hashtbl Kard_alloc Kard_mpk Kard_sched List Option Shadow_memory Vector_clock
