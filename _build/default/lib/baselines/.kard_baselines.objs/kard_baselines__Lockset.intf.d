lib/baselines/lockset.mli: Kard_mpk Kard_sched
