lib/baselines/tsan.mli: Kard_mpk Kard_sched
