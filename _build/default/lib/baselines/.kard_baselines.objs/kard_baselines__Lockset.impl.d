lib/baselines/lockset.ml: Hashtbl Int Kard_alloc Kard_mpk Kard_sched List Option Set
