lib/baselines/shadow_memory.ml: Hashtbl
