(** An Eraser-style lockset detector (Savage et al., TOCS 1997).

    The classic schedule-insensitive algorithm Kard's ILU scope is
    compared against in section 3.1: each location's candidate lockset
    is intersected with the locks held at every access; an empty
    lockset in the Shared-modified state is reported.  Because it
    ignores whether conflicting accesses can actually be concurrent,
    it reports a superset of ILU — including false alarms that Kard's
    concurrency-aware scope avoids (the test suite demonstrates this
    on a fork-join workload). *)

type state =
  | Virgin
  | Exclusive of int
  | Shared
  | Shared_modified

type warning = {
  addr : Kard_mpk.Page.addr;
  thread : int;
  access : [ `Read | `Write ];
}

type t

val create : Kard_sched.Hooks.env -> t
val hooks : t -> Kard_sched.Hooks.t
val warnings : t -> warning list
val state_of : t -> Kard_mpk.Page.addr -> state
val candidate_lockset : t -> Kard_mpk.Page.addr -> int list

val make : cell:t option ref -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t
