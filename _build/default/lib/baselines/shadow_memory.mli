(** Shadow cells for the happens-before detector.

    One cell per 8-byte granule, FastTrack-style: the last write epoch
    and either a single read epoch or a full read vector. *)

type epoch = { tid : int; clock : int }

type cell = {
  mutable write : epoch option;
  mutable reads : (int * int) list; (* (tid, clock), small-n assoc *)
}

type t

val create : unit -> t
val cell_of : t -> Kard_mpk.Page.addr -> cell
(** The cell covering the address's 8-byte granule (created lazily). *)

val clear : t -> Kard_mpk.Page.addr -> unit
(** Drop the cell covering the address's granule, if it exists
    (no-op, and no allocation, otherwise). *)

val cells : t -> int
val bytes : t -> int
(** Modeled shadow-memory footprint (TSan uses multiple shadow words
    per granule; we charge 32 B per touched granule). *)
