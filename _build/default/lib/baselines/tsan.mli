(** A ThreadSanitizer-style happens-before race detector.

    The comparison baseline of the paper's Table 3: compiler
    instrumentation of {e every} memory access updating FastTrack-ish
    shadow cells, plus vector-clock release/acquire on every lock
    operation.  Costs are charged per access, which is why this
    detector is orders of magnitude slower than Kard on the same
    workloads — and why it also catches non-ILU races. *)

type race = {
  addr : Kard_mpk.Page.addr;
  thread : int;
  access : [ `Read | `Write ];
  prior_thread : int;
  prior_access : [ `Read | `Write ];
  prior_locked : bool;  (** Did the prior side hold any lock? *)
  locked : bool;
}

type t

val create : ?max_threads:int -> Kard_sched.Hooks.env -> t
val hooks : t -> Kard_sched.Hooks.t
val races : t -> race list

val ilu_races : t -> race list
(** Races where at least one side held a lock (for Table 6's
    ILU/non-ILU split). *)

val shadow_cells : t -> int

val make :
  ?max_threads:int -> cell:t option ref -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t
