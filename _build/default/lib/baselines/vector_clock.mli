(** Vector clocks for the happens-before baseline detector. *)

type t

val create : threads:int -> t
(** All components zero. *)

val copy : t -> t
val get : t -> int -> int
val set : t -> int -> int -> unit

val tick : t -> int -> unit
(** Increment the thread's own component. *)

val join : into:t -> t -> unit
(** Pointwise maximum, in place. *)

val leq : t -> t -> bool
(** Pointwise less-or-equal: happens-before ordering. *)

val size : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
