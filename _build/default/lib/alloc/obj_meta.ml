type kind =
  | Heap of int
  | Global of int

type t = {
  id : int;
  base : Kard_mpk.Page.addr;
  size : int;
  reserved : int;
  kind : kind;
  pages : int;
}

let contains t addr = addr >= t.base && addr < t.base + t.size
let offset_of t addr = addr - t.base

let is_heap t =
  match t.kind with
  | Heap _ -> true
  | Global _ -> false

let site t =
  match t.kind with
  | Heap s | Global s -> s

let equal a b = a.id = b.id

let pp fmt t =
  let kind =
    match t.kind with
    | Heap s -> Printf.sprintf "heap@%d" s
    | Global s -> Printf.sprintf "global@%d" s
  in
  Format.fprintf fmt "obj#%d{%s %a +%d}" t.id kind Kard_mpk.Page.pp_addr t.base t.size
