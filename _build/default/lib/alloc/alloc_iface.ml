type stats = {
  allocations : int;
  frees : int;
  global_allocations : int;
  mmap_calls : int;
  ftruncate_calls : int;
  bytes_requested : int;
  bytes_reserved : int;
  recycled : int;
}

let zero_stats =
  { allocations = 0;
    frees = 0;
    global_allocations = 0;
    mmap_calls = 0;
    ftruncate_calls = 0;
    bytes_requested = 0;
    bytes_reserved = 0;
    recycled = 0 }

type t = {
  name : string;
  alloc : site:int -> int -> Obj_meta.t * int;
  alloc_global : site:int -> resident:bool -> int -> Obj_meta.t * int;
  free : Obj_meta.t -> int;
  stats : unit -> stats;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<h>allocs=%d frees=%d globals=%d mmap=%d ftruncate=%d requested=%dB reserved=%dB recycled=%d@]"
    s.allocations s.frees s.global_allocations s.mmap_calls s.ftruncate_calls
    s.bytes_requested s.bytes_reserved s.recycled
