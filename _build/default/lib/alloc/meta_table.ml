module Page = Kard_mpk.Page

type t = {
  by_vpage : (Page.vpage, Obj_meta.t) Hashtbl.t;
  by_id : (int, Obj_meta.t) Hashtbl.t;
}

let create () = { by_vpage = Hashtbl.create 4096; by_id = Hashtbl.create 4096 }

let vpages_of (meta : Obj_meta.t) =
  let first = Page.vpage_of_addr meta.base in
  List.init meta.pages (fun i -> first + i)

let register t meta =
  Hashtbl.replace t.by_id meta.Obj_meta.id meta;
  List.iter (fun vp -> Hashtbl.replace t.by_vpage vp meta) (vpages_of meta)

let unregister t meta =
  Hashtbl.remove t.by_id meta.Obj_meta.id;
  List.iter
    (fun vp ->
      match Hashtbl.find_opt t.by_vpage vp with
      | Some m when Obj_meta.equal m meta -> Hashtbl.remove t.by_vpage vp
      | Some _ | None -> ())
    (vpages_of meta)

let find_vpage t vpage = Hashtbl.find_opt t.by_vpage vpage

let find_addr t addr =
  match find_vpage t (Page.vpage_of_addr addr) with
  | Some meta when Obj_meta.contains meta addr -> Some meta
  | Some _ | None -> None

let find_id t id = Hashtbl.find_opt t.by_id id
let live_count t = Hashtbl.length t.by_id
let iter t f = Hashtbl.iter (fun _ meta -> f meta) t.by_id
