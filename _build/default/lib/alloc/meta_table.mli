(** Address-to-object resolution.

    Because every object lives on its own virtual pages, resolving a
    faulting address only needs a page-granular index; the object's
    base/size then confirm the hit and yield the byte offset. *)

type t

val create : unit -> t

val register : t -> Obj_meta.t -> unit
(** Index the object under every virtual page it spans. *)

val unregister : t -> Obj_meta.t -> unit

val find_addr : t -> Kard_mpk.Page.addr -> Obj_meta.t option
(** The live object containing this exact address, if any. *)

val find_vpage : t -> Kard_mpk.Page.vpage -> Obj_meta.t option
(** Any live object on this page (unique-page allocation guarantees at
    most one). *)

val find_id : t -> int -> Obj_meta.t option
val live_count : t -> int
val iter : t -> (Obj_meta.t -> unit) -> unit
