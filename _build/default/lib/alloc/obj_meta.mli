(** Metadata for one sharable object.

    Kard keeps the base address and size of every allocation so a
    faulting address can be mapped back to its object (section 5.3). *)

type kind =
  | Heap of int   (** allocation-site id *)
  | Global of int (** global-variable id, registered at startup *)

type t = {
  id : int;            (** Unique, monotonically increasing. *)
  base : Kard_mpk.Page.addr;
  size : int;          (** Requested size in bytes. *)
  reserved : int;      (** Bytes actually reserved (granule-rounded). *)
  kind : kind;
  pages : int;         (** Virtual pages the object occupies. *)
}

val contains : t -> Kard_mpk.Page.addr -> bool

val offset_of : t -> Kard_mpk.Page.addr -> int
(** Byte offset of an address within the object; meaningful only when
    {!contains} holds. *)

val is_heap : t -> bool
val site : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
