(** A compact bump allocator standing in for the native heap.

    Baseline and TSan runs use this: many objects share a page, the
    fast path costs a few tens of cycles, and no in-memory file or
    per-object virtual pages exist.  Objects are still registered in
    the {!Meta_table} so object-granular detectors (lockset) can
    resolve addresses. *)

type t

val create :
  ?align:int ->
  Kard_vm.Address_space.t ->
  meta:Meta_table.t ->
  cost:Kard_mpk.Cost_model.t ->
  unit ->
  t
(** [align] defaults to 16, glibc's malloc alignment. *)

val iface : t -> Alloc_iface.t
