(** The allocator interface the simulated machine programs against.

    Two implementations exist: {!Unique_page_alloc} (Kard's
    consolidated unique-page allocator) and {!Native_alloc} (a compact
    bump allocator standing in for glibc malloc, used by Baseline and
    TSan runs).  Every operation reports the cycles it consumed so the
    allocator's own cost shows up in the Alloc column of Table 3. *)

type stats = {
  allocations : int;
  frees : int;
  global_allocations : int;
  mmap_calls : int;
  ftruncate_calls : int;
  bytes_requested : int;
  bytes_reserved : int;   (** Including granule rounding. *)
  recycled : int;         (** Allocations served from the recycle list. *)
}

val zero_stats : stats

type t = {
  name : string;
  alloc : site:int -> int -> Obj_meta.t * int;
  (** [alloc ~site size] returns the object and the cycles consumed. *)
  alloc_global : site:int -> resident:bool -> int -> Obj_meta.t * int;
  (** Register a global variable at startup.  Non-resident globals
      occupy (unique) address space and carry a protection key but are
      never touched, so they do not count toward RSS — Kard relocates
      every global to unique pages, but only accessed pages become
      resident. *)
  free : Obj_meta.t -> int;
  stats : unit -> stats;
}

val pp_stats : Format.formatter -> stats -> unit
