module Page = Kard_mpk.Page
module Cost_model = Kard_mpk.Cost_model
module Address_space = Kard_vm.Address_space

type t = {
  aspace : Address_space.t;
  meta : Meta_table.t;
  cost : Cost_model.t;
  align : int;
  mutable chunk_base : Page.addr; (* current bump chunk *)
  mutable chunk_used : int;
  mutable chunk_size : int;
  mutable next_id : int;
  mutable stats : Alloc_iface.stats;
  (* Size-class freelists: freed blocks are reused, like malloc, so
     allocation churn does not grow the arena. *)
  freelists : (int, (Page.addr * int) list) Hashtbl.t; (* reserved -> (base, pages) *)
}

let chunk_pages = 32 (* 128 KiB arena chunks, like a malloc arena extension *)

let create ?(align = 16) aspace ~meta ~cost () =
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Native_alloc.create: align must be a positive power of two";
  { aspace;
    meta;
    cost;
    align;
    chunk_base = 0;
    chunk_used = 0;
    chunk_size = 0;
    next_id = 0;
    stats = Alloc_iface.zero_stats;
    freelists = Hashtbl.create 16 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let bump_stats t f = t.stats <- f t.stats

let round_align t size = (size + t.align - 1) land lnot (t.align - 1)

let carve t reserved =
  (* Huge requests bypass the bump arena, like malloc's mmap path. *)
  if reserved > chunk_pages * Page.size / 2 then begin
    let pages = Page.pages_spanned 0 reserved in
    let base = Address_space.mmap_anon t.aspace ~pages in
    bump_stats t (fun s -> { s with mmap_calls = s.mmap_calls + 1 });
    (base, pages, t.cost.Cost_model.mmap)
  end
  else begin
    let grow_cost =
      if t.chunk_used + reserved > t.chunk_size then begin
        t.chunk_base <- Address_space.mmap_anon t.aspace ~pages:chunk_pages;
        t.chunk_used <- 0;
        t.chunk_size <- chunk_pages * Page.size;
        bump_stats t (fun s -> { s with mmap_calls = s.mmap_calls + 1 });
        t.cost.Cost_model.mmap
      end
      else 0
    in
    let base = t.chunk_base + t.chunk_used in
    t.chunk_used <- t.chunk_used + reserved;
    (base, Page.pages_spanned base reserved, grow_cost)
  end

let take_free t reserved =
  match Hashtbl.find_opt t.freelists reserved with
  | Some ((base, pages) :: rest) ->
    Hashtbl.replace t.freelists reserved rest;
    Some (base, pages)
  | Some [] | None -> None

let alloc_common t ~site ~kind size =
  if size <= 0 then invalid_arg "Native_alloc.alloc: size must be positive";
  let reserved = round_align t size in
  let base, pages, extra_cost =
    match take_free t reserved with
    | Some (base, pages) -> (base, pages, 0)
    | None -> carve t reserved
  in
  let kind = match kind with `Heap -> Obj_meta.Heap site | `Global -> Obj_meta.Global site in
  let meta = { Obj_meta.id = fresh_id t; base; size; reserved; kind; pages } in
  Meta_table.register t.meta meta;
  bump_stats t (fun s ->
      { s with
        bytes_requested = s.bytes_requested + size;
        bytes_reserved = s.bytes_reserved + reserved });
  (meta, t.cost.Cost_model.malloc + extra_cost)

let alloc t ~site size =
  bump_stats t (fun s -> { s with allocations = s.allocations + 1 });
  alloc_common t ~site ~kind:`Heap size

(* The native data segment packs globals; residency is demand-paged,
   so untouched globals cost nothing here either. *)
let alloc_global t ~site ~resident size =
  bump_stats t (fun s -> { s with global_allocations = s.global_allocations + 1 });
  if resident then alloc_common t ~site ~kind:`Global size
  else begin
    let reserved = (size + t.align - 1) land lnot (t.align - 1) in
    let pages = Page.pages_spanned 0 reserved in
    let base = Address_space.reserve t.aspace ~pages in
    let meta =
      { Obj_meta.id = fresh_id t; base; size; reserved; kind = Obj_meta.Global site; pages }
    in
    Meta_table.register t.meta meta;
    (meta, t.cost.Cost_model.atomic_op)
  end

let free t (meta : Obj_meta.t) =
  Meta_table.unregister t.meta meta;
  bump_stats t (fun s -> { s with frees = s.frees + 1 });
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.freelists meta.Obj_meta.reserved) in
  Hashtbl.replace t.freelists meta.Obj_meta.reserved
    ((meta.Obj_meta.base, meta.Obj_meta.pages) :: existing);
  t.cost.Cost_model.atomic_op

let iface t =
  { Alloc_iface.name = "native-bump";
    alloc = (fun ~site size -> alloc t ~site size);
    alloc_global = (fun ~site ~resident size -> alloc_global t ~site ~resident size);
    free = (fun meta -> free t meta);
    stats = (fun () -> t.stats) }
