lib/alloc/alloc_iface.mli: Format Obj_meta
