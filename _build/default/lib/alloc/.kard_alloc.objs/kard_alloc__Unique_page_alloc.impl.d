lib/alloc/unique_page_alloc.ml: Alloc_iface Hashtbl Kard_mpk Kard_vm Meta_table Obj_meta Option
