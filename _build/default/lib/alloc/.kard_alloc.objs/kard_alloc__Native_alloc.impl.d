lib/alloc/native_alloc.ml: Alloc_iface Hashtbl Kard_mpk Kard_vm Meta_table Obj_meta Option
