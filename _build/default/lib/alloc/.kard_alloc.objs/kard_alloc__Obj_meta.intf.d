lib/alloc/obj_meta.mli: Format Kard_mpk
