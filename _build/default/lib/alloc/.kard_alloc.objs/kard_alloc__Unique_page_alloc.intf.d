lib/alloc/unique_page_alloc.mli: Alloc_iface Kard_mpk Kard_vm Meta_table
