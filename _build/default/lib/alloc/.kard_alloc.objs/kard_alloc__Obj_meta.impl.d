lib/alloc/obj_meta.ml: Format Kard_mpk Printf
