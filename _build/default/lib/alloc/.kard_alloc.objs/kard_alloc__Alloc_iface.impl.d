lib/alloc/alloc_iface.ml: Format Obj_meta
