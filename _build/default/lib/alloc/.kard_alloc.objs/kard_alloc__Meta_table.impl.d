lib/alloc/meta_table.ml: Hashtbl Kard_mpk List Obj_meta
