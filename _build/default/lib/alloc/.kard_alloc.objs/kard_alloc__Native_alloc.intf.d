lib/alloc/native_alloc.mli: Alloc_iface Kard_mpk Kard_vm Meta_table
