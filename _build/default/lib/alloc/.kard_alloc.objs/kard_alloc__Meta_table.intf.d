lib/alloc/meta_table.mli: Kard_mpk Obj_meta
