(** A self-checking wrapper around the Kard detector.

    Wraps the detector's hooks and verifies, on every event, the
    invariants the design promises:

    - outside critical sections a thread's PKRU grants exactly the
      default key, read-only access to the Read-only domain, and
      read-write access to the Not-accessed domain — never a data key;
    - inside a critical section the Not-accessed key is retracted;
    - no key ever has two read-write holders, or a read-write holder
      alongside read-only holders (exclusive write / shared read);
    - protection faults never carry the default key;
    - every object in the Read-write domain is page-tagged with its
      assigned key (sampled at section exits).

    Violations raise {!Violation} immediately, so the failing event is
    on the stack.  The wrapper is pure observation: cycle accounting
    and detection behaviour are unchanged.  Used by the test suite to
    validate the runtime across every workload and scenario; available
    to users as a debugging aid. *)

exception Violation of string

type t

val make :
  ?config:Config.t ->
  cell:Detector.t option ref ->
  vcell:t option ref ->
  Kard_sched.Hooks.env ->
  Kard_sched.Hooks.t
(** Like {!Detector.make}, with invariant checking attached. *)

val checks_performed : t -> int
