(** Potential data-race records (section 5.5).

    A record carries both sides of the conflict: the faulting access
    and the holder(s) of the object's key, with sections, access
    types, thread ids, contexts and a timestamp — the fields the
    paper enumerates for its reports. *)

type side = {
  thread : int;
  section : int option;  (** Synchronization call site, [None] when the
                             access happened outside any section. *)
  access : [ `Read | `Write ];
  ip : int;               (** Op index standing in for the PC. *)
}

type t = {
  obj_id : int;
  obj_base : Kard_mpk.Page.addr;
  offset : int;           (** Faulting offset within the object. *)
  faulting : side;
  holding : side list;    (** Who held the key at fault time. *)
  time : int;
}

val is_ilu : t -> bool
(** At least one side held a lock — the paper's scope (Table 1). *)

val dedupe_key : t -> int * int option * int option * [ `Read | `Write ]
(** Object, faulting section, first holding section, access type:
    records agreeing on this tuple are redundant (section 5.5). *)

val pp : Format.formatter -> t -> unit
