module Pkey = Kard_mpk.Pkey

type decision =
  | Reuse of Pkey.t
  | Fresh of Pkey.t
  | Recycle of Pkey.t * int list
  | Share of Pkey.t

type stats = {
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
}

type t = {
  config : Config.t;
  keys : Pkey.t list;
  mutable stats : stats;
}

let create config =
  if config.Config.data_keys < 1 || config.Config.data_keys > Pkey.data_key_count then
    invalid_arg
      (Printf.sprintf "Key_assign.create: data_keys must be within [1, %d]" Pkey.data_key_count);
  { config;
    keys = List.filteri (fun i _ -> i < config.Config.data_keys) Pkey.data_keys;
    stats = { reuse_events = 0; fresh_events = 0; recycling_events = 0; sharing_events = 0 } }

let available_keys t = t.keys

let disjoint_sections somap ~section holders =
  let my_objects = List.map fst (Section_object_map.objects_of somap ~section) in
  List.for_all
    (fun holder ->
      let their_objects =
        List.map fst (Section_object_map.objects_of somap ~section:holder.Key_section_map.section)
      in
      not (List.exists (fun obj -> List.mem obj their_objects) my_objects))
    holders

let choose t ~ksmap ~domains ~somap ~tid ~section =
  (* Rule 1: reuse a data key the faulting thread already holds with
     read-write permission (granting another thread's read-only key a
     new object would leak writes). *)
  let held =
    List.filter
      (fun (key, perm) ->
        List.mem key t.keys && Kard_mpk.Perm.equal perm Kard_mpk.Perm.Read_write)
      (Key_section_map.held_by ksmap ~tid)
  in
  match held with
  | (key, _) :: _ -> Reuse key
  | [] -> begin
    (* Rule 2: an unassigned key (no holders, protects no object). *)
    let fresh =
      List.find_opt
        (fun key ->
          Key_section_map.holders ksmap key = [] && Domain_state.objects_with_key domains key = [])
        t.keys
    in
    match fresh with
    | Some key -> Fresh key
    | None -> begin
      (* Rule 3a: recycle an unheld key, demoting its objects. *)
      let recyclable =
        if t.config.Config.prefer_recycle then
          let unheld = Key_section_map.unheld_keys ksmap ~among:t.keys in
          let with_load =
            List.map (fun key -> (key, Domain_state.objects_with_key domains key)) unheld
          in
          match List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) with_load with
          | [] -> None
          | (key, objs) :: _ -> Some (key, objs)
        else None
      in
      match recyclable with
      | Some (key, objs) -> Recycle (key, objs)
      | None ->
        (* Rule 3b: share.  Prefer a key whose holding sections touch
           objects disjoint from this section's. *)
        let scored =
          List.map (fun key -> (key, Key_section_map.holders ksmap key)) t.keys
        in
        let disjoint =
          if t.config.Config.share_disjoint_sections then
            List.find_opt (fun (_, holders) -> disjoint_sections somap ~section holders) scored
          else None
        in
        let key =
          match disjoint with
          | Some (key, _) -> key
          | None ->
            (* Least-loaded key as a fallback. *)
            let sorted =
              List.sort
                (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
                scored
            in
            (match sorted with
            | (key, _) :: _ -> key
            | [] -> assert false (* t.keys is non-empty by construction *))
        in
        Share key
    end
  end

let note t decision =
  let s = t.stats in
  t.stats <-
    (match decision with
    | Reuse _ -> { s with reuse_events = s.reuse_events + 1 }
    | Fresh _ -> { s with fresh_events = s.fresh_events + 1 }
    | Recycle _ -> { s with recycling_events = s.recycling_events + 1 }
    | Share _ -> { s with sharing_events = s.sharing_events + 1 })

let stats t = t.stats

let pp_decision fmt = function
  | Reuse key -> Format.fprintf fmt "reuse %a" Pkey.pp key
  | Fresh key -> Format.fprintf fmt "fresh %a" Pkey.pp key
  | Recycle (key, objs) -> Format.fprintf fmt "recycle %a (%d objects)" Pkey.pp key (List.length objs)
  | Share key -> Format.fprintf fmt "share %a" Pkey.pp key
