type t =
  | Rk of int
  | Wk of int

let obj = function
  | Rk id | Wk id -> id

let is_read = function
  | Rk _ -> true
  | Wk _ -> false

let is_write = function
  | Wk _ -> true
  | Rk _ -> false

let compare a b =
  match a, b with
  | Rk x, Rk y | Wk x, Wk y -> Int.compare x y
  | Rk _, Wk _ -> -1
  | Wk _, Rk _ -> 1

let equal a b = compare a b = 0

let pp fmt = function
  | Rk id -> Format.fprintf fmt "rk%d" id
  | Wk id -> Format.fprintf fmt "wk%d" id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
