type t = {
  dedupe : bool;
  mutable live : Race_record.t list; (* newest first *)
  seen : (int * int option * int option * [ `Read | `Write ], unit) Hashtbl.t;
  mutable logged : int;
  mutable redundant : int;
  mutable removed : int;
}

let create ~dedupe () =
  { dedupe; live = []; seen = Hashtbl.create 64; logged = 0; redundant = 0; removed = 0 }

let add t record =
  let key = Race_record.dedupe_key record in
  if t.dedupe && Hashtbl.mem t.seen key then begin
    t.redundant <- t.redundant + 1;
    `Redundant
  end
  else begin
    Hashtbl.replace t.seen key ();
    t.live <- record :: t.live;
    t.logged <- t.logged + 1;
    `Fresh
  end

(* Dedupe keys of pruned records stay in [seen]: interleaving proved
   the section pair touches disjoint bytes, so re-observing the same
   pair must not resurrect the record every round. *)
let remove t records =
  let before = List.length t.live in
  t.live <- List.filter (fun r -> not (List.memq r records)) t.live;
  let removed = before - List.length t.live in
  t.removed <- t.removed + removed;
  removed

let records t = List.rev t.live
let ilu_records t = List.filter Race_record.is_ilu (records t)
let logged t = t.logged
let redundant t = t.redundant
let removed_spurious t = t.removed
