type need =
  | Needs_read
  | Needs_write

type t = {
  by_section : (int, (int, need) Hashtbl.t) Hashtbl.t;
  by_object : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create () = { by_section = Hashtbl.create 64; by_object = Hashtbl.create 256 }

let bucket table key ~size =
  match Hashtbl.find_opt table key with
  | Some b -> b
  | None ->
    let b = Hashtbl.create size in
    Hashtbl.replace table key b;
    b

let record t ~section ~obj_id need =
  let objs = bucket t.by_section section ~size:16 in
  (match Hashtbl.find_opt objs obj_id, need with
  | Some Needs_write, Needs_read -> () (* write need is sticky *)
  | (Some (Needs_read | Needs_write) | None), _ -> Hashtbl.replace objs obj_id need);
  Hashtbl.replace (bucket t.by_object obj_id ~size:8) section ()

let objects_of t ~section =
  match Hashtbl.find_opt t.by_section section with
  | Some objs -> Hashtbl.fold (fun obj_id need acc -> (obj_id, need) :: acc) objs []
  | None -> []

let need_of t ~section ~obj_id =
  match Hashtbl.find_opt t.by_section section with
  | Some objs -> Hashtbl.find_opt objs obj_id
  | None -> None

let sections_touching t ~obj_id =
  match Hashtbl.find_opt t.by_object obj_id with
  | Some sections -> Hashtbl.fold (fun section () acc -> section :: acc) sections []
  | None -> []

let sections_reading t ~obj_id =
  List.filter
    (fun section -> need_of t ~section ~obj_id = Some Needs_read)
    (sections_touching t ~obj_id)

let forget_object t ~obj_id =
  (match Hashtbl.find_opt t.by_object obj_id with
  | Some sections ->
    Hashtbl.iter
      (fun section () ->
        match Hashtbl.find_opt t.by_section section with
        | Some objs -> Hashtbl.remove objs obj_id
        | None -> ())
      sections
  | None -> ());
  Hashtbl.remove t.by_object obj_id

let section_count t = Hashtbl.length t.by_section

let entry_count t =
  Hashtbl.fold (fun _ objs acc -> acc + Hashtbl.length objs) t.by_section 0

let pp_need fmt = function
  | Needs_read -> Format.pp_print_string fmt "r"
  | Needs_write -> Format.pp_print_string fmt "w"
