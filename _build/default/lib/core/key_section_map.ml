module Pkey = Kard_mpk.Pkey
module Perm = Kard_mpk.Perm

type holder = {
  tid : int;
  perm : Perm.t;
  section : int;
  lock : int;
}

type t = {
  holding : (int, holder list) Hashtbl.t;            (* key -> holders *)
  last_release : (int, int * holder) Hashtbl.t;      (* key -> time, who *)
  last_release_by : (int * int, int * holder) Hashtbl.t; (* key, tid -> time, who *)
  section_refs : (int, int) Hashtbl.t;               (* section -> live holdings *)
}

let create () =
  { holding = Hashtbl.create 16;
    last_release = Hashtbl.create 16;
    last_release_by = Hashtbl.create 32;
    section_refs = Hashtbl.create 64 }

let holders t key = Option.value ~default:[] (Hashtbl.find_opt t.holding (Pkey.to_int key))

let other_holders t key ~tid = List.filter (fun h -> h.tid <> tid) (holders t key)

let write_holder t key =
  List.find_opt (fun h -> Perm.equal h.perm Perm.Read_write) (holders t key)

let held_by t ~tid =
  Hashtbl.fold
    (fun k hs acc ->
      match List.find_opt (fun h -> h.tid = tid) hs with
      | Some h -> (Pkey.of_int k, h.perm) :: acc
      | None -> acc)
    t.holding []

let can_acquire t key ~tid perm =
  let others = other_holders t key ~tid in
  match perm with
  | Perm.Read_write -> others = []
  | Perm.Read_only -> not (List.exists (fun h -> Perm.equal h.perm Perm.Read_write) others)
  | Perm.No_access -> false

let section_ref t section delta =
  let count = Option.value ~default:0 (Hashtbl.find_opt t.section_refs section) + delta in
  if count <= 0 then Hashtbl.remove t.section_refs section
  else Hashtbl.replace t.section_refs section count

let add_holding t key holder =
  let k = Pkey.to_int key in
  let existing = holders t key in
  match List.find_opt (fun h -> h.tid = holder.tid) existing with
  | Some old ->
    (* Upgrade (or idempotent re-acquire): replace the holding. *)
    let rest = List.filter (fun h -> h.tid <> holder.tid) existing in
    Hashtbl.replace t.holding k ({ holder with perm = Perm.join old.perm holder.perm } :: rest)
  | None ->
    Hashtbl.replace t.holding k (holder :: existing);
    section_ref t holder.section 1

let acquire t key holder =
  if not (can_acquire t key ~tid:holder.tid holder.perm) then
    invalid_arg
      (Format.asprintf "Key_section_map.acquire: %a not acquirable by t%d as %a" Pkey.pp key
         holder.tid Perm.pp holder.perm);
  add_holding t key holder

let force_acquire t key holder = add_holding t key holder

let release t key ~tid ~time =
  let k = Pkey.to_int key in
  let existing = holders t key in
  match List.find_opt (fun h -> h.tid = tid) existing with
  | None -> ()
  | Some holder ->
    let rest = List.filter (fun h -> h.tid <> tid) existing in
    if rest = [] then Hashtbl.remove t.holding k else Hashtbl.replace t.holding k rest;
    Hashtbl.replace t.last_release k (time, holder);
    Hashtbl.replace t.last_release_by (k, tid) (time, holder);
    section_ref t holder.section (-1)

let last_release t key = Hashtbl.find_opt t.last_release (Pkey.to_int key)

let last_release_by_other t key ~tid =
  Hashtbl.fold
    (fun (k, releaser) (time, holder) best ->
      if k <> Pkey.to_int key || releaser = tid then best
      else
        match best with
        | Some (best_time, _) when best_time >= time -> best
        | Some _ | None -> Some (time, holder))
    t.last_release_by None

let recently_released t key ~now ~window =
  match last_release t key with
  | Some (time, _) -> now - time <= window
  | None -> false

let unheld_keys t ~among = List.filter (fun key -> holders t key = []) among

let active_sections t = Hashtbl.fold (fun section _ acc -> section :: acc) t.section_refs []

let is_section_active t ~section = Hashtbl.mem t.section_refs section
