(** Software per-object keys: the fallback of section 8.

    When effective key assignment would otherwise share a hardware key
    (the one false-negative source), Kard can instead move the object
    into a software-protected pool: the object's pages are tagged with
    a reserved hardware key that no thread is ever granted, so {e
    every} access faults, and the handler enforces the key-enforced
    access rules purely in software — with one virtual key per object,
    so there is no limit and no sharing.  The price is a fault per
    access to pooled objects, the "significant performance cost" the
    paper attributes to software memory protection. *)

type t

type verdict =
  | Soft_ok        (** Access permitted; let it through once. *)
  | Soft_conflict of Key_section_map.holder list
      (** Conflicting software-key holders (a potential race). *)

val create : unit -> t

val add_object : t -> obj_id:int -> unit
(** Move an object into the software pool. *)

val mem : t -> obj_id:int -> bool

val access :
  t -> obj_id:int -> tid:int -> section:int option -> lock:int option ->
  access:[ `Read | `Write ] -> verdict
(** Apply the shared-read / exclusive-write rules with the thread's
    current section: in-section accesses acquire the object's virtual
    key (upgrading read to write as needed); outside-section accesses
    only check for conflicts. *)

val release_thread : t -> tid:int -> time:int -> unit
(** Drop every virtual key the thread holds (on section exit). *)

val pooled : t -> int
val pp : Format.formatter -> t -> unit
