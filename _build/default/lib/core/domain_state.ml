module Pkey = Kard_mpk.Pkey

type domain =
  | Not_accessed
  | Read_only
  | Read_write of Pkey.t

type t = {
  domains : (int, domain) Hashtbl.t;
  by_key : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* data key -> obj set *)
  mutable migrations : int;
}

let create () = { domains = Hashtbl.create 256; by_key = Hashtbl.create 16; migrations = 0 }

let domain_of t ~obj_id =
  match Hashtbl.find_opt t.domains obj_id with
  | Some d -> d
  | None -> Not_accessed

let key_bucket t key =
  let k = Pkey.to_int key in
  match Hashtbl.find_opt t.by_key k with
  | Some bucket -> bucket
  | None ->
    let bucket = Hashtbl.create 16 in
    Hashtbl.replace t.by_key k bucket;
    bucket

let detach t ~obj_id =
  match Hashtbl.find_opt t.domains obj_id with
  | Some (Read_write key) -> Hashtbl.remove (key_bucket t key) obj_id
  | Some (Not_accessed | Read_only) | None -> ()

let set t ~obj_id domain =
  let before = domain_of t ~obj_id in
  if before <> domain then begin
    detach t ~obj_id;
    Hashtbl.replace t.domains obj_id domain;
    (match domain with
    | Read_write key -> Hashtbl.replace (key_bucket t key) obj_id ()
    | Not_accessed | Read_only -> ());
    t.migrations <- t.migrations + 1
  end

let forget t ~obj_id =
  detach t ~obj_id;
  Hashtbl.remove t.domains obj_id

let objects_with_key t key =
  match Hashtbl.find_opt t.by_key (Pkey.to_int key) with
  | Some bucket -> Hashtbl.fold (fun obj_id () acc -> obj_id :: acc) bucket []
  | None -> []

let count_in t which =
  Hashtbl.fold
    (fun _ domain acc ->
      match which, domain with
      | `Not_accessed, Not_accessed | `Read_only, Read_only | `Read_write, Read_write _ ->
        acc + 1
      | (`Not_accessed | `Read_only | `Read_write), _ -> acc)
    t.domains 0

let migrations t = t.migrations
let tracked t = Hashtbl.length t.domains

let pp_domain fmt = function
  | Not_accessed -> Format.pp_print_string fmt "not-accessed"
  | Read_only -> Format.pp_print_string fmt "read-only"
  | Read_write key -> Format.fprintf fmt "read-write(%a)" Pkey.pp key
