module K = Key_sets

type frame = { saved : K.Set.t; section : int }

type thread_state = {
  mutable held : K.Set.t;    (* K(t) *)
  mutable frames : frame list;
}

type t = {
  threads : (int, thread_state) Hashtbl.t;
  key_holders : (K.t, int list) Hashtbl.t;  (* key -> holder multiset *)
  kr_s : (int, K.Set.t) Hashtbl.t;      (* KR(s) *)
  kw_s : (int, K.Set.t) Hashtbl.t;      (* KW(s) *)
  universe : (int, unit) Hashtbl.t;     (* objects seen *)
}

type event =
  | Enter of { thread : int; section : int }
  | Exit of { thread : int }
  | Read of { thread : int; obj : int }
  | Write of { thread : int; obj : int }

type race = {
  thread : int;
  obj : int;
  access : [ `Read | `Write ];
  holders : int list;
  in_section : bool;
}

let create () =
  { threads = Hashtbl.create 16;
    key_holders = Hashtbl.create 64;
    kr_s = Hashtbl.create 16;
    kw_s = Hashtbl.create 16;
    universe = Hashtbl.create 64 }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st = { held = K.Set.empty; frames = [] } in
    Hashtbl.replace t.threads tid st;
    st

let holders t key = Option.value ~default:[] (Hashtbl.find_opt t.key_holders key)

let other_holders t key ~tid = List.filter (fun h -> h <> tid) (holders t key)

let add_holder t key tid = Hashtbl.replace t.key_holders key (tid :: holders t key)

let remove_holder t key tid =
  let rec drop_one = function
    | [] -> []
    | h :: rest -> if h = tid then rest else h :: drop_one rest
  in
  match drop_one (holders t key) with
  | [] -> Hashtbl.remove t.key_holders key
  | hs -> Hashtbl.replace t.key_holders key hs

let kr_of_section t section = Option.value ~default:K.Set.empty (Hashtbl.find_opt t.kr_s section)
let kw_of_section t section = Option.value ~default:K.Set.empty (Hashtbl.find_opt t.kw_s section)

let see_object t obj = Hashtbl.replace t.universe obj ()

let in_section st =
  match st.frames with
  | [] -> None
  | frame :: _ -> Some frame.section

(* A thread may claim rk_o when no other thread holds wk_o; it may
   claim wk_o when no other thread holds wk_o or rk_o (section 4). *)
let can_acquire t ~tid key =
  match key with
  | K.Rk obj -> other_holders t (K.Wk obj) ~tid = []
  | K.Wk obj -> other_holders t (K.Wk obj) ~tid = [] && other_holders t (K.Rk obj) ~tid = []

let acquire t st ~tid key =
  if not (K.Set.mem key st.held) then begin
    add_holder t key tid;
    st.held <- K.Set.add key st.held
  end

let enter t ~tid ~section =
  let st = thread_state t tid in
  st.frames <- { saved = st.held; section } :: st.frames;
  (* Proactive acquisition: the subset of KR(s) whose write key is not
     exclusively held, and the subset of KW(s) that is acquirable
     (Algorithm 1 line 4). *)
  K.Set.iter
    (fun key -> if can_acquire t ~tid key then acquire t st ~tid key)
    (kr_of_section t section);
  K.Set.iter
    (fun key -> if can_acquire t ~tid key then acquire t st ~tid key)
    (kw_of_section t section)

let exit t ~tid =
  let st = thread_state t tid in
  match st.frames with
  | [] -> invalid_arg (Printf.sprintf "Algorithm: thread %d exits with no open section" tid)
  | frame :: rest ->
    let released = K.Set.diff st.held frame.saved in
    K.Set.iter (fun key -> remove_holder t key tid) released;
    st.held <- frame.saved;
    st.frames <- rest

let update_section_sets t ~section key =
  match key with
  | K.Rk obj ->
    (* Record rk_o in KR(s) unless the section already writes o
       (Algorithm 1 lines 17-18). *)
    let kw = kw_of_section t section in
    if not (K.Set.mem (K.Wk obj) kw) then
      Hashtbl.replace t.kr_s section (K.Set.add key (kr_of_section t section))
  | K.Wk obj ->
    Hashtbl.replace t.kw_s section (K.Set.add key (kw_of_section t section));
    Hashtbl.replace t.kr_s section (K.Set.remove (K.Rk obj) (kr_of_section t section))

let read t ~tid ~obj =
  see_object t obj;
  let st = thread_state t tid in
  if K.Set.mem (K.Rk obj) st.held || K.Set.mem (K.Wk obj) st.held then []
  else
    let wk_holders = other_holders t (K.Wk obj) ~tid in
    if wk_holders <> [] then
      [ { thread = tid; obj; access = `Read; holders = wk_holders;
          in_section = Option.is_some (in_section st) } ]
    else begin
      (match in_section st with
      | Some section ->
        acquire t st ~tid (K.Rk obj);
        update_section_sets t ~section (K.Rk obj)
      | None -> ());
      []
    end

let write t ~tid ~obj =
  see_object t obj;
  let st = thread_state t tid in
  if K.Set.mem (K.Wk obj) st.held then []
  else
    let conflicting =
      other_holders t (K.Wk obj) ~tid @ other_holders t (K.Rk obj) ~tid
    in
    if conflicting <> [] then
      [ { thread = tid; obj; access = `Write; holders = conflicting;
          in_section = Option.is_some (in_section st) } ]
    else begin
      (match in_section st with
      | Some section ->
        acquire t st ~tid (K.Wk obj);
        update_section_sets t ~section (K.Wk obj)
      | None -> ());
      []
    end

let step t = function
  | Enter { thread; section } ->
    enter t ~tid:thread ~section;
    []
  | Exit { thread } ->
    exit t ~tid:thread;
    []
  | Read { thread; obj } -> read t ~tid:thread ~obj
  | Write { thread; obj } -> write t ~tid:thread ~obj

let run t events = List.concat_map (step t) events

let keys_of_thread t tid = (thread_state t tid).held

let kr_global t =
  Hashtbl.fold
    (fun key hs acc -> if K.is_read key && hs <> [] then K.Set.add key acc else acc)
    t.key_holders K.Set.empty

let kf t =
  Hashtbl.fold
    (fun obj () acc ->
      let add key acc = if holders t key = [] then K.Set.add key acc else acc in
      add (K.Rk obj) (add (K.Wk obj) acc))
    t.universe K.Set.empty

let section_stack t tid = List.map (fun frame -> frame.section) (thread_state t tid).frames
let objects_seen t = Hashtbl.fold (fun obj () acc -> obj :: acc) t.universe []
