(** The race-record log with automated pruning (section 5.5).

    Redundant faults — same object, same pair of sections, same access
    type — collapse into one record; records that protection
    interleaving proves spurious are removed. *)

type t

val create : dedupe:bool -> unit -> t

val add : t -> Race_record.t -> [ `Fresh | `Redundant ]
(** Log a record, or recognize it as a duplicate of a live record. *)

val remove : t -> Race_record.t list -> int
(** Remove records proven spurious; returns how many were live. *)

val records : t -> Race_record.t list
(** Surviving records, oldest first. *)

val ilu_records : t -> Race_record.t list

val logged : t -> int
val redundant : t -> int
val removed_spurious : t -> int
