(** The pure key-enforced race detection algorithm (Algorithm 1).

    An executable model over abstract threads, critical sections and
    objects, with one idealized key pair per object.  It exists
    separately from the MPK-driven runtime so that the paper's set
    equations can be property-tested directly, and so a differential
    test can compare the runtime against it on random traces.

    One deliberate fix relative to the printed algorithm: line 20 is
    implemented as "some {e other} thread holds [wk_o] or [rk_o]",
    matching the prose of section 4 ("a thread can acquire [wk_o]
    only if no other thread is holding [wk_o] or [rk_o]"); the
    printed formula [rk_o \notin (K_F \cup K_R)] would allow a write
    concurrent with another thread's shared read. *)

type t

type event =
  | Enter of { thread : int; section : int }
  | Exit of { thread : int }  (** Leaves the innermost section. *)
  | Read of { thread : int; obj : int }
  | Write of { thread : int; obj : int }

type race = {
  thread : int;
  obj : int;
  access : [ `Read | `Write ];
  holders : int list;  (** Threads holding a conflicting key. *)
  in_section : bool;   (** Was the faulting thread inside a section? *)
}

val create : unit -> t

val step : t -> event -> race list
(** Apply one event; returns the potential races it triggered.
    @raise Invalid_argument on unbalanced [Exit]. *)

val run : t -> event list -> race list
(** Apply in order, concatenating the races. *)

(** {1 Views of the named sets, for tests} *)

val keys_of_thread : t -> int -> Key_sets.Set.t
(** K(t). *)

val kr_of_section : t -> int -> Key_sets.Set.t
(** KR(s): keys the section needs with read-only permission. *)

val kw_of_section : t -> int -> Key_sets.Set.t
(** KW(s). *)

val kr_global : t -> Key_sets.Set.t
(** Keys currently held read-only by at least one thread. *)

val kf : t -> Key_sets.Set.t
(** Free keys over the universe of objects seen so far. *)

val holders : t -> Key_sets.t -> int list
val section_stack : t -> int -> int list
val objects_seen : t -> int list
