type side = {
  thread : int;
  section : int option;
  access : [ `Read | `Write ];
  ip : int;
}

type t = {
  obj_id : int;
  obj_base : Kard_mpk.Page.addr;
  offset : int;
  faulting : side;
  holding : side list;
  time : int;
}

let side_locked side = Option.is_some side.section

let is_ilu t = side_locked t.faulting || List.exists side_locked t.holding

let dedupe_key t =
  let first_holder =
    match t.holding with
    | [] -> None
    | h :: _ -> h.section
  in
  (t.obj_id, t.faulting.section, first_holder, t.faulting.access)

let pp_side fmt s =
  let section =
    match s.section with
    | Some site -> Printf.sprintf "s%d" site
    | None -> "no-lock"
  in
  Format.fprintf fmt "t%d(%s %s ip=%d)" s.thread
    (match s.access with `Read -> "read" | `Write -> "write")
    section s.ip

let pp fmt t =
  Format.fprintf fmt "@[<h>race obj#%d+%d: %a vs %a @@%d@]" t.obj_id t.offset pp_side
    t.faulting
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_side)
    t.holding t.time
