lib/core/algorithm.ml: Hashtbl Key_sets List Option Printf
