lib/core/validator.ml: Config Detector Domain_state Format Hashtbl Kard_alloc Kard_mpk Kard_sched Key_section_map List Option
