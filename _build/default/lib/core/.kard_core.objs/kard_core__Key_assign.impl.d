lib/core/key_assign.ml: Config Domain_state Format Kard_mpk Key_section_map List Printf Section_object_map
