lib/core/section_object_map.ml: Format Hashtbl List
