lib/core/soft_keys.ml: Format Hashtbl Kard_mpk Key_section_map List Option
