lib/core/section_object_map.mli: Format
