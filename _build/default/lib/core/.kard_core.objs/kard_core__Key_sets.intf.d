lib/core/key_sets.mli: Format Map Set
