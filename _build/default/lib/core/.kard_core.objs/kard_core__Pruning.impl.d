lib/core/pruning.ml: Hashtbl List Race_record
