lib/core/interleave.mli: Race_record
