lib/core/detector.mli: Config Domain_state Kard_sched Key_section_map Race_record Section_object_map
