lib/core/key_assign.mli: Config Domain_state Format Kard_mpk Key_section_map Section_object_map
