lib/core/key_section_map.ml: Format Hashtbl Kard_mpk List Option
