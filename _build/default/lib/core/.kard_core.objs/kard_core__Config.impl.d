lib/core/config.ml: Format Kard_mpk
