lib/core/domain_state.ml: Format Hashtbl Kard_mpk
