lib/core/detector.ml: Config Domain_state Hashtbl Interleave Kard_alloc Kard_mpk Kard_sched Key_assign Key_section_map List Option Printf Pruning Race_record Section_object_map Soft_keys
