lib/core/domain_state.mli: Format Kard_mpk
