lib/core/pruning.mli: Race_record
