lib/core/soft_keys.mli: Format Key_section_map
