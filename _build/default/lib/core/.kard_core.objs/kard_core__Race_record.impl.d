lib/core/race_record.ml: Format Kard_mpk List Option Printf
