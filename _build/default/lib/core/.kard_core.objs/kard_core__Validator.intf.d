lib/core/validator.mli: Config Detector Kard_sched
