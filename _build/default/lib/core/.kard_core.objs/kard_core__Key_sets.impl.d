lib/core/key_sets.ml: Format Int Map Set
