lib/core/interleave.ml: Hashtbl Int List Race_record Set
