lib/core/key_section_map.mli: Kard_mpk
