lib/core/algorithm.mli: Key_sets
