lib/core/race_record.mli: Format Kard_mpk
