(** The Kard runtime: key-enforced race detection over the MPK model.

    Implements the full pipeline of sections 5.2-5.5 as a set of
    {!Kard_sched.Hooks.t} hooks: protection domains, on-demand shared
    object identification, proactive and reactive key acquisition,
    effective key assignment, the custom fault handler with timestamp
    checks, protection interleaving, and automated pruning. *)

type t

type stats = {
  na_faults : int;          (** Identification faults ([k_na]). *)
  ro_faults : int;          (** Write faults on the Read-only domain. *)
  data_faults : int;        (** Faults on Read-write domain keys. *)
  anomalies : int;          (** Faults the handler could not attribute. *)
  identifications_read : int;
  identifications_write : int;
  proactive_acquisitions : int;
  reactive_acquisitions : int;
  demotions : int;          (** Objects bounced back to Not-accessed. *)
  timestamp_rescues : int;  (** Races attributed via the release-time window. *)
  max_active_sections : int;
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
  migrations : int;
  interleavings_started : int;
  records_logged : int;
  records_redundant : int;
  records_pruned_spurious : int;
  soft_fallbacks : int;   (** Objects moved to the software pool. *)
  soft_faults : int;      (** Per-access faults on pooled objects. *)
}

val create : ?config:Config.t -> Kard_sched.Hooks.env -> t

val hooks : t -> Kard_sched.Hooks.t

val races : t -> Race_record.t list
(** Surviving potential data-race records. *)

val ilu_races : t -> Race_record.t list

val stats : t -> stats

val domains : t -> Domain_state.t
val section_object_map : t -> Section_object_map.t
val key_section_map : t -> Key_section_map.t
val config : t -> Config.t

val unique_ro_objects : t -> int
(** Distinct objects ever identified into the Read-only domain
    (Table 3 "Shared objects / RO"). *)

val unique_rw_objects : t -> int
(** Distinct objects ever identified into the Read-write domain. *)

val make :
  ?config:Config.t -> cell:t option ref -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t
(** Convenience for {!Kard_sched.Machine.create}: builds the detector,
    stores it in [cell] for post-run inspection, returns its hooks. *)
