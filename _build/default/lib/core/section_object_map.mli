(** The section-object map (section 5.3, figure 3).

    Tracks, for every critical section (named by its synchronization
    call site), which shared objects it accessed and with what access
    type.  Consulted at section entry for proactive key acquisition
    and by the key-sharing heuristic. *)

type need =
  | Needs_read
  | Needs_write

type t

val create : unit -> t

val record : t -> section:int -> obj_id:int -> need -> unit
(** A write need overrides an earlier read need, never the reverse. *)

val objects_of : t -> section:int -> (int * need) list
val need_of : t -> section:int -> obj_id:int -> need option

val sections_reading : t -> obj_id:int -> int list
(** Sections whose recorded need for the object is read-only. *)

val sections_touching : t -> obj_id:int -> int list

val forget_object : t -> obj_id:int -> unit
(** Called when an object is freed or demoted to Not-accessed. *)

val section_count : t -> int
val entry_count : t -> int
val pp_need : Format.formatter -> need -> unit
