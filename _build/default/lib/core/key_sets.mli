(** Key tokens for the pure key-enforced access algorithm.

    Algorithm 1 names a read-only key [rk_o] and a read-write key
    [wk_o] per object [o]; the idealized algorithm has one per object
    (the MPK implementation multiplexes 13 physical keys — that lives
    in {!Key_assign}). *)

type t =
  | Rk of int  (** Read-only key for object [id]. *)
  | Wk of int  (** Read-write key for object [id]. *)

val obj : t -> int
val is_read : t -> bool
val is_write : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
