(** Protection interleaving (section 5.5, figure 4).

    After a conflict fault on an object, Kard re-protects the object
    with a key of the {e faulting} thread so the original holder's
    next access also faults.  Observing byte offsets from both sides
    lets Kard decide whether the threads really touched the same
    bytes; records with positively disjoint access sets are pruned.
    If a side never faults again (e.g. its critical section was too
    small), no evidence accumulates and the record survives — exactly
    how the paper's pigz false positive escaped pruning. *)

type verdict =
  | Pending              (** Not enough evidence yet. *)
  | Spurious of Race_record.t list
      (** Both sides observed, byte sets disjoint: prune these records. *)
  | Confirmed            (** Overlapping bytes observed: a real conflict. *)

type t

val create : unit -> t

val active : t -> obj_id:int -> bool

val start : t -> obj_id:int -> record:Race_record.t -> unit
(** Begin interleaving for the object, seeded with the faulting
    record (whose offset counts as the faulter's first evidence). *)

val attach_record : t -> obj_id:int -> record:Race_record.t -> unit
(** Associate a further record with an ongoing interleaving. *)

val observe : t -> obj_id:int -> tid:int -> offset:int -> verdict
(** A new faulting access on the object while interleaving. *)

val participants : t -> obj_id:int -> int list

val finish : t -> obj_id:int -> unit
(** Terminate interleaving for the object (a participant left its
    critical section, or a verdict was reached). *)

val finish_thread : t -> tid:int -> int list
(** Terminate every interleaving the thread participates in; returns
    the affected objects. *)

val started_count : t -> int
val pruned_count : t -> int
val confirmed_count : t -> int
val note_pruned : t -> int -> unit
val note_confirmed : t -> unit
