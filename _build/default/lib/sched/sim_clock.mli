(** The virtual cycle clock of a simulated run.

    One global counter advanced by every executed operation; overhead
    percentages in the evaluation are ratios of these counters across
    runs, so the clock is the simulator's stopwatch. *)

type t

val create : unit -> t
val now : t -> int
val advance : t -> int -> unit
val reset : t -> unit
