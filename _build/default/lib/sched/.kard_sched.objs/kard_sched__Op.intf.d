lib/sched/op.mli: Format Kard_alloc Kard_mpk
