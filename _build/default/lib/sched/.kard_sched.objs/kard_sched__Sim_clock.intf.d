lib/sched/sim_clock.mli:
