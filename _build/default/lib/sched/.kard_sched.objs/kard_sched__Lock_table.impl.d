lib/sched/lock_table.ml: Hashtbl Printf Queue
