lib/sched/op.ml: Format Kard_alloc Kard_mpk
