lib/sched/hooks.mli: Kard_alloc Kard_mpk Op
