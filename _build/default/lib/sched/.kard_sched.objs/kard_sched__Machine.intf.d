lib/sched/machine.mli: Format Hooks Kard_alloc Kard_mpk Kard_vm Program Schedule
