lib/sched/schedule.ml: Array Format Int List Random
