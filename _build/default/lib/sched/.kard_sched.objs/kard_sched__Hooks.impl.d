lib/sched/hooks.ml: Kard_alloc Kard_mpk Op
