lib/sched/lock_table.mli:
