lib/sched/program.mli: Op
