lib/sched/program.ml: List Op
