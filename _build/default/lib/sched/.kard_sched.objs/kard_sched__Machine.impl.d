lib/sched/machine.ml: Array Format Hashtbl Hooks Kard_alloc Kard_mpk Kard_vm List Lock_table Op Option Printf Program Schedule Sim_clock
