lib/sched/sim_clock.ml:
