(** Mutex state for the simulated machine.

    Non-reentrant POSIX-style mutexes with FIFO wakeup.  Lock ids are
    plain ints chosen by the workload. *)

type t

val create : unit -> t

type acquire_result =
  | Acquired                (** The lock was free; caller now owns it. *)
  | Must_wait               (** Caller was queued; it must block. *)

val acquire : t -> lock:int -> tid:int -> acquire_result
(** @raise Invalid_argument if [tid] already owns [lock] (the
    simulated program deadlocked on itself). *)

val release : t -> lock:int -> tid:int -> int option
(** Returns the woken waiter, to whom ownership transfers directly.
    @raise Invalid_argument if [tid] does not own [lock]. *)

val owner : t -> lock:int -> int option
val held_by : t -> tid:int -> int list
(** All locks the thread currently owns. *)

val contended_acquires : t -> int
val total_acquires : t -> int
