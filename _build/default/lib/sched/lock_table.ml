type lock_state = {
  mutable owner : int option;
  waiters : int Queue.t;
}

type t = {
  locks : (int, lock_state) Hashtbl.t;
  mutable contended : int;
  mutable total : int;
}

type acquire_result =
  | Acquired
  | Must_wait

let create () = { locks = Hashtbl.create 64; contended = 0; total = 0 }

let state_of t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
    let s = { owner = None; waiters = Queue.create () } in
    Hashtbl.replace t.locks lock s;
    s

let acquire t ~lock ~tid =
  let s = state_of t lock in
  t.total <- t.total + 1;
  match s.owner with
  | None ->
    s.owner <- Some tid;
    Acquired
  | Some owner when owner = tid ->
    invalid_arg (Printf.sprintf "Lock_table.acquire: thread %d re-locks lock %d" tid lock)
  | Some _ ->
    t.contended <- t.contended + 1;
    Queue.push tid s.waiters;
    Must_wait

let release t ~lock ~tid =
  let s = state_of t lock in
  (match s.owner with
  | Some owner when owner = tid -> ()
  | Some owner ->
    invalid_arg
      (Printf.sprintf "Lock_table.release: thread %d releases lock %d owned by %d" tid lock owner)
  | None ->
    invalid_arg (Printf.sprintf "Lock_table.release: thread %d releases free lock %d" tid lock));
  if Queue.is_empty s.waiters then begin
    s.owner <- None;
    None
  end
  else begin
    let next = Queue.pop s.waiters in
    s.owner <- Some next;
    Some next
  end

let owner t ~lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s.owner
  | None -> None

let held_by t ~tid =
  Hashtbl.fold (fun lock s acc -> if s.owner = Some tid then lock :: acc else acc) t.locks []

let contended_acquires t = t.contended
let total_acquires t = t.total
