(** Thread programs as lazy operation generators.

    A program is pulled one operation at a time by the scheduler;
    [None] means the thread finished.  Generators may carry mutable
    state, so an [Alloc] continuation executed now can influence the
    addresses of operations generated later. *)

type t = unit -> Op.t option

val empty : t
val of_list : Op.t list -> t

val append : t -> t -> t
val concat : t list -> t

val repeat : int -> (int -> t) -> t
(** [repeat n body] runs [body 0], [body 1], ... [body (n-1)] in
    sequence; each body is built lazily, when its turn comes. *)

val unfold : ('s -> (Op.t * 's) option) -> 's -> t

val dynamic : (unit -> t option) -> t
(** [dynamic next] keeps asking [next] for program segments until it
    returns [None]; used for data-dependent control flow. *)

val delay : (unit -> t) -> t
(** Build the program only when first pulled — after earlier ops in
    the same stream (e.g. allocations) have executed. *)

val with_setup : (unit -> unit) -> t -> t
(** Run a side effect when the program is first pulled. *)

val to_list : ?limit:int -> t -> Op.t list
(** Drain a program (for tests). @raise Failure past [limit] ops. *)
