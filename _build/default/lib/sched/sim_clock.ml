type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance t cycles =
  assert (cycles >= 0);
  t.now <- t.now + cycles

let reset t = t.now <- 0
