type addr = Kard_mpk.Page.addr

type block = {
  base : addr;
  count : int;
  stride : int;
  span : int;
}

type t =
  | Read of addr
  | Write of addr
  | Read_block of block
  | Write_block of block
  | Lock of { lock : int; site : int }
  | Unlock of { lock : int }
  | Alloc of { size : int; site : int; on_result : Kard_alloc.Obj_meta.t -> unit }
  | Free of Kard_alloc.Obj_meta.t
  | Compute of int
  | Io of int
  | Yield

let pp fmt = function
  | Read addr -> Format.fprintf fmt "read %a" Kard_mpk.Page.pp_addr addr
  | Write addr -> Format.fprintf fmt "write %a" Kard_mpk.Page.pp_addr addr
  | Read_block b ->
    Format.fprintf fmt "read-block %a x%d" Kard_mpk.Page.pp_addr b.base b.count
  | Write_block b ->
    Format.fprintf fmt "write-block %a x%d" Kard_mpk.Page.pp_addr b.base b.count
  | Lock { lock; site } -> Format.fprintf fmt "lock l%d@%d" lock site
  | Unlock { lock } -> Format.fprintf fmt "unlock l%d" lock
  | Alloc { size; site; _ } -> Format.fprintf fmt "alloc %dB@%d" size site
  | Free meta -> Format.fprintf fmt "free %a" Kard_alloc.Obj_meta.pp meta
  | Compute n -> Format.fprintf fmt "compute %d" n
  | Io n -> Format.fprintf fmt "io %d" n
  | Yield -> Format.pp_print_string fmt "yield"
