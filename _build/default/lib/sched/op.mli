(** The instruction set of simulated threads.

    A workload program is a lazy stream of these operations.  [Read]
    and [Write] flow through the MPK access check; [Lock], [Unlock],
    [Alloc] and [Free] are the interposition points corresponding to
    the wrapper functions Kard's LLVM pass installs. *)

type addr = Kard_mpk.Page.addr

type block = {
  base : addr;
  count : int;   (** Number of accesses performed. *)
  stride : int;  (** Byte step between consecutive accesses. *)
  span : int;    (** Accesses wrap within [\[base, base+span)]. *)
}
(** A loop of [count] accesses sweeping a buffer: the address of
    access [i] is [base + (i * stride) mod span].  Lets workloads
    express the millions of data accesses behind one critical-section
    iteration without one [Op.t] per access; the machine charges
    cycle, TLB and detector costs for all [count] accesses but
    performs the MPK check once per page touched (the page is the
    protection granule, so fault behaviour is identical). *)

type t =
  | Read of addr
  | Write of addr
  | Read_block of block
  | Write_block of block
  | Lock of { lock : int; site : int }
      (** [site] is the synchronization call-site id, which names the
          critical section (paper section 5.3). *)
  | Unlock of { lock : int }
  | Alloc of { size : int; site : int; on_result : Kard_alloc.Obj_meta.t -> unit }
      (** The continuation receives the allocated object so the
          program can compute addresses from its base. *)
  | Free of Kard_alloc.Obj_meta.t
  | Compute of int  (** Pure CPU work of the given cycle count. *)
  | Io of int       (** Blocking I/O of the given cycle count; the same
                        under every detector, so it amortizes overhead
                        exactly as real network/disk time does. *)
  | Yield           (** Scheduling hint; costs nothing. *)

val pp : Format.formatter -> t -> unit
