type t =
  | Random of int
  | Round_robin
  | Replay of int array

type state = {
  policy : t;
  rng : Random.State.t;
  mutable picks : int list; (* reverse order *)
  mutable cursor : int;
  mutable rr_last : int;
}

let start policy =
  { policy;
    rng = Random.State.make [| (match policy with Random seed -> seed | Round_robin | Replay _ -> 0) |];
    picks = [];
    cursor = 0;
    rr_last = -1 }

let round_robin state runnable =
  (* The first runnable thread id strictly greater than the last pick,
     wrapping around. *)
  let sorted = List.sort_uniq Int.compare runnable in
  match List.find_opt (fun tid -> tid > state.rr_last) sorted with
  | Some tid -> tid
  | None -> List.hd sorted

let pick state ~runnable =
  assert (runnable <> []);
  let choice =
    match state.policy with
    | Random _ -> List.nth runnable (Random.State.int state.rng (List.length runnable))
    | Round_robin -> round_robin state runnable
    | Replay tape ->
      if state.cursor < Array.length tape && List.mem tape.(state.cursor) runnable then
        tape.(state.cursor)
      else round_robin state runnable
  in
  state.cursor <- state.cursor + 1;
  state.rr_last <- choice;
  state.picks <- choice :: state.picks;
  choice

let recorded state = Array.of_list (List.rev state.picks)

let pp fmt = function
  | Random seed -> Format.fprintf fmt "random(seed=%d)" seed
  | Round_robin -> Format.pp_print_string fmt "round-robin"
  | Replay tape -> Format.fprintf fmt "replay(%d picks)" (Array.length tape)
