type t = unit -> Op.t option

let empty () = None

let of_list ops =
  let remaining = ref ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
      remaining := rest;
      Some op

let append a b =
  let first_done = ref false in
  fun () ->
    if !first_done then b ()
    else
      match a () with
      | Some _ as op -> op
      | None ->
        first_done := true;
        b ()

let dynamic next =
  let current = ref None in
  let exhausted = ref false in
  let rec pull () =
    if !exhausted then None
    else
      match !current with
      | Some prog -> begin
        match prog () with
        | Some _ as op -> op
        | None ->
          current := None;
          pull ()
      end
      | None -> begin
        match next () with
        | Some prog ->
          current := Some prog;
          pull ()
        | None ->
          exhausted := true;
          None
      end
  in
  pull

let delay build =
  let built = ref false in
  dynamic (fun () ->
      if !built then None
      else begin
        built := true;
        Some (build ())
      end)

let concat programs =
  let remaining = ref programs in
  dynamic (fun () ->
      match !remaining with
      | [] -> None
      | prog :: rest ->
        remaining := rest;
        Some prog)

let repeat n body =
  let i = ref 0 in
  dynamic (fun () ->
      if !i >= n then None
      else begin
        let prog = body !i in
        incr i;
        Some prog
      end)

let unfold step init =
  let state = ref init in
  fun () ->
    match step !state with
    | Some (op, next) ->
      state := next;
      Some op
    | None -> None

let with_setup setup prog =
  let done_ = ref false in
  fun () ->
    if not !done_ then begin
      done_ := true;
      setup ()
    end;
    prog ()

let to_list ?(limit = 10_000_000) t =
  let rec loop acc n =
    if n > limit then failwith "Program.to_list: limit exceeded"
    else
      match t () with
      | Some op -> loop (op :: acc) (n + 1)
      | None -> List.rev acc
  in
  loop [] 0
