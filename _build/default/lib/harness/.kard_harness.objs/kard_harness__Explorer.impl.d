lib/harness/explorer.ml: Kard_core Kard_workloads List Option Printf Runner Spec_alias
