lib/harness/experiments.mli: Kard_workloads Runner Spec_alias
