lib/harness/experiments.ml: Chart Format Hashtbl Kard_alloc Kard_baselines Kard_core Kard_mpk Kard_sched Kard_vm Kard_workloads List Option Printf Runner Spec_alias Stats Text_table
