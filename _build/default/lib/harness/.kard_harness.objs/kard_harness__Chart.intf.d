lib/harness/chart.mli:
