lib/harness/stats.mli:
