lib/harness/spec_alias.ml: Kard_workloads
