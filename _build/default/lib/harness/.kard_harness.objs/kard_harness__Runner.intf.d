lib/harness/runner.mli: Kard_baselines Kard_core Kard_sched Kard_workloads Spec_alias
