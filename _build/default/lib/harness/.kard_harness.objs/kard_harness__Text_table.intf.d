lib/harness/text_table.mli:
