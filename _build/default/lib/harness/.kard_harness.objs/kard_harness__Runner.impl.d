lib/harness/runner.ml: Kard_baselines Kard_core Kard_sched Kard_workloads Option Spec_alias
