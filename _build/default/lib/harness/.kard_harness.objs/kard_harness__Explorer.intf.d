lib/harness/explorer.mli: Kard_core Kard_workloads Spec_alias
