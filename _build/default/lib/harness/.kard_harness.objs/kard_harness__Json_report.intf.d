lib/harness/json_report.mli: Kard_core Runner
