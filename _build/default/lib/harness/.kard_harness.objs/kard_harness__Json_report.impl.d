lib/harness/json_report.ml: Buffer Char Kard_core Kard_sched List Printf Runner String
