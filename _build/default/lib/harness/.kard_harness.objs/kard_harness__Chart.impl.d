lib/harness/chart.ml: Float List Printf String
