lib/harness/spec_alias.mli: Kard_workloads
