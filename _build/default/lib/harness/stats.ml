let geomean_ratio ratios =
  if ratios = [] then invalid_arg "Stats.geomean_ratio: empty";
  List.iter
    (fun r -> if r <= 0. then invalid_arg "Stats.geomean_ratio: non-positive ratio")
    ratios;
  let sum = List.fold_left (fun acc r -> acc +. log r) 0. ratios in
  exp (sum /. float_of_int (List.length ratios))

let geomean_overhead_pct pcts =
  let ratios = List.map (fun p -> 1. +. (p /. 100.)) pcts in
  (geomean_ratio ratios -. 1.) *. 100.

let mean values =
  if values = [] then 0.
  else List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let pct value baseline = if baseline = 0. then 0. else (value -. baseline) /. baseline *. 100.
