type t = Kard_workloads.Spec.t
