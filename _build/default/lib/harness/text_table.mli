(** Plain-text table rendering for the experiment reports. *)

type align =
  | Left
  | Right

val render : header:string list -> ?align:align list -> string list list -> string
(** Columns are sized to fit; [align] defaults to left for the first
    column and right for the rest. *)

val fmt_pct : float -> string
(** "+7.0%" / "-5.9%". *)

val fmt_times : float -> string
(** Slowdown factor, e.g. "7.9x". *)

val fmt_int : int -> string
(** Thousands-separated. *)

val fmt_kb : int -> string
(** Bytes rendered as KiB. *)

val fmt_rate : float -> string
(** Miss rates, 5 decimal places. *)
