(** Machine-readable run reports.

    A minimal hand-rolled JSON emitter (the project takes no
    dependencies beyond the test/bench stack) for integrating the
    detector into scripts and CI: race records with both sides, the
    run's cost counters, and the detector's event statistics. *)

val escape : string -> string
(** JSON string-escape (quotes, backslashes, control characters). *)

val of_race : Kard_core.Race_record.t -> string

val of_result : Runner.result -> string
(** The full run: workload, detector, cycle/RSS/dTLB counters, races,
    and (for Kard runs) the detector statistics. *)

val pretty : string -> string
(** Re-indent a JSON string (objects and arrays, 2 spaces). *)
