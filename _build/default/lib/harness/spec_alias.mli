(** Alias so the harness interface can name workload specs without a
    long dotted path. *)

type t = Kard_workloads.Spec.t
