(** Minimal ASCII bar charts for the figure reproductions. *)

val bars :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** One horizontal bar per (label, value); values are scaled to the
    largest. Negative values render as an empty bar with the number.
    [width] is the maximum bar length (default 40). *)

val grouped :
  ?width:int -> series:string list -> (string * float list) list -> string
(** Grouped bars: each row has one value per series (Figure 5's three
    thread counts). *)
