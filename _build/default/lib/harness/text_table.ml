type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~header ?align rows =
  let cols = List.length header in
  let align =
    match align with
    | Some a ->
      assert (List.length a = cols);
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth align i) widths.(i) cell) row)
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let fmt_pct p = Printf.sprintf "%+.1f%%" p
let fmt_times x = Printf.sprintf "%.1fx" x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_kb bytes = fmt_int (bytes / 1024)
let fmt_rate r = Printf.sprintf "%.5f" r
