type outcome = {
  seed : int;
  kard_ilu : int;
  records : int;
}

type summary = {
  runs : int;
  detecting_runs : int;
  detection_rate : float;
  min_races : int;
  max_races : int;
  outcomes : outcome list;
}

let default_seeds = List.init 20 (fun i -> i + 1)

let summarize outcomes =
  let runs = List.length outcomes in
  let detecting = List.filter (fun o -> o.kard_ilu > 0) outcomes in
  let races = List.map (fun o -> o.kard_ilu) outcomes in
  { runs;
    detecting_runs = List.length detecting;
    detection_rate =
      (if runs = 0 then 0. else float_of_int (List.length detecting) /. float_of_int runs);
    min_races = List.fold_left min max_int races;
    max_races = List.fold_left max 0 races;
    outcomes }

let explore_scenario ?(seeds = default_seeds) ?config (scenario : Kard_workloads.Race_suite.t) =
  let config = Option.value ~default:scenario.Kard_workloads.Race_suite.config config in
  summarize
    (List.map
       (fun seed ->
         let r =
           Runner.run_scenario ~seed ~override_config:config ~detector:(Runner.Kard config)
             scenario
         in
         { seed;
           kard_ilu = List.length r.Runner.kard_ilu_races;
           records = List.length r.Runner.kard_races })
       seeds)

let explore_spec ?(seeds = default_seeds) ?(scale = 0.005) ?threads (spec : Spec_alias.t) =
  summarize
    (List.map
       (fun seed ->
         let r = Runner.run ?threads ~scale ~seed ~detector:(Runner.Kard Kard_core.Config.default) spec in
         { seed;
           kard_ilu = List.length r.Runner.kard_ilu_races;
           records = List.length r.Runner.kard_races })
       seeds)

let print_summary ~name s =
  Printf.printf "%-28s detection rate %3.0f%% (%d/%d runs), races per run %d..%d\n" name
    (s.detection_rate *. 100.) s.detecting_runs s.runs s.min_races s.max_races
