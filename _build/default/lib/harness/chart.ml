let bar ~width ~max_value value =
  if value <= 0. || max_value <= 0. then ""
  else
    let n = int_of_float (Float.round (value /. max_value *. float_of_int width)) in
    String.make (max 0 (min width n)) '#'

let bars ?(width = 40) ?(unit_label = "") rows =
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. rows in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let line (label, value) =
    Printf.sprintf "%-*s %8.1f%s |%s" label_width label value unit_label
      (bar ~width ~max_value value)
  in
  String.concat "\n" (List.map line rows) ^ "\n"

let grouped ?(width = 30) ~series rows =
  let max_value =
    List.fold_left
      (fun acc (_, values) -> List.fold_left Float.max acc values)
      0. rows
  in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let series_width = List.fold_left (fun acc s -> max acc (String.length s)) 0 series in
  let block (label, values) =
    let lines =
      List.map2
        (fun s v ->
          Printf.sprintf "%-*s  %-*s %8.1f |%s" label_width "" series_width s v
            (bar ~width ~max_value v))
        series values
    in
    Printf.sprintf "%-*s" label_width label
    :: lines
  in
  String.concat "\n" (List.concat_map block rows) ^ "\n"
