module Page = Kard_mpk.Page

type backing =
  | Anon of Phys_mem.frame
  | File_shared of Memfd.t * int

type t = {
  phys : Phys_mem.t;
  map : (Page.vpage, backing) Hashtbl.t;
  (* Reference counts of 512-page groups, to model last-level
     page-table consumption. *)
  pt_groups : (int, int) Hashtbl.t;
  mutable peak_pt_groups : int;
  mutable peak_mapped : int;
  mutable next_vpage : Page.vpage;
}

(* Start well above zero so that address 0 is never valid, catching
   null-pointer style mistakes in workload programs. *)
let first_vpage = 0x10

let create phys =
  { phys;
    map = Hashtbl.create 4096;
    pt_groups = Hashtbl.create 64;
    peak_pt_groups = 0;
    peak_mapped = 0;
    next_vpage = first_vpage }

let pt_group_incr t vpage =
  let group = vpage / 512 in
  let count = Option.value ~default:0 (Hashtbl.find_opt t.pt_groups group) in
  Hashtbl.replace t.pt_groups group (count + 1);
  if count = 0 && Hashtbl.length t.pt_groups > t.peak_pt_groups then
    t.peak_pt_groups <- Hashtbl.length t.pt_groups;
  if Hashtbl.length t.map > t.peak_mapped then t.peak_mapped <- Hashtbl.length t.map

let pt_group_decr t vpage =
  let group = vpage / 512 in
  match Hashtbl.find_opt t.pt_groups group with
  | Some 1 -> Hashtbl.remove t.pt_groups group
  | Some count -> Hashtbl.replace t.pt_groups group (count - 1)
  | None -> ()
let phys t = t.phys

let bump t pages =
  let base = t.next_vpage in
  t.next_vpage <- base + pages;
  base

let mmap_anon t ~pages =
  if pages <= 0 then invalid_arg "Address_space.mmap_anon: pages must be positive";
  let base_vpage = bump t pages in
  for i = 0 to pages - 1 do
    Hashtbl.replace t.map (base_vpage + i) (Anon (Phys_mem.alloc_frame t.phys));
    pt_group_incr t (base_vpage + i)
  done;
  Page.base_of_vpage base_vpage

let mmap_file t memfd ~file_page ~pages =
  if pages <= 0 then invalid_arg "Address_space.mmap_file: pages must be positive";
  if file_page < 0 || file_page + pages > Memfd.page_count memfd then
    invalid_arg
      (Printf.sprintf "Address_space.mmap_file: range [%d,%d) beyond file (%d pages)"
         file_page (file_page + pages) (Memfd.page_count memfd));
  let base_vpage = bump t pages in
  for i = 0 to pages - 1 do
    Hashtbl.replace t.map (base_vpage + i) (File_shared (memfd, file_page + i));
    pt_group_incr t (base_vpage + i)
  done;
  Page.base_of_vpage base_vpage

let reserve t ~pages =
  if pages <= 0 then invalid_arg "Address_space.reserve: pages must be positive";
  Page.base_of_vpage (bump t pages)

let munmap t ~base ~pages =
  let base_vpage = Page.vpage_of_addr base in
  for i = 0 to pages - 1 do
    (match Hashtbl.find_opt t.map (base_vpage + i) with
    | Some (Anon frame) ->
      Phys_mem.free_frame t.phys frame;
      pt_group_decr t (base_vpage + i)
    | Some (File_shared _) -> pt_group_decr t (base_vpage + i)
    | None -> ());
    Hashtbl.remove t.map (base_vpage + i)
  done

let backing_of_vpage t vpage = Hashtbl.find_opt t.map vpage
let is_mapped t addr = Hashtbl.mem t.map (Page.vpage_of_addr addr)
let mapped_pages t = Hashtbl.length t.map
let page_table_pages t = Hashtbl.length t.pt_groups
let peak_page_table_pages t = t.peak_pt_groups
let peak_mapped_pages t = t.peak_mapped

exception Segfault of Page.addr

let resolve t addr =
  match Hashtbl.find_opt t.map (Page.vpage_of_addr addr) with
  | None -> raise (Segfault addr)
  | Some (Anon frame) -> (Phys_mem.bytes_of_frame t.phys frame, Page.offset_in_page addr)
  | Some (File_shared (memfd, file_page)) ->
    let frame = Memfd.frame_of_page memfd file_page in
    (Phys_mem.bytes_of_frame t.phys frame, Page.offset_in_page addr)

let read_u8 t addr =
  let bytes, off = resolve t addr in
  Char.code (Bytes.get bytes off)

let write_u8 t addr v =
  let bytes, off = resolve t addr in
  Bytes.set bytes off (Char.chr (v land 0xff))

(* Multi-byte accesses may straddle a page boundary; go byte by byte
   so aliased mappings stay coherent. *)
let read_i64 t addr =
  let rec loop acc i =
    if i >= 8 then acc
    else
      let byte = Int64.of_int (read_u8 t (addr + i)) in
      loop (Int64.logor acc (Int64.shift_left byte (8 * i))) (i + 1)
  in
  loop 0L 0

let write_i64 t addr v =
  for i = 0 to 7 do
    write_u8 t (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done
