module Page = Kard_mpk.Page

type frame = int

(* Frame contents are materialized lazily: simulated workloads rarely
   inspect data, and eagerly backing multi-GiB address spaces with
   real bytes would make large-array workloads unsimulatable. *)
type cell = { mutable data : bytes option }

type t = {
  frames : (frame, cell) Hashtbl.t;
  mutable next_frame : frame;
  mutable resident : int;
  mutable peak : int;
  mutable total_allocated : int;
}

let create () =
  { frames = Hashtbl.create 1024; next_frame = 0; resident = 0; peak = 0; total_allocated = 0 }

let alloc_frame t =
  let frame = t.next_frame in
  t.next_frame <- frame + 1;
  Hashtbl.replace t.frames frame { data = None };
  t.resident <- t.resident + 1;
  t.total_allocated <- t.total_allocated + 1;
  if t.resident > t.peak then t.peak <- t.resident;
  frame

let free_frame t frame =
  if not (Hashtbl.mem t.frames frame) then
    invalid_arg (Printf.sprintf "Phys_mem.free_frame: frame %d not resident" frame);
  Hashtbl.remove t.frames frame;
  t.resident <- t.resident - 1

let bytes_of_frame t frame =
  match Hashtbl.find_opt t.frames frame with
  | Some cell -> begin
    match cell.data with
    | Some b -> b
    | None ->
      let b = Bytes.make Page.size '\000' in
      cell.data <- Some b;
      b
  end
  | None -> invalid_arg (Printf.sprintf "Phys_mem.bytes_of_frame: frame %d not resident" frame)

let resident_frames t = t.resident
let resident_bytes t = t.resident * Page.size
let peak_resident_bytes t = t.peak * Page.size
let total_allocated_frames t = t.total_allocated
let frame_to_int frame = frame
let frame_of_int i = i
