(** The physical page pool, with resident-set accounting.

    Consolidated unique page allocation (paper section 5.3, figure 2)
    saves memory by aliasing many virtual pages onto few physical
    pages; this module is the ground truth for how much physical
    memory a run actually consumed — the RSS column of Table 3. *)

type t

type frame = private int
(** A physical frame number. *)

val create : unit -> t

val alloc_frame : t -> frame
(** Allocate a zeroed frame and count it resident. *)

val free_frame : t -> frame -> unit
(** @raise Invalid_argument on double free. *)

val bytes_of_frame : t -> frame -> bytes
(** The frame's backing store, always {!Kard_mpk.Page.size} long. *)

val resident_frames : t -> int
val resident_bytes : t -> int
val peak_resident_bytes : t -> int
val total_allocated_frames : t -> int

val frame_to_int : frame -> int
val frame_of_int : int -> frame
