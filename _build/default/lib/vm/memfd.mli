(** An in-memory file, as created by [memfd_create(2)].

    The unique-page allocator backs all small-object consolidation on
    one of these: virtual pages from different allocations are mapped
    [MAP_SHARED] onto the same file page, and the file is grown with
    [ftruncate] as the program's footprint grows (section 5.3). *)

type t

val create : Phys_mem.t -> name:string -> t
val name : t -> string

val size : t -> int
(** Current file size in bytes (always page-aligned here). *)

val ftruncate : t -> int -> unit
(** Grow or shrink; growing allocates zeroed frames, shrinking frees
    them.  @raise Invalid_argument on negative size. *)

val frame_of_page : t -> int -> Phys_mem.frame
(** [frame_of_page t i] is the physical frame backing file page [i].
    @raise Invalid_argument when [i] is beyond the file's size. *)

val page_count : t -> int
