lib/vm/memfd.mli: Phys_mem
