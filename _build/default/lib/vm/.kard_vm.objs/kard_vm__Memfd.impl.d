lib/vm/memfd.ml: Array Kard_mpk Phys_mem Printf
