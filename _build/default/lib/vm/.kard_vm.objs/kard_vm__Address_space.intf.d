lib/vm/address_space.mli: Kard_mpk Memfd Phys_mem
