lib/vm/phys_mem.mli:
