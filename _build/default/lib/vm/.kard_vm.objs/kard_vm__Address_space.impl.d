lib/vm/address_space.ml: Bytes Char Hashtbl Int64 Kard_mpk Memfd Option Phys_mem Printf
