lib/vm/phys_mem.ml: Bytes Hashtbl Kard_mpk Printf
