module Page = Kard_mpk.Page

type t = {
  phys : Phys_mem.t;
  name : string;
  mutable pages : Phys_mem.frame array;
  mutable used : int; (* pages in use; [pages] may have spare capacity *)
}

let create phys ~name = { phys; name; pages = [||]; used = 0 }
let name t = t.name
let size t = t.used * Page.size
let page_count t = t.used

let ensure_capacity t wanted =
  let cap = Array.length t.pages in
  if wanted > cap then begin
    let new_cap = max wanted (max 8 (cap * 2)) in
    let fresh = Array.make new_cap (Phys_mem.frame_of_int (-1)) in
    Array.blit t.pages 0 fresh 0 cap;
    t.pages <- fresh
  end

let ftruncate t bytes =
  if bytes < 0 then invalid_arg "Memfd.ftruncate: negative size";
  let wanted = (bytes + Page.size - 1) / Page.size in
  if wanted > t.used then begin
    ensure_capacity t wanted;
    for i = t.used to wanted - 1 do
      t.pages.(i) <- Phys_mem.alloc_frame t.phys
    done;
    t.used <- wanted
  end
  else if wanted < t.used then begin
    for i = wanted to t.used - 1 do
      Phys_mem.free_frame t.phys t.pages.(i)
    done;
    t.used <- wanted
  end

let frame_of_page t i =
  if i < 0 || i >= t.used then
    invalid_arg (Printf.sprintf "Memfd.frame_of_page: page %d beyond file (%d pages)" i t.used);
  t.pages.(i)
