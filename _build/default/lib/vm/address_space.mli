(** A process virtual address space.

    Virtual pages are handed out by a bump allocator (real [mmap] also
    returns fresh ranges) and are backed either by anonymous frames or
    by pages of an in-memory file ([MAP_SHARED]) — the aliasing that
    consolidated unique page allocation relies on.  Byte-level loads
    and stores resolve through the mapping, so two virtual pages
    mapped onto the same file page really do share data. *)

type t

type backing =
  | Anon of Phys_mem.frame
  | File_shared of Memfd.t * int  (** file and file-page index *)

val create : Phys_mem.t -> t
val phys : t -> Phys_mem.t

(** {1 Mapping} *)

val mmap_anon : t -> pages:int -> Kard_mpk.Page.addr
(** Map fresh zeroed frames; returns the base address. *)

val mmap_file : t -> Memfd.t -> file_page:int -> pages:int -> Kard_mpk.Page.addr
(** Map [pages] consecutive file pages starting at [file_page],
    [MAP_SHARED].  The file must already be large enough. *)

val reserve : t -> pages:int -> Kard_mpk.Page.addr
(** Reserve address space with no backing (PROT_NONE-like); accessing
    it raises. Used to keep guard gaps between unique object pages. *)

val munmap : t -> base:Kard_mpk.Page.addr -> pages:int -> unit
(** Unmap; anonymous frames are freed, file pages stay in the file. *)

val backing_of_vpage : t -> Kard_mpk.Page.vpage -> backing option
val is_mapped : t -> Kard_mpk.Page.addr -> bool
val mapped_pages : t -> int

val page_table_pages : t -> int
(** Last-level page-table pages needed for the current mappings: the
    number of distinct 512-entry groups the mapped pages fall into.
    Feeds the modeled-RSS page-table component. *)

val peak_page_table_pages : t -> int

val peak_mapped_pages : t -> int
(** High-water mark of simultaneously live virtual page mappings.
    Models what /proc RSS reports: shared physical pages are counted
    once {e per mapping}, which is precisely why consolidated unique
    page allocation still shows large RSS numbers (section 7.5). *)

(** {1 Data access} *)

exception Segfault of Kard_mpk.Page.addr

val read_u8 : t -> Kard_mpk.Page.addr -> int
val write_u8 : t -> Kard_mpk.Page.addr -> int -> unit
val read_i64 : t -> Kard_mpk.Page.addr -> int64
val write_i64 : t -> Kard_mpk.Page.addr -> int64 -> unit
