type entry = {
  mutable vpage : Page.vpage;
  mutable valid : bool;
  mutable stamp : int;
}

type t = {
  sets : entry array array;
  set_count : int;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(entries = 64) ?(ways = 4) () =
  if entries <= 0 || ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Tlb.create: entries must be a positive multiple of ways";
  let set_count = entries / ways in
  let fresh_entry _ = { vpage = 0; valid = false; stamp = 0 } in
  { sets = Array.init set_count (fun _ -> Array.init ways fresh_entry);
    set_count;
    tick = 0;
    accesses = 0;
    misses = 0 }

let access t vpage =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  let set = t.sets.(vpage mod t.set_count) in
  let ways = Array.length set in
  let rec find i = if i >= ways then None else if set.(i).valid && set.(i).vpage = vpage then Some set.(i) else find (i + 1) in
  match find 0 with
  | Some entry ->
    entry.stamp <- t.tick;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the LRU way (or fill an invalid one, which has stamp 0). *)
    let victim = ref set.(0) in
    for i = 1 to ways - 1 do
      let e = set.(i) in
      let v = !victim in
      if (not e.valid) && v.valid then victim := e
      else if e.valid = v.valid && e.stamp < v.stamp then victim := e
    done;
    let v = !victim in
    v.vpage <- vpage;
    v.valid <- true;
    v.stamp <- t.tick;
    `Miss

let note_hits t n =
  assert (n >= 0);
  t.accesses <- t.accesses + n

let note_misses t n =
  assert (n >= 0);
  t.accesses <- t.accesses + n;
  t.misses <- t.misses + n

let flush t =
  Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) t.sets

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
