lib/mpk/tlb.mli: Page
