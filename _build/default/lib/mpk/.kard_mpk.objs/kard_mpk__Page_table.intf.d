lib/mpk/page_table.mli: Page Pkey
