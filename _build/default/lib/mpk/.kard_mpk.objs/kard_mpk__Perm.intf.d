lib/mpk/perm.mli: Format
