lib/mpk/fault.ml: Format Page Pkey
