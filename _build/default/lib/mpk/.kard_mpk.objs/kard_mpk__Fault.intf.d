lib/mpk/fault.mli: Format Page Pkey
