lib/mpk/mpk_hw.ml: Cost_model Fault Hashtbl Page Page_table Pkru Printf Tlb
