lib/mpk/pkey.mli: Format Map Set
