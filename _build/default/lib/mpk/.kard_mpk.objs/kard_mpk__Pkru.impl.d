lib/mpk/pkru.ml: Format Int List Perm Pkey Printf
