lib/mpk/page_table.ml: Hashtbl Page Pkey
