lib/mpk/page.ml: Format
