lib/mpk/mpk_hw.mli: Cost_model Fault Page Page_table Pkey Pkru
