lib/mpk/cost_model.ml: Format
