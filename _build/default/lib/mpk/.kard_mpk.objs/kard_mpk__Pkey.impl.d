lib/mpk/pkey.ml: Format Int List Map Printf Set
