lib/mpk/perm.ml: Format Int
