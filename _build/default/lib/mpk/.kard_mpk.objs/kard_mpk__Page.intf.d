lib/mpk/page.mli: Format
