lib/mpk/cost_model.mli: Format
