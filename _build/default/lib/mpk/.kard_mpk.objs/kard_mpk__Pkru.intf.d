lib/mpk/pkru.mli: Format Perm Pkey
