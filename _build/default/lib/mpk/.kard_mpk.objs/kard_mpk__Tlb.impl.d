lib/mpk/tlb.ml: Array Page
