type t = int

let bits_per_key = 2
let mask = 0b11

let all_access = 0

let shift key = Pkey.to_int key * bits_per_key

let get t key = Perm.of_bits ((t lsr shift key) land mask)

let set t key perm =
  let s = shift key in
  t land lnot (mask lsl s) lor (Perm.to_bits perm lsl s)

let deny_all =
  let rec loop acc i =
    if i >= Pkey.count then acc
    else loop (set acc (Pkey.of_int i) Perm.No_access) (i + 1)
  in
  let denied = loop all_access 0 in
  set denied Pkey.k_def Perm.Read_write

let of_int i =
  if i < 0 || i > 0xffffffff then
    invalid_arg (Printf.sprintf "Pkru.of_int: %d is not a 32-bit value" i);
  i

let to_int t = t

let of_assignments assignments =
  List.fold_left (fun acc (key, perm) -> set acc key perm) deny_all assignments

let grants t key access = Perm.allows (get t key) access

let held_keys t =
  let rec loop acc i =
    if i < 0 then acc
    else
      let key = Pkey.of_int i in
      match get t key with
      | Perm.No_access -> loop acc (i - 1)
      | (Perm.Read_only | Perm.Read_write) as perm -> loop ((key, perm) :: acc) (i - 1)
  in
  loop [] (Pkey.count - 1)

let equal = Int.equal

let pp fmt t =
  let held = held_keys t in
  Format.fprintf fmt "@[<h>pkru{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (key, perm) -> Format.fprintf fmt "%a:%a" Pkey.pp key Perm.pp perm))
    held
