(** Page geometry helpers.

    Virtual addresses are plain [int]s; a page is 4 KiB, the MPK
    protection granule. *)

type addr = int
type vpage = int

val size : int
(** Bytes per page (4096). *)

val shift : int
(** log2 of {!size}. *)

val vpage_of_addr : addr -> vpage
val base_of_vpage : vpage -> addr
val offset_in_page : addr -> int

val pages_spanned : addr -> int -> int
(** [pages_spanned base len] is how many pages the byte range
    [\[base, base+len)] touches.  A zero-length range touches one. *)

val round_up : int -> int
(** Round a byte count up to a whole number of pages. *)

val pp_addr : Format.formatter -> addr -> unit
