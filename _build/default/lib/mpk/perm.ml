type t =
  | No_access
  | Read_only
  | Read_write

let allows perm access =
  match perm, access with
  | No_access, (`Read | `Write) -> false
  | Read_only, `Read -> true
  | Read_only, `Write -> false
  | Read_write, (`Read | `Write) -> true

let rank = function
  | No_access -> 0
  | Read_only -> 1
  | Read_write -> 2

let join a b = if rank a >= rank b then a else b
let meet a b = if rank a <= rank b then a else b
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)

let to_string = function
  | No_access -> "no-access"
  | Read_only -> "read-only"
  | Read_write -> "read-write"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* PKRU encodes each key as two bits: bit 0 = AD (access disable),
   bit 1 = WD (write disable). *)
let to_bits = function
  | No_access -> 0b01
  | Read_only -> 0b10
  | Read_write -> 0b00

let of_bits bits =
  if bits land 0b01 <> 0 then No_access
  else if bits land 0b10 <> 0 then Read_only
  else Read_write
