(** A set-associative data-TLB model with LRU replacement.

    Kard's unique-page allocator spreads objects over many virtual
    pages, which raises dTLB pressure — one of the three overhead
    factors named in the paper's section 7.2.  This model produces the
    dTLB miss-rate column of Table 3. *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Defaults model a Skylake-class L1 dTLB: 64 entries, 4-way. *)

val access : t -> Page.vpage -> [ `Hit | `Miss ]
(** Touch a page: records the access and updates recency. *)

val note_hits : t -> int -> unit
(** Record [n] additional accesses that hit (block operations touch a
    page once through {!access} and stream the rest as hits). *)

val note_misses : t -> int -> unit
(** Record [n] additional accesses that missed (block sweeps over
    buffers far larger than the TLB reach miss on every new page). *)

val flush : t -> unit
(** Full flush, as [mprotect] (but not [WRPKRU]!) would force. *)

val accesses : t -> int
val misses : t -> int

val miss_rate : t -> float
(** [misses / accesses]; 0 when nothing was accessed. *)

val reset_stats : t -> unit
