(** Protection faults (#GP) raised by MPK permission checks.

    These carry exactly the information the paper's custom signal
    handler extracts: faulting address, protection key, access type,
    faulting thread and its context, and a timestamp (section 5.5). *)

type access = [ `Read | `Write ]

type t = {
  addr : Page.addr;          (** Faulting virtual address. *)
  vpage : Page.vpage;
  pkey : Pkey.t;             (** Key tagging the faulting page. *)
  access : access;
  thread : int;              (** Faulting thread id. *)
  ip : int;                  (** Instruction pointer (op index). *)
  time : int;                (** Cycle timestamp when the fault fired. *)
}

val make :
  addr:Page.addr -> pkey:Pkey.t -> access:access -> thread:int -> ip:int ->
  time:int -> t

val pp : Format.formatter -> t -> unit
val pp_access : Format.formatter -> access -> unit
