type t = int

let count = 16

let of_int i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Pkey.of_int: %d outside [0, %d]" i (count - 1));
  i

let to_int t = t
let k_def = 0
let k_ro = 14
let k_na = 15
let data_keys = List.init 13 (fun i -> i + 1)
let data_key_count = 13
let is_data_key t = t >= 1 && t <= 13
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp fmt t = Format.fprintf fmt "k%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
