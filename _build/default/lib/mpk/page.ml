type addr = int
type vpage = int

let shift = 12
let size = 1 lsl shift
let vpage_of_addr addr = addr lsr shift
let base_of_vpage vpage = vpage lsl shift
let offset_in_page addr = addr land (size - 1)

let pages_spanned base len =
  assert (len >= 0);
  if len = 0 then 1
  else vpage_of_addr (base + len - 1) - vpage_of_addr base + 1

let round_up bytes = (bytes + size - 1) land lnot (size - 1)
let pp_addr fmt addr = Format.fprintf fmt "0x%x" addr
