(** Intel MPK protection keys.

    MPK supports 16 keys ([k0]..[k15]).  Kard reserves [k0] for
    backward-compatible default protection, [k14] for the Read-only
    domain and [k15] for the Not-accessed domain, leaving [k1]..[k13]
    for Read-write domain objects (paper section 5.2). *)

type t = private int

val count : int
(** Number of hardware keys (16). *)

val of_int : int -> t
(** @raise Invalid_argument when outside [0, 15]. *)

val to_int : t -> int

val k_def : t
(** Default key [k0]: thread-local data, mutexes — always accessible. *)

val k_ro : t
(** Read-only domain key [k14]. *)

val k_na : t
(** Not-accessed domain key [k15]. *)

val data_keys : t list
(** The 13 Read-write domain keys, [k1]..[k13], in ascending order. *)

val data_key_count : int

val is_data_key : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
