type access = [ `Read | `Write ]

type t = {
  addr : Page.addr;
  vpage : Page.vpage;
  pkey : Pkey.t;
  access : access;
  thread : int;
  ip : int;
  time : int;
}

let make ~addr ~pkey ~access ~thread ~ip ~time =
  { addr; vpage = Page.vpage_of_addr addr; pkey; access; thread; ip; time }

let pp_access fmt = function
  | `Read -> Format.pp_print_string fmt "read"
  | `Write -> Format.pp_print_string fmt "write"

let pp fmt t =
  Format.fprintf fmt "#GP{t%d %a %a key=%a ip=%d @@%d}" t.thread pp_access t.access
    Page.pp_addr t.addr Pkey.pp t.pkey t.ip t.time
