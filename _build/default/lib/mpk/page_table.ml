type t = (Page.vpage, Pkey.t) Hashtbl.t

let create () = Hashtbl.create 4096

let set_pkey t vpage pkey =
  if Pkey.equal pkey Pkey.k_def then Hashtbl.remove t vpage
  else Hashtbl.replace t vpage pkey

let iter_range ~base ~len f =
  let first = Page.vpage_of_addr base in
  let count = Page.pages_spanned base len in
  for vpage = first to first + count - 1 do
    f vpage
  done;
  count

let set_pkey_range t ~base ~len pkey = iter_range ~base ~len (fun vp -> set_pkey t vp pkey)

let pkey_of_vpage t vpage =
  match Hashtbl.find_opt t vpage with
  | Some pkey -> pkey
  | None -> Pkey.k_def

let pkey_of_addr t addr = pkey_of_vpage t (Page.vpage_of_addr addr)

let clear_range t ~base ~len =
  let (_ : int) = iter_range ~base ~len (fun vp -> Hashtbl.remove t vp) in
  ()

let entry_count t = Hashtbl.length t
