(** The thread-local PKRU register.

    A 32-bit register with two bits per protection key: access-disable
    (AD) and write-disable (WD).  Updated with the non-privileged
    [WRPKRU] instruction and read with [RDPKRU]. *)

type t = private int
(** The raw 32-bit register value. *)

val all_access : t
(** Every key readable and writable (register value 0). *)

val deny_all : t
(** Every key inaccessible except [k0], which stays read-write for
    backward compatibility (real kernels never revoke [k0]). *)

val get : t -> Pkey.t -> Perm.t
val set : t -> Pkey.t -> Perm.t -> t

val of_int : int -> t
(** @raise Invalid_argument when outside the 32-bit range. *)

val to_int : t -> int

val of_assignments : (Pkey.t * Perm.t) list -> t
(** Start from {!deny_all} but grant [k0] read-write, then apply the
    assignments in order. *)

val grants : t -> Pkey.t -> [ `Read | `Write ] -> bool

val held_keys : t -> (Pkey.t * Perm.t) list
(** Keys granted at least read access, ascending. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
