(** Access permissions that a protection key grants to a thread.

    Mirrors the three states encodable in the PKRU register's two bits
    per key (access-disable and write-disable). *)

type t =
  | No_access  (** AD bit set: neither reads nor writes allowed. *)
  | Read_only  (** WD bit set: reads allowed, writes fault. *)
  | Read_write (** both bits clear: full access. *)

(** [allows perm access] is [true] when [perm] permits [access]. *)
val allows : t -> [ `Read | `Write ] -> bool

(** Least upper bound: the weaker of two restrictions. *)
val join : t -> t -> t

(** Greatest lower bound: the stronger of two restrictions. *)
val meet : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Encode as the two PKRU bits [(ad, wd)]. *)
val to_bits : t -> int

(** Decode from the two PKRU bits; the [(ad=1, wd=1)] encoding also
    means no access, like real hardware. *)
val of_bits : int -> t
