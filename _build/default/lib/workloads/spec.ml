type category =
  | Parsec
  | Splash2x
  | Real_world

type paper_row = {
  p_heap : int;
  p_global : int;
  p_ro : int;
  p_rw : int;
  p_total_cs : int;
  p_active_cs : int;
  p_entries : int;
  p_baseline_s : float;
  p_alloc_pct : float;
  p_kard_pct : float;
  p_tsan_pct : float;
  p_rss_kb : int;
  p_rss_kard_pct : float;
  p_dtlb_base : float;
  p_dtlb_alloc_pct : float;
  p_dtlb_kard_pct : float;
}

type t = {
  name : string;
  category : category;
  description : string;
  paper : paper_row;
  default_threads : int;
  build : threads:int -> scale:float -> seed:int -> Kard_sched.Machine.t -> unit;
}

let category_name = function
  | Parsec -> "PARSEC"
  | Splash2x -> "SPLASH-2x"
  | Real_world -> "real-world"

let pp fmt t =
  Format.fprintf fmt "%s (%s): %s" t.name (category_name t.category) t.description
