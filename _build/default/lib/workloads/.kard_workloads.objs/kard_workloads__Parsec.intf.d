lib/workloads/parsec.mli: Spec
