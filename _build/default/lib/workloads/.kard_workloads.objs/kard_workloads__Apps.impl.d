lib/workloads/apps.ml: Array Builder Kard_alloc Kard_sched Printf Spec
