lib/workloads/race_suite.ml: Builder Format Kard_alloc Kard_core Kard_sched List String
