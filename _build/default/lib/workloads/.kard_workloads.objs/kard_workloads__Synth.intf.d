lib/workloads/synth.mli: Kard_sched
