lib/workloads/spec.mli: Format Kard_sched
