lib/workloads/builder.ml: Array Float Kard_alloc Kard_sched
