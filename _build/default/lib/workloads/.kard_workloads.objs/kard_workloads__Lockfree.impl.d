lib/workloads/lockfree.ml: Spec Synth
