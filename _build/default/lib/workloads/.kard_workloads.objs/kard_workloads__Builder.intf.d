lib/workloads/builder.mli: Kard_alloc Kard_sched
