lib/workloads/synth.ml: Array Builder Kard_alloc Kard_sched List
