lib/workloads/splash.ml: Spec Synth
