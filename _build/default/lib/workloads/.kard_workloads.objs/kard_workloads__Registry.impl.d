lib/workloads/registry.ml: Apps List Lockfree Parsec Spec Splash String
