lib/workloads/splash.mli: Spec
