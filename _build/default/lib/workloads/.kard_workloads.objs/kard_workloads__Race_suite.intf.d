lib/workloads/race_suite.mli: Format Kard_core Kard_sched
