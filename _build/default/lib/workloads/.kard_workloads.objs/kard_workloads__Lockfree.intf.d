lib/workloads/lockfree.mli: Spec
