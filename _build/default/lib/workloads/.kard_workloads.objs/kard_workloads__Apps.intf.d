lib/workloads/apps.mli: Spec
