lib/workloads/parsec.ml: Spec Synth
