lib/workloads/spec.ml: Format Kard_sched
