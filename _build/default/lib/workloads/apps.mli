(** Models of the four real-world applications (section 7.2), with the
    real-world data races of Table 6 built in:

    - {b Aget}: workers count downloaded bytes inside critical
      sections while the progress reporter reads the counter without a
      lock (1 ILU race, previously reported).
    - {b memcached}: two statistics heap objects written by workers
      under the stats lock but read lock-free by the main thread, and
      a time global updated lock-free by the main thread's callback
      but read inside worker sections (3 ILU races).
    - {b NGINX}: one racy heap access in a critical section during
      initialization (1 ILU race).
    - {b pigz}: two threads write different offsets of one buffer
      under different locks in critical sections too small for
      protection interleaving to gather counter-evidence (Kard's one
      false positive). *)

val nginx : Spec.t
(** Default run: 512 kB file. *)

val nginx_with_file : file_kb:int -> Spec.t
(** The section 7.2 latency sweep: 128, 256, 512, 1024 kB files. *)

val memcached : Spec.t
val pigz : Spec.t
val aget : Spec.t

val all : Spec.t list
