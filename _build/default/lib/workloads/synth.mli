(** The parameterized workload engine.

    Every benchmark model is an instance of one profile: a main thread
    allocates the sharable heap objects, then [threads] workers run
    iterations mixing private block accesses, per-object sweeps,
    compute, I/O, allocation churn and one critical section per
    iteration.  The profile's counts are taken from the paper's
    Table 3 row for the application, so the three overhead factors the
    paper names — protected sharable objects, critical-section
    entries, and dTLB pressure — are reproduced structurally. *)

type object_mode =
  | Partitioned
      (** Section [i] owns a fixed slice of the shared objects and a
          fixed lock: the PARSEC/SPLASH pattern.  Race free. *)
  | Striped
      (** Objects hash to one of [locks] lock stripes; call sites vary
          independently, so sections accumulate large object sets over
          time — the memcached pattern that exhausts protection keys.
          Race free (each object is always locked by its stripe). *)

type profile = {
  heap_objects : int;        (** Allocated by the main thread at start. *)
  heap_size : int;           (** Bytes per heap object. *)
  globals : int;
  global_size : int;
  churn_per_entry : float;   (** Worker alloc+free pairs per iteration. *)
  churn_size : int;
  sites : int;               (** Distinct synchronization call sites. *)
  locks : int;
  entries : int;             (** Critical-section entries, all threads. *)
  shared_rw : int;           (** Objects written inside sections. *)
  shared_ro : int;           (** Objects only read inside sections. *)
  rw_writes_per_entry : int;
  ro_reads_per_entry : int;
  block_accesses : int;      (** Private streaming accesses per iteration. *)
  block_span : int;          (** Private buffer size per thread. *)
  compute : int;             (** Extra compute cycles per iteration. *)
  cs_compute : int;          (** Compute cycles spent inside the
                                 critical section (drives section
                                 occupancy, hence contention and
                                 reactive faults). *)
  io : int;                  (** I/O cycles per iteration. *)
  sweep_objects : int;       (** Distinct heap objects touched
                                 individually per iteration (dTLB
                                 pressure under unique-page layout). *)
  mode : object_mode;
  min_entries : int;         (** Scaling floor (see {!Builder.scale_factor}). *)
}

val default : profile
(** A small, neutral profile; override fields as needed. *)

val build : profile -> threads:int -> scale:float -> seed:int -> Kard_sched.Machine.t -> unit

val effective_entries : profile -> scale:float -> int
(** How many entries a run at this scale will execute. *)
