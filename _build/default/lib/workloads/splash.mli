(** Models of the ten SPLASH-2x benchmarks evaluated in Table 3. *)

val ocean_cp : Spec.t
val ocean_ncp : Spec.t
val raytrace : Spec.t
val water_nsquared : Spec.t
val water_spatial : Spec.t
val radix : Spec.t
val lu_ncb : Spec.t
val lu_cb : Spec.t
val barnes : Spec.t
val fft : Spec.t

val all : Spec.t list
