let mib = 1024 * 1024

let make ~name ~description ~paper ~profile =
  { Spec.name;
    category = Spec.Splash2x;
    description;
    paper;
    default_threads = 4;
    build = (fun ~threads ~scale ~seed machine -> Synth.build profile ~threads ~scale ~seed machine) }

let ocean_cp =
  let paper =
    { Spec.p_heap = 370; p_global = 30; p_ro = 2; p_rw = 2; p_total_cs = 24; p_active_cs = 2;
      p_entries = 6_664; p_baseline_s = 3.803; p_alloc_pct = -8.3; p_kard_pct = -5.9;
      p_tsan_pct = 911.4; p_rss_kb = 913_048; p_rss_kard_pct = 0.3; p_dtlb_base = 0.0003;
      p_dtlb_alloc_pct = 0.2; p_dtlb_kard_pct = 0.4 }
  in
  make ~name:"ocean_cp" ~paper
    ~description:"ocean current simulation (contiguous partitions); huge grids, few sections"
    ~profile:
      { Synth.default with
        heap_objects = 370;
        heap_size = 2048;
        globals = 30;
        sites = 24;
        locks = 8;
        entries = 6_664;
        shared_rw = 2;
        shared_ro = 2;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 780_153;
        block_span = 220 * mib;
        compute = 808_322;
        mode = Synth.Partitioned }

let ocean_ncp =
  let paper =
    { Spec.p_heap = 16; p_global = 38; p_ro = 0; p_rw = 4; p_total_cs = 23; p_active_cs = 2;
      p_entries = 6_504; p_baseline_s = 5.631; p_alloc_pct = 0.0; p_kard_pct = 0.0;
      p_tsan_pct = 1036.2; p_rss_kb = 922_128; p_rss_kard_pct = 0.3; p_dtlb_base = 0.01149;
      p_dtlb_alloc_pct = 0.0; p_dtlb_kard_pct = 0.0 }
  in
  make ~name:"ocean_ncp" ~paper
    ~description:"ocean current simulation (non-contiguous partitions)"
    ~profile:
      { Synth.default with
        heap_objects = 16;
        heap_size = 4096;
        globals = 38;
        sites = 23;
        locks = 8;
        entries = 6_504;
        shared_rw = 4;
        shared_ro = 0;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 0;
        block_accesses = 1_345_600;
        block_span = 225 * mib;
        compute = 1_145_000;
        mode = Synth.Partitioned }

let raytrace =
  let paper =
    { Spec.p_heap = 6; p_global = 60; p_ro = 1; p_rw = 2; p_total_cs = 8; p_active_cs = 3;
      p_entries = 986_046; p_baseline_s = 4.355; p_alloc_pct = 1.3; p_kard_pct = 3.7;
      p_tsan_pct = 1368.6; p_rss_kb = 7_712; p_rss_kard_pct = 28.5; p_dtlb_base = 0.00002;
      p_dtlb_alloc_pct = 0.3; p_dtlb_kard_pct = 0.5 }
  in
  make ~name:"raytrace" ~paper
    ~description:"ray tracer; a million tiny work-queue critical sections"
    ~profile:
      { Synth.default with
        heap_objects = 6;
        heap_size = 4096;
        globals = 60;
        sites = 8;
        locks = 4;
        entries = 986_046;
        shared_rw = 2;
        shared_ro = 1;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 9_066;
        block_span = mib + (mib / 2);
        compute = 4_741;
        min_entries = 1_500;
        mode = Synth.Partitioned }

let water_nsquared =
  let paper =
    { Spec.p_heap = 128_007; p_global = 87; p_ro = 96_000; p_rw = 2; p_total_cs = 17;
      p_active_cs = 4; p_entries = 96_148; p_baseline_s = 10.022; p_alloc_pct = 9.1;
      p_kard_pct = 18.0; p_tsan_pct = 698.0; p_rss_kb = 12_260; p_rss_kard_pct = 4145.9;
      p_dtlb_base = 0.00001; p_dtlb_alloc_pct = 587.3; p_dtlb_kard_pct = 890.2 }
  in
  make ~name:"water_nsquared" ~paper
    ~description:"molecular dynamics (O(n^2)); 96k tiny molecule objects read in sections"
    ~profile:
      { Synth.default with
        heap_objects = 128_007;
        heap_size = 24; (* the 32 B-granule pathology of section 7.5 *)
        globals = 87;
        sites = 17;
        locks = 8;
        entries = 96_148;
        shared_rw = 2;
        shared_ro = 96_000;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 4;
        block_accesses = 109_139;
        block_span = 2 * mib;
        compute = 164_334;
        sweep_objects = 24;
        min_entries = 1_200;
        mode = Synth.Partitioned }

let water_spatial =
  let paper =
    { Spec.p_heap = 37_148; p_global = 99; p_ro = 1; p_rw = 1; p_total_cs = 2; p_active_cs = 2;
      p_entries = 675; p_baseline_s = 3.259; p_alloc_pct = 2.9; p_kard_pct = 5.6;
      p_tsan_pct = 546.1; p_rss_kb = 25_324; p_rss_kard_pct = 516.9; p_dtlb_base = 0.00004;
      p_dtlb_alloc_pct = 147.1; p_dtlb_kard_pct = 172.6 }
  in
  make ~name:"water_spatial" ~paper
    ~description:"molecular dynamics (spatial decomposition); 37k molecule objects"
    ~profile:
      { Synth.default with
        heap_objects = 37_148;
        heap_size = 24;
        globals = 99;
        sites = 2;
        locks = 2;
        entries = 675;
        shared_rw = 1;
        shared_ro = 1;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 3_955_000;
        block_span = 6 * mib;
        compute = 8_160_000;
        sweep_objects = 64;
        min_entries = 320;
        mode = Synth.Partitioned }

let radix =
  let paper =
    { Spec.p_heap = 17; p_global = 13; p_ro = 2; p_rw = 1; p_total_cs = 13; p_active_cs = 4;
      p_entries = 103; p_baseline_s = 5.173; p_alloc_pct = -1.4; p_kard_pct = -1.0;
      p_tsan_pct = 187.4; p_rss_kb = 1_051_536; p_rss_kard_pct = 0.2; p_dtlb_base = 0.00407;
      p_dtlb_alloc_pct = 0.1; p_dtlb_kard_pct = 0.1 }
  in
  make ~name:"radix" ~paper ~description:"radix sort; giant key arrays, a hundred sections"
    ~profile:
      { Synth.default with
        heap_objects = 17;
        heap_size = 8192;
        globals = 13;
        sites = 13;
        locks = 4;
        entries = 103;
        shared_rw = 1;
        shared_ro = 2;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 14_120_000;
        block_span = 250 * mib;
        compute = 98_400_000;
        min_entries = 103;
        mode = Synth.Partitioned }

let lu_ncb =
  let paper =
    { Spec.p_heap = 12; p_global = 11; p_ro = 2; p_rw = 1; p_total_cs = 6; p_active_cs = 2;
      p_entries = 1_040; p_baseline_s = 3.917; p_alloc_pct = -5.7; p_kard_pct = -5.2;
      p_tsan_pct = 292.9; p_rss_kb = 34_952; p_rss_kard_pct = 5.9; p_dtlb_base = 0.00049;
      p_dtlb_alloc_pct = -3.7; p_dtlb_kard_pct = -3.4 }
  in
  make ~name:"lu_ncb" ~paper ~description:"LU factorization (non-contiguous blocks)"
    ~profile:
      { Synth.default with
        heap_objects = 12;
        heap_size = 16384;
        globals = 11;
        sites = 6;
        locks = 3;
        entries = 1_040;
        shared_rw = 1;
        shared_ro = 2;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 1_654_600;
        block_span = 8 * mib;
        compute = 7_080_000;
        min_entries = 520;
        mode = Synth.Partitioned }

let lu_cb =
  let paper =
    { Spec.p_heap = 26; p_global = 10; p_ro = 0; p_rw = 3; p_total_cs = 6; p_active_cs = 2;
      p_entries = 2_080; p_baseline_s = 3.517; p_alloc_pct = -7.8; p_kard_pct = -4.7;
      p_tsan_pct = 259.0; p_rss_kb = 35_092; p_rss_kard_pct = 6.1; p_dtlb_base = 0.00003;
      p_dtlb_alloc_pct = 1.4; p_dtlb_kard_pct = 2.3 }
  in
  make ~name:"lu_cb" ~paper ~description:"LU factorization (contiguous blocks)"
    ~profile:
      { Synth.default with
        heap_objects = 26;
        heap_size = 16384;
        globals = 10;
        sites = 6;
        locks = 3;
        entries = 2_080;
        shared_rw = 3;
        shared_ro = 0;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 0;
        block_accesses = 656_935;
        block_span = 8 * mib;
        compute = 3_220_000;
        min_entries = 520;
        mode = Synth.Partitioned }

let barnes =
  let paper =
    { Spec.p_heap = 44; p_global = 54; p_ro = 11; p_rw = 13; p_total_cs = 5; p_active_cs = 5;
      p_entries = 1_784_848; p_baseline_s = 5.126; p_alloc_pct = 2.9; p_kard_pct = 34.1;
      p_tsan_pct = 1582.9; p_rss_kb = 68_000; p_rss_kard_pct = 3.3; p_dtlb_base = 0.00011;
      p_dtlb_alloc_pct = 3.0; p_dtlb_kard_pct = 37.1 }
  in
  make ~name:"barnes" ~paper
    ~description:"Barnes-Hut n-body; 1.8M entries over 13 contended cell objects"
    ~profile:
      { Synth.default with
        heap_objects = 44;
        heap_size = 512;
        globals = 54;
        sites = 5;
        locks = 5;
        entries = 1_784_848;
        shared_rw = 13;
        shared_ro = 11;
        rw_writes_per_entry = 2;
        ro_reads_per_entry = 2;
        block_accesses = 6_819;
        block_span = 16 * mib;
        compute = 1_600;
        cs_compute = 1_021;
        min_entries = 2_000;
        mode = Synth.Partitioned }

let fft =
  let paper =
    { Spec.p_heap = 11; p_global = 26; p_ro = 14; p_rw = 1; p_total_cs = 8; p_active_cs = 2;
      p_entries = 32; p_baseline_s = 2.874; p_alloc_pct = 0.7; p_kard_pct = 1.0;
      p_tsan_pct = 265.1; p_rss_kb = 789_588; p_rss_kard_pct = 0.3; p_dtlb_base = 0.00092;
      p_dtlb_alloc_pct = -0.2; p_dtlb_kard_pct = -0.2 }
  in
  make ~name:"fft" ~paper ~description:"fast Fourier transform; 32 entries over giant arrays"
    ~profile:
      { Synth.default with
        heap_objects = 11;
        heap_size = 32768;
        globals = 26;
        sites = 8;
        locks = 4;
        entries = 32;
        shared_rw = 1;
        shared_ro = 14;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 2;
        block_accesses = 35_710_000;
        block_span = 190 * mib;
        compute = 170_700_000;
        min_entries = 32;
        mode = Synth.Partitioned }

let all =
  [ ocean_cp; ocean_ncp; raytrace; water_nsquared; water_spatial; radix; lu_ncb; lu_cb; barnes; fft ]
