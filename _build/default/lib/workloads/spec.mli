(** Workload descriptions.

    Each workload models one evaluated application: its sharable
    objects, critical sections and access mix reproduce the execution
    statistics columns of Table 3, so the performance overheads that
    depend on them come out with the paper's shape.  The paper's own
    numbers ride along for side-by-side reporting. *)

type category =
  | Parsec
  | Splash2x
  | Real_world

(** One row of Table 3, as published. *)
type paper_row = {
  p_heap : int;
  p_global : int;
  p_ro : int;                (** Shared objects, Read-only domain. *)
  p_rw : int;                (** Shared objects, Read-write domain. *)
  p_total_cs : int;
  p_active_cs : int;
  p_entries : int;
  p_baseline_s : float;
  p_alloc_pct : float;
  p_kard_pct : float;
  p_tsan_pct : float;
  p_rss_kb : int;
  p_rss_kard_pct : float;
  p_dtlb_base : float;
  p_dtlb_alloc_pct : float;
  p_dtlb_kard_pct : float;
}

type t = {
  name : string;
  category : category;
  description : string;
  paper : paper_row;
  default_threads : int;
  build : threads:int -> scale:float -> seed:int -> Kard_sched.Machine.t -> unit;
      (** Register globals and spawn thread programs on a fresh
          machine.  [scale] in (0, 1] shrinks iteration and object
          counts proportionally, preserving per-entry structure. *)
}

val category_name : category -> string
val pp : Format.formatter -> t -> unit
