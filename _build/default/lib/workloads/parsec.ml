let mib = 1024 * 1024

let make ~name ~description ~paper ~profile =
  { Spec.name;
    category = Spec.Parsec;
    description;
    paper;
    default_threads = 4;
    build = (fun ~threads ~scale ~seed machine -> Synth.build profile ~threads ~scale ~seed machine) }

let streamcluster =
  let paper =
    { Spec.p_heap = 1_818; p_global = 20; p_ro = 0; p_rw = 1; p_total_cs = 6; p_active_cs = 3;
      p_entries = 115_760; p_baseline_s = 4.96; p_alloc_pct = 0.1; p_kard_pct = 0.3;
      p_tsan_pct = 2264.7; p_rss_kb = 12_592; p_rss_kard_pct = 6.1; p_dtlb_base = 0.00013;
      p_dtlb_alloc_pct = 5.1; p_dtlb_kard_pct = 9.2 }
  in
  make ~name:"streamcluster" ~paper
    ~description:"online clustering; barrier-heavy, one shared counter under locks"
    ~profile:
      { Synth.default with
        heap_objects = 192;
        heap_size = 64;
        churn_per_entry = 0.014; (* the other ~1,626 allocations churn *)
        churn_size = 64;
        globals = 20;
        sites = 6;
        locks = 6;
        entries = 115_760;
        shared_rw = 1;
        shared_ro = 0;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 0;
        block_accesses = 145_565;
        block_span = 3 * mib;
        compute = 17_191;
        sweep_objects = 0;
        mode = Synth.Partitioned }

let x264 =
  let paper =
    { Spec.p_heap = 15; p_global = 420; p_ro = 0; p_rw = 0; p_total_cs = 2; p_active_cs = 2;
      p_entries = 33_521; p_baseline_s = 1.749; p_alloc_pct = 0.4; p_kard_pct = 3.0;
      p_tsan_pct = 485.3; p_rss_kb = 29_732; p_rss_kard_pct = 2.0; p_dtlb_base = 0.0002;
      p_dtlb_alloc_pct = 0.6; p_dtlb_kard_pct = 2.6 }
  in
  make ~name:"x264" ~paper
    ~description:"video encoder; frame queue locks, no shared objects inside sections"
    ~profile:
      { Synth.default with
        heap_objects = 15;
        heap_size = 4096;
        globals = 420;
        global_size = 64;
        sites = 2;
        locks = 2;
        entries = 33_521;
        shared_rw = 0;
        shared_ro = 0;
        rw_writes_per_entry = 0;
        ro_reads_per_entry = 0;
        block_accesses = 37_983;
        block_span = 7 * mib;
        compute = 90_585;
        mode = Synth.Partitioned }

let vips =
  let paper =
    { Spec.p_heap = 102; p_global = 3_933; p_ro = 377; p_rw = 213; p_total_cs = 5; p_active_cs = 2;
      p_entries = 37; p_baseline_s = 2.145; p_alloc_pct = 0.6; p_kard_pct = 1.3;
      p_tsan_pct = 889.8; p_rss_kb = 24_360; p_rss_kard_pct = 3.3; p_dtlb_base = 0.00042;
      p_dtlb_alloc_pct = 0.7; p_dtlb_kard_pct = 3.8 }
  in
  make ~name:"vips" ~paper
    ~description:"image pipeline; very few section entries over many shared globals"
    ~profile:
      { Synth.default with
        heap_objects = 102;
        heap_size = 256;
        globals = 600; (* of the 3,933 globals, the shared ones matter *)
        global_size = 64;
        sites = 5;
        locks = 5;
        entries = 37;
        shared_rw = 213;
        shared_ro = 377;
        rw_writes_per_entry = 24;
        ro_reads_per_entry = 40;
        block_accesses = 77_390_000;
        block_span = 6 * mib;
        compute = 83_070_000;
        min_entries = 37;
        mode = Synth.Partitioned }

let bodytrack =
  let paper =
    { Spec.p_heap = 8_717; p_global = 125; p_ro = 7; p_rw = 48; p_total_cs = 8; p_active_cs = 1;
      p_entries = 56_196; p_baseline_s = 3.268; p_alloc_pct = 4.1; p_kard_pct = 10.4;
      p_tsan_pct = 655.6; p_rss_kb = 20_224; p_rss_kard_pct = 123.2; p_dtlb_base = 0.00003;
      p_dtlb_alloc_pct = 21.9; p_dtlb_kard_pct = 55.2 }
  in
  make ~name:"bodytrack" ~paper
    ~description:"particle-filter body tracking; thousands of small particle objects"
    ~profile:
      { Synth.default with
        heap_objects = 6_200;
        heap_size = 128;
        churn_per_entry = 0.045; (* ~2,500 further allocations churn *)
        churn_size = 128;
        globals = 125;
        sites = 8;
        locks = 8;
        entries = 56_196;
        shared_rw = 48;
        shared_ro = 7;
        rw_writes_per_entry = 2;
        ro_reads_per_entry = 1;
        block_accesses = 57_188;
        block_span = 4 * mib;
        compute = 93_530;
        sweep_objects = 48;
        mode = Synth.Partitioned }

let fluidanimate =
  let paper =
    { Spec.p_heap = 135_438; p_global = 25; p_ro = 24; p_rw = 5; p_total_cs = 8; p_active_cs = 4;
      p_entries = 4_402_000; p_baseline_s = 3.251; p_alloc_pct = 19.6; p_kard_pct = 61.9;
      p_tsan_pct = 1222.3; p_rss_kb = 374_760; p_rss_kard_pct = 142.6; p_dtlb_base = 0.00018;
      p_dtlb_alloc_pct = 32.3; p_dtlb_kard_pct = 72.0 }
  in
  make ~name:"fluidanimate" ~paper
    ~description:"fluid simulation; millions of tiny critical sections over cell locks"
    ~profile:
      { Synth.default with
        heap_objects = 135_438;
        heap_size = 32;
        globals = 25;
        sites = 8;
        locks = 8;
        entries = 4_402_000;
        shared_rw = 5;
        shared_ro = 24;
        rw_writes_per_entry = 1;
        ro_reads_per_entry = 1;
        block_accesses = 1_354;
        block_span = 48 * mib;
        compute = 874;
        sweep_objects = 12;
        min_entries = 2_000;
        mode = Synth.Partitioned }

let all = [ streamcluster; x264; vips; bodytrack; fluidanimate ]
