(** Controlled race scenarios: Table 1 (ILU scope), Figure 1
    (exclusive write / shared read), Table 4 (false-positive and
    false-negative cases) and a lockset-comparison case.

    Each scenario is a tiny two- or three-thread machine program with
    a known ground truth, used by the effectiveness experiments and
    the test suite. *)

type expectation =
  | Exactly of int
  | At_least of int
  | None_expected

type t = {
  name : string;
  description : string;
  threads : int;
  config : Kard_core.Config.t;  (** Kard configuration for the run. *)
  build : Kard_sched.Machine.t -> unit;
  expect_kard_ilu : expectation;  (** Surviving ILU records. *)
  expect_tsan : expectation;
  expect_lockset : expectation;
}

val ilu_lock_lock : t
val ilu_lock_nolock : t
val ilu_nolock_lock : t
val nolock_nolock : t
val same_lock : t
val shared_read : t
val write_vs_read : t
val different_offset_large_cs : t
val different_offset_small_cs : t

(** A true race between tiny, rarely-overlapping critical sections:
    detection is schedule-sensitive, and the section-5.5 delay
    injection mitigation measurably raises the per-run detection rate
    (see the explorer experiment and tests). *)
val small_cs_race : t
val key_sharing_false_negative : t
val sequential_ilu : t
val nested_sections : t

val all : t list
val find : string -> t
val check : expectation -> int -> bool
val pp_expectation : Format.formatter -> expectation -> unit
