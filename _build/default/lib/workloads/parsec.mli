(** Models of the five PARSEC 3.0 benchmarks evaluated in Table 3.

    Each model's structural parameters (sharable objects, shared
    objects, critical sections, entries) come from the paper's row;
    per-iteration access/compute mixes are derived from the row's
    baseline time and TSan slowdown (see DESIGN.md). *)

val streamcluster : Spec.t
val x264 : Spec.t
val vips : Spec.t
val bodytrack : Spec.t
val fluidanimate : Spec.t

val all : Spec.t list
