let mib = 1024 * 1024

(* No published Table 3 row exists for these (the paper omitted them);
   the zero row documents the expectation: no overhead. *)
let no_paper_row =
  { Spec.p_heap = 0; p_global = 0; p_ro = 0; p_rw = 0; p_total_cs = 0; p_active_cs = 0;
    p_entries = 0; p_baseline_s = 0.; p_alloc_pct = 0.; p_kard_pct = 0.; p_tsan_pct = 0.;
    p_rss_kb = 0; p_rss_kard_pct = 0.; p_dtlb_base = 0.; p_dtlb_alloc_pct = 0.;
    p_dtlb_kard_pct = 0. }

let make ~name ~description ~profile =
  { Spec.name;
    category = Spec.Parsec;
    description;
    paper = no_paper_row;
    default_threads = 4;
    build = (fun ~threads ~scale ~seed machine -> Synth.build profile ~threads ~scale ~seed machine) }

let lock_free_profile ~heap ~heap_size ~iterations ~block ~span ~compute =
  { Synth.default with
    Synth.heap_objects = heap;
    heap_size;
    globals = 16;
    churn_per_entry = 0.;
    sites = 0;
    locks = 0;
    entries = iterations;
    shared_rw = 0;
    shared_ro = 0;
    rw_writes_per_entry = 0;
    ro_reads_per_entry = 0;
    block_accesses = block;
    block_span = span;
    compute;
    sweep_objects = 0;
    min_entries = 200;
    mode = Synth.Partitioned }

let blackscholes =
  make ~name:"blackscholes" ~description:"option pricing; embarrassingly parallel, no locks"
    ~profile:
      (lock_free_profile ~heap:64 ~heap_size:4096 ~iterations:40_000 ~block:8_000
         ~span:(8 * mib) ~compute:12_000)

let swaptions =
  make ~name:"swaptions" ~description:"Monte Carlo swaption pricing; no locks"
    ~profile:
      (lock_free_profile ~heap:128 ~heap_size:1024 ~iterations:20_000 ~block:15_000
         ~span:(4 * mib) ~compute:30_000)

let canneal =
  make ~name:"canneal"
    ~description:"simulated annealing with lock-free synchronization; no lock calls"
    ~profile:
      (lock_free_profile ~heap:4_000 ~heap_size:64 ~iterations:60_000 ~block:2_500
         ~span:(64 * mib) ~compute:4_000)

let all = [ blackscholes; swaptions; canneal ]
