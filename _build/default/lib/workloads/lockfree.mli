(** Models of lock-free PARSEC benchmarks.

    The paper's evaluation omits benchmarks that use no locks "because
    they have no overhead under Kard" (section 7.2).  These models
    exist to demonstrate that claim: no critical sections means no
    key-enforced protection, no faults and no instrumentation — only
    the allocator substitution remains. *)

val blackscholes : Spec.t
val swaptions : Spec.t
val canneal : Spec.t
val all : Spec.t list
