module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Machine = Kard_sched.Machine

type expectation =
  | Exactly of int
  | At_least of int
  | None_expected

type t = {
  name : string;
  description : string;
  threads : int;
  config : Kard_core.Config.t;
  build : Kard_sched.Machine.t -> unit;
  expect_kard_ilu : expectation;
  expect_tsan : expectation;
  expect_lockset : expectation;
}

let check expectation count =
  match expectation with
  | Exactly n -> count = n
  | At_least n -> count >= n
  | None_expected -> count = 0

let pp_expectation fmt = function
  | Exactly n -> Format.fprintf fmt "exactly %d" n
  | At_least n -> Format.fprintf fmt ">=%d" n
  | None_expected -> Format.pp_print_string fmt "none"

(* Two threads over one shared 128 B heap object: thread 0 allocates
   it and runs [a k]; thread 1 waits for the allocation and runs
   [b k].  Bodies receive the object base lazily, per round. *)
let scaffold ?(rounds = 12) ~a ~b machine =
  let base = ref 0 in
  let ready () = !base <> 0 in
  (* [a] must see the base set by the Alloc, so each round is delayed. *)
  let t0 =
    Program.append
      (Program.of_list
         [ Op.Alloc
             { size = 128; site = 7400; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ])
      (Program.repeat rounds (fun k -> Program.delay (fun () -> Program.of_list (a ~base:!base ~k))))
  in
  let t1 =
    Program.append
      (Builder.wait_until ready)
      (Program.repeat rounds (fun k -> Program.delay (fun () -> Program.of_list (b ~base:!base ~k))))
  in
  let (_ : int) = Machine.spawn machine t0 in
  let (_ : int) = Machine.spawn machine t1 in
  ()

let lock_a = 201
let lock_b = 202
let site_a = 81
let site_b = 82

(* A critical section long enough that the two threads' sections
   overlap under the random scheduler. *)
let long_cs ~lock ~site body =
  Builder.critical_section ~lock ~site ((Op.Compute 30_000 :: body) @ [ Op.Compute 30_000 ])

let default_config = Kard_core.Config.default

let ilu_lock_lock =
  { name = "ilu-lock-lock";
    description = "Table 1 row 1: both threads write the object under different locks";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_a [ Op.Write base ])
        ~b:(fun ~base ~k:_ -> long_cs ~lock:lock_b ~site:site_b [ Op.Write base ]);
    expect_kard_ilu = At_least 1;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

let ilu_lock_nolock =
  { name = "ilu-lock-nolock";
    description = "Table 1 row 2: locked writes vs lock-free writes";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_a [ Op.Write base ])
        ~b:(fun ~base ~k:_ -> [ Op.Compute 10_000; Op.Write base ]);
    expect_kard_ilu = At_least 1;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

let ilu_nolock_lock =
  { name = "ilu-nolock-lock";
    description = "Table 1 row 3: lock-free writes vs locked writes";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> [ Op.Compute 10_000; Op.Write base ])
        ~b:(fun ~base ~k:_ -> long_cs ~lock:lock_b ~site:site_b [ Op.Write base ]);
    expect_kard_ilu = At_least 1;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

let nolock_nolock =
  { name = "nolock-nolock";
    description = "Table 1 row 4: lock-free vs lock-free — outside ILU's scope by design";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> [ Op.Write base; Op.Compute 5_000 ])
        ~b:(fun ~base ~k:_ -> [ Op.Write base; Op.Compute 5_000 ]);
    expect_kard_ilu = Exactly 0;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

let same_lock =
  { name = "same-lock";
    description = "consistent locking: both threads use the same lock — no race anywhere";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_a [ Op.Read base; Op.Write base ])
        ~b:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_b [ Op.Read base; Op.Write base ]);
    expect_kard_ilu = Exactly 0;
    expect_tsan = Exactly 0;
    expect_lockset = Exactly 0 }

let shared_read =
  { name = "shared-read";
    description = "Figure 1b: both threads only read under different locks — shared read is fine";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_a [ Op.Read base ])
        ~b:(fun ~base ~k:_ -> long_cs ~lock:lock_b ~site:site_b [ Op.Read base ]);
    expect_kard_ilu = Exactly 0;
    expect_tsan = Exactly 0;
    expect_lockset = Exactly 0 }

let write_vs_read =
  { name = "exclusive-write";
    description = "Figure 1a: a locked writer vs a differently-locked reader";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ -> long_cs ~lock:lock_a ~site:site_a [ Op.Write base ])
        ~b:(fun ~base ~k:_ -> long_cs ~lock:lock_b ~site:site_b [ Op.Read base ]);
    expect_kard_ilu = At_least 1;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

let different_offset_large_cs =
  { name = "different-offset-large-cs";
    description =
      "Table 4 / Figure 4: disjoint offsets under different locks; large sections let \
       protection interleaving gather both sides and prune the record";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ ->
          long_cs ~lock:lock_a ~site:site_a
            [ Op.Write base; Op.Compute 40_000; Op.Write base; Op.Compute 40_000; Op.Write base ])
        ~b:(fun ~base ~k:_ ->
          long_cs ~lock:lock_b ~site:site_b
            [ Op.Write (base + 64);
              Op.Compute 40_000;
              Op.Write (base + 64);
              Op.Compute 40_000;
              Op.Write (base + 64) ]);
    expect_kard_ilu = Exactly 0;
    expect_tsan = Exactly 0;
    (* Granule-level lockset cannot relate the two offsets either. *)
    expect_lockset = Exactly 0 }

let different_offset_small_cs =
  { name = "different-offset-small-cs";
    description =
      "the pigz false positive: disjoint offsets but sections too small to interleave — \
       the record survives";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ ->
          Builder.critical_section ~lock:lock_a ~site:site_a [ Op.Write base ])
        ~b:(fun ~base ~k:_ ->
          Builder.critical_section ~lock:lock_b ~site:site_b [ Op.Write (base + 64) ]);
    expect_kard_ilu = At_least 1;
    expect_tsan = Exactly 0;
    expect_lockset = Exactly 0 }

(* Tiny critical sections that rarely overlap: a frequent writer under
   lock a races a rare writer under lock b.  The rare writer's fault
   usually lands shortly after (not during) one of the frequent
   writer's sections, so detection depends on the post-release window
   — which delay injection widens. *)
let small_cs_race =
  { name = "small-cs-race";
    description = "true race between tiny, rarely-overlapping sections (delay injection target)";
    threads = 2;
    config = default_config;
    build =
      scaffold ~rounds:8
        ~a:(fun ~base ~k:_ ->
          List.init 10 (fun _ -> Op.Compute 3_000)
          @ Builder.critical_section ~lock:lock_a ~site:site_a [ Op.Write base ])
        ~b:(fun ~base ~k ->
          if k = 7 then
            Op.Compute 3_000
            :: Builder.critical_section ~lock:lock_b ~site:site_b [ Op.Write base ]
          else [ Op.Compute 3_000 ]);
    expect_kard_ilu = At_least 0;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

(* With a single data key, a new object identified while the key is
   held must share it.  Once both threads hold the key, the sharing
   thread's write to the {e other} section's object raises no fault —
   the documented false negative.  The order is pinned: thread 1 only
   starts once thread 0 is inside its section (signaled by an
   allocation performed inside the section, standing in for a
   condition variable). *)
let key_sharing_false_negative =
  { name = "key-sharing-false-negative";
    description = "Table 4: key sharing hides a cross-section conflict (1 data key)";
    threads = 2;
    config = { default_config with Kard_core.Config.data_keys = 1 };
    build =
      (fun machine ->
        let base_a = ref 0 and base_b = ref 0 in
        let t0_in_section = ref false in
        let t1_done = ref false in
        (* Thread 0 stays in its section until thread 1 finished, so
           the two sections deterministically overlap. *)
        let t0 =
          Program.concat
            [ Program.of_list
                [ Op.Alloc
                    { size = 64; site = 7401; on_result = (fun m -> base_a := m.Kard_alloc.Obj_meta.base) };
                  Op.Alloc
                    { size = 64; site = 7402; on_result = (fun m -> base_b := m.Kard_alloc.Obj_meta.base) };
                  Op.Lock { lock = lock_a; site = site_a } ];
              Program.delay (fun () ->
                  Program.of_list
                    [ Op.Write !base_a; (* k1 is now held by thread 0 *)
                      Op.Alloc { size = 8; site = 7405; on_result = (fun _ -> t0_in_section := true) } ]);
              Builder.wait_until (fun () -> !t1_done);
              Program.delay (fun () ->
                  Program.of_list [ Op.Write !base_a; Op.Unlock { lock = lock_a } ]) ]
        in
        let t1 =
          Program.concat
            [ Builder.wait_until (fun () -> !t0_in_section);
              Program.delay (fun () ->
                  Program.of_list
                    [ Op.Lock { lock = lock_b; site = site_b };
                      Op.Write !base_b; (* identified while k1 is held: shared *)
                      Op.Write !base_a; (* the hidden conflict: no fault *)
                      Op.Alloc { size = 8; site = 7406; on_result = (fun _ -> t1_done := true) };
                      Op.Unlock { lock = lock_b } ]) ]
        in
        let (_ : int) = Machine.spawn machine t0 in
        let (_ : int) = Machine.spawn machine t1 in
        ());
    expect_kard_ilu = Exactly 0;
    expect_tsan = At_least 1;
    expect_lockset = At_least 1 }

(* The accesses use inconsistent locks but can never be concurrent:
   thread 1 starts only after thread 0 finished (join modeled by a
   final allocation plus a lock handoff for the happens-before edge).
   Lockset still warns — the schedule-insensitive false positive ILU
   avoids (section 3.1). *)
let sequential_ilu =
  { name = "sequential-ilu";
    description = "fork-join: inconsistent locks but never concurrent — only lockset warns";
    threads = 2;
    config = default_config;
    build =
      (fun machine ->
        let base = ref 0 in
        let done_flag = ref false in
        let lock_join = 203 in
        let t0 =
          Program.concat
            [ Program.of_list
                [ Op.Alloc
                    { size = 64; site = 7403; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ];
              Program.repeat 6 (fun _ ->
                  Program.delay (fun () ->
                      Program.of_list
                        (Builder.critical_section ~lock:lock_a ~site:site_a [ Op.Write !base ])));
              (* Release the join lock, then signal completion (the
                 allocation stands in for pthread_join's return). *)
              Program.of_list
                (Builder.critical_section ~lock:lock_join ~site:89 [ Op.Compute 10 ]);
              Program.of_list
                [ Op.Alloc { size = 8; site = 7404; on_result = (fun _ -> done_flag := true) } ] ]
        in
        let t1 =
          Program.concat
            [ Builder.wait_until (fun () -> !done_flag);
              Program.of_list [ Op.Io 60_000 ] (* outlast the fault-delay window *);
              Program.of_list (Builder.critical_section ~lock:lock_join ~site:88 [ Op.Compute 10 ]);
              Program.repeat 6 (fun _ ->
                  Program.delay (fun () ->
                      Program.of_list
                        (Builder.critical_section ~lock:lock_b ~site:site_b [ Op.Write !base ]))) ]
        in
        let (_ : int) = Machine.spawn machine t0 in
        let (_ : int) = Machine.spawn machine t1 in
        ());
    expect_kard_ilu = Exactly 0;
    expect_tsan = Exactly 0;
    expect_lockset = At_least 1 }

let nested_sections =
  { name = "nested-sections";
    description = "nested locks, consistent order; exercises the key stack, no races";
    threads = 2;
    config = default_config;
    build =
      scaffold
        ~a:(fun ~base ~k:_ ->
          [ Op.Lock { lock = lock_a; site = site_a };
            Op.Write base;
            Op.Lock { lock = lock_b; site = site_b };
            Op.Write (base + 8);
            Op.Compute 5_000;
            Op.Unlock { lock = lock_b };
            Op.Unlock { lock = lock_a } ])
        ~b:(fun ~base ~k:_ ->
          [ Op.Lock { lock = lock_a; site = site_a };
            Op.Write base;
            Op.Lock { lock = lock_b; site = site_b };
            Op.Write (base + 8);
            Op.Compute 5_000;
            Op.Unlock { lock = lock_b };
            Op.Unlock { lock = lock_a } ]);
    expect_kard_ilu = Exactly 0;
    expect_tsan = Exactly 0;
    expect_lockset = Exactly 0 }

let all =
  [ ilu_lock_lock;
    ilu_lock_nolock;
    ilu_nolock_lock;
    nolock_nolock;
    same_lock;
    shared_read;
    write_vs_read;
    different_offset_large_cs;
    different_offset_small_cs;
    small_cs_race;
    key_sharing_false_negative;
    sequential_ilu;
    nested_sections ]

let find name =
  match List.find_opt (fun s -> String.equal s.name name) all with
  | Some s -> s
  | None -> raise Not_found
