(* End-to-end tests of the Kard runtime over the simulated machine:
   the controlled race scenarios with their ground truth, plus
   configuration ablations. *)

module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op
module Detector = Kard_core.Detector
module Config = Kard_core.Config
module Race_suite = Kard_workloads.Race_suite
module Runner = Kard_harness.Runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Every scenario meets its expectation under all three detectors} *)

let scenario_case (s : Race_suite.t) =
  Alcotest.test_case s.Race_suite.name `Quick (fun () ->
      let kard = Runner.run_scenario ~detector:(Runner.Kard s.Race_suite.config) s in
      let tsan = Runner.run_scenario ~detector:Runner.Tsan s in
      let lockset = Runner.run_scenario ~detector:Runner.Lockset s in
      let fmt_exp e = Format.asprintf "%a" Race_suite.pp_expectation e in
      let kard_n = List.length kard.Runner.kard_ilu_races in
      if not (Race_suite.check s.Race_suite.expect_kard_ilu kard_n) then
        Alcotest.failf "kard: got %d, expected %s" kard_n (fmt_exp s.Race_suite.expect_kard_ilu);
      let tsan_n = List.length tsan.Runner.tsan_races in
      if not (Race_suite.check s.Race_suite.expect_tsan tsan_n) then
        Alcotest.failf "tsan: got %d, expected %s" tsan_n (fmt_exp s.Race_suite.expect_tsan);
      let lockset_n = List.length lockset.Runner.lockset_warnings in
      if not (Race_suite.check s.Race_suite.expect_lockset lockset_n) then
        Alcotest.failf "lockset: got %d, expected %s" lockset_n (fmt_exp s.Race_suite.expect_lockset))

(* Scenarios must hold across scheduler seeds, not just the default. *)
let seed_robustness_case seed =
  Alcotest.test_case (Printf.sprintf "ilu-lock-lock seed %d" seed) `Quick (fun () ->
      let s = Race_suite.ilu_lock_lock in
      let kard = Runner.run_scenario ~seed ~detector:(Runner.Kard s.Race_suite.config) s in
      check "race found" true (List.length kard.Runner.kard_ilu_races >= 1))

let seed_robustness_negative seed =
  Alcotest.test_case (Printf.sprintf "same-lock seed %d" seed) `Quick (fun () ->
      let s = Race_suite.same_lock in
      let kard = Runner.run_scenario ~seed ~detector:(Runner.Kard s.Race_suite.config) s in
      check_int "no false positive" 0 (List.length kard.Runner.kard_ilu_races))

(* {1 Ablations} *)

let run_scenario_with_config s config =
  let cell = ref None in
  let machine =
    Machine.create ~seed:42
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Detector.make ~config ~cell)
      ()
  in
  s.Race_suite.build machine;
  let (_ : Machine.report) = Machine.run machine in
  Option.get !cell

let test_ablation_no_interleaving () =
  (* Without protection interleaving, the different-offset record is
     never pruned — the false positive stays. *)
  let config =
    { Race_suite.different_offset_large_cs.Race_suite.config with
      Config.protection_interleaving = false }
  in
  let d = run_scenario_with_config Race_suite.different_offset_large_cs config in
  check "false positive without interleaving" true (List.length (Detector.ilu_races d) >= 1);
  let default = run_scenario_with_config Race_suite.different_offset_large_cs Config.default in
  check_int "pruned with interleaving" 0 (List.length (Detector.ilu_races default))

let test_ablation_no_dedupe () =
  let config = { Config.default with Config.redundancy_pruning = false } in
  let with_dedupe = run_scenario_with_config Race_suite.ilu_lock_lock Config.default in
  let without = run_scenario_with_config Race_suite.ilu_lock_lock config in
  check "dedupe reduces records" true
    (List.length (Detector.races without) >= List.length (Detector.races with_dedupe));
  check "duplicates appear without dedupe" true
    ((Detector.stats without).Detector.records_logged
    >= (Detector.stats with_dedupe).Detector.records_logged)

let test_ablation_reactive_only () =
  (* Disabling proactive acquisition must not lose the race; it only
     costs more faults. *)
  let config = { Config.default with Config.proactive_acquisition = false } in
  let d = run_scenario_with_config Race_suite.ilu_lock_lock config in
  check "race still found" true (List.length (Detector.ilu_races d) >= 1);
  let stats = Detector.stats d in
  check_int "nothing proactive" 0 stats.Detector.proactive_acquisitions

let test_software_fallback_eliminates_fn () =
  (* Section 8: with the software fallback, the 1-key sharing scenario
     no longer misses the conflict — at a fault-per-access cost. *)
  let config =
    { Config.default with Config.data_keys = 1; software_fallback = true }
  in
  let d = run_scenario_with_config Race_suite.key_sharing_false_negative config in
  let stats = Detector.stats d in
  check "object pooled instead of shared" true (stats.Detector.soft_fallbacks >= 1);
  check_int "no sharing events" 0 stats.Detector.sharing_events;
  check "soft faults charged" true (stats.Detector.soft_faults >= 1);
  check "conflict detected" true (List.length (Detector.ilu_races d) >= 1)

let test_software_fallback_no_false_alarms () =
  (* Consistent locking stays clean under the fallback too. *)
  let config = { Config.default with Config.data_keys = 1; software_fallback = true } in
  let d = run_scenario_with_config Race_suite.same_lock config in
  check_int "no records" 0 (List.length (Detector.ilu_races d))

let test_delay_injection_raises_detection () =
  (* Section 5.5: "mitigated with delay injection" — the rarely
     overlapping sections' race is found far more often when exits
     linger. *)
  let rate config =
    (Kard_harness.Explorer.explore_scenario ~seeds:(List.init 10 (fun i -> i + 1)) ~config
       Race_suite.small_cs_race)
      .Kard_harness.Explorer.detection_rate
  in
  let without = rate Config.default in
  let with_delay = rate { Config.default with Config.exit_delay_cycles = 100_000 } in
  check "delay raises the detection rate" true (with_delay > without);
  check "delay makes detection near-certain" true (with_delay >= 0.9)

let test_delay_injection_no_false_alarms () =
  let config = { Config.default with Config.exit_delay_cycles = 100_000 } in
  let d = run_scenario_with_config Race_suite.same_lock config in
  check_int "consistent locking stays clean" 0 (List.length (Detector.ilu_races d))

let test_binary_mode_still_detects () =
  (* Section 8's binary deployment: sections named by lock only.
     Detection of ILU races is unchanged (the conflicting sides hold
     different locks by definition); consistent locking stays clean. *)
  let config = { Config.default with Config.section_identity = Config.By_lock } in
  let racy = run_scenario_with_config Race_suite.ilu_lock_lock config in
  check "race still found" true (List.length (Detector.ilu_races racy) >= 1);
  let clean = run_scenario_with_config Race_suite.same_lock config in
  check_int "no false positives" 0 (List.length (Detector.ilu_races clean))

let test_key_sharing_only_under_pressure () =
  (* With the full 13 keys the sharing scenario's conflict is caught. *)
  let d = run_scenario_with_config Race_suite.key_sharing_false_negative Config.default in
  check "13 keys avoid the false negative" true (List.length (Detector.ilu_races d) >= 1);
  let one_key = { Config.default with Config.data_keys = 1 } in
  let d1 = run_scenario_with_config Race_suite.key_sharing_false_negative one_key in
  check_int "1 key shares and misses" 0 (List.length (Detector.ilu_races d1));
  check "sharing event recorded" true ((Detector.stats d1).Detector.sharing_events >= 1)

(* {1 Runtime mechanics through a micro program} *)

let micro_machine config =
  let cell = ref None in
  let machine =
    Machine.create ~seed:1
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Detector.make ~config ~cell)
      ()
  in
  (machine, cell)

let test_identification_and_domains () =
  let machine, cell = micro_machine Config.default in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 32; site = 1; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () ->
            Program.of_list
              (Kard_workloads.Builder.critical_section ~lock:1 ~site:5
                 [ Op.Read !base; Op.Write !base ])) ]
  in
  let (_ : int) = Machine.spawn machine prog in
  let (_ : Machine.report) = Machine.run machine in
  let d = Option.get !cell in
  let stats = Detector.stats d in
  (* Read identifies into Read-only, the write then migrates to
     Read-write: two identification faults. *)
  check_int "read identification" 1 stats.Detector.identifications_read;
  check_int "write identification" 1 stats.Detector.identifications_write;
  check_int "unique ro seen" 1 (Detector.unique_ro_objects d);
  check_int "unique rw seen" 1 (Detector.unique_rw_objects d);
  check_int "no races" 0 (List.length (Detector.races d))

let test_outside_cs_access_is_free () =
  let machine, cell = micro_machine Config.default in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 32; site = 1; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () -> Program.of_list [ Op.Write !base; Op.Read !base ]) ]
  in
  let (_ : int) = Machine.spawn machine prog in
  let report = Machine.run machine in
  let d = Option.get !cell in
  (* Outside critical sections the thread holds k_na read-write: no
     faults, no identification — Kard's lightweight claim. *)
  check_int "no faults" 0 report.Machine.faults;
  check_int "nothing identified" 0 (Detector.stats d).Detector.identifications_write

let test_proactive_second_entry () =
  let machine, cell = micro_machine Config.default in
  let base = ref 0 in
  let cs () =
    Program.delay (fun () ->
        Program.of_list
          (Kard_workloads.Builder.critical_section ~lock:1 ~site:5 [ Op.Write !base ]))
  in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 32; site = 1; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ];
        cs ();
        cs () ]
  in
  let (_ : int) = Machine.spawn machine prog in
  let (_ : Machine.report) = Machine.run machine in
  let d = Option.get !cell in
  let stats = Detector.stats d in
  (* The second entry acquires the key proactively: only one fault. *)
  check_int "one identification" 1 stats.Detector.identifications_write;
  check "proactive acquisition happened" true (stats.Detector.proactive_acquisitions >= 1)

let test_free_in_section_cleans_up () =
  let machine, cell = micro_machine Config.default in
  let meta = ref None in
  let prog =
    Program.concat
      [ Program.of_list [ Op.Lock { lock = 1; site = 5 } ];
        Program.of_list [ Op.Alloc { size = 32; site = 1; on_result = (fun m -> meta := Some m) } ];
        Program.delay (fun () ->
            let m = Option.get !meta in
            Program.of_list [ Op.Write m.Kard_alloc.Obj_meta.base; Op.Free m ]);
        Program.of_list [ Op.Unlock { lock = 1 } ] ]
  in
  let (_ : int) = Machine.spawn machine prog in
  let (_ : Machine.report) = Machine.run machine in
  let d = Option.get !cell in
  check_int "no dangling domains" 0 (Kard_core.Domain_state.tracked (Detector.domains d));
  check_int "no races" 0 (List.length (Detector.races d))

let test_lifo_unlock_enforced () =
  let machine, _ = micro_machine Config.default in
  let (_ : int) =
    Machine.spawn machine
      (Program.of_list
         [ Op.Lock { lock = 1; site = 1 };
           Op.Lock { lock = 2; site = 2 };
           Op.Unlock { lock = 1 } (* wrong order *) ])
  in
  check "non-LIFO unlock rejected" true
    (try
       ignore (Machine.run machine);
       false
     with Machine.Stuck _ | Invalid_argument _ -> true)

let () =
  Alcotest.run "kard_detector"
    [ ("scenarios", List.map scenario_case Race_suite.all);
      ( "seed robustness",
        List.map seed_robustness_case [ 1; 7; 13 ] @ List.map seed_robustness_negative [ 1; 7; 13 ] );
      ( "ablations",
        [ Alcotest.test_case "no interleaving" `Quick test_ablation_no_interleaving;
          Alcotest.test_case "no dedupe" `Quick test_ablation_no_dedupe;
          Alcotest.test_case "reactive only" `Quick test_ablation_reactive_only;
          Alcotest.test_case "key sharing pressure" `Quick test_key_sharing_only_under_pressure;
          Alcotest.test_case "software fallback kills FN" `Quick
            test_software_fallback_eliminates_fn;
          Alcotest.test_case "software fallback stays clean" `Quick
            test_software_fallback_no_false_alarms;
          Alcotest.test_case "delay injection raises detection" `Slow
            test_delay_injection_raises_detection;
          Alcotest.test_case "delay injection stays clean" `Quick
            test_delay_injection_no_false_alarms;
          Alcotest.test_case "binary (by-lock) mode" `Quick test_binary_mode_still_detects ] );
      ( "mechanics",
        [ Alcotest.test_case "identification and domains" `Quick test_identification_and_domains;
          Alcotest.test_case "outside-CS access free" `Quick test_outside_cs_access_is_free;
          Alcotest.test_case "proactive second entry" `Quick test_proactive_second_entry;
          Alcotest.test_case "free in section" `Quick test_free_in_section_cleans_up;
          Alcotest.test_case "LIFO unlock" `Quick test_lifo_unlock_enforced ] ) ]
