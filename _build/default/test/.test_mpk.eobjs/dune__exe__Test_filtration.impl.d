test/test_filtration.ml: Alcotest Hashtbl Int Kard_core List Option Printf QCheck QCheck_alcotest Set String
