test/test_alloc.ml: Alcotest Gen Kard_alloc Kard_mpk Kard_vm List QCheck QCheck_alcotest
