test/test_algorithm.mli:
