test/test_core_maps.ml: Alcotest Format Kard_core Kard_mpk List QCheck QCheck_alcotest
