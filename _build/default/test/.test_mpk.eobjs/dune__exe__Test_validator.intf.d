test/test_validator.mli:
