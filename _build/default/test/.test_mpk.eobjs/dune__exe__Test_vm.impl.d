test/test_vm.ml: Alcotest Bytes Int64 Kard_mpk Kard_vm
