test/test_workloads.ml: Alcotest Kard_core Kard_harness Kard_sched Kard_workloads List Option QCheck QCheck_alcotest String
