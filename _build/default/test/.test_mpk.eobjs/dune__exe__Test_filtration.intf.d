test/test_filtration.mli:
