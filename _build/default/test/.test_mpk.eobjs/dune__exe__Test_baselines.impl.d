test/test_baselines.ml: Alcotest Gen Kard_alloc Kard_baselines Kard_mpk Kard_sched Kard_vm Kard_workloads List Option QCheck QCheck_alcotest
