test/test_algorithm.ml: Alcotest Hashtbl Kard_core List Option QCheck QCheck_alcotest
