test/test_core_maps.mli:
