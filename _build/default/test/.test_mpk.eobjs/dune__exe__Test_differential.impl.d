test/test_differential.ml: Alcotest Array Kard_alloc Kard_core Kard_sched Kard_workloads List Option QCheck QCheck_alcotest
