test/test_mpk.ml: Alcotest Fun Kard_mpk List QCheck QCheck_alcotest Result
