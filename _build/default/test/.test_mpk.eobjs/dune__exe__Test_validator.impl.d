test/test_validator.ml: Alcotest Kard_alloc Kard_core Kard_mpk Kard_sched Kard_workloads List Option
