test/test_detector.ml: Alcotest Format Kard_alloc Kard_core Kard_harness Kard_sched Kard_workloads List Option Printf
