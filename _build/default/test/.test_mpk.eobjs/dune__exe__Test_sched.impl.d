test/test_sched.ml: Alcotest Array Kard_alloc Kard_sched Kard_workloads List
