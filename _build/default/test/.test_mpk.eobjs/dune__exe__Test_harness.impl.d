test/test_harness.ml: Alcotest Kard_core Kard_harness Kard_sched Kard_workloads List String
