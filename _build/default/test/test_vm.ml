(* Tests for the virtual-memory substrate: physical frames, in-memory
   files and the address space (including the shared-mapping aliasing
   that consolidated unique page allocation relies on). *)

module Phys_mem = Kard_vm.Phys_mem
module Memfd = Kard_vm.Memfd
module Address_space = Kard_vm.Address_space
module Page = Kard_mpk.Page

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Phys_mem} *)

let test_phys_alloc_free () =
  let phys = Phys_mem.create () in
  let f1 = Phys_mem.alloc_frame phys in
  let f2 = Phys_mem.alloc_frame phys in
  check "distinct frames" true (Phys_mem.frame_to_int f1 <> Phys_mem.frame_to_int f2);
  check_int "two resident" 2 (Phys_mem.resident_frames phys);
  Phys_mem.free_frame phys f1;
  check_int "one resident" 1 (Phys_mem.resident_frames phys);
  check_int "peak stays" (2 * Page.size) (Phys_mem.peak_resident_bytes phys);
  check_int "total allocated" 2 (Phys_mem.total_allocated_frames phys)

let test_phys_double_free () =
  let phys = Phys_mem.create () in
  let f = Phys_mem.alloc_frame phys in
  Phys_mem.free_frame phys f;
  check "double free rejected" true
    (try
       Phys_mem.free_frame phys f;
       false
     with Invalid_argument _ -> true)

let test_phys_lazy_bytes () =
  let phys = Phys_mem.create () in
  let f = Phys_mem.alloc_frame phys in
  let b = Phys_mem.bytes_of_frame phys f in
  check_int "page-sized backing" Page.size (Bytes.length b);
  Bytes.set b 0 'x';
  check "same backing on re-fetch" true (Bytes.get (Phys_mem.bytes_of_frame phys f) 0 = 'x')

(* {1 Memfd} *)

let test_memfd_ftruncate () =
  let phys = Phys_mem.create () in
  let fd = Memfd.create phys ~name:"test" in
  check_int "empty" 0 (Memfd.size fd);
  Memfd.ftruncate fd 5000;
  check_int "rounded to pages" (2 * Page.size) (Memfd.size fd);
  check_int "frames allocated" 2 (Phys_mem.resident_frames phys);
  Memfd.ftruncate fd 4096;
  check_int "shrunk" Page.size (Memfd.size fd);
  check_int "frame freed" 1 (Phys_mem.resident_frames phys)

let test_memfd_bounds () =
  let phys = Phys_mem.create () in
  let fd = Memfd.create phys ~name:"test" in
  Memfd.ftruncate fd 4096;
  check "out-of-range page rejected" true
    (try
       ignore (Memfd.frame_of_page fd 1);
       false
     with Invalid_argument _ -> true)

(* {1 Address_space} *)

let test_aspace_anon () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let base = Address_space.mmap_anon aspace ~pages:2 in
  check "mapped" true (Address_space.is_mapped aspace base);
  check "second page mapped" true (Address_space.is_mapped aspace (base + Page.size));
  check "address zero unmapped" false (Address_space.is_mapped aspace 0);
  Address_space.write_u8 aspace base 0xab;
  check_int "read back" 0xab (Address_space.read_u8 aspace base);
  Address_space.munmap aspace ~base ~pages:2;
  check "unmapped" false (Address_space.is_mapped aspace base);
  check_int "frames freed" 0 (Phys_mem.resident_frames phys)

(* The heart of consolidation: two virtual pages aliasing one file
   page really share data. *)
let test_aspace_file_aliasing () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let fd = Memfd.create phys ~name:"heap" in
  Memfd.ftruncate fd Page.size;
  let v1 = Address_space.mmap_file aspace fd ~file_page:0 ~pages:1 in
  let v2 = Address_space.mmap_file aspace fd ~file_page:0 ~pages:1 in
  check "distinct virtual pages" true (v1 <> v2);
  Address_space.write_u8 aspace (v1 + 100) 42;
  check_int "aliased read" 42 (Address_space.read_u8 aspace (v2 + 100));
  check_int "one physical frame" 1 (Phys_mem.resident_frames phys);
  check_int "two mapped pages" 2 (Address_space.mapped_pages aspace)

let test_aspace_segfault () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  check "segfault on unmapped" true
    (try
       ignore (Address_space.read_u8 aspace 0x123456);
       false
     with Address_space.Segfault _ -> true)

let test_aspace_i64 () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let base = Address_space.mmap_anon aspace ~pages:2 in
  (* Straddles the page boundary on purpose. *)
  let addr = base + Page.size - 4 in
  Address_space.write_i64 aspace addr 0x1122334455667788L;
  check "i64 roundtrip across pages" true
    (Int64.equal (Address_space.read_i64 aspace addr) 0x1122334455667788L)

let test_aspace_reserve () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let base = Address_space.reserve aspace ~pages:4 in
  check "reserved not mapped" false (Address_space.is_mapped aspace base);
  check_int "no frames" 0 (Phys_mem.resident_frames phys);
  (* Reservations must not collide with later mappings. *)
  let other = Address_space.mmap_anon aspace ~pages:1 in
  check "no overlap" true (other >= base + (4 * Page.size) || other < base)

let test_aspace_accounting () =
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let base = Address_space.mmap_anon aspace ~pages:3 in
  check_int "pt pages" 1 (Address_space.page_table_pages aspace);
  check "peak mapped at least 3" true (Address_space.peak_mapped_pages aspace >= 3);
  Address_space.munmap aspace ~base ~pages:3;
  check_int "pt pages after unmap" 0 (Address_space.page_table_pages aspace);
  check "peak retained" true (Address_space.peak_mapped_pages aspace >= 3)

let () =
  Alcotest.run "kard_vm"
    [ ( "phys_mem",
        [ Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "double free" `Quick test_phys_double_free;
          Alcotest.test_case "lazy bytes" `Quick test_phys_lazy_bytes ] );
      ( "memfd",
        [ Alcotest.test_case "ftruncate" `Quick test_memfd_ftruncate;
          Alcotest.test_case "bounds" `Quick test_memfd_bounds ] );
      ( "address_space",
        [ Alcotest.test_case "anonymous mapping" `Quick test_aspace_anon;
          Alcotest.test_case "file aliasing" `Quick test_aspace_file_aliasing;
          Alcotest.test_case "segfault" `Quick test_aspace_segfault;
          Alcotest.test_case "i64 across pages" `Quick test_aspace_i64;
          Alcotest.test_case "reserve" `Quick test_aspace_reserve;
          Alcotest.test_case "accounting" `Quick test_aspace_accounting ] ) ]
