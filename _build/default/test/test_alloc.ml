(* Tests for the allocators: consolidated unique page allocation
   (paper section 5.3, figure 2), the metadata table, and the native
   bump allocator used by Baseline/TSan runs. *)

module Page = Kard_mpk.Page
module Obj_meta = Kard_alloc.Obj_meta
module Meta_table = Kard_alloc.Meta_table
module Alloc_iface = Kard_alloc.Alloc_iface
module Upa = Kard_alloc.Unique_page_alloc
module Native = Kard_alloc.Native_alloc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_upa ?granule ?recycle () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Meta_table.create () in
  let upa =
    Upa.create ?granule ?recycle_virtual_pages:recycle aspace ~meta
      ~cost:Kard_mpk.Cost_model.default ()
  in
  (phys, aspace, meta, upa, Upa.iface upa)

(* {1 Figure 2: consolidation} *)

let test_figure2_consolidation () =
  let phys, aspace, _, upa, iface = make_upa () in
  (* 128 objects of 32 B fit exactly into one physical page. *)
  for i = 0 to 127 do
    let (_ : Obj_meta.t * int) = iface.Alloc_iface.alloc ~site:i 32 in
    ()
  done;
  check_int "128 virtual pages" 128 (Kard_vm.Address_space.mapped_pages aspace);
  (* The file grows in batches; the objects' data needs only 1 page. *)
  check "few physical frames" true (Kard_vm.Phys_mem.resident_frames phys <= 16);
  check "file covers the data" true (Upa.file_bytes upa >= 128 * Upa.granule upa)

let test_unique_virtual_pages () =
  let _, _, _, _, iface = make_upa () in
  let m1, _ = iface.Alloc_iface.alloc ~site:1 32 in
  let m2, _ = iface.Alloc_iface.alloc ~site:1 32 in
  check "different virtual pages" true
    (Page.vpage_of_addr m1.Obj_meta.base <> Page.vpage_of_addr m2.Obj_meta.base);
  (* Page-internal offsets shift so allocations never overlap in the
     shared physical page. *)
  check "page-internal bases differ" true
    (Page.offset_in_page m1.Obj_meta.base <> Page.offset_in_page m2.Obj_meta.base)

let test_aliased_objects_share_physical_page () =
  let _, aspace, _, _, iface = make_upa () in
  let m1, _ = iface.Alloc_iface.alloc ~site:1 32 in
  let m2, _ = iface.Alloc_iface.alloc ~site:1 32 in
  (* Writing through object 1's page at object 2's offset must land in
     object 2: both virtual pages alias the same physical page. *)
  let off2 = Page.offset_in_page m2.Obj_meta.base in
  let m1_page_base = Page.base_of_vpage (Page.vpage_of_addr m1.Obj_meta.base) in
  Kard_vm.Address_space.write_u8 aspace (m1_page_base + off2) 0x5a;
  check_int "aliased write visible through object 2" 0x5a
    (Kard_vm.Address_space.read_u8 aspace m2.Obj_meta.base)

(* {1 Granule rounding (the water_nsquared pathology)} *)

let test_granule_rounding () =
  let _, _, _, upa, iface = make_upa () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 24 in
  check_int "24 B reserves 32 B" 32 m.Obj_meta.reserved;
  check_int "8 B wasted" 8 (Upa.wasted_bytes upa);
  let m2, _ = iface.Alloc_iface.alloc ~site:1 33 in
  check_int "33 B reserves 64 B" 64 m2.Obj_meta.reserved

let test_granule_validation () =
  check "granule must divide page" true
    (try
       ignore (make_upa ~granule:48 ());
       false
     with Invalid_argument _ -> true)

let test_large_allocation_page_aligned () =
  let _, _, _, _, iface = make_upa () in
  let (_ : Obj_meta.t * int) = iface.Alloc_iface.alloc ~site:1 100 in
  let m, _ = iface.Alloc_iface.alloc ~site:1 (2 * Page.size) in
  check_int "page aligned" 0 (Page.offset_in_page m.Obj_meta.base);
  check_int "spans two pages" 2 m.Obj_meta.pages

(* {1 Metadata table} *)

let test_meta_lookup () =
  let _, _, meta, _, iface = make_upa () in
  let m, _ = iface.Alloc_iface.alloc ~site:9 100 in
  (match Meta_table.find_addr meta (m.Obj_meta.base + 50) with
  | Some found -> check "lookup mid-object" true (Obj_meta.equal found m)
  | None -> Alcotest.fail "expected to find object");
  check "address beyond size misses" true
    (Meta_table.find_addr meta (m.Obj_meta.base + 100) = None);
  (* Page-granular lookup still resolves the padding (the fault path
     uses it, since the page belongs to the object). *)
  (match Meta_table.find_vpage meta (Page.vpage_of_addr m.Obj_meta.base) with
  | Some found -> check "vpage lookup" true (Obj_meta.equal found m)
  | None -> Alcotest.fail "expected vpage hit");
  check_int "live count" 1 (Meta_table.live_count meta);
  let (_ : int) = iface.Alloc_iface.free m in
  check "gone after free" true (Meta_table.find_addr meta m.Obj_meta.base = None);
  check_int "live count zero" 0 (Meta_table.live_count meta)

let test_meta_site_and_kind () =
  let _, _, _, _, iface = make_upa () in
  let m, _ = iface.Alloc_iface.alloc ~site:42 16 in
  check_int "site recorded" 42 (Obj_meta.site m);
  check "heap kind" true (Obj_meta.is_heap m);
  let g, _ = iface.Alloc_iface.alloc_global ~site:7 ~resident:true 64 in
  check "global kind" false (Obj_meta.is_heap g)

(* {1 Globals} *)

let test_global_unique_pages () =
  let _, aspace, _, _, iface = make_upa () in
  let g1, _ = iface.Alloc_iface.alloc_global ~site:1 ~resident:true 8 in
  let g2, _ = iface.Alloc_iface.alloc_global ~site:2 ~resident:true 8 in
  check "globals on distinct pages" true
    (Page.vpage_of_addr g1.Obj_meta.base <> Page.vpage_of_addr g2.Obj_meta.base);
  check_int "resident globals mapped" 2 (Kard_vm.Address_space.mapped_pages aspace)

let test_global_non_resident () =
  let phys, aspace, _, _, iface = make_upa () in
  let (_ : Obj_meta.t * int) = iface.Alloc_iface.alloc_global ~site:1 ~resident:false 64 in
  check_int "no frames for untouched global" 0 (Kard_vm.Phys_mem.resident_frames phys);
  check_int "not mapped" 0 (Kard_vm.Address_space.mapped_pages aspace);
  ignore phys

(* {1 Recycling (the PUSh-style extension, off by default)} *)

let test_no_recycling_by_default () =
  let _, _, _, _, iface = make_upa () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 32 in
  let (_ : int) = iface.Alloc_iface.free m in
  let m2, _ = iface.Alloc_iface.alloc ~site:1 32 in
  check "fresh virtual pages" true (m2.Obj_meta.base <> m.Obj_meta.base);
  check_int "no recycled allocs" 0 (iface.Alloc_iface.stats ()).Alloc_iface.recycled

let test_recycling_reuses_mapping () =
  let _, _, _, _, iface = make_upa ~recycle:true () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 32 in
  let (_ : int) = iface.Alloc_iface.free m in
  let m2, cost = iface.Alloc_iface.alloc ~site:1 32 in
  check "same base reused" true (m2.Obj_meta.base = m.Obj_meta.base);
  check_int "one recycled" 1 (iface.Alloc_iface.stats ()).Alloc_iface.recycled;
  check "cheap fast path" true (cost < Kard_mpk.Cost_model.default.Kard_mpk.Cost_model.mmap)

(* {1 Native allocator} *)

let make_native () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Meta_table.create () in
  let native = Native.create aspace ~meta ~cost:Kard_mpk.Cost_model.default () in
  (phys, meta, Native.iface native)

let test_native_packs_objects () =
  let _, _, iface = make_native () in
  let m1, _ = iface.Alloc_iface.alloc ~site:1 16 in
  let m2, _ = iface.Alloc_iface.alloc ~site:1 16 in
  check "same page" true
    (Page.vpage_of_addr m1.Obj_meta.base = Page.vpage_of_addr m2.Obj_meta.base)

let test_native_freelist_reuse () =
  let _, _, iface = make_native () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 64 in
  let (_ : int) = iface.Alloc_iface.free m in
  let m2, _ = iface.Alloc_iface.alloc ~site:1 64 in
  check "address reused" true (m2.Obj_meta.base = m.Obj_meta.base)

let test_native_alignment () =
  let _, _, iface = make_native () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 3 in
  check_int "16-byte alignment" 0 (m.Obj_meta.base land 15);
  check_int "reserved rounded" 16 m.Obj_meta.reserved

let test_native_large_mmap_path () =
  let _, _, iface = make_native () in
  let m, _ = iface.Alloc_iface.alloc ~site:1 (1024 * 1024) in
  check_int "page aligned" 0 (Page.offset_in_page m.Obj_meta.base);
  check_int "256 pages" 256 m.Obj_meta.pages

let upa_no_overlap_prop =
  QCheck.Test.make ~name:"unique-page allocations never overlap" ~count:50
    QCheck.(list_of_size (Gen.int_range 2 30) (int_range 1 300))
    (fun sizes ->
      let _, _, _, _, iface = make_upa () in
      let metas = List.map (fun size -> fst (iface.Alloc_iface.alloc ~site:0 size)) sizes in
      (* Pairwise disjoint virtual ranges. *)
      let ranges = List.map (fun m -> (m.Obj_meta.base, m.Obj_meta.base + m.Obj_meta.size)) metas in
      let rec disjoint = function
        | [] -> true
        | (lo, hi) :: rest ->
          List.for_all (fun (lo', hi') -> hi <= lo' || hi' <= lo) rest && disjoint rest
      in
      disjoint ranges)

let () =
  Alcotest.run "kard_alloc"
    [ ( "consolidation",
        [ Alcotest.test_case "figure 2" `Quick test_figure2_consolidation;
          Alcotest.test_case "unique virtual pages" `Quick test_unique_virtual_pages;
          Alcotest.test_case "physical sharing" `Quick test_aliased_objects_share_physical_page;
          QCheck_alcotest.to_alcotest upa_no_overlap_prop ] );
      ( "granule",
        [ Alcotest.test_case "rounding" `Quick test_granule_rounding;
          Alcotest.test_case "validation" `Quick test_granule_validation;
          Alcotest.test_case "large allocations" `Quick test_large_allocation_page_aligned ] );
      ( "metadata",
        [ Alcotest.test_case "lookup" `Quick test_meta_lookup;
          Alcotest.test_case "site and kind" `Quick test_meta_site_and_kind ] );
      ( "globals",
        [ Alcotest.test_case "unique pages" `Quick test_global_unique_pages;
          Alcotest.test_case "non-resident" `Quick test_global_non_resident ] );
      ( "recycling",
        [ Alcotest.test_case "off by default" `Quick test_no_recycling_by_default;
          Alcotest.test_case "reuses mappings" `Quick test_recycling_reuses_mapping ] );
      ( "native",
        [ Alcotest.test_case "packs objects" `Quick test_native_packs_objects;
          Alcotest.test_case "freelist reuse" `Quick test_native_freelist_reuse;
          Alcotest.test_case "alignment" `Quick test_native_alignment;
          Alcotest.test_case "large mmap path" `Quick test_native_large_mmap_path ] ) ]
