(* Tests for the pure key-enforced race detection algorithm
   (Algorithm 1): the paper's worked examples, the Table 1 scope, and
   qcheck properties over random traces. *)

module A = Kard_core.Algorithm
module K = Kard_core.Key_sets

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run events =
  let t = A.create () in
  (t, A.run t events)

(* {1 Figure 1a: exclusive write} *)

let test_exclusive_write () =
  let _, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 0 };   (* t1 claims wk_o *)
        A.Enter { thread = 2; section = 20 };
        A.Read { thread = 2; obj = 0 };    (* t2 cannot get rk_o *)
        A.Exit { thread = 1 };
        A.Exit { thread = 2 } ]
  in
  check_int "one race" 1 (List.length races);
  let r = List.hd races in
  check_int "faulting thread" 2 r.A.thread;
  check "read access" true (r.A.access = `Read);
  check "holder is t1" true (r.A.holders = [ 1 ])

(* {1 Figure 1b: shared read} *)

let test_shared_read () =
  let t, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Read { thread = 1; obj = 0 };
        A.Enter { thread = 2; section = 20 };
        A.Read { thread = 2; obj = 0 };
        A.Exit { thread = 1 };
        A.Exit { thread = 2 } ]
  in
  check_int "no races" 0 (List.length races);
  (* Both rk holders were recorded while held. *)
  ignore t

(* {1 Table 1 rows} *)

let test_table1_lock_lock () =
  let _, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 0 };
        A.Enter { thread = 2; section = 20 };
        A.Write { thread = 2; obj = 0 };
        A.Exit { thread = 1 };
        A.Exit { thread = 2 } ]
  in
  check_int "write/write race" 1 (List.length races)

let test_table1_lock_nolock () =
  let _, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 0 };
        A.Write { thread = 2; obj = 0 }; (* no lock *)
        A.Exit { thread = 1 } ]
  in
  check_int "race" 1 (List.length races);
  check "faulting side unlocked" true (not (List.hd races).A.in_section

)

let test_table1_nolock_nolock () =
  (* No thread ever claims a key, so key-enforced access sees nothing:
     out of ILU's scope by design. *)
  let _, races =
    run [ A.Write { thread = 1; obj = 0 }; A.Write { thread = 2; obj = 0 } ]
  in
  check_int "out of scope" 0 (List.length races)

let test_same_lock_sequential () =
  (* Same section, serialized: the key is released at exit. *)
  let _, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 0 };
        A.Exit { thread = 1 };
        A.Enter { thread = 2; section = 10 };
        A.Write { thread = 2; obj = 0 };
        A.Exit { thread = 2 } ]
  in
  check_int "no race" 0 (List.length races)

(* {1 Proactive acquisition (lines 2-6)} *)

let test_proactive_acquisition () =
  let t = A.create () in
  (* First visit trains KW(s). *)
  let (_ : A.race list) =
    A.run t
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 7 };
        A.Exit { thread = 1 } ]
  in
  check "kw(s) trained" true (K.Set.mem (K.Wk 7) (A.kw_of_section t 10));
  (* Second visit acquires wk_7 at entry. *)
  let (_ : A.race list) = A.run t [ A.Enter { thread = 2; section = 10 } ] in
  check "acquired at entry" true (K.Set.mem (K.Wk 7) (A.keys_of_thread t 2));
  (* A third thread cannot enter-acquire it concurrently. *)
  let (_ : A.race list) = A.run t [ A.Enter { thread = 3; section = 10 } ] in
  check "not double-granted" false (K.Set.mem (K.Wk 7) (A.keys_of_thread t 3))

let test_read_then_write_upgrades () =
  let t = A.create () in
  let races =
    A.run t
      [ A.Enter { thread = 1; section = 10 };
        A.Read { thread = 1; obj = 3 };
        A.Write { thread = 1; obj = 3 };
        A.Exit { thread = 1 } ]
  in
  check_int "no self race" 0 (List.length races);
  (* Lines 25-26: the write moves the key from KR(s) to KW(s). *)
  check "kw gains" true (K.Set.mem (K.Wk 3) (A.kw_of_section t 10));
  check "kr loses" false (K.Set.mem (K.Rk 3) (A.kr_of_section t 10))

let test_write_vs_concurrent_reader () =
  let _, races =
    run
      [ A.Enter { thread = 1; section = 10 };
        A.Read { thread = 1; obj = 0 };
        A.Enter { thread = 2; section = 20 };
        A.Write { thread = 2; obj = 0 };
        A.Exit { thread = 1 };
        A.Exit { thread = 2 } ]
  in
  check_int "write vs shared read races" 1 (List.length races);
  check "holder is the reader" true ((List.hd races).A.holders = [ 1 ])

(* {1 Nesting and exits} *)

let test_nested_sections () =
  let t = A.create () in
  let races =
    A.run t
      [ A.Enter { thread = 1; section = 10 };
        A.Write { thread = 1; obj = 1 };
        A.Enter { thread = 1; section = 11 };
        A.Write { thread = 1; obj = 2 };
        A.Exit { thread = 1 } ]
  in
  check_int "no races" 0 (List.length races);
  (* Inner exit restored the outer key set: wk_1 kept, wk_2 dropped. *)
  check "outer key kept" true (K.Set.mem (K.Wk 1) (A.keys_of_thread t 1));
  check "inner key released" false (K.Set.mem (K.Wk 2) (A.keys_of_thread t 1));
  check_int "still in outer section" 1 (List.length (A.section_stack t 1))

let test_unbalanced_exit () =
  let t = A.create () in
  check "exit with no section rejected" true
    (try
       ignore (A.step t (A.Exit { thread = 1 }));
       false
     with Invalid_argument _ -> true)

(* {1 Properties} *)

let event_gen =
  let open QCheck.Gen in
  let thread = int_range 0 2 in
  let obj = int_range 0 3 in
  let section = int_range 10 12 in
  frequency
    [ (2, map2 (fun t s -> `Enter (t, s)) thread section);
      (2, map (fun t -> `Exit t) thread);
      (3, map2 (fun t o -> `Read (t, o)) thread obj);
      (3, map2 (fun t o -> `Write (t, o)) thread obj) ]

(* Make a raw event list well-formed: drop unbalanced exits, close all
   sections at the end. *)
let well_formed raw =
  let depth = Hashtbl.create 4 in
  let get t = Option.value ~default:0 (Hashtbl.find_opt depth t) in
  let events =
    List.filter_map
      (fun e ->
        match e with
        | `Enter (t, s) ->
          Hashtbl.replace depth t (get t + 1);
          Some (A.Enter { thread = t; section = s })
        | `Exit t ->
          if get t > 0 then begin
            Hashtbl.replace depth t (get t - 1);
            Some (A.Exit { thread = t })
          end
          else None
        | `Read (t, o) -> Some (A.Read { thread = t; obj = o })
        | `Write (t, o) -> Some (A.Write { thread = t; obj = o }))
      raw
  in
  let closers =
    Hashtbl.fold
      (fun t d acc -> List.init d (fun _ -> A.Exit { thread = t }) @ acc)
      depth []
  in
  events @ closers

let trace_arbitrary = QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) event_gen)

let prop_exclusive_write =
  QCheck.Test.make ~name:"at most one wk holder; no rk holder alongside wk" ~count:300
    trace_arbitrary (fun raw ->
      let t = A.create () in
      List.for_all
        (fun e ->
          ignore (A.step t e : A.race list);
          List.for_all
            (fun obj ->
              let wk = A.holders t (K.Wk obj) in
              let rk = A.holders t (K.Rk obj) in
              List.length wk <= 1
              && (wk = [] || List.for_all (fun r -> List.mem r wk) rk))
            (A.objects_seen t))
        (well_formed raw))

let prop_no_keys_outside_sections =
  QCheck.Test.make ~name:"K(t) empty outside sections" ~count:300 trace_arbitrary (fun raw ->
      let t = A.create () in
      List.for_all
        (fun e ->
          ignore (A.step t e : A.race list);
          List.for_all
            (fun tid ->
              A.section_stack t tid <> [] || K.Set.is_empty (A.keys_of_thread t tid))
            [ 0; 1; 2 ])
        (well_formed raw))

let prop_kf_consistent =
  QCheck.Test.make ~name:"KF is exactly the unheld keys" ~count:300 trace_arbitrary (fun raw ->
      let t = A.create () in
      ignore (A.run t (well_formed raw) : A.race list);
      K.Set.for_all (fun key -> A.holders t key = []) (A.kf t))

let prop_single_thread_race_free =
  QCheck.Test.make ~name:"a single thread never races with itself" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) event_gen))
    (fun raw ->
      let single =
        List.map
          (function
            | `Enter (_, s) -> `Enter (0, s)
            | `Exit _ -> `Exit 0
            | `Read (_, o) -> `Read (0, o)
            | `Write (_, o) -> `Write (0, o))
          raw
      in
      let t = A.create () in
      A.run t (well_formed single) = [])

let prop_consistent_lock_race_free =
  QCheck.Test.make ~name:"one shared section implies no races" ~count:300 trace_arbitrary
    (fun raw ->
      (* Force every Enter to use section 10 and serialize accesses by
         allowing at most one open section at a time; keys still catch
         anything the algorithm would mis-handle. *)
      let t = A.create () in
      let busy = ref None in
      let events =
        List.filter_map
          (fun e ->
            match e, !busy with
            | A.Enter { thread; _ }, None ->
              busy := Some thread;
              Some (A.Enter { thread; section = 10 })
            | A.Enter _, Some _ -> None
            | A.Exit { thread }, Some owner when owner = thread ->
              busy := None;
              Some e
            | A.Exit _, _ -> None
            | (A.Read { thread; _ } | A.Write { thread; _ }), Some owner when owner = thread ->
              Some e
            | (A.Read _ | A.Write _), _ -> None)
          (well_formed raw)
      in
      let closers =
        match !busy with
        | Some thread -> [ A.Exit { thread } ]
        | None -> []
      in
      A.run t (events @ closers) = [])

let () =
  Alcotest.run "kard_algorithm"
    [ ( "figure1",
        [ Alcotest.test_case "exclusive write" `Quick test_exclusive_write;
          Alcotest.test_case "shared read" `Quick test_shared_read ] );
      ( "table1",
        [ Alcotest.test_case "lock vs lock" `Quick test_table1_lock_lock;
          Alcotest.test_case "lock vs no-lock" `Quick test_table1_lock_nolock;
          Alcotest.test_case "no-lock vs no-lock" `Quick test_table1_nolock_nolock;
          Alcotest.test_case "same lock sequential" `Quick test_same_lock_sequential ] );
      ( "acquisition",
        [ Alcotest.test_case "proactive" `Quick test_proactive_acquisition;
          Alcotest.test_case "read then write upgrades" `Quick test_read_then_write_upgrades;
          Alcotest.test_case "write vs reader" `Quick test_write_vs_concurrent_reader ] );
      ( "nesting",
        [ Alcotest.test_case "nested sections" `Quick test_nested_sections;
          Alcotest.test_case "unbalanced exit" `Quick test_unbalanced_exit ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_exclusive_write;
          QCheck_alcotest.to_alcotest prop_no_keys_outside_sections;
          QCheck_alcotest.to_alcotest prop_kf_consistent;
          QCheck_alcotest.to_alcotest prop_single_thread_race_free;
          QCheck_alcotest.to_alcotest prop_consistent_lock_race_free ] ) ]
