(* Tests for the simulated machine: programs, locks, scheduling,
   block operations and cycle accounting. *)

module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Lock_table = Kard_sched.Lock_table
module Machine = Kard_sched.Machine
module Hooks = Kard_sched.Hooks
module Sim_clock = Kard_sched.Sim_clock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Program combinators} *)

let ops_of = Program.to_list

let test_program_of_list () =
  let p = Program.of_list [ Op.Compute 1; Op.Compute 2 ] in
  check_int "two ops" 2 (List.length (ops_of p));
  check_int "drained" 0 (List.length (ops_of p))

let test_program_append_concat () =
  let p =
    Program.concat
      [ Program.of_list [ Op.Compute 1 ];
        Program.empty;
        Program.append (Program.of_list [ Op.Compute 2 ]) (Program.of_list [ Op.Compute 3 ]) ]
  in
  check_int "three ops" 3 (List.length (ops_of p))

let test_program_repeat_lazy () =
  let built = ref 0 in
  let p =
    Program.repeat 3 (fun i ->
        incr built;
        Program.of_list [ Op.Compute (i + 1) ])
  in
  check_int "nothing built yet" 0 !built;
  let ops = ops_of p in
  check_int "three ops" 3 (List.length ops);
  check_int "all bodies built" 3 !built;
  check "ordered" true
    (match ops with
    | [ Op.Compute 1; Op.Compute 2; Op.Compute 3 ] -> true
    | _ -> false)

let test_program_unfold () =
  let p = Program.unfold (fun n -> if n = 0 then None else Some (Op.Compute n, n - 1)) 3 in
  check_int "three ops" 3 (List.length (ops_of p))

let test_program_delay () =
  let cell = ref 0 in
  let p =
    Program.append
      (Program.of_list [ Op.Alloc { size = 8; site = 0; on_result = (fun _ -> cell := 7) } ])
      (Program.delay (fun () -> Program.of_list [ Op.Compute !cell ]))
  in
  (* Without a machine, simulate the pull order manually. *)
  (match p () with
  | Some (Op.Alloc { on_result; _ }) ->
    on_result
      { Kard_alloc.Obj_meta.id = 0; base = 0x10000; size = 8; reserved = 32;
        kind = Kard_alloc.Obj_meta.Heap 0; pages = 1 }
  | _ -> Alcotest.fail "expected alloc");
  (match p () with
  | Some (Op.Compute 7) -> ()
  | _ -> Alcotest.fail "delay must see the alloc's effect")

let test_program_with_setup () =
  let ran = ref false in
  let p = Program.with_setup (fun () -> ran := true) (Program.of_list [ Op.Yield ]) in
  check "setup lazy" false !ran;
  ignore (p ());
  check "setup ran" true !ran

(* {1 Lock_table} *)

let test_lock_acquire_release () =
  let lt = Lock_table.create () in
  check "acquire free" true (Lock_table.acquire lt ~lock:1 ~tid:0 = Lock_table.Acquired);
  check "owner" true (Lock_table.owner lt ~lock:1 = Some 0);
  check "second must wait" true (Lock_table.acquire lt ~lock:1 ~tid:1 = Lock_table.Must_wait);
  (match Lock_table.release lt ~lock:1 ~tid:0 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "ownership should transfer to waiter");
  check "waiter owns" true (Lock_table.owner lt ~lock:1 = Some 1);
  check "release to none" true (Lock_table.release lt ~lock:1 ~tid:1 = None)

let test_lock_fifo () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:1);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:2);
  check "first waiter first" true (Lock_table.release lt ~lock:1 ~tid:0 = Some 1);
  check "then second" true (Lock_table.release lt ~lock:1 ~tid:1 = Some 2)

let test_lock_errors () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  check "relock rejected" true
    (try
       ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
       false
     with Invalid_argument _ -> true);
  check "foreign release rejected" true
    (try
       ignore (Lock_table.release lt ~lock:1 ~tid:5);
       false
     with Invalid_argument _ -> true);
  check "free release rejected" true
    (try
       ignore (Lock_table.release lt ~lock:99 ~tid:0);
       false
     with Invalid_argument _ -> true)

let test_lock_stats () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:1);
  ignore (Lock_table.acquire lt ~lock:2 ~tid:2);
  check_int "total" 3 (Lock_table.total_acquires lt);
  check_int "contended" 1 (Lock_table.contended_acquires lt);
  check "held_by" true (Lock_table.held_by lt ~tid:2 = [ 2 ])

(* {1 Machine} *)

let null_machine ?(seed = 1) () =
  Machine.create ~seed ~allocator:Machine.Native
    ~make_detector:(fun _ -> Hooks.null ~name:"test")
    ()

let test_machine_compute_io () =
  let m = null_machine () in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 100; Op.Io 50 ]) in
  let r = Machine.run m in
  check_int "cycles" 150 r.Machine.cycles;
  check_int "io cycles" 50 r.Machine.io_cycles;
  check_int "steps" 3 r.Machine.steps (* two ops + final None *)

let test_machine_alloc_and_access () =
  let m = null_machine () in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 64; site = 1; on_result = (fun meta -> base := meta.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () -> Program.of_list [ Op.Write !base; Op.Read !base ]) ]
  in
  let (_ : int) = Machine.spawn m prog in
  let r = Machine.run m in
  check_int "one read" 1 r.Machine.reads;
  check_int "one write" 1 r.Machine.writes;
  check_int "no faults" 0 r.Machine.faults

let test_machine_lock_cs_stats () =
  let m = null_machine () in
  let cs = Kard_workloads.Builder.critical_section ~lock:1 ~site:9 [ Op.Compute 10 ] in
  let (_ : int) = Machine.spawn m (Program.of_list (cs @ cs)) in
  let (_ : int) = Machine.spawn m (Program.of_list cs) in
  let r = Machine.run m in
  check_int "three entries" 3 r.Machine.cs_entries;
  check_int "one site" 1 r.Machine.unique_sections

let test_machine_deadlock_detected () =
  let m = null_machine () in
  (* Two threads each grab one lock then want the other's: with the
     right schedule this deadlocks; with others it completes.  Use a
     schedule-independent deadlock: each thread takes the other's lock
     first via crossing order and a barrier of yields is impossible to
     express, so force it: t0 holds lock 1 forever (never unlocks)
     while t1 wants it. *)
  let (_ : int) =
    Machine.spawn m (Program.of_list [ Op.Lock { lock = 1; site = 1 }; Op.Yield ])
  in
  check "finishing while holding a lock is an error" true
    (try
       ignore (Machine.run m);
       false
     with Machine.Stuck _ -> true)

let test_machine_blocked_thread_waits () =
  let m = null_machine () in
  let order = ref [] in
  let note tag = Op.Alloc { size = 8; site = 0; on_result = (fun _ -> order := tag :: !order) } in
  let (_ : int) =
    Machine.spawn m
      (Program.of_list
         [ Op.Lock { lock = 1; site = 1 }; note "t0-in"; Op.Compute 10; Op.Unlock { lock = 1 } ])
  in
  let (_ : int) =
    Machine.spawn m
      (Program.of_list
         [ Op.Lock { lock = 1; site = 2 }; note "t1-in"; Op.Unlock { lock = 1 } ])
  in
  let r = Machine.run m in
  check_int "both entered" 2 (List.length !order);
  check "mutual exclusion preserved" true (r.Machine.cs_entries = 2)

let test_machine_determinism () =
  let run seed =
    let m = null_machine ~seed () in
    let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 5; Op.Compute 7 ]) in
    let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 11 ]) in
    (Machine.run m).Machine.cycles
  in
  check_int "same seed same cycles" (run 3) (run 3)

let test_machine_block_op () =
  let m = null_machine () in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 2 * 4096; site = 1; on_result = (fun meta -> base := meta.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () ->
            Program.of_list [ Op.Read_block { base = !base; count = 1000; stride = 8; span = 8192 } ]) ]
  in
  let (_ : int) = Machine.spawn m prog in
  let r = Machine.run m in
  check_int "all accesses counted" 1000 r.Machine.reads;
  (* ~count/throughput cycles for the sweep, plus the allocation and
     the sampled page checks. *)
  check "throughput cycles" true (r.Machine.cycles >= 499 && r.Machine.cycles < 20_000)

let test_machine_stall_accounting () =
  (* Detection work inside a held section must also cost the waiters:
     compare a contended run against an uncontended one. *)
  let run ~contended =
    let m = null_machine () in
    let cs =
      [ Op.Lock { lock = 1; site = 1 }; Op.Compute 10_000; Op.Unlock { lock = 1 } ]
    in
    let other_lock = if contended then 1 else 2 in
    let cs2 =
      [ Op.Lock { lock = other_lock; site = 2 }; Op.Compute 10_000; Op.Unlock { lock = other_lock } ]
    in
    let (_ : int) = Machine.spawn m (Program.of_list cs) in
    let (_ : int) = Machine.spawn m (Program.of_list cs2) in
    (Machine.run m).Machine.cycles
  in
  check "contention dilates total cycles" true (run ~contended:true >= run ~contended:false)

let test_machine_max_steps () =
  let m =
    Machine.create ~max_steps:10 ~allocator:Machine.Native
      ~make_detector:(fun _ -> Hooks.null ~name:"test")
      ()
  in
  let forever = Program.unfold (fun () -> Some (Op.Yield, ())) () in
  let (_ : int) = Machine.spawn m forever in
  check "runaway detected" true
    (try
       ignore (Machine.run m);
       false
     with Machine.Stuck _ -> true)

(* {1 Schedule policies and replay} *)

let two_thread_machine ?seed ?schedule () =
  let m = Machine.create ?seed ?schedule ~allocator:Machine.Native
      ~make_detector:(fun _ -> Hooks.null ~name:"test") ()
  in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 1; Op.Compute 2; Op.Compute 3 ]) in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 10; Op.Compute 20 ]) in
  Machine.run m

let test_schedule_replay_exact () =
  let original = two_thread_machine ~seed:9 () in
  let replayed =
    two_thread_machine ~schedule:(Kard_sched.Schedule.Replay original.Machine.schedule_trace) ()
  in
  check "same trace" true (original.Machine.schedule_trace = replayed.Machine.schedule_trace);
  check_int "same cycles" original.Machine.cycles replayed.Machine.cycles

let test_schedule_round_robin () =
  let a = two_thread_machine ~schedule:Kard_sched.Schedule.Round_robin () in
  let b = two_thread_machine ~schedule:Kard_sched.Schedule.Round_robin () in
  check "deterministic" true (a.Machine.schedule_trace = b.Machine.schedule_trace);
  (* Strict alternation while both threads are runnable. *)
  check "alternates" true
    (match Array.to_list a.Machine.schedule_trace with
    | 0 :: 1 :: 0 :: 1 :: _ -> true
    | _ -> false)

let test_schedule_replay_short_tape () =
  (* A truncated tape falls back to round-robin rather than failing. *)
  let r = two_thread_machine ~schedule:(Kard_sched.Schedule.Replay [| 1; 1 |]) () in
  check "run completes" true (r.Machine.cycles > 0)

let test_schedule_pick_unit () =
  let st = Kard_sched.Schedule.start (Kard_sched.Schedule.Replay [| 2; 0 |]) in
  check_int "replays 2" 2 (Kard_sched.Schedule.pick st ~runnable:[ 0; 1; 2 ]);
  check_int "replays 0" 0 (Kard_sched.Schedule.pick st ~runnable:[ 0; 1; 2 ]);
  (* Tape exhausted: round-robin continues after the last pick. *)
  check_int "falls back after tape" 1 (Kard_sched.Schedule.pick st ~runnable:[ 0; 1; 2 ]);
  check "recorded everything" true (Kard_sched.Schedule.recorded st = [| 2; 0; 1 |])

let test_sim_clock () =
  let c = Sim_clock.create () in
  Sim_clock.advance c 5;
  Sim_clock.advance c 7;
  check_int "advances" 12 (Sim_clock.now c);
  Sim_clock.reset c;
  check_int "resets" 0 (Sim_clock.now c)

let () =
  Alcotest.run "kard_sched"
    [ ( "program",
        [ Alcotest.test_case "of_list" `Quick test_program_of_list;
          Alcotest.test_case "append/concat" `Quick test_program_append_concat;
          Alcotest.test_case "repeat is lazy" `Quick test_program_repeat_lazy;
          Alcotest.test_case "unfold" `Quick test_program_unfold;
          Alcotest.test_case "delay" `Quick test_program_delay;
          Alcotest.test_case "with_setup" `Quick test_program_with_setup ] );
      ( "lock_table",
        [ Alcotest.test_case "acquire/release" `Quick test_lock_acquire_release;
          Alcotest.test_case "fifo wakeup" `Quick test_lock_fifo;
          Alcotest.test_case "errors" `Quick test_lock_errors;
          Alcotest.test_case "stats" `Quick test_lock_stats ] );
      ( "machine",
        [ Alcotest.test_case "compute/io" `Quick test_machine_compute_io;
          Alcotest.test_case "alloc and access" `Quick test_machine_alloc_and_access;
          Alcotest.test_case "lock stats" `Quick test_machine_lock_cs_stats;
          Alcotest.test_case "finish holding lock" `Quick test_machine_deadlock_detected;
          Alcotest.test_case "blocked thread waits" `Quick test_machine_blocked_thread_waits;
          Alcotest.test_case "determinism" `Quick test_machine_determinism;
          Alcotest.test_case "block op" `Quick test_machine_block_op;
          Alcotest.test_case "stall accounting" `Quick test_machine_stall_accounting;
          Alcotest.test_case "max steps" `Quick test_machine_max_steps;
          Alcotest.test_case "sim clock" `Quick test_sim_clock ] );
      ( "schedule",
        [ Alcotest.test_case "replay is exact" `Quick test_schedule_replay_exact;
          Alcotest.test_case "round robin" `Quick test_schedule_round_robin;
          Alcotest.test_case "short tape fallback" `Quick test_schedule_replay_short_tape;
          Alcotest.test_case "pick unit" `Quick test_schedule_pick_unit ] ) ]
