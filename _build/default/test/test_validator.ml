(* Run the whole catalog under the self-checking validator: every
   scenario and workload must complete without violating Kard's PKRU
   discipline, key exclusivity, or domain-tag consistency. *)

module Machine = Kard_sched.Machine
module Validator = Kard_core.Validator
module Race_suite = Kard_workloads.Race_suite
module Registry = Kard_workloads.Registry
module Spec = Kard_workloads.Spec

let check = Alcotest.(check bool)

let run_validated ?config build =
  let cell = ref None in
  let vcell = ref None in
  let machine =
    Machine.create ~seed:42
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Validator.make ?config ~cell ~vcell)
      ()
  in
  build machine;
  let (_ : Machine.report) = Machine.run machine in
  Option.get !vcell

let scenario_case (s : Race_suite.t) =
  Alcotest.test_case s.Race_suite.name `Quick (fun () ->
      let v = run_validated ~config:s.Race_suite.config s.Race_suite.build in
      check "checks ran" true (Validator.checks_performed v > 0))

let workload_case (spec : Spec.t) =
  Alcotest.test_case spec.Spec.name `Slow (fun () ->
      let v =
        run_validated (fun machine ->
            spec.Spec.build ~threads:spec.Spec.default_threads ~scale:0.002 ~seed:42 machine)
      in
      check "checks ran" true (Validator.checks_performed v > 0))

(* The validator must actually catch a broken runtime: corrupt the
   page table (which the detector never restores) so an object in the
   Read-write domain is no longer tagged with its key — the sampled
   domain-tag check at section exit must trip. *)
let test_validator_catches_violation () =
  let cell = ref None in
  let vcell = ref None in
  let env_ref = ref None in
  let machine =
    Machine.create ~seed:1
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(fun env ->
        env_ref := Some env;
        Validator.make ~cell ~vcell env)
      ()
  in
  let base = ref 0 in
  let corrupt () =
    (* Retag the identified object's page behind the runtime's back. *)
    let env = Option.get !env_ref in
    let (_ : int) =
      Kard_mpk.Mpk_hw.pkey_mprotect env.Kard_sched.Hooks.hw ~base:!base ~len:8
        Kard_mpk.Pkey.k_def
    in
    ()
  in
  let prog =
    Kard_sched.Program.concat
      [ Kard_sched.Program.of_list
          [ Kard_sched.Op.Alloc
              { size = 32; site = 1; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) };
            Kard_sched.Op.Lock { lock = 1; site = 1 } ];
        Kard_sched.Program.delay (fun () ->
            Kard_sched.Program.of_list [ Kard_sched.Op.Write !base ]);
        Kard_sched.Program.of_list
          [ Kard_sched.Op.Alloc { size = 8; site = 2; on_result = (fun _ -> corrupt ()) };
            Kard_sched.Op.Unlock { lock = 1 } ] ]
  in
  let (_ : int) = Machine.spawn machine prog in
  check "violation detected" true
    (try
       ignore (Machine.run machine);
       false
     with Validator.Violation _ -> true)

let () =
  Alcotest.run "kard_validator"
    [ ("scenarios", List.map scenario_case Race_suite.all);
      ("workloads", List.map workload_case Registry.extended);
      ( "meta",
        [ Alcotest.test_case "catches a corrupted runtime" `Quick
            test_validator_catches_violation ] ) ]
