(* Tests for race detection and filtration (section 5.5): records,
   redundancy pruning, and protection interleaving. *)

module Race_record = Kard_core.Race_record
module Pruning = Kard_core.Pruning
module Interleave = Kard_core.Interleave

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let side ?(section = Some 10) ?(access = `Write) thread =
  { Race_record.thread; section; access; ip = 0 }

let record ?(obj_id = 1) ?(offset = 0) ?(faulting = side 1) ?(holding = [ side ~section:(Some 20) 2 ])
    () =
  { Race_record.obj_id; obj_base = 0x10000; offset; faulting; holding; time = 0 }

(* {1 Race_record} *)

let test_record_ilu_scope () =
  check "both locked is ILU" true (Race_record.is_ilu (record ()));
  check "faulter locked only" true
    (Race_record.is_ilu (record ~holding:[ side ~section:None 2 ] ()));
  check "holder locked only" true (Race_record.is_ilu (record ~faulting:(side ~section:None 1) ()));
  check "neither locked is not ILU" false
    (Race_record.is_ilu (record ~faulting:(side ~section:None 1) ~holding:[ side ~section:None 2 ] ()))

let test_record_dedupe_key () =
  let a = record () in
  let b = record ~offset:64 () in
  check "offset does not split records" true
    (Race_record.dedupe_key a = Race_record.dedupe_key b);
  let c = record ~faulting:(side ~access:`Read 1) () in
  check "access type splits records" false (Race_record.dedupe_key a = Race_record.dedupe_key c)

(* {1 Pruning} *)

let test_pruning_dedupe () =
  let p = Pruning.create ~dedupe:true () in
  check "first is fresh" true (Pruning.add p (record ()) = `Fresh);
  check "repeat is redundant" true (Pruning.add p (record ~offset:8 ()) = `Redundant);
  check "different object is fresh" true (Pruning.add p (record ~obj_id:2 ()) = `Fresh);
  check_int "two live" 2 (List.length (Pruning.records p));
  check_int "one redundant" 1 (Pruning.redundant p)

let test_pruning_dedupe_off () =
  let p = Pruning.create ~dedupe:false () in
  ignore (Pruning.add p (record ()));
  check "duplicates kept when disabled" true (Pruning.add p (record ()) = `Fresh);
  check_int "both live" 2 (List.length (Pruning.records p))

let test_pruning_remove_spurious () =
  let p = Pruning.create ~dedupe:true () in
  let r = record () in
  ignore (Pruning.add p r);
  check_int "removed" 1 (Pruning.remove p [ r ]);
  check_int "log empty" 0 (List.length (Pruning.records p));
  (* The pair stays known: interleaving proved it spurious, so it must
     not resurrect every round. *)
  check "re-add suppressed" true (Pruning.add p (record ()) = `Redundant)

let test_pruning_ilu_filter () =
  let p = Pruning.create ~dedupe:true () in
  ignore (Pruning.add p (record ()));
  ignore
    (Pruning.add p
       (record ~obj_id:5 ~faulting:(side ~section:None 1) ~holding:[ side ~section:None 2 ] ()));
  check_int "all records" 2 (List.length (Pruning.records p));
  check_int "ilu records" 1 (List.length (Pruning.ilu_records p))

(* {1 Interleave} *)

let test_interleave_disjoint_spurious () =
  let il = Interleave.create () in
  let r = record ~offset:0 () in
  Interleave.start il ~obj_id:1 ~record:r;
  check "active" true (Interleave.active il ~obj_id:1);
  (* The faulter's offset 0 was seeded by start; the holder now
     faults at a different offset. *)
  (match Interleave.observe il ~obj_id:1 ~tid:2 ~offset:64 with
  | Interleave.Spurious records -> check "spurious with record" true (List.memq r records)
  | _ -> Alcotest.fail "expected spurious verdict")

let test_interleave_overlap_confirmed () =
  let il = Interleave.create () in
  Interleave.start il ~obj_id:1 ~record:(record ~offset:16 ());
  (match Interleave.observe il ~obj_id:1 ~tid:2 ~offset:16 with
  | Interleave.Confirmed -> ()
  | _ -> Alcotest.fail "expected confirmed verdict")

let test_interleave_same_thread_pending () =
  let il = Interleave.create () in
  Interleave.start il ~obj_id:1 ~record:(record ~offset:0 ());
  (* More evidence from the same thread decides nothing. *)
  check "pending" true (Interleave.observe il ~obj_id:1 ~tid:1 ~offset:8 = Interleave.Pending)

let test_interleave_accumulated_overlap () =
  let il = Interleave.create () in
  Interleave.start il ~obj_id:1 ~record:(record ~offset:0 ());
  ignore (Interleave.observe il ~obj_id:1 ~tid:1 ~offset:8);
  (* The holder eventually touches one of the faulter's bytes. *)
  (match Interleave.observe il ~obj_id:1 ~tid:2 ~offset:8 with
  | Interleave.Confirmed -> ()
  | _ -> Alcotest.fail "expected confirmed after accumulation")

let test_interleave_finish_thread () =
  let il = Interleave.create () in
  Interleave.start il ~obj_id:1 ~record:(record ());
  Interleave.start il ~obj_id:2 ~record:(record ~obj_id:2 ());
  let affected = Interleave.finish_thread il ~tid:1 in
  check_int "both terminated" 2 (List.length affected);
  check "inactive" false (Interleave.active il ~obj_id:1);
  check "observe after finish is pending" true
    (Interleave.observe il ~obj_id:1 ~tid:2 ~offset:0 = Interleave.Pending)

let test_interleave_counters () =
  let il = Interleave.create () in
  Interleave.start il ~obj_id:1 ~record:(record ());
  Interleave.note_pruned il 2;
  Interleave.note_confirmed il;
  check_int "started" 1 (Interleave.started_count il);
  check_int "pruned" 2 (Interleave.pruned_count il);
  check_int "confirmed" 1 (Interleave.confirmed_count il)

(* {1 Properties} *)

module Int_set = Set.Make (Int)

let observations_gen =
  QCheck.Gen.(list_size (int_range 2 12) (pair (int_range 0 2) (int_range 0 4)))

(* The interleaving verdict must be: Confirmed iff two different
   threads observed a common offset, Spurious iff at least two threads
   reported and all pairwise byte sets are disjoint. *)
let interleave_verdict_prop =
  QCheck.Test.make ~name:"interleave verdict matches set semantics" ~count:500
    (QCheck.make
       ~print:(fun obs ->
         String.concat ";" (List.map (fun (t, o) -> Printf.sprintf "t%d@%d" t o) obs))
       observations_gen)
    (fun observations ->
      match observations with
      | [] -> true
      | (t0, o0) :: rest ->
        let il = Interleave.create () in
        let r = record ~faulting:(side t0) ~offset:o0 () in
        Interleave.start il ~obj_id:1 ~record:r;
        let final =
          List.fold_left
            (fun _ (tid, offset) -> Interleave.observe il ~obj_id:1 ~tid ~offset)
            Interleave.Pending rest
        in
        (* Reference semantics over the full observation set. *)
        let by_thread = Hashtbl.create 4 in
        List.iter
          (fun (tid, offset) ->
            let set =
              Option.value ~default:Int_set.empty (Hashtbl.find_opt by_thread tid)
            in
            Hashtbl.replace by_thread tid (Int_set.add offset set))
          observations;
        let sets = Hashtbl.fold (fun _ set acc -> set :: acc) by_thread [] in
        let rec overlap = function
          | [] -> false
          | set :: rest ->
            List.exists (fun other -> not (Int_set.disjoint set other)) rest || overlap rest
        in
        let expected_confirm = overlap sets in
        (match final with
        | Interleave.Confirmed -> expected_confirm
        | Interleave.Spurious _ -> (not expected_confirm) && List.length sets >= 2
        | Interleave.Pending ->
          (* Pending only while a single thread has reported, or the
             verdict was already reached earlier (observe after the
             last decisive event still recomputes, so Pending here
             means one-sided). *)
          List.length sets < 2 || not expected_confirm))

(* Surviving records correspond 1:1 to distinct dedupe keys. *)
let record_gen =
  QCheck.Gen.(
    let* obj_id = int_range 0 3 in
    let* faulter = int_range 0 2 in
    let* holder = int_range 0 2 in
    let* f_sec = opt (int_range 10 12) in
    let* h_sec = opt (int_range 10 12) in
    let* write = bool in
    return
      (record ~obj_id
         ~faulting:{ Race_record.thread = faulter; section = f_sec;
                     access = (if write then `Write else `Read); ip = 0 }
         ~holding:[ { Race_record.thread = holder; section = h_sec; access = `Write; ip = -1 } ]
         ()))

let pruning_dedupe_prop =
  QCheck.Test.make ~name:"live records = distinct dedupe keys" ~count:300
    (QCheck.make ~print:(fun _ -> "<records>") QCheck.Gen.(list_size (int_range 0 40) record_gen))
    (fun records ->
      let p = Pruning.create ~dedupe:true () in
      List.iter (fun r -> ignore (Pruning.add p r)) records;
      let distinct =
        List.length
          (List.sort_uniq compare (List.map Race_record.dedupe_key records))
      in
      List.length (Pruning.records p) = distinct
      && Pruning.logged p + Pruning.redundant p = List.length records)

let () =
  Alcotest.run "kard_filtration"
    [ ( "race_record",
        [ Alcotest.test_case "ilu scope" `Quick test_record_ilu_scope;
          Alcotest.test_case "dedupe key" `Quick test_record_dedupe_key ] );
      ( "pruning",
        [ Alcotest.test_case "dedupe" `Quick test_pruning_dedupe;
          Alcotest.test_case "dedupe off" `Quick test_pruning_dedupe_off;
          Alcotest.test_case "remove spurious" `Quick test_pruning_remove_spurious;
          Alcotest.test_case "ilu filter" `Quick test_pruning_ilu_filter ] );
      ( "interleave",
        [ Alcotest.test_case "disjoint is spurious" `Quick test_interleave_disjoint_spurious;
          Alcotest.test_case "overlap confirms" `Quick test_interleave_overlap_confirmed;
          Alcotest.test_case "same thread pending" `Quick test_interleave_same_thread_pending;
          Alcotest.test_case "accumulated overlap" `Quick test_interleave_accumulated_overlap;
          Alcotest.test_case "finish thread" `Quick test_interleave_finish_thread;
          Alcotest.test_case "counters" `Quick test_interleave_counters ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest interleave_verdict_prop;
          QCheck_alcotest.to_alcotest pruning_dedupe_prop ] ) ]
