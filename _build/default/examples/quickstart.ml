(* Quickstart: detect an inconsistent-lock-usage data race with Kard.

   Two threads update the same heap counter: thread 0 under lock A,
   thread 1 under lock B (the first row of Table 1 in the paper).
   Kard protects the counter with a key while thread 0's critical
   section holds it, so thread 1's access faults and is reported. *)

module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op

let () =
  let detector = ref None in
  let machine =
    Machine.create ~seed:7
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Kard_core.Detector.make ~cell:detector)
      ()
  in
  (* The shared counter: one 8-byte heap object. *)
  let counter = ref 0 in
  let alloc_program =
    Program.of_list
      [ Op.Alloc { size = 8; site = 100; on_result = (fun meta -> counter := meta.Kard_alloc.Obj_meta.base) } ]
  in
  let worker ~lock ~site ~rounds =
    Program.repeat rounds (fun _ ->
        Program.of_list
          [ Op.Lock { lock; site };
            Op.Read !counter;
            Op.Compute 50;
            Op.Write !counter;
            Op.Unlock { lock } ])
  in
  (* Thread 0 allocates, then both update under DIFFERENT locks. *)
  let t0 = Machine.spawn machine (Program.append alloc_program (worker ~lock:1 ~site:1 ~rounds:20)) in
  let t1 = Machine.spawn machine (worker ~lock:2 ~site:2 ~rounds:20) in
  let report = Machine.run machine in
  let detector = Option.get !detector in
  let races = Kard_core.Detector.ilu_races detector in
  Format.printf "Threads %d and %d ran %d operations in %d simulated cycles.@." t0 t1
    report.Machine.steps report.Machine.cycles;
  Format.printf "Kard reported %d ILU data race(s):@." (List.length races);
  List.iter (fun race -> Format.printf "  %a@." Kard_core.Race_record.pp race) races;
  if races = [] then exit 1
