examples/webserver_race.ml: Format Kard_core Kard_harness Kard_sched Kard_workloads List
