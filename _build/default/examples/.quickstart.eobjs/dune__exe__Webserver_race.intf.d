examples/webserver_race.mli:
