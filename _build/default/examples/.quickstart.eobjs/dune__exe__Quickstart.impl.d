examples/quickstart.ml: Format Kard_alloc Kard_core Kard_sched List Option
