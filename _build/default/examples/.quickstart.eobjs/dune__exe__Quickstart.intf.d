examples/quickstart.mli:
