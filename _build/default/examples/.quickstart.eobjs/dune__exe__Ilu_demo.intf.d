examples/ilu_demo.mli:
