examples/interleaving_demo.ml: Format Kard_core Kard_sched Kard_workloads List Option
