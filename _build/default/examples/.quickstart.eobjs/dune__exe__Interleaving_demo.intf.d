examples/interleaving_demo.mli:
