examples/ilu_demo.ml: Format Kard_core List
