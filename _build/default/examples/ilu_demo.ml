(* Figure 1 walkthrough: key-enforced access under inconsistent lock
   usage, shown directly on the pure Algorithm 1.

   1a (exclusive write): thread 1 writes the object under lock a, so
   it holds the read-write key; thread 2's read under lock b cannot
   acquire a key and violates.

   1b (shared read): both threads only read, the read-only key is
   shared, and nothing is reported. *)

module A = Kard_core.Algorithm
module K = Kard_core.Key_sets

let pp_keys fmt set =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") K.pp)
    (K.Set.elements set)

let show t label =
  Format.printf "  %-30s K(t1)=%a K(t2)=%a KF=%a@." label pp_keys (A.keys_of_thread t 1) pp_keys
    (A.keys_of_thread t 2) pp_keys (A.kf t)

let step t label event =
  let races = A.step t event in
  show t label;
  List.iter
    (fun (r : A.race) ->
      Format.printf "  !! potential race: t%d %s object %d, key held by %a@." r.A.thread
        (match r.A.access with `Read -> "reads" | `Write -> "writes")
        r.A.obj
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           (fun fmt tid -> Format.fprintf fmt "t%d" tid))
        r.A.holders)
    races;
  List.length races

(* Events must run strictly in program order: sequence with lets. *)
let run_trace t trace =
  List.fold_left (fun acc (label, event) -> acc + step t label event) 0 trace

let () =
  Format.printf "== Figure 1a: exclusive write ==@.";
  let t = A.create () in
  let races =
    run_trace t
      [ ("t1: lock(la)", A.Enter { thread = 1; section = 1 });
        ("t1: write(o) -> gets wk_o", A.Write { thread = 1; obj = 0 });
        ("t2: lock(lb)", A.Enter { thread = 2; section = 2 });
        ("t2: read(o) -> violation", A.Read { thread = 2; obj = 0 });
        ("t1: unlock(la)", A.Exit { thread = 1 });
        ("t2: unlock(lb)", A.Exit { thread = 2 }) ]
  in
  Format.printf "races reported: %d (expected 1)@.@." races;
  let first_demo_ok = races = 1 in

  Format.printf "== Figure 1b: shared read ==@.";
  let t = A.create () in
  let races =
    run_trace t
      [ ("t1: lock(la)", A.Enter { thread = 1; section = 1 });
        ("t1: read(o) -> gets rk_o", A.Read { thread = 1; obj = 0 });
        ("t2: lock(lb)", A.Enter { thread = 2; section = 2 });
        ("t2: read(o) -> shares rk_o", A.Read { thread = 2; obj = 0 });
        ("t1: unlock(la)", A.Exit { thread = 1 });
        ("t2: unlock(lb)", A.Exit { thread = 2 }) ]
  in
  Format.printf "races reported: %d (expected 0)@." races;
  if races <> 0 || not first_demo_ok then exit 1
