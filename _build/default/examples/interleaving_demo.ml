(* Figure 4 walkthrough: protection interleaving on the full runtime.

   Two threads write DIFFERENT offsets of the same 128-byte object
   under different locks.  The first conflicting access raises a
   potential race; Kard then re-protects the object with the faulting
   thread's key so the original holder's next access also faults.
   Observing both byte sets — disjoint — proves the warning spurious
   and prunes it.

   A second variant uses critical sections too small to observe the
   other side: the record survives (the pigz false positive). *)

module Machine = Kard_sched.Machine
module Detector = Kard_core.Detector

let run ~label ~large_cs =
  let scenario =
    if large_cs then Kard_workloads.Race_suite.different_offset_large_cs
    else Kard_workloads.Race_suite.different_offset_small_cs
  in
  let cell = ref None in
  let machine =
    Machine.create ~seed:42
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Detector.make ~cell)
      ()
  in
  scenario.Kard_workloads.Race_suite.build machine;
  let (_ : Machine.report) = Machine.run machine in
  let d = Option.get !cell in
  let stats = Detector.stats d in
  Format.printf "== %s ==@." label;
  Format.printf "  interleavings started:  %d@." stats.Detector.interleavings_started;
  Format.printf "  records logged:         %d@." stats.Detector.records_logged;
  Format.printf "  pruned as spurious:     %d@." stats.Detector.records_pruned_spurious;
  Format.printf "  surviving records:      %d@.@." (List.length (Detector.races d));
  List.length (Detector.races d)

let () =
  let pruned = run ~label:"large critical sections (figure 4: prunable)" ~large_cs:true in
  let survived = run ~label:"tiny critical sections (the pigz false positive)" ~large_cs:false in
  Format.printf
    "protection interleaving pruned the large-section warning (%d left) but could not gather \
     evidence in the tiny sections (%d left)@."
    pruned survived;
  if pruned <> 0 || survived = 0 then exit 1
