(** Cycle costs of the machine operations the simulator models.

    The defaults come from the paper and the literature it cites:
    RDPKRU < 1 cycle and WRPKRU ~= 20 cycles (section 2.2, citing
    libmpk), a fault round trip of ~24,000 cycles on the evaluation
    machine (section 5.5), and syscall/page-walk costs in line with a
    4.15-era Linux kernel on Skylake. *)

type t = {
  rdpkru : int;
  wrpkru : int;
  pkey_mprotect_base : int;  (** Fixed syscall cost. *)
  pkey_mprotect_page : int;  (** Additional cost per page retagged. *)
  mmap : int;                (** One [mmap] call (unique-page allocator). *)
  ftruncate : int;
  munmap : int;
  malloc : int;              (** Native allocator fast path. *)
  fault_roundtrip : int;     (** #GP -> signal handler -> resume. *)
  mem_access : int;          (** One data access, dTLB hit. *)
  mem_throughput : float;    (** Streaming accesses retired per cycle
                                 (block operations; superscalar IPC). *)
  dtlb_miss : int;           (** Page-walk penalty added on a miss. *)
  lock_uncontended : int;
  lock_contended : int;      (** Extra cost when the lock was held. *)
  unlock : int;
  map_op : int;              (** One section-object / key-section map op. *)
  atomic_op : int;           (** Internal synchronization of the runtime. *)
  vkey_load : int;           (** Virtual-key cache: load an evicted key
                                 into a physical slot (table walk plus
                                 the batched syscall's fixed cost). *)
  vkey_retag_page : int;     (** Per page retagged during a vkey
                                 load/evict; below [pkey_mprotect_page]
                                 because the retag batches ranges into
                                 few syscalls (libmpk). *)
  sampling_check : int;      (** Seeded hash + threshold compare of the
                                 sampling policy at section entry. *)
  rdtscp : int;
  tsan_access : int;         (** TSan shadow-memory work per access. *)
  tsan_sync : int;           (** TSan work per lock/unlock. *)
  cpu_ghz : float;           (** Only used to print cycle counts as seconds. *)
}

val default : t

val fault_delay_threshold : t -> int
(** The key-release-to-handler-entry window used by the timestamp
    check of section 5.5 (the average fault handling delay). *)

val cycles_to_seconds : t -> int -> float
val pp : Format.formatter -> t -> unit
