(** A set-associative data-TLB model with LRU replacement.

    Kard's unique-page allocator spreads objects over many virtual
    pages, which raises dTLB pressure — one of the three overhead
    factors named in the paper's section 7.2.  This model produces the
    dTLB miss-rate column of Table 3. *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Defaults model a Skylake-class L1 dTLB: 64 entries, 4-way. *)

val access_translate :
  t -> Page.vpage -> gen:int -> load:(unit -> Pkey.t) -> Pkey.t * [ `Hit | `Miss ]
(** Touch a page and resolve its protection key in the same lookup —
    the hardware reality that the pkey lives in the (cached) PTE.  On
    a hit whose cached key was filled at page-table generation [gen],
    no page-table work happens at all; on a miss, or on a hit whose
    generation is stale (the table was written since the fill), [load]
    walks the page table and the result is cached under [gen].

    Hit/miss accounting tracks translation presence only: a hit with a
    stale key still counts as a hit (the translation was cached; only
    the key is re-read), so dTLB statistics are independent of pkey
    churn. *)

val translate : t -> Page.vpage -> gen:int -> pt:Page_table.t -> Pkey.t
(** {!access_translate} specialised for the machine's per-access hot
    path: the page-table walk goes through [pt] directly (no [load]
    closure) and the hit/miss verdict is left in {!last_missed} (no
    tuple, no polymorphic variant).  Accounting and replacement are
    identical to {!access_translate}. *)

val last_missed : t -> bool
(** Whether the most recent {!translate} missed. *)

val access : t -> Page.vpage -> [ `Hit | `Miss ]
(** Touch a page: records the access and updates recency.  Fills no
    usable pkey cache (a subsequent {!access_translate} re-walks). *)

val note_hits : t -> int -> unit
(** Record [n] additional accesses that hit (block operations touch a
    page once through {!access} and stream the rest as hits). *)

val note_misses : t -> int -> unit
(** Record [n] additional accesses that missed (block sweeps over
    buffers far larger than the TLB reach miss on every new page). *)

val flush : t -> unit
(** Full flush, as [mprotect] (but not [WRPKRU]!) would force. *)

val accesses : t -> int
val misses : t -> int

val set_count : t -> int
(** Number of sets ([entries / ways]).  Replacement state never crosses
    sets, so any partition of the set index space — e.g. the sharded
    machine's per-shard TLB slices — preserves hit/miss/victim behaviour
    exactly. *)

val miss_rate : t -> float
(** [misses / accesses]; 0 when nothing was accessed. *)

val reset_stats : t -> unit
