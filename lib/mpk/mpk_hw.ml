(* Per-thread hot state is sliced by TLB set so the sharded machine can
   hand each slice to a different shard: set selection is [vpage mod
   set_count], replacement never crosses sets, and each slice keeps its
   own tick — so hits, misses and victim choices are identical at any
   shard count, including shards = 1 (where slice 0 is the whole TLB,
   byte-for-byte today's behaviour). *)
type core = { mutable pkru : Pkru.t; tlbs : Tlb.t array (* index = shard slice *) }

type stats = {
  wrpkru_calls : int;
  rdpkru_calls : int;
  pkey_mprotect_calls : int;
  pages_retagged : int;
  faults : int;
  dtlb_accesses : int;
  dtlb_misses : int;
}

(* Thread ids are small dense ints assigned by the machine, so cores
   live in a tid-indexed array (grown by doubling); [try_access] runs
   once per simulated data access and must not hash or allocate. *)
type t = {
  cost : Cost_model.t;
  trace : Kard_obs.Trace.sink;
  page_table : Page_table.t;
  shards : int;
  set_count : int; (* of every TLB slice; slice routing needs it *)
  mutable cores : core option array; (* index = tid *)
  mutable last_fault : Fault.t; (* details of the latest [try_access] fault *)
  mutable wrpkru_calls : int;
  mutable rdpkru_calls : int;
  mutable pkey_mprotect_calls : int;
  mutable pages_retagged : int;
  mutable faults : int;
}

let no_fault =
  Fault.make ~addr:0 ~pkey:Pkey.k_def ~access:`Read ~thread:(-1) ~ip:0 ~time:0

let create ?(cost = Cost_model.default) ?trace ?(shards = 1) () =
  if shards < 1 then invalid_arg "Mpk_hw.create: shards must be >= 1";
  let set_count = Tlb.set_count (Tlb.create ()) in
  { cost;
    trace;
    page_table = Page_table.create ();
    shards;
    set_count;
    cores = Array.make 64 None;
    last_fault = no_fault;
    wrpkru_calls = 0;
    rdpkru_calls = 0;
    pkey_mprotect_calls = 0;
    pages_retagged = 0;
    faults = 0 }

let cost t = t.cost
let trace t = t.trace
let page_table t = t.page_table
let wrpkru_count t = t.wrpkru_calls
let shards t = t.shards

(* Route a vpage to the shard owning its TLB set.  Composing through
   the set index (rather than [vpage mod shards]) keeps every set
   wholly inside one slice, which is what makes slicing invisible to
   replacement. *)
let slice_of_vpage t vpage = vpage mod t.set_count mod t.shards

let register_thread t tid =
  if tid < 0 then invalid_arg (Printf.sprintf "Mpk_hw: negative thread id %d" tid);
  if tid >= Array.length t.cores then begin
    let cap = ref (Array.length t.cores) in
    while tid >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap None in
    Array.blit t.cores 0 bigger 0 (Array.length t.cores);
    t.cores <- bigger
  end;
  (* Every slice is a full-size TLB: sets a slice doesn't own just stay
     empty forever, and a 64-entry model per slice is too small to
     bother packing. *)
  t.cores.(tid) <- Some { pkru = Pkru.all_access; tlbs = Array.init t.shards (fun _ -> Tlb.create ()) }

let core_of t tid =
  if tid < 0 || tid >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Mpk_hw: thread %d not registered" tid)
  else
    match t.cores.(tid) with
    | Some core -> core
    | None -> invalid_arg (Printf.sprintf "Mpk_hw: thread %d not registered" tid)

let wrpkru t ~tid pkru =
  let core = core_of t tid in
  core.pkru <- pkru;
  t.wrpkru_calls <- t.wrpkru_calls + 1;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid Kard_obs.Event.Wrpkru;
    Kard_obs.Trace.incr t.trace "hw.wrpkru");
  t.cost.Cost_model.wrpkru

let rdpkru t ~tid =
  let core = core_of t tid in
  t.rdpkru_calls <- t.rdpkru_calls + 1;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid Kard_obs.Event.Rdpkru;
    Kard_obs.Trace.incr t.trace "hw.rdpkru");
  (core.pkru, t.cost.Cost_model.rdpkru)

let pkru_of t ~tid = (core_of t tid).pkru
let set_pkru_in_context t ~tid pkru = (core_of t tid).pkru <- pkru

let pkey_mprotect t ~base ~len pkey =
  let pages = Page_table.set_pkey_range t.page_table ~base ~len pkey in
  t.pkey_mprotect_calls <- t.pkey_mprotect_calls + 1;
  t.pages_retagged <- t.pages_retagged + pages;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1)
      (Kard_obs.Event.Pkey_mprotect { base; pages; pkey = Pkey.to_int pkey });
    Kard_obs.Trace.incr t.trace "hw.pkey_mprotect";
    Kard_obs.Trace.observe t.trace "hw.pages_retagged" pages);
  t.cost.Cost_model.pkey_mprotect_base + (pages * t.cost.Cost_model.pkey_mprotect_page)

(* Does any registered thread's PKRU currently grant [pkey]?  The
   vkey layer's pinning ground truth: a slot some saved context still
   grants must not be evicted, or that thread would touch the newly
   resident key's objects unchecked.  O(threads), cold fault path
   only. *)
let any_grant t pkey =
  let n = Array.length t.cores in
  let rec scan i =
    if i >= n then false
    else
      match t.cores.(i) with
      | Some core when Pkru.get core.pkru pkey <> Perm.No_access -> true
      | Some _ | None -> scan (i + 1)
  in
  scan 0

(* Batched retag for the virtual-key cache: tag every range with
   [pkey] as ONE counted syscall (libmpk's eviction batches the
   per-object ranges into a single kernel crossing), charging the
   cheaper [vkey_retag_page] per page.  Returns [(pages, cycles)]. *)
let retag_batch t ranges pkey =
  let pages =
    List.fold_left
      (fun acc (base, len) -> acc + Page_table.set_pkey_range t.page_table ~base ~len pkey)
      0 ranges
  in
  if pages > 0 then begin
    t.pkey_mprotect_calls <- t.pkey_mprotect_calls + 1;
    t.pages_retagged <- t.pages_retagged + pages;
    match t.trace with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid:(-1)
        (Kard_obs.Event.Pkey_mprotect { base = fst (List.hd ranges); pages; pkey = Pkey.to_int pkey });
      Kard_obs.Trace.incr t.trace "hw.pkey_mprotect";
      Kard_obs.Trace.observe t.trace "hw.pages_retagged" pages
  end;
  (pages, pages * t.cost.Cost_model.vkey_retag_page)

let try_access t ~tid ~addr ~access ~ip ~time =
  let core = core_of t tid in
  let vpage = Page.vpage_of_addr addr in
  (* One lookup resolves translation and protection key together: on
     the common TLB-hit path the page table is never touched, exactly
     as the PKU check reads the pkey out of the cached PTE.  The walk
     happens (and is counted) even when the access then faults — the
     MMU translates first and only then applies the key check, so
     fault-heavy runs see their true dTLB traffic. *)
  let tlb = core.tlbs.(slice_of_vpage t vpage) in
  let pkey =
    Tlb.translate tlb vpage ~gen:(Page_table.generation t.page_table)
      ~pt:t.page_table
  in
  if Pkru.grants core.pkru pkey access then
    if Tlb.last_missed tlb then
      t.cost.Cost_model.mem_access + t.cost.Cost_model.dtlb_miss
    else t.cost.Cost_model.mem_access
  else begin
    t.faults <- t.faults + 1;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid
        (Kard_obs.Event.Fault_raised { addr; pkey = Pkey.to_int pkey; access });
      Kard_obs.Trace.incr t.trace "hw.faults");
    t.last_fault <- Fault.make ~addr ~pkey ~access ~thread:tid ~ip ~time;
    -1
  end

(* The burst engine's enqueue-time verdict: grant/deny without touching
   any TLB slice.  Between merge points neither PKRU nor the page table
   changes, and a TLB hit's cached pkey is generation-checked against
   the page table — so walking the table directly gives exactly the
   pkey [try_access] would use, and the verdict is exact.  The slice
   TLB is touched later, by [drain_translate] on the owning shard. *)
let access_granted t ~tid ~vpage ~access =
  let core = core_of t tid in
  Pkru.grants core.pkru (Page_table.pkey_of_vpage t.page_table vpage) access

(* The drain-time half of a granted burst access: run the TLB slice
   exactly as [try_access] would have (same tick, same replacement,
   same accounting) and return the cycles the access costs.  Only the
   owning shard may call this for [slice], which is what makes it safe
   lock-free. *)
let drain_translate t ~tid ~slice vpage =
  let core = core_of t tid in
  let tlb = core.tlbs.(slice) in
  ignore
    (Tlb.translate tlb vpage ~gen:(Page_table.generation t.page_table)
       ~pt:t.page_table : Pkey.t);
  if Tlb.last_missed tlb then
    t.cost.Cost_model.mem_access + t.cost.Cost_model.dtlb_miss
  else t.cost.Cost_model.mem_access

let last_fault t = t.last_fault

let check_access t ~tid ~addr ~access ~ip ~time =
  let cycles = try_access t ~tid ~addr ~access ~ip ~time in
  if cycles >= 0 then Ok cycles else Error t.last_fault

(* Bulk block-access counters carry no per-set state, so they can live
   on any slice; slice 0 keeps totals deterministic at every shard
   count (stats sum over slices anyway). *)
let note_tlb_hits t ~tid n = Tlb.note_hits (core_of t tid).tlbs.(0) n

let note_tlb_misses t ~tid n =
  if n > 0 then Kard_obs.Trace.observe t.trace "hw.dtlb_miss_burst" n;
  Tlb.note_misses (core_of t tid).tlbs.(0) n

let stats t =
  let dtlb_accesses = ref 0 and dtlb_misses = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some core ->
        Array.iter
          (fun tlb ->
            dtlb_accesses := !dtlb_accesses + Tlb.accesses tlb;
            dtlb_misses := !dtlb_misses + Tlb.misses tlb)
          core.tlbs)
    t.cores;
  { wrpkru_calls = t.wrpkru_calls;
    rdpkru_calls = t.rdpkru_calls;
    pkey_mprotect_calls = t.pkey_mprotect_calls;
    pages_retagged = t.pages_retagged;
    faults = t.faults;
    dtlb_accesses = !dtlb_accesses;
    dtlb_misses = !dtlb_misses }

(* The one guarded miss-rate division, shared by {!dtlb_miss_rate} and
   the machine's per-run report so an empty run can never divide by
   zero in either place. *)
let miss_rate ~misses ~accesses =
  if accesses = 0 then 0. else float_of_int misses /. float_of_int accesses

let dtlb_miss_rate t =
  let s = stats t in
  miss_rate ~misses:s.dtlb_misses ~accesses:s.dtlb_accesses

let reset_stats t =
  t.wrpkru_calls <- 0;
  t.rdpkru_calls <- 0;
  t.pkey_mprotect_calls <- 0;
  t.pages_retagged <- 0;
  t.faults <- 0;
  Array.iter
    (function None -> () | Some core -> Array.iter Tlb.reset_stats core.tlbs)
    t.cores
