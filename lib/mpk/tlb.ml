type entry = {
  mutable vpage : Page.vpage;
  mutable valid : bool;
  mutable stamp : int;
  mutable pkey : Pkey.t;    (* translated protection key, cached at fill *)
  mutable pkey_gen : int;   (* page-table generation the cache is valid for *)
}

type t = {
  sets : entry array array;
  set_count : int;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
  mutable last_miss : bool; (* whether the latest [translate] missed *)
}

(* A generation no live page table ever reports, so plain [access]
   fills are never mistaken for a valid pkey cache. *)
let stale_gen = -1

let create ?(entries = 64) ?(ways = 4) () =
  if entries <= 0 || ways <= 0 || entries mod ways <> 0 then
    invalid_arg "Tlb.create: entries must be a positive multiple of ways";
  let set_count = entries / ways in
  let fresh_entry _ = { vpage = 0; valid = false; stamp = 0; pkey = Pkey.k_def; pkey_gen = stale_gen } in
  { sets = Array.init set_count (fun _ -> Array.init ways fresh_entry);
    set_count;
    tick = 0;
    accesses = 0;
    misses = 0;
    last_miss = false }

let find_entry set vpage =
  let ways = Array.length set in
  let rec find i =
    if i >= ways then None
    else if set.(i).valid && set.(i).vpage = vpage then Some set.(i)
    else find (i + 1)
  in
  find 0

(* Evict the LRU way (or fill an invalid one, which has stamp 0). *)
let victim_of set =
  let ways = Array.length set in
  let victim = ref set.(0) in
  for i = 1 to ways - 1 do
    let e = set.(i) in
    let v = !victim in
    if (not e.valid) && v.valid then victim := e
    else if e.valid = v.valid && e.stamp < v.stamp then victim := e
  done;
  !victim

(* The hot-path variant of [access_translate]: same accounting, same
   replacement, but no closure, no tuple and no option — page-table
   walks go through [pt] directly and the hit/miss verdict is left in
   [last_missed].  Per the allocation contract, every simulated data
   access runs through here. *)
let translate t vpage ~gen ~pt =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  let set = t.sets.(vpage mod t.set_count) in
  let ways = Array.length set in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < ways do
    let e = set.(!i) in
    if e.valid && e.vpage = vpage then found := !i else incr i
  done;
  if !found >= 0 then begin
    let entry = set.(!found) in
    entry.stamp <- t.tick;
    t.last_miss <- false;
    (* Hit/miss accounting is translation presence only (see
       [access_translate]): a stale pkey re-walks but still hits. *)
    if entry.pkey_gen <> gen then begin
      entry.pkey <- Page_table.pkey_of_vpage pt vpage;
      entry.pkey_gen <- gen
    end;
    entry.pkey
  end
  else begin
    t.misses <- t.misses + 1;
    t.last_miss <- true;
    let v = victim_of set in
    v.vpage <- vpage;
    v.valid <- true;
    v.stamp <- t.tick;
    v.pkey <- Page_table.pkey_of_vpage pt vpage;
    v.pkey_gen <- gen;
    v.pkey
  end

let last_missed t = t.last_miss

let access_translate t vpage ~gen ~load =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  let set = t.sets.(vpage mod t.set_count) in
  match find_entry set vpage with
  | Some entry ->
    entry.stamp <- t.tick;
    (* Hit/miss accounting is translation presence only: a stale pkey
       still has a cached translation, it just re-walks the key — so
       dTLB statistics are unaffected by pkey churn. *)
    if entry.pkey_gen <> gen then begin
      entry.pkey <- load ();
      entry.pkey_gen <- gen
    end;
    (entry.pkey, `Hit)
  | None ->
    t.misses <- t.misses + 1;
    let v = victim_of set in
    v.vpage <- vpage;
    v.valid <- true;
    v.stamp <- t.tick;
    v.pkey <- load ();
    v.pkey_gen <- gen;
    (v.pkey, `Miss)

let access t vpage =
  (* Translation-only probe: fills carry no usable pkey cache. *)
  snd (access_translate t vpage ~gen:stale_gen ~load:(fun () -> Pkey.k_def))

let note_hits t n =
  assert (n >= 0);
  t.accesses <- t.accesses + n

let note_misses t n =
  assert (n >= 0);
  t.accesses <- t.accesses + n;
  t.misses <- t.misses + n

let flush t =
  Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) t.sets

let accesses t = t.accesses
let misses t = t.misses
let set_count t = t.set_count
let miss_rate t = if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
