type t = {
  entries : (Page.vpage, Pkey.t) Hashtbl.t;
  mutable generation : int;
}

let create () = { entries = Hashtbl.create 4096; generation = 0 }

let set_pkey t vpage pkey =
  t.generation <- t.generation + 1;
  if Pkey.equal pkey Pkey.k_def then Hashtbl.remove t.entries vpage
  else Hashtbl.replace t.entries vpage pkey

let iter_range ~base ~len f =
  let first = Page.vpage_of_addr base in
  let count = Page.pages_spanned base len in
  for vpage = first to first + count - 1 do
    f vpage
  done;
  count

let set_pkey_range t ~base ~len pkey = iter_range ~base ~len (fun vp -> set_pkey t vp pkey)

let pkey_of_vpage t vpage =
  match Hashtbl.find_opt t.entries vpage with
  | Some pkey -> pkey
  | None -> Pkey.k_def

let pkey_of_addr t addr = pkey_of_vpage t (Page.vpage_of_addr addr)

let clear_range t ~base ~len =
  let (_ : int) =
    iter_range ~base ~len (fun vp ->
        t.generation <- t.generation + 1;
        Hashtbl.remove t.entries vp)
  in
  ()

let generation t = t.generation
let entry_count t = Hashtbl.length t.entries
