(* Virtual pages are handed out sequentially by the address space, so
   the pkey mirror is a vpage-indexed int array rather than a hash
   table: [pkey_of_vpage] runs on every TLB pkey re-walk — i.e. on
   the first access to a cached page after any page-table generation
   bump — and must be a bounds-checked array read, not a hash probe.

   Encoding: [-1] means "no explicit entry" (the page carries
   {!Pkey.k_def}); any other value is [Pkey.to_int] of the tag.  The
   array only grows on explicit [set_pkey] writes, so reads of
   never-tagged pages stay on the bounds-check fast path no matter
   how large the address is. *)

let no_entry = -1

type t = {
  mutable pkeys : int array; (* index = vpage *)
  mutable entries : int; (* vpages carrying a non-default key *)
  mutable generation : int;
}

let create () = { pkeys = Array.make 4096 no_entry; entries = 0; generation = 0 }

let grow t vpage =
  let n = ref (Array.length t.pkeys) in
  while vpage >= !n do
    n := 2 * !n
  done;
  let bigger = Array.make !n no_entry in
  Array.blit t.pkeys 0 bigger 0 (Array.length t.pkeys);
  t.pkeys <- bigger

let set_pkey t vpage pkey =
  if vpage < 0 then invalid_arg "Page_table.set_pkey: negative vpage";
  t.generation <- t.generation + 1;
  if Pkey.equal pkey Pkey.k_def then begin
    if vpage < Array.length t.pkeys && t.pkeys.(vpage) <> no_entry then begin
      t.pkeys.(vpage) <- no_entry;
      t.entries <- t.entries - 1
    end
  end
  else begin
    if vpage >= Array.length t.pkeys then grow t vpage;
    if t.pkeys.(vpage) = no_entry then t.entries <- t.entries + 1;
    t.pkeys.(vpage) <- Pkey.to_int pkey
  end

let iter_range ~base ~len f =
  let first = Page.vpage_of_addr base in
  let count = Page.pages_spanned base len in
  for vpage = first to first + count - 1 do
    f vpage
  done;
  count

let set_pkey_range t ~base ~len pkey = iter_range ~base ~len (fun vp -> set_pkey t vp pkey)

let pkey_of_vpage t vpage =
  if vpage < 0 || vpage >= Array.length t.pkeys then Pkey.k_def
  else
    let code = t.pkeys.(vpage) in
    if code = no_entry then Pkey.k_def else Pkey.of_int code

let pkey_of_addr t addr = pkey_of_vpage t (Page.vpage_of_addr addr)

let clear_range t ~base ~len =
  let (_ : int) =
    iter_range ~base ~len (fun vp ->
        t.generation <- t.generation + 1;
        if vp >= 0 && vp < Array.length t.pkeys && t.pkeys.(vp) <> no_entry then begin
          t.pkeys.(vp) <- no_entry;
          t.entries <- t.entries - 1
        end)
  in
  ()

let generation t = t.generation
let entry_count t = t.entries
