(* The virtual-key cache (libmpk-style): many software protection keys
   mapped onto the few physical data pkeys, with clock (second-chance)
   eviction.  This module is pure bookkeeping — which virtual key
   occupies which physical slot, reference bits, the clock hand and
   counters.  The *effects* of a load or eviction (batched page
   retagging, PKRU edits, cycle charges) are driven by the detector,
   which is what keeps every state change on a deterministic
   fault/lock/merge-point path (DESIGN.md §11): the table itself never
   consults wall-clock time or randomness.

   Pinning is not a counter here: the caller passes an [evictable]
   predicate and the clock simply skips slots it rejects.  The detector
   derives pinnedness from ground truth (key-section-map holders plus
   any thread's PKRU granting the slot), which closes the nested-frame
   hole a manual pin count would reopen. *)

type t = {
  pool : int;                  (* virtual keys are 1..pool; 0 = identity mode *)
  phys : int array;            (* physical data key backing each slot *)
  slot_index : int array;      (* physical key -> slot index, -1 if not a slot *)
  vkey_slot : int array;       (* vkey -> slot index, -1 = not resident *)
  slot_vkey : int array;       (* slot index -> resident vkey, -1 = free *)
  ref_bits : bool array;       (* second-chance bits, per slot *)
  mutable hand : int;          (* clock hand, a slot index *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable loads : int;
  mutable retag_pages : int;
  mutable stalls : int;
}

type outcome =
  | Hit of int                            (* resident; the physical key *)
  | Loaded of { slot : int; evicted : int }
      (* now resident in physical key [slot]; [evicted] is the virtual
         key displaced, or -1 if the slot was free *)
  | Full                                  (* every slot pinned *)

type stats = {
  st_pool : int;
  st_slots : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_loads : int;
  st_retag_pages : int;
  st_stalls : int;
}

let identity =
  { pool = 0;
    phys = [||];
    slot_index = [||];
    vkey_slot = [||];
    slot_vkey = [||];
    ref_bits = [||];
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    loads = 0;
    retag_pages = 0;
    stalls = 0 }

let create ~pool ~phys =
  if pool <= 0 then identity
  else begin
    let n = Array.length phys in
    if n < 1 then invalid_arg "Vkey.create: no physical slots";
    if pool < n then
      invalid_arg
        (Printf.sprintf "Vkey.create: pool %d smaller than the %d physical slots" pool n);
    let max_phys = Array.fold_left max 0 phys in
    let slot_index = Array.make (max_phys + 1) (-1) in
    Array.iteri
      (fun i k ->
        if k < 0 || slot_index.(k) >= 0 then invalid_arg "Vkey.create: bad slot key";
        slot_index.(k) <- i)
      phys;
    { pool;
      phys = Array.copy phys;
      slot_index;
      vkey_slot = Array.make (pool + 1) (-1);
      slot_vkey = Array.make n (-1);
      ref_bits = Array.make n false;
      hand = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      loads = 0;
      retag_pages = 0;
      stalls = 0 }
  end

let virtualized t = t.pool > 0
let pool t = t.pool
let slot_count t = Array.length t.phys

let check_vkey t v =
  if v < 1 || v > t.pool then
    invalid_arg (Printf.sprintf "Vkey: key %d outside pool 1..%d" v t.pool)

(* Physical key currently backing [v], or -1 when evicted.  In identity
   mode every virtual key IS its physical key. *)
let phys_of t v =
  if t.pool = 0 then v
  else begin
    check_vkey t v;
    let s = t.vkey_slot.(v) in
    if s < 0 then -1 else t.phys.(s)
  end

let resident t v = if t.pool = 0 then true else (check_vkey t v; t.vkey_slot.(v) >= 0)

(* The virtual key resident in physical key [k], or -1 (free slot /
   not a slot key).  Identity mode: [k] itself. *)
let vkey_of_phys t k =
  if t.pool = 0 then k
  else if k < 0 || k >= Array.length t.slot_index || t.slot_index.(k) < 0 then -1
  else t.slot_vkey.(t.slot_index.(k))

let resident_count t =
  if t.pool = 0 then 0
  else Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 t.slot_vkey

(* Second-chance clock over the slots.  A free slot is taken on sight;
   a referenced slot spends its reference bit; an unreferenced slot is
   offered to [evictable] and skipped (pinned) if refused.  Pinnedness
   cannot change during the scan, so two sweeps bound it: the first
   spends every reference bit, the second must select any unpinned
   slot.  [Full] means every slot is pinned by a running thread. *)
let ensure t v ~evictable =
  if t.pool = 0 then Hit v
  else begin
    check_vkey t v;
    let s = t.vkey_slot.(v) in
    if s >= 0 then begin
      t.ref_bits.(s) <- true;
      t.hits <- t.hits + 1;
      Hit t.phys.(s)
    end
    else begin
      t.misses <- t.misses + 1;
      let n = Array.length t.phys in
      let chosen = ref (-1) in
      let steps = ref 0 in
      while !chosen < 0 && !steps < 2 * n do
        let i = t.hand in
        t.hand <- (t.hand + 1) mod n;
        incr steps;
        if t.slot_vkey.(i) < 0 then chosen := i
        else if t.ref_bits.(i) then t.ref_bits.(i) <- false
        else if evictable ~slot:t.phys.(i) ~vkey:t.slot_vkey.(i) then chosen := i
      done;
      if !chosen < 0 then begin
        t.stalls <- t.stalls + 1;
        Full
      end
      else begin
        let i = !chosen in
        let evicted = t.slot_vkey.(i) in
        if evicted >= 0 then begin
          t.evictions <- t.evictions + 1;
          t.vkey_slot.(evicted) <- -1
        end;
        t.slot_vkey.(i) <- v;
        t.vkey_slot.(v) <- i;
        t.ref_bits.(i) <- true;
        t.loads <- t.loads + 1;
        Loaded { slot = t.phys.(i); evicted }
      end
    end
  end

let note_retag_pages t n = t.retag_pages <- t.retag_pages + n

let stats t =
  { st_pool = t.pool;
    st_slots = Array.length t.phys;
    st_hits = t.hits;
    st_misses = t.misses;
    st_evictions = t.evictions;
    st_loads = t.loads;
    st_retag_pages = t.retag_pages;
    st_stalls = t.stalls }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<h>vkeys: pool=%d slots=%d hits=%d misses=%d evictions=%d loads=%d retag_pages=%d \
     stalls=%d@]"
    s.st_pool s.st_slots s.st_hits s.st_misses s.st_evictions s.st_loads s.st_retag_pages
    s.st_stalls
