(** The virtual-key cache: hundreds-to-thousands of software protection
    keys mapped onto the few physical data pkeys with clock
    (second-chance) eviction, libmpk-style.

    The table is pure deterministic bookkeeping — residency, reference
    bits, the clock hand, hit/miss/eviction/load counters.  The caller
    (the detector) drives every effect of a load or eviction: batched
    page retagging, PKRU edits and cycle charges all happen on its
    fault/lock paths, which is what keeps reports byte-identical at any
    [--shards]/[--jobs] (DESIGN.md §11).

    Pinning is a predicate, not a counter: {!ensure} asks [evictable]
    before displacing a resident key, and the detector answers from
    ground truth (no key-section-map holders {e and} no thread's PKRU
    grants the slot).  A slot refused by the predicate is simply
    skipped by the clock. *)

type t

type outcome =
  | Hit of int
      (** Already resident; the physical key backing it. *)
  | Loaded of { slot : int; evicted : int }
      (** Loaded into physical key [slot]; [evicted] is the virtual key
          displaced, or [-1] if the slot was free.  The caller must
          retag the evicted key's pages to the always-deny tag and the
          loaded key's pages to [slot]. *)
  | Full
      (** Every slot is pinned; the access must be emulated unprotected
          (counted in {!stats} as a stall — the documented
          vkey-eviction-blame miss window). *)

type stats = {
  st_pool : int;
  st_slots : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_loads : int;
  st_retag_pages : int;
  st_stalls : int;
}

val identity : t
(** The no-virtualization table: {!phys_of} and {!vkey_of_phys} are the
    identity, {!ensure} always hits, counters stay zero.  This is what
    [Config.vkeys = 0] runs on — byte-identical to the pre-vkey
    detector. *)

val create : pool:int -> phys:int array -> t
(** A table of virtual keys [1..pool] over the physical data keys
    [phys] (the residency slots).  [pool <= 0] returns {!identity}.
    Raises [Invalid_argument] if [pool] is positive but smaller than
    the slot count, or a slot key repeats. *)

val virtualized : t -> bool
val pool : t -> int
val slot_count : t -> int

val phys_of : t -> int -> int
(** Physical key currently backing the virtual key, or [-1] when
    evicted.  Identity mode: the key itself. *)

val resident : t -> int -> bool

val vkey_of_phys : t -> int -> int
(** The virtual key resident in a physical key, [-1] for a free slot or
    a non-slot key.  Identity mode: the key itself. *)

val resident_count : t -> int

val ensure : t -> int -> evictable:(slot:int -> vkey:int -> bool) -> outcome
(** Make a virtual key resident, evicting under the clock if needed.
    Counts a hit, or a miss plus (on success) a load and possibly an
    eviction. *)

val note_retag_pages : t -> int -> unit
(** Account pages retagged by the caller's batched load/evict
    [pkey_mprotect]s (the table does not touch the page table itself). *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
