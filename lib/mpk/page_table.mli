(** The per-process mapping from virtual pages to protection keys.

    Mirrors the pkey field of page-table entries, i.e. the state that
    [pkey_mprotect(2)] manipulates.  Pages with no explicit entry carry
    {!Pkey.k_def}, matching how the kernel tags fresh mappings. *)

type t

val create : unit -> t

val set_pkey : t -> Page.vpage -> Pkey.t -> unit

val set_pkey_range : t -> base:Page.addr -> len:int -> Pkey.t -> int
(** Tag every page spanned by [\[base, base+len)]; returns the number
    of pages touched (the cost driver of a [pkey_mprotect] call). *)

val pkey_of_vpage : t -> Page.vpage -> Pkey.t
val pkey_of_addr : t -> Page.addr -> Pkey.t

val clear_range : t -> base:Page.addr -> len:int -> unit
(** Drop entries back to the default key, as [munmap] would. *)

val generation : t -> int
(** Mutation counter: bumped by every {!set_pkey},
    {!set_pkey_range} and {!clear_range} page update.  TLBs caching
    translated pkeys compare their fill-time generation against this
    to decide whether the cached key is still authoritative — so a
    page-table write (from [pkey_mprotect], [munmap], or anything
    else) implicitly invalidates every cached pkey, and a stale entry
    can never grant an access the current table would deny. *)

val entry_count : t -> int
(** Number of pages carrying a non-default key. *)
