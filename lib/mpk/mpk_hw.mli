(** The MPK machine facade: page table, per-thread PKRU registers and
    per-core dTLBs, with cycle accounting.

    Every data access of the simulated machine flows through
    {!check_access}, which performs exactly the check the MMU performs:
    look up the page's protection key, consult the accessing thread's
    PKRU, and either charge the access cost (plus a possible dTLB miss
    penalty) or produce a {!Fault.t}. *)

type t

type stats = {
  wrpkru_calls : int;
  rdpkru_calls : int;
  pkey_mprotect_calls : int;
  pages_retagged : int;
  faults : int;
  dtlb_accesses : int;
  dtlb_misses : int;
}

val create : ?cost:Cost_model.t -> ?trace:Kard_obs.Trace.t -> ?shards:int -> unit -> t
(** [trace] (default none) receives a cycle-stamped event for every
    WRPKRU/RDPKRU, [pkey_mprotect] and #GP, plus hardware counters and
    dTLB-miss-burst observations in its metrics registry.  Tracing
    never changes cycle accounting.

    [shards] (default 1) slices every per-thread dTLB into [shards]
    full-size TLBs routed by {!slice_of_vpage}.  Because TLB sets never
    share replacement state and every set lives wholly inside one
    slice, hit/miss/victim behaviour — and therefore every report
    field — is identical at any shard count. *)

val cost : t -> Cost_model.t
val trace : t -> Kard_obs.Trace.sink
val page_table : t -> Page_table.t

val shards : t -> int

val slice_of_vpage : t -> Page.vpage -> int
(** The shard slice owning [vpage]'s TLB set: [vpage mod set_count mod
    shards].  The burst engine routes queued accesses with this. *)

(** {1 Thread registration} *)

val register_thread : t -> int -> unit
(** Give thread [tid] a fresh PKRU (all-access, like a fresh pthread)
    and a private dTLB. Registering twice resets both. *)

(** {1 Register instructions} *)

val wrpkru : t -> tid:int -> Pkru.t -> int
(** Returns the cycles consumed. *)

val rdpkru : t -> tid:int -> Pkru.t * int

val pkru_of : t -> tid:int -> Pkru.t
(** Free inspection for the runtime's bookkeeping (no cycle charge). *)

val set_pkru_in_context : t -> tid:int -> Pkru.t -> unit
(** Reactive key assignment: the fault handler rewrites the interrupted
    thread's saved PKRU context instead of executing WRPKRU
    (section 5.4); no instruction cost is charged here because the
    handler cost already covers it. *)

(** {1 Protection system call} *)

val pkey_mprotect : t -> base:Page.addr -> len:int -> Pkey.t -> int
(** Tag a range of pages with a key; returns cycles consumed. *)

val retag_batch : t -> (Page.addr * int) list -> Pkey.t -> int * int
(** Batched retag for the virtual-key cache: tag every [(base, len)]
    range with the key as {e one} counted syscall (libmpk batches the
    per-object ranges of an evicted/loaded key into a single kernel
    crossing), at the cheaper {!Cost_model.t.vkey_retag_page} per page.
    Returns [(pages_retagged, cycles)]; an empty batch counts and
    costs nothing. *)

val any_grant : t -> Pkey.t -> bool
(** Does any registered thread's PKRU grant the key (read or write)?
    The vkey layer's pinning ground truth — a physical slot some saved
    context still grants must not be evicted.  O(threads); cold fault
    path only. *)

(** {1 Access checking} *)

val try_access :
  t -> tid:int -> addr:Page.addr -> access:Fault.access -> ip:int -> time:int ->
  int
(** The machine's per-access hot call.  [>= 0]: access granted, the
    cycles consumed.  [-1]: the access faulted and {!last_fault} holds
    the details.  Same semantics as {!check_access} without a [result]
    allocation per access. *)

val last_fault : t -> Fault.t
(** The fault behind the latest [-1] from {!try_access}. *)

val check_access :
  t -> tid:int -> addr:Page.addr -> access:Fault.access -> ip:int -> time:int ->
  (int, Fault.t) result
(** [Ok cycles] on success; [Error fault] raises no exception so the
    scheduler can route the fault to the registered handler.

    The check costs a single dTLB lookup on the hit path: TLB entries
    cache the translated protection key alongside the translation
    (invalidated by page-table generation whenever [pkey_mprotect] or
    any other page-table write lands), so the per-process page table
    is only walked on a miss or after a protection change.  The
    translation — and its dTLB accounting — happens even for accesses
    that fault, since the MMU applies the key check after the walk. *)

val access_granted : t -> tid:int -> vpage:Page.vpage -> access:Fault.access -> bool
(** Enqueue-time verdict for the burst engine: would {!try_access}
    grant this access right now?  Touches no TLB slice — the pkey comes
    from a direct page-table walk, which between merge points (no PKRU
    or page-table writes) equals the key any cached translation holds,
    so the verdict is exact. *)

val drain_translate : t -> tid:int -> slice:int -> Page.vpage -> int
(** Drain-time half of a granted burst access: run [tid]'s TLB slice
    [slice] for [vpage] exactly as {!try_access} would (replacement,
    accounting) and return the access cycles (including a possible
    dTLB-miss penalty).  Must only run on the shard owning [slice]. *)

val note_tlb_hits : t -> tid:int -> int -> unit
(** Account [n] extra dTLB hits for streamed block accesses. *)

val note_tlb_misses : t -> tid:int -> int -> unit

val stats : t -> stats
val wrpkru_count : t -> int
(** Running WRPKRU total, without building a {!stats} record — cheap
    enough to snapshot at every section entry. *)

val miss_rate : misses:int -> accesses:int -> float
(** [misses / accesses], 0 when [accesses] is 0 — the single guarded
    division behind {!dtlb_miss_rate} and the machine report's
    per-run rate. *)

val dtlb_miss_rate : t -> float
val reset_stats : t -> unit
