type t = {
  rdpkru : int;
  wrpkru : int;
  pkey_mprotect_base : int;
  pkey_mprotect_page : int;
  mmap : int;
  ftruncate : int;
  munmap : int;
  malloc : int;
  fault_roundtrip : int;
  mem_access : int;
  mem_throughput : float;
  dtlb_miss : int;
  lock_uncontended : int;
  lock_contended : int;
  unlock : int;
  map_op : int;
  atomic_op : int;
  vkey_load : int;
  vkey_retag_page : int;
  sampling_check : int;
  rdtscp : int;
  tsan_access : int;
  tsan_sync : int;
  cpu_ghz : float;
}

let default =
  { rdpkru = 1;
    wrpkru = 20;
    pkey_mprotect_base = 1200;
    pkey_mprotect_page = 40;
    mmap = 8000;
    ftruncate = 700;
    munmap = 1400;
    malloc = 90;
    fault_roundtrip = 24_000;
    mem_access = 1;
    mem_throughput = 2.0;
    dtlb_miss = 40;
    lock_uncontended = 45;
    lock_contended = 320;
    unlock = 30;
    map_op = 55;
    atomic_op = 25;
    (* Virtual-key cache: loading an evicted key into a physical slot
       walks the table and issues one batched pkey_mprotect over the
       slot's former and new object sets.  The per-page cost is below
       [pkey_mprotect_page] because the retag batches contiguous unique
       pages into few syscalls (libmpk's measured ~2x batching win). *)
    vkey_load = 1600;
    vkey_retag_page = 24;
    (* Sampling decision at section entry: one multiplicative hash
       and a compare against the fixed-point rate threshold — a
       handful of ALU ops, no memory traffic (HardRace reports the
       check itself is noise next to one WRPKRU). *)
    sampling_check = 6;
    rdtscp = 30;
    tsan_access = 14;
    tsan_sync = 160;
    cpu_ghz = 2.1 }

let fault_delay_threshold t = t.fault_roundtrip
let cycles_to_seconds t cycles = float_of_int cycles /. (t.cpu_ghz *. 1e9)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>wrpkru=%d rdpkru=%d pkey_mprotect=%d+%d/page mmap=%d fault=%d@]"
    t.wrpkru t.rdpkru t.pkey_mprotect_base t.pkey_mprotect_page t.mmap
    t.fault_roundtrip
