(** Run one workload under one detector configuration. *)

type detector =
  | Baseline      (** Native allocator, no detection. *)
  | Alloc         (** Kard's allocator, no detection (Table 3 "Alloc"). *)
  | Kard of Kard_core.Config.t
  | Tsan
  | Lockset

type result = {
  spec_name : string;
  detector_name : string;
  threads : int;
  scale : float;
  seed : int;
  report : Kard_sched.Machine.report;
  kard_stats : Kard_core.Detector.stats option;
  kard_races : Kard_core.Race_record.t list;      (** All surviving records. *)
  kard_ilu_races : Kard_core.Race_record.t list;
  kard_unique_ro : int;
  kard_unique_rw : int;
  tsan_races : Kard_baselines.Tsan.race list;
  tsan_ilu_races : Kard_baselines.Tsan.race list;
  lockset_warnings : Kard_baselines.Lockset.warning list;
  trace : Kard_obs.Trace.t option;
      (** The sink the run emitted into, when one was passed. *)
}

val detector_name : detector -> string

val run_build :
  ?schedule:Kard_sched.Schedule.t ->
  ?wrap:(Kard_sched.Hooks.env -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t) ->
  ?trace:Kard_obs.Trace.t ->
  ?interp:Kard_sched.Machine.interp ->
  ?shards:int ->
  threads:int -> scale:float -> seed:int -> detector:detector ->
  (Kard_sched.Machine.t -> unit) -> string -> result
(** The primitive behind {!run} and {!run_scenario}: run an arbitrary
    machine-builder under a detector.  The record/replay layer uses it
    for targets that are neither specs nor scenarios (fuzz-campaign
    programs). *)

val run :
  ?schedule:Kard_sched.Schedule.t ->
  ?wrap:(Kard_sched.Hooks.env -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t) ->
  ?trace:Kard_obs.Trace.t ->
  ?interp:Kard_sched.Machine.interp ->
  ?shards:int ->
  ?threads:int -> ?scale:float -> ?seed:int -> detector:detector -> Spec_alias.t -> result
(** Defaults: the spec's default thread count, {!Defaults.scale},
    {!Defaults.seed}.
    [schedule] overrides the seeded schedule (the record/replay layer
    passes [Schedule.Replay] here; [seed] still reaches the workload
    builder).  [wrap] composes around the detector's hooks at machine
    construction — the recording and replay-verification wrappers.
    [trace] turns on observability for the run (see
    {!Kard_sched.Machine.create}); the filled sink comes back in
    [result.trace].  [interp] selects the machine's interpreter
    ([`Compiled] by default); [`Thunks] runs the oracle interpreter,
    which must produce an identical result.  [shards] (default
    {!Defaults.shards}, i.e. [$KARD_SHARDS] or 1) shards the machine;
    results are byte-identical at any count. *)

val run_scenario :
  ?schedule:Kard_sched.Schedule.t ->
  ?wrap:(Kard_sched.Hooks.env -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t) ->
  ?trace:Kard_obs.Trace.t ->
  ?interp:Kard_sched.Machine.interp ->
  ?shards:int ->
  ?seed:int -> ?override_config:Kard_core.Config.t -> detector:detector ->
  Kard_workloads.Race_suite.t -> result
(** Run a controlled race scenario (always at its own thread count and
    full scale).  A [Kard _] detector runs with the scenario's own
    configuration unless [override_config] is given. *)

val overhead_pct : baseline:result -> result -> float
(** Execution-time overhead in percent, from total cycles. *)

val rss_overhead_pct : baseline:result -> result -> float
val dtlb_rate : result -> float
