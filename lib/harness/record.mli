(** Record/replay orchestration: resolve targets, run them under the
    {!Kard_replay} recorder, and re-execute logs with fidelity
    checking.

    Recording composes a {!Kard_replay.Recorder} wrapper around the
    detector of an ordinary {!Runner} run: the log captures the
    schedule picks, lock-grant order and periodic pick/clock anchors
    at zero simulated cost, plus a header with the full configuration
    fingerprint.  Replaying rebuilds the same workload from the
    header, drives the machine from the log's pick tape instead of a
    seeded schedule, and verifies grants and anchors as it runs —
    optionally under a {e different} detector (record under cheap
    sampling in production, replay under full kard or the TSan/lockset
    oracles at the desk; clock anchors are then skipped, since
    detector cycle charges differ). *)

type subject =
  | Spec of Kard_workloads.Spec.t
  | Scenario of Kard_workloads.Race_suite.t

val find_subject : string -> (subject, string) result
(** Accepts bare names (workloads first, then scenarios) and the
    explicit [spec:NAME] / [scenario:NAME] forms headers carry. *)

val subject_target : subject -> string
(** The canonical target string recorded in a header. *)

val subject_name : subject -> string

val header :
  detector:Runner.detector ->
  target:string -> threads:int -> scale:float -> seed:int -> shards:int -> Kard_replay.Log.header

val detector_of_header : Kard_replay.Log.header -> (Runner.detector, string) result
(** Reconstruct the recorded detector (a kard header carries its full
    config; others carry none). *)

val same_detector : Runner.detector -> Kard_replay.Log.header -> bool
(** Whether replaying with this detector reproduces the recorded
    configuration exactly (selects {!Kard_replay.Replayer.Strict}). *)

val record :
  ?trace:Kard_obs.Trace.t ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?shards:int ->
  ?override_config:Kard_core.Config.t ->
  detector:Runner.detector ->
  subject ->
  Runner.result * Kard_replay.Log.t
(** Run the subject with recording on.  The returned result is
    byte-identical to an unrecorded run (the recorder charges no
    cycles); the log is ready to {!Kard_replay.Log.to_file}.
    Scenario subjects run at their own thread count and full scale,
    under their own config unless [override_config] is given. *)

val record_build :
  ?trace:Kard_obs.Trace.t ->
  ?shards:int ->
  threads:int ->
  scale:float ->
  seed:int ->
  detector:Runner.detector ->
  target:string ->
  (Kard_sched.Machine.t -> unit) ->
  string ->
  Runner.result * Kard_replay.Log.t
(** Record an arbitrary machine-builder (fuzz programs and other
    targets without a registry entry); [target] goes in the header. *)

type fidelity = (unit, string) result
(** [Ok ()] iff the re-execution matched the log everywhere (picks,
    grants, anchors, full tape consumption). *)

val replay :
  ?trace:Kard_obs.Trace.t ->
  ?shards:int ->
  ?detector:Runner.detector ->
  Kard_replay.Log.t ->
  (Runner.result * fidelity, string) result
(** Re-execute a log whose target is a spec or scenario, resolving
    everything from the header.  [detector] overrides the recorded
    one (cross-detector replay; fidelity drops to schedule-only
    strength).  [shards] defaults to the header's count — any value
    produces the same result.  [Error] means the target could not be
    resolved or the detector could not be reconstructed. *)

val replay_build :
  ?trace:Kard_obs.Trace.t ->
  ?shards:int ->
  ?detector:Runner.detector ->
  Kard_replay.Log.t ->
  (Kard_sched.Machine.t -> unit) ->
  string ->
  (Runner.result * fidelity, string) result
(** Like {!replay} with the workload supplied by the caller — for
    fuzz targets, where the program is reconstructed from the header's
    [fuzz:SEED:INDEX] by the campaign layer. *)
