(** Machine-readable run reports.

    A minimal hand-rolled JSON emitter (the project takes no
    dependencies beyond the test/bench stack) for integrating the
    detector into scripts and CI: race records with both sides, the
    run's cost counters, and the detector's event statistics. *)

val escape : string -> string
(** JSON string-escape (quotes, backslashes, control characters). *)

val of_race : Kard_core.Race_record.t -> string

val of_metrics : Kard_obs.Metrics.t -> string
(** Counters plus histogram summaries (count, total, min, max, mean
    and the p50/p95/p99/p99.9 percentiles), keyed by metric name. *)

val of_snapshot : Kard_obs.Snapshot.t -> string
(** A pure-data metrics snapshot: counters, histogram summaries and
    windowed histograms (per-window percentile rows plus the overall
    row), keyed by metric name. *)

val of_result : Runner.result -> string
(** The full run: workload, detector, cycle/RSS/dTLB counters, races,
    (for Kard runs) the detector statistics, and (for traced runs) the
    trace summary and metrics registry. *)

val of_throughput :
  ?pre:string * string * Experiments.tp_row list ->
  build:string ->
  workload:string ->
  scale:float ->
  seed:int ->
  Experiments.tp_row list ->
  string
(** The tracked throughput benchmark (see BENCH_pr4.json): one object
    per (threads, detector) cell of {!Experiments.throughput}, each
    row carrying the GC counters behind the per-step allocation
    contract.  [build] labels the dune profile the rows were measured
    under ("dev" or "release").  [?pre] embeds a
    [(commit, build, rows)] pre-optimisation reference measurement as
    a ["pre_pr"] section. *)

val of_parallel_bench : scale:float -> Experiments.parallel_bench -> string
(** The tracked parallel-executor benchmark (see BENCH_pr3.json):
    serial vs parallel wall-clock of one job list, the speedup, the
    summed simulated cycles (schedule-determined — must not move with
    [jobs]) and whether both passes produced structurally identical
    results. *)

val of_shard_bench : build:string -> Experiments.shard_bench -> string
(** The tracked sharded single-run benchmark (see BENCH_pr7.json):
    wall-clock of one contended run per shard count, each row's
    speedup against the shards=1 row and whether its full result is
    structurally identical to it.  [sim_cycles] is schedule-determined
    and must not move with the shard count; ["identical"] is the AND
    over all rows.  [build] labels the dune profile. *)

val of_serve_sweep :
  threads:int -> scale:float -> seed:int -> Experiments.serve_sweep -> string
(** The tracked serve sweep (see BENCH_pr6.json): per (detector,
    offered rate) the latency percentiles (p50/p95/p99/p99.9/max in
    simulated cycles), achieved throughput and full metrics snapshot,
    plus the computed goodput-under-SLO per detector.  Built from
    pure-data snapshots, so the emitted bytes are identical at any
    [--jobs] value. *)

val of_keys_bench : build:string -> Experiments.keys_bench -> string
(** The tracked key-pressure precision sweep (see BENCH_pr8.json):
    per (point, detector config) the planted / detected counts and
    their ratio, the overhead against the point's baseline, and the
    key-management counters (sharing, recycling, vkey cache traffic).
    [build] labels the dune profile. *)

val of_sampling_bench :
  build:string ->
  threads:int ->
  scale:float ->
  seed:int ->
  Experiments.sampling_bench ->
  string
(** The tracked sampling sweep (see BENCH_pr9.json): per (subject,
    rate) the detection probability, the detection-latency
    distribution in critical-section entries, the subset check against
    the same-seed rate-1.0 runs and the fast-path counters; plus the
    embedded ["serve"] sweep with sampled-kard detectors — the
    goodput-under-SLO recovery claim.  [threads]/[scale]/[seed]
    describe the serve section.  [build] labels the dune profile. *)

val of_record_bench : build:string -> Experiments.record_bench -> string
(** The tracked record/replay overhead benchmark (see
    BENCH_pr10.json): per (subject, detector) the recording wrapper's
    host-time overhead, the simulated-cycle overhead (contract:
    exactly 0), the encoded log's size and bytes-per-step against the
    DESIGN.md §13 budget, and whether a strict replay reproduced the
    recorded result.  [build] labels the dune profile. *)

val pretty : string -> string
(** Re-indent a JSON string (objects and arrays, 2 spaces). *)
