(** Human-readable rendering of a run's observability data: the
    metrics registry as counter/histogram tables and the event trace
    as a per-category summary.  Shared by [kard_cli trace] and the
    benchmark driver. *)

val counters_table : Kard_obs.Metrics.t -> string
val histograms_table : Kard_obs.Metrics.t -> string
(** Count, mean, p50/p95/p99/p99.9, min and max per histogram. *)

val windows_table : Kard_obs.Metrics.t -> string option
(** Per-window percentile rows (plus an overall row) for each
    windowed histogram; [None] when the registry has none. *)

val print_metrics : Kard_obs.Metrics.t -> unit
(** All tables to stdout (the window table only when present). *)

val trace_summary_table : Kard_obs.Trace.t -> string
(** Retained events per {!Kard_obs.Event.category}, plus totals for
    retained and dropped events. *)

val print_trace_summary : Kard_obs.Trace.t -> unit
