(** Human-readable rendering of a run's observability data: the
    metrics registry as counter/histogram tables and the event trace
    as a per-category summary.  Shared by [kard_cli trace] and the
    benchmark driver. *)

val counters_table : Kard_obs.Metrics.t -> string
val histograms_table : Kard_obs.Metrics.t -> string
(** Count, mean, p50/p95/p99, min and max per histogram. *)

val print_metrics : Kard_obs.Metrics.t -> unit
(** Both tables to stdout. *)

val trace_summary_table : Kard_obs.Trace.t -> string
(** Retained events per {!Kard_obs.Event.category}, plus totals for
    retained and dropped events. *)

val print_trace_summary : Kard_obs.Trace.t -> unit
