(** A job is one seeded run as {e pure data}.

    Everything the runner needs — the workload (or race scenario), the
    detector, the thread count, the scale, the seed, and an optional
    trace request — is captured in an immutable value, so a job can be
    shipped to any worker domain and executed there.  Because a seeded
    run is a pure function of these inputs (DESIGN.md §7 documents the
    audit), executing the same job twice, or on two different domains,
    produces bit-identical {!Runner.result}s.

    Observability sinks are mutable, so a job never carries one:
    it carries a {!trace_request}, and {!run} creates the sink inside
    the executing worker.  The filled sink comes back in
    [result.trace] exactly as with a direct {!Runner.run ~trace}. *)

type trace_request = {
  capacity : int;  (** Event-ring capacity (see {!Kard_obs.Trace.create}). *)
  steps : bool;    (** Record per-operation step events too. *)
}

val trace_request : ?capacity:int -> ?steps:bool -> unit -> trace_request
(** Defaults mirror {!Kard_obs.Trace.create}: capacity 65536, steps
    off. *)

type target =
  | Spec of Spec_alias.t
      (** A workload model, run at the job's threads/scale. *)
  | Scenario of Kard_workloads.Race_suite.t
      (** A controlled race scenario (always its own thread count and
          full scale, as {!Runner.run_scenario} does). *)

type t = private {
  target : target;
  detector : Runner.detector;
  threads : int option;  (** [Spec] only; [None] = the spec's default. *)
  scale : float;         (** [Spec] only; scenarios always run at 1.0. *)
  seed : int;
  override_config : Kard_core.Config.t option;  (** [Scenario] only. *)
  trace : trace_request option;
  shards : int option;
      (** Machine shard count; [None] = {!Defaults.shards} (i.e.
          [$KARD_SHARDS] or 1) resolved in the executing worker.
          Results are byte-identical at any value. *)
}

val spec :
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?trace:trace_request ->
  ?shards:int ->
  Runner.detector ->
  Spec_alias.t ->
  t
(** Defaults: the spec's own thread count, {!Defaults.scale},
    {!Defaults.seed}, no trace, {!Defaults.shards}. *)

val scenario :
  ?seed:int ->
  ?override_config:Kard_core.Config.t ->
  ?trace:trace_request ->
  ?shards:int ->
  Runner.detector ->
  Kard_workloads.Race_suite.t ->
  t
(** Defaults: {!Defaults.seed}, the scenario's own configuration, no
    trace, {!Defaults.shards}. *)

val describe : t -> string
(** ["<workload>/<detector>/seed=<n>"] — used in pool error reports. *)

val run : t -> Runner.result
(** Execute the job in the calling domain.  Creates the trace sink (if
    requested) locally, so concurrent jobs never share observability
    state. *)
