exception Job_failed of { index : int; label : string; message : string }

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Defaults.jobs ()

let default_label i _ = Printf.sprintf "#%d" i

let fail index label exn backtrace =
  let message =
    let e = Printexc.to_string exn in
    if String.trim backtrace = "" then e else e ^ "\n" ^ backtrace
  in
  raise (Job_failed { index; label; message })

(* Workers race only on [next] (an atomic ticket counter); each result
   slot is written by exactly one domain and read after [Domain.join],
   which publishes the writes. *)
let map_domains ~domains ~label f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (results.(i) <-
         (match f arr.(i) with
         | v -> Some (Ok v)
         | exception exn -> Some (Error (exn, Printexc.get_backtrace ()))));
      worker ()
    end
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.mapi
    (fun i cell ->
      match cell with
      | Some (Ok v) -> v
      | Some (Error (exn, bt)) -> fail i (label i arr.(i)) exn bt
      | None -> assert false)
    results

let map_serial ~label f arr =
  Array.mapi
    (fun i item ->
      match f item with
      | v -> v
      | exception exn -> fail i (label i item) exn (Printexc.get_backtrace ()))
    arr

let map ?jobs ?(label = default_label) f items =
  let jobs = resolve_jobs jobs in
  let arr = Array.of_list items in
  let domains = min jobs (Array.length arr) in
  let mapped =
    if domains <= 1 then map_serial ~label f arr
    else map_domains ~domains ~label f arr
  in
  Array.to_list mapped

let run_jobs ?jobs js = map ?jobs ~label:(fun _ j -> Job.describe j) Job.run js

type gc_stats = { minor_words : float; promoted_words : float }

(* GC counters are per-domain ([Gc.quick_stat] reads the calling
   domain's own allocation totals), so sampling them around a parallel
   [map] from the submitting domain misses everything the workers
   allocate.  Instead, every item's delta is measured inside whichever
   domain executes it, and the deltas are summed in submission order —
   the aggregate covers all executing domains at any [~jobs] value. *)
let map_gc ?jobs ?(label = default_label) f items =
  let wrapped x =
    (* [Gc.minor_words] reads the live allocation pointer;
       [quick_stat]'s [minor_words] only refreshes at collection
       events, so its per-item delta is 0 unless a minor GC happened
       to land inside the item. *)
    let before_minor = Gc.minor_words () in
    let before = Gc.quick_stat () in
    let v = f x in
    let after_minor = Gc.minor_words () in
    let after = Gc.quick_stat () in
    (v, after_minor -. before_minor, after.Gc.promoted_words -. before.Gc.promoted_words)
  in
  let mapped = map ?jobs ~label wrapped items in
  let gc =
    List.fold_left
      (fun acc (_, m, p) ->
        { minor_words = acc.minor_words +. m; promoted_words = acc.promoted_words +. p })
      { minor_words = 0.; promoted_words = 0. }
      mapped
  in
  (List.map (fun (v, _, _) -> v) mapped, gc)

let run_jobs_gc ?jobs js = map_gc ?jobs ~label:(fun _ j -> Job.describe j) Job.run js

type 'a plan = {
  jobs : Job.t list;
  merge : Runner.result list -> 'a;
}

let plan jobs ~merge = { jobs; merge }

let execute ?jobs p = p.merge (run_jobs ?jobs p.jobs)

let chunks k l =
  if k <= 0 then invalid_arg "Pool.chunks: k must be positive";
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go = function
    | [] -> []
    | l ->
      let group, rest = take k [] l in
      group :: go rest
  in
  go l
