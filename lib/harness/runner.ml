module Machine = Kard_sched.Machine
module Hooks = Kard_sched.Hooks
module Detector = Kard_core.Detector

type detector =
  | Baseline
  | Alloc
  | Kard of Kard_core.Config.t
  | Tsan
  | Lockset

type result = {
  spec_name : string;
  detector_name : string;
  threads : int;
  scale : float;
  seed : int;
  report : Machine.report;
  kard_stats : Detector.stats option;
  kard_races : Kard_core.Race_record.t list;
  kard_ilu_races : Kard_core.Race_record.t list;
  kard_unique_ro : int;
  kard_unique_rw : int;
  tsan_races : Kard_baselines.Tsan.race list;
  tsan_ilu_races : Kard_baselines.Tsan.race list;
  lockset_warnings : Kard_baselines.Lockset.warning list;
  trace : Kard_obs.Trace.t option;
}

let detector_name = function
  | Baseline -> "baseline"
  | Alloc -> "alloc"
  | Kard _ -> "kard"
  | Tsan -> "tsan"
  | Lockset -> "lockset"

let kard_allocator = Machine.Unique_page { granule = 32; recycle_virtual_pages = false }

let run_build ?schedule ?wrap ?trace ?interp ?shards ~threads ~scale ~seed ~detector build name =
  let shards = match shards with Some n -> n | None -> Defaults.shards () in
  let kard_cell = ref None in
  let tsan_cell = ref None in
  let lockset_cell = ref None in
  let allocator, make_detector =
    match detector with
    | Baseline -> (Machine.Native, fun (_ : Hooks.env) -> Hooks.null ~name:"baseline")
    | Alloc -> (kard_allocator, fun (_ : Hooks.env) -> Hooks.null ~name:"alloc")
    | Kard config -> (kard_allocator, Detector.make ~config ~cell:kard_cell)
    | Tsan -> (Machine.Native, Kard_baselines.Tsan.make ~max_threads:(threads + 1) ~cell:tsan_cell)
    | Lockset -> (Machine.Native, Kard_baselines.Lockset.make ~cell:lockset_cell)
  in
  let make_detector =
    match wrap with
    | None -> make_detector
    | Some w -> fun env -> w env (make_detector env)
  in
  let machine = Machine.create ~seed ?schedule ?trace ?interp ~shards ~allocator ~make_detector () in
  build machine;
  let report = Machine.run machine in
  let kard_stats = Option.map Detector.stats !kard_cell in
  { spec_name = name;
    detector_name = detector_name detector;
    threads;
    scale;
    seed;
    report;
    kard_stats;
    kard_races = (match !kard_cell with Some d -> Detector.races d | None -> []);
    kard_ilu_races = (match !kard_cell with Some d -> Detector.ilu_races d | None -> []);
    kard_unique_ro = (match !kard_cell with Some d -> Detector.unique_ro_objects d | None -> 0);
    kard_unique_rw = (match !kard_cell with Some d -> Detector.unique_rw_objects d | None -> 0);
    tsan_races = (match !tsan_cell with Some t -> Kard_baselines.Tsan.races t | None -> []);
    tsan_ilu_races = (match !tsan_cell with Some t -> Kard_baselines.Tsan.ilu_races t | None -> []);
    lockset_warnings =
      (match !lockset_cell with Some l -> Kard_baselines.Lockset.warnings l | None -> []);
    trace }

let run ?schedule ?wrap ?trace ?interp ?shards ?threads ?(scale = Defaults.scale)
    ?(seed = Defaults.seed) ~detector (spec : Spec_alias.t) =
  let threads = Option.value ~default:spec.Kard_workloads.Spec.default_threads threads in
  run_build ?schedule ?wrap ?trace ?interp ?shards ~threads ~scale ~seed ~detector
    (fun machine -> spec.Kard_workloads.Spec.build ~threads ~scale ~seed machine)
    spec.Kard_workloads.Spec.name

let run_scenario ?schedule ?wrap ?trace ?interp ?shards ?(seed = Defaults.seed) ?override_config
    ~detector (scenario : Kard_workloads.Race_suite.t) =
  let detector =
    match detector, override_config with
    | Kard _, Some config -> Kard config
    | Kard _, None -> Kard scenario.Kard_workloads.Race_suite.config
    | ((Baseline | Alloc | Tsan | Lockset) as d), _ -> d
  in
  run_build ?schedule ?wrap ?trace ?interp ?shards
    ~threads:scenario.Kard_workloads.Race_suite.threads ~scale:1.0
    ~seed
    ~detector
    scenario.Kard_workloads.Race_suite.build scenario.Kard_workloads.Race_suite.name

let overhead_pct ~baseline result =
  let b = float_of_int baseline.report.Machine.cycles in
  let r = float_of_int result.report.Machine.cycles in
  if b = 0. then 0. else (r -. b) /. b *. 100.

let rss_overhead_pct ~baseline result =
  let b = float_of_int baseline.report.Machine.rss_bytes in
  let r = float_of_int result.report.Machine.rss_bytes in
  if b = 0. then 0. else (r -. b) /. b *. 100.

let dtlb_rate result = result.report.Machine.dtlb_miss_rate
