(** Drivers that regenerate every table and figure of the paper's
    evaluation (section 7).

    Every experiment is a {e plan-builder}: [<name>_plan] describes the
    runs as a {!Pool.plan} — a list of pure-data {!Job.t}s plus a merge
    that reassembles rows in submission order — and the [<name> ?jobs]
    executor runs it on the Domain pool.  Because each job is a pure
    function of its inputs and rows are merged in submission order,
    [~jobs:1] and [~jobs:N] produce identical tables (DESIGN.md §7);
    the test suite asserts this.  Each experiment returns structured
    data (so tests can assert on shapes) and has a printer that renders
    a paper-style table. *)

(** {1 Table 3: performance, memory and dTLB overheads} *)

type t3_row = {
  spec : Spec_alias.t;
  base : Runner.result;
  alloc : Runner.result;
  kard : Runner.result;
  tsan : Runner.result;
}

val table3_plan :
  ?threads:int -> ?scale:float -> ?specs:Spec_alias.t list -> unit -> t3_row list Pool.plan

val table3 :
  ?jobs:int -> ?threads:int -> ?scale:float -> ?specs:Spec_alias.t list -> unit -> t3_row list

val print_table3 : t3_row list -> unit

val t3_kard_pct : t3_row -> float
val t3_alloc_pct : t3_row -> float
val t3_tsan_pct : t3_row -> float
val t3_rss_pct : t3_row -> float

(** {1 Table 1 + Figure 1: ILU scope} *)

type scenario_row = {
  scenario : Kard_workloads.Race_suite.t;
  kard_ilu : int;
  tsan : int;
  lockset : int;
  kard_ok : bool;
  tsan_ok : bool;
  lockset_ok : bool;
}

val scenarios_plan : ?names:string list -> ?seed:int -> unit -> scenario_row list Pool.plan
val scenarios : ?jobs:int -> ?names:string list -> ?seed:int -> unit -> scenario_row list
val print_scenarios : scenario_row list -> unit

(** {1 Table 5: memcached key recycling and sharing vs threads} *)

type t5_row = {
  t5_threads : int;
  total_cs : int;
  unique_cs : int;
  max_concurrent : int;
  recycling : int;
  sharing : int;
}

val table5_plan :
  ?data_keys:int -> ?threads_list:int list -> ?scale:float -> unit -> t5_row list Pool.plan

val table5 :
  ?jobs:int -> ?data_keys:int -> ?threads_list:int list -> ?scale:float -> unit -> t5_row list
(** [data_keys] defaults to the full 13.  A scaled run holds a
    proportionally smaller live key working set than the full 162k
    request run, so the key-pressure dynamics of the paper's Table 5
    are reproduced by scaling the key budget alongside (see
    EXPERIMENTS.md); the printer emits both views. *)

val print_table5 : t5_row list -> unit

(** {1 Table 6: real-world data races} *)

type t6_row = {
  app : string;
  kard_races : int;      (** Surviving Kard records (ILU scope). *)
  tsan_ilu : int;
  tsan_non_ilu : int;
  paper_kard : int;
  paper_tsan_ilu : int;
  paper_tsan_non_ilu : int;
}

val table6_plan : ?scale:float -> unit -> t6_row list Pool.plan
val table6 : ?jobs:int -> ?scale:float -> unit -> t6_row list
val print_table6 : t6_row list -> unit

(** {1 Figure 5: scalability} *)

type f5_row = {
  f5_name : string;
  by_threads : (int * float) list; (** thread count, Kard overhead %. *)
}

val figure5_plan :
  ?threads_list:int list -> ?scale:float -> ?specs:Spec_alias.t list -> unit ->
  f5_row list Pool.plan

val figure5 :
  ?jobs:int -> ?threads_list:int list -> ?scale:float -> ?specs:Spec_alias.t list -> unit ->
  f5_row list

val print_figure5 : f5_row list -> unit

(** {1 NGINX file-size sweep (section 7.2)} *)

type nginx_row = { file_kb : int; kard_pct : float }

val nginx_sweep_plan : ?sizes:int list -> ?scale:float -> unit -> nginx_row list Pool.plan
val nginx_sweep : ?jobs:int -> ?sizes:int list -> ?scale:float -> unit -> nginx_row list
val print_nginx_sweep : nginx_row list -> unit

(** {1 Figure 2: consolidated unique page allocation} *)

type f2_stats = {
  objects : int;
  object_bytes : int;
  virtual_pages : int;
  physical_pages : int;
  file_bytes : int;
}

val figure2 : ?objects:int -> ?object_bytes:int -> unit -> f2_stats
val print_figure2 : f2_stats -> unit

(** {1 Memory consumption breakdown (section 7.5)} *)

type mem_row = {
  mem_name : string;
  base_rss : int;
  kard_rss : int;
  kard_data : int;        (** Resident data pages (per-mapping). *)
  kard_page_tables : int;
  kard_metadata : int;    (** Detector + allocator metadata. *)
  wasted : int;           (** Granule-rounding waste (32 B slots). *)
}

val memory_plan :
  ?threads:int -> ?scale:float -> ?specs:Spec_alias.t list -> unit -> mem_row list Pool.plan

val memory :
  ?jobs:int -> ?threads:int -> ?scale:float -> ?specs:Spec_alias.t list -> unit -> mem_row list

val print_memory : mem_row list -> unit

(** {1 Ablation: the design choices DESIGN.md calls out} *)

type ablation_row = {
  ab_label : string;       (** Config variant (e.g. "no proactive acquisition"). *)
  ab_pct : float;          (** Overhead vs the shared baseline run. *)
  ab_records : int;        (** Surviving race records. *)
  ab_recycling : int;
  ab_sharing : int;
}

val ablation_variants : (string * Kard_core.Config.t) list
(** The labelled configuration variants the ablation sweeps, default
    first. *)

val ablation_plan : ?scale:float -> unit -> ablation_row list Pool.plan
val ablation : ?jobs:int -> ?scale:float -> unit -> ablation_row list
(** memcached under every {!ablation_variants} configuration, one row
    per variant, all against a single shared baseline run. *)

val print_ablation : ablation_row list -> unit

(** {1 Simulator throughput (tracked in BENCH_pr4.json)} *)

type tp_row = {
  tp_threads : int;
  tp_detector : string;
  tp_steps : int;          (** Simulated operations executed. *)
  tp_sim_cycles : int;     (** Simulated cycles (schedule-determined). *)
  tp_host_seconds : float; (** Wall-clock time of the host process. *)
  tp_ops_per_sec : float;  (** [tp_steps / tp_host_seconds]. *)
  tp_minor_words : float;    (** [Gc.quick_stat] minor_words delta of the run. *)
  tp_promoted_words : float; (** promoted_words delta of the run. *)
  tp_minor_words_per_step : float;
      (** [tp_minor_words / tp_steps]: the allocation-rate tracker
          behind the per-step allocation contract (DESIGN.md §8). *)
}

val throughput :
  ?spec:Spec_alias.t ->
  ?threads_list:int list ->
  ?scale:float ->
  ?seed:int ->
  ?shards:int ->
  unit ->
  tp_row list
(** Host throughput of the simulator itself: steps per wall-clock
    second for a Baseline and a Kard run of [spec] (default memcached,
    {!Defaults.throughput_scale}, threads 1–64).  This is the hot-loop
    regression tracker — simulated cycle outputs are
    schedule-determined and must not move, but ops/s measures the
    scheduler + MPK fast paths.  One warm-up run precedes the sweep.
    Deliberately {e not} a plan: each cell is wall-clock timed, so
    cells must not compete for host cores. *)

val print_throughput : tp_row list -> unit

(** {1 Parallel executor benchmark (tracked in BENCH_pr3.json)} *)

type parallel_bench = {
  pb_jobs : int;              (** Worker count of the parallel pass. *)
  pb_host_cores : int;        (** [Domain.recommended_domain_count ()]. *)
  pb_job_count : int;
  pb_serial_seconds : float;  (** Wall-clock of the [~jobs:1] pass. *)
  pb_parallel_seconds : float;
  pb_speedup : float;         (** serial / parallel. *)
  pb_sim_cycles : int;        (** Summed simulated cycles (must not move). *)
  pb_identical : bool;        (** Structural equality of both result lists. *)
  pb_minor_words : float;     (** minor_words delta of the serial pass. *)
  pb_promoted_words : float;  (** promoted_words delta of the serial pass. *)
  pb_minor_words_per_step : float;
      (** Serial-pass minor words per simulated step (per-domain GC
          counters make the parallel pass unmeasurable from here). *)
}

val parallel_bench : ?jobs:int -> ?scale:float -> unit -> parallel_bench
(** Execute the Table 3 job list twice — serially and on [jobs]
    workers — and compare wall-clock and outputs.  [pb_identical] is
    the pool's determinism contract measured end-to-end; [pb_speedup]
    only materialises on multi-core hosts ([pb_host_cores] makes the
    recorded number self-describing). *)

val print_parallel_bench : parallel_bench -> unit

(** {1 Open-loop serve sweep (tracked in BENCH_pr6.json)} *)

type serve_row = {
  sv_detector : string;     (** Detector label ("none", "kard", "tsan"). *)
  sv_rate : float;          (** Offered load, requests per Mcycle. *)
  sv_requests : int;        (** Requests served (all arrivals drain). *)
  sv_cycles : int;          (** Aggregate simulated cycles of the run. *)
  sv_achieved : float;      (** Served requests per Mcycle of the run. *)
  sv_latency : Kard_obs.Window.row;
      (** Whole-run latency percentiles (arrival to completion). *)
  sv_snapshot : Kard_obs.Snapshot.t;
      (** The run's full metrics snapshot, windowed histograms
          included — pure data, safe to compare across [--jobs]. *)
}

type serve_sweep = {
  ss_server : string;
  ss_model : string;
  ss_slo : int;             (** p99 latency budget, simulated cycles. *)
  ss_threads : int;
  ss_rows : serve_row list; (** Detector-major, offered-rate-minor. *)
  ss_goodput : (string * float) list;
      (** Per detector: the highest swept rate whose p99 meets the
          SLO; [0.] when every rate misses. *)
}

val serve_detectors : (string * Runner.detector) list
(** The production question's contestants: no detection ("none"),
    Kard, and TSan as the instrumentation-based reference. *)

val default_serve_rates : float list

val serve_goodput : slo:int -> serve_row list -> (string * float) list

val serve_plan :
  ?server:Kard_workloads.Openloop.server ->
  ?model:Kard_workloads.Openloop.arrival ->
  ?detectors:(string * Runner.detector) list ->
  ?rates:float list ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?slo:int ->
  ?shards:int ->
  unit ->
  serve_sweep Pool.plan
(** One traced job per (detector, offered rate); the merge computes
    latency percentiles from each run's [serve.latency_cycles]
    windowed histogram and goodput-under-SLO per detector.  Every
    sweep point replays the identical arrival timetable (a pure
    function of [(seed, rate)]), so detectors are compared under the
    same offered load. *)

val serve :
  ?jobs:int ->
  ?server:Kard_workloads.Openloop.server ->
  ?model:Kard_workloads.Openloop.arrival ->
  ?detectors:(string * Runner.detector) list ->
  ?rates:float list ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?slo:int ->
  ?shards:int ->
  unit ->
  serve_sweep

val print_serve : serve_sweep -> unit

(** {1 Sharded single-run benchmark (tracked in BENCH_pr7.json)} *)

type shard_row = {
  sh_shards : int;
  sh_workers : int;        (** Drain Domains the burst engine will use. *)
  sh_seconds : float;      (** Wall-clock of the whole run. *)
  sh_speedup : float;      (** shards=1 seconds / this row's seconds. *)
  sh_identical : bool;     (** Structural equality with the shards=1 result. *)
}

type shard_bench = {
  sh_spec : string;
  sh_threads : int;
  sh_scale : float;
  sh_seed : int;
  sh_host_cores : int;
  sh_steps : int;          (** Simulated operations (identical across rows). *)
  sh_sim_cycles : int;     (** Simulated cycles (must not move with shards). *)
  sh_rows : shard_row list;  (** First row is always shards=1. *)
}

val default_shard_counts : int list
(** [[1; 2; 4; 8]]. *)

val shard_bench :
  ?spec:Spec_alias.t ->
  ?shard_counts:int list ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  unit ->
  shard_bench
(** Time one contended Kard run (default: the 64-thread lock-convoy
    model [convoy] at full scale) at each shard count, single run per
    row — this is a {e single-run} speedup, unlike
    {!parallel_bench}'s many-jobs speedup.  Every sharded row's full
    result must be structurally identical to the shards=1 row
    ([sh_identical]); wall-clock gains come from the burst engine's
    per-merge-point charge aggregation and (on multi-core hosts)
    parallel shard drains, so the speedup does not require spare
    cores.  Deliberately not a plan: rows are wall-clock timed and
    must not compete for the host. *)

val print_shard_bench : shard_bench -> unit

(** {1 Key-pressure precision sweep (tracked in BENCH_pr8.json)} *)

type keys_row = {
  kp_point : string;       (** Sweep point label ("10k", "100k"). *)
  kp_mode : string;        (** Detector config label ("phys-13", "vkeys-13", ...). *)
  kp_objects : int;        (** Effective (scaled) object population. *)
  kp_sections : int;       (** Distinct critical sections of the point. *)
  kp_data_keys : int;      (** Physical data-key budget of the row. *)
  kp_vkeys : int;          (** Virtual pool size; 0 = identity mode. *)
  kp_planted : int;        (** Wrong-lock writes planted by the workload. *)
  kp_detected : int;       (** Surviving Kard race records. *)
  kp_detected_objects : int; (** Distinct objects among the records. *)
  kp_cycles : int;         (** Simulated cycles of the Kard run. *)
  kp_overhead_pct : float; (** vs the point's shared baseline run. *)
  kp_sharing : int;
  kp_recycling : int;
  kp_vkey_evictions : int;
  kp_vkey_loads : int;
  kp_vkey_retag_pages : int;
  kp_vkey_stalls : int;
}

type keys_bench = {
  kp_threads : int;
  kp_scale : float;
  kp_seed : int;
  kp_rows : keys_row list; (** Point-major, config-minor. *)
}

val default_keys_points : (string * Kard_workloads.Keypressure.profile) list
(** The 10k- and 100k-object points of the {!Kard_workloads.Keypressure}
    family (the 1M point is reachable via [?points] but too slow for the
    tracked bench). *)

val default_keys_data_keys : int list
(** Physical-key ablation budgets: [[4; 8; 13]]. *)

val default_keys_pool : int -> int
(** Default virtual pool for a point: twice its section count, i.e.
    comfortably past the active set so precision isolates association
    lifetime rather than pool sizing. *)

val keys_plan :
  ?points:(string * Kard_workloads.Keypressure.profile) list ->
  ?data_keys:int list ->
  ?pool:int ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?shards:int ->
  unit ->
  keys_bench Pool.plan
(** Per point: one baseline job (the overhead denominator) plus, for
    each physical budget in [data_keys], a physical-detector row and a
    virtualized row ([vkeys] = pool).  Precision is [kp_detected] over
    [kp_planted]: the physical rows lose plants to association churn
    (key recycling demotes the victim object before the wrong-lock
    write lands), the vkey rows keep every lock association alive for
    the whole run (DESIGN.md §11). *)

val keys :
  ?jobs:int ->
  ?points:(string * Kard_workloads.Keypressure.profile) list ->
  ?data_keys:int list ->
  ?pool:int ->
  ?threads:int ->
  ?scale:float ->
  ?seed:int ->
  ?shards:int ->
  unit ->
  keys_bench

val print_keys_bench : keys_bench -> unit

(** {1 Sampling sweep (tracked in BENCH_pr9.json)} *)

type sampling_row = {
  sp_subject : string;      (** Race scenario or key-pressure point. *)
  sp_rate : float;          (** [Config.sampling] of the row's runs. *)
  sp_runs : int;            (** Seeds swept. *)
  sp_detected : int;        (** Runs with >= 1 surviving race record. *)
  sp_detection_pct : float;
  sp_subset_ok : bool;
      (** Every run's race-object set was a subset of the same seed's
          rate-1.0 set: sampling delayed or missed, never invented.
          Asserted on the pinned-schedule scenario subjects only —
          open-schedule subjects (keypressure) reschedule under
          sampling's different charges, so cross-run containment is
          undefined and the flag is vacuously [true] there (the fuzz
          taxonomy covers those via same-execution oracles). *)
  sp_latency_min : int;     (** Detection latency — critical-section
                                entries until the first fresh race
                                record — over the detecting runs;
                                [-1] when none detected. *)
  sp_latency_p50 : int;
  sp_latency_max : int;
  sp_mean_cs_entries : float;  (** Mean CS entries per run (the
                                   latency denominator's scale). *)
  sp_sampled_sections : int;   (** Aggregate over the row's runs. *)
  sp_skipped_sections : int;
  sp_skipped_accesses : int;
  sp_mean_cycles : float;
}

type sampling_bench = {
  sp_epoch : int;           (** [Config.sampling_epoch] of the sweep. *)
  sp_seeds : int list;
  sp_rates : float list;
  sp_rows : sampling_row list;  (** Subject-major, rate-minor. *)
  sp_serve : serve_sweep;
      (** The open-loop nginx sweep rerun with sampled-kard detectors
          ("kard-s10"/"kard-s25"/"kard-s50") next to "none" and the
          full "kard" — the goodput-under-SLO recovery claim. *)
}

val default_sampling_rates : float list
(** [[0.1; 0.25; 0.5; 1.0]] — 1.0 is the full-Kard reference the
    subset check compares against. *)

val default_sampling_scenarios : string list
(** Race-suite subjects with reliable full-rate detection across the
    seed sweep, so the rate column is what moves probability. *)

val default_serve_sampling_rates : float list
(** [[0.1; 0.25; 0.5]] — the sampled-kard serve contestants. *)

val default_sampling_epoch : int
(** [100_000] simulated cycles per sampling epoch. *)

val serve_sampling_detectors : float list -> (string * Runner.detector) list
(** ["none"], full ["kard"], then one ["kard-sNN"] per rate. *)

val sampling_plan :
  ?scenarios:string list ->
  ?rates:float list ->
  ?epoch:int ->
  ?seeds:int list ->
  ?serve_rates:float list ->
  ?scale:float ->
  ?slo:int ->
  ?shards:int ->
  unit ->
  sampling_bench Pool.plan
(** One Kard run per (subject, rate, seed), plus the serve sweep's
    jobs; the merge aggregates detection probability, the
    detection-latency distribution and the subset check per row.
    [scale] (default 0.1) applies to the key-pressure subject only —
    scenarios always run at full scale. *)

val sampling :
  ?jobs:int ->
  ?scenarios:string list ->
  ?rates:float list ->
  ?epoch:int ->
  ?seeds:int list ->
  ?serve_rates:float list ->
  ?scale:float ->
  ?slo:int ->
  ?shards:int ->
  unit ->
  sampling_bench

val print_sampling : sampling_bench -> unit

(** {1 Record/replay overhead (BENCH_pr10.json)} *)

type record_row = {
  rc_subject : string;          (** Target name as resolved by {!Record.find_subject}. *)
  rc_detector : string;
  rc_steps : int;               (** Machine steps of the recorded run. *)
  rc_sim_cycles : int;
  rc_sim_overhead_cycles : int;
      (** Recorded-run cycles minus plain-run cycles.  The recorder
          charges nothing, so the contract — and what the tracked file
          proves — is that this is exactly [0]. *)
  rc_plain_seconds : float;     (** Host wall-clock of the unrecorded run. *)
  rc_recorded_seconds : float;  (** Host wall-clock with the recorder wrapped in. *)
  rc_host_overhead_pct : float; (** Recording's host-time cost in percent. *)
  rc_log_bytes : int;           (** Size of the encoded log. *)
  rc_bytes_per_step : float;
      (** [rc_log_bytes / rc_steps] — against the DESIGN.md §13 budget
          of ~1 byte per step plus ~3 per lock grant. *)
  rc_picks : int;
  rc_grants : int;
  rc_replay_identical : bool;
      (** Strict replay of the log reproduced the recorded result
          (report, races, warnings) and passed the tape-fidelity
          check. *)
}

type record_bench = {
  rc_scale : float;
  rc_seed : int;
  rc_shards : int;
  rc_rows : record_row list;
}

val default_record_subjects : unit -> (string * Runner.detector) list
(** memcached under baseline and kard, aget, the keys-10k key-pressure
    workload, and the ilu-lock-lock scenario — a function because the
    kard config reads [$KARD_VKEYS]/[$KARD_SAMPLING]. *)

val record_bench :
  ?subjects:(string * Runner.detector) list ->
  ?scale:float -> ?seed:int -> ?shards:int -> unit -> record_bench
(** Deliberately serial (wall-clock timed cells), like {!throughput}. *)

val print_record : record_bench -> unit

(** {1 MPK microbenchmarks (section 2.2)} *)

val print_micro : unit -> unit
