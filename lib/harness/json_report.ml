module Machine = Kard_sched.Machine
module Race_record = Kard_core.Race_record

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let field name value = str name ^ ":" ^ value
let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"
let int_ = string_of_int
let float_ f = Printf.sprintf "%.6g" f
let bool_ b = if b then "true" else "false"

let of_side (s : Race_record.side) =
  obj
    [ field "thread" (int_ s.Race_record.thread);
      field "section"
        (match s.Race_record.section with
        | Some site -> int_ site
        | None -> "null");
      field "access" (str (match s.Race_record.access with `Read -> "read" | `Write -> "write"));
      field "ip" (int_ s.Race_record.ip) ]

let of_race (r : Race_record.t) =
  obj
    [ field "object" (int_ r.Race_record.obj_id);
      field "offset" (int_ r.Race_record.offset);
      field "ilu" (bool_ (Race_record.is_ilu r));
      field "faulting" (of_side r.Race_record.faulting);
      field "holding" (arr (List.map of_side r.Race_record.holding));
      field "time" (int_ r.Race_record.time) ]

let of_kard_stats (s : Kard_core.Detector.stats) =
  obj
    [ field "identifications_read" (int_ s.Kard_core.Detector.identifications_read);
      field "identifications_write" (int_ s.Kard_core.Detector.identifications_write);
      field "proactive_acquisitions" (int_ s.Kard_core.Detector.proactive_acquisitions);
      field "reactive_acquisitions" (int_ s.Kard_core.Detector.reactive_acquisitions);
      field "demotions" (int_ s.Kard_core.Detector.demotions);
      field "migrations" (int_ s.Kard_core.Detector.migrations);
      field "fresh" (int_ s.Kard_core.Detector.fresh_events);
      field "reuse" (int_ s.Kard_core.Detector.reuse_events);
      field "recycling" (int_ s.Kard_core.Detector.recycling_events);
      field "sharing" (int_ s.Kard_core.Detector.sharing_events);
      field "interleavings" (int_ s.Kard_core.Detector.interleavings_started);
      field "records_logged" (int_ s.Kard_core.Detector.records_logged);
      field "records_redundant" (int_ s.Kard_core.Detector.records_redundant);
      field "records_pruned_spurious" (int_ s.Kard_core.Detector.records_pruned_spurious);
      field "soft_fallbacks" (int_ s.Kard_core.Detector.soft_fallbacks);
      field "soft_faults" (int_ s.Kard_core.Detector.soft_faults);
      field "vkeys"
        (obj
           [ field "pool" (int_ s.Kard_core.Detector.vkey_pool);
             field "resident" (int_ s.Kard_core.Detector.vkey_resident);
             field "hits" (int_ s.Kard_core.Detector.vkey_hits);
             field "misses" (int_ s.Kard_core.Detector.vkey_misses);
             field "evictions" (int_ s.Kard_core.Detector.vkey_evictions);
             field "loads" (int_ s.Kard_core.Detector.vkey_loads);
             field "retag_pages" (int_ s.Kard_core.Detector.vkey_retag_pages);
             field "stalls" (int_ s.Kard_core.Detector.vkey_stalls) ]);
      field "sampling"
        (obj
           [ field "rate" (float_ s.Kard_core.Detector.sampling_rate);
             field "sampled_sections" (int_ s.Kard_core.Detector.sampled_sections);
             field "skipped_sections" (int_ s.Kard_core.Detector.skipped_sections);
             field "sampled_objects" (int_ s.Kard_core.Detector.sampled_objects);
             field "skipped_objects" (int_ s.Kard_core.Detector.skipped_objects);
             field "skipped_accesses" (int_ s.Kard_core.Detector.skipped_accesses);
             field "rotations" (int_ s.Kard_core.Detector.sampling_rotations);
             field "rearm_pages" (int_ s.Kard_core.Detector.sampling_rearm_pages);
             field "first_race_cs" (int_ s.Kard_core.Detector.first_race_cs) ]) ]

let of_summary (s : Kard_obs.Metrics.summary) =
  obj
    [ field "count" (int_ s.Kard_obs.Metrics.count);
      field "total" (int_ s.Kard_obs.Metrics.total);
      field "min" (int_ s.Kard_obs.Metrics.min);
      field "max" (int_ s.Kard_obs.Metrics.max);
      field "mean" (float_ s.Kard_obs.Metrics.mean);
      field "p50" (float_ s.Kard_obs.Metrics.p50);
      field "p95" (float_ s.Kard_obs.Metrics.p95);
      field "p99" (float_ s.Kard_obs.Metrics.p99);
      field "p999" (float_ s.Kard_obs.Metrics.p999) ]

let of_metrics (m : Kard_obs.Metrics.t) =
  obj
    [ field "counters"
        (obj (List.map (fun (name, v) -> field name (int_ v)) (Kard_obs.Metrics.counters m)));
      field "histograms"
        (obj
           (List.map
              (fun (name, s) -> field name (of_summary s))
              (Kard_obs.Metrics.histograms m))) ]

let of_window_row (r : Kard_obs.Window.row) =
  obj
    [ field "start" (int_ r.Kard_obs.Window.w_start);
      field "count" (int_ r.Kard_obs.Window.count);
      field "mean" (float_ r.Kard_obs.Window.mean);
      field "p50" (int_ r.Kard_obs.Window.p50);
      field "p95" (int_ r.Kard_obs.Window.p95);
      field "p99" (int_ r.Kard_obs.Window.p99);
      field "p999" (int_ r.Kard_obs.Window.p999);
      field "max" (int_ r.Kard_obs.Window.max) ]

let of_window_view (w : Kard_obs.Snapshot.window_view) =
  obj
    [ field "width" (int_ w.Kard_obs.Snapshot.w_width);
      field "overall" (of_window_row w.Kard_obs.Snapshot.w_overall);
      field "windows" (arr (List.map of_window_row w.Kard_obs.Snapshot.w_rows)) ]

let of_snapshot (s : Kard_obs.Snapshot.t) =
  obj
    [ field "counters"
        (obj (List.map (fun (name, v) -> field name (int_ v)) s.Kard_obs.Snapshot.counters));
      field "histograms"
        (obj
           (List.map
              (fun (name, summary) -> field name (of_summary summary))
              s.Kard_obs.Snapshot.histograms));
      field "windowed"
        (obj
           (List.map
              (fun (w : Kard_obs.Snapshot.window_view) ->
                field w.Kard_obs.Snapshot.w_name (of_window_view w))
              s.Kard_obs.Snapshot.windows)) ]

let of_trace (tr : Kard_obs.Trace.t) =
  obj
    [ field "events" (int_ (Kard_obs.Trace.event_count tr));
      field "dropped" (int_ (Kard_obs.Trace.dropped tr));
      field "categories"
        (obj
           (List.map
              (fun (cat, n) -> field cat (int_ n))
              (Kard_obs.Trace.category_counts tr))) ]

let of_result (r : Runner.result) =
  let report = r.Runner.report in
  obj
    ([ field "workload" (str r.Runner.spec_name);
       field "detector" (str r.Runner.detector_name);
       field "threads" (int_ r.Runner.threads);
       field "scale" (float_ r.Runner.scale);
       field "seed" (int_ r.Runner.seed);
       field "cycles" (int_ report.Machine.cycles);
       field "io_cycles" (int_ report.Machine.io_cycles);
       field "cs_entries" (int_ report.Machine.cs_entries);
       field "unique_sections" (int_ report.Machine.unique_sections);
       field "faults" (int_ report.Machine.faults);
       field "rss_bytes" (int_ report.Machine.rss_bytes);
       field "dtlb_miss_rate" (float_ report.Machine.dtlb_miss_rate);
       field "races" (arr (List.map of_race r.Runner.kard_races));
       field "tsan_races" (int_ (List.length r.Runner.tsan_races));
       field "lockset_warnings" (int_ (List.length r.Runner.lockset_warnings)) ]
    @ (match r.Runner.kard_stats with
      | Some stats -> [ field "kard" (of_kard_stats stats) ]
      | None -> [])
    @
    match r.Runner.trace with
    | Some tr ->
      [ field "trace" (of_trace tr); field "metrics" (of_metrics (Kard_obs.Trace.metrics tr)) ]
    | None -> [])

let of_tp_row (row : Experiments.tp_row) =
  obj
    [ field "threads" (int_ row.Experiments.tp_threads);
      field "detector" (str row.Experiments.tp_detector);
      field "steps" (int_ row.Experiments.tp_steps);
      field "sim_cycles" (int_ row.Experiments.tp_sim_cycles);
      field "host_seconds" (float_ row.Experiments.tp_host_seconds);
      field "ops_per_sec" (float_ row.Experiments.tp_ops_per_sec);
      field "minor_words" (float_ row.Experiments.tp_minor_words);
      field "promoted_words" (float_ row.Experiments.tp_promoted_words);
      field "minor_words_per_step" (float_ row.Experiments.tp_minor_words_per_step) ]

let of_throughput ?pre ~build ~workload ~scale ~seed rows =
  obj
    ([ field "benchmark" (str "throughput");
       field "workload" (str workload);
       field "scale" (float_ scale);
       field "seed" (int_ seed);
       field "build" (str build);
       field "rows" (arr (List.map of_tp_row rows)) ]
    @
    match pre with
    | None -> []
    | Some (commit, pre_build, pre_rows) ->
      (* The pre-PR reference measurement: same harness, same host,
         taken at [commit] immediately before the optimisation being
         tracked, so speedup and allocation-rate claims are
         self-contained in the file.  Each section carries its own
         build label because the two measurements need not share a
         dune profile (wall-clock comparisons across sections must
         account for that; steps/sim_cycles are build-independent). *)
      [ field "pre_pr"
          (obj
             [ field "commit" (str commit);
               field "build" (str pre_build);
               field "rows" (arr (List.map of_tp_row pre_rows)) ])
      ])

let of_parallel_bench ~scale (b : Experiments.parallel_bench) =
  obj
    [ field "benchmark" (str "parallel");
      field "scale" (float_ scale);
      field "jobs" (int_ b.Experiments.pb_jobs);
      field "host_cores" (int_ b.Experiments.pb_host_cores);
      field "job_count" (int_ b.Experiments.pb_job_count);
      field "serial_seconds" (float_ b.Experiments.pb_serial_seconds);
      field "parallel_seconds" (float_ b.Experiments.pb_parallel_seconds);
      field "speedup" (float_ b.Experiments.pb_speedup);
      field "sim_cycles" (int_ b.Experiments.pb_sim_cycles);
      field "identical" (bool_ b.Experiments.pb_identical);
      field "minor_words" (float_ b.Experiments.pb_minor_words);
      field "promoted_words" (float_ b.Experiments.pb_promoted_words);
      field "minor_words_per_step" (float_ b.Experiments.pb_minor_words_per_step) ]

let of_shard_row (row : Experiments.shard_row) =
  obj
    [ field "shards" (int_ row.Experiments.sh_shards);
      field "workers" (int_ row.Experiments.sh_workers);
      field "seconds" (float_ row.Experiments.sh_seconds);
      field "speedup_vs_1" (float_ row.Experiments.sh_speedup);
      field "identical" (bool_ row.Experiments.sh_identical) ]

let of_shard_bench ~build (b : Experiments.shard_bench) =
  let best =
    List.fold_left
      (fun acc r -> if r.Experiments.sh_speedup > acc then r.Experiments.sh_speedup else acc)
      0. b.Experiments.sh_rows
  in
  let all_identical = List.for_all (fun r -> r.Experiments.sh_identical) b.Experiments.sh_rows in
  obj
    [ field "benchmark" (str "shard");
      field "build" (str build);
      field "workload" (str b.Experiments.sh_spec);
      field "threads" (int_ b.Experiments.sh_threads);
      field "scale" (float_ b.Experiments.sh_scale);
      field "seed" (int_ b.Experiments.sh_seed);
      field "host_cores" (int_ b.Experiments.sh_host_cores);
      field "steps" (int_ b.Experiments.sh_steps);
      field "sim_cycles" (int_ b.Experiments.sh_sim_cycles);
      field "best_speedup" (float_ best);
      field "identical" (bool_ all_identical);
      field "rows" (arr (List.map of_shard_row b.Experiments.sh_rows)) ]

let of_serve_row (row : Experiments.serve_row) =
  let l = row.Experiments.sv_latency in
  obj
    [ field "detector" (str row.Experiments.sv_detector);
      field "offered_rate_per_mcycle" (float_ row.Experiments.sv_rate);
      field "requests" (int_ row.Experiments.sv_requests);
      field "cycles" (int_ row.Experiments.sv_cycles);
      field "achieved_rate_per_mcycle" (float_ row.Experiments.sv_achieved);
      field "latency_cycles"
        (obj
           [ field "p50" (int_ l.Kard_obs.Window.p50);
             field "p95" (int_ l.Kard_obs.Window.p95);
             field "p99" (int_ l.Kard_obs.Window.p99);
             field "p999" (int_ l.Kard_obs.Window.p999);
             field "max" (int_ l.Kard_obs.Window.max);
             field "mean" (float_ l.Kard_obs.Window.mean) ]);
      field "metrics" (of_snapshot row.Experiments.sv_snapshot) ]

let of_serve_sweep ~threads ~scale ~seed (s : Experiments.serve_sweep) =
  obj
    [ field "benchmark" (str "serve");
      field "server" (str s.Experiments.ss_server);
      field "arrivals" (str s.Experiments.ss_model);
      field "slo_p99_cycles" (int_ s.Experiments.ss_slo);
      field "threads" (int_ threads);
      field "scale" (float_ scale);
      field "seed" (int_ seed);
      field "rows" (arr (List.map of_serve_row s.Experiments.ss_rows));
      field "goodput_under_slo_per_mcycle"
        (obj
           (List.map
              (fun (name, rate) -> field name (float_ rate))
              s.Experiments.ss_goodput)) ]

let of_keys_row (row : Experiments.keys_row) =
  obj
    [ field "point" (str row.Experiments.kp_point);
      field "mode" (str row.Experiments.kp_mode);
      field "objects" (int_ row.Experiments.kp_objects);
      field "sections" (int_ row.Experiments.kp_sections);
      field "data_keys" (int_ row.Experiments.kp_data_keys);
      field "vkeys" (int_ row.Experiments.kp_vkeys);
      field "planted" (int_ row.Experiments.kp_planted);
      field "detected" (int_ row.Experiments.kp_detected);
      field "detected_objects" (int_ row.Experiments.kp_detected_objects);
      field "detection_rate"
        (float_
           (if row.Experiments.kp_planted > 0 then
              float_of_int row.Experiments.kp_detected
              /. float_of_int row.Experiments.kp_planted
            else 0.));
      field "sim_cycles" (int_ row.Experiments.kp_cycles);
      field "overhead_pct" (float_ row.Experiments.kp_overhead_pct);
      field "sharing" (int_ row.Experiments.kp_sharing);
      field "recycling" (int_ row.Experiments.kp_recycling);
      field "vkey_evictions" (int_ row.Experiments.kp_vkey_evictions);
      field "vkey_loads" (int_ row.Experiments.kp_vkey_loads);
      field "vkey_retag_pages" (int_ row.Experiments.kp_vkey_retag_pages);
      field "vkey_stalls" (int_ row.Experiments.kp_vkey_stalls) ]

let of_keys_bench ~build (b : Experiments.keys_bench) =
  obj
    [ field "benchmark" (str "keys");
      field "build" (str build);
      field "threads" (int_ b.Experiments.kp_threads);
      field "scale" (float_ b.Experiments.kp_scale);
      field "seed" (int_ b.Experiments.kp_seed);
      field "rows" (arr (List.map of_keys_row b.Experiments.kp_rows)) ]

let of_sampling_row (row : Experiments.sampling_row) =
  obj
    [ field "subject" (str row.Experiments.sp_subject);
      field "rate" (float_ row.Experiments.sp_rate);
      field "runs" (int_ row.Experiments.sp_runs);
      field "detected_runs" (int_ row.Experiments.sp_detected);
      field "detection_pct" (float_ row.Experiments.sp_detection_pct);
      field "subset_ok" (bool_ row.Experiments.sp_subset_ok);
      field "latency_cs_entries"
        (obj
           [ field "min" (int_ row.Experiments.sp_latency_min);
             field "p50" (int_ row.Experiments.sp_latency_p50);
             field "max" (int_ row.Experiments.sp_latency_max) ]);
      field "mean_cs_entries" (float_ row.Experiments.sp_mean_cs_entries);
      field "sampled_sections" (int_ row.Experiments.sp_sampled_sections);
      field "skipped_sections" (int_ row.Experiments.sp_skipped_sections);
      field "skipped_accesses" (int_ row.Experiments.sp_skipped_accesses);
      field "mean_sim_cycles" (float_ row.Experiments.sp_mean_cycles) ]

let of_sampling_bench ~build ~threads ~scale ~seed (b : Experiments.sampling_bench) =
  obj
    [ field "benchmark" (str "sampling");
      field "build" (str build);
      field "epoch_cycles" (int_ b.Experiments.sp_epoch);
      field "seeds" (arr (List.map int_ b.Experiments.sp_seeds));
      field "rates" (arr (List.map float_ b.Experiments.sp_rates));
      field "rows" (arr (List.map of_sampling_row b.Experiments.sp_rows));
      field "serve" (of_serve_sweep ~threads ~scale ~seed b.Experiments.sp_serve) ]

let of_record_row (row : Experiments.record_row) =
  obj
    [ field "subject" (str row.Experiments.rc_subject);
      field "detector" (str row.Experiments.rc_detector);
      field "steps" (int_ row.Experiments.rc_steps);
      field "sim_cycles" (int_ row.Experiments.rc_sim_cycles);
      field "sim_overhead_cycles" (int_ row.Experiments.rc_sim_overhead_cycles);
      field "plain_host_seconds" (float_ row.Experiments.rc_plain_seconds);
      field "recorded_host_seconds" (float_ row.Experiments.rc_recorded_seconds);
      field "host_overhead_pct" (float_ row.Experiments.rc_host_overhead_pct);
      field "log_bytes" (int_ row.Experiments.rc_log_bytes);
      field "bytes_per_step" (float_ row.Experiments.rc_bytes_per_step);
      field "picks" (int_ row.Experiments.rc_picks);
      field "grants" (int_ row.Experiments.rc_grants);
      field "replay_identical" (bool_ row.Experiments.rc_replay_identical) ]

let of_record_bench ~build (b : Experiments.record_bench) =
  obj
    [ field "benchmark" (str "record");
      field "build" (str build);
      field "log_format_version" (int_ Kard_replay.Log.version);
      field "scale" (float_ b.Experiments.rc_scale);
      field "seed" (int_ b.Experiments.rc_seed);
      field "shards" (int_ b.Experiments.rc_shards);
      field "rows" (arr (List.map of_record_row b.Experiments.rc_rows)) ]

let pretty json =
  let buf = Buffer.create (String.length json * 2) in
  let indent = ref 0 in
  let in_string = ref false in
  let escaped = ref false in
  let newline () =
    Buffer.add_char buf '\n';
    for _ = 1 to !indent * 2 do
      Buffer.add_char buf ' '
    done
  in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char buf c;
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_string := false
      end
      else
        match c with
        | '"' ->
          in_string := true;
          Buffer.add_char buf c
        | '{' | '[' ->
          Buffer.add_char buf c;
          incr indent;
          newline ()
        | '}' | ']' ->
          decr indent;
          newline ();
          Buffer.add_char buf c
        | ',' ->
          Buffer.add_char buf c;
          newline ()
        | ':' -> Buffer.add_string buf ": "
        | c -> Buffer.add_char buf c)
    json;
  Buffer.contents buf
