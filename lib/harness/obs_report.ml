module Metrics = Kard_obs.Metrics
module Trace = Kard_obs.Trace

let fmt_f v = Printf.sprintf "%.1f" v

let counters_table (m : Metrics.t) =
  match Metrics.counters m with
  | [] -> "(no counters)"
  | counters ->
    Text_table.render ~header:[ "counter"; "value" ]
      (List.map (fun (name, v) -> [ name; Text_table.fmt_int v ]) counters)

let histograms_table (m : Metrics.t) =
  match Metrics.histograms m with
  | [] -> "(no histograms)"
  | histograms ->
    Text_table.render
      ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "p99.9"; "min"; "max" ]
      (List.map
         (fun (name, (s : Metrics.summary)) ->
           [ name;
             Text_table.fmt_int s.Metrics.count;
             fmt_f s.Metrics.mean;
             fmt_f s.Metrics.p50;
             fmt_f s.Metrics.p95;
             fmt_f s.Metrics.p99;
             fmt_f s.Metrics.p999;
             Text_table.fmt_int s.Metrics.min;
             Text_table.fmt_int s.Metrics.max ])
         histograms)

let window_row name (r : Kard_obs.Window.row) =
  [ name;
    Text_table.fmt_int r.Kard_obs.Window.count;
    Text_table.fmt_int r.Kard_obs.Window.p50;
    Text_table.fmt_int r.Kard_obs.Window.p95;
    Text_table.fmt_int r.Kard_obs.Window.p99;
    Text_table.fmt_int r.Kard_obs.Window.p999;
    Text_table.fmt_int r.Kard_obs.Window.max ]

let windows_table (m : Metrics.t) =
  match Metrics.windows m with
  | [] -> None
  | windows ->
    Some
      (Text_table.render
         ~header:[ "window"; "count"; "p50"; "p95"; "p99"; "p99.9"; "max" ]
         (List.concat_map
            (fun (name, w) ->
              window_row (Printf.sprintf "%s (overall)" name) (Kard_obs.Window.overall w)
              :: List.map
                   (fun (r : Kard_obs.Window.row) ->
                     window_row
                       (Printf.sprintf "%s @%d" name r.Kard_obs.Window.w_start)
                       r)
                   (Kard_obs.Window.rows w))
            windows))

let print_metrics m =
  print_endline (counters_table m);
  print_newline ();
  print_endline (histograms_table m);
  match windows_table m with
  | None -> ()
  | Some t ->
    print_newline ();
    print_endline t

let trace_summary_table (tr : Trace.t) =
  let rows =
    List.map
      (fun (cat, n) -> [ cat; Text_table.fmt_int n ])
      (Trace.category_counts tr)
  in
  let rows =
    rows
    @ [ [ "(retained)"; Text_table.fmt_int (Trace.event_count tr) ];
        [ "(dropped)"; Text_table.fmt_int (Trace.dropped tr) ] ]
  in
  Text_table.render ~header:[ "category"; "events" ] rows

let print_trace_summary tr = print_endline (trace_summary_table tr)
