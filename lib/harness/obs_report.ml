module Metrics = Kard_obs.Metrics
module Trace = Kard_obs.Trace

let fmt_f v = Printf.sprintf "%.1f" v

let counters_table (m : Metrics.t) =
  match Metrics.counters m with
  | [] -> "(no counters)"
  | counters ->
    Text_table.render ~header:[ "counter"; "value" ]
      (List.map (fun (name, v) -> [ name; Text_table.fmt_int v ]) counters)

let histograms_table (m : Metrics.t) =
  match Metrics.histograms m with
  | [] -> "(no histograms)"
  | histograms ->
    Text_table.render
      ~header:[ "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "min"; "max" ]
      (List.map
         (fun (name, (s : Metrics.summary)) ->
           [ name;
             Text_table.fmt_int s.Metrics.count;
             fmt_f s.Metrics.mean;
             fmt_f s.Metrics.p50;
             fmt_f s.Metrics.p95;
             fmt_f s.Metrics.p99;
             Text_table.fmt_int s.Metrics.min;
             Text_table.fmt_int s.Metrics.max ])
         histograms)

let print_metrics m =
  print_endline (counters_table m);
  print_newline ();
  print_endline (histograms_table m)

let trace_summary_table (tr : Trace.t) =
  let rows =
    List.map
      (fun (cat, n) -> [ cat; Text_table.fmt_int n ])
      (Trace.category_counts tr)
  in
  let rows =
    rows
    @ [ [ "(retained)"; Text_table.fmt_int (Trace.event_count tr) ];
        [ "(dropped)"; Text_table.fmt_int (Trace.dropped tr) ] ]
  in
  Text_table.render ~header:[ "category"; "events" ] rows

let print_trace_summary tr = print_endline (trace_summary_table tr)
