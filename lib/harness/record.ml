module Log = Kard_replay.Log
module Recorder = Kard_replay.Recorder
module Replayer = Kard_replay.Replayer
module Registry = Kard_workloads.Registry
module Race_suite = Kard_workloads.Race_suite
module Spec = Kard_workloads.Spec

type subject =
  | Spec of Spec.t
  | Scenario of Race_suite.t

let subject_target = function
  | Spec spec -> "spec:" ^ spec.Spec.name
  | Scenario sc -> "scenario:" ^ sc.Race_suite.name

let subject_name = function
  | Spec spec -> spec.Spec.name
  | Scenario sc -> sc.Race_suite.name

(* Bare names resolve workload-first (the larger namespace); the
   prefixed forms disambiguate, and are what headers always carry. *)
let find_subject name =
  let spec n =
    match Registry.find n with
    | spec -> Ok (Spec spec)
    | exception Not_found -> Error (Printf.sprintf "unknown workload %S" n)
  in
  let scenario n =
    match Race_suite.find n with
    | sc -> Ok (Scenario sc)
    | exception Not_found -> Error (Printf.sprintf "unknown scenario %S" n)
  in
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "spec" ->
    spec (String.sub name (i + 1) (String.length name - i - 1))
  | Some i when String.sub name 0 i = "scenario" ->
    scenario (String.sub name (i + 1) (String.length name - i - 1))
  | _ -> (
    match spec name with
    | Ok _ as ok -> ok
    | Error _ -> (
      match scenario name with
      | Ok _ as ok -> ok
      | Error _ ->
        Error
          (Printf.sprintf "unknown workload or scenario %S; try `kard list` (prefixes spec: \
                           and scenario: disambiguate)"
             name)))

(* {1 Header <-> detector} *)

let header ~detector ~target ~threads ~scale ~seed ~shards =
  { Log.detector = Runner.detector_name detector;
    target;
    threads;
    scale;
    seed;
    shards;
    config = (match detector with Runner.Kard c -> Some c | _ -> None) }

let detector_of_header (h : Log.header) =
  match (h.Log.detector, h.Log.config) with
  | "kard", Some config -> Ok (Runner.Kard config)
  | "kard", None -> Error "log header: kard recording without a config fingerprint"
  | "baseline", _ -> Ok Runner.Baseline
  | "alloc", _ -> Ok Runner.Alloc
  | "tsan", _ -> Ok Runner.Tsan
  | "lockset", _ -> Ok Runner.Lockset
  | (d, _) -> Error (Printf.sprintf "log header: unknown detector %S" d)

let same_detector d (h : Log.header) =
  String.equal (Runner.detector_name d) h.Log.detector
  && (match d with
     | Runner.Kard c -> h.Log.config = Some c
     | Runner.Baseline | Runner.Alloc | Runner.Tsan | Runner.Lockset -> true)

(* {1 Recording} *)

let record_build ?trace ?shards ~threads ~scale ~seed ~detector ~target build name =
  let shards = match shards with Some n -> n | None -> Defaults.shards () in
  let recorder = Recorder.create () in
  let result =
    Runner.run_build ~wrap:(Recorder.wrap recorder) ?trace ~shards ~threads ~scale ~seed
      ~detector build name
  in
  let header = header ~detector ~target ~threads ~scale ~seed ~shards in
  (result, Recorder.log recorder ~header)

let scenario_detector ?override_config ~detector (sc : Race_suite.t) =
  match (detector, override_config) with
  | Runner.Kard _, Some c -> Runner.Kard c
  | Runner.Kard _, None -> Runner.Kard sc.Race_suite.config
  | ((Runner.Baseline | Runner.Alloc | Runner.Tsan | Runner.Lockset) as d), _ -> d

let record ?trace ?threads ?scale ?seed ?shards ?override_config ~detector subject =
  let seed = Option.value ~default:Defaults.seed seed in
  let target = subject_target subject in
  match subject with
  | Spec spec ->
    let threads = Option.value ~default:spec.Spec.default_threads threads in
    let scale = Option.value ~default:Defaults.scale scale in
    record_build ?trace ?shards ~threads ~scale ~seed ~detector ~target
      (fun machine -> spec.Spec.build ~threads ~scale ~seed machine)
      spec.Spec.name
  | Scenario sc ->
    (* Scenarios always run at their own thread count and full scale;
       a [Kard _] detector takes the scenario's configuration (the
       CLI's --vkeys/--sampling knobs arrive via [override_config]). *)
    let detector = scenario_detector ?override_config ~detector sc in
    record_build ?trace ?shards ~threads:sc.Race_suite.threads ~scale:1.0 ~seed ~detector
      ~target sc.Race_suite.build sc.Race_suite.name

(* {1 Replaying} *)

type fidelity = (unit, string) result

let replay_build ?trace ?shards ?detector (log : Log.t) build name =
  let h = log.Log.header in
  match (match detector with Some d -> Ok d | None -> detector_of_header h) with
  | Error _ as e -> e
  | Ok detector ->
    let mode = if same_detector detector h then Replayer.Strict else Replayer.Schedule_only in
    let replayer = Replayer.create ~mode log in
    let shards = Option.value ~default:h.Log.shards shards in
    let result =
      Runner.run_build
        ~schedule:(Replayer.schedule replayer)
        ~wrap:(Replayer.wrap replayer) ?trace ~shards ~threads:h.Log.threads ~scale:h.Log.scale
        ~seed:h.Log.seed ~detector build name
    in
    Ok (result, Replayer.check replayer)

(* Fuzz targets need the campaign's program generator, which lives
   above this library — callers holding one use {!replay_build}. *)
let replay ?trace ?shards ?detector (log : Log.t) =
  let h = log.Log.header in
  match find_subject h.Log.target with
  | Error _ ->
    Error
      (Printf.sprintf "cannot resolve recorded target %S here (fuzz targets replay via `kard \
                       replay`)"
         h.Log.target)
  | Ok (Spec spec) ->
    let threads = h.Log.threads and scale = h.Log.scale and seed = h.Log.seed in
    replay_build ?trace ?shards ?detector log
      (fun machine -> spec.Spec.build ~threads ~scale ~seed machine)
      spec.Spec.name
  | Ok (Scenario sc) -> replay_build ?trace ?shards ?detector log sc.Race_suite.build sc.Race_suite.name
