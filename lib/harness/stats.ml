let geomean_ratio ratios =
  if ratios = [] then invalid_arg "Stats.geomean_ratio: empty";
  List.iter
    (fun r -> if r <= 0. then invalid_arg "Stats.geomean_ratio: non-positive ratio")
    ratios;
  let sum = List.fold_left (fun acc r -> acc +. log r) 0. ratios in
  exp (sum /. float_of_int (List.length ratios))

let geomean_overhead_pct pcts =
  let ratios = List.map (fun p -> 1. +. (p /. 100.)) pcts in
  (geomean_ratio ratios -. 1.) *. 100.

let mean values =
  if values = [] then invalid_arg "Stats.mean: empty";
  List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let stddev values =
  if values = [] then invalid_arg "Stats.stddev: empty";
  let m = mean values in
  let sq = List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0. values in
  sqrt (sq /. float_of_int (List.length values))

let percentile values q =
  if values = [] then invalid_arg "Stats.percentile: empty";
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q outside [0, 100]";
  let sorted = List.sort compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    (* Linear interpolation between closest ranks (the common "type 7"
       estimator numpy defaults to). *)
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let pct value baseline = if baseline = 0. then 0. else (value -. baseline) /. baseline *. 100.

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let summarize values =
  if values = [] then invalid_arg "Stats.summarize: empty";
  let sorted = List.sort compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  (* [percentile] re-sorts; index the sorted array once instead. *)
  let at q =
    if n = 1 then arr.(0)
    else begin
      let rank = q /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end
  in
  {
    count = n;
    min = arr.(0);
    max = arr.(n - 1);
    mean = mean values;
    p50 = at 50.;
    p95 = at 95.;
    p99 = at 99.;
    p999 = at 99.9;
  }
