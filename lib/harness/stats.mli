(** Small statistics helpers for the experiment reports. *)

val geomean_ratio : float list -> float
(** Geometric mean of ratios; inputs must be positive.
    @raise Invalid_argument otherwise or on an empty list. *)

val geomean_overhead_pct : float list -> float
(** Geometric mean over overhead percentages, paper-style: each
    percentage is converted to a ratio (1 + p/100), averaged
    geometrically, and converted back. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Population standard deviation.
    @raise Invalid_argument on an empty list. *)

val percentile : float list -> float -> float
(** [percentile values q] for [q] in \[0, 100\], linearly interpolating
    between closest ranks (numpy's default estimator).
    @raise Invalid_argument on an empty list or [q] out of range. *)

val pct : float -> float -> float
(** [pct value baseline] is the percent overhead of [value] over
    [baseline]; 0 when the baseline is 0. *)

type summary = {
  count : int;   (** Sample count. *)
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** The tail the serve SLO machinery watches. *)
}

val summarize : float list -> summary
(** One-pass percentile summary of a sample: count, extrema, mean and
    the p50/p95/p99/p99.9 ranks, all with the same interpolating
    estimator as {!percentile}.
    @raise Invalid_argument on an empty list. *)
