type outcome = {
  seed : int;
  kard_ilu : int;
  records : int;
}

type summary = {
  runs : int;
  detecting_runs : int;
  detection_rate : float;
  min_races : int;
  max_races : int;
  outcomes : outcome list;
}

let default_seeds = Defaults.explorer_seeds

let summarize outcomes =
  let runs = List.length outcomes in
  let detecting = List.filter (fun o -> o.kard_ilu > 0) outcomes in
  let races = List.map (fun o -> o.kard_ilu) outcomes in
  { runs;
    detecting_runs = List.length detecting;
    detection_rate =
      (if runs = 0 then 0. else float_of_int (List.length detecting) /. float_of_int runs);
    min_races = List.fold_left min max_int races;
    max_races = List.fold_left max 0 races;
    outcomes }

(* Merging in submission order keeps [outcomes] in seed order, so a
   summary is independent of how many domains executed the sweep. *)
let sweep_plan jobs_of_seeds seeds =
  Pool.plan (jobs_of_seeds seeds) ~merge:(fun results ->
      summarize
        (List.map2
           (fun seed r ->
             { seed;
               kard_ilu = List.length r.Runner.kard_ilu_races;
               records = List.length r.Runner.kard_races })
           seeds results))

let explore_scenario_plan ?(seeds = default_seeds) ?config
    (scenario : Kard_workloads.Race_suite.t) =
  let config = Option.value ~default:scenario.Kard_workloads.Race_suite.config config in
  sweep_plan
    (List.map (fun seed ->
         Job.scenario ~seed ~override_config:config (Runner.Kard config) scenario))
    seeds

let explore_scenario ?jobs ?seeds ?config scenario =
  Pool.execute ?jobs (explore_scenario_plan ?seeds ?config scenario)

let explore_spec_plan ?(seeds = default_seeds) ?(scale = Defaults.explorer_scale) ?threads
    (spec : Spec_alias.t) =
  sweep_plan
    (List.map (fun seed ->
         Job.spec ?threads ~scale ~seed (Runner.Kard (Defaults.kard_config ())) spec))
    seeds

let explore_spec ?jobs ?seeds ?scale ?threads spec =
  Pool.execute ?jobs (explore_spec_plan ?seeds ?scale ?threads spec)

let print_summary ~name s =
  Printf.printf "%-28s detection rate %3.0f%% (%d/%d runs), races per run %d..%d\n" name
    (s.detection_rate *. 100.) s.detecting_runs s.runs s.min_races s.max_races
