let scale = 0.01
let seed = 42
let table_threads = 4
let explorer_scale = 0.005
let explorer_seeds = List.init 20 (fun i -> i + 1)
let throughput_scale = 0.05
let serve_scale = 0.05
let serve_slo = 200_000

let throughput_out = "BENCH_pr4.json"
let parallel_out = "BENCH_pr3.json"
let serve_out = "BENCH_pr6.json"

let jobs_env = "KARD_JOBS"

let jobs () =
  match Sys.getenv_opt jobs_env with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
