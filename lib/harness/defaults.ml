let scale = 0.01
let seed = 42
let table_threads = 4
let explorer_scale = 0.005
let explorer_seeds = List.init 20 (fun i -> i + 1)
let throughput_scale = 0.05
let serve_scale = 0.05
let serve_slo = 200_000

let throughput_out = "BENCH_pr4.json"
let parallel_out = "BENCH_pr3.json"
let serve_out = "BENCH_pr6.json"
let shard_out = "BENCH_pr7.json"
let keys_out = "BENCH_pr8.json"
let sampling_out = "BENCH_pr9.json"
let record_out = "BENCH_pr10.json"

let jobs_env = "KARD_JOBS"

let jobs () =
  match Sys.getenv_opt jobs_env with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let shards_env = "KARD_SHARDS"

(* Unlike [jobs], the fallback is 1, not the core count: sharding is
   byte-identical at any count (so an env override is always safe), but
   a single small run gains nothing from the burst engine — opting in
   is a per-run decision ([--shards]) or a CI sweep ($KARD_SHARDS). *)
let shards () =
  match Sys.getenv_opt shards_env with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)
  | None -> 1

let vkeys_env = "KARD_VKEYS"

(* 0 = identity mode (the physical 13 keys, byte-identical to the
   pre-vkey detector), so the default changes nothing; a positive
   override turns the whole default-config surface virtual at that
   pool size. *)
let vkeys () =
  match Sys.getenv_opt vkeys_env with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | Some _ | None -> 0)
  | None -> 0

let sampling_env = "KARD_SAMPLING"

(* 1.0 = full Kard (sampling disabled, byte-identical to the unsampled
   detector), so the default changes nothing; an override in (0, 1]
   turns the whole default-config surface into a sampled detector at
   that rate.  Malformed or out-of-range values are ignored rather
   than clamped — a typo must not silently weaken detection. *)
let sampling () =
  match Sys.getenv_opt sampling_env with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
    | Some r when r > 0.0 && r <= 1.0 -> r
    | Some _ | None -> 1.0)
  | None -> 1.0

let kard_config () =
  { Kard_core.Config.default with
    Kard_core.Config.vkeys = vkeys ();
    sampling = sampling () }
