module Machine = Kard_sched.Machine
module Spec = Kard_workloads.Spec
module Race_suite = Kard_workloads.Race_suite
module Registry = Kard_workloads.Registry

(* Experiments are plan-builders: each returns a {!Pool.plan} whose
   jobs are pure data and whose merge reassembles rows in submission
   order, so [Pool.execute ~jobs:1] and [~jobs:N] produce identical
   tables (see DESIGN.md §7).  The [?jobs] executors below are the
   stable entry points. *)

(* {1 Table 3} *)

type t3_row = {
  spec : Spec_alias.t;
  base : Runner.result;
  alloc : Runner.result;
  kard : Runner.result;
  tsan : Runner.result;
}

let t3_detectors =
  [ Runner.Baseline; Runner.Alloc; Runner.Kard (Defaults.kard_config ()); Runner.Tsan ]

let table3_plan ?(threads = Defaults.table_threads) ?(scale = Defaults.scale)
    ?(specs = Registry.all) () =
  let jobs =
    List.concat_map
      (fun spec -> List.map (fun d -> Job.spec ~threads ~scale d spec) t3_detectors)
      specs
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun spec group ->
          match group with
          | [ base; alloc; kard; tsan ] -> { spec; base; alloc; kard; tsan }
          | _ -> assert false)
        specs
        (Pool.chunks (List.length t3_detectors) results))

let table3 ?jobs ?threads ?scale ?specs () =
  Pool.execute ?jobs (table3_plan ?threads ?scale ?specs ())

let t3_kard_pct row = Runner.overhead_pct ~baseline:row.base row.kard
let t3_alloc_pct row = Runner.overhead_pct ~baseline:row.base row.alloc
let t3_tsan_pct row = Runner.overhead_pct ~baseline:row.base row.tsan
let t3_rss_pct row = Runner.rss_overhead_pct ~baseline:row.base row.kard

let print_geomean label rows pct_of paper_of =
  if rows <> [] then
    Printf.printf "%s geomean: Kard %s (paper %s)\n" label
      (Text_table.fmt_pct (Stats.geomean_overhead_pct (List.map pct_of rows)))
      (Text_table.fmt_pct (Stats.geomean_overhead_pct (List.map paper_of rows)))

let print_table3 rows =
  let header =
    [ "benchmark"; "heap"; "glob"; "RO"; "RW"; "CS"; "act"; "entries"; "base(Mc)"; "alloc%";
      "(paper)"; "kard%"; "(paper)"; "tsan"; "(paper)"; "rss%"; "(paper)"; "dTLBk"; "faults" ]
  in
  let cells row =
    let p = row.spec.Spec.paper in
    let r = row.base.Runner.report in
    let allocs = r.Machine.alloc_stats.Kard_alloc.Alloc_iface.allocations in
    [ row.spec.Spec.name;
      Text_table.fmt_int allocs;
      Text_table.fmt_int r.Machine.alloc_stats.Kard_alloc.Alloc_iface.global_allocations;
      Text_table.fmt_int row.kard.Runner.kard_unique_ro;
      Text_table.fmt_int row.kard.Runner.kard_unique_rw;
      Text_table.fmt_int row.base.Runner.report.Machine.unique_sections;
      Text_table.fmt_int row.kard.Runner.report.Machine.max_concurrent_sections;
      Text_table.fmt_int r.Machine.cs_entries;
      Text_table.fmt_int (r.Machine.cycles / 1_000_000);
      Text_table.fmt_pct (t3_alloc_pct row);
      Text_table.fmt_pct p.Spec.p_alloc_pct;
      Text_table.fmt_pct (t3_kard_pct row);
      Text_table.fmt_pct p.Spec.p_kard_pct;
      Text_table.fmt_times (1. +. (t3_tsan_pct row /. 100.));
      Text_table.fmt_times (1. +. (p.Spec.p_tsan_pct /. 100.));
      Text_table.fmt_pct (t3_rss_pct row);
      Text_table.fmt_pct p.Spec.p_rss_kard_pct;
      Text_table.fmt_rate (Runner.dtlb_rate row.kard);
      Text_table.fmt_int row.kard.Runner.report.Machine.faults ]
  in
  print_string (Text_table.render ~header (List.map cells rows));
  let benches, apps =
    List.partition (fun row -> row.spec.Spec.category <> Spec.Real_world) rows
  in
  print_geomean "PARSEC+SPLASH-2x" benches t3_kard_pct (fun r -> r.spec.Spec.paper.Spec.p_kard_pct);
  print_geomean "real-world" apps t3_kard_pct (fun r -> r.spec.Spec.paper.Spec.p_kard_pct)

(* {1 Race scenarios (Tables 1 and 4, Figures 1 and 4)} *)

type scenario_row = {
  scenario : Race_suite.t;
  kard_ilu : int;
  tsan : int;
  lockset : int;
  kard_ok : bool;
  tsan_ok : bool;
  lockset_ok : bool;
}

let scenarios_plan ?(names = List.map (fun s -> s.Race_suite.name) Race_suite.all)
    ?(seed = Defaults.seed) () =
  let scenarios = List.map Race_suite.find names in
  let jobs =
    List.concat_map
      (fun scenario ->
        [ Job.scenario ~seed (Runner.Kard scenario.Race_suite.config) scenario;
          Job.scenario ~seed Runner.Tsan scenario;
          Job.scenario ~seed Runner.Lockset scenario ])
      scenarios
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun scenario group ->
          match group with
          | [ kard; tsan; lockset ] ->
            let kard_ilu = List.length kard.Runner.kard_ilu_races in
            let tsan_n = List.length tsan.Runner.tsan_races in
            let lockset_n = List.length lockset.Runner.lockset_warnings in
            { scenario;
              kard_ilu;
              tsan = tsan_n;
              lockset = lockset_n;
              kard_ok = Race_suite.check scenario.Race_suite.expect_kard_ilu kard_ilu;
              tsan_ok = Race_suite.check scenario.Race_suite.expect_tsan tsan_n;
              lockset_ok = Race_suite.check scenario.Race_suite.expect_lockset lockset_n }
          | _ -> assert false)
        scenarios
        (Pool.chunks 3 results))

let scenarios ?jobs ?names ?seed () = Pool.execute ?jobs (scenarios_plan ?names ?seed ())

let print_scenarios rows =
  let header = [ "scenario"; "kard"; "expect"; "tsan"; "expect"; "lockset"; "expect"; "ok" ] in
  let cells row =
    let fmt_exp e = Format.asprintf "%a" Race_suite.pp_expectation e in
    [ row.scenario.Race_suite.name;
      string_of_int row.kard_ilu;
      fmt_exp row.scenario.Race_suite.expect_kard_ilu;
      string_of_int row.tsan;
      fmt_exp row.scenario.Race_suite.expect_tsan;
      string_of_int row.lockset;
      fmt_exp row.scenario.Race_suite.expect_lockset;
      (if row.kard_ok && row.tsan_ok && row.lockset_ok then "yes" else "NO") ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 Table 5} *)

type t5_row = {
  t5_threads : int;
  total_cs : int;
  unique_cs : int;
  max_concurrent : int;
  recycling : int;
  sharing : int;
}

let table5_plan ?(data_keys = Kard_mpk.Pkey.data_key_count) ?(threads_list = [ 4; 8; 16; 32 ])
    ?(scale = Defaults.scale) () =
  let spec = Registry.find "memcached" in
  let config = { Kard_core.Config.default with Kard_core.Config.data_keys } in
  let jobs =
    List.map (fun threads -> Job.spec ~threads ~scale (Runner.Kard config) spec) threads_list
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun threads result ->
          let stats = Option.get result.Runner.kard_stats in
          { t5_threads = threads;
            total_cs = result.Runner.report.Machine.cs_entries;
            unique_cs = result.Runner.report.Machine.unique_sections;
            max_concurrent = result.Runner.report.Machine.max_concurrent_sections;
            recycling = stats.Kard_core.Detector.recycling_events;
            sharing = stats.Kard_core.Detector.sharing_events })
        threads_list results)

let table5 ?jobs ?data_keys ?threads_list ?scale () =
  Pool.execute ?jobs (table5_plan ?data_keys ?threads_list ?scale ())

let print_table5 rows =
  let header = [ "memcached"; "t=4"; "t=8"; "t=16"; "t=32" ] in
  let line label f =
    label :: List.map (fun row -> Text_table.fmt_int (f row)) rows
  in
  let table =
    [ line "Total executed CS" (fun r -> r.total_cs);
      line "Uniquely executed CS" (fun r -> r.unique_cs);
      line "Maximum concurrent CS" (fun r -> r.max_concurrent);
      line "Key recycling events" (fun r -> r.recycling);
      line "Key sharing events" (fun r -> r.sharing) ]
  in
  let header =
    match rows with
    | _ when List.length rows = 4 -> header
    | _ -> "memcached" :: List.map (fun r -> Printf.sprintf "t=%d" r.t5_threads) rows
  in
  print_string (Text_table.render ~header table)

(* {1 Table 6} *)

type t6_row = {
  app : string;
  kard_races : int;
  tsan_ilu : int;
  tsan_non_ilu : int;
  paper_kard : int;
  paper_tsan_ilu : int;
  paper_tsan_non_ilu : int;
}

(* The paper counts racy variables, not conflicting thread pairs:
   collapse records to distinct objects (Kard) / granules (TSan). *)
let distinct_by f items =
  let seen = Hashtbl.create 16 in
  List.iter (fun item -> Hashtbl.replace seen (f item) ()) items;
  Hashtbl.length seen

let table6_plan ?(scale = Defaults.scale) () =
  let paper = [ ("aget", 1, 1, 0); ("memcached", 3, 3, 0); ("nginx", 1, 1, 0); ("pigz", 1, 0, 0) ] in
  let jobs =
    List.concat_map
      (fun (name, _, _, _) ->
        let spec = Registry.find name in
        [ Job.spec ~scale (Runner.Kard (Defaults.kard_config ())) spec;
          Job.spec ~scale Runner.Tsan spec ])
      paper
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun (name, pk, pti, ptn) group ->
          match group with
          | [ kard; tsan ] ->
            let granule (r : Kard_baselines.Tsan.race) = r.Kard_baselines.Tsan.addr lsr 3 in
            let tsan_ilu = distinct_by granule tsan.Runner.tsan_ilu_races in
            { app = name;
              kard_races =
                distinct_by (fun (r : Kard_core.Race_record.t) -> r.Kard_core.Race_record.obj_id)
                  kard.Runner.kard_races;
              tsan_ilu;
              tsan_non_ilu = distinct_by granule tsan.Runner.tsan_races - tsan_ilu;
              paper_kard = pk;
              paper_tsan_ilu = pti;
              paper_tsan_non_ilu = ptn }
          | _ -> assert false)
        paper
        (Pool.chunks 2 results))

let table6 ?jobs ?scale () = Pool.execute ?jobs (table6_plan ?scale ())

let print_table6 rows =
  let header =
    [ "application"; "kard"; "(paper)"; "tsan ILU"; "(paper)"; "tsan non-ILU"; "(paper)" ]
  in
  let cells row =
    [ row.app;
      string_of_int row.kard_races;
      string_of_int row.paper_kard;
      string_of_int row.tsan_ilu;
      string_of_int row.paper_tsan_ilu;
      string_of_int row.tsan_non_ilu;
      string_of_int row.paper_tsan_non_ilu ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 Figure 5} *)

type f5_row = {
  f5_name : string;
  by_threads : (int * float) list;
}

let figure5_plan ?(threads_list = [ 8; 16; 32 ]) ?(scale = Defaults.scale)
    ?(specs = Registry.benchmarks) () =
  let jobs =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun threads ->
            [ Job.spec ~threads ~scale Runner.Baseline spec;
              Job.spec ~threads ~scale (Runner.Kard (Defaults.kard_config ())) spec ])
          threads_list)
      specs
  in
  Pool.plan jobs ~merge:(fun results ->
      let per_spec = Pool.chunks (2 * List.length threads_list) results in
      List.map2
        (fun spec group ->
          let by_threads =
            List.map2
              (fun threads pair ->
                match pair with
                | [ base; kard ] -> (threads, Runner.overhead_pct ~baseline:base kard)
                | _ -> assert false)
              threads_list (Pool.chunks 2 group)
          in
          { f5_name = spec.Spec.name; by_threads })
        specs per_spec)

let figure5 ?jobs ?threads_list ?scale ?specs () =
  Pool.execute ?jobs (figure5_plan ?threads_list ?scale ?specs ())

let print_figure5 rows =
  match rows with
  | [] -> ()
  | first :: _ ->
    let threads_list = List.map fst first.by_threads in
    let header = "benchmark" :: List.map (fun t -> Printf.sprintf "t=%d" t) threads_list in
    let cells row =
      row.f5_name :: List.map (fun (_, p) -> Text_table.fmt_pct p) row.by_threads
    in
    print_string (Text_table.render ~header (List.map cells rows));
    List.iter
      (fun t ->
        let pcts = List.map (fun row -> List.assoc t row.by_threads) rows in
        Printf.printf "geomean t=%d: %s\n" t
          (Text_table.fmt_pct (Stats.geomean_overhead_pct pcts)))
      threads_list;
    print_newline ();
    print_string
      (Chart.grouped
         ~series:(List.map (fun t -> Printf.sprintf "t=%d" t) threads_list)
         (List.map (fun row -> (row.f5_name, List.map snd row.by_threads)) rows))

(* {1 NGINX sweep} *)

type nginx_row = { file_kb : int; kard_pct : float }

let nginx_sweep_plan ?(sizes = [ 128; 256; 512; 1024 ]) ?(scale = Defaults.scale) () =
  let jobs =
    List.concat_map
      (fun file_kb ->
        let spec = Kard_workloads.Apps.nginx_with_file ~file_kb in
        [ Job.spec ~scale Runner.Baseline spec;
          Job.spec ~scale (Runner.Kard (Defaults.kard_config ())) spec ])
      sizes
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun file_kb pair ->
          match pair with
          | [ base; kard ] -> { file_kb; kard_pct = Runner.overhead_pct ~baseline:base kard }
          | _ -> assert false)
        sizes
        (Pool.chunks 2 results))

let nginx_sweep ?jobs ?sizes ?scale () = Pool.execute ?jobs (nginx_sweep_plan ?sizes ?scale ())

let print_nginx_sweep rows =
  let header = [ "file size"; "kard overhead" ] in
  let cells row = [ Printf.sprintf "%d kB" row.file_kb; Text_table.fmt_pct row.kard_pct ] in
  print_string (Text_table.render ~header (List.map cells rows));
  print_string
    (Chart.bars ~unit_label:"%"
       (List.map (fun row -> (Printf.sprintf "%d kB" row.file_kb, row.kard_pct)) rows));
  print_string "paper: 128 kB -> +58.7%, 1 MB -> +8.8% (average +15.1%)\n"

(* {1 Figure 2} *)

type f2_stats = {
  objects : int;
  object_bytes : int;
  virtual_pages : int;
  physical_pages : int;
  file_bytes : int;
}

let figure2 ?(objects = 128) ?(object_bytes = 32) () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Kard_alloc.Meta_table.create () in
  let upa =
    Kard_alloc.Unique_page_alloc.create aspace ~meta ~cost:Kard_mpk.Cost_model.default ()
  in
  let iface = Kard_alloc.Unique_page_alloc.iface upa in
  for i = 0 to objects - 1 do
    let (_ : Kard_alloc.Obj_meta.t * int) = iface.Kard_alloc.Alloc_iface.alloc ~site:i object_bytes in
    ()
  done;
  { objects;
    object_bytes;
    virtual_pages = Kard_vm.Address_space.mapped_pages aspace;
    physical_pages = Kard_vm.Phys_mem.resident_frames phys;
    file_bytes = Kard_alloc.Unique_page_alloc.file_bytes upa }

let print_figure2 stats =
  Printf.printf
    "consolidated unique page allocation: %d objects of %d B -> %d virtual pages backed by %d \
     physical pages (in-memory file: %d B)\n"
    stats.objects stats.object_bytes stats.virtual_pages stats.physical_pages stats.file_bytes

(* {1 Memory consumption breakdown (section 7.5)} *)

type mem_row = {
  mem_name : string;
  base_rss : int;
  kard_rss : int;
  kard_data : int;
  kard_page_tables : int;
  kard_metadata : int;
  wasted : int;
}

let memory_plan ?(threads = Defaults.table_threads) ?(scale = Defaults.scale)
    ?(specs = Registry.all) () =
  let jobs =
    List.concat_map
      (fun spec ->
        [ Job.spec ~threads ~scale Runner.Baseline spec;
          Job.spec ~threads ~scale (Runner.Kard (Defaults.kard_config ())) spec ])
      specs
  in
  Pool.plan jobs ~merge:(fun results ->
      List.map2
        (fun spec pair ->
          match pair with
          | [ base; kard ] ->
            let kr = kard.Runner.report in
            let alloc_stats = kr.Machine.alloc_stats in
            { mem_name = spec.Spec.name;
              base_rss = base.Runner.report.Machine.rss_bytes;
              kard_rss = kr.Machine.rss_bytes;
              kard_data = kr.Machine.data_rss_bytes;
              kard_page_tables = kr.Machine.page_table_bytes;
              kard_metadata = kr.Machine.detector_metadata_bytes;
              wasted =
                alloc_stats.Kard_alloc.Alloc_iface.bytes_reserved
                - alloc_stats.Kard_alloc.Alloc_iface.bytes_requested }
          | _ -> assert false)
        specs
        (Pool.chunks 2 results))

let memory ?jobs ?threads ?scale ?specs () =
  Pool.execute ?jobs (memory_plan ?threads ?scale ?specs ())

let print_memory rows =
  let header =
    [ "workload"; "base KiB"; "kard KiB"; "overhead"; "data KiB"; "pt KiB"; "meta KiB";
      "waste KiB" ]
  in
  let cells row =
    [ row.mem_name;
      Text_table.fmt_kb row.base_rss;
      Text_table.fmt_kb row.kard_rss;
      Text_table.fmt_pct (Stats.pct (float_of_int row.kard_rss) (float_of_int row.base_rss));
      Text_table.fmt_kb row.kard_data;
      Text_table.fmt_kb row.kard_page_tables;
      Text_table.fmt_kb row.kard_metadata;
      Text_table.fmt_kb row.wasted ]
  in
  print_string (Text_table.render ~header (List.map cells rows));
  (* An empty row list must degrade to a note, not an
     [Invalid_argument] escaping mid-table (Stats.geomean rejects []). *)
  if rows = [] then print_string "(no rows)\n"
  else
    let pcts =
      List.map
        (fun row -> Stats.pct (float_of_int row.kard_rss) (float_of_int row.base_rss))
        rows
    in
    Printf.printf "RSS overhead geomean: %s (paper: +68.0%% benchmarks, +85.6%% real-world)\n"
      (Text_table.fmt_pct (Stats.geomean_overhead_pct pcts))

(* {1 Ablation: the design choices DESIGN.md calls out} *)

type ablation_row = {
  ab_label : string;
  ab_pct : float;
  ab_records : int;
  ab_recycling : int;
  ab_sharing : int;
}

let ablation_variants =
  let module Config = Kard_core.Config in
  [ ("default (13 keys, all filters)", Config.default);
    ("no proactive acquisition", { Config.default with Config.proactive_acquisition = false });
    ("no protection interleaving", { Config.default with Config.protection_interleaving = false });
    ("no redundancy pruning", { Config.default with Config.redundancy_pruning = false });
    ("no metadata pruning", { Config.default with Config.metadata_pruning = false });
    ("4 data keys", { Config.default with Config.data_keys = 4 });
    ("1 data key", { Config.default with Config.data_keys = 1 });
    ( "1 data key + software fallback",
      { Config.default with Config.data_keys = 1; software_fallback = true } );
    ( "binary mode (sections = locks)",
      { Config.default with Config.section_identity = Config.By_lock } ) ]

let ablation_plan ?(scale = Defaults.scale) () =
  let spec = Registry.find "memcached" in
  let jobs =
    Job.spec ~scale Runner.Baseline spec
    :: List.map (fun (_, config) -> Job.spec ~scale (Runner.Kard config) spec) ablation_variants
  in
  Pool.plan jobs ~merge:(function
    | base :: variants ->
      List.map2
        (fun (label, _) r ->
          let stats = Option.get r.Runner.kard_stats in
          { ab_label = label;
            ab_pct = Runner.overhead_pct ~baseline:base r;
            ab_records = List.length r.Runner.kard_races;
            ab_recycling = stats.Kard_core.Detector.recycling_events;
            ab_sharing = stats.Kard_core.Detector.sharing_events })
        ablation_variants variants
    | [] -> assert false)

let ablation ?jobs ?scale () = Pool.execute ?jobs (ablation_plan ?scale ())

let print_ablation rows =
  print_string
    (Text_table.render
       ~header:[ "memcached, kard variant"; "overhead"; "records"; "recycle"; "share" ]
       (List.map
          (fun row ->
            [ row.ab_label;
              Text_table.fmt_pct row.ab_pct;
              string_of_int row.ab_records;
              string_of_int row.ab_recycling;
              string_of_int row.ab_sharing ])
          rows))

(* {1 Simulator throughput} *)

type tp_row = {
  tp_threads : int;
  tp_detector : string;
  tp_steps : int;
  tp_sim_cycles : int;
  tp_host_seconds : float;
  tp_ops_per_sec : float;
  tp_minor_words : float;
  tp_promoted_words : float;
  tp_minor_words_per_step : float;
}

let tp_detectors = [ Runner.Baseline; Runner.Kard (Defaults.kard_config ()) ]

let throughput ?(spec = Registry.find "memcached")
    ?(threads_list = [ 1; 2; 4; 8; 16; 32; 64 ]) ?(scale = Defaults.throughput_scale)
    ?(seed = Defaults.seed) ?shards () =
  (* Deliberately serial: each cell is wall-clock timed, and concurrent
     cells would steal host cycles from each other.  Parallel wall-clock
     wins are measured by the [parallel] bench instead. *)
  (* Warm up allocators/caches once so the first timed cell is not
     charged for image start-up. *)
  ignore (Runner.run ~threads:2 ~scale:(scale /. 4.) ~seed ~detector:Runner.Baseline spec);
  List.concat_map
    (fun threads ->
      List.map
        (fun detector ->
          let g0 = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          let r = Runner.run ?shards ~threads ~scale ~seed ~detector spec in
          let elapsed = Unix.gettimeofday () -. t0 in
          let g1 = Gc.quick_stat () in
          let steps = r.Runner.report.Machine.steps in
          let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
          { tp_threads = threads;
            tp_detector = r.Runner.detector_name;
            tp_steps = steps;
            tp_sim_cycles = r.Runner.report.Machine.cycles;
            tp_host_seconds = elapsed;
            tp_ops_per_sec =
              (if elapsed > 0. then float_of_int steps /. elapsed else 0.);
            tp_minor_words = minor_words;
            tp_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
            tp_minor_words_per_step =
              (if steps > 0 then minor_words /. float_of_int steps else 0.) })
        tp_detectors)
    threads_list

let print_throughput rows =
  let header =
    [ "threads"; "detector"; "steps"; "sim cycles"; "host s"; "ops/s"; "minor w/step" ]
  in
  let cells row =
    [ string_of_int row.tp_threads;
      row.tp_detector;
      Text_table.fmt_int row.tp_steps;
      Text_table.fmt_int row.tp_sim_cycles;
      Printf.sprintf "%.3f" row.tp_host_seconds;
      Text_table.fmt_int (int_of_float row.tp_ops_per_sec);
      Printf.sprintf "%.2f" row.tp_minor_words_per_step ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 Parallel executor benchmark (BENCH_pr3.json)} *)

type parallel_bench = {
  pb_jobs : int;
  pb_host_cores : int;
  pb_job_count : int;
  pb_serial_seconds : float;
  pb_parallel_seconds : float;
  pb_speedup : float;
  pb_sim_cycles : int;
  pb_identical : bool;
  pb_minor_words : float;
  pb_promoted_words : float;
  pb_minor_words_per_step : float;
}

let parallel_bench ?jobs ?(scale = Defaults.scale) () =
  let jobs = Pool.resolve_jobs jobs in
  let js = (table3_plan ~scale ()).Pool.jobs in
  (* Warm-up, so neither timed pass is charged for image start-up. *)
  ignore (Job.run (List.hd js));
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* GC counters come from [run_jobs_gc], which measures each job
     inside whichever domain executes it — so the parallel pass is
     counted in full (sampling [Gc.quick_stat] here, in the submitting
     domain, would miss everything the workers allocate).  The parallel
     pass's aggregate is the one reported: it is the pass that used to
     be unmeasurable, and per-job allocation is the same work either
     way. *)
  let serial, serial_s = time (fun () -> Pool.run_jobs ~jobs:1 js) in
  let (par, par_gc), par_s = time (fun () -> Pool.run_jobs_gc ~jobs js) in
  let sim_cycles =
    List.fold_left (fun acc r -> acc + r.Runner.report.Machine.cycles) 0 serial
  in
  let steps = List.fold_left (fun acc r -> acc + r.Runner.report.Machine.steps) 0 serial in
  let minor_words = par_gc.Pool.minor_words in
  (* Untraced results are closure-free, so structural equality is the
     full determinism check: every counter, race record and baseline
     warning must match between the serial and parallel pass. *)
  { pb_jobs = jobs;
    pb_host_cores = Domain.recommended_domain_count ();
    pb_job_count = List.length js;
    pb_serial_seconds = serial_s;
    pb_parallel_seconds = par_s;
    pb_speedup = (if par_s > 0. then serial_s /. par_s else 0.);
    pb_sim_cycles = sim_cycles;
    pb_identical = (serial = par);
    pb_minor_words = minor_words;
    pb_promoted_words = par_gc.Pool.promoted_words;
    pb_minor_words_per_step =
      (if steps > 0 then minor_words /. float_of_int steps else 0.) }

let print_parallel_bench b =
  Printf.printf
    "%d jobs on %d workers (%d host cores): serial %.3f s, parallel %.3f s -> %.2fx; results \
     identical: %s; total simulated cycles %s; serial minor words/step %.2f\n"
    b.pb_job_count b.pb_jobs b.pb_host_cores b.pb_serial_seconds b.pb_parallel_seconds b.pb_speedup
    (if b.pb_identical then "yes" else "NO")
    (Text_table.fmt_int b.pb_sim_cycles) b.pb_minor_words_per_step

(* {1 Open-loop serve sweep (BENCH_pr6.json)} *)

module Openloop = Kard_workloads.Openloop
module Snapshot = Kard_obs.Snapshot
module Window = Kard_obs.Window

type serve_row = {
  sv_detector : string;
  sv_rate : float;
  sv_requests : int;
  sv_cycles : int;
  sv_achieved : float;
  sv_latency : Window.row;
  sv_snapshot : Snapshot.t;
}

type serve_sweep = {
  ss_server : string;
  ss_model : string;
  ss_slo : int;
  ss_threads : int;
  ss_rows : serve_row list;
  ss_goodput : (string * float) list;
}

let serve_detectors =
  [ ("none", Runner.Baseline);
    ("kard", Runner.Kard (Defaults.kard_config ()));
    ("tsan", Runner.Tsan) ]

let default_serve_rates = [ 6.0; 10.0; 14.0; 18.0; 24.0; 32.0 ]

let empty_window_row =
  { Window.w_start = 0; count = 0; max = 0; mean = 0.; p50 = 0; p95 = 0; p99 = 0; p999 = 0 }

(* Goodput under the SLO: per detector, the highest offered rate whose
   p99 latency stays within [slo] (0 when every sweep point misses).
   The open loop makes this meaningful — a saturated detector cannot
   hide behind a slowed-down load generator. *)
let serve_goodput ~slo rows =
  (* Detector names in first-appearance order. *)
  let names =
    List.fold_left
      (fun acc r -> if List.mem r.sv_detector acc then acc else acc @ [ r.sv_detector ])
      [] rows
  in
  List.map
    (fun name ->
      let ok =
        List.filter
          (fun r ->
            String.equal r.sv_detector name
            && r.sv_requests > 0
            && r.sv_latency.Window.p99 <= slo)
          rows
      in
      (name, List.fold_left (fun acc r -> Float.max acc r.sv_rate) 0. ok))
    names

let serve_plan ?(server = Openloop.Nginx) ?(model = Openloop.Poisson)
    ?(detectors = serve_detectors) ?(rates = default_serve_rates)
    ?(threads = Defaults.table_threads) ?(scale = Defaults.serve_scale)
    ?(seed = Defaults.seed) ?(slo = Defaults.serve_slo) ?shards () =
  let specs = List.map (fun rate -> (rate, Openloop.spec ~model ~rate server)) rates in
  let jobs =
    List.concat_map
      (fun (_, detector) ->
        List.map
          (fun (_, spec) ->
            Job.spec ~threads ~scale ~seed ~trace:(Job.trace_request ()) ?shards detector spec)
          specs)
      detectors
  in
  Pool.plan jobs ~merge:(fun results ->
      let rows =
        List.concat
          (List.map2
             (fun (dname, _) group ->
               List.map2
                 (fun (rate, _) result ->
                   let snapshot =
                     match result.Runner.trace with
                     | Some tr -> Snapshot.of_metrics (Kard_obs.Trace.metrics tr)
                     | None -> Snapshot.empty
                   in
                   let latency =
                     match Snapshot.find_window snapshot Openloop.metric_latency with
                     | Some w -> w.Snapshot.w_overall
                     | None -> empty_window_row
                   in
                   let requests = Snapshot.find_counter snapshot Openloop.counter_requests in
                   let cycles = result.Runner.report.Machine.cycles in
                   { sv_detector = dname;
                     sv_rate = rate;
                     sv_requests = requests;
                     sv_cycles = cycles;
                     sv_achieved =
                       (if cycles > 0 then
                          float_of_int requests /. (float_of_int cycles /. 1_000_000.)
                        else 0.);
                     sv_latency = latency;
                     sv_snapshot = snapshot })
                 specs group)
             detectors
             (Pool.chunks (List.length specs) results))
      in
      { ss_server = Openloop.server_name server;
        ss_model = Openloop.arrival_name model;
        ss_slo = slo;
        ss_threads = threads;
        ss_rows = rows;
        ss_goodput = serve_goodput ~slo rows })

let serve ?jobs ?server ?model ?detectors ?rates ?threads ?scale ?seed ?slo ?shards () =
  Pool.execute ?jobs
    (serve_plan ?server ?model ?detectors ?rates ?threads ?scale ?seed ?slo ?shards ())

let print_serve sweep =
  Printf.printf "open-loop %s, %s arrivals, %d workers; SLO: p99 <= %s cycles\n" sweep.ss_server
    sweep.ss_model sweep.ss_threads
    (Text_table.fmt_int sweep.ss_slo);
  let header =
    [ "detector"; "rate"; "requests"; "achieved"; "p50"; "p95"; "p99"; "p99.9"; "max"; "SLO" ]
  in
  let cells row =
    let l = row.sv_latency in
    [ row.sv_detector;
      Printf.sprintf "%g" row.sv_rate;
      Text_table.fmt_int row.sv_requests;
      Printf.sprintf "%.2f" row.sv_achieved;
      Text_table.fmt_int l.Window.p50;
      Text_table.fmt_int l.Window.p95;
      Text_table.fmt_int l.Window.p99;
      Text_table.fmt_int l.Window.p999;
      Text_table.fmt_int l.Window.max;
      (if row.sv_requests > 0 && l.Window.p99 <= sweep.ss_slo then "ok" else "MISS") ]
  in
  print_string (Text_table.render ~header (List.map cells sweep.ss_rows));
  List.iter
    (fun (name, rate) ->
      if rate > 0. then
        Printf.printf "goodput under SLO (%s): %g req/Mcycle\n" name rate
      else Printf.printf "goodput under SLO (%s): none (every rate misses)\n" name)
    sweep.ss_goodput

(* {1 Sharded single-run benchmark (BENCH_pr7.json)} *)

type shard_row = {
  sh_shards : int;
  sh_workers : int;
  sh_seconds : float;
  sh_speedup : float;
  sh_identical : bool;
}

type shard_bench = {
  sh_spec : string;
  sh_threads : int;
  sh_scale : float;
  sh_seed : int;
  sh_host_cores : int;
  sh_steps : int;
  sh_sim_cycles : int;
  sh_rows : shard_row list;
}

let default_shard_counts = [ 1; 2; 4; 8 ]

(* Mirrors the worker-resolution rule in [Machine.run_burst]; the
   count is recorded so BENCH numbers are self-describing on any
   host.  Worker count never affects results (DESIGN.md §10). *)
let shard_workers_for shards =
  if shards <= 1 then 0 else max 0 (min (shards - 1) (Domain.recommended_domain_count () - 1))

let shard_bench ?(spec = Kard_workloads.Contended.convoy) ?(shard_counts = default_shard_counts)
    ?threads ?(scale = 1.0) ?(seed = Defaults.seed) () =
  let threads = Option.value ~default:spec.Spec.default_threads threads in
  let detector = Runner.Kard (Defaults.kard_config ()) in
  let run shards = Runner.run ~shards ~threads ~scale ~seed ~detector spec in
  (* The shards=1 row is the timing and identity baseline; force it to
     the front whatever list the caller passed. *)
  let counts = 1 :: List.filter (fun n -> n > 1) shard_counts in
  (* Warm-up, so the first timed row is not charged for start-up. *)
  ignore (run 1);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let timed = List.map (fun n -> let r, s = time (fun () -> run n) in (n, r, s)) counts in
  let _, base, base_s = List.hd timed in
  (* Untraced results are closure-free, so structural equality checks
     the whole result: report counters, schedule trace, race records,
     detector stats. *)
  let rows =
    List.map
      (fun (n, r, s) ->
        { sh_shards = n;
          sh_workers = shard_workers_for n;
          sh_seconds = s;
          sh_speedup = (if s > 0. then base_s /. s else 0.);
          sh_identical = r = base })
      timed
  in
  { sh_spec = spec.Spec.name;
    sh_threads = threads;
    sh_scale = scale;
    sh_seed = seed;
    sh_host_cores = Domain.recommended_domain_count ();
    sh_steps = base.Runner.report.Machine.steps;
    sh_sim_cycles = base.Runner.report.Machine.cycles;
    sh_rows = rows }

let print_shard_bench b =
  Printf.printf "%s, %d threads, scale %g, seed %d (%d host cores): %s steps, %s simulated cycles\n"
    b.sh_spec b.sh_threads b.sh_scale b.sh_seed b.sh_host_cores
    (Text_table.fmt_int b.sh_steps)
    (Text_table.fmt_int b.sh_sim_cycles);
  let header = [ "shards"; "workers"; "seconds"; "speedup"; "identical" ] in
  let cells row =
    [ string_of_int row.sh_shards;
      string_of_int row.sh_workers;
      Printf.sprintf "%.3f" row.sh_seconds;
      Printf.sprintf "%.2fx" row.sh_speedup;
      (if row.sh_identical then "yes" else "NO") ]
  in
  print_string (Text_table.render ~header (List.map cells b.sh_rows))

(* {1 Key-pressure sweep (BENCH_pr8.json)} *)

type keys_row = {
  kp_point : string;
  kp_mode : string;
  kp_objects : int;
  kp_sections : int;
  kp_data_keys : int;
  kp_vkeys : int;
  kp_planted : int;
  kp_detected : int;
  kp_detected_objects : int;
  kp_cycles : int;
  kp_overhead_pct : float;
  kp_sharing : int;
  kp_recycling : int;
  kp_vkey_evictions : int;
  kp_vkey_loads : int;
  kp_vkey_retag_pages : int;
  kp_vkey_stalls : int;
}

type keys_bench = {
  kp_threads : int;
  kp_scale : float;
  kp_seed : int;
  kp_rows : keys_row list;
}

let default_keys_points =
  [ ("10k", Kard_workloads.Keypressure.default);
    ("100k", Kard_workloads.Keypressure.profile_100k) ]

let default_keys_data_keys = [ 4; 8; Kard_mpk.Pkey.data_key_count ]

(* Twice the section count: comfortably past the active set, so the
   pool never forces sharing and the precision measurement isolates
   association lifetime. *)
let default_keys_pool sections = 2 * sections

(* Per sweep point: one baseline run (the overhead denominator), then
   the physical detector and the virtualized detector at each
   physical-key budget.  Precision = detected wrong-lock plants over
   planted; the physical rows lose detections to association churn
   (recycling) and key sharing, the vkey rows keep every association
   alive (DESIGN.md §11). *)
let keys_plan ?(points = default_keys_points) ?(data_keys = default_keys_data_keys) ?pool
    ?threads ?(scale = 1.0) ?(seed = Defaults.seed) ?shards () =
  let point_jobs (pname, profile) =
    let p = profile.Kard_workloads.Keypressure.sections in
    let pool = match pool with Some n -> n | None -> default_keys_pool p in
    let spec =
      Kard_workloads.Keypressure.spec ~name:("keys-" ^ pname) ~description:"key-pressure point"
        profile
    in
    let threads = Option.value ~default:spec.Spec.default_threads threads in
    let configs =
      List.concat_map
        (fun dk ->
          [ (Printf.sprintf "phys-%d" dk, dk, 0); (Printf.sprintf "vkeys-%d" dk, dk, pool) ])
        data_keys
    in
    let jobs =
      Job.spec ~threads ~scale ~seed ?shards Runner.Baseline spec
      :: List.map
           (fun (_, dk, vk) ->
             let config =
               { Kard_core.Config.default with Kard_core.Config.data_keys = dk; vkeys = vk }
             in
             Job.spec ~threads ~scale ~seed ?shards (Runner.Kard config) spec)
           configs
    in
    (configs, threads, jobs)
  in
  let prepared = List.map (fun point -> (point, point_jobs point)) points in
  let jobs = List.concat_map (fun (_, (_, _, jobs)) -> jobs) prepared in
  Pool.plan jobs ~merge:(fun results ->
      let rec split results prepared acc =
        match prepared with
        | [] -> List.rev acc
        | ((pname, profile), (configs, threads, jobs)) :: rest ->
          let n = List.length jobs in
          let group = List.filteri (fun i _ -> i < n) results in
          let remaining = List.filteri (fun i _ -> i >= n) results in
          let base, kards =
            match group with
            | base :: kards -> (base, kards)
            | [] -> assert false
          in
          let base_cycles = base.Runner.report.Machine.cycles in
          let rows =
            List.map2
              (fun (mode, dk, vk) (result : Runner.result) ->
                let stats = Option.get result.Runner.kard_stats in
                let races = result.Runner.kard_races in
                let distinct =
                  List.sort_uniq compare
                    (List.map (fun r -> r.Kard_core.Race_record.obj_id) races)
                in
                { kp_point = pname;
                  kp_mode = mode;
                  kp_objects = Kard_workloads.Keypressure.effective_objects profile ~scale;
                  kp_sections = profile.Kard_workloads.Keypressure.sections;
                  kp_data_keys = dk;
                  kp_vkeys = vk;
                  kp_planted = Kard_workloads.Keypressure.planted profile ~scale;
                  kp_detected = List.length races;
                  kp_detected_objects = List.length distinct;
                  kp_cycles = result.Runner.report.Machine.cycles;
                  kp_overhead_pct =
                    (if base_cycles > 0 then
                       100.
                       *. (float_of_int result.Runner.report.Machine.cycles
                           /. float_of_int base_cycles
                          -. 1.)
                     else 0.);
                  kp_sharing = stats.Kard_core.Detector.sharing_events;
                  kp_recycling = stats.Kard_core.Detector.recycling_events;
                  kp_vkey_evictions = stats.Kard_core.Detector.vkey_evictions;
                  kp_vkey_loads = stats.Kard_core.Detector.vkey_loads;
                  kp_vkey_retag_pages = stats.Kard_core.Detector.vkey_retag_pages;
                  kp_vkey_stalls = stats.Kard_core.Detector.vkey_stalls })
              configs kards
          in
          split remaining rest ((threads, rows) :: acc)
      in
      let groups = split results prepared [] in
      let threads =
        match groups with
        | (threads, _) :: _ -> threads
        | [] -> Defaults.table_threads
      in
      { kp_threads = threads;
        kp_scale = scale;
        kp_seed = seed;
        kp_rows = List.concat_map snd groups })

let keys ?jobs ?points ?data_keys ?pool ?threads ?scale ?seed ?shards () =
  Pool.execute ?jobs (keys_plan ?points ?data_keys ?pool ?threads ?scale ?seed ?shards ())

let print_keys_bench b =
  Printf.printf "key-pressure sweep: %d threads, scale %g, seed %d\n" b.kp_threads b.kp_scale
    b.kp_seed;
  let header =
    [ "point"; "mode"; "objects"; "sections"; "planted"; "detected"; "objs"; "overhead";
      "sharing"; "recycl"; "evict"; "loads"; "stalls" ]
  in
  let cells row =
    [ row.kp_point;
      row.kp_mode;
      Text_table.fmt_int row.kp_objects;
      string_of_int row.kp_sections;
      string_of_int row.kp_planted;
      string_of_int row.kp_detected;
      string_of_int row.kp_detected_objects;
      Text_table.fmt_pct row.kp_overhead_pct;
      string_of_int row.kp_sharing;
      string_of_int row.kp_recycling;
      Text_table.fmt_int row.kp_vkey_evictions;
      Text_table.fmt_int row.kp_vkey_loads;
      Text_table.fmt_int row.kp_vkey_stalls ]
  in
  print_string (Text_table.render ~header (List.map cells b.kp_rows))

(* {1 Sampling sweep (BENCH_pr9.json)} *)

type sampling_row = {
  sp_subject : string;
  sp_rate : float;
  sp_runs : int;
  sp_detected : int;
  sp_detection_pct : float;
  sp_subset_ok : bool;
  sp_latency_min : int;
  sp_latency_p50 : int;
  sp_latency_max : int;
  sp_mean_cs_entries : float;
  sp_sampled_sections : int;
  sp_skipped_sections : int;
  sp_skipped_accesses : int;
  sp_mean_cycles : float;
}

type sampling_bench = {
  sp_epoch : int;
  sp_seeds : int list;
  sp_rates : float list;
  sp_rows : sampling_row list;
  sp_serve : serve_sweep;
}

let default_sampling_rates = [ 0.1; 0.25; 0.5; 1.0 ]

(* Planted-race subjects whose full-rate detection is reliable across
   the seed sweep, so the rate column — not subject flakiness — is
   what moves detection probability. *)
let default_sampling_scenarios = [ "ilu-lock-lock"; "ilu-lock-nolock"; "exclusive-write" ]

let default_serve_sampling_rates = [ 0.1; 0.25; 0.5 ]

(* Small against the serve runs (which rotate many times), large
   against the race scenarios (which mostly fit inside one epoch, so
   their detection probability stays a clean per-object Bernoulli at
   the rate). *)
let default_sampling_epoch = 100_000

let serve_sampling_detectors rates =
  ("none", Runner.Baseline)
  :: ("kard", Runner.Kard (Defaults.kard_config ()))
  :: List.map
       (fun r ->
         ( Printf.sprintf "kard-s%d" (int_of_float (Float.round (r *. 100.))),
           Runner.Kard { (Defaults.kard_config ()) with Kard_core.Config.sampling = r } ))
       rates

let sampling_median = function
  | [] -> -1
  | l ->
    let a = Array.of_list (List.sort compare l) in
    a.(Array.length a / 2)

let sampling_race_objects (r : Runner.result) =
  List.sort_uniq compare
    (List.map (fun (x : Kard_core.Race_record.t) -> x.Kard_core.Race_record.obj_id)
       r.Runner.kard_races)

(* Per (subject, rate): one Kard run per seed.  Detection probability
   is the fraction of seeds with a surviving race record; detection
   latency is the first-fresh-record position in critical-section
   entries ([Detector.stats.first_race_cs]) over the detecting runs.
   Every sampled run's race-object set must be a subset of the same
   seed's rate-1.0 set ([sp_subset_ok]) — sampling may delay or miss,
   never invent.  The serve section reruns the open-loop nginx sweep
   with sampled-kard detectors next to the full one, so the tracked
   file carries the goodput-under-SLO recovery claim alongside the
   detection cost. *)
let sampling_plan ?(scenarios = default_sampling_scenarios) ?(rates = default_sampling_rates)
    ?(epoch = default_sampling_epoch) ?(seeds = Defaults.explorer_seeds)
    ?(serve_rates = default_serve_sampling_rates) ?(scale = 0.1) ?slo ?shards () =
  let subjects =
    List.map (fun name -> `Scenario (Race_suite.find name)) scenarios
    @ [ `Keypressure
          (Kard_workloads.Keypressure.spec ~name:"keys-10k"
             ~description:"key-pressure sampling point" Kard_workloads.Keypressure.default) ]
  in
  let subject_name = function
    | `Scenario s -> s.Race_suite.name
    | `Keypressure spec -> spec.Spec.name
  in
  (* The sampling seed follows the run seed: each of the sweep's
     seeds draws an independent window, so detection per (subject,
     rate) row is a probability over [seeds] draws rather than an
     all-or-nothing replay of one fixed window (the scenarios have a
     handful of ids and runs too short to rotate — under one fixed
     window every seed would answer identically). *)
  let job subject rate seed =
    match subject with
    | `Scenario s ->
      let config =
        { s.Race_suite.config with Kard_core.Config.sampling = rate;
          sampling_epoch = epoch; sampling_seed = seed }
      in
      Job.scenario ~seed ~override_config:config ?shards (Runner.Kard config) s
    | `Keypressure spec ->
      let config =
        { Kard_core.Config.default with Kard_core.Config.sampling = rate;
          sampling_epoch = epoch; sampling_seed = seed }
      in
      Job.spec ~scale ~seed ?shards (Runner.Kard config) spec
  in
  let sweep_jobs =
    List.concat_map
      (fun subject ->
        List.concat_map (fun rate -> List.map (job subject rate) seeds) rates)
      subjects
  in
  let serve_p = serve_plan ~detectors:(serve_sampling_detectors serve_rates) ?slo ?shards () in
  Pool.plan (sweep_jobs @ serve_p.Pool.jobs) ~merge:(fun results ->
      let n_sweep = List.length sweep_jobs in
      let sweep_results = List.filteri (fun i _ -> i < n_sweep) results in
      let serve_results = List.filteri (fun i _ -> i >= n_sweep) results in
      let per_seed = List.length seeds in
      let per_subject = per_seed * List.length rates in
      let rows =
        List.concat
          (List.map2
             (fun subject subject_results ->
               let by_rate =
                 List.map2
                   (fun rate group -> (rate, group))
                   rates
                   (Pool.chunks per_seed subject_results)
               in
               let full =
                 Option.map (List.map sampling_race_objects) (List.assoc_opt 1.0 by_rate)
               in
               List.map
                 (fun (rate, group) ->
                   let detecting =
                     List.filter (fun r -> r.Runner.kard_races <> []) group
                   in
                   let latencies =
                     List.filter_map
                       (fun r ->
                         match r.Runner.kard_stats with
                         | Some s when s.Kard_core.Detector.first_race_cs >= 0 ->
                           Some s.Kard_core.Detector.first_race_cs
                         | Some _ | None -> None)
                       group
                   in
                   (* The subset oracle only applies to pinned
                      interleavings: the scenarios replay a fixed
                      schedule, so the same seed's rate-1.0 run is the
                      right superset.  Open-schedule subjects
                      (keypressure) reschedule under sampling — the
                      charges shift the virtual clock — so cross-run
                      containment is undefined there; the fuzz
                      taxonomy (same-execution oracles) carries the
                      no-invented-races guarantee instead. *)
                   let subset_ok =
                     match (subject, full) with
                     | `Keypressure _, _ | _, None -> true
                     | `Scenario _, Some full_sets ->
                       List.for_all2
                         (fun r full_set ->
                           List.for_all
                             (fun o -> List.mem o full_set)
                             (sampling_race_objects r))
                         group full_sets
                   in
                   let sum_stat f =
                     List.fold_left
                       (fun acc r ->
                         match r.Runner.kard_stats with
                         | Some s -> acc + f s
                         | None -> acc)
                       0 group
                   in
                   let mean_int f =
                     float_of_int (List.fold_left (fun acc r -> acc + f r) 0 group)
                     /. float_of_int (List.length group)
                   in
                   { sp_subject = subject_name subject;
                     sp_rate = rate;
                     sp_runs = List.length group;
                     sp_detected = List.length detecting;
                     sp_detection_pct =
                       100. *. float_of_int (List.length detecting)
                       /. float_of_int (max 1 (List.length group));
                     sp_subset_ok = subset_ok;
                     sp_latency_min =
                       (match latencies with [] -> -1 | l -> List.fold_left min max_int l);
                     sp_latency_p50 = sampling_median latencies;
                     sp_latency_max = List.fold_left max (-1) latencies;
                     sp_mean_cs_entries =
                       mean_int (fun r -> r.Runner.report.Machine.cs_entries);
                     sp_sampled_sections = sum_stat (fun s -> s.Kard_core.Detector.sampled_sections);
                     sp_skipped_sections = sum_stat (fun s -> s.Kard_core.Detector.skipped_sections);
                     sp_skipped_accesses = sum_stat (fun s -> s.Kard_core.Detector.skipped_accesses);
                     sp_mean_cycles = mean_int (fun r -> r.Runner.report.Machine.cycles) })
                 by_rate)
             subjects
             (Pool.chunks per_subject sweep_results))
      in
      { sp_epoch = epoch;
        sp_seeds = seeds;
        sp_rates = rates;
        sp_rows = rows;
        sp_serve = serve_p.Pool.merge serve_results })

let sampling ?jobs ?scenarios ?rates ?epoch ?seeds ?serve_rates ?scale ?slo ?shards () =
  Pool.execute ?jobs
    (sampling_plan ?scenarios ?rates ?epoch ?seeds ?serve_rates ?scale ?slo ?shards ())

let print_sampling b =
  Printf.printf "sampling sweep: %d seeds per point, epoch %s cycles\n" (List.length b.sp_seeds)
    (Text_table.fmt_int b.sp_epoch);
  let header =
    [ "subject"; "rate"; "detect"; "pct"; "subset"; "lat-min"; "lat-p50"; "lat-max"; "cs-mean";
      "skip-cs"; "skip-acc" ]
  in
  let fmt_lat v = if v < 0 then "-" else Text_table.fmt_int v in
  let cells row =
    [ row.sp_subject;
      Printf.sprintf "%g" row.sp_rate;
      Printf.sprintf "%d/%d" row.sp_detected row.sp_runs;
      Printf.sprintf "%.0f%%" row.sp_detection_pct;
      (if row.sp_subset_ok then "ok" else "VIOLATED");
      fmt_lat row.sp_latency_min;
      fmt_lat row.sp_latency_p50;
      fmt_lat row.sp_latency_max;
      Printf.sprintf "%.0f" row.sp_mean_cs_entries;
      Text_table.fmt_int row.sp_skipped_sections;
      Text_table.fmt_int row.sp_skipped_accesses ]
  in
  print_string (Text_table.render ~header (List.map cells b.sp_rows));
  print_newline ();
  print_serve b.sp_serve

(* {1 Record/replay overhead (BENCH_pr10.json)} *)

type record_row = {
  rc_subject : string;
  rc_detector : string;
  rc_steps : int;
  rc_sim_cycles : int;
  rc_sim_overhead_cycles : int;
  rc_plain_seconds : float;
  rc_recorded_seconds : float;
  rc_host_overhead_pct : float;
  rc_log_bytes : int;
  rc_bytes_per_step : float;
  rc_picks : int;
  rc_grants : int;
  rc_replay_identical : bool;
}

type record_bench = {
  rc_scale : float;
  rc_seed : int;
  rc_shards : int;
  rc_rows : record_row list;
}

(* A function, not a value: the kard detector reads $KARD_VKEYS and
   $KARD_SAMPLING at construction time. *)
let default_record_subjects () =
  let kard = Runner.Kard (Defaults.kard_config ()) in
  [ ("memcached", Runner.Baseline);
    ("memcached", kard);
    ("aget", kard);
    ("keys-10k", kard);
    ("scenario:ilu-lock-lock", kard) ]

(* The detection outcome of a run, minus the trace sink (compared as
   Chrome JSON by the tests; [Trace.t] holds closures). *)
let record_fingerprint (r : Runner.result) =
  ( r.Runner.report,
    r.Runner.kard_races,
    r.Runner.kard_ilu_races,
    r.Runner.tsan_races,
    r.Runner.lockset_warnings )

(* Per (subject, detector): a plain run, a recorded run (contract:
   same result, zero extra simulated cycles — [rc_sim_overhead_cycles]
   is tracked precisely so the file proves it stays 0), a strict
   replay of the log (must reproduce the recorded result and pass the
   tape-fidelity check), and the encoded log's size against the
   DESIGN.md §13 bytes-per-step budget.  Host-time overhead of the
   recording wrapper is what [rc_host_overhead_pct] measures — like
   [throughput], the cells run serially because they are wall-clock
   timed. *)
let record_bench ?subjects ?(scale = Defaults.scale) ?(seed = Defaults.seed) ?shards () =
  let subjects =
    match subjects with Some s -> s | None -> default_record_subjects ()
  in
  let shards = match shards with Some n -> n | None -> Defaults.shards () in
  (* Warm-up, so the first timed cell is not charged for image
     start-up. *)
  ignore
    (Runner.run ~threads:2 ~scale:(scale /. 4.) ~seed ~detector:Runner.Baseline
       (Registry.find "memcached"));
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun (name, detector) ->
        let subject =
          match Record.find_subject name with Ok s -> s | Error e -> invalid_arg e
        in
        let plain, plain_s =
          time (fun () ->
              match subject with
              | Record.Spec spec -> Runner.run ~shards ~scale ~seed ~detector spec
              | Record.Scenario sc -> Runner.run_scenario ~shards ~seed ~detector sc)
        in
        let (recorded, log), recorded_s =
          time (fun () -> Record.record ~shards ~scale ~seed ~detector subject)
        in
        let bytes = Kard_replay.Log.encode log in
        let replay_identical =
          match Record.replay ~shards log with
          | Ok (replayed, Ok ()) ->
            record_fingerprint replayed = record_fingerprint recorded
          | Ok (_, Error _) | Error _ -> false
        in
        let steps = recorded.Runner.report.Machine.steps in
        { rc_subject = name;
          rc_detector = recorded.Runner.detector_name;
          rc_steps = steps;
          rc_sim_cycles = recorded.Runner.report.Machine.cycles;
          rc_sim_overhead_cycles =
            recorded.Runner.report.Machine.cycles - plain.Runner.report.Machine.cycles;
          rc_plain_seconds = plain_s;
          rc_recorded_seconds = recorded_s;
          rc_host_overhead_pct =
            (if plain_s > 0. then 100. *. (recorded_s -. plain_s) /. plain_s else 0.);
          rc_log_bytes = String.length bytes;
          rc_bytes_per_step =
            (if steps > 0 then float_of_int (String.length bytes) /. float_of_int steps
             else 0.);
          rc_picks = Kard_replay.Log.pick_count log;
          rc_grants = Kard_replay.Log.grant_count log;
          rc_replay_identical = replay_identical })
      subjects
  in
  { rc_scale = scale; rc_seed = seed; rc_shards = shards; rc_rows = rows }

let print_record b =
  Printf.printf "record/replay: scale %g, seed %d, shards %d\n" b.rc_scale b.rc_seed
    b.rc_shards;
  let header =
    [ "subject"; "detector"; "steps"; "sim-ovh"; "plain s"; "rec s"; "host-ovh"; "log B";
      "B/step"; "picks"; "grants"; "replay" ]
  in
  let cells row =
    [ row.rc_subject;
      row.rc_detector;
      Text_table.fmt_int row.rc_steps;
      string_of_int row.rc_sim_overhead_cycles;
      Printf.sprintf "%.3f" row.rc_plain_seconds;
      Printf.sprintf "%.3f" row.rc_recorded_seconds;
      Text_table.fmt_pct row.rc_host_overhead_pct;
      Text_table.fmt_int row.rc_log_bytes;
      Printf.sprintf "%.3f" row.rc_bytes_per_step;
      Text_table.fmt_int row.rc_picks;
      Text_table.fmt_int row.rc_grants;
      (if row.rc_replay_identical then "identical" else "DIVERGED") ]
  in
  print_string (Text_table.render ~header (List.map cells b.rc_rows))

(* {1 MPK micro} *)

let print_micro () =
  let c = Kard_mpk.Cost_model.default in
  let header = [ "operation"; "modeled cycles"; "paper/literature" ] in
  let rows =
    [ [ "RDPKRU"; string_of_int c.Kard_mpk.Cost_model.rdpkru; "<1 cycle (libmpk)" ];
      [ "WRPKRU"; string_of_int c.Kard_mpk.Cost_model.wrpkru; "~20 cycles (libmpk)" ];
      [ "pkey_mprotect";
        Printf.sprintf "%d + %d/page" c.Kard_mpk.Cost_model.pkey_mprotect_base
          c.Kard_mpk.Cost_model.pkey_mprotect_page;
        "~1 us syscall" ];
      [ "#GP fault round trip";
        string_of_int c.Kard_mpk.Cost_model.fault_roundtrip;
        "24,000 cycles (section 5.5)" ] ]
  in
  print_string (Text_table.render ~header rows)
