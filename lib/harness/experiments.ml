module Machine = Kard_sched.Machine
module Spec = Kard_workloads.Spec
module Race_suite = Kard_workloads.Race_suite
module Registry = Kard_workloads.Registry

(* {1 Table 3} *)

type t3_row = {
  spec : Spec_alias.t;
  base : Runner.result;
  alloc : Runner.result;
  kard : Runner.result;
  tsan : Runner.result;
}

let table3 ?(threads = 4) ?(scale = 0.01) ?(specs = Registry.all) () =
  List.map
    (fun spec ->
      let run detector = Runner.run ~threads ~scale ~detector spec in
      { spec;
        base = run Runner.Baseline;
        alloc = run Runner.Alloc;
        kard = run (Runner.Kard Kard_core.Config.default);
        tsan = run Runner.Tsan })
    specs

let t3_kard_pct row = Runner.overhead_pct ~baseline:row.base row.kard
let t3_alloc_pct row = Runner.overhead_pct ~baseline:row.base row.alloc
let t3_tsan_pct row = Runner.overhead_pct ~baseline:row.base row.tsan
let t3_rss_pct row = Runner.rss_overhead_pct ~baseline:row.base row.kard

let print_geomean label rows pct_of paper_of =
  if rows <> [] then
    Printf.printf "%s geomean: Kard %s (paper %s)\n" label
      (Text_table.fmt_pct (Stats.geomean_overhead_pct (List.map pct_of rows)))
      (Text_table.fmt_pct (Stats.geomean_overhead_pct (List.map paper_of rows)))

let print_table3 rows =
  let header =
    [ "benchmark"; "heap"; "glob"; "RO"; "RW"; "CS"; "act"; "entries"; "base(Mc)"; "alloc%";
      "(paper)"; "kard%"; "(paper)"; "tsan"; "(paper)"; "rss%"; "(paper)"; "dTLBk"; "faults" ]
  in
  let cells row =
    let p = row.spec.Spec.paper in
    let r = row.base.Runner.report in
    let allocs = r.Machine.alloc_stats.Kard_alloc.Alloc_iface.allocations in
    [ row.spec.Spec.name;
      Text_table.fmt_int allocs;
      Text_table.fmt_int r.Machine.alloc_stats.Kard_alloc.Alloc_iface.global_allocations;
      Text_table.fmt_int row.kard.Runner.kard_unique_ro;
      Text_table.fmt_int row.kard.Runner.kard_unique_rw;
      Text_table.fmt_int row.base.Runner.report.Machine.unique_sections;
      Text_table.fmt_int row.kard.Runner.report.Machine.max_concurrent_sections;
      Text_table.fmt_int r.Machine.cs_entries;
      Text_table.fmt_int (r.Machine.cycles / 1_000_000);
      Text_table.fmt_pct (t3_alloc_pct row);
      Text_table.fmt_pct p.Spec.p_alloc_pct;
      Text_table.fmt_pct (t3_kard_pct row);
      Text_table.fmt_pct p.Spec.p_kard_pct;
      Text_table.fmt_times (1. +. (t3_tsan_pct row /. 100.));
      Text_table.fmt_times (1. +. (p.Spec.p_tsan_pct /. 100.));
      Text_table.fmt_pct (t3_rss_pct row);
      Text_table.fmt_pct p.Spec.p_rss_kard_pct;
      Text_table.fmt_rate (Runner.dtlb_rate row.kard);
      Text_table.fmt_int row.kard.Runner.report.Machine.faults ]
  in
  print_string (Text_table.render ~header (List.map cells rows));
  let benches, apps =
    List.partition (fun row -> row.spec.Spec.category <> Spec.Real_world) rows
  in
  print_geomean "PARSEC+SPLASH-2x" benches t3_kard_pct (fun r -> r.spec.Spec.paper.Spec.p_kard_pct);
  print_geomean "real-world" apps t3_kard_pct (fun r -> r.spec.Spec.paper.Spec.p_kard_pct)

(* {1 Race scenarios (Tables 1 and 4, Figures 1 and 4)} *)

type scenario_row = {
  scenario : Race_suite.t;
  kard_ilu : int;
  tsan : int;
  lockset : int;
  kard_ok : bool;
  tsan_ok : bool;
  lockset_ok : bool;
}

let scenarios ?(names = List.map (fun s -> s.Race_suite.name) Race_suite.all) ?(seed = 42) () =
  List.map
    (fun name ->
      let scenario = Race_suite.find name in
      let kard =
        Runner.run_scenario ~seed ~detector:(Runner.Kard scenario.Race_suite.config) scenario
      in
      let tsan = Runner.run_scenario ~seed ~detector:Runner.Tsan scenario in
      let lockset = Runner.run_scenario ~seed ~detector:Runner.Lockset scenario in
      let kard_ilu = List.length kard.Runner.kard_ilu_races in
      let tsan_n = List.length tsan.Runner.tsan_races in
      let lockset_n = List.length lockset.Runner.lockset_warnings in
      { scenario;
        kard_ilu;
        tsan = tsan_n;
        lockset = lockset_n;
        kard_ok = Race_suite.check scenario.Race_suite.expect_kard_ilu kard_ilu;
        tsan_ok = Race_suite.check scenario.Race_suite.expect_tsan tsan_n;
        lockset_ok = Race_suite.check scenario.Race_suite.expect_lockset lockset_n })
    names

let print_scenarios rows =
  let header = [ "scenario"; "kard"; "expect"; "tsan"; "expect"; "lockset"; "expect"; "ok" ] in
  let cells row =
    let fmt_exp e = Format.asprintf "%a" Race_suite.pp_expectation e in
    [ row.scenario.Race_suite.name;
      string_of_int row.kard_ilu;
      fmt_exp row.scenario.Race_suite.expect_kard_ilu;
      string_of_int row.tsan;
      fmt_exp row.scenario.Race_suite.expect_tsan;
      string_of_int row.lockset;
      fmt_exp row.scenario.Race_suite.expect_lockset;
      (if row.kard_ok && row.tsan_ok && row.lockset_ok then "yes" else "NO") ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 Table 5} *)

type t5_row = {
  t5_threads : int;
  total_cs : int;
  unique_cs : int;
  max_concurrent : int;
  recycling : int;
  sharing : int;
}

let table5 ?(data_keys = Kard_mpk.Pkey.data_key_count) ?(threads_list = [ 4; 8; 16; 32 ])
    ?(scale = 0.01) () =
  let spec = Registry.find "memcached" in
  let config = { Kard_core.Config.default with Kard_core.Config.data_keys } in
  List.map
    (fun threads ->
      let result = Runner.run ~threads ~scale ~detector:(Runner.Kard config) spec in
      let stats = Option.get result.Runner.kard_stats in
      { t5_threads = threads;
        total_cs = result.Runner.report.Machine.cs_entries;
        unique_cs = result.Runner.report.Machine.unique_sections;
        max_concurrent = result.Runner.report.Machine.max_concurrent_sections;
        recycling = stats.Kard_core.Detector.recycling_events;
        sharing = stats.Kard_core.Detector.sharing_events })
    threads_list

let print_table5 rows =
  let header = [ "memcached"; "t=4"; "t=8"; "t=16"; "t=32" ] in
  let line label f =
    label :: List.map (fun row -> Text_table.fmt_int (f row)) rows
  in
  let table =
    [ line "Total executed CS" (fun r -> r.total_cs);
      line "Uniquely executed CS" (fun r -> r.unique_cs);
      line "Maximum concurrent CS" (fun r -> r.max_concurrent);
      line "Key recycling events" (fun r -> r.recycling);
      line "Key sharing events" (fun r -> r.sharing) ]
  in
  let header =
    match rows with
    | _ when List.length rows = 4 -> header
    | _ -> "memcached" :: List.map (fun r -> Printf.sprintf "t=%d" r.t5_threads) rows
  in
  print_string (Text_table.render ~header table)

(* {1 Table 6} *)

type t6_row = {
  app : string;
  kard_races : int;
  tsan_ilu : int;
  tsan_non_ilu : int;
  paper_kard : int;
  paper_tsan_ilu : int;
  paper_tsan_non_ilu : int;
}

(* The paper counts racy variables, not conflicting thread pairs:
   collapse records to distinct objects (Kard) / granules (TSan). *)
let distinct_by f items =
  let seen = Hashtbl.create 16 in
  List.iter (fun item -> Hashtbl.replace seen (f item) ()) items;
  Hashtbl.length seen

let table6 ?(scale = 0.01) () =
  let paper = [ ("aget", 1, 1, 0); ("memcached", 3, 3, 0); ("nginx", 1, 1, 0); ("pigz", 1, 0, 0) ] in
  List.map
    (fun (name, pk, pti, ptn) ->
      let spec = Registry.find name in
      let kard = Runner.run ~scale ~detector:(Runner.Kard Kard_core.Config.default) spec in
      let tsan = Runner.run ~scale ~detector:Runner.Tsan spec in
      let granule (r : Kard_baselines.Tsan.race) = r.Kard_baselines.Tsan.addr lsr 3 in
      let tsan_ilu = distinct_by granule tsan.Runner.tsan_ilu_races in
      { app = name;
        kard_races =
          distinct_by (fun (r : Kard_core.Race_record.t) -> r.Kard_core.Race_record.obj_id)
            kard.Runner.kard_races;
        tsan_ilu;
        tsan_non_ilu = distinct_by granule tsan.Runner.tsan_races - tsan_ilu;
        paper_kard = pk;
        paper_tsan_ilu = pti;
        paper_tsan_non_ilu = ptn })
    paper

let print_table6 rows =
  let header =
    [ "application"; "kard"; "(paper)"; "tsan ILU"; "(paper)"; "tsan non-ILU"; "(paper)" ]
  in
  let cells row =
    [ row.app;
      string_of_int row.kard_races;
      string_of_int row.paper_kard;
      string_of_int row.tsan_ilu;
      string_of_int row.paper_tsan_ilu;
      string_of_int row.tsan_non_ilu;
      string_of_int row.paper_tsan_non_ilu ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 Figure 5} *)

type f5_row = {
  f5_name : string;
  by_threads : (int * float) list;
}

let figure5 ?(threads_list = [ 8; 16; 32 ]) ?(scale = 0.01) ?(specs = Registry.benchmarks) () =
  List.map
    (fun spec ->
      let by_threads =
        List.map
          (fun threads ->
            let base = Runner.run ~threads ~scale ~detector:Runner.Baseline spec in
            let kard =
              Runner.run ~threads ~scale ~detector:(Runner.Kard Kard_core.Config.default) spec
            in
            (threads, Runner.overhead_pct ~baseline:base kard))
          threads_list
      in
      { f5_name = spec.Spec.name; by_threads })
    specs

let print_figure5 rows =
  match rows with
  | [] -> ()
  | first :: _ ->
    let threads_list = List.map fst first.by_threads in
    let header = "benchmark" :: List.map (fun t -> Printf.sprintf "t=%d" t) threads_list in
    let cells row =
      row.f5_name :: List.map (fun (_, p) -> Text_table.fmt_pct p) row.by_threads
    in
    print_string (Text_table.render ~header (List.map cells rows));
    List.iter
      (fun t ->
        let pcts = List.map (fun row -> List.assoc t row.by_threads) rows in
        Printf.printf "geomean t=%d: %s\n" t
          (Text_table.fmt_pct (Stats.geomean_overhead_pct pcts)))
      threads_list;
    print_newline ();
    print_string
      (Chart.grouped
         ~series:(List.map (fun t -> Printf.sprintf "t=%d" t) threads_list)
         (List.map (fun row -> (row.f5_name, List.map snd row.by_threads)) rows))

(* {1 NGINX sweep} *)

type nginx_row = { file_kb : int; kard_pct : float }

let nginx_sweep ?(sizes = [ 128; 256; 512; 1024 ]) ?(scale = 0.01) () =
  List.map
    (fun file_kb ->
      let spec = Kard_workloads.Apps.nginx_with_file ~file_kb in
      let base = Runner.run ~scale ~detector:Runner.Baseline spec in
      let kard = Runner.run ~scale ~detector:(Runner.Kard Kard_core.Config.default) spec in
      { file_kb; kard_pct = Runner.overhead_pct ~baseline:base kard })
    sizes

let print_nginx_sweep rows =
  let header = [ "file size"; "kard overhead" ] in
  let cells row = [ Printf.sprintf "%d kB" row.file_kb; Text_table.fmt_pct row.kard_pct ] in
  print_string (Text_table.render ~header (List.map cells rows));
  print_string
    (Chart.bars ~unit_label:"%"
       (List.map (fun row -> (Printf.sprintf "%d kB" row.file_kb, row.kard_pct)) rows));
  print_string "paper: 128 kB -> +58.7%, 1 MB -> +8.8% (average +15.1%)\n"

(* {1 Figure 2} *)

type f2_stats = {
  objects : int;
  object_bytes : int;
  virtual_pages : int;
  physical_pages : int;
  file_bytes : int;
}

let figure2 ?(objects = 128) ?(object_bytes = 32) () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Kard_alloc.Meta_table.create () in
  let upa =
    Kard_alloc.Unique_page_alloc.create aspace ~meta ~cost:Kard_mpk.Cost_model.default ()
  in
  let iface = Kard_alloc.Unique_page_alloc.iface upa in
  for i = 0 to objects - 1 do
    let (_ : Kard_alloc.Obj_meta.t * int) = iface.Kard_alloc.Alloc_iface.alloc ~site:i object_bytes in
    ()
  done;
  { objects;
    object_bytes;
    virtual_pages = Kard_vm.Address_space.mapped_pages aspace;
    physical_pages = Kard_vm.Phys_mem.resident_frames phys;
    file_bytes = Kard_alloc.Unique_page_alloc.file_bytes upa }

let print_figure2 stats =
  Printf.printf
    "consolidated unique page allocation: %d objects of %d B -> %d virtual pages backed by %d \
     physical pages (in-memory file: %d B)\n"
    stats.objects stats.object_bytes stats.virtual_pages stats.physical_pages stats.file_bytes

(* {1 Memory consumption breakdown (section 7.5)} *)

type mem_row = {
  mem_name : string;
  base_rss : int;
  kard_rss : int;
  kard_data : int;
  kard_page_tables : int;
  kard_metadata : int;
  wasted : int;
}

let memory ?(threads = 4) ?(scale = 0.01) ?(specs = Registry.all) () =
  List.map
    (fun spec ->
      let base = Runner.run ~threads ~scale ~detector:Runner.Baseline spec in
      let kard = Runner.run ~threads ~scale ~detector:(Runner.Kard Kard_core.Config.default) spec in
      let kr = kard.Runner.report in
      let alloc_stats = kr.Machine.alloc_stats in
      { mem_name = spec.Spec.name;
        base_rss = base.Runner.report.Machine.rss_bytes;
        kard_rss = kr.Machine.rss_bytes;
        kard_data = kr.Machine.data_rss_bytes;
        kard_page_tables = kr.Machine.page_table_bytes;
        kard_metadata = kr.Machine.detector_metadata_bytes;
        wasted =
          alloc_stats.Kard_alloc.Alloc_iface.bytes_reserved
          - alloc_stats.Kard_alloc.Alloc_iface.bytes_requested })
    specs

let print_memory rows =
  let header =
    [ "workload"; "base KiB"; "kard KiB"; "overhead"; "data KiB"; "pt KiB"; "meta KiB";
      "waste KiB" ]
  in
  let cells row =
    [ row.mem_name;
      Text_table.fmt_kb row.base_rss;
      Text_table.fmt_kb row.kard_rss;
      Text_table.fmt_pct (Stats.pct (float_of_int row.kard_rss) (float_of_int row.base_rss));
      Text_table.fmt_kb row.kard_data;
      Text_table.fmt_kb row.kard_page_tables;
      Text_table.fmt_kb row.kard_metadata;
      Text_table.fmt_kb row.wasted ]
  in
  print_string (Text_table.render ~header (List.map cells rows));
  let pcts =
    List.map
      (fun row -> Stats.pct (float_of_int row.kard_rss) (float_of_int row.base_rss))
      rows
  in
  Printf.printf "RSS overhead geomean: %s (paper: +68.0%% benchmarks, +85.6%% real-world)\n"
    (Text_table.fmt_pct (Stats.geomean_overhead_pct pcts))

(* {1 Simulator throughput} *)

type tp_row = {
  tp_threads : int;
  tp_detector : string;
  tp_steps : int;
  tp_sim_cycles : int;
  tp_host_seconds : float;
  tp_ops_per_sec : float;
}

let tp_detectors = [ Runner.Baseline; Runner.Kard Kard_core.Config.default ]

let throughput ?(spec = Registry.find "memcached")
    ?(threads_list = [ 1; 2; 4; 8; 16; 32; 64 ]) ?(scale = 0.05) ?(seed = 42) () =
  (* Warm up allocators/caches once so the first timed cell is not
     charged for image start-up. *)
  ignore (Runner.run ~threads:2 ~scale:(scale /. 4.) ~seed ~detector:Runner.Baseline spec);
  List.concat_map
    (fun threads ->
      List.map
        (fun detector ->
          let t0 = Unix.gettimeofday () in
          let r = Runner.run ~threads ~scale ~seed ~detector spec in
          let elapsed = Unix.gettimeofday () -. t0 in
          let steps = r.Runner.report.Machine.steps in
          { tp_threads = threads;
            tp_detector = r.Runner.detector_name;
            tp_steps = steps;
            tp_sim_cycles = r.Runner.report.Machine.cycles;
            tp_host_seconds = elapsed;
            tp_ops_per_sec =
              (if elapsed > 0. then float_of_int steps /. elapsed else 0.) })
        tp_detectors)
    threads_list

let print_throughput rows =
  let header = [ "threads"; "detector"; "steps"; "sim cycles"; "host s"; "ops/s" ] in
  let cells row =
    [ string_of_int row.tp_threads;
      row.tp_detector;
      Text_table.fmt_int row.tp_steps;
      Text_table.fmt_int row.tp_sim_cycles;
      Printf.sprintf "%.3f" row.tp_host_seconds;
      Text_table.fmt_int (int_of_float row.tp_ops_per_sec) ]
  in
  print_string (Text_table.render ~header (List.map cells rows))

(* {1 MPK micro} *)

let print_micro () =
  let c = Kard_mpk.Cost_model.default in
  let header = [ "operation"; "modeled cycles"; "paper/literature" ] in
  let rows =
    [ [ "RDPKRU"; string_of_int c.Kard_mpk.Cost_model.rdpkru; "<1 cycle (libmpk)" ];
      [ "WRPKRU"; string_of_int c.Kard_mpk.Cost_model.wrpkru; "~20 cycles (libmpk)" ];
      [ "pkey_mprotect";
        Printf.sprintf "%d + %d/page" c.Kard_mpk.Cost_model.pkey_mprotect_base
          c.Kard_mpk.Cost_model.pkey_mprotect_page;
        "~1 us syscall" ];
      [ "#GP fault round trip";
        string_of_int c.Kard_mpk.Cost_model.fault_roundtrip;
        "24,000 cycles (section 5.5)" ] ]
  in
  print_string (Text_table.render ~header rows)
