(** A deterministic Domain-based worker pool, and the run plans it
    executes.

    Workers pull items from a shared queue and execute them {e out of
    order}, but results are merged back in {e submission order}, and a
    seeded simulator run is a pure function of its {!Job.t} inputs —
    so a plan executed at [~jobs:1] and at [~jobs:64] produces
    bit-identical merged output: every table cell, JSON report, race
    list and exported trace.  That determinism contract is the
    refactor's correctness oracle (the parallel-vs-serial tests in
    [test/test_pool.ml] assert it byte-for-byte) and is documented in
    DESIGN.md §7.

    [~jobs] defaults to {!Defaults.jobs} ([$KARD_JOBS] or
    [Domain.recommended_domain_count ()]).  [~jobs:1] (or a singleton
    input) never spawns a domain: it degenerates to the plain serial
    path. *)

exception Job_failed of { index : int; label : string; message : string }
(** A worker crash surfaces as a job error naming the submission
    index and the job: the pool always attempts {e every} item, then
    re-raises the failure with the {e smallest} index — so which error
    is reported does not depend on scheduling.  [message] is the
    original exception (with backtrace when available). *)

val resolve_jobs : int option -> int
(** [resolve_jobs None] is {!Defaults.jobs}[ ()]; [Some n] is
    [max 1 n]. *)

val map : ?jobs:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items]: apply [f] to every item on the pool; the result
    list is in submission order regardless of completion order.
    [label] names items in {!Job_failed} errors (default: the
    index). *)

val run_jobs : ?jobs:int -> Job.t list -> Runner.result list
(** {!map} specialised to jobs, labelled with {!Job.describe}. *)

type gc_stats = { minor_words : float; promoted_words : float }
(** Allocation totals summed over every item of a {!map_gc}, measured
    inside whichever domain executed each item. *)

val map_gc :
  ?jobs:int -> ?label:(int -> 'a -> string) -> ('a -> 'b) -> 'a list -> 'b list * gc_stats
(** Like {!map}, but also aggregates GC counters across {e all}
    executing domains: [Gc.quick_stat] is per-domain, so measuring a
    parallel map from the submitting domain alone under-counts worker
    allocation.  The mapped results are unchanged (and still
    submission-ordered). *)

val run_jobs_gc : ?jobs:int -> Job.t list -> Runner.result list * gc_stats
(** {!map_gc} specialised to jobs, labelled with {!Job.describe}. *)

(** {1 Plans}

    A plan is a list of jobs plus a merge function over their results
    (in submission order).  Experiment drivers are plan-{e builders}:
    they describe the runs as data, and the pool decides how to
    execute them. *)

type 'a plan = {
  jobs : Job.t list;
  merge : Runner.result list -> 'a;
}

val plan : Job.t list -> merge:(Runner.result list -> 'a) -> 'a plan

val execute : ?jobs:int -> 'a plan -> 'a
(** Run the plan's jobs on the pool and merge in submission order. *)

val chunks : int -> 'b list -> 'b list list
(** [chunks k l] splits [l] into consecutive groups of [k] (the last
    group may be shorter).  Merge helper for plan-builders that submit
    a fixed number of jobs per row.  @raise Invalid_argument if
    [k <= 0]. *)
