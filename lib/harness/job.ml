type trace_request = {
  capacity : int;
  steps : bool;
}

let trace_request ?(capacity = 65536) ?(steps = false) () = { capacity; steps }

type target =
  | Spec of Spec_alias.t
  | Scenario of Kard_workloads.Race_suite.t

type t = {
  target : target;
  detector : Runner.detector;
  threads : int option;
  scale : float;
  seed : int;
  override_config : Kard_core.Config.t option;
  trace : trace_request option;
  shards : int option;
}

let spec ?threads ?(scale = Defaults.scale) ?(seed = Defaults.seed) ?trace ?shards detector s =
  { target = Spec s; detector; threads; scale; seed; override_config = None; trace; shards }

let scenario ?(seed = Defaults.seed) ?override_config ?trace ?shards detector s =
  { target = Scenario s;
    detector;
    threads = None;
    scale = 1.0;
    seed;
    override_config;
    trace;
    shards }

let describe t =
  let name =
    match t.target with
    | Spec s -> s.Kard_workloads.Spec.name
    | Scenario s -> s.Kard_workloads.Race_suite.name
  in
  Printf.sprintf "%s/%s/seed=%d" name (Runner.detector_name t.detector) t.seed

let run t =
  let trace =
    Option.map
      (fun r -> Kard_obs.Trace.create ~capacity:r.capacity ~steps:r.steps ())
      t.trace
  in
  match t.target with
  | Spec s ->
    Runner.run ?trace ?shards:t.shards ?threads:t.threads ~scale:t.scale ~seed:t.seed
      ~detector:t.detector s
  | Scenario s ->
    Runner.run_scenario ?trace ?shards:t.shards ~seed:t.seed ?override_config:t.override_config
      ~detector:t.detector s
