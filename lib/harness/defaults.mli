(** The single home of the run defaults that every layer above the
    runner shares.

    Before this module existed, scale 0.01 / seed 42 / seeds 1..20
    were re-stated independently by [Runner], [Explorer], the bench
    driver and the CLI, and could silently drift apart.  Plan-builders
    ({!Experiments}, {!Explorer}), the executables and the docs all
    read the values from here. *)

val scale : float
(** Default workload scale factor: [0.01] (1/100 of the paper's
    iteration and mass-object counts; see DESIGN.md on scaling). *)

val seed : int
(** Default scheduler seed: [42]. *)

val table_threads : int
(** Default thread count for Table 3-style experiments: [4]. *)

val explorer_scale : float
(** Default scale for full-workload seed sweeps: [0.005]. *)

val explorer_seeds : int list
(** The canonical schedule-exploration sweep: seeds [1..20]. *)

val throughput_scale : float
(** Default scale of the tracked throughput benchmark: [0.05]. *)

val serve_scale : float
(** Default scale of the serve sweep: [0.05] (1000 requests per
    sweep point at the full-size request count of 20000). *)

val serve_slo : int
(** Default latency SLO for goodput: p99 <= [200_000] simulated
    cycles, roughly 3x the unloaded median nginx service latency. *)

val throughput_out : string
(** Tracked output of [kard bench -e throughput]: ["BENCH_pr4.json"]. *)

val parallel_out : string
(** Tracked output of [kard bench -e parallel]: ["BENCH_pr3.json"]. *)

val serve_out : string
(** Tracked output of [kard bench -e serve] and [kard serve-sweep]:
    ["BENCH_pr6.json"]. *)

val shard_out : string
(** Tracked output of [kard bench -e shard]: ["BENCH_pr7.json"]. *)

val keys_out : string
(** Tracked output of [kard bench -e keys] (the key-pressure sweep):
    ["BENCH_pr8.json"]. *)

val sampling_out : string
(** Tracked output of [kard bench -e sampling] (the sampling sweep:
    detection probability / latency vs rate, plus sampled-kard serve
    goodput): ["BENCH_pr9.json"]. *)

val record_out : string
(** Tracked output of [kard bench --only record] (recording overhead
    and log bytes/step of the record/replay layer):
    ["BENCH_pr10.json"].  CLI help strings must render this value —
    not a hardcoded filename — so the tracked name can move without
    leaving stale references. *)

val jobs_env : string
(** Name of the environment variable overriding the worker count:
    ["KARD_JOBS"]. *)

val jobs : unit -> int
(** Worker-domain count for plan execution: [$KARD_JOBS] when set to a
    positive integer, otherwise [Domain.recommended_domain_count ()].
    A malformed or non-positive override is ignored. *)

val shards_env : string
(** Name of the environment variable overriding the machine shard
    count: ["KARD_SHARDS"]. *)

val shards : unit -> int
(** Shard count for single-machine execution: [$KARD_SHARDS] when set
    to a positive integer, otherwise [1].  Results are byte-identical
    at any value (DESIGN.md §10), so overriding is always safe; >= 2
    additionally turns on the burst engine where eligible. *)

val vkeys_env : string
(** Name of the environment variable overriding the virtual-key pool
    size: ["KARD_VKEYS"]. *)

val vkeys : unit -> int
(** Virtual-key pool for default-config Kard runs: [$KARD_VKEYS] when
    set to a non-negative integer, otherwise [0] (identity mode —
    byte-identical to the pre-vkey detector).  A malformed override is
    ignored. *)

val sampling_env : string
(** Name of the environment variable overriding the sampling rate:
    ["KARD_SAMPLING"]. *)

val sampling : unit -> float
(** Sampling rate for default-config Kard runs: [$KARD_SAMPLING] when
    set to a float in (0, 1], otherwise [1.0] (full Kard —
    byte-identical to the unsampled detector).  A malformed or
    out-of-range override is ignored, never clamped. *)

val kard_config : unit -> Kard_core.Config.t
(** [Config.default] with {!vkeys} and {!sampling} applied — what
    every "default kard" surface (CLI, bench driver, test harness)
    should construct, so the whole suite can be swept under virtual
    keys or a sampling rate from the environment. *)
