(** Schedule exploration.

    ILU detection is schedule-sensitive (section 3.1): a race
    manifests only when the threads interleave the right way, and the
    paper's mitigation is "multiple runs".  The explorer sweeps
    scheduler seeds and reports how often each detector observes the
    race — an estimate of per-run detection probability.

    Sweeps are plan-builders over {!Pool}: each seed is one job, and
    outcomes are merged back in seed order, so a summary is identical
    at [~jobs:1] and [~jobs:N]. *)

type outcome = {
  seed : int;
  kard_ilu : int;
  records : int;
}

type summary = {
  runs : int;
  detecting_runs : int;       (** Runs with at least one ILU record. *)
  detection_rate : float;
  min_races : int;
  max_races : int;
  outcomes : outcome list;    (** In seed order. *)
}

val explore_scenario_plan :
  ?seeds:int list -> ?config:Kard_core.Config.t -> Kard_workloads.Race_suite.t ->
  summary Pool.plan

val explore_scenario :
  ?jobs:int -> ?seeds:int list -> ?config:Kard_core.Config.t -> Kard_workloads.Race_suite.t ->
  summary
(** Default: {!Defaults.explorer_seeds} (1..20) and the scenario's own
    configuration. *)

val explore_spec_plan :
  ?seeds:int list -> ?scale:float -> ?threads:int -> Spec_alias.t -> summary Pool.plan

val explore_spec :
  ?jobs:int -> ?seeds:int list -> ?scale:float -> ?threads:int -> Spec_alias.t -> summary
(** Sweep a full workload model (e.g. aget) across schedules, at
    {!Defaults.explorer_scale} by default. *)

val print_summary : name:string -> summary -> unit
