module Cost_model = Kard_mpk.Cost_model
module Hooks = Kard_sched.Hooks
module Int_set = Set.Make (Int)

type state =
  | Virgin
  | Exclusive of int
  | Shared
  | Shared_modified

type warning = {
  addr : Kard_mpk.Page.addr;
  thread : int;
  access : [ `Read | `Write ];
}

type cell = {
  mutable st : state;
  mutable candidates : Int_set.t;
  mutable reported : bool;
}

type t = {
  env : Hooks.env;
  cells : (int, cell) Hashtbl.t; (* 8-byte granule *)
  held : (int, Int_set.t) Hashtbl.t;
  mutable warnings : warning list;
}

let create env =
  { env; cells = Hashtbl.create 4096; held = Hashtbl.create 16; warnings = [] }

let held_of t tid = Option.value ~default:Int_set.empty (Hashtbl.find_opt t.held tid)

let cell_of t addr =
  let granule = addr lsr 3 in
  match Hashtbl.find_opt t.cells granule with
  | Some cell -> cell
  | None ->
    let cell = { st = Virgin; candidates = Int_set.empty; reported = false } in
    Hashtbl.replace t.cells granule cell;
    cell

let warn t cell ~addr ~tid ~access =
  if not cell.reported then begin
    cell.reported <- true;
    t.warnings <- { addr; thread = tid; access } :: t.warnings
  end

(* The Eraser state machine: first thread owns the location; second
   thread moves it to Shared (reads) or Shared-modified (writes);
   candidate locksets are only refined and checked once shared. *)
let on_access t ~tid ~addr access =
  let cell = cell_of t addr in
  let locks = held_of t tid in
  (match cell.st, access with
  | Virgin, (`Read | `Write) ->
    cell.st <- Exclusive tid;
    cell.candidates <- locks
  | Exclusive owner, (`Read | `Write) when owner = tid -> cell.candidates <- locks
  | Exclusive _, `Read ->
    cell.st <- Shared;
    cell.candidates <- Int_set.inter cell.candidates locks
  | Exclusive _, `Write ->
    cell.st <- Shared_modified;
    cell.candidates <- Int_set.inter cell.candidates locks;
    if Int_set.is_empty cell.candidates then warn t cell ~addr ~tid ~access
  | Shared, `Read -> cell.candidates <- Int_set.inter cell.candidates locks
  | Shared, `Write ->
    cell.st <- Shared_modified;
    cell.candidates <- Int_set.inter cell.candidates locks;
    if Int_set.is_empty cell.candidates then warn t cell ~addr ~tid ~access
  | Shared_modified, (`Read | `Write) ->
    cell.candidates <- Int_set.inter cell.candidates locks;
    if Int_set.is_empty cell.candidates then warn t cell ~addr ~tid ~access);
  2 * t.env.Hooks.cost.Cost_model.tsan_access

let max_block_granules = 64

let on_block t ~tid (b : Kard_sched.Op.block) access =
  let granules = max 1 (min (b.Kard_sched.Op.span / 8) b.Kard_sched.Op.count) in
  let sampled = min granules max_block_granules in
  let step = max 8 (b.Kard_sched.Op.span / sampled / 8 * 8) in
  let rec loop i =
    if i < sampled then begin
      ignore (on_access t ~tid ~addr:(b.Kard_sched.Op.base + (i * step)) access : int);
      loop (i + 1)
    end
  in
  loop 0;
  2 * b.Kard_sched.Op.count * t.env.Hooks.cost.Cost_model.tsan_access

(* Freed memory restarts the state machine when its address is later
   reused (as Eraser's malloc interposition achieves). *)
let clear_range t (meta : Kard_alloc.Obj_meta.t) =
  let granules = max 1 ((meta.Kard_alloc.Obj_meta.reserved + 7) / 8) in
  for i = 0 to granules - 1 do
    Hashtbl.remove t.cells ((meta.Kard_alloc.Obj_meta.base + (i * 8)) lsr 3)
  done;
  8

let hooks t =
  let null = Hooks.null ~name:"eraser-lockset" in
  { null with
    Hooks.pure_access = false;
    on_read = (fun ~tid ~addr -> on_access t ~tid ~addr `Read);
    on_write = (fun ~tid ~addr -> on_access t ~tid ~addr `Write);
    on_read_block = (fun ~tid ~block -> on_block t ~tid block `Read);
    on_write_block = (fun ~tid ~block -> on_block t ~tid block `Write);
    on_lock =
      (fun ~tid ~lock ~site:_ ->
        Hashtbl.replace t.held tid (Int_set.add lock (held_of t tid));
        t.env.Hooks.cost.Cost_model.atomic_op);
    on_unlock =
      (fun ~tid ~lock ->
        Hashtbl.replace t.held tid (Int_set.remove lock (held_of t tid));
        t.env.Hooks.cost.Cost_model.atomic_op);
    on_free = (fun ~tid:_ meta -> clear_range t meta);
    metadata_bytes = (fun () -> 48 * Hashtbl.length t.cells) }

let warnings t = List.rev t.warnings
let state_of t addr = (cell_of t addr).st
let candidate_lockset t addr = Int_set.elements (cell_of t addr).candidates

let make ~cell env =
  let t = create env in
  cell := Some t;
  hooks t
