module Cost_model = Kard_mpk.Cost_model
module Hooks = Kard_sched.Hooks

type race = {
  addr : Kard_mpk.Page.addr;
  thread : int;
  access : [ `Read | `Write ];
  prior_thread : int;
  prior_access : [ `Read | `Write ];
  prior_locked : bool;
  locked : bool;
}

type t = {
  env : Hooks.env;
  max_threads : int;
  clocks : (int, Vector_clock.t) Hashtbl.t;       (* C(t) *)
  lock_clocks : (int, Vector_clock.t) Hashtbl.t;  (* L(m) *)
  shadow : Shadow_memory.t;
  locks_held : (int, int) Hashtbl.t;              (* tid -> lock count *)
  (* Whether each epoch was produced under a lock, for the ILU split:
     (tid, clock) -> held a lock. *)
  epoch_locked : (int * int, bool) Hashtbl.t;
  mutable races : race list;
  seen : (int * int * int, unit) Hashtbl.t;       (* dedupe: granule x tids *)
}

let create ?(max_threads = 64) env =
  { env;
    max_threads;
    clocks = Hashtbl.create 16;
    lock_clocks = Hashtbl.create 16;
    shadow = Shadow_memory.create ();
    locks_held = Hashtbl.create 16;
    epoch_locked = Hashtbl.create 4096;
    races = [];
    seen = Hashtbl.create 64 }

let clock_of t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some vc -> vc
  | None ->
    let vc = Vector_clock.create ~threads:t.max_threads in
    Vector_clock.tick vc tid;
    Hashtbl.replace t.clocks tid vc;
    vc

let lock_clock t lock =
  match Hashtbl.find_opt t.lock_clocks lock with
  | Some vc -> vc
  | None ->
    let vc = Vector_clock.create ~threads:t.max_threads in
    Hashtbl.replace t.lock_clocks lock vc;
    vc

let holds_lock t tid = Option.value ~default:0 (Hashtbl.find_opt t.locks_held tid) > 0

let epoch_of t tid =
  let vc = clock_of t tid in
  { Shadow_memory.tid; clock = Vector_clock.get vc tid }

let note_epoch t tid =
  let e = epoch_of t tid in
  Hashtbl.replace t.epoch_locked (e.Shadow_memory.tid, e.Shadow_memory.clock) (holds_lock t tid);
  e

let epoch_was_locked t (tid, clock) =
  Option.value ~default:false (Hashtbl.find_opt t.epoch_locked (tid, clock))

(* e happened-before t's current state? *)
let ordered t (etid, eclock) ~tid = eclock <= Vector_clock.get (clock_of t tid) etid

let report t ~addr ~tid ~access ~prior ~prior_access =
  let ptid, pclock = prior in
  let key = (addr lsr 3, min tid ptid, max tid ptid) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.races <-
      { addr;
        thread = tid;
        access;
        prior_thread = ptid;
        prior_access;
        prior_locked = epoch_was_locked t (ptid, pclock);
        locked = holds_lock t tid }
      :: t.races
  end

let cost_access t = t.env.Hooks.cost.Cost_model.tsan_access

let on_access t ~tid ~addr access =
  let cell = Shadow_memory.cell_of t.shadow addr in
  (match cell.Shadow_memory.write with
  | Some e
    when e.Shadow_memory.tid <> tid
         && not (ordered t (e.Shadow_memory.tid, e.Shadow_memory.clock) ~tid) ->
    report t ~addr ~tid ~access ~prior:(e.Shadow_memory.tid, e.Shadow_memory.clock)
      ~prior_access:`Write
  | Some _ | None -> ());
  (match access with
  | `Read ->
    let e = note_epoch t tid in
    cell.Shadow_memory.reads <-
      (tid, e.Shadow_memory.clock) :: List.remove_assoc tid cell.Shadow_memory.reads
  | `Write ->
    List.iter
      (fun (rtid, rclock) ->
        if rtid <> tid && not (ordered t (rtid, rclock) ~tid) then
          report t ~addr ~tid ~access:`Write ~prior:(rtid, rclock) ~prior_access:`Read)
      cell.Shadow_memory.reads;
    let e = note_epoch t tid in
    cell.Shadow_memory.write <- Some e;
    cell.Shadow_memory.reads <- []);
  cost_access t

(* Block instrumentation: charge for every access, update shadow for a
   bounded sample of granules (private sweeps dominate block traffic;
   shared objects are accessed through individual ops). *)
let max_block_granules = 64

let on_block t ~tid (b : Kard_sched.Op.block) access =
  let granules = max 1 (min (b.Kard_sched.Op.span / 8) b.Kard_sched.Op.count) in
  let sampled = min granules max_block_granules in
  let step = max 8 (b.Kard_sched.Op.span / sampled / 8 * 8) in
  let rec loop i =
    if i < sampled then begin
      let addr = b.Kard_sched.Op.base + (i * step) in
      ignore (on_access t ~tid ~addr access : int);
      loop (i + 1)
    end
  in
  loop 0;
  b.Kard_sched.Op.count * cost_access t

let on_lock t ~tid ~lock =
  Hashtbl.replace t.locks_held tid (Option.value ~default:0 (Hashtbl.find_opt t.locks_held tid) + 1);
  let c = clock_of t tid in
  Vector_clock.join ~into:c (lock_clock t lock);
  t.env.Hooks.cost.Cost_model.tsan_sync

let on_unlock t ~tid ~lock =
  Hashtbl.replace t.locks_held tid (Option.value ~default:0 (Hashtbl.find_opt t.locks_held tid) - 1);
  let c = clock_of t tid in
  let l = lock_clock t lock in
  Vector_clock.join ~into:l c;
  Hashtbl.replace t.lock_clocks lock (Vector_clock.copy c);
  Vector_clock.tick c tid;
  t.env.Hooks.cost.Cost_model.tsan_sync

(* Shadow state is invalidated when memory is freed, as real TSan
   does: reused heap addresses must not inherit another thread's
   epochs, or every malloc/free cycle looks like a race.  Fresh
   allocations need no clearing — their shadow was cleared when the
   address was last freed (or never existed). *)
let clear_range t (meta : Kard_alloc.Obj_meta.t) =
  let granules = max 1 ((meta.Kard_alloc.Obj_meta.reserved + 7) / 8) in
  let first = meta.Kard_alloc.Obj_meta.base in
  for i = 0 to granules - 1 do
    Shadow_memory.clear t.shadow (first + (i * 8))
  done;
  8 (* a few cycles of allocator-hook bookkeeping *)

let metadata_bytes t =
  Shadow_memory.bytes t.shadow
  + (Hashtbl.length t.clocks * 8 * t.max_threads)
  + (Hashtbl.length t.lock_clocks * 8 * t.max_threads)
  + (Hashtbl.length t.epoch_locked * 16)

let hooks t =
  let null = Hooks.null ~name:"tsan" in
  { null with
    Hooks.pure_access = false;
    on_read = (fun ~tid ~addr -> on_access t ~tid ~addr `Read);
    on_write = (fun ~tid ~addr -> on_access t ~tid ~addr `Write);
    on_read_block = (fun ~tid ~block -> on_block t ~tid block `Read);
    on_write_block = (fun ~tid ~block -> on_block t ~tid block `Write);
    on_lock = (fun ~tid ~lock ~site:_ -> on_lock t ~tid ~lock);
    on_unlock = (fun ~tid ~lock -> on_unlock t ~tid ~lock);
    on_free = (fun ~tid:_ meta -> clear_range t meta);
    metadata_bytes = (fun () -> metadata_bytes t) }

let races t = List.rev t.races
let ilu_races t = List.filter (fun r -> r.locked || r.prior_locked) (races t)
let shadow_cells t = Shadow_memory.cells t.shadow

let make ?max_threads ~cell env =
  let t = create ?max_threads env in
  cell := Some t;
  hooks t
