module Page = Kard_mpk.Page
module Cost_model = Kard_mpk.Cost_model
module Address_space = Kard_vm.Address_space
module Memfd = Kard_vm.Memfd

type recycled_mapping = {
  r_base : Page.addr;
  r_reserved : int;
  r_pages : int;
}

type t = {
  aspace : Address_space.t;
  meta : Meta_table.t;
  cost : Cost_model.t;
  trace : Kard_obs.Trace.sink;
  granule : int;
  recycle_virtual_pages : bool;
  memfd : Memfd.t;
  mutable cursor : int; (* next free byte offset in the memfd *)
  recycle_lists : (int, recycled_mapping list) Hashtbl.t; (* keyed by reserved size *)
  mutable next_id : int;
  mutable stats : Alloc_iface.stats;
  mutable live_wasted : int;
}

let create ?(granule = 32) ?(recycle_virtual_pages = false) ?trace aspace ~meta ~cost () =
  if granule <= 0 || Page.size mod granule <> 0 then
    invalid_arg "Unique_page_alloc.create: granule must divide the page size";
  { aspace;
    meta;
    cost;
    trace;
    granule;
    recycle_virtual_pages;
    memfd = Memfd.create (Address_space.phys aspace) ~name:"kard-heap";
    cursor = 0;
    recycle_lists = Hashtbl.create 16;
    next_id = 0;
    stats = Alloc_iface.zero_stats;
    live_wasted = 0 }

let granule t = t.granule
let file_bytes t = Memfd.size t.memfd
let wasted_bytes t = t.live_wasted

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let round_up_granule t size = (size + t.granule - 1) / t.granule * t.granule

let bump_stats t f = t.stats <- f t.stats

(* Allocator work has no owning simulated thread; its events land on
   the synthetic "runtime" track (tid -1). *)
let emit_alloc t (meta : Obj_meta.t) alloc =
  match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1)
      (Kard_obs.Event.Alloc { obj_id = meta.Obj_meta.id; size = meta.Obj_meta.size; alloc });
    Kard_obs.Trace.incr t.trace
      (match alloc with
      | Kard_obs.Event.Fresh -> "alloc.fresh"
      | Kard_obs.Event.Recycled -> "alloc.recycled"
      | Kard_obs.Event.Global -> "alloc.global")

(* Grow the memfd so that [cursor + reserved) is covered; returns the
   cycle cost (zero when no growth was needed). *)
let ensure_file_covers t upto =
  if upto > Memfd.size t.memfd then begin
    (* Grow in 16-page steps to amortize ftruncate calls, like the
       paper's runtime grows the file according to demand. *)
    let wanted = max upto (Memfd.size t.memfd + (16 * Page.size)) in
    Memfd.ftruncate t.memfd wanted;
    bump_stats t (fun s -> { s with ftruncate_calls = s.ftruncate_calls + 1 });
    t.cost.Cost_model.ftruncate
  end
  else 0

let take_recycled t reserved =
  if not t.recycle_virtual_pages then None
  else
    match Hashtbl.find_opt t.recycle_lists reserved with
    | Some (m :: rest) ->
      Hashtbl.replace t.recycle_lists reserved rest;
      Some m
    | Some [] | None -> None

let push_recycled t (meta : Obj_meta.t) =
  let m = { r_base = meta.base; r_reserved = meta.reserved; r_pages = meta.pages } in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.recycle_lists m.r_reserved) in
  Hashtbl.replace t.recycle_lists m.r_reserved (m :: existing)

let alloc t ~site size =
  if size <= 0 then invalid_arg "Unique_page_alloc.alloc: size must be positive";
  let reserved = round_up_granule t size in
  bump_stats t (fun s ->
      { s with
        allocations = s.allocations + 1;
        bytes_requested = s.bytes_requested + size;
        bytes_reserved = s.bytes_reserved + reserved });
  t.live_wasted <- t.live_wasted + (reserved - size);
  match take_recycled t reserved with
  | Some m ->
    bump_stats t (fun s -> { s with recycled = s.recycled + 1 });
    let meta =
      { Obj_meta.id = fresh_id t;
        base = m.r_base;
        size;
        reserved;
        kind = Obj_meta.Heap site;
        pages = m.r_pages }
    in
    Meta_table.register t.meta meta;
    emit_alloc t meta Kard_obs.Event.Recycled;
    (meta, t.cost.Cost_model.malloc)
  | None ->
    (* Large allocations start on a fresh file page so they stay
       page-aligned; small ones pack at the consolidation cursor. *)
    if reserved >= Page.size && Page.offset_in_page t.cursor <> 0 then
      t.cursor <- Page.base_of_vpage (Page.vpage_of_addr t.cursor + 1);
    let file_start = t.cursor in
    let file_end = file_start + reserved in
    t.cursor <- file_end;
    let grow_cost = ensure_file_covers t file_end in
    let first_file_page = Page.vpage_of_addr file_start in
    let pages = Page.pages_spanned file_start reserved in
    let mapped_base = Address_space.mmap_file t.aspace t.memfd ~file_page:first_file_page ~pages in
    bump_stats t (fun s -> { s with mmap_calls = s.mmap_calls + 1 });
    let base = mapped_base + Page.offset_in_page file_start in
    let meta =
      { Obj_meta.id = fresh_id t; base; size; reserved; kind = Obj_meta.Heap site; pages }
    in
    Meta_table.register t.meta meta;
    emit_alloc t meta Kard_obs.Event.Fresh;
    (meta, t.cost.Cost_model.mmap + grow_cost)

let alloc_global t ~site ~resident size =
  if size <= 0 then invalid_arg "Unique_page_alloc.alloc_global: size must be positive";
  (* Globals get unique, page-aligned, unconsolidated pages (paper
     section 6).  They are placed at load time, so the runtime cost is
     bookkeeping only; globals the program never touches stay
     non-resident. *)
  let pages = max 1 (Page.pages_spanned 0 size) in
  let base =
    if resident then Address_space.mmap_anon t.aspace ~pages
    else Address_space.reserve t.aspace ~pages
  in
  bump_stats t (fun s ->
      { s with
        global_allocations = s.global_allocations + 1;
        bytes_requested = s.bytes_requested + size;
        bytes_reserved = s.bytes_reserved + (pages * Page.size) });
  let meta =
    { Obj_meta.id = fresh_id t;
      base;
      size;
      reserved = pages * Page.size;
      kind = Obj_meta.Global site;
      pages }
  in
  Meta_table.register t.meta meta;
  emit_alloc t meta Kard_obs.Event.Global;
  (meta, t.cost.Cost_model.atomic_op)

let free t (meta : Obj_meta.t) =
  Meta_table.unregister t.meta meta;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1) (Kard_obs.Event.Free { obj_id = meta.Obj_meta.id });
    Kard_obs.Trace.incr t.trace "alloc.free");
  bump_stats t (fun s -> { s with frees = s.frees + 1 });
  t.live_wasted <- t.live_wasted - (meta.reserved - meta.size);
  if t.recycle_virtual_pages && Obj_meta.is_heap meta then begin
    push_recycled t meta;
    t.cost.Cost_model.atomic_op
  end
  else begin
    (* The virtual mapping goes away; physical file pages stay resident
       because the allocator does not reuse file space (section 6). *)
    let first_vpage = Page.vpage_of_addr meta.base in
    Address_space.munmap t.aspace ~base:(Page.base_of_vpage first_vpage) ~pages:meta.pages;
    t.cost.Cost_model.munmap
  end

let iface t =
  { Alloc_iface.name = "kard-unique-page";
    alloc = (fun ~site size -> alloc t ~site size);
    alloc_global = (fun ~site ~resident size -> alloc_global t ~site ~resident size);
    free = (fun meta -> free t meta);
    stats = (fun () -> t.stats) }
