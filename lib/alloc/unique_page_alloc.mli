(** Kard's consolidated unique page allocator (section 5.3, figure 2).

    Every object gets its own virtual page(s) so it can be protected
    independently with MPK, but small objects are consolidated: their
    virtual pages are [MAP_SHARED]-mapped onto a common in-memory file
    so that up to 128 32-byte objects share one physical page.  Each
    allocation's page-internal base address is shifted to its slot in
    the physical page, so allocations never overlap.

    Globals are given unique page-aligned {e unconsolidated} pages,
    matching the paper's implementation note (section 6) that global
    variables are not consolidated.

    [recycle_virtual_pages] enables the future-work optimization the
    paper cites from PUSh: freed unique-page mappings are kept per
    size class and reused without a fresh [mmap]. Off by default to
    match the evaluated system; the ablation bench flips it. *)

type t

val create :
  ?granule:int ->
  ?recycle_virtual_pages:bool ->
  ?trace:Kard_obs.Trace.t ->
  Kard_vm.Address_space.t ->
  meta:Meta_table.t ->
  cost:Kard_mpk.Cost_model.t ->
  unit ->
  t
(** [granule] defaults to 32 bytes, the paper's fixed consolidation
    size. @raise Invalid_argument unless it divides the page size.
    [trace] receives fresh/recycled/global allocation and free events
    on the runtime track. *)

val iface : t -> Alloc_iface.t

val granule : t -> int
val file_bytes : t -> int
(** Current size of the backing in-memory file. *)

val wasted_bytes : t -> int
(** Internal fragmentation: reserved minus requested over all live
    heap objects (e.g. 8 B for each 24 B object — the water_nsquared
    pathology of section 7.5). *)
