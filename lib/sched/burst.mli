(** Per-shard burst queues for the sharded simulated machine.

    Between virtual-clock merge points (lock operations, faults, boxed
    ops, generator boundaries) the machine's protection state — PKRU,
    page table, lock/waiter structure — is frozen, so a granted data
    access can be split in two: an exact enqueue-time verdict, and
    deferred TLB/cycle work drained per shard and committed as one
    cycle sum per thread at the next merge point.  The drain is
    lock-free: each shard owns its TLB slices and its row of the sum
    matrix outright.  Committed state is bit-identical to charging
    every access in schedule order at any shard and worker count; see
    DESIGN.md §10 for the full argument. *)

type t

val create :
  ?workers:int -> shards:int -> threads:int -> hw:Kard_mpk.Mpk_hw.t -> unit -> t
(** [workers] (default 0, clamped to [shards - 1]) spawns that many
    drain Domains; 0 means the coordinator drains every shard inline.
    Worker count never affects results, only wall clock.  [threads]
    must not exceed 65536 (queue entries pack the tid in 16 bits). *)

val workers : t -> int
(** Live drain Domains (0 once {!stop} has run). *)

val enqueue : t -> slice:int -> tid:int -> vpage:int -> unit
(** Queue a granted access for [slice] (= [Mpk_hw.slice_of_vpage]). *)

val add_inline : t -> tid:int -> int -> unit
(** Bank compute/io cycles for [tid] into the pending sum without
    queueing any drain work. *)

val pending : t -> int
(** Queued (undrained) access count — the machine's flush-cap signal. *)

val dirty : t -> bool
(** Whether any thread has uncommitted cycles (queued or inline). *)

val flush : t -> commit:(int -> int -> unit) -> unit
(** Drain every shard (in parallel when workers exist), then call
    [commit tid cycles] once per touched thread in first-touch order
    and reset all pending state.  No-op when clean. *)

val stop : t -> unit
(** Join the drain Domains.  Idempotent; {!flush} afterwards drains
    inline. *)
