(* A Fenwick tree over a presence bitmap.  Tree index [i+1] covers
   element [i]; [tree.(j)] holds the member count of the standard
   Fenwick range ending at [j]. *)

type t = {
  mutable present : bool array;
  mutable tree : int array; (* length n + 1, 1-based *)
  mutable n : int;
  mutable top : int; (* largest power of two <= n, the select descent start *)
  mutable size : int;
}

let top_of n =
  let top = ref 1 in
  while !top * 2 <= n do
    top := !top * 2
  done;
  !top

let create ?(capacity = 16) () =
  let n = max 1 capacity in
  { present = Array.make n false; tree = Array.make (n + 1) 0; n; top = top_of n; size = 0 }

let update t i delta =
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Members with id <= i; tolerates i < 0 (returns 0). *)
let rank t i =
  let s = ref 0 in
  let i = ref (min i (t.n - 1) + 1) in
  while !i > 0 do
    s := !s + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let grow t needed =
  let n = ref (t.n * 2) in
  while needed >= !n do
    n := !n * 2
  done;
  let present = Array.make !n false in
  Array.blit t.present 0 present 0 t.n;
  t.present <- present;
  t.tree <- Array.make (!n + 1) 0;
  t.n <- !n;
  t.top <- top_of !n;
  for i = 0 to !n - 1 do
    if present.(i) then update t i 1
  done

let mem t i = i >= 0 && i < t.n && t.present.(i)
let cardinal t = t.size

let add t i =
  if i < 0 then invalid_arg "Runnable_set.add: negative id";
  if i >= t.n then grow t i;
  if not t.present.(i) then begin
    t.present.(i) <- true;
    t.size <- t.size + 1;
    update t i 1
  end

let remove t i =
  if mem t i then begin
    t.present.(i) <- false;
    t.size <- t.size - 1;
    update t i (-1)
  end

let kth_smallest t k =
  if k < 0 || k >= t.size then
    invalid_arg (Printf.sprintf "Runnable_set.kth_smallest: %d outside [0, %d)" k t.size);
  (* Descend to the largest tree prefix holding fewer than k+1 members;
     the next element is the answer. *)
  let pos = ref 0 and rem = ref (k + 1) and mask = ref t.top in
  while !mask > 0 do
    let next = !pos + !mask in
    if next <= t.n && t.tree.(next) < !rem then begin
      rem := !rem - t.tree.(next);
      pos := next
    end;
    mask := !mask lsr 1
  done;
  !pos

let kth_largest t k =
  if k < 0 || k >= t.size then
    invalid_arg (Printf.sprintf "Runnable_set.kth_largest: %d outside [0, %d)" k t.size);
  kth_smallest t (t.size - 1 - k)

let first_above t v =
  let below = rank t v in
  if below >= t.size then None else Some (kth_smallest t below)

let min_elt t = first_above t (-1)
let max_elt t = if t.size = 0 then None else Some (kth_smallest t (t.size - 1))

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.present.(i) then acc := i :: !acc
  done;
  !acc
