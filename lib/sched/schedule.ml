type t =
  | Random of int
  | Round_robin
  | Replay of int array

type state = {
  policy : t;
  rng : Random.State.t;
  mutable picks : int array; (* growable buffer; first [pick_count] live *)
  mutable pick_count : int;
  mutable cursor : int;
  mutable rr_last : int;
}

let start policy =
  { policy;
    rng = Random.State.make [| (match policy with Random seed -> seed | Round_robin | Replay _ -> 0) |];
    picks = Array.make 1024 0;
    pick_count = 0;
    cursor = 0;
    rr_last = -1 }

let record state choice =
  let cap = Array.length state.picks in
  if state.pick_count = cap then begin
    let bigger = Array.make (2 * cap) 0 in
    Array.blit state.picks 0 bigger 0 cap;
    state.picks <- bigger
  end;
  state.picks.(state.pick_count) <- choice;
  state.pick_count <- state.pick_count + 1

let round_robin state runnable =
  (* The smallest runnable thread id strictly greater than the last
     pick, wrapping around. *)
  match Runnable_set.first_above runnable state.rr_last with
  | Some tid -> tid
  | None -> (
    match Runnable_set.min_elt runnable with
    | Some tid -> tid
    | None -> invalid_arg "Schedule.pick: empty runnable set")

let pick state ~runnable =
  assert (Runnable_set.cardinal runnable > 0);
  let choice =
    match state.policy with
    | Random _ ->
      (* Index into the runnable set in descending-tid order: the exact
         order of the pre-array machine's thread list (reverse spawn
         order), so seeded schedules replay bit-identically. *)
      Runnable_set.kth_largest runnable
        (Random.State.int state.rng (Runnable_set.cardinal runnable))
    | Round_robin -> round_robin state runnable
    | Replay tape ->
      if state.cursor < Array.length tape && Runnable_set.mem runnable tape.(state.cursor) then
        tape.(state.cursor)
      else round_robin state runnable
  in
  state.cursor <- state.cursor + 1;
  state.rr_last <- choice;
  record state choice;
  choice

let recorded state = Array.sub state.picks 0 state.pick_count

let pp fmt = function
  | Random seed -> Format.fprintf fmt "random(seed=%d)" seed
  | Round_robin -> Format.pp_print_string fmt "round-robin"
  | Replay tape -> Format.fprintf fmt "replay(%d picks)" (Array.length tape)
