(** The scheduler's runnable-thread set: a dense integer set over
    thread ids with order-statistics queries.

    Backed by a Fenwick (binary-indexed) tree over a presence bitmap,
    so membership updates and rank/select queries cost O(log n) in the
    id-space size — effectively constant for any realistic thread
    count, and crucially independent of how many threads exist.  This
    replaces the O(threads) re-filtering the machine's step loop used
    to do, and gives {!Schedule.pick} the two order-sensitive queries
    the policies need without materializing a list:

    - [kth_largest], matching the historical pick order (the machine
      kept threads in reverse spawn order, so the random policy indexed
      a descending-tid list — preserving that mapping keeps every
      seeded schedule, and hence every simulated-cycle report,
      bit-identical across the refactor);
    - [first_above], the round-robin successor scan. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty set over ids [0, capacity); grows automatically when a
    larger id is added. *)

val add : t -> int -> unit
(** Insert an id (no-op if present). @raise Invalid_argument on a
    negative id. *)

val remove : t -> int -> unit
(** Delete an id (no-op if absent). *)

val mem : t -> int -> bool
val cardinal : t -> int

val kth_largest : t -> int -> int
(** [kth_largest t k] is the [k]-th member in descending order,
    0-based: [kth_largest t 0] is the maximum.
    @raise Invalid_argument unless [0 <= k < cardinal t]. *)

val kth_smallest : t -> int -> int
(** Ascending-order counterpart of {!kth_largest}. *)

val first_above : t -> int -> int option
(** Smallest member strictly greater than the argument (which may be
    [-1] or beyond the capacity); [None] if there is none. *)

val min_elt : t -> int option
val max_elt : t -> int option

val to_list : t -> int list
(** Members in ascending order — O(capacity); for tests and debugging
    only, never on the hot path. *)
