(** Scheduling policies for the simulated machine.

    A policy picks which runnable thread executes the next operation.
    [Random] reproduces a run exactly under a fixed seed; [Replay]
    re-executes a previously recorded pick sequence — the classic
    race-debugging loop: sweep seeds until a schedule manifests the
    bug, then replay that schedule while investigating.

    Picking reads the machine's {!Runnable_set} directly (no per-step
    list materialization) and appends to a growable pick buffer, so a
    pick costs O(log threads) selection plus O(1) recording — the
    machine's step loop no longer pays O(threads) per operation. *)

type t =
  | Random of int        (** Uniform over runnable threads, seeded. *)
  | Round_robin          (** Deterministic rotation. *)
  | Replay of int array  (** Recorded thread ids; falls back to
                             round-robin when the recorded pick is no
                             longer runnable or the tape runs out. *)

type state

val start : t -> state

val pick : state -> runnable:Runnable_set.t -> int
(** Choose a member of [runnable] (non-empty) and record the choice.
    The random policy indexes the set in descending-tid order, which
    preserves the pick sequence of every historical seed. *)

val recorded : state -> int array
(** Every pick made so far, in order — feed to {!Replay}. *)

val pp : Format.formatter -> t -> unit
