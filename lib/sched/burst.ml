(* The sharded machine's burst queues (DragonFly's vm_fault pattern,
   scaled down to the simulator): granted accesses are *verdict-checked*
   at enqueue time — exact, because PKRU and the page table only change
   at merge points — and their TLB work plus cycle accounting is
   deferred into per-shard queues.  A drain routes each queued access to
   the shard slice owning its TLB set (lock-free: a slice is written by
   exactly one shard per drain) and accumulates per-thread cycle sums;
   the flush then commits one [charge] per touched thread.  Because the
   waiter/lock structure is frozen between merge points, committing the
   sum is arithmetically identical to charging every access in schedule
   order — which is the whole determinism argument, and also the speedup:
   the per-access waiter walk (O(waiters), 63 clock bumps per access on
   a contended 64-thread run) collapses to one walk per thread per
   flush. *)

module Mpk_hw = Kard_mpk.Mpk_hw

(* Queue entries pack (vpage, tid) into one immediate int: post-verdict
   the access kind is irrelevant (granted reads and writes cost the
   same and emit no events), so nothing else needs to survive until the
   drain. *)
let tid_bits = 16
let tid_mask = (1 lsl tid_bits) - 1
let max_threads = 1 lsl tid_bits

type crew = {
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  start : Condition.t;      (* a new drain epoch is ready *)
  finished : Condition.t;   (* a worker completed the epoch *)
  mutable epoch : int;
  mutable done_count : int;
  mutable stop : bool;
  next_shard : int Atomic.t; (* drain-work ticket, one per shard *)
}

type t = {
  nshards : int;
  hw : Mpk_hw.t;
  qs : int array array;       (* per shard: packed entries, enqueue order *)
  q_len : int array;
  sums : int array array;     (* sums.(shard).(tid): drained access cycles *)
  inline_sums : int array;    (* per tid: batched compute/io cycles *)
  touched : int array;        (* tids with pending sums, first-touch order *)
  mutable touched_len : int;
  is_touched : bool array;
  mutable pending : int;      (* queued entries across all shards *)
  mutable crew : crew option;
}

(* Drain one shard's queue in enqueue order: run each queued access
   through its owner slice's TLB and bank the cycles into the shard's
   per-thread sums.  Only the draining shard touches slice [s] and row
   [sums.(s)], so concurrent drains need no synchronisation. *)
let drain_shard t s =
  let q = t.qs.(s) and n = t.q_len.(s) and sums = t.sums.(s) in
  for i = 0 to n - 1 do
    let e = Array.unsafe_get q i in
    let tid = e land tid_mask in
    sums.(tid) <-
      sums.(tid) + Mpk_hw.drain_translate t.hw ~tid ~slice:s (e lsr tid_bits)
  done

let create ?(workers = 0) ~shards ~threads ~hw () =
  if shards < 1 then invalid_arg "Burst.create: shards must be >= 1";
  if threads > max_threads then
    invalid_arg (Printf.sprintf "Burst.create: more than %d threads" max_threads);
  let t =
    { nshards = shards;
      hw;
      qs = Array.init shards (fun _ -> Array.make 1024 0);
      q_len = Array.make shards 0;
      sums = Array.init shards (fun _ -> Array.make (max 1 threads) 0);
      inline_sums = Array.make (max 1 threads) 0;
      touched = Array.make (max 1 threads) 0;
      touched_len = 0;
      is_touched = Array.make (max 1 threads) false;
      pending = 0;
      crew = None }
  in
  (* Slices are independent, so the drain parallelises over shards; the
     results are identical at any worker count (including 0, where the
     coordinator drains every shard inline — the single-core case). *)
  let workers = max 0 (min workers (shards - 1)) in
  if workers > 0 then begin
    let c =
      { workers = [||];
        m = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        done_count = 0;
        stop = false;
        next_shard = Atomic.make 0 }
    in
    let drain_loop () =
      let last = ref 0 in
      let running = ref true in
      while !running do
        Mutex.lock c.m;
        while (not c.stop) && c.epoch = !last do
          Condition.wait c.start c.m
        done;
        if c.stop then begin
          Mutex.unlock c.m;
          running := false
        end
        else begin
          last := c.epoch;
          Mutex.unlock c.m;
          let continue = ref true in
          while !continue do
            let s = Atomic.fetch_and_add c.next_shard 1 in
            if s < t.nshards then drain_shard t s else continue := false
          done;
          Mutex.lock c.m;
          c.done_count <- c.done_count + 1;
          Condition.broadcast c.finished;
          Mutex.unlock c.m
        end
      done
    in
    (* Workers captured [c] itself; mutate the same record rather than
       rebuilding it, or the epoch handshake would act on a copy. *)
    c.workers <- Array.init workers (fun _ -> Domain.spawn drain_loop);
    t.crew <- Some c
  end;
  t

let workers t = match t.crew with None -> 0 | Some c -> Array.length c.workers

let touch t tid =
  if not t.is_touched.(tid) then begin
    t.is_touched.(tid) <- true;
    t.touched.(t.touched_len) <- tid;
    t.touched_len <- t.touched_len + 1
  end

let add_inline t ~tid cycles =
  touch t tid;
  t.inline_sums.(tid) <- t.inline_sums.(tid) + cycles

let enqueue t ~slice ~tid ~vpage =
  touch t tid;
  let q = t.qs.(slice) in
  let n = t.q_len.(slice) in
  let q =
    if n >= Array.length q then begin
      let bigger = Array.make (2 * Array.length q) 0 in
      Array.blit q 0 bigger 0 n;
      t.qs.(slice) <- bigger;
      bigger
    end
    else q
  in
  q.(n) <- (vpage lsl tid_bits) lor tid;
  t.q_len.(slice) <- n + 1;
  t.pending <- t.pending + 1

let pending t = t.pending
let dirty t = t.touched_len > 0

let drain_parallel t c =
  Atomic.set c.next_shard 0;
  Mutex.lock c.m;
  c.done_count <- 0;
  c.epoch <- c.epoch + 1;
  Condition.broadcast c.start;
  Mutex.unlock c.m;
  (* The coordinator is a drain worker too. *)
  let continue = ref true in
  while !continue do
    let s = Atomic.fetch_and_add c.next_shard 1 in
    if s < t.nshards then drain_shard t s else continue := false
  done;
  Mutex.lock c.m;
  while c.done_count < Array.length c.workers do
    Condition.wait c.finished c.m
  done;
  Mutex.unlock c.m

let flush t ~commit =
  if t.touched_len > 0 then begin
    if t.pending > 0 then begin
      match t.crew with
      | None ->
        for s = 0 to t.nshards - 1 do
          drain_shard t s
        done
      | Some c -> drain_parallel t c
    end;
    (* Commit in first-touch order.  Any order yields the same final
       state (sums are committed through [charge], which only adds over
       a frozen waiter structure), but first-touch order is itself
       deterministic and shard-count-independent, so nothing downstream
       can ever observe a difference. *)
    for i = 0 to t.touched_len - 1 do
      let tid = t.touched.(i) in
      let total = ref t.inline_sums.(tid) in
      for s = 0 to t.nshards - 1 do
        let sums = t.sums.(s) in
        total := !total + sums.(tid);
        sums.(tid) <- 0
      done;
      t.inline_sums.(tid) <- 0;
      t.is_touched.(tid) <- false;
      commit tid !total
    done;
    t.touched_len <- 0;
    Array.fill t.q_len 0 t.nshards 0;
    t.pending <- 0
  end

let stop t =
  match t.crew with
  | None -> ()
  | Some c ->
    Mutex.lock c.m;
    c.stop <- true;
    Condition.broadcast c.start;
    Mutex.unlock c.m;
    Array.iter Domain.join c.workers;
    t.crew <- None
