module Page = Kard_mpk.Page
module Cost_model = Kard_mpk.Cost_model
module Mpk_hw = Kard_mpk.Mpk_hw
module Fault = Kard_mpk.Fault
module Address_space = Kard_vm.Address_space
module Phys_mem = Kard_vm.Phys_mem
module Meta_table = Kard_alloc.Meta_table
module Alloc_iface = Kard_alloc.Alloc_iface

type allocator_kind =
  | Unique_page of { granule : int; recycle_virtual_pages : bool }
  | Native

type interp =
  [ `Compiled (** int-tag dispatch over compiled segments (default) *)
  | `Thunks (** option-boxed [Op.t] pulls — the oracle interpreter *) ]

type thread_status =
  | Runnable
  | Blocked (* on [blocked_lock] at section site [blocked_site] *)
  | Finished

type thread = {
  tid : int;
  cursor : Program.cursor;
  mutable status : thread_status;
  mutable blocked_lock : int; (* valid while status = Blocked *)
  mutable blocked_site : int;
  mutable cycles : int;
  mutable lock_depth : int;
  mutable op_index : int;
}

type t = {
  sched : Schedule.state;
  cost : Cost_model.t;
  trace : Kard_obs.Trace.sink;
  interp : interp;
  max_steps : int;
  phys : Phys_mem.t;
  aspace : Address_space.t;
  hw : Mpk_hw.t;
  meta : Meta_table.t;
  clock : Sim_clock.t;
  locks : Lock_table.t;
  alloc : Alloc_iface.t;
  hooks : Hooks.t;
  shard_workers : int option; (* burst-drain Domains; None = auto *)
  mutable threads : thread array; (* index = tid; live prefix [0, thread_count) *)
  mutable thread_count : int;
  runnable : Runnable_set.t; (* tids with status Runnable, maintained on transitions *)
  mutable finished_count : int;
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable computes : int;
  mutable io_cycles : int;
  mutable startup_cycles : int;
  mutable in_section : int; (* threads currently holding >= 1 lock *)
  mutable max_in_section : int;
  sites_seen : Dense.Bitset.t;
  mutable started : bool;
}

exception Stuck of string

let create ?(seed = 42) ?schedule ?(cost = Cost_model.default) ?trace
    ?(max_steps = 80_000_000) ?(interp = `Compiled) ?(shards = 1) ?shard_workers
    ~allocator ~make_detector () =
  if shards < 1 then invalid_arg "Machine.create: shards must be >= 1";
  let schedule = Option.value ~default:(Schedule.Random seed) schedule in
  let phys = Phys_mem.create () in
  let aspace = Address_space.create phys in
  let clock = Sim_clock.create () in
  (* Stamp every event of this run with the virtual cycle clock. *)
  Option.iter (fun tr -> Kard_obs.Trace.set_clock tr (fun () -> Sim_clock.now clock)) trace;
  let hw = Mpk_hw.create ~cost ?trace ~shards () in
  let meta = Meta_table.create () in
  let alloc =
    match allocator with
    | Unique_page { granule; recycle_virtual_pages } ->
      Kard_alloc.Unique_page_alloc.iface
        (Kard_alloc.Unique_page_alloc.create ~granule ~recycle_virtual_pages ?trace aspace ~meta
           ~cost ())
    | Native -> Kard_alloc.Native_alloc.iface (Kard_alloc.Native_alloc.create aspace ~meta ~cost ())
  in
  let env = { Hooks.hw; meta; cost; now = (fun () -> Sim_clock.now clock); trace } in
  let hooks = make_detector env in
  { sched = Schedule.start schedule;
    cost;
    trace;
    interp;
    max_steps;
    phys;
    aspace;
    hw;
    meta;
    clock;
    locks = Lock_table.create ();
    alloc;
    hooks;
    shard_workers;
    threads = [||];
    thread_count = 0;
    runnable = Runnable_set.create ();
    finished_count = 0;
    steps = 0;
    reads = 0;
    writes = 0;
    computes = 0;
    io_cycles = 0;
    startup_cycles = 0;
    in_section = 0;
    max_in_section = 0;
    sites_seen = Dense.Bitset.create ();
    started = false }

let env t =
  { Hooks.hw = t.hw;
    meta = t.meta;
    cost = t.cost;
    now = (fun () -> Sim_clock.now t.clock);
    trace = t.trace }

let aspace t = t.aspace
let alloc_iface t = t.alloc
let now t = Sim_clock.now t.clock
let trace t = t.trace
let shards t = Mpk_hw.shards t.hw

let add_global ?(resident = false) t ~site ~size =
  if t.started then invalid_arg "Machine.add_global: machine already running";
  let meta, cycles = t.alloc.Alloc_iface.alloc_global ~site ~resident size in
  let hook_cycles = t.hooks.Hooks.on_global meta in
  t.startup_cycles <- t.startup_cycles + cycles + hook_cycles;
  Sim_clock.advance t.clock (cycles + hook_cycles);
  meta

let spawn t program =
  if t.started then invalid_arg "Machine.spawn: machine already running";
  let tid = t.thread_count in
  t.thread_count <- tid + 1;
  Mpk_hw.register_thread t.hw tid;
  let hook_cycles = t.hooks.Hooks.on_spawn ~tid in
  t.startup_cycles <- t.startup_cycles + hook_cycles;
  Sim_clock.advance t.clock hook_cycles;
  (* The oracle interpreter funnels the whole program through the
     option-boxed thunk view, so every step takes the exact pull path
     the pre-compilation machine took.  Segment leaves and generator
     structure are invisible through a thunk, hence "observationally
     identical" is testable: same ops in the same order, one per
     step. *)
  let program =
    match t.interp with
    | `Compiled -> program
    | `Thunks -> Program.of_thunk (Program.to_thunk program)
  in
  let thread =
    { tid;
      cursor = Program.cursor program;
      status = Runnable;
      blocked_lock = -1;
      blocked_site = -1;
      cycles = 0;
      lock_depth = 0;
      op_index = 0 }
  in
  if tid >= Array.length t.threads then begin
    let bigger = Array.make (max 4 (2 * Array.length t.threads)) thread in
    Array.blit t.threads 0 bigger 0 (Array.length t.threads);
    t.threads <- bigger
  end;
  t.threads.(tid) <- thread;
  Runnable_set.add t.runnable tid;
  tid

(* Status transitions, which are the only places the runnable set is
   touched — the step loop itself never rebuilds it. *)

let block t thread ~lock ~site =
  thread.status <- Blocked;
  thread.blocked_lock <- lock;
  thread.blocked_site <- site;
  Runnable_set.remove t.runnable thread.tid

let wake t thread =
  thread.status <- Runnable;
  Runnable_set.add t.runnable thread.tid

let finish t thread =
  thread.status <- Finished;
  t.finished_count <- t.finished_count + 1;
  Runnable_set.remove t.runnable thread.tid

(* Cycles spent while holding locks also stall every thread blocked on
   those locks: critical sections dilate the critical path.  This is
   what makes detection work performed inside sections (fault
   handling, key juggling) increasingly expensive as thread counts —
   and hence waiter counts — grow (the paper's Figure 5 dynamic).
   Baseline in-section compute dilates identically, so comparisons
   stay fair. *)
let charge_held_lock t lock cycles =
  (* Walk only the locks the holder owns and the threads actually
     queued on them (both indexed by Lock_table), instead of testing
     every thread against every blocked lock's owner.  A thread sits
     in a waiter queue iff its status is [Blocked] on that lock, so
     the charged set is identical to a full scan.  Indexed access
     ([waiter_nth]/[held_nth]) rather than iterators or lists keeps
     the per-charge walk allocation-free. *)
  let n = Lock_table.waiter_count t.locks ~lock in
  for i = 0 to n - 1 do
    let th = t.threads.(Lock_table.waiter_nth t.locks ~lock i) in
    th.cycles <- th.cycles + cycles;
    Sim_clock.advance t.clock cycles
  done

let charge_waiters t holder cycles =
  if holder.lock_depth > 0 then
    for i = 0 to Lock_table.held_count t.locks ~tid:holder.tid - 1 do
      charge_held_lock t (Lock_table.held_nth t.locks ~tid:holder.tid i) cycles
    done

let charge t thread cycles =
  assert (cycles >= 0);
  thread.cycles <- thread.cycles + cycles;
  Sim_clock.advance t.clock cycles;
  if cycles > 0 then charge_waiters t thread cycles

let enter_section t thread =
  if thread.lock_depth = 0 then begin
    t.in_section <- t.in_section + 1;
    if t.in_section > t.max_in_section then t.max_in_section <- t.in_section
  end;
  thread.lock_depth <- thread.lock_depth + 1

let exit_section t thread =
  thread.lock_depth <- thread.lock_depth - 1;
  assert (thread.lock_depth >= 0);
  if thread.lock_depth = 0 then t.in_section <- t.in_section - 1

let max_fault_retries = 8

(* Perform one data access for [thread], routing faults to the
   detector and retrying as the handler directs.  A top-level
   recursive function (not a nested [attempt] closure): the granted
   path — try, charge, return — is run per simulated access and
   allocates nothing. *)
let rec access_attempt t thread addr access n emulate =
  if emulate then charge t thread t.cost.Cost_model.mem_access
  else begin
    let cycles =
      Mpk_hw.try_access t.hw ~tid:thread.tid ~addr ~access ~ip:thread.op_index
        ~time:(Sim_clock.now t.clock)
    in
    if cycles >= 0 then charge t thread cycles
    else begin
      let fault = Mpk_hw.last_fault t.hw in
      if n >= max_fault_retries then
        raise
          (Stuck
             (Format.asprintf "thread %d: access keeps faulting after %d handler rounds: %a"
                thread.tid n Fault.pp fault));
      charge t thread t.cost.Cost_model.fault_roundtrip;
      let outcome = t.hooks.Hooks.on_fault fault in
      charge t thread outcome.Hooks.fault_cycles;
      (match t.trace with
      | None -> ()
      | Some tr ->
        let latency = t.cost.Cost_model.fault_roundtrip + outcome.Hooks.fault_cycles in
        Kard_obs.Trace.emit tr ~tid:thread.tid
          (Kard_obs.Event.Fault_resolved
             { addr; pkey = Kard_mpk.Pkey.to_int fault.Fault.pkey; latency });
        Kard_obs.Trace.observe t.trace "fault.roundtrip_cycles" latency);
      match outcome.Hooks.action with
      | Hooks.Retry -> access_attempt t thread addr access (n + 1) false
      | Hooks.Emulate -> access_attempt t thread addr access n true
    end
  end

let perform_access t thread addr access = access_attempt t thread addr access 0 false

(* dTLB reach assumed by the analytic block model; matches the
   default Tlb.create geometry. *)
let tlb_reach_pages = 64

(* Execute a block operation.  MPK semantics are page-granular, so a
   bounded sample of the spanned pages is checked for faults (a block
   targets a single object, whose pages share one key); the remaining
   accesses are charged analytically: streaming throughput cycles plus
   page-walk penalties when the buffer exceeds the dTLB reach. *)
let perform_block t thread (b : Op.block) access =
  if b.count <= 0 || b.stride <= 0 || b.span <= 0 then
    raise (Stuck "block op with non-positive count/stride/span");
  let span_pages = Page.pages_spanned b.Op.base b.Op.span in
  let total_bytes = b.Op.count * b.Op.stride in
  let pages_touched =
    min span_pages (max 1 ((total_bytes + Page.size - 1) / Page.size))
  in
  let sampled = min pages_touched 64 in
  let step_pages = max 1 (span_pages / sampled) in
  for i = 0 to sampled - 1 do
    perform_access t thread (b.Op.base + (i * step_pages * Page.size)) access
  done;
  let remaining = max 0 (b.Op.count - sampled) in
  let est_misses =
    if span_pages > tlb_reach_pages then begin
      (* Every page visit misses once the sweep exceeds TLB reach. *)
      let passes = max 1 (total_bytes / max 1 b.Op.span) in
      min remaining (max 0 ((pages_touched * passes) - sampled))
    end
    else 0
  in
  Mpk_hw.note_tlb_misses t.hw ~tid:thread.tid est_misses;
  Mpk_hw.note_tlb_hits t.hw ~tid:thread.tid (remaining - est_misses);
  let cycles =
    int_of_float (float_of_int remaining /. t.cost.Cost_model.mem_throughput)
    + (est_misses * t.cost.Cost_model.dtlb_miss)
  in
  charge t thread cycles

let thread_by_tid t tid =
  if tid < 0 || tid >= t.thread_count then
    raise (Stuck (Printf.sprintf "unknown thread %d" tid))
  else t.threads.(tid)

(* Per-operation step events are opt-in: they dominate the ring buffer
   on real workloads, so [Trace.create ~steps:true] must ask for them. *)
let emit_step t thread op addr =
  match t.trace with
  | Some tr when Kard_obs.Trace.steps tr ->
    Kard_obs.Trace.emit tr ~tid:thread.tid (Kard_obs.Event.Step { op; addr })
  | Some _ | None -> ()

(* Per-operation handlers, shared verbatim by the compiled int-tag
   dispatch and the [Op.t] interpreter [exec_op]: the two consumption
   paths differ only in how the operation and its operands reach the
   handler. *)

let do_compute t thread cycles =
  t.computes <- t.computes + 1;
  emit_step t thread `Compute 0;
  charge t thread cycles

let do_io t thread cycles =
  t.io_cycles <- t.io_cycles + cycles;
  charge t thread cycles

let do_read t thread addr =
  t.reads <- t.reads + 1;
  emit_step t thread `Read addr;
  charge t thread (t.hooks.Hooks.on_read ~tid:thread.tid ~addr);
  perform_access t thread addr `Read

let do_write t thread addr =
  t.writes <- t.writes + 1;
  emit_step t thread `Write addr;
  charge t thread (t.hooks.Hooks.on_write ~tid:thread.tid ~addr);
  perform_access t thread addr `Write

let do_lock t thread ~lock ~site =
  Dense.Bitset.add t.sites_seen site;
  match Lock_table.acquire t.locks ~lock ~tid:thread.tid with
  | Lock_table.Acquired ->
    charge t thread t.cost.Cost_model.lock_uncontended;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid:thread.tid
        (Kard_obs.Event.Lock_acquire { lock; site; contended = false }));
    enter_section t thread;
    charge t thread (t.hooks.Hooks.on_lock ~tid:thread.tid ~lock ~site)
  | Lock_table.Must_wait -> block t thread ~lock ~site

let do_unlock t thread ~lock =
  charge t thread (t.hooks.Hooks.on_unlock ~tid:thread.tid ~lock);
  charge t thread t.cost.Cost_model.unlock;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:thread.tid (Kard_obs.Event.Lock_release { lock }));
  exit_section t thread;
  match Lock_table.release t.locks ~lock ~tid:thread.tid with
  | None -> ()
  | Some waiter_tid ->
    (* Ownership transfers directly; the waiter pays the contended
       acquisition and its section-entry hook fires now. *)
    let waiter = thread_by_tid t waiter_tid in
    let site =
      match waiter.status with
      | Blocked ->
        assert (waiter.blocked_lock = lock);
        waiter.blocked_site
      | Runnable | Finished ->
        raise (Stuck (Printf.sprintf "woken thread %d was not blocked" waiter_tid))
    in
    wake t waiter;
    charge t waiter t.cost.Cost_model.lock_contended;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid:waiter_tid
        (Kard_obs.Event.Lock_acquire { lock; site; contended = true }));
    enter_section t waiter;
    charge t waiter (t.hooks.Hooks.on_lock ~tid:waiter_tid ~lock ~site)

let exec_op t thread op =
  match op with
  | Op.Compute cycles -> do_compute t thread cycles
  | Op.Io cycles -> do_io t thread cycles
  | Op.Yield -> ()
  | Op.Read addr -> do_read t thread addr
  | Op.Write addr -> do_write t thread addr
  | Op.Read_block b ->
    t.reads <- t.reads + b.Op.count;
    charge t thread (t.hooks.Hooks.on_read_block ~tid:thread.tid ~block:b);
    perform_block t thread b `Read
  | Op.Write_block b ->
    t.writes <- t.writes + b.Op.count;
    charge t thread (t.hooks.Hooks.on_write_block ~tid:thread.tid ~block:b);
    perform_block t thread b `Write
  | Op.Lock { lock; site } -> do_lock t thread ~lock ~site
  | Op.Unlock { lock } -> do_unlock t thread ~lock
  | Op.Alloc { size; site; on_result } ->
    let meta, cycles = t.alloc.Alloc_iface.alloc ~site size in
    charge t thread cycles;
    charge t thread (t.hooks.Hooks.on_alloc ~tid:thread.tid meta);
    on_result meta
  | Op.Free meta ->
    charge t thread (t.hooks.Hooks.on_free ~tid:thread.tid meta);
    charge t thread (t.alloc.Alloc_iface.free meta)

(* The per-step dispatch: fetch one int tag from the thread's cursor
   and branch on it, hottest tags first.  Plain operations never
   materialise an [Op.t]; only [tag_boxed] payloads (allocations,
   frees, blocks — and every op of the `Thunks oracle interpreter)
   take the [exec_op] detour. *)
let step_thread t thread =
  let cur = thread.cursor in
  let tag = Program.fetch cur in
  if tag = Program.tag_halt then begin
    finish t thread;
    if thread.lock_depth > 0 then
      raise (Stuck (Printf.sprintf "thread %d finished while holding a lock" thread.tid));
    charge t thread (t.hooks.Hooks.on_thread_exit ~tid:thread.tid)
  end
  else begin
    thread.op_index <- thread.op_index + 1;
    if tag = Program.tag_read then do_read t thread (Program.arg_a cur)
    else if tag = Program.tag_write then do_write t thread (Program.arg_a cur)
    else if tag = Program.tag_compute then do_compute t thread (Program.arg_a cur)
    else if tag = Program.tag_lock then
      do_lock t thread ~lock:(Program.arg_a cur) ~site:(Program.arg_b cur)
    else if tag = Program.tag_unlock then do_unlock t thread ~lock:(Program.arg_a cur)
    else if tag = Program.tag_io then do_io t thread (Program.arg_a cur)
    else if tag = Program.tag_yield then ()
    else exec_op t thread (Program.boxed_op cur)
  end

(* Modeled RSS: data frames + last-level page tables + allocator
   metadata + detector metadata (paper section 7.5). *)
let allocator_metadata_per_object = 48

let rss_components t =
  (* RSS counts resident pages once per mapping (like /proc), so
     unique virtual pages dominate even when physically consolidated —
     the mechanism behind the paper's section 7.5 numbers. *)
  let data =
    max (Address_space.peak_mapped_pages t.aspace * Page.size)
      (Phys_mem.peak_resident_bytes t.phys)
  in
  let page_tables = Address_space.peak_page_table_pages t.aspace * Page.size in
  let alloc_stats = t.alloc.Alloc_iface.stats () in
  let alloc_meta =
    (alloc_stats.Alloc_iface.allocations + alloc_stats.Alloc_iface.global_allocations)
    * allocator_metadata_per_object
  in
  let detector_meta = t.hooks.Hooks.metadata_bytes () in
  (data, page_tables, alloc_meta, detector_meta)

type report = {
  detector_name : string;
  cycles : int;
  io_cycles : int;
  wall_cycles : int;
  steps : int;
  reads : int;
  writes : int;
  computes : int;
  cs_entries : int;
  contended_entries : int;
  unique_sections : int;
  max_concurrent_sections : int;
  faults : int;
  rss_bytes : int;
  data_rss_bytes : int;
  page_table_bytes : int;
  detector_metadata_bytes : int;
  dtlb_accesses : int;
  dtlb_misses : int;
  dtlb_miss_rate : float;
  alloc_stats : Alloc_iface.stats;
  hw_stats : Mpk_hw.stats;
  per_thread_cycles : int array;
  schedule_trace : int array;
}

let report_of t =
  let hw_stats = Mpk_hw.stats t.hw in
  let data, page_tables, alloc_meta, detector_meta = rss_components t in
  let per_thread = Array.init t.thread_count (fun tid -> t.threads.(tid).cycles) in
  let wall = Array.fold_left max 0 per_thread in
  { detector_name = t.hooks.Hooks.name;
    cycles = Sim_clock.now t.clock;
    io_cycles = t.io_cycles;
    wall_cycles = wall;
    steps = t.steps;
    reads = t.reads;
    writes = t.writes;
    computes = t.computes;
    cs_entries = Lock_table.total_acquires t.locks;
    contended_entries = Lock_table.contended_acquires t.locks;
    unique_sections = Dense.Bitset.count t.sites_seen;
    max_concurrent_sections = t.max_in_section;
    faults = hw_stats.Mpk_hw.faults;
    rss_bytes = data + page_tables + alloc_meta + detector_meta;
    data_rss_bytes = data;
    page_table_bytes = page_tables;
    detector_metadata_bytes = detector_meta;
    dtlb_accesses = hw_stats.Mpk_hw.dtlb_accesses;
    dtlb_misses = hw_stats.Mpk_hw.dtlb_misses;
    dtlb_miss_rate =
      Mpk_hw.miss_rate ~misses:hw_stats.Mpk_hw.dtlb_misses
        ~accesses:hw_stats.Mpk_hw.dtlb_accesses;
    alloc_stats = t.alloc.Alloc_iface.stats ();
    hw_stats;
    per_thread_cycles = per_thread;
    schedule_trace = Schedule.recorded t.sched }

let run_direct t =
  (* The hot loop: per step, one O(log threads) pick from the
     incrementally maintained runnable set, one array index, one
     cursor fetch — nothing here scans the thread population or
     allocates. *)
  let rec loop () =
    if Runnable_set.cardinal t.runnable = 0 then begin
      if t.finished_count < t.thread_count then
        raise (Stuck "deadlock: threads blocked with no runnable thread")
    end
    else begin
      t.steps <- t.steps + 1;
      if t.steps > t.max_steps then
        raise (Stuck (Printf.sprintf "max_steps (%d) exceeded" t.max_steps));
      let tid = Schedule.pick t.sched ~runnable:t.runnable in
      t.hooks.Hooks.on_pick ~tid;
      step_thread t (thread_by_tid t tid);
      loop ()
    end
  in
  loop ()

(* {1 The burst engine (shards >= 2)}

   Same schedule, same observable state, different commit discipline:
   granted data accesses get their (exact) protection verdict at
   enqueue time and defer TLB work plus cycle accounting into
   per-shard queues; compute/io cycles bank into per-thread sums
   without queueing.  Everything that could *observe* or *change*
   machine state — lock ops, faults, boxed ops, generator closures,
   trace events, the end of the run — flushes first, so every
   observation happens at a fully committed clock.  Between flushes
   the lock/waiter structure and protection state are frozen, which
   makes the per-thread sum commit (one [charge] per touched thread)
   arithmetically identical to legacy per-access charging — and far
   cheaper: the O(waiters) dilation walk runs once per thread per
   burst instead of once per access. *)

(* Cap queued accesses so a long lock-free stretch cannot grow queues
   (and the clock lag) without bound. *)
let burst_capacity = 8192

let burst_flush b commit = if Burst.dirty b then Burst.flush b ~commit

let burst_access t b commit thread access addr =
  let vpage = Page.vpage_of_addr addr in
  if Mpk_hw.access_granted t.hw ~tid:thread.tid ~vpage ~access then begin
    Burst.enqueue b ~slice:(Mpk_hw.slice_of_vpage t.hw vpage) ~tid:thread.tid ~vpage;
    if Burst.pending b >= burst_capacity then burst_flush b commit
  end
  else begin
    (* Denied: commit everything pending, then take the legacy fault
       path inline — handler, retries, trace events all see the same
       clock the sequential machine would. *)
    burst_flush b commit;
    perform_access t thread addr access
  end

let step_thread_burst t b commit thread =
  let cur = thread.cursor in
  (* A non-hot fetch runs generator/thunk/spin closures that may read
     the virtual clock ([wait_until]); commit before letting them. *)
  if not (Program.fetch_is_hot cur) then burst_flush b commit;
  let tag = Program.fetch cur in
  if tag = Program.tag_halt then begin
    (* The exit hook (and a validator wrapping it) must observe a
       committed clock. *)
    burst_flush b commit;
    finish t thread;
    if thread.lock_depth > 0 then
      raise (Stuck (Printf.sprintf "thread %d finished while holding a lock" thread.tid));
    charge t thread (t.hooks.Hooks.on_thread_exit ~tid:thread.tid)
  end
  else begin
    thread.op_index <- thread.op_index + 1;
    if tag = Program.tag_read then begin
      t.reads <- t.reads + 1;
      burst_access t b commit thread `Read (Program.arg_a cur)
    end
    else if tag = Program.tag_write then begin
      t.writes <- t.writes + 1;
      burst_access t b commit thread `Write (Program.arg_a cur)
    end
    else if tag = Program.tag_compute then begin
      t.computes <- t.computes + 1;
      Burst.add_inline b ~tid:thread.tid (Program.arg_a cur)
    end
    else if tag = Program.tag_lock then begin
      burst_flush b commit;
      do_lock t thread ~lock:(Program.arg_a cur) ~site:(Program.arg_b cur)
    end
    else if tag = Program.tag_unlock then begin
      burst_flush b commit;
      do_unlock t thread ~lock:(Program.arg_a cur)
    end
    else if tag = Program.tag_io then begin
      let cycles = Program.arg_a cur in
      t.io_cycles <- t.io_cycles + cycles;
      Burst.add_inline b ~tid:thread.tid cycles
    end
    else if tag = Program.tag_yield then ()
    else begin
      (* Boxed ops (alloc/free/blocks) mutate the page table, the meta
         table or stream through the TLB — merge points, all of them. *)
      burst_flush b commit;
      exec_op t thread (Program.boxed_op cur)
    end
  end

let run_burst t =
  let workers =
    match t.shard_workers with
    | Some w -> w
    | None -> min (Mpk_hw.shards t.hw - 1) (Domain.recommended_domain_count () - 1)
  in
  let b =
    Burst.create ~workers ~shards:(Mpk_hw.shards t.hw) ~threads:t.thread_count
      ~hw:t.hw ()
  in
  let commit tid cycles = charge t t.threads.(tid) cycles in
  Fun.protect
    ~finally:(fun () -> Burst.stop b)
    (fun () ->
      let rec loop () =
        if Runnable_set.cardinal t.runnable = 0 then begin
          if t.finished_count < t.thread_count then
            raise (Stuck "deadlock: threads blocked with no runnable thread")
        end
        else begin
          t.steps <- t.steps + 1;
          if t.steps > t.max_steps then begin
            burst_flush b commit;
            raise (Stuck (Printf.sprintf "max_steps (%d) exceeded" t.max_steps))
          end;
          let tid = Schedule.pick t.sched ~runnable:t.runnable in
          t.hooks.Hooks.on_pick ~tid;
          step_thread_burst t b commit (thread_by_tid t tid);
          loop ()
        end
      in
      loop ();
      burst_flush b commit)

let run t =
  t.started <- true;
  (* The burst engine requires that nothing observes machine state
     between merge points: pure access hooks (Kard, baseline — not
     TSan/Eraser/the fuzz trace log), the compiled interpreter (the
     thunk view boxes every op through closures), no per-step trace
     events, and tids that fit the packed queue encoding.  Ineligible
     machines run the direct engine — still with sliced TLBs, still
     byte-identical at any shard count. *)
  let burst_eligible =
    Mpk_hw.shards t.hw >= 2 && t.hooks.Hooks.pure_access
    && (match t.interp with `Compiled -> true | `Thunks -> false)
    && (match t.trace with
       | Some tr -> not (Kard_obs.Trace.steps tr)
       | None -> true)
    && t.thread_count <= 65536
  in
  if burst_eligible then run_burst t else run_direct t;
  t.hooks.Hooks.on_finish ();
  report_of t

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>[%s] cycles=%d (io=%d, wall=%d) steps=%d r/w=%d/%d cs=%d(contended %d) sites=%d \
     maxconc=%d faults=%d rss=%dB@,\
     [%s] dtlb=%d/%d (miss rate %.5f) wrpkru=%d rdpkru=%d pkey_mprotect=%d (%d pages)@]"
    r.detector_name r.cycles r.io_cycles r.wall_cycles r.steps r.reads r.writes r.cs_entries
    r.contended_entries r.unique_sections r.max_concurrent_sections r.faults r.rss_bytes
    r.detector_name r.hw_stats.Mpk_hw.dtlb_misses r.hw_stats.Mpk_hw.dtlb_accesses
    r.dtlb_miss_rate r.hw_stats.Mpk_hw.wrpkru_calls r.hw_stats.Mpk_hw.rdpkru_calls
    r.hw_stats.Mpk_hw.pkey_mprotect_calls r.hw_stats.Mpk_hw.pages_retagged
