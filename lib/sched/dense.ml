(* Flat int-indexed structures for the allocation-free hot loop.

   Everything here is a plain array that grows by doubling; lookups
   and membership tests never allocate, which is the whole point —
   these replace the [Hashtbl]s that used to sit on the per-step
   path (DESIGN.md, "per-step allocation contract"). *)

let grow_pow2 have needed =
  let n = ref (max 16 have) in
  while needed >= !n do
    n := !n * 2
  done;
  !n

module Bitset = struct
  type t = {
    mutable words : int array;
    mutable count : int; (* set bits, maintained incrementally *)
  }

  let bits_per_word = Sys.int_size

  let create ?(capacity = 256) () =
    { words = Array.make (max 1 ((capacity / bits_per_word) + 1)) 0; count = 0 }

  let ensure t i =
    let word = i / bits_per_word in
    let have = Array.length t.words in
    if word >= have then begin
      let words = Array.make (grow_pow2 have word) 0 in
      Array.blit t.words 0 words 0 have;
      t.words <- words
    end

  let mem t i =
    if i < 0 then false
    else
      let word = i / bits_per_word in
      word < Array.length t.words
      && t.words.(word) land (1 lsl (i mod bits_per_word)) <> 0

  (* [add] is the hot call: setting an already-set bit costs one load
     and one test, no allocation and no count update. *)
  let add t i =
    if i < 0 then invalid_arg "Dense.Bitset.add: negative index";
    ensure t i;
    let word = i / bits_per_word in
    let bit = 1 lsl (i mod bits_per_word) in
    let w = t.words.(word) in
    if w land bit = 0 then begin
      t.words.(word) <- w lor bit;
      t.count <- t.count + 1
    end

  let count t = t.count

  let remove t i =
    if i >= 0 then begin
      let word = i / bits_per_word in
      if word < Array.length t.words then begin
        let bit = 1 lsl (i mod bits_per_word) in
        let w = t.words.(word) in
        if w land bit <> 0 then begin
          t.words.(word) <- w land lnot bit;
          t.count <- t.count - 1
        end
      end
    end
end

(* A FIFO ring over ints, used for lock waiter queues: [push]/[pop]
   are the [Queue] operations without the per-node allocation, and
   [nth] gives the machine's waiter-charging walk O(1) random access
   (front of the queue is index 0). *)
module Int_ring = struct
  type t = {
    mutable buf : int array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = Array.make 4 0; head = 0; len = 0 }

  let length t = t.len

  let push t v =
    let cap = Array.length t.buf in
    if t.len = cap then begin
      let buf = Array.make (2 * cap) 0 in
      for i = 0 to t.len - 1 do
        buf.(i) <- t.buf.((t.head + i) mod cap)
      done;
      t.buf <- buf;
      t.head <- 0
    end;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- v;
    t.len <- t.len + 1

  let pop t =
    if t.len = 0 then invalid_arg "Dense.Int_ring.pop: empty";
    let v = t.buf.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v

  let nth t i =
    if i < 0 || i >= t.len then invalid_arg "Dense.Int_ring.nth: out of range";
    t.buf.((t.head + i) mod Array.length t.buf)

  let iter f t =
    for i = 0 to t.len - 1 do
      f (nth t i)
    done
end
