(* Two-level program representation (the per-step allocation
   contract, DESIGN.md).

   The builder API below ([of_list], [concat], [repeat], ...) is
   unchanged from the thunk era, but what it builds is a small tree
   whose leaves are {e compiled segments}: flat int arrays holding one
   tag and two operands per operation.  A {!cursor} walks the tree;
   on the hot path ([fetch]) it serves the next operation as a plain
   int tag plus int operands — no [Some], no [Op.t] variant, no
   closure call per step.  Operations that inherently carry a heap
   payload ([Alloc] callbacks, [Free] metas, block descriptors) are
   stored once, at build time, in a per-segment side table and served
   by reference. *)

type thunk = unit -> Op.t option

(* {1 Compiled segments} *)

let tag_read = 0
let tag_write = 1
let tag_lock = 2
let tag_unlock = 3
let tag_compute = 4
let tag_io = 5
let tag_yield = 6
let tag_boxed = 7
let tag_halt = -1

(* Fields are mutable (and [len] may be shorter than the arrays) so
   that a {!Builder.t} used as an arena can re-point one segment at
   its live buffers each iteration instead of copying them out. *)
type segment = {
  mutable tags : int array;
  mutable a : int array; (* addr / lock / cycles / boxed index *)
  mutable b : int array; (* site (of tag_lock) *)
  mutable boxed : Op.t array; (* side table: Alloc, Free, Read_block, Write_block *)
  mutable len : int;
}

let empty_segment = { tags = [||]; a = [||]; b = [||]; boxed = [||]; len = 0 }

type t =
  | Done
  | Flat of segment
  | Seq of t * t
  | Gen of (unit -> t option)
  | Thunk of thunk
  | Spin of (unit -> bool)
  | Setup of (unit -> unit) * t

(* {1 Builders (the public construction API)} *)

let empty = Done

let segment_of_list ops =
  let n = List.length ops in
  let tags = Array.make n 0 in
  let a = Array.make n 0 in
  let b = Array.make n 0 in
  let boxed = ref [] in
  let nboxed = ref 0 in
  List.iteri
    (fun i op ->
      match op with
      | Op.Read addr ->
        tags.(i) <- tag_read;
        a.(i) <- addr
      | Op.Write addr ->
        tags.(i) <- tag_write;
        a.(i) <- addr
      | Op.Lock { lock; site } ->
        tags.(i) <- tag_lock;
        a.(i) <- lock;
        b.(i) <- site
      | Op.Unlock { lock } ->
        tags.(i) <- tag_unlock;
        a.(i) <- lock
      | Op.Compute cycles ->
        tags.(i) <- tag_compute;
        a.(i) <- cycles
      | Op.Io cycles ->
        tags.(i) <- tag_io;
        a.(i) <- cycles
      | Op.Yield -> tags.(i) <- tag_yield
      | Op.Alloc _ | Op.Free _ | Op.Read_block _ | Op.Write_block _ ->
        tags.(i) <- tag_boxed;
        a.(i) <- !nboxed;
        incr nboxed;
        boxed := op :: !boxed)
    ops;
  { tags; a; b; boxed = Array.of_list (List.rev !boxed); len = n }

let of_list = function
  | [] -> Done
  | ops -> Flat (segment_of_list ops)

let append a b =
  match (a, b) with
  | Done, p | p, Done -> p
  | a, b -> Seq (a, b)

let concat programs = List.fold_right append programs Done
let dynamic next = Gen next

let delay build =
  let built = ref false in
  Gen
    (fun () ->
      if !built then None
      else begin
        built := true;
        Some (build ())
      end)

let repeat n body =
  let i = ref 0 in
  Gen
    (fun () ->
      if !i >= n then None
      else begin
        let prog = body !i in
        incr i;
        Some prog
      end)

let unfold step init =
  let state = ref init in
  Thunk
    (fun () ->
      match step !state with
      | Some (op, next) ->
        state := next;
        Some op
      | None -> None)

let of_thunk th = Thunk th
let wait_until cond = Spin cond
let with_setup setup prog = Setup (setup, prog)

(* {1 Direct segment emission (hot workload generators)} *)

module Builder = struct
  type program = t

  type t = {
    mutable tags : int array;
    mutable a : int array;
    mutable b : int array;
    mutable len : int;
    mutable boxed : Op.t array;
    mutable nboxed : int;
    arena : segment; (* re-pointed at the live buffers by [current] *)
    arena_flat : program;
  }

  let create ?(hint = 16) () =
    let hint = max 4 hint in
    let arena = { tags = [||]; a = [||]; b = [||]; boxed = [||]; len = 0 } in
    { tags = Array.make hint 0;
      a = Array.make hint 0;
      b = Array.make hint 0;
      len = 0;
      boxed = Array.make 4 Op.Yield;
      nboxed = 0;
      arena;
      arena_flat = Flat arena }

  let grow t =
    let cap = Array.length t.tags in
    let bigger arr =
      let r = Array.make (2 * cap) 0 in
      Array.blit arr 0 r 0 cap;
      r
    in
    t.tags <- bigger t.tags;
    t.a <- bigger t.a;
    t.b <- bigger t.b

  let push t tag a b =
    if t.len = Array.length t.tags then grow t;
    let i = t.len in
    t.tags.(i) <- tag;
    t.a.(i) <- a;
    t.b.(i) <- b;
    t.len <- i + 1

  let read t addr = push t tag_read addr 0
  let write t addr = push t tag_write addr 0
  let lock t ~lock:l ~site = push t tag_lock l site
  let unlock t ~lock:l = push t tag_unlock l 0
  let compute t cycles = push t tag_compute cycles 0
  let io t cycles = push t tag_io cycles 0
  let yield t = push t tag_yield 0 0

  let op t o =
    match o with
    | Op.Read addr -> read t addr
    | Op.Write addr -> write t addr
    | Op.Lock { lock = l; site } -> lock t ~lock:l ~site
    | Op.Unlock { lock = l } -> unlock t ~lock:l
    | Op.Compute cycles -> compute t cycles
    | Op.Io cycles -> io t cycles
    | Op.Yield -> yield t
    | Op.Alloc _ | Op.Free _ | Op.Read_block _ | Op.Write_block _ ->
      if t.nboxed = Array.length t.boxed then begin
        let bigger = Array.make (2 * t.nboxed) Op.Yield in
        Array.blit t.boxed 0 bigger 0 t.nboxed;
        t.boxed <- bigger
      end;
      t.boxed.(t.nboxed) <- o;
      push t tag_boxed t.nboxed 0;
      t.nboxed <- t.nboxed + 1

  let seal t : program =
    if t.len = 0 then Done
    else
      Flat
        { tags = Array.sub t.tags 0 t.len;
          a = Array.sub t.a 0 t.len;
          b = Array.sub t.b 0 t.len;
          boxed = Array.sub t.boxed 0 t.nboxed;
          len = t.len }

  let reset t =
    t.len <- 0;
    t.nboxed <- 0

  let current t =
    let seg = t.arena in
    seg.tags <- t.tags;
    seg.a <- t.a;
    seg.b <- t.b;
    seg.boxed <- t.boxed;
    seg.len <- t.len;
    t.arena_flat
end

(* {1 Cursors (the consumption API, one per thread)} *)

type frame =
  | Run of t
  | Generating of (unit -> t option)
  | Pulling of thunk
  | Spinning of (unit -> bool)

type cursor = {
  mutable seg : segment;
  mutable pc : int; (* next index in [seg] *)
  mutable len : int;
  mutable ix : int; (* index of the op fetch just served *)
  mutable box : Op.t; (* the op behind a [tag_boxed] fetch *)
  mutable stack : frame list;
}

let cursor program =
  { seg = empty_segment;
    pc = 0;
    len = 0;
    ix = 0;
    box = Op.Yield;
    stack = [ Run program ] }

(* [fetch] is the per-step hot call: one bounds test and two array
   loads in the common case.  Tree walking ([advance]/[enter]) only
   runs at segment boundaries. *)
let rec advance cur =
  match cur.stack with
  | [] -> tag_halt
  | frame :: rest -> (
    match frame with
    | Run p ->
      cur.stack <- rest;
      enter cur p
    | Generating g -> (
      match g () with
      | Some p -> enter cur p (* the generator frame stays below [p] *)
      | None ->
        cur.stack <- rest;
        advance cur)
    | Pulling th -> (
      match th () with
      | Some op ->
        cur.box <- op;
        tag_boxed
      | None ->
        cur.stack <- rest;
        advance cur)
    | Spinning cond ->
      if cond () then begin
        cur.stack <- rest;
        advance cur
      end
      else tag_yield)

and enter cur p =
  match p with
  | Done -> advance cur
  | Flat seg ->
    let len = seg.len in
    if len = 0 then advance cur
    else begin
      cur.seg <- seg;
      cur.pc <- 1;
      cur.len <- len;
      cur.ix <- 0;
      let tag = seg.tags.(0) in
      if tag = tag_boxed then cur.box <- seg.boxed.(seg.a.(0));
      tag
    end
  | Seq (x, y) ->
    cur.stack <- Run y :: cur.stack;
    enter cur x
  | Gen g ->
    cur.stack <- Generating g :: cur.stack;
    advance cur
  | Thunk th ->
    cur.stack <- Pulling th :: cur.stack;
    advance cur
  | Spin cond ->
    cur.stack <- Spinning cond :: cur.stack;
    advance cur
  | Setup (setup, inner) ->
    setup ();
    enter cur inner

let fetch cur =
  let i = cur.pc in
  if i < cur.len then begin
    cur.pc <- i + 1;
    cur.ix <- i;
    let tag = cur.seg.tags.(i) in
    if tag = tag_boxed then cur.box <- cur.seg.boxed.(cur.seg.a.(i));
    tag
  end
  else begin
    cur.len <- 0;
    cur.pc <- 0;
    advance cur
  end

let fetch_is_hot cur = cur.pc < cur.len

let arg_a cur = cur.seg.a.(cur.ix)
let arg_b cur = cur.seg.b.(cur.ix)
let boxed_op cur = cur.box

(* The thunk interpreter: rebuild the [Op.t] stream one option at a
   time, exactly as the pre-compilation machine consumed programs.
   The oracle test suite runs whole workloads through both paths and
   asserts bit-identical reports. *)
let next_op cur =
  let tag = fetch cur in
  if tag = tag_halt then None
  else if tag = tag_boxed then Some cur.box
  else if tag = tag_read then Some (Op.Read (arg_a cur))
  else if tag = tag_write then Some (Op.Write (arg_a cur))
  else if tag = tag_lock then Some (Op.Lock { lock = arg_a cur; site = arg_b cur })
  else if tag = tag_unlock then Some (Op.Unlock { lock = arg_a cur })
  else if tag = tag_compute then Some (Op.Compute (arg_a cur))
  else if tag = tag_io then Some (Op.Io (arg_a cur))
  else Some Op.Yield

let to_thunk program =
  let cur = cursor program in
  fun () -> next_op cur

let to_list ?(limit = 10_000_000) t =
  let cur = cursor t in
  let rec loop acc n =
    if n > limit then failwith "Program.to_list: limit exceeded"
    else
      match next_op cur with
      | Some op -> loop (op :: acc) (n + 1)
      | None -> List.rev acc
  in
  loop [] 0
