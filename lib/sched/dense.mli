(** Flat int-indexed structures for the allocation-free hot loop.

    Growable-by-doubling arrays replacing the [Hashtbl]s that used to
    sit on the machine's and detector's per-step paths: membership
    tests, counts and FIFO queue operations all run without
    allocating (the per-step allocation contract in DESIGN.md). *)

val grow_pow2 : int -> int -> int
(** [grow_pow2 have needed] is the smallest power-of-two-ish capacity
    [> needed], at least doubling [have]; shared sizing policy for the
    arrays in this module and the tables built on them. *)

(** A growable bitset with an O(1) cardinality, for "seen" sets keyed
    by small dense ids (call sites, object ids). *)
module Bitset : sig
  type t

  val create : ?capacity:int -> unit -> t
  val mem : t -> int -> bool

  val add : t -> int -> unit
  (** Idempotent. @raise Invalid_argument on a negative index. *)

  val count : t -> int
  (** Number of distinct members, maintained incrementally. *)

  val remove : t -> int -> unit
  (** Idempotent; clearing an absent (or negative) index is a no-op. *)
end

(** A FIFO ring buffer over ints: [Queue]'s push/pop without the
    per-node allocation, plus O(1) [nth] from the front — the
    machine's waiter-charging walk needs indexed access so it can
    iterate without a closure. *)
module Int_ring : sig
  type t

  val create : unit -> t
  val length : t -> int
  val push : t -> int -> unit

  val pop : t -> int
  (** @raise Invalid_argument when empty. *)

  val nth : t -> int -> int
  (** [nth t 0] is the front (next to pop).
      @raise Invalid_argument out of range. *)

  val iter : (int -> unit) -> t -> unit
end
