(** The detector interface: what a dynamic race detector may observe.

    Each hook returns the cycles the detector consumed, so detection
    overhead is accounted exactly where it occurs.  Kard never uses
    the per-access hooks (that is its whole point — it is fault
    driven); TSan uses them for every access. *)

type env = {
  hw : Kard_mpk.Mpk_hw.t;
  meta : Kard_alloc.Meta_table.t;
  cost : Kard_mpk.Cost_model.t;
  now : unit -> int;  (** Read the virtual clock. *)
  trace : Kard_obs.Trace.sink;
      (** The run's observability sink ([None] when tracing is off);
          detectors emit key/race events and metrics into it. *)
}
(** What the machine exposes to a detector at construction time. *)

type fault_action =
  | Retry    (** The handler resolved the fault; re-execute the access. *)
  | Emulate  (** Let this one access through without re-protecting. *)

type fault_outcome = { fault_cycles : int; action : fault_action }

type t = {
  name : string;
  pure_access : bool;
      (** Whether the four per-access hooks ([on_read]/[on_write] and
          the block variants) are pure no-ops returning 0.  True for
          Kard and the baseline (fault-driven detection needs no
          per-access instrumentation); any wrapper that intercepts an
          access hook — TSan, Eraser, the fuzz trace log — must set it
          false explicitly, or the sharded machine's burst engine will
          skip the hook on the fast path.  [{ null with on_read = ... }]
          silently inherits [true]: don't do that. *)
  on_pick : tid:int -> unit;
      (** Called right after the scheduler picks [tid], before the
          step executes.  Returns no cycles: observing the schedule is
          free by construction, which is what lets the record/replay
          layer log every pick at zero simulated cost.  Under the
          burst engine this fires at pick time, when the virtual clock
          may lag uncommitted work — implementations must not read the
          clock here (grant-time hooks like [on_lock] are the
          committed-clock observation points). *)
  on_spawn : tid:int -> int;
  on_global : Kard_alloc.Obj_meta.t -> int;
  on_alloc : tid:int -> Kard_alloc.Obj_meta.t -> int;
  on_free : tid:int -> Kard_alloc.Obj_meta.t -> int;
  on_lock : tid:int -> lock:int -> site:int -> int;
      (** Called once the lock is held (critical-section entry). *)
  on_unlock : tid:int -> lock:int -> int;
      (** Called just before the lock is released (section exit). *)
  on_read : tid:int -> addr:Op.addr -> int;
      (** Pre-access instrumentation (TSan-style detectors only). *)
  on_write : tid:int -> addr:Op.addr -> int;
  on_read_block : tid:int -> block:Op.block -> int;
      (** Instrumentation for a whole block operation: the detector
          must charge for [block.count] accesses. *)
  on_write_block : tid:int -> block:Op.block -> int;
  on_fault : Kard_mpk.Fault.t -> fault_outcome;
  on_thread_exit : tid:int -> int;
  on_finish : unit -> unit;
  metadata_bytes : unit -> int;
      (** Detector-internal memory, added to the modeled RSS. *)
}

val null : name:string -> t
(** A detector that observes nothing and costs nothing (Baseline). *)
