(** Thread programs: a thunk-style builder API over compiled
    operation segments.

    Construction looks exactly as it did when a program {e was} a
    [unit -> Op.t option] thunk, and generators may still carry
    mutable state (an [Alloc] continuation executed now can influence
    the addresses of operations generated later).  What the builders
    produce, though, is a tree whose leaves are {e compiled segments}
    — flat int arrays, one tag and two int operands per operation —
    so the scheduler's per-step pull is an array load, not an
    allocation (the per-step allocation contract, DESIGN.md).
    Operations carrying heap payloads ([Alloc], [Free], blocks) live
    in a per-segment side table built once.

    A program is consumed through a {!cursor}, one per thread;
    [None]/{!tag_halt} means the thread finished. *)

type t

type thunk = unit -> Op.t option

(** {1 Builders} *)

val empty : t
val of_list : Op.t list -> t

val append : t -> t -> t
val concat : t list -> t

val repeat : int -> (int -> t) -> t
(** [repeat n body] runs [body 0], [body 1], ... [body (n-1)] in
    sequence; each body is built lazily, when its turn comes. *)

val unfold : ('s -> (Op.t * 's) option) -> 's -> t

val dynamic : (unit -> t option) -> t
(** [dynamic next] keeps asking [next] for program segments until it
    returns [None]; used for data-dependent control flow. *)

val delay : (unit -> t) -> t
(** Build the program only when first pulled — after earlier ops in
    the same stream (e.g. allocations) have executed. *)

val with_setup : (unit -> unit) -> t -> t
(** Run a side effect when the program is first pulled. *)

val of_thunk : thunk -> t
(** Wrap a legacy operation thunk; pulled one op per step, each op
    boxed — keep off hot paths. *)

val wait_until : (unit -> bool) -> t
(** Spin (yielding) until the condition holds.  The condition is
    evaluated once per scheduled step, exactly like a thunk that
    returns [Some Yield] while false — but allocation-free. *)

(** Append operations one at a time into a segment under
    construction; the allocation-free-loop counterpart of building an
    [Op.t list] and calling {!of_list} (no intermediate list, no
    variant per plain operation).  Used by the hot workload
    generators. *)
module Builder : sig
  type program := t
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] is the expected operation count (arrays double past it). *)

  val read : t -> int -> unit
  val write : t -> int -> unit
  val lock : t -> lock:int -> site:int -> unit
  val unlock : t -> lock:int -> unit
  val compute : t -> int -> unit
  val io : t -> int -> unit
  val yield : t -> unit

  val op : t -> Op.t -> unit
  (** Append any operation; [Alloc]/[Free]/blocks go to the boxed
      side table, plain operations are unpacked into the int arrays. *)

  val seal : t -> program
  (** Finish the segment.  The builder must not be reused after. *)

  val reset : t -> unit
  (** Start a new segment in the same buffers (arena reuse). *)

  val current : t -> program
  (** A program serving the operations emitted since the last
      {!reset}, {e aliasing} the builder's live buffers: it is valid
      only until the next [reset] and must be fully consumed by a
      single cursor before then.  Repeated calls return the same
      program value, so a generator body that does [reset]; emit;
      [current] allocates nothing per iteration.  Use {!seal} instead
      whenever the program may outlive the builder's next cycle. *)
end

(** {1 Cursors (consumption)} *)

(** Integer operation tags, the hot-dispatch alphabet.  {!fetch}
    returns one of these; operands are read with {!arg_a}/{!arg_b}
    ({!boxed_op} for [tag_boxed]). *)

val tag_read : int (* = 0; arg_a = addr *)
val tag_write : int (* = 1; arg_a = addr *)
val tag_lock : int (* = 2; arg_a = lock, arg_b = site *)
val tag_unlock : int (* = 3; arg_a = lock *)
val tag_compute : int (* = 4; arg_a = cycles *)
val tag_io : int (* = 5; arg_a = cycles *)
val tag_yield : int (* = 6 *)
val tag_boxed : int (* = 7; boxed_op has the payload *)
val tag_halt : int (* = -1; the program is finished *)

type cursor

val cursor : t -> cursor
(** Start consuming the program.  Programs hold mutable generator
    state, so a program should be consumed by exactly one cursor. *)

val fetch : cursor -> int
(** Serve the next operation as a tag (one array load on the hot
    path), advancing the cursor.  Returns {!tag_halt} forever once
    the program is exhausted. *)

val fetch_is_hot : cursor -> bool
(** Whether the next {!fetch} will serve straight from the current
    segment (pure array load), as opposed to advancing through
    generator/thunk/spin frames that may run arbitrary closures — e.g.
    [wait_until] conditions that read the virtual clock.  The sharded
    machine's burst engine flushes pending work before any non-hot
    fetch so such closures observe a fully committed clock. *)

val arg_a : cursor -> int
val arg_b : cursor -> int
(** Operands of the operation just fetched (see the tag table). *)

val boxed_op : cursor -> Op.t
(** The payload behind a {!tag_boxed} fetch. *)

val next_op : cursor -> Op.t option
(** The thunk interpreter: {!fetch} plus reconstruction of the
    [Op.t], option-boxed — the pre-compilation machine's consumption
    path, kept as the oracle against which compiled dispatch is
    tested. *)

val to_thunk : t -> thunk
(** [to_thunk p] is a fresh cursor behind {!next_op}. *)

val to_list : ?limit:int -> t -> Op.t list
(** Drain a program (for tests). @raise Failure past [limit] ops. *)
