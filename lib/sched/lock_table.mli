(** Mutex state for the simulated machine.

    Non-reentrant POSIX-style mutexes with FIFO wakeup.  Lock ids are
    plain (small, dense) non-negative ints chosen by the workload;
    lock state is held in id-indexed arrays and waiter queues in ring
    buffers, so the lock/unlock path neither hashes nor allocates
    (beyond the held-list cons per acquire).

    Alongside the per-lock owner and waiter queue, the table maintains
    a per-thread index of held locks, so "which locks does thread [t]
    own" and "who waits on lock [l]" are both answerable in time
    proportional to the answer — never by scanning every lock or every
    thread.  The machine's waiter-stall accounting is built on these
    two queries. *)

type t

val create : unit -> t

type acquire_result =
  | Acquired                (** The lock was free; caller now owns it. *)
  | Must_wait               (** Caller was queued; it must block. *)

val acquire : t -> lock:int -> tid:int -> acquire_result
(** @raise Invalid_argument if [tid] already owns [lock] (the
    simulated program deadlocked on itself). *)

val release : t -> lock:int -> tid:int -> int option
(** Returns the woken waiter, to whom ownership transfers directly
    (the held-lock index moves the lock to the waiter as well).
    @raise Invalid_argument if [tid] does not own [lock]. *)

val owner : t -> lock:int -> int option

val held_by : t -> tid:int -> int list
(** All locks the thread currently owns, most recently acquired first.
    O(locks held by [tid]), maintained incrementally by
    [acquire]/[release] rather than folded over the whole table. *)

val iter_held : t -> tid:int -> (int -> unit) -> unit
(** Apply a function to every lock [tid] owns (allocation-free
    [held_by]). *)

val held_count : t -> tid:int -> int

val held_nth : t -> tid:int -> int -> int
(** [held_nth t ~tid i] is the [i]th owned lock, oldest first.
    Indexed access for allocation-free walks on the machine's
    per-charge path.
    @raise Invalid_argument when [i] is out of range. *)

val iter_waiters : t -> lock:int -> (int -> unit) -> unit
(** Apply a function to every thread queued on [lock], FIFO order. *)

val waiter_count : t -> lock:int -> int

val waiter_nth : t -> lock:int -> int -> int
(** [waiter_nth t ~lock i] is the [i]th queued thread, FIFO order
    (index 0 is woken next); with {!waiter_count} this gives the
    machine a closure-free waiter walk.
    @raise Invalid_argument out of range. *)

val contended_acquires : t -> int
val total_acquires : t -> int
