type env = {
  hw : Kard_mpk.Mpk_hw.t;
  meta : Kard_alloc.Meta_table.t;
  cost : Kard_mpk.Cost_model.t;
  now : unit -> int;
  trace : Kard_obs.Trace.sink;
}

type fault_action =
  | Retry
  | Emulate

type fault_outcome = { fault_cycles : int; action : fault_action }

type t = {
  name : string;
  pure_access : bool;
  on_pick : tid:int -> unit;
  on_spawn : tid:int -> int;
  on_global : Kard_alloc.Obj_meta.t -> int;
  on_alloc : tid:int -> Kard_alloc.Obj_meta.t -> int;
  on_free : tid:int -> Kard_alloc.Obj_meta.t -> int;
  on_lock : tid:int -> lock:int -> site:int -> int;
  on_unlock : tid:int -> lock:int -> int;
  on_read : tid:int -> addr:Op.addr -> int;
  on_write : tid:int -> addr:Op.addr -> int;
  on_read_block : tid:int -> block:Op.block -> int;
  on_write_block : tid:int -> block:Op.block -> int;
  on_fault : Kard_mpk.Fault.t -> fault_outcome;
  on_thread_exit : tid:int -> int;
  on_finish : unit -> unit;
  metadata_bytes : unit -> int;
}

let null ~name =
  { name;
    pure_access = true;
    on_pick = (fun ~tid:_ -> ());
    on_spawn = (fun ~tid:_ -> 0);
    on_global = (fun _ -> 0);
    on_alloc = (fun ~tid:_ _ -> 0);
    on_free = (fun ~tid:_ _ -> 0);
    on_lock = (fun ~tid:_ ~lock:_ ~site:_ -> 0);
    on_unlock = (fun ~tid:_ ~lock:_ -> 0);
    on_read = (fun ~tid:_ ~addr:_ -> 0);
    on_write = (fun ~tid:_ ~addr:_ -> 0);
    on_read_block = (fun ~tid:_ ~block:_ -> 0);
    on_write_block = (fun ~tid:_ ~block:_ -> 0);
    on_fault = (fun _ -> { fault_cycles = 0; action = Emulate });
    on_thread_exit = (fun ~tid:_ -> 0);
    on_finish = (fun () -> ());
    metadata_bytes = (fun () -> 0) }
