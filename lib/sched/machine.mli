(** The simulated multi-threaded machine.

    Assembles virtual memory, the MPK model, an allocator, a lock
    table, a seeded scheduler and a detector, then executes thread
    programs one operation at a time.  Interleaving is uniformly
    random over runnable threads under the given seed, so a run is
    exactly reproducible and schedules can be swept.

    Usage: [create], then [add_global]s, then [spawn] threads, then
    [run]. *)

type t

type allocator_kind =
  | Unique_page of { granule : int; recycle_virtual_pages : bool }
      (** Kard's allocator (section 5.3). *)
  | Native  (** Compact bump allocator (Baseline / TSan). *)

type interp =
  [ `Compiled
    (** Int-tag dispatch straight off compiled segments — the
        allocation-free production path (default). *)
  | `Thunks
    (** Pull every operation as an option-boxed [Op.t] through
        {!Program.to_thunk} — the pre-compilation consumption path,
        kept as the oracle: a run under [`Thunks] must produce a
        bit-identical report to the same run under [`Compiled]. *) ]

val create :
  ?seed:int ->
  ?schedule:Schedule.t ->
  ?cost:Kard_mpk.Cost_model.t ->
  ?trace:Kard_obs.Trace.t ->
  ?max_steps:int ->
  ?interp:interp ->
  ?shards:int ->
  ?shard_workers:int ->
  allocator:allocator_kind ->
  make_detector:(Hooks.env -> Hooks.t) ->
  unit ->
  t
(** [schedule] overrides [seed] (which is shorthand for
    [Schedule.Random seed]).

    [trace] (default: none) turns on observability: the sink is
    clocked to this machine's virtual cycle counter, handed to the MPK
    model and the unique-page allocator, exposed to the detector via
    {!Hooks.env}, and fed lock/fault/step events by the machine
    itself.  Tracing never charges simulated cycles, so a traced run
    reports exactly the cycles of an untraced run.

    [shards] (default 1) shards the hot MPK state by TLB set and, when
    the detector's access hooks are pure ({!Hooks.t.pure_access}), the
    interpreter is [`Compiled] and per-step trace events are off, runs
    the burst engine: granted accesses take a lock-free enqueue fast
    path and their TLB/cycle work drains per shard at virtual-clock
    merge points (lock ops, faults, boxed ops, generator boundaries).
    Reports, JSON and traces are byte-identical at any shard count —
    see DESIGN.md §10 for the contract.  [shard_workers] (default
    [min (shards - 1) (recommended_domain_count () - 1)]) pins the
    number of drain Domains; 0 drains inline on the coordinator.
    Worker count never affects results. *)

(** {1 Setup} *)

val add_global : ?resident:bool -> t -> site:int -> size:int -> Kard_alloc.Obj_meta.t
(** Register a global variable before any thread runs; the cycles go
    to the startup account, as the paper's init-time calls do.
    [resident] (default false) marks globals the program actually
    touches; only those count toward RSS. *)

val spawn : t -> Program.t -> int
(** Returns the new thread id (0, 1, 2, ...). *)

(** {1 Introspection (for detectors, tests and workloads)} *)

val env : t -> Hooks.env
val aspace : t -> Kard_vm.Address_space.t
val alloc_iface : t -> Kard_alloc.Alloc_iface.t
val now : t -> int
val trace : t -> Kard_obs.Trace.sink

val shards : t -> int
(** The shard count this machine was created with. *)

(** {1 Execution} *)

exception Stuck of string
(** Deadlock, runaway program, or an access that keeps faulting. *)

type report = {
  detector_name : string;
  cycles : int;          (** Total CPU cycles across all threads. *)
  io_cycles : int;       (** Portion of [cycles] spent in [Io] ops. *)
  wall_cycles : int;     (** Max per-thread cycles: idealized wall clock. *)
  steps : int;
  reads : int;
  writes : int;
  computes : int;
  cs_entries : int;      (** Lock acquisitions (Table 3 "Entry"). *)
  contended_entries : int;
  unique_sections : int; (** Distinct synchronization call sites seen. *)
  max_concurrent_sections : int;  (** Table 5 "maximum concurrent CS". *)
  faults : int;
  rss_bytes : int;       (** Modeled peak RSS (see below). *)
  data_rss_bytes : int;  (** Peak resident data pages, counted once per
                             mapping as /proc RSS does — which is why
                             unique-page allocation inflates RSS even
                             under physical consolidation. *)
  page_table_bytes : int;
  detector_metadata_bytes : int;
  dtlb_accesses : int;
  dtlb_misses : int;
  dtlb_miss_rate : float;
  alloc_stats : Kard_alloc.Alloc_iface.stats;
  hw_stats : Kard_mpk.Mpk_hw.stats;
  per_thread_cycles : int array;
  schedule_trace : int array;
      (** The scheduler's pick sequence; feed to {!Schedule.Replay} to
          re-execute this exact interleaving. *)
}
(** [rss_bytes] models peak RSS as physical data frames + last-level
    page-table pages for all live mappings + allocator metadata +
    detector metadata, the components section 7.5 identifies. *)

val run : t -> report
(** Execute until every thread finished. @raise Stuck on deadlock or
    when [max_steps] is exceeded. *)

val pp_report : Format.formatter -> report -> unit
