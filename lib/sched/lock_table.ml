(* Lock ids are small dense ints chosen by workloads, so lock state
   lives in an id-indexed array (grown by doubling) and waiter queues
   are int rings — every operation here sits on the machine's
   lock/unlock path and none of it may hash or allocate per call. *)

type lock_state = {
  mutable owner : int; (* -1 = free *)
  waiters : Dense.Int_ring.t;
}

type t = {
  mutable locks : lock_state option array; (* index = lock id *)
  (* Per-tid stack of owned locks, most recent last: slot [tid] of
     [held] holds [held_n.(tid)] live entries. *)
  mutable held : int array array;
  mutable held_n : int array;
  mutable contended : int;
  mutable total : int;
}

type acquire_result =
  | Acquired
  | Must_wait

let create () =
  { locks = Array.make 64 None;
    held = Array.make 16 [||];
    held_n = Array.make 16 0;
    contended = 0;
    total = 0 }

let state_of t lock =
  if lock < 0 then invalid_arg (Printf.sprintf "Lock_table: negative lock id %d" lock);
  if lock >= Array.length t.locks then begin
    let bigger = Array.make (Dense.grow_pow2 (Array.length t.locks) lock) None in
    Array.blit t.locks 0 bigger 0 (Array.length t.locks);
    t.locks <- bigger
  end;
  match t.locks.(lock) with
  | Some s -> s
  | None ->
    let s = { owner = -1; waiters = Dense.Int_ring.create () } in
    t.locks.(lock) <- Some s;
    s

let ensure_tid t tid =
  if tid >= Array.length t.held then begin
    let cap = Dense.grow_pow2 (Array.length t.held) tid in
    let held = Array.make cap [||] in
    Array.blit t.held 0 held 0 (Array.length t.held);
    t.held <- held;
    let held_n = Array.make cap 0 in
    Array.blit t.held_n 0 held_n 0 (Array.length t.held_n);
    t.held_n <- held_n
  end

(* The per-tid held index mirrors [owner] exactly; nesting depths are
   tiny, so the stack operations are O(locks held by one thread), not
   O(all locks) — this is what lets the machine charge lock waiters
   without scanning every thread (and every lock) per charge. *)
let note_owned t ~lock ~tid =
  ensure_tid t tid;
  let n = t.held_n.(tid) in
  if n = Array.length t.held.(tid) then begin
    let bigger = Array.make (max 4 (2 * n)) 0 in
    Array.blit t.held.(tid) 0 bigger 0 n;
    t.held.(tid) <- bigger
  end;
  t.held.(tid).(n) <- lock;
  t.held_n.(tid) <- n + 1

let note_released t ~lock ~tid =
  if tid < Array.length t.held then begin
    let stk = t.held.(tid) in
    let n = t.held_n.(tid) in
    let rec find i = if i >= n then -1 else if stk.(i) = lock then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      for j = i to n - 2 do
        stk.(j) <- stk.(j + 1)
      done;
      t.held_n.(tid) <- n - 1
    end
  end

let acquire t ~lock ~tid =
  let s = state_of t lock in
  t.total <- t.total + 1;
  if s.owner = -1 then begin
    s.owner <- tid;
    note_owned t ~lock ~tid;
    Acquired
  end
  else if s.owner = tid then
    invalid_arg (Printf.sprintf "Lock_table.acquire: thread %d re-locks lock %d" tid lock)
  else begin
    t.contended <- t.contended + 1;
    Dense.Int_ring.push s.waiters tid;
    Must_wait
  end

let release t ~lock ~tid =
  let s = state_of t lock in
  if s.owner = tid then ()
  else if s.owner >= 0 then
    invalid_arg
      (Printf.sprintf "Lock_table.release: thread %d releases lock %d owned by %d" tid lock s.owner)
  else invalid_arg (Printf.sprintf "Lock_table.release: thread %d releases free lock %d" tid lock);
  note_released t ~lock ~tid;
  if Dense.Int_ring.length s.waiters = 0 then begin
    s.owner <- -1;
    None
  end
  else begin
    let next = Dense.Int_ring.pop s.waiters in
    s.owner <- next;
    note_owned t ~lock ~tid:next;
    Some next
  end

let owner t ~lock =
  if lock < 0 || lock >= Array.length t.locks then None
  else
    match t.locks.(lock) with
    | Some s when s.owner >= 0 -> Some s.owner
    | Some _ | None -> None

let held_count t ~tid = if tid < Array.length t.held then t.held_n.(tid) else 0

let held_nth t ~tid i =
  if i < 0 || i >= held_count t ~tid then invalid_arg "Lock_table.held_nth"
  else t.held.(tid).(i)

(* Most recently acquired first, as the cons-list predecessor. *)
let held_by t ~tid =
  let rec go i acc = if i >= held_count t ~tid then acc else go (i + 1) (t.held.(tid).(i) :: acc) in
  go 0 []

let iter_held t ~tid f =
  for i = held_count t ~tid - 1 downto 0 do
    f t.held.(tid).(i)
  done

let iter_waiters t ~lock f =
  if lock >= 0 && lock < Array.length t.locks then
    match t.locks.(lock) with
    | Some s -> Dense.Int_ring.iter f s.waiters
    | None -> ()

let waiter_count t ~lock =
  if lock < 0 || lock >= Array.length t.locks then 0
  else
    match t.locks.(lock) with
    | Some s -> Dense.Int_ring.length s.waiters
    | None -> 0

let waiter_nth t ~lock i =
  match t.locks.(lock) with
  | Some s -> Dense.Int_ring.nth s.waiters i
  | None -> invalid_arg "Lock_table.waiter_nth: unknown lock"

let contended_acquires t = t.contended
let total_acquires t = t.total
