type lock_state = {
  mutable owner : int option;
  waiters : int Queue.t;
}

type t = {
  locks : (int, lock_state) Hashtbl.t;
  held : (int, int list ref) Hashtbl.t; (* tid -> locks owned, most recent first *)
  mutable contended : int;
  mutable total : int;
}

type acquire_result =
  | Acquired
  | Must_wait

let create () = { locks = Hashtbl.create 64; held = Hashtbl.create 64; contended = 0; total = 0 }

let state_of t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
    let s = { owner = None; waiters = Queue.create () } in
    Hashtbl.replace t.locks lock s;
    s

(* The per-tid held index mirrors [owner] exactly; nesting depths are
   tiny, so the list operations are O(locks held by one thread), not
   O(all locks) — this is what lets the machine charge lock waiters
   without scanning every thread (and every lock) per charge. *)
let note_owned t ~lock ~tid =
  match Hashtbl.find_opt t.held tid with
  | Some cell -> cell := lock :: !cell
  | None -> Hashtbl.replace t.held tid (ref [ lock ])

let note_released t ~lock ~tid =
  match Hashtbl.find_opt t.held tid with
  | Some cell -> cell := List.filter (fun l -> l <> lock) !cell
  | None -> ()

let acquire t ~lock ~tid =
  let s = state_of t lock in
  t.total <- t.total + 1;
  match s.owner with
  | None ->
    s.owner <- Some tid;
    note_owned t ~lock ~tid;
    Acquired
  | Some owner when owner = tid ->
    invalid_arg (Printf.sprintf "Lock_table.acquire: thread %d re-locks lock %d" tid lock)
  | Some _ ->
    t.contended <- t.contended + 1;
    Queue.push tid s.waiters;
    Must_wait

let release t ~lock ~tid =
  let s = state_of t lock in
  (match s.owner with
  | Some owner when owner = tid -> ()
  | Some owner ->
    invalid_arg
      (Printf.sprintf "Lock_table.release: thread %d releases lock %d owned by %d" tid lock owner)
  | None ->
    invalid_arg (Printf.sprintf "Lock_table.release: thread %d releases free lock %d" tid lock));
  note_released t ~lock ~tid;
  if Queue.is_empty s.waiters then begin
    s.owner <- None;
    None
  end
  else begin
    let next = Queue.pop s.waiters in
    s.owner <- Some next;
    note_owned t ~lock ~tid:next;
    Some next
  end

let owner t ~lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s.owner
  | None -> None

let held_by t ~tid =
  match Hashtbl.find_opt t.held tid with
  | Some cell -> !cell
  | None -> []

let iter_held t ~tid f =
  match Hashtbl.find_opt t.held tid with
  | Some cell -> List.iter f !cell
  | None -> ()

let iter_waiters t ~lock f =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> Queue.iter f s.waiters
  | None -> ()

let waiter_count t ~lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> Queue.length s.waiters
  | None -> 0

let contended_acquires t = t.contended
let total_acquires t = t.total
