(** Open-loop request serving: seeded arrival processes driving
    simulated nginx/memcached servers.

    Unlike the closed-loop registry workloads (whose threads issue the
    next operation as soon as the previous one retires), an open-loop
    server receives requests at externally scheduled instants.  The
    arrival timetable is precomputed from [(seed, rate)] alone —
    service speed, thread count, and the detector under test cannot
    perturb it — so when the server falls behind, requests queue and
    accrue latency instead of the load politely slowing down.  This is
    the load model under which detector overhead shows up where
    production cares: in the latency tail.

    The time axis is the machine's aggregate cycle clock
    ({!Kard_sched.Machine.now}), which advances with every charged
    cycle of any thread; offered load is expressed in requests per
    million cycles (r/Mcy) of that clock.  Workers with no arrived
    request poll in [idle_poll_cycles] chunks of [Io], so simulated
    time always advances and an under-loaded server drains.

    Each served request records into the machine's {!Kard_obs.Trace}
    sink: a [serve.latency_cycles] windowed histogram (arrival to
    completion), plain [serve.queue_delay_cycles] /
    [serve.service_cycles] / [serve.queue_depth] histograms,
    [serve.requests] / [serve.connections_opened] /
    [serve.idle_polls] counters, and a per-request {!Kard_obs.Span}
    ([name = "request"], lane = serving worker, id = request index)
    for Perfetto lanes. *)

(** {1 Arrival processes} *)

type arrival =
  | Poisson
      (** Memoryless arrivals: exponential inter-arrival times at the
          offered rate. *)
  | Bursty of { burst : float; p_enter : float; p_exit : float }
      (** Markov-modulated Poisson: a two-state process whose rate is
          multiplied by [burst] while in the burst state; after each
          arrival the state flips on with probability [p_enter] and
          off with probability [p_exit].  Same long-run offered rate
          shape as {!Poisson}, far heavier queueing transients. *)

val default_bursty : arrival
(** [Bursty { burst = 8.0; p_enter = 0.05; p_exit = 0.25 }] — bursts
    roughly 1/6 of the time, 8x the base rate while on. *)

val arrival_name : arrival -> string

val arrival_seed : seed:int -> rate:float -> int
(** The sub-seed from which an arrival sequence is generated; a pure
    function of [(seed, rate)] (rate quantized to 1/1000 r/Mcy). *)

val arrivals : model:arrival -> seed:int -> rate:float -> count:int -> int array
(** [arrivals ~model ~seed ~rate ~count] is the non-decreasing array
    of arrival timestamps (aggregate cycles) for [count] requests at
    [rate] requests per Mcycle.  Deterministic in [(seed, rate)].
    @raise Invalid_argument if [rate <= 0] or [count < 0]. *)

(** {1 Server profiles} *)

type server =
  | Nginx  (** Static-file serving: big private buffer sweeps, two
               short critical sections (shared stats + striped). *)
  | Memcached
      (** Key-value gets/sets: striped item locks with in-section
          compute, occasional global-stats section, alloc churn. *)

val server_name : server -> string

(** {1 Specs} *)

val spec :
  ?model:arrival ->
  ?requests:int ->
  ?keepalive:int ->
  ?window:int ->
  rate:float ->
  server ->
  Spec.t
(** An open-loop serving workload at a fixed offered [rate] (r/Mcy).
    [requests] (default 20000) is the full-size request count, scaled
    down by the harness [~scale] with a floor of 400; [keepalive]
    (default 16) is requests per connection before churn (teardown +
    re-accept + handshake allocations); [window] (default [2^21]) is
    the latency-histogram window width in cycles.  The spec's [paper]
    row is all zeros — serving specs have no paper counterpart. *)

val spec_name : server:server -> model:arrival -> rate:float -> string

val nginx : Spec.t
(** Poisson at 12 r/Mcy — the registry exemplar ["serve-nginx:poisson:r12"]. *)

val memcached : Spec.t
(** Poisson at 24 r/Mcy — the registry exemplar ["serve-memcached:poisson:r24"]. *)

val all : Spec.t list

(**/**)

val metric_latency : string
val metric_queue_delay : string
val metric_service : string
val metric_queue_depth : string
val counter_requests : string
val counter_conn_open : string
val counter_idle_polls : string
val idle_poll_cycles : int
