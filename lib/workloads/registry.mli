(** The catalog of all workload models. *)

val benchmarks : Spec.t list
(** The 15 PARSEC + SPLASH-2x models, Table 3 order. *)

val real_world : Spec.t list
(** NGINX, memcached, pigz, Aget. *)

val all : Spec.t list
(** The 19 evaluated applications (Table 3 order). *)

val lock_free : Spec.t list
(** The lock-free benchmarks the paper omitted (no overhead claim). *)

val serving : Spec.t list
(** The open-loop serving exemplars ({!Openloop.all}). *)

val contention : Spec.t list
(** The lock-convoy stress model ({!Contended.all}). *)

val key_pressure : Spec.t list
(** The high-object-count virtual-key pressure family
    ({!Keypressure.all}). *)

val extended : Spec.t list
(** [all] plus [lock_free] plus [serving] plus [contention] plus
    [key_pressure]. *)

val find : string -> Spec.t
(** Searches [extended]. @raise Not_found for unknown names. *)

val names : string list
