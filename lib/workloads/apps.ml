module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Machine = Kard_sched.Machine

let kib = 1024
let mib = 1024 * 1024

(* {1 NGINX} *)

(* A worker serves requests: accept under the accept mutex, allocate
   request-scoped objects, copy the file through a private buffer,
   update per-request state inside a critical section, respond, free.
   One initialization-time heap object is written inside a section by
   the main thread while a worker reads it lock-free (Table 6). *)
let nginx_build ~file_kb ~threads ~scale ~seed:_ machine =
  let requests_full = 100_004 in
  let f = Builder.scale_factor ~scale ~entries:(2 * requests_full) ~min_entries:400 in
  let requests = Builder.scaled f requests_full in
  let globals =
    Array.init 461 (fun i ->
        (Machine.add_global machine ~site:(9000 + i) ~size:64).Kard_alloc.Obj_meta.base)
  in
  ignore globals;
  let init_obj = ref 0 in
  let init_done = ref false in
  let sites = 26 in
  let io_per_kb = 550 in
  let accesses = file_kb * 128 in
  let buffers = Array.make threads 0 in
  let per_thread tid = (requests / threads) + (if tid < requests mod threads then 1 else 0) in
  let request tid k =
    let idx = (k * threads) + tid in
    let site = 10 + (idx mod sites) in
    let lock = 100 + (site mod 8) in
    let conn = ref [] in
    let pre =
      [ Op.Io (io_per_kb * file_kb / 4); (* accept + read request *)
        Op.Alloc { size = 32; site = 7001; on_result = (fun m -> conn := m :: !conn) };
        Op.Alloc { size = 64; site = 7002; on_result = (fun m -> conn := m :: !conn) };
        Op.Alloc { size = 4096; site = 7003; on_result = (fun m -> conn := m :: !conn) };
        Op.Alloc { size = 32; site = 7004; on_result = (fun m -> conn := m :: !conn) };
        Op.Alloc { size = 32; site = 7005; on_result = (fun m -> conn := m :: !conn) };
        Builder.block ~base:buffers.(tid) ~count:accesses ~span:(max (file_kb * kib) 4096) `Read;
        Op.Compute 20_000;
        Op.Io (io_per_kb * file_kb * 3 / 4) (* send response *) ]
    in
    (* Two critical sections per request: connection accounting and a
       lock-protected write to one fresh request object. *)
    let cs =
      Program.delay (fun () ->
          let fresh =
            match !conn with
            | m :: _ -> m.Kard_alloc.Obj_meta.base
            | [] -> buffers.(tid)
          in
          Program.of_list
            (Builder.critical_section ~lock:100 ~site:9 [ Op.Read buffers.(tid) ]
            @ Builder.critical_section ~lock ~site [ Op.Write fresh ]))
    in
    let frees () =
      match !conn with
      | [] -> None
      | m :: rest ->
        conn := rest;
        Some (Op.Free m)
    in
    Program.concat [ Program.of_list pre; cs; Program.of_thunk frees ]
  in
  let worker tid =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = max (file_kb * kib) 4096;
                site = 8000 + tid;
                on_result = (fun m -> buffers.(tid) <- m.Kard_alloc.Obj_meta.base) } ];
        Builder.wait_until (fun () -> !init_done);
        (* The initialization race: the first worker polls the config
           object without holding any lock while the main thread is
           still writing it inside its section. *)
        (if tid = 1 then
           Program.repeat 8 (fun _ -> Program.delay (fun () -> Program.of_list [ Op.Read !init_obj ]))
         else Program.empty);
        Program.repeat (per_thread tid) (fun k -> request tid k) ]
  in
  (* The initialization section is delayed so [init_obj] is resolved
     only after the Alloc has executed; [init_done] is raised from
     inside the section (via an allocation, standing in for the
     startup notification) so the worker's lock-free reads overlap the
     locked writes. *)
  let main =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 128;
                site = 7000;
                on_result = (fun m -> init_obj := m.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () ->
            Program.of_list
              [ Op.Lock { lock = 100; site = 8 };
                Op.Write !init_obj;
                Op.Alloc { size = 8; site = 7006; on_result = (fun _ -> init_done := true) };
                Op.Compute 8_000;
                Op.Write !init_obj;
                Op.Compute 8_000;
                Op.Write !init_obj;
                Op.Unlock { lock = 100 } ]);
        worker 0 ]
  in
  let (_ : int) = Machine.spawn machine main in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let nginx_paper =
  { Spec.p_heap = 500_007; p_global = 461; p_ro = 0; p_rw = 100_002; p_total_cs = 26;
    p_active_cs = 3; p_entries = 200_008; p_baseline_s = 15.144; p_alloc_pct = 13.3;
    p_kard_pct = 15.1; p_tsan_pct = 258.9; p_rss_kb = 5_812; p_rss_kard_pct = 202.1;
    p_dtlb_base = 0.00145; p_dtlb_alloc_pct = 51.9; p_dtlb_kard_pct = 65.2 }

let nginx_with_file ~file_kb =
  { Spec.name = (if file_kb = 512 then "nginx" else Printf.sprintf "nginx-%dkB" file_kb);
    category = Spec.Real_world;
    description =
      Printf.sprintf "web server; 100k requests for a %d kB file through 100 connections" file_kb;
    paper = nginx_paper;
    default_threads = 4;
    build = (fun ~threads ~scale ~seed machine -> nginx_build ~file_kb ~threads ~scale ~seed machine) }

let nginx = nginx_with_file ~file_kb:512

(* {1 memcached} *)

(* Striped item locks, many call sites, plus the three Table 6 races:
   two stats heap objects (locked writes / lock-free main reads) and
   the time global (lock-free main write / locked worker reads). *)
let memcached_build ~threads ~scale ~seed:_ machine =
  let entries_full = 161_992 in
  (* memcached's Kard cost is dominated by one-time (site, item)
     identification faults; a higher floor lets them amortize as they
     do over the full 162k-request run. *)
  let f = Builder.scale_factor ~scale ~entries:entries_full ~min_entries:12_000 in
  let entries = Builder.scaled f entries_full in
  let sites = 121 and stripes = 8 in
  (* At least one item per lock stripe, or striping collapses. *)
  let item_count = max stripes (Builder.scaled f 470) in
  let globals =
    Array.init 107 (fun i ->
        (Machine.add_global machine ~resident:(i = 0) ~site:(9000 + i) ~size:64).Kard_alloc.Obj_meta.base)
  in
  let time_global = globals.(0) in
  let items = Array.make (max 1 item_count) 0 in
  let stats = Array.make 2 0 in
  let allocated = ref 0 in
  let ready () = !allocated >= item_count + 2 in
  let mix idx salt = ((idx * 2654435761) lxor (salt * 40503)) land max_int in
  let buffers = Array.make threads 0 in
  let per_thread tid = (entries / threads) + (if tid < entries mod threads then 1 else 0) in
  (* [arena] and [block_cache] are per worker: each iteration is
     compiled into the worker's reusable arena segment and consumed
     before the next iteration rebuilds it, so steady-state request
     generation allocates nothing.  Only churn iterations (a fresh
     item is inserted, ~4%) fall back to a dynamic tail — the insert
     address is unknown until the Alloc executes. *)
  let iteration arena block_cache tid k =
    let idx = (k * threads) + tid in
    let stripe = mix idx 17 mod stripes in
    (* Call sites are per (operation, stripe) pair — 15 operations x 8
       stripes = 120 item sites plus the stats site, the paper's 121.
       A section therefore only ever touches its own stripe's items. *)
    let op_kind = mix idx 19 mod (sites / stripes) in
    let site = 10 + (op_kind * stripes) + stripe in
    (* Items within one stripe class only: the same item is always
       protected by the same lock (consistent striped locking). *)
    let per_stripe = max 1 (item_count / stripes) in
    let pick = stripe + (stripes * (mix idx 23 mod per_stripe)) in
    (* Stay inside the stripe class even when the last class is short. *)
    let item = items.(if pick < item_count then pick else stripe mod item_count) in
    (* The private-buffer sweep is identical every iteration; build
       its block descriptor once per worker (the base is only known
       after the worker's prologue Alloc has run). *)
    let block =
      match !block_cache with
      | Some op -> op
      | None ->
        let op = Builder.block ~base:buffers.(tid) ~count:850 ~span:4096 `Read in
        block_cache := Some op;
        op
    in
    let b = arena in
    Program.Builder.reset b;
    Program.Builder.io b 18_000;
    (* Heap churn is modest in memcached: ~7k allocations over 162k
       requests (Table 3). *)
    if mix idx 37 mod 25 = 0 then begin
      (* Churn iteration: alloc an item, initialize it inside the
         section, free it at request end.  The critical section and
         the frees depend on the Alloc's result, so they stay
         dynamic. *)
      let churn = ref [] in
      Program.Builder.op b
        (Op.Alloc { size = 96; site = 7100; on_result = (fun m -> churn := m :: !churn) });
      Program.Builder.op b block;
      Program.Builder.compute b 1_600;
      let cs =
        Program.delay (fun () ->
            let insert =
              match !churn with
              | m :: _ -> [ Op.Write m.Kard_alloc.Obj_meta.base ]
              | [] -> []
            in
            Program.of_list
              (Builder.critical_section ~lock:(100 + stripe) ~site
                 (insert @ [ Op.Read time_global; Op.Read item; Op.Compute 4_000; Op.Write item ])))
      in
      let post =
        (if mix idx 31 mod 16 = 0 then
           Builder.critical_section ~lock:90 ~site:250 [ Op.Write stats.(0); Op.Write stats.(1) ]
         else [])
        @
        if tid = 0 && k mod 32 = 0 then
          [ Op.Write time_global; Op.Read stats.(0); Op.Read stats.(1) ]
        else []
      in
      let frees () =
        match !churn with
        | [] -> None
        | m :: rest ->
          churn := rest;
          Some (Op.Free m)
      in
      Program.concat
        [ Program.Builder.current b; cs; Program.of_list post; Program.of_thunk frees ]
    end
    else begin
      Program.Builder.op b block;
      Program.Builder.compute b 1_600;
      (* Hash lookup and LRU maintenance happen under the item lock,
         so most of the request's CPU time is inside the section
         (Table 5). *)
      Program.Builder.lock b ~lock:(100 + stripe) ~site;
      Program.Builder.read b time_global;
      Program.Builder.read b item;
      Program.Builder.compute b 4_000;
      Program.Builder.write b item;
      Program.Builder.unlock b ~lock:(100 + stripe);
      if mix idx 31 mod 16 = 0 then begin
        Program.Builder.lock b ~lock:90 ~site:250;
        Program.Builder.write b stats.(0);
        Program.Builder.write b stats.(1);
        Program.Builder.unlock b ~lock:90
      end;
      (* The main thread's lock-free activities. *)
      if tid = 0 && k mod 32 = 0 then begin
        Program.Builder.write b time_global;
        Program.Builder.read b stats.(0);
        Program.Builder.read b stats.(1)
      end;
      Program.Builder.current b
    end
  in
  let worker tid =
    let arena = Program.Builder.create ~hint:16 () in
    let block_cache = ref None in
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 4096;
                site = 8000 + tid;
                on_result = (fun m -> buffers.(tid) <- m.Kard_alloc.Obj_meta.base) } ];
        Builder.wait_until ready;
        Program.repeat (per_thread tid) (fun k -> iteration arena block_cache tid k) ]
  in
  let main =
    let allocs =
      Program.concat
        [ Builder.alloc_into_array ~n:item_count ~size:96 ~site:7099 ~bases:items
            ~count:allocated;
          Builder.alloc_many ~n:2 ~size:64 ~site:7098 ~into:(fun i m ->
              stats.(i) <- m.Kard_alloc.Obj_meta.base;
              incr allocated) ]
    in
    Program.append allocs (worker 0)
  in
  let (_ : int) = Machine.spawn machine main in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let memcached =
  { Spec.name = "memcached";
    category = Spec.Real_world;
    description = "key-value store; striped item locks, 121 call sites, stats/time races";
    paper =
      { Spec.p_heap = 6_985; p_global = 107; p_ro = 24; p_rw = 62; p_total_cs = 121;
        p_active_cs = 13; p_entries = 161_992; p_baseline_s = 2.009; p_alloc_pct = 0.0;
        p_kard_pct = 0.1; p_tsan_pct = 45.7; p_rss_kb = 5_892; p_rss_kard_pct = 31.8;
        p_dtlb_base = 0.0011; p_dtlb_alloc_pct = 9.6; p_dtlb_kard_pct = 18.2 };
    default_threads = 4;
    build = memcached_build }

(* {1 pigz} *)

(* A decompression pipeline: a reader thread fills job buffers, worker
   threads process them under a job-queue lock.  Two workers write
   different 32 B-separated offsets of one shared buffer under
   different locks inside minimal critical sections — Kard's false
   positive (Table 6), invisible to granule-level detectors. *)
let pigz_build ~threads ~scale ~seed:_ machine =
  let entries_full = 45_782 in
  let f = Builder.scale_factor ~scale ~entries:entries_full ~min_entries:1_200 in
  let entries = Builder.scaled f entries_full in
  let sites = 10 and locks = 4 in
  let static_n = max locks (Builder.scaled f 700) in
  let globals =
    Array.init 53 (fun i ->
        (Machine.add_global machine ~site:(9000 + i) ~size:64).Kard_alloc.Obj_meta.base)
  in
  ignore globals;
  let jobs = Array.make (max 1 static_n) 0 in
  let fp_buffer = ref 0 in
  let allocated = ref 0 in
  let ready () = !allocated >= static_n + 1 in
  let mix idx salt = ((idx * 2654435761) lxor (salt * 40503)) land max_int in
  let buffers = Array.make threads 0 in
  let per_thread tid = (entries / threads) + (if tid < entries mod threads then 1 else 0) in
  let iteration tid k =
    let idx = (k * threads) + tid in
    let site = 10 + (idx mod sites) in
    let lock = 100 + (site mod locks) in
    (* Jobs are partitioned by lock stripe so each job object is
       always accessed under the same lock. *)
    let stripe = site mod locks in
    let per_stripe = max 1 (static_n / locks) in
    let pick = stripe + (locks * (mix idx 7 mod per_stripe)) in
    let job = jobs.(if pick < static_n then pick else stripe mod static_n) in
    let ops =
      [ Op.Io 2_000;
        Builder.block ~base:buffers.(tid) ~count:1_913 ~span:(mib + (mib / 4)) `Write;
        Op.Compute 8_700 ]
      @ Builder.critical_section ~lock ~site [ Op.Read job; Op.Write job ]
      @
      (* The different-offset pattern: workers 0 and 1 hit the same
         buffer at offsets 0 and 64 under different locks.  The
         sections contain a single access each, so protection
         interleaving never sees the second side — but the window is
         wide enough (one flush) for the conflict to be caught. *)
      if tid < 2 && k mod 4 = 3 then
        Builder.critical_section ~lock:(300 + tid) ~site:(70 + tid)
          [ Op.Write (!fp_buffer + (64 * tid)); Op.Compute 30_000 ]
      else []
    in
    Program.of_list ops
  in
  let worker tid =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = mib + (mib / 4);
                site = 8000 + tid;
                on_result = (fun m -> buffers.(tid) <- m.Kard_alloc.Obj_meta.base) } ];
        Builder.wait_until ready;
        Program.repeat (per_thread tid) (fun k -> iteration tid k) ]
  in
  let main =
    Program.concat
      [ Builder.alloc_into_array ~n:static_n ~size:64 ~site:7200 ~bases:jobs ~count:allocated;
        Program.of_list
          [ Op.Alloc
              { size = 128;
                site = 7201;
                on_result =
                  (fun m ->
                    fp_buffer := m.Kard_alloc.Obj_meta.base;
                    incr allocated) } ];
        worker 0 ]
  in
  let (_ : int) = Machine.spawn machine main in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let pigz =
  { Spec.name = "pigz";
    category = Spec.Real_world;
    description = "parallel decompression; job-queue locks, one different-offset false positive";
    paper =
      { Spec.p_heap = 861; p_global = 53; p_ro = 7; p_rw = 10; p_total_cs = 10; p_active_cs = 5;
        p_entries = 45_782; p_baseline_s = 0.254; p_alloc_pct = 2.9; p_kard_pct = 5.1;
        p_tsan_pct = 229.9; p_rss_kb = 5_368; p_rss_kard_pct = 52.5; p_dtlb_base = 0.00028;
        p_dtlb_alloc_pct = 31.4; p_dtlb_kard_pct = 71.2 };
    default_threads = 4;
    build = pigz_build }

(* {1 Aget} *)

(* Multi-threaded download accelerator.  Workers fetch chunks and add
   to the global byte counter inside their critical section; the
   progress display reads the counter with no lock — the previously
   reported data race. *)
let aget_build ~threads ~scale ~seed:_ machine =
  let entries_full = 56_196 in
  let f = Builder.scale_factor ~scale ~entries:entries_full ~min_entries:1_000 in
  let entries = Builder.scaled f entries_full in
  let globals =
    Array.init 10 (fun i ->
        (Machine.add_global machine ~site:(9000 + i) ~size:64).Kard_alloc.Obj_meta.base)
  in
  ignore globals;
  let bwritten = ref 0 in
  let ready () = !bwritten <> 0 in
  let buffers = Array.make threads 0 in
  let per_thread tid = (entries / threads) + (if tid < entries mod threads then 1 else 0) in
  let iteration tid k =
    let ops =
      [ Op.Io 20_000;
        Builder.block ~base:buffers.(tid) ~count:11_700 ~span:(600 * kib) `Write;
        Op.Compute 9_400 ]
      @ Builder.critical_section ~lock:100 ~site:10 [ Op.Read !bwritten; Op.Write !bwritten ]
      @ (* The progress reporter (a 1 Hz alarm in the real Aget) reads
           the counter without the lock. *)
      if tid = 0 && k mod 64 = 5 then [ Op.Read !bwritten ] else []
    in
    Program.of_list ops
  in
  let worker tid =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 600 * kib;
                site = 8000 + tid;
                on_result = (fun m -> buffers.(tid) <- m.Kard_alloc.Obj_meta.base) } ];
        Builder.wait_until ready;
        Program.repeat (per_thread tid) (fun k -> iteration tid k) ]
  in
  let main =
    Program.append
      (Program.of_list
         [ Op.Alloc
             { size = 8; site = 7300; on_result = (fun m -> bwritten := m.Kard_alloc.Obj_meta.base) } ])
      (worker 0)
  in
  let (_ : int) = Machine.spawn machine main in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let aget =
  { Spec.name = "aget";
    category = Spec.Real_world;
    description = "download accelerator; lock-free progress reads of a locked byte counter";
    paper =
      { Spec.p_heap = 24; p_global = 10; p_ro = 0; p_rw = 1; p_total_cs = 2; p_active_cs = 1;
        p_entries = 56_196; p_baseline_s = 0.944; p_alloc_pct = 0.6; p_kard_pct = 1.4;
        p_tsan_pct = 464.3; p_rss_kb = 2_468; p_rss_kard_pct = 95.3; p_dtlb_base = 0.00294;
        p_dtlb_alloc_pct = 3.7; p_dtlb_kard_pct = 12.3 };
    default_threads = 4;
    build = aget_build }

let all = [ nginx; memcached; pigz; aget ]
