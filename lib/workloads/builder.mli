(** Program-building helpers shared by all workload models. *)

module Op := Kard_sched.Op
module Program := Kard_sched.Program

val wait_until : (unit -> bool) -> Program.t
(** Spin (yielding, at no cycle cost) until the condition holds; used
    by workers to wait for the main thread's allocation phase. *)

val effect_ : (unit -> unit) -> Program.t
(** A zero-op program that runs a side effect when the stream reaches
    it (a [delay] producing nothing); used for barrier bookkeeping in
    coordinated multi-phase programs. *)

val critical_section : lock:int -> site:int -> Op.t list -> Op.t list
(** Wrap the body in [Lock]/[Unlock]. *)

val alloc_many :
  n:int -> size:int -> site:int -> into:(int -> Kard_alloc.Obj_meta.t -> unit) -> Program.t
(** Allocate [n] objects, handing each (with its index) to [into]. *)

val alloc_into_array :
  n:int -> size:int -> site:int -> bases:int array -> count:int ref -> Program.t
(** Allocate [n] objects, recording base addresses and bumping
    [count]; [bases] must have length at least [n]. *)

val block : base:int -> count:int -> ?stride:int -> span:int -> [ `Read | `Write ] -> Op.t

val scaled : float -> int -> int
(** [scaled f n] is [n*f] rounded, at least 1 (when [n] > 0). *)

val scale_factor : scale:float -> entries:int -> min_entries:int -> float
(** The effective scale: never shrinks a workload below [min_entries]
    iterations, so scaled statistics stay meaningful. *)

val round_robin : 'a array -> int -> 'a
(** [round_robin arr i] is [arr.(i mod length)]. *)
