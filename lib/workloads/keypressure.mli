(** The key-pressure workload family: tens of thousands to a million
    lock-protected objects spread over far more critical sections than
    there are physical protection keys, with a rotating hot window and
    deterministically planted wrong-lock (ILU) races.

    The family exists to measure detection {e precision} as a function
    of object count and key-space size: under the physical 13-key
    detector, key recycling destroys a victim object's lock
    association within ~13 section entries, so most planted races are
    silently re-identified; a virtual pool at least as large as
    [sections] keeps every association alive (DESIGN.md §11). *)

type profile = {
  objects : int;             (** Lock-protected heap objects. *)
  object_size : int;
  sections : int;            (** Distinct critical sections — the key
                                 pressure.  Object [j] is owned by
                                 section [j mod sections]. *)
  stripes : int;             (** Lock stripes; section [s] locks stripe
                                 [s mod stripes].  Must be >= 2 so a
                                 plant can pick a victim on a different
                                 stripe. *)
  entries : int;             (** Section entries, all threads. *)
  writes_per_entry : int;
  hot_window : int;          (** Objects per section touched per epoch. *)
  rotate_every : int;        (** Entries per hot-window epoch. *)
  plant_every : int;         (** One wrong-lock write every N entries;
                                 [0] disables planting (race free). *)
  cs_compute : int;
  compute : int;
  min_entries : int;         (** Scaling floor ({!Builder.scale_factor}). *)
}

val default : profile
(** The 10k-object point (96 sections, 16 stripes). *)

val profile_100k : profile
val profile_1m : profile

val build : profile -> threads:int -> scale:float -> seed:int -> Kard_sched.Machine.t -> unit

val effective_entries : profile -> scale:float -> int

val effective_objects : profile -> scale:float -> int
(** Objects a run at this scale allocates: scaled like a mass
    population but never below [sections]. *)

val planted : profile -> scale:float -> int
(** How many wrong-lock writes a run at this scale executes — the
    denominator of the precision measurement. *)

val spec : name:string -> description:string -> profile -> Spec.t
(** Wrap a profile as a registry workload (category real-world,
    4 threads by default). *)

val keys_10k : Spec.t
val keys_100k : Spec.t
val keys_1m : Spec.t

val all : Spec.t list
(** [keys-10k], [keys-100k], [keys-1m]. *)
