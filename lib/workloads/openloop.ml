module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Machine = Kard_sched.Machine
module Trace = Kard_obs.Trace

let kib = 1024

(* {1 Arrival processes}

   Time is the machine's aggregate cycle clock: it advances whenever
   any thread is charged cycles (work, lock dilation or idle polling),
   so one unit of it is one cycle of total serving capacity.  Rates
   are therefore expressed in requests per million cycles of capacity
   (r/Mcy), which makes saturation detector-relative: a detector that
   inflates per-request service cost lowers the rate at which the same
   arrival process drowns the server — exactly the production question
   the sweep asks. *)

type arrival =
  | Poisson
  | Bursty of { burst : float; p_enter : float; p_exit : float }

let default_bursty = Bursty { burst = 8.0; p_enter = 0.05; p_exit = 0.25 }

let arrival_name = function
  | Poisson -> "poisson"
  | Bursty { burst; p_enter; p_exit } ->
    Printf.sprintf "bursty(x%g,p_enter=%g,p_exit=%g)" burst p_enter p_exit

(* The arrival process is a pure function of (seed, rate): the
   sub-seed folds the rate in (at 1/1000 r/Mcy resolution) so every
   detector run at one sweep point replays the identical arrival
   sequence, and nothing else — not threads, not scale, not the
   detector — perturbs it. *)
let arrival_seed ~seed ~rate = (seed * 1_000_003) + int_of_float (Float.round (rate *. 1000.))

let arrivals ~model ~seed ~rate ~count =
  if rate <= 0. then invalid_arg "Openloop.arrivals: rate must be positive";
  if count < 0 then invalid_arg "Openloop.arrivals: negative count";
  let rng = Random.State.make [| arrival_seed ~seed ~rate |] in
  let per_cycle = rate /. 1_000_000. in
  let times = Array.make count 0 in
  let now = ref 0. in
  let in_burst = ref false in
  for i = 0 to count - 1 do
    let lambda =
      match model with
      | Poisson -> per_cycle
      | Bursty { burst; _ } -> if !in_burst then per_cycle *. burst else per_cycle
    in
    (* Exponential inter-arrival; [1 - u] keeps the log argument in
       (0, 1]. *)
    let u = Random.State.float rng 1.0 in
    now := !now +. (-.log (1. -. u) /. lambda);
    times.(i) <- int_of_float !now;
    (match model with
    | Poisson -> ()
    | Bursty { p_enter; p_exit; _ } ->
      let flip = Random.State.float rng 1.0 in
      if !in_burst then (if flip < p_exit then in_burst := false)
      else if flip < p_enter then in_burst := true)
  done;
  times

(* {1 Server profiles}

   Simplified request bodies borrowed from the closed-loop nginx and
   memcached models (same locks, allocation mix and shared objects,
   an order of magnitude less per-request bulk work) so a sweep point
   stays cheap enough to run at many rates. *)

type server =
  | Nginx
  | Memcached

let server_name = function Nginx -> "nginx" | Memcached -> "memcached"

type params = {
  server : server;
  model : arrival;
  rate : float;          (** Offered load, requests per Mcycle. *)
  requests : int;        (** Full-size request count (scaled by [scale]). *)
  keepalive : int;       (** Requests per connection before churn. *)
  window : int;          (** Windowed-histogram width, cycles. *)
}

let default_requests = 20_000
let default_keepalive = 16
let default_window = 1 lsl 21

(* How long a worker sleeps per poll when no request has arrived yet.
   Small enough that dispatch delay is noise against service time,
   large enough that an idle machine doesn't burn one step per cycle. *)
let idle_poll_cycles = 1_000

let metric_latency = "serve.latency_cycles"
let metric_queue_delay = "serve.queue_delay_cycles"
let metric_service = "serve.service_cycles"
let metric_queue_depth = "serve.queue_depth"
let counter_requests = "serve.requests"
let counter_conn_open = "serve.connections_opened"
let counter_idle_polls = "serve.idle_polls"

(* Number of arrivals at or before [now]: [times] is non-decreasing,
   so a binary search gives the instantaneous queue depth. *)
let arrived_before times now =
  let n = Array.length times in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if times.(mid) <= now then lo := mid + 1 else hi := mid
  done;
  !lo

let build ~p ~threads ~scale ~seed machine =
  let n = Builder.scaled (Builder.scale_factor ~scale ~entries:p.requests ~min_entries:400) p.requests in
  let times = arrivals ~model:p.model ~seed ~rate:p.rate ~count:n in
  let sink = Machine.trace machine in
  let stripes = 8 in
  (* [stripes] striped shared objects (each guarded only by its own
     stripe lock) plus one stats object (guarded only by the stats
     lock) — consistent lock discipline, so a clean serve run reports
     no races. *)
  let globals =
    Array.init (stripes + 1) (fun i ->
        (Machine.add_global machine ~resident:(i = 0) ~site:(9100 + i) ~size:64)
          .Kard_alloc.Obj_meta.base)
  in
  let stats = globals.(stripes) in
  let items = Array.make (max stripes 64) 0 in
  let item_count = Array.length items in
  let allocated = ref 0 in
  (* The serving epoch: the aggregate-clock instant at which startup
     (item allocation by the main thread) finished.  Arrival offsets
     in [times] are relative to it, so the startup transient never
     shows up as queueing delay.  It is set once, by the main thread,
     at a scheduler-deterministic instant. *)
  let epoch = ref (-1) in
  let ready () = !epoch >= 0 in
  let mix idx salt = ((idx * 2654435761) lxor (salt * 40503)) land max_int in
  let buffers = Array.make threads 0 in
  (* The shared dispatch queue: arrivals [0, next) are taken; FIFO
     order because [times] is non-decreasing. *)
  let next = ref 0 in
  (* One connection per worker; [conn_left.(tid)] requests remain
     before it is torn down and re-established (connection churn). *)
  let conn_left = Array.make threads 0 in
  let conn_objs = Array.make threads [] in
  let service_body tid i =
    let site = 10 + (mix i 19 mod 24) in
    let stripe = site mod stripes in
    match p.server with
    | Nginx ->
      [ Op.Io 2_500;
        Builder.block ~base:buffers.(tid) ~count:1_024 ~span:(64 * kib) `Read;
        Op.Compute 4_000 ]
      @ Builder.critical_section ~lock:100 ~site:9 [ Op.Read stats; Op.Write stats ]
      @ Builder.critical_section ~lock:(101 + stripe) ~site
          [ Op.Read globals.(stripe); Op.Write globals.(stripe) ]
      @ [ Op.Io 7_500 ]
    | Memcached ->
      let per_stripe = max 1 (item_count / stripes) in
      let pick = stripe + (stripes * (mix i 23 mod per_stripe)) in
      let item = items.(if pick < item_count then pick else stripe mod item_count) in
      [ Op.Io 2_000;
        Builder.block ~base:buffers.(tid) ~count:512 ~span:4096 `Read;
        Op.Compute 1_500 ]
      @ Builder.critical_section ~lock:(101 + stripe) ~site
          [ Op.Read item; Op.Compute 2_500; Op.Write item ]
      @ (if mix i 31 mod 16 = 0 then
           Builder.critical_section ~lock:90 ~site:250 [ Op.Read stats; Op.Write stats ]
         else [])
      @ [ Op.Io 4_000 ]
  in
  let conn_open tid =
    Trace.incr sink counter_conn_open;
    conn_left.(tid) <- p.keepalive;
    [ Op.Io 3_000 (* accept + handshake *) ]
    @ List.concat_map
        (fun (size, site) ->
          [ Op.Alloc
              { size; site; on_result = (fun m -> conn_objs.(tid) <- m :: conn_objs.(tid)) } ])
        [ (32, 7401); (64, 7402); (512, 7403) ]
  in
  let conn_close tid =
    let frees = List.rev_map (fun m -> Op.Free m) conn_objs.(tid) in
    conn_objs.(tid) <- [];
    frees
  in
  (* Serve request [i] on worker [tid]: account the queue delay, run
     the (possibly churning) connection prologue, the service body,
     and close the latency span at completion time. *)
  let request tid i =
    let arrival = !epoch + times.(i) in
    let now = Machine.now machine in
    let depth = arrived_before times (now - !epoch) - i in
    Trace.incr sink counter_requests;
    Trace.observe sink metric_queue_delay (now - arrival);
    Trace.observe sink metric_queue_depth (max 0 depth);
    Trace.span_open sink ~id:i ~lane:tid ~name:"request" ~ts:arrival;
    let churn = conn_left.(tid) <= 0 in
    let setup = if churn then conn_open tid else [] in
    conn_left.(tid) <- conn_left.(tid) - 1;
    let teardown () = if conn_left.(tid) <= 0 then conn_close tid else [] in
    let service_start = now in
    let finish =
      Builder.effect_ (fun () ->
          let done_at = Machine.now machine in
          Trace.observe sink metric_service (done_at - service_start);
          Trace.observe_window sink ~width:p.window metric_latency (done_at - arrival);
          Trace.span_close sink ~id:i)
    in
    Program.concat
      [ Program.of_list (setup @ service_body tid i);
        Program.delay (fun () -> Program.of_list (teardown ()));
        finish ]
  in
  (* The open loop: take the next arrived request, or poll.  Idle
     polling charges [Io] cycles, which is what lets simulated time
     pass through an idle server (and what an epoll timeout costs). *)
  let worker tid =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 64 * kib;
                site = 8100 + tid;
                on_result = (fun m -> buffers.(tid) <- m.Kard_alloc.Obj_meta.base) } ];
        Builder.wait_until ready;
        Program.dynamic (fun () ->
            let i = !next in
            if i >= n then
              (* All requests dispatched; drain this worker's
                 connection, then halt. *)
              (match conn_close tid with
              | [] -> None
              | frees -> Some (Program.of_list frees))
            else if !epoch + times.(i) <= Machine.now machine then begin
              next := i + 1;
              Some (request tid i)
            end
            else begin
              Trace.incr sink counter_idle_polls;
              Some (Program.of_list [ Op.Io idle_poll_cycles ])
            end) ]
  in
  let main =
    Program.concat
      [ Builder.alloc_into_array ~n:item_count ~size:96 ~site:7400 ~bases:items ~count:allocated;
        Builder.effect_ (fun () -> epoch := Machine.now machine);
        worker 0 ]
  in
  let (_ : int) = Machine.spawn machine main in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let zero_paper =
  { Spec.p_heap = 0; p_global = 0; p_ro = 0; p_rw = 0; p_total_cs = 0; p_active_cs = 0;
    p_entries = 0; p_baseline_s = 0.; p_alloc_pct = 0.; p_kard_pct = 0.; p_tsan_pct = 0.;
    p_rss_kb = 0; p_rss_kard_pct = 0.; p_dtlb_base = 0.; p_dtlb_alloc_pct = 0.;
    p_dtlb_kard_pct = 0. }

let spec_name ~server ~model ~rate =
  Printf.sprintf "serve-%s:%s:r%g" (server_name server) (arrival_name model) rate

let spec ?(model = Poisson) ?(requests = default_requests) ?(keepalive = default_keepalive)
    ?(window = default_window) ~rate server =
  let p = { server; model; rate; requests; keepalive; window } in
  { Spec.name = spec_name ~server ~model ~rate;
    category = Spec.Real_world;
    description =
      Printf.sprintf "open-loop %s serving; %s arrivals at %g req/Mcycle, keepalive %d"
        (server_name server) (arrival_name model) rate keepalive;
    paper = zero_paper;
    default_threads = 4;
    build = (fun ~threads ~scale ~seed machine -> build ~p ~threads ~scale ~seed machine) }

(* Fixed-rate exemplars, registered so `kard run`/`kard trace` can
   address an open-loop server by name. *)
let nginx = spec ~rate:12.0 Nginx
let memcached = spec ~rate:24.0 Memcached
let all = [ nginx; memcached ]
