module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Machine = Kard_sched.Machine

type object_mode =
  | Partitioned
  | Striped

type profile = {
  heap_objects : int;
  heap_size : int;
  globals : int;
  global_size : int;
  churn_per_entry : float;
  churn_size : int;
  sites : int;
  locks : int;
  entries : int;
  shared_rw : int;
  shared_ro : int;
  rw_writes_per_entry : int;
  ro_reads_per_entry : int;
  block_accesses : int;
  block_span : int;
  compute : int;
  cs_compute : int;
  io : int;
  sweep_objects : int;
  mode : object_mode;
  min_entries : int;
}

let default =
  { heap_objects = 32;
    heap_size = 64;
    globals = 8;
    global_size = 64;
    churn_per_entry = 0.;
    churn_size = 64;
    sites = 4;
    locks = 4;
    entries = 400;
    shared_rw = 4;
    shared_ro = 4;
    rw_writes_per_entry = 1;
    ro_reads_per_entry = 1;
    block_accesses = 200;
    block_span = 4096;
    compute = 200;
    cs_compute = 0;
    io = 0;
    sweep_objects = 0;
    mode = Partitioned;
    min_entries = 160 }

let factor p ~scale = Builder.scale_factor ~scale ~entries:p.entries ~min_entries:p.min_entries

let effective_entries p ~scale = Builder.scaled (factor p ~scale) p.entries

(* Deterministic per-iteration mixing, so runs are reproducible under
   a fixed machine seed without sharing RNG state across threads. *)
let mix idx salt = ((idx * 2654435761) lxor (salt * 40503)) land max_int

let build p ~threads ~scale ~seed:_ machine =
  assert (threads > 0);
  let f = factor p ~scale in
  let entries = Builder.scaled f p.entries in
  (* Small object populations define the workload's sharing structure
     (e.g. barnes' 13 contended cells) and must survive scaling; only
     mass populations shrink. *)
  let scaled_count n = if n <= 64 then n else Builder.scaled f n in
  let heap_n = scaled_count p.heap_objects in
  let rw_wanted = scaled_count p.shared_rw in
  let ro_wanted = scaled_count p.shared_ro in
  (* Private buffers scale with the workload so memory ratios are
     preserved, but never below the dTLB reach (the miss behaviour of
     a large sweep must survive scaling). *)
  let span = if p.block_span = 0 then 0 else max (64 * 4096) (Builder.scaled f p.block_span) in
  (* Globals are registered up front; their addresses are known now.
     Only the globals that can enter the shared pool are ever touched,
     so only those are resident. *)
  let touched_globals = max 0 (rw_wanted + ro_wanted - heap_n) in
  let global_bases =
    Array.init p.globals (fun i ->
        (Machine.add_global machine ~resident:(i < touched_globals) ~site:(9000 + i)
           ~size:p.global_size)
          .Kard_alloc.Obj_meta.base)
  in
  (* Heap bases are filled by the main thread's allocation phase. *)
  let heap_bases = Array.make (max 1 heap_n) 0 in
  let allocated = ref 0 in
  let pool_size = heap_n + p.globals in
  let rw_n = min rw_wanted pool_size in
  let ro_n = min ro_wanted (pool_size - rw_n) in
  (* Shared object [j]: heap objects first, then globals. *)
  let shared_base j = if j < heap_n then heap_bases.(j) else global_bases.(j - heap_n) in
  let rw_base j = shared_base (j mod max 1 rw_n) in
  let ro_base j = shared_base (rw_n + (j mod max 1 ro_n)) in
  let obj_size j = if j < heap_n then p.heap_size else p.global_size in
  let ready () = !allocated >= heap_n in
  let entries_of_thread tid =
    (entries / threads) + (if tid < entries mod threads then 1 else 0)
  in
  (* Each worker owns a private buffer; its base is resolved lazily
     after the worker's own allocation. *)
  let private_buffers = Array.make threads 0 in
  let private_buffer_base tid = private_buffers.(tid) in
  (* One worker iteration.  [idx] is a globally unique iteration id. *)
  let iteration tid idx =
    (* Ops are compiled straight into a flat segment: the segment is
       built once when this iteration's turn comes and then executed
       allocation-free, one tag per step. *)
    let b = Program.Builder.create () in
    let add op = Program.Builder.op b op in
    (* Allocation churn: request-scoped objects (alloc, touch, free). *)
    let churn_count =
      let whole = int_of_float p.churn_per_entry in
      let frac = p.churn_per_entry -. float_of_int whole in
      whole + (if frac > 0. && mix idx 3 mod 1000 < int_of_float (frac *. 1000.) then 1 else 0)
    in
    let churned = ref [] in
    for c = 0 to churn_count - 1 do
      add
        (Op.Alloc
           { size = p.churn_size;
             site = 7000 + (mix idx c mod 8);
             on_result = (fun meta -> churned := meta :: !churned) })
    done;
    (* Private streaming work (the bulk of the baseline's cycles). *)
    if p.block_accesses > 0 then begin
      let access = if mix idx 5 mod 4 = 0 then `Write else `Read in
      add (Builder.block ~base:(private_buffer_base tid) ~count:p.block_accesses ~span access)
    end;
    (* Sweep distinct non-shared heap objects individually: unique-page
       layout turns this into dTLB pressure.  Shared objects are
       excluded — touching them lock-free would be a race. *)
    let shared_heap = min heap_n (rw_n + ro_n) in
    let sweepable = heap_n - shared_heap in
    if p.sweep_objects > 0 && sweepable > 0 then
      for j = 0 to min p.sweep_objects sweepable - 1 do
        Program.Builder.read b heap_bases.(shared_heap + ((mix idx 7 + (j * 13)) mod sweepable))
      done;
    if p.compute > 0 then Program.Builder.compute b p.compute;
    if p.io > 0 then Program.Builder.io b p.io;
    (* The critical section.  Writable objects are partitioned into
       ownership classes so that a given object is only ever written
       under one lock: class [c] owns {j | j mod classes = c}, and a
       class whose slice is empty simply writes nothing this entry. *)
    let pick_in_class ~classes ~cls ~salt n =
      if cls >= n then None
      else
        let size = ((n - 1 - cls) / classes) + 1 in
        Some (cls + (classes * (mix idx salt mod size)))
    in
    let site, lock, rw_pick, ro_pick =
      match p.mode with
      | Partitioned ->
        let site = idx mod max 1 p.sites in
        let lock = site mod max 1 p.locks in
        (* Objects are owned per lock, so sites sharing a lock share a
           slice consistently. *)
        let pick_rw w = pick_in_class ~classes:(max 1 p.locks) ~cls:lock ~salt:(11 + w) rw_n in
        let pick_ro r = pick_in_class ~classes:(max 1 p.locks) ~cls:lock ~salt:(13 + r) ro_n in
        (site, lock, pick_rw, pick_ro)
      | Striped ->
        let stripe = mix idx 17 mod max 1 p.locks in
        let site = mix idx 19 mod max 1 p.sites in
        let pick_rw w = pick_in_class ~classes:(max 1 p.locks) ~cls:stripe ~salt:(23 + w) rw_n in
        (* Read-only objects are safe under any lock. *)
        let pick_ro r = if ro_n = 0 then None else Some (mix (idx + r) 29 mod ro_n) in
        (site, stripe, pick_rw, pick_ro)
    in
    let body = ref [] in
    for w = 0 to p.rw_writes_per_entry - 1 do
      match rw_pick w with
      | Some j when rw_n > 0 ->
        let j = j mod rw_n in
        let offset = 8 * (mix idx w mod max 1 (obj_size j / 8)) in
        body := Op.Write (rw_base j + offset) :: Op.Read (rw_base j + offset) :: !body
      | Some _ | None -> ()
    done;
    for r = 0 to p.ro_reads_per_entry - 1 do
      match ro_pick r with
      | Some j when ro_n > 0 -> body := Op.Read (ro_base (j mod ro_n)) :: !body
      | Some _ | None -> ()
    done;
    let body = if p.cs_compute > 0 then Op.Compute p.cs_compute :: !body else !body in
    if body <> [] || p.sites > 0 then
      List.iter add (Builder.critical_section ~lock:(100 + lock) ~site:(10 + site) body);
    (* Free the churned objects (request lifetime ends).  The list is
       only populated when the Alloc ops execute, so the frees are
       emitted dynamically after the main op list drains. *)
    let frees () =
      match !churned with
      | [] -> None
      | meta :: rest ->
        churned := rest;
        Some (Op.Free meta)
    in
    Program.append (Program.Builder.seal b) (Program.of_thunk frees)
  in
  let worker tid =
    let prologue =
      if p.block_accesses > 0 then
        Program.of_list
          [ Op.Alloc
              { size = max span 8;
                site = 8000 + tid;
                on_result =
                  (fun meta -> private_buffers.(tid) <- meta.Kard_alloc.Obj_meta.base) } ]
      else Program.empty
    in
    let n = entries_of_thread tid in
    let work = Program.repeat n (fun k -> iteration tid ((k * threads) + tid)) in
    Program.concat [ prologue; Builder.wait_until ready; work ]
  in
  let main_thread =
    let alloc_phase =
      Builder.alloc_into_array ~n:heap_n ~size:p.heap_size ~site:7999 ~bases:heap_bases
        ~count:allocated
    in
    Program.append alloc_phase (worker 0)
  in
  let (_ : int) = Machine.spawn machine main_thread in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done
