module Op = Kard_sched.Op
module Program = Kard_sched.Program

let wait_until = Program.wait_until

let effect_ f =
  Program.delay (fun () ->
      f ();
      Program.empty)

let critical_section ~lock ~site body =
  (Op.Lock { lock; site } :: body) @ [ Op.Unlock { lock } ]

let alloc_many ~n ~size ~site ~into =
  Program.repeat n (fun i ->
      Program.of_list [ Op.Alloc { size; site; on_result = (fun meta -> into i meta) } ])

let alloc_into_array ~n ~size ~site ~bases ~count =
  assert (Array.length bases >= n);
  alloc_many ~n ~size ~site ~into:(fun i meta ->
      bases.(i) <- meta.Kard_alloc.Obj_meta.base;
      incr count)

let block ~base ~count ?(stride = 8) ~span access =
  let b = { Op.base; count; stride; span } in
  match access with
  | `Read -> Op.Read_block b
  | `Write -> Op.Write_block b

let scaled f n = if n <= 0 then 0 else max 1 (int_of_float (Float.round (float_of_int n *. f)))

let scale_factor ~scale ~entries ~min_entries =
  if entries <= 0 then scale
  else
    let floor_factor = float_of_int (min min_entries entries) /. float_of_int entries in
    Float.max scale floor_factor

let round_robin arr i =
  let n = Array.length arr in
  assert (n > 0);
  arr.(i mod n)
