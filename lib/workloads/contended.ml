let no_paper_row =
  { Spec.p_heap = 0; p_global = 0; p_ro = 0; p_rw = 0; p_total_cs = 0; p_active_cs = 0;
    p_entries = 0; p_baseline_s = 0.; p_alloc_pct = 0.; p_kard_pct = 0.; p_tsan_pct = 0.;
    p_rss_kb = 0; p_rss_kard_pct = 0.; p_dtlb_base = 0.; p_dtlb_alloc_pct = 0.;
    p_dtlb_kard_pct = 0. }

(* Every iteration is one critical section on the single global lock,
   with a long run of in-section accesses to the one shared cell.  In
   steady state one thread holds the lock and every other thread is
   queued on it, so the per-access waiter-dilation walk is the run's
   dominant host cost — the burst engine's per-section charge
   aggregation is exactly what this stresses (DESIGN.md §10). *)
let convoy_profile =
  { Synth.default with
    Synth.heap_objects = 1;
    heap_size = 64;
    globals = 0;
    churn_per_entry = 0.;
    sites = 1;
    locks = 1;
    entries = 9_600;
    shared_rw = 1;
    shared_ro = 0;
    rw_writes_per_entry = 32;
    ro_reads_per_entry = 0;
    block_accesses = 0;
    block_span = 0;
    compute = 0;
    cs_compute = 0;
    io = 0;
    sweep_objects = 0;
    min_entries = 640;
    mode = Synth.Partitioned }

let convoy =
  { Spec.name = "convoy";
    category = Spec.Real_world;
    description = "64 threads convoying on one lock: worst-case waiter dilation";
    paper = no_paper_row;
    default_threads = 64;
    build =
      (fun ~threads ~scale ~seed machine ->
        Synth.build convoy_profile ~threads ~scale ~seed machine) }

let all = [ convoy ]
