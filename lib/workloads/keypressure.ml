module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Machine = Kard_sched.Machine

type profile = {
  objects : int;
  object_size : int;
  sections : int;
  stripes : int;
  entries : int;
  writes_per_entry : int;
  hot_window : int;
  rotate_every : int;
  plant_every : int;
  cs_compute : int;
  compute : int;
  min_entries : int;
}

let default =
  { objects = 10_000;
    object_size = 64;
    sections = 96;
    stripes = 16;
    entries = 12_000;
    writes_per_entry = 4;
    hot_window = 8;
    rotate_every = 192;
    plant_every = 2;
    cs_compute = 4_000;
    compute = 100;
    min_entries = 2_400 }

let factor p ~scale = Builder.scale_factor ~scale ~entries:p.entries ~min_entries:p.min_entries

let effective_entries p ~scale = Builder.scaled (factor p ~scale) p.entries

(* The object population is a mass population: it shrinks with scale
   like [Synth]'s, but never below one object per section (the sharing
   structure — [sections] ownership classes over [stripes] locks —
   must survive scaling). *)
let effective_objects p ~scale =
  let f = factor p ~scale in
  max p.sections (if p.objects <= 64 then p.objects else Builder.scaled f p.objects)

(* Every [plant_every]-th entry performs one wrong-lock write. *)
let planted p ~scale =
  if p.plant_every <= 0 then 0
  else
    let entries = effective_entries p ~scale in
    (entries + p.plant_every - 1) / p.plant_every

let mix idx salt = ((idx * 2654435761) lxor (salt * 40503)) land max_int

(* Object [j] is owned by section [j mod sections]; section [s] locks
   stripe [s mod stripes].  Each object therefore has exactly one lock
   that ever writes it — the workload is race free — except for the
   planted accesses, which deliberately write another section's object
   under the wrong stripe: the classic inconsistent-lock-usage race.

   Detecting a plant requires the victim object's lock association to
   still be alive when the wrong-lock write lands.  Under the physical
   13-key detector, [sections] >> 13 means the victim's key is
   recycled (and the object demoted to k_na) within ~13 section
   entries, so most plants are silently re-identified instead of
   reported.  A virtual pool >= [sections] keeps every association
   alive for the whole run — this family is the precision experiment
   of DESIGN.md §11. *)
let build p ~threads ~scale ~seed:_ machine =
  assert (threads > 0);
  assert (p.sections > 0 && p.stripes > 1);
  let f = factor p ~scale in
  let entries = Builder.scaled f p.entries in
  let obj_n = effective_objects p ~scale in
  let heap_bases = Array.make obj_n 0 in
  let allocated = ref 0 in
  let ready () = !allocated >= obj_n in
  (* Section [s]'s slice of the population: {j | j mod sections = s}. *)
  let slice_size s = ((obj_n - 1 - s) / p.sections) + 1 in
  let slice_obj s i = s + (p.sections * i) in
  (* The hot window rotates through the slice by half-steps as epochs
     advance: the low half of every window was already hot last epoch,
     so associations spread over the whole population (vkey load/evict
     churn) while each entry can re-acquire an established key before
     identifying anything new. *)
  let half = max 1 (p.hot_window / 2) in
  let hot_obj ~s ~epoch ~w =
    let size = slice_size s in
    let start = epoch * half mod size in
    slice_obj s ((start + (w mod p.hot_window)) mod size)
  in
  let section_of i = mix i 31 mod p.sections in
  let entries_of_thread tid = (entries / threads) + (if tid < entries mod threads then 1 else 0) in
  let iteration tid idx =
    ignore tid;
    let b = Program.Builder.create () in
    let add op = Program.Builder.op b op in
    if p.compute > 0 then Program.Builder.compute b p.compute;
    let s = section_of idx in
    let lock = 100 + (s mod p.stripes) in
    let site = 10 + s in
    let epoch = idx / p.rotate_every in
    (* Body order: re-acquire the section's established key (a write
       to the old half of the window), identify the rest, then — at
       peak overlap, mid-section — the plant, then the tail compute.
       A plant only becomes a race record when the victim's key is
       held (or just released) at fault time, so the victim is the
       section of a {e concurrently running} iteration. *)
    let body = ref [] in
    if p.cs_compute > 0 then body := [ Op.Compute (p.cs_compute / 2) ];
    (* The plant: under [s]'s stripe lock, write an object owned by a
       section on a different stripe, at the offset its home section
       writes.  The victim section is taken from the next iteration
       indices — those run on the other threads right now — and the
       object from the victim's re-acquired (old) window half, so the
       victim very likely holds its key when the wrong-lock write
       lands. *)
    if p.plant_every > 0 && idx mod p.plant_every = 0 then begin
      let victim = ref (section_of (idx + 1)) in
      let delta = ref 1 in
      while !victim mod p.stripes = s mod p.stripes do
        incr delta;
        victim := section_of (idx + !delta)
      done;
      let j = hot_obj ~s:!victim ~epoch ~w:(1 + (mix idx 53 mod max 1 (half - 1))) in
      body := Op.Write heap_bases.(j) :: !body
    end;
    for w = p.writes_per_entry - 1 downto 2 do
      let j = hot_obj ~s ~epoch ~w:(mix idx (41 + w) mod p.hot_window) in
      body := Op.Write heap_bases.(j) :: Op.Read heap_bases.(j) :: !body
    done;
    (* The pre-warm write: window slot [half] is next epoch's slot 0,
       so writing it every entry guarantees the anchor chain below
       never breaks across a rotation. *)
    let jw = hot_obj ~s ~epoch ~w:half in
    body := Op.Write heap_bases.(jw) :: !body;
    (* The anchor write: window slot 0 was pre-warmed all of last
       epoch, so this re-acquires the section's established key before
       anything new is identified — under a large enough virtual pool
       a section keeps one key for the whole run, while 13 physical
       keys force cross-section collisions here (another section holds
       this key right now) and hence reassignment churn. *)
    let j0 = hot_obj ~s ~epoch ~w:0 in
    body := Op.Write heap_bases.(j0) :: Op.Read heap_bases.(j0) :: !body;
    if p.cs_compute > 0 then body := Op.Compute (p.cs_compute - (p.cs_compute / 2)) :: !body;
    List.iter add (Builder.critical_section ~lock ~site !body);
    Program.Builder.seal b
  in
  let worker tid =
    let n = entries_of_thread tid in
    let work = Program.repeat n (fun k -> iteration tid ((k * threads) + tid)) in
    Program.append (Builder.wait_until ready) work
  in
  let main_thread =
    let alloc_phase =
      Builder.alloc_into_array ~n:obj_n ~size:p.object_size ~site:7999 ~bases:heap_bases
        ~count:allocated
    in
    Program.append alloc_phase (worker 0)
  in
  let (_ : int) = Machine.spawn machine main_thread in
  for tid = 1 to threads - 1 do
    let (_ : int) = Machine.spawn machine (worker tid) in
    ()
  done

let no_paper_row =
  { Spec.p_heap = 0; p_global = 0; p_ro = 0; p_rw = 0; p_total_cs = 0; p_active_cs = 0;
    p_entries = 0; p_baseline_s = 0.; p_alloc_pct = 0.; p_kard_pct = 0.; p_tsan_pct = 0.;
    p_rss_kb = 0; p_rss_kard_pct = 0.; p_dtlb_base = 0.; p_dtlb_alloc_pct = 0.;
    p_dtlb_kard_pct = 0. }

let spec ~name ~description profile =
  { Spec.name;
    category = Spec.Real_world;
    description;
    paper = no_paper_row;
    default_threads = 8;
    build = (fun ~threads ~scale ~seed machine -> build profile ~threads ~scale ~seed machine) }

(* The registry family: the same structure at three population sizes.
   Entries grow sub-linearly — the point is object count (key-space
   pressure), not more work per object.  [rotate_every] stays at twice
   the section count: a section is revisited about every [sections]
   entries, and the anchor chain (slot 0 pre-warmed as last epoch's
   slot [half]) only survives if at most one epoch boundary passes
   between consecutive visits. *)
let profile_100k =
  { default with
    objects = 100_000;
    sections = 256;
    stripes = 32;
    entries = 24_000;
    rotate_every = 512;
    min_entries = 3_200 }

let profile_1m =
  { default with
    objects = 1_000_000;
    sections = 512;
    stripes = 32;
    entries = 48_000;
    rotate_every = 1_024;
    min_entries = 4_000 }

let keys_10k =
  spec ~name:"keys-10k"
    ~description:"10k lock-protected objects over 96 sections: key pressure with planted ILU races"
    default

let keys_100k =
  spec ~name:"keys-100k"
    ~description:"100k lock-protected objects, 256 sections: deep key virtualization pressure"
    profile_100k

let keys_1m =
  spec ~name:"keys-1m"
    ~description:"1M lock-protected objects, 512 sections: object-scale limit of the vkey cache"
    profile_1m

let all = [ keys_10k; keys_100k; keys_1m ]
