(** A deliberately lock-convoyed workload.

    Not a paper application: this model maximizes lock contention —
    all threads hammer one lock, and nearly every executed operation
    is an in-section access — so that the cost of charging waiter
    dilation dominates the run.  It is the shard benchmark's subject
    (BENCH_pr7.json) and a stress test for the burst engine's merge
    discipline; results must stay byte-identical at any shard count. *)

val convoy : Spec.t
val all : Spec.t list
