let benchmarks = Parsec.all @ Splash.all
let real_world = Apps.all
let all = benchmarks @ real_world
let lock_free = Lockfree.all
let serving = Openloop.all
let contention = Contended.all
let key_pressure = Keypressure.all
let extended = all @ lock_free @ serving @ contention @ key_pressure

let find name =
  match List.find_opt (fun spec -> String.equal spec.Spec.name name) extended with
  | Some spec -> spec
  | None -> raise Not_found

let names = List.map (fun spec -> spec.Spec.name) extended
