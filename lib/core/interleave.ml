module Int_set = Set.Make (Int)

type verdict =
  | Pending
  | Spurious of Race_record.t list
  | Confirmed

type entry = {
  mutable offsets : (int * Int_set.t) list; (* per-thread byte sets *)
  mutable records : Race_record.t list;
}

type t = {
  entries : (int, entry) Hashtbl.t; (* obj_id -> state *)
  mutable started : int;
  mutable pruned : int;
  mutable confirmed : int;
}

let create () = { entries = Hashtbl.create 16; started = 0; pruned = 0; confirmed = 0 }

let active t ~obj_id = Hashtbl.mem t.entries obj_id

let add_offset entry tid offset =
  let current =
    match List.assoc_opt tid entry.offsets with
    | Some set -> set
    | None -> Int_set.empty
  in
  entry.offsets <- (tid, Int_set.add offset current) :: List.remove_assoc tid entry.offsets

let start t ~obj_id ~record =
  let entry = { offsets = []; records = [ record ] } in
  add_offset entry record.Race_record.faulting.Race_record.thread record.Race_record.offset;
  Hashtbl.replace t.entries obj_id entry;
  t.started <- t.started + 1

let attach_record t ~obj_id ~record =
  match Hashtbl.find_opt t.entries obj_id with
  | Some entry -> entry.records <- record :: entry.records
  | None -> ()

(* Evidence is conclusive when at least two threads have byte sets:
   any overlap confirms, full pairwise disjointness refutes. *)
let verdict_of entry =
  match entry.offsets with
  | [] | [ _ ] -> Pending
  | sides ->
    let rec pairwise_overlap = function
      | [] -> false
      | (_, set) :: rest ->
        List.exists (fun (_, other) -> not (Int_set.disjoint set other)) rest
        || pairwise_overlap rest
    in
    if pairwise_overlap sides then Confirmed else Spurious entry.records

let observe t ~obj_id ~tid ~offset =
  match Hashtbl.find_opt t.entries obj_id with
  | None -> Pending
  | Some entry ->
    add_offset entry tid offset;
    verdict_of entry

let participants t ~obj_id =
  match Hashtbl.find_opt t.entries obj_id with
  | Some entry -> List.map fst entry.offsets
  | None -> []

let finish t ~obj_id = Hashtbl.remove t.entries obj_id

let finish_thread t ~tid =
  (* Runs on every section exit; with no interleaving in progress
     (the steady state) return without building the fold closure. *)
  if Hashtbl.length t.entries = 0 then []
  else begin
    let affected =
      Hashtbl.fold
        (fun obj_id entry acc -> if List.mem_assoc tid entry.offsets then obj_id :: acc else acc)
        t.entries []
    in
    List.iter (fun obj_id -> finish t ~obj_id) affected;
    affected
  end

let started_count t = t.started
let pruned_count t = t.pruned
let confirmed_count t = t.confirmed
let note_pruned t n = t.pruned <- t.pruned + n
let note_confirmed t = t.confirmed <- t.confirmed + 1
