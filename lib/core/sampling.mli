(** The sampling policy: seeded selection of which objects and
    critical sections get pkey protection (DESIGN.md §12).

    A pure decision procedure — every answer is a function of
    (seed, rate, epoch, id) only, so the sampled set is byte-identical
    at any [--jobs]/[--shards] count.  At rate 1.0 the policy is
    disabled and every query answers [true] without hashing: the
    detector is byte-identical to the pre-sampling build.

    Soundness contract: sampling only ever {e removes} protection.
    Unsampled objects keep the default key and never fault, so the
    sampled detector's reports are a subset of full Kard's — races may
    be delayed (caught in a later epoch) or missed, never invented. *)

type t

val create : rate:float -> epoch_cycles:int -> seed:int -> t
(** @raise Invalid_argument unless [rate] is in (0, 1] and
    [epoch_cycles >= 0]. *)

val of_config : Config.t -> t

val enabled : t -> bool
(** [false] at rate 1.0 — the identity fast path. *)

val rate : t -> float
val epoch_cycles : t -> int

val epoch_of : t -> now:int -> int
(** The epoch the virtual-clock instant [now] falls in; constantly 0
    when rotation is off ([epoch_cycles = 0]). *)

val sampled_obj : t -> epoch:int -> obj_id:int -> bool
(** Whether the object is under pkey protection this epoch.  The
    policy is a sliding window over a hashed ring: the protected
    fraction is [rate] in every epoch, membership churn per rotation
    is bounded by [2 * min(rate, 1/128)] of the population (an
    independent re-draw would churn [2*rate*(1-rate)] — ruinous,
    since every object entering the set pays a re-identification
    fault), and the window covers the whole ring — every id — after
    one revolution (at least 128 epochs). *)

val sampled_section : t -> epoch:int -> section:int -> bool
(** Whether the section runs the full entry protocol (proactive walk,
    PKRU switch) this epoch; decided by section identity, independent
    of [sampled_obj]. *)

val pp : Format.formatter -> t -> unit
