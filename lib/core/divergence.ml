type cls =
  | Grouping_over_report
  | Grouping_under_report
  | Timestamp_window
  | Key_sharing_miss
  | Recycling_miss
  | Interleave_prune
  | Demotion_miss
  | Ro_shadow_miss
  | Ro_fault_blame
  | Proactive_hold_blame
  | Hb_extra_ilu
  | Hb_extra_unlocked
  | Ilu_not_hb
  | Lockset_over_report
  | Lockset_shared_read_miss
  | Lockset_init_miss
  | Vkey_eviction_blame
  | Sampling_missed_race
  | Shard_divergence
  | Replay_divergence
  | Unexpected

let all =
  [
    Grouping_over_report;
    Grouping_under_report;
    Timestamp_window;
    Key_sharing_miss;
    Recycling_miss;
    Interleave_prune;
    Demotion_miss;
    Ro_shadow_miss;
    Ro_fault_blame;
    Proactive_hold_blame;
    Hb_extra_ilu;
    Hb_extra_unlocked;
    Ilu_not_hb;
    Lockset_over_report;
    Lockset_shared_read_miss;
    Lockset_init_miss;
    Vkey_eviction_blame;
    Sampling_missed_race;
    Shard_divergence;
    Replay_divergence;
    Unexpected;
  ]

let name = function
  | Grouping_over_report -> "grouping-over-report"
  | Grouping_under_report -> "grouping-under-report"
  | Timestamp_window -> "timestamp-window"
  | Key_sharing_miss -> "key-sharing-miss"
  | Recycling_miss -> "recycling-miss"
  | Interleave_prune -> "interleave-prune"
  | Demotion_miss -> "demotion-miss"
  | Ro_shadow_miss -> "ro-reader-shadow"
  | Ro_fault_blame -> "ro-fault-time-blame"
  | Proactive_hold_blame -> "proactive-hold-blame"
  | Hb_extra_ilu -> "hb-extra-ilu"
  | Hb_extra_unlocked -> "hb-extra-unlocked"
  | Ilu_not_hb -> "ilu-not-hb"
  | Lockset_over_report -> "lockset-over-report"
  | Lockset_shared_read_miss -> "lockset-shared-read-miss"
  | Lockset_init_miss -> "lockset-init-miss"
  | Vkey_eviction_blame -> "vkey-eviction-blame"
  | Sampling_missed_race -> "sampling-missed-race"
  | Shard_divergence -> "shard-divergence"
  | Replay_divergence -> "replay-divergence"
  | Unexpected -> "unexpected"

let of_name s = List.find_opt (fun c -> String.equal (name c) s) all

let describe = function
  | Grouping_over_report ->
      "Kard over-reports: the object shared a physical key with others, so a \
       group-key fault blamed a holder that held nothing for this object"
  | Grouping_under_report ->
      "Kard under-reports: the thread already held the object's group key for \
       another object, so the per-object acquisition never faulted"
  | Timestamp_window ->
      "Kard over-reports: the conflicting key was released inside the \
       fault-to-handler window and the release-timestamp check rescued the \
       record"
  | Key_sharing_miss ->
      "Kard under-reports: key exhaustion shared a held key, so the \
       conflicting access did not fault (Table 4 false negative)"
  | Recycling_miss ->
      "Kard under-reports: the object's key was recycled mid-conflict and the \
       object demoted to the read-only domain, dropping holder state"
  | Interleave_prune ->
      "Kard under-reports: protection interleaving judged the race record \
       spurious and removed it"
  | Demotion_miss ->
      "Kard under-reports: the object was demoted to Not-accessed \
       mid-conflict (keyless access or interleaving wind-down), dropping its \
       key state"
  | Ro_shadow_miss ->
      "Kard under-reports: reads on the Read-only domain never fault, so \
       later reader sections are invisible to the section-object map"
  | Ro_fault_blame ->
      "Kard extra report: a write fault on the key-less Read-only domain \
       blames active reader sections via the fault-time section-object map, \
       beyond Algorithm 1's acquisition-time key semantics"
  | Proactive_hold_blame ->
      "Kard extra report: the record blames a hold formed by the proactive \
       section-entry walk that Algorithm 1 never grants — either a contested \
       write-need downgraded to a read hold (the algorithm skips unacquirable \
       keys outright), or a re-entry reclaimed a key the algorithm still \
       shows held because a nested exit dropped the runtime's outer hold"
  | Hb_extra_ilu ->
      "HB-only race between lock-protected accesses: the critical sections \
       never overlapped in this schedule, so no key was held at access time"
  | Hb_extra_unlocked ->
      "HB-only race with no lock held on either side: outside Kard's ILU scope"
  | Ilu_not_hb ->
      "ILU potential race whose two sides happen to be happens-before ordered \
       in this schedule"
  | Lockset_over_report ->
      "Lockset-only warning: Eraser ignores whether the conflicting accesses \
       can actually be concurrent"
  | Lockset_shared_read_miss ->
      "Lockset miss: Eraser's state machine only warns in Shared-modified, so \
       writer-then-concurrent-readers races stay silent"
  | Lockset_init_miss ->
      "Lockset miss: the initialization heuristic exempts Virgin/Exclusive \
       accesses from refinement, hiding races against the first owner"
  | Vkey_eviction_blame ->
      "Kard diverges inside a vkey-cache miss window: every residency slot \
       was pinned so an access was emulated unprotected (missed fault), or a \
       proactive acquisition was skipped because the object's virtual key was \
       evicted at section entry — Algorithm 1 has no cache and no such window"
  | Sampling_missed_race ->
      "Kard under-reports by design: the sampling policy left the object (or \
       the racing section) unprotected this epoch, so the conflicting access \
       never faulted — the HardRace trade: detection latency, never soundness"
  | Shard_divergence ->
      "the sharded machine diverged: a run at shards>1 produced a different \
       report or race-record list than the same run at shards=1, breaching \
       the burst engine's determinism contract (DESIGN.md section 10): real bug"
  | Replay_divergence ->
      "record/replay broke: re-executing the run from its nondeterminism log \
       produced a different report or race-record list, the log failed its \
       encode/decode round trip, or the replay tape did not match — breaching \
       the replay layer's determinism contract (DESIGN.md section 13): real bug"
  | Unexpected -> "no documented mechanism explains the disagreement: real bug"

let expected = function
  | Shard_divergence | Replay_divergence | Unexpected -> false
  | _ -> true

let index c =
  let rec go i = function
    | [] -> assert false
    | x :: tl -> if x == c then i else go (i + 1) tl
  in
  go 0 all

let compare a b = Int.compare (index a) (index b)
let equal a b = compare a b = 0
let pp fmt c = Format.pp_print_string fmt (name c)
