(** Effective key assignment (section 5.4).

    When a newly identified shared object needs a Read-write domain
    key, Kard follows three rules: reuse a key the faulting thread
    already holds; otherwise take an unassigned key; otherwise recycle
    an assigned-but-unheld key (demoting its objects to the Read-only
    domain) or, as a last resort, share a held key — preferring keys
    whose holding sections touch disjoint object sets, since sharing
    is the one source of false negatives (Table 4).

    Keys are plain [int]s: physical data pkeys ([1..data_keys]) in
    identity mode, virtual keys ([1..vkeys]) under the vkey cache
    (DESIGN.md §11).  Virtual mode replaces the O(keys) fresh/recycle
    scans with cursors so a pool of thousands stays O(1) amortized per
    assignment; with so many keys, sharing only triggers once the
    entire pool is simultaneously held. *)

type decision =
  | Reuse of int
      (** The thread already holds this key; protect the object with it. *)
  | Fresh of int
      (** An unassigned key. *)
  | Recycle of int * int list
      (** An unheld key; the listed objects must be demoted to the
          Read-only domain before reuse. *)
  | Share of int
      (** A currently held key; may cause false negatives. *)

type stats = {
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
}

type t

val create : Config.t -> t

val available_keys : t -> int list
(** The keys this configuration may hand out (physical data keys or
    the virtual pool). *)

val choose :
  t ->
  ksmap:Key_section_map.t ->
  domains:Domain_state.t ->
  somap:Section_object_map.t ->
  tid:int ->
  section:int ->
  decision
(** Decide a key for a new Read-write domain object identified by
    [tid] inside [section]. *)

val note : t -> decision -> unit
(** Record the decision in the statistics and advance the virtual-mode
    cursors (callers invoke this after actually applying the
    decision). *)

val stats : t -> stats
val pp_decision : Format.formatter -> decision -> unit
