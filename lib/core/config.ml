type section_identity =
  | By_call_site
  | By_lock

type t = {
  data_keys : int;
  proactive_acquisition : bool;
  protection_interleaving : bool;
  timestamp_pruning : bool;
  redundancy_pruning : bool;
  metadata_pruning : bool;
  prefer_recycle : bool;
  share_disjoint_sections : bool;
  software_fallback : bool;
  exit_delay_cycles : int;
  section_identity : section_identity;
  vkeys : int;
  sampling : float;
  sampling_epoch : int;
  sampling_seed : int;
}

let default =
  { data_keys = Kard_mpk.Pkey.data_key_count;
    proactive_acquisition = true;
    protection_interleaving = true;
    timestamp_pruning = true;
    redundancy_pruning = true;
    metadata_pruning = true;
    prefer_recycle = true;
    share_disjoint_sections = true;
    software_fallback = false;
    exit_delay_cycles = 0;
    section_identity = By_call_site;
    vkeys = 0;
    sampling = 1.0;
    sampling_epoch = 2_000_000;
    sampling_seed = 0x5eed }

let pp fmt t =
  Format.fprintf fmt
    "@[<h>{keys=%d proactive=%b interleave=%b ts-prune=%b dedupe=%b meta-prune=%b recycle=%b \
     share-disjoint=%b soft-fallback=%b vkeys=%d sampling=%g}@]"
    t.data_keys t.proactive_acquisition t.protection_interleaving t.timestamp_pruning
    t.redundancy_pruning t.metadata_pruning t.prefer_recycle t.share_disjoint_sections
    t.software_fallback t.vkeys t.sampling
