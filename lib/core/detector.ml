module Pkey = Kard_mpk.Pkey
module Perm = Kard_mpk.Perm
module Pkru = Kard_mpk.Pkru
module Page = Kard_mpk.Page
module Fault = Kard_mpk.Fault
module Cost_model = Kard_mpk.Cost_model
module Mpk_hw = Kard_mpk.Mpk_hw
module Vkey = Kard_mpk.Vkey
module Obj_meta = Kard_alloc.Obj_meta
module Meta_table = Kard_alloc.Meta_table
module Hooks = Kard_sched.Hooks
module Dense = Kard_sched.Dense

(* Frames are pooled per thread: section nesting is shallow and
   entry/exit runs on every lock operation, so the stack is an array
   of mutable records reused across sections and the acquired-key set
   is a small int stack — no allocation per section. *)
type frame = {
  mutable lock : int;
  mutable site : int;
  mutable saved_pkru : Pkru.t;
  mutable wrpkru_at_entry : int;
      (** WRPKRU total at section entry, so exit can report the
          per-entry WRPKRU cost to the metrics registry. *)
  mutable acquired : int array; (* keys (virtual in vkey mode), as ints *)
  mutable nacquired : int;
  mutable sampled : bool;
      (** Whether this section ran the full entry protocol; an
          unsampled section skipped the k_na retraction, the
          proactive walk and the PKRU switch (DESIGN.md §12). *)
}

type thread_state = {
  mutable frames : frame array; (* slots [0..depth-1] are live *)
  mutable depth : int;
}

type stats = {
  na_faults : int;
  ro_faults : int;
  data_faults : int;
  anomalies : int;
  identifications_read : int;
  identifications_write : int;
  proactive_acquisitions : int;
  reactive_acquisitions : int;
  demotions : int;
  timestamp_rescues : int;
  max_active_sections : int;
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
  migrations : int;
  interleavings_started : int;
  records_logged : int;
  records_redundant : int;
  records_pruned_spurious : int;
  soft_fallbacks : int;
  soft_faults : int;
  vkey_pool : int;
  vkey_resident : int;
  vkey_hits : int;
  vkey_misses : int;
  vkey_evictions : int;
  vkey_loads : int;
  vkey_retag_pages : int;
  vkey_stalls : int;
  sampling_rate : float;
  sampled_sections : int;
  skipped_sections : int;
  sampled_objects : int;
  skipped_objects : int;
  skipped_accesses : int;
  sampling_rotations : int;
  sampling_rearm_pages : int;
  first_race_cs : int;
}

type t = {
  config : Config.t;
  env : Hooks.env;
  domains : Domain_state.t;
  somap : Section_object_map.t;
  ksmap : Key_section_map.t;
  assign : Key_assign.t;
  interleave : Interleave.t;
  pruning : Pruning.t;
  soft : Soft_keys.t;
  vkey : Vkey.t;
  slots : int array; (* physical residency slots, virtual mode only *)
  soft_key : Pkey.t; (* always-denied tag of software-pooled pages *)
  (* Per-thread and per-site state is indexed by the (small, dense)
     id, and the seen-object sets are bitsets: these are touched on
     every section entry/exit and must not hash or allocate. *)
  mutable threads : thread_state option array; (* index = tid *)
  (* site -> executing threads, as an int stack: slot [site] of
     [active] holds [active_n.(site)] live tids. *)
  mutable active : int array array;
  mutable active_n : int array;
  ro_seen : Dense.Bitset.t;
  rw_seen : Dense.Bitset.t;
  mutable active_count : int;
  mutable max_active : int;
  mutable na_faults : int;
  mutable ro_faults : int;
  mutable data_faults : int;
  mutable anomalies : int;
  mutable ident_read : int;
  mutable ident_write : int;
  mutable proactive_acq : int;
  mutable reactive_acq : int;
  mutable demotions : int;
  mutable ts_rescues : int;
  mutable soft_fallbacks : int;
  mutable soft_faults : int;
  (* Per-object provenance for the differential classifier
     (Divergence): which documented precision-losing mechanisms fired
     on which objects this run.  All appended on fault/assignment cold
     paths only. *)
  prov_rescued : Dense.Bitset.t;
  prov_grouped : Dense.Bitset.t;
  prov_key_shared : Dense.Bitset.t;
  prov_recycled : Dense.Bitset.t;
  prov_pruned : Dense.Bitset.t;
  prov_softened : Dense.Bitset.t;
  prov_demoted : Dense.Bitset.t;
  prov_ro_blamed : Dense.Bitset.t;
  prov_proactive_blame : Dense.Bitset.t;
  prov_vkey_blamed : Dense.Bitset.t;
  (* The sampling layer (DESIGN.md §12).  [unsampled] holds the
     objects currently on the default-key fast path; [skip_list] is
     every object ever unsampled (rotation iterates it to re-arm),
     deduplicated by [skip_ever].  [cur_epoch] only advances at
     section entry, so every sampling decision is a pure function of
     state that is identical at any --jobs/--shards count. *)
  sampling : Sampling.t;
  mutable cur_epoch : int;
  unsampled : Dense.Bitset.t;
  skip_ever : Dense.Bitset.t;
  mutable skip_list : int array;
  mutable skip_n : int;
  prov_sampling_skipped : Dense.Bitset.t;
  mutable sampled_sections : int;
  mutable skipped_sections : int;
  mutable sampled_objects : int;
  mutable skipped_objects : int;
  mutable skipped_accesses : int;
  mutable sampling_rotations : int;
  mutable sampling_rearm_pages : int;
  mutable cs_entries : int;
  mutable first_race_cs : int; (* cs_entries at the first fresh record; -1 = none *)
  (* Result slot for [proactive_walk]: the walk accumulates the
     section-entry PKRU here instead of returning a (pkru, cycles)
     tuple, keeping the per-section-entry path allocation-free. *)
  mutable walk_pkru : Pkru.t;
}

(* Virtual mode repurposes the last data key as the always-deny tag of
   evicted virtual keys: no thread is ever granted it, so every access
   to an evicted key's pages traps into {!handle_vkey_miss}. *)
let evict_tag = Pkey.of_int Pkey.data_key_count

let data_key_ints = List.map Pkey.to_int Pkey.data_keys

let create ?(config = Config.default) env =
  let vpool = max 0 config.Config.vkeys in
  (* The software pool reserves a data key as its always-denied
     hardware tag.  Identity mode: the last one (k13).  Virtual mode:
     k13 is the evict tag, so the pool moves down to k12 and the
     residency slots shrink accordingly. *)
  let assign_config =
    if config.Config.software_fallback then
      { config with Config.data_keys = min config.Config.data_keys (Pkey.data_key_count - 1) }
    else config
  in
  let reserved =
    (if vpool > 0 then 1 else 0) + if config.Config.software_fallback then 1 else 0
  in
  let slots =
    if vpool = 0 then [||]
    else
      Array.init
        (min vpool (min config.Config.data_keys (Pkey.data_key_count - reserved)))
        (fun i -> i + 1)
  in
  let vkey = if vpool = 0 then Vkey.identity else Vkey.create ~pool:vpool ~phys:slots in
  let soft_key =
    Pkey.of_int (if vpool > 0 then Pkey.data_key_count - 1 else Pkey.data_key_count)
  in
  { config;
    env;
    domains = Domain_state.create ();
    somap = Section_object_map.create ();
    ksmap = Key_section_map.create ();
    assign = Key_assign.create assign_config;
    interleave = Interleave.create ();
    pruning = Pruning.create ~dedupe:config.Config.redundancy_pruning ();
    soft = Soft_keys.create ();
    vkey;
    slots;
    soft_key;
    threads = Array.make 16 None;
    active = Array.make 64 [||];
    active_n = Array.make 64 0;
    ro_seen = Dense.Bitset.create ~capacity:256 ();
    rw_seen = Dense.Bitset.create ~capacity:256 ();
    active_count = 0;
    max_active = 0;
    na_faults = 0;
    ro_faults = 0;
    data_faults = 0;
    anomalies = 0;
    ident_read = 0;
    ident_write = 0;
    proactive_acq = 0;
    reactive_acq = 0;
    demotions = 0;
    ts_rescues = 0;
    soft_fallbacks = 0;
    soft_faults = 0;
    prov_rescued = Dense.Bitset.create ~capacity:256 ();
    prov_grouped = Dense.Bitset.create ~capacity:256 ();
    prov_key_shared = Dense.Bitset.create ~capacity:256 ();
    prov_recycled = Dense.Bitset.create ~capacity:256 ();
    prov_pruned = Dense.Bitset.create ~capacity:256 ();
    prov_softened = Dense.Bitset.create ~capacity:256 ();
    prov_demoted = Dense.Bitset.create ~capacity:256 ();
    prov_ro_blamed = Dense.Bitset.create ~capacity:256 ();
    prov_proactive_blame = Dense.Bitset.create ~capacity:256 ();
    prov_vkey_blamed = Dense.Bitset.create ~capacity:256 ();
    sampling = Sampling.of_config config;
    cur_epoch = 0;
    unsampled = Dense.Bitset.create ~capacity:256 ();
    skip_ever = Dense.Bitset.create ~capacity:256 ();
    skip_list = [||];
    skip_n = 0;
    prov_sampling_skipped = Dense.Bitset.create ~capacity:256 ();
    sampled_sections = 0;
    skipped_sections = 0;
    sampled_objects = 0;
    skipped_objects = 0;
    skipped_accesses = 0;
    sampling_rotations = 0;
    sampling_rearm_pages = 0;
    cs_entries = 0;
    first_race_cs = -1;
    walk_pkru = Pkru.all_access }

let cost t = t.env.Hooks.cost
let hw t = t.env.Hooks.hw
let now t = t.env.Hooks.now ()
let trace t = t.env.Hooks.trace

(* The domain-table id of software-pooled objects: the reserved
   physical key itself in identity mode, one past the virtual pool
   otherwise — it must never collide with a virtual key, or a vkey
   load would retag pooled pages with a grantable slot. *)
let soft_id t =
  if Vkey.virtualized t.vkey then Vkey.pool t.vkey + 1 else Pkey.to_int t.soft_key

(* The physical tag an object protected by [key] must carry right now:
   the key itself in identity mode; in virtual mode the key's residency
   slot, the evict tag while it is evicted, or the software-pool tag
   for pooled objects. *)
let phys_tag t key =
  if Vkey.virtualized t.vkey then
    if key > Vkey.pool t.vkey then t.soft_key
    else
      let p = Vkey.phys_of t.vkey key in
      if p < 0 then evict_tag else Pkey.of_int p
  else Pkey.of_int key

(* Data keys currently held by some section; sampled into the trace on
   every key-state change (the libmpk-style occupancy view).  Virtual
   mode reports slot residency instead — the physical-register view. *)
let sample_occupancy t =
  match trace t with
  | None -> ()
  | Some tr ->
    let live =
      if Vkey.virtualized t.vkey then Vkey.resident_count t.vkey
      else
        let unheld = List.length (Key_section_map.unheld_keys t.ksmap ~among:data_key_ints) in
        Pkey.data_key_count - unheld
    in
    Kard_obs.Trace.emit tr ~tid:(-1) (Kard_obs.Event.Pkey_occupancy { live });
    Kard_obs.Trace.observe (trace t) "kard.live_pkeys" live


let thread_state t tid =
  if tid < 0 then invalid_arg "Detector: negative thread id";
  if tid >= Array.length t.threads then begin
    let bigger = Array.make (Dense.grow_pow2 (Array.length t.threads) tid) None in
    Array.blit t.threads 0 bigger 0 (Array.length t.threads);
    t.threads <- bigger
  end;
  match t.threads.(tid) with
  | Some ts -> ts
  | None ->
    let ts = { frames = [||]; depth = 0 } in
    t.threads.(tid) <- Some ts;
    ts

(* Reuse the frame slot at [depth] (growing the stack with fresh
   records when the nesting exceeds anything seen before). *)
let push_frame ts ~lock ~site ~saved_pkru ~wrpkru_at_entry =
  if ts.depth = Array.length ts.frames then begin
    let cap = max 4 (2 * ts.depth) in
    let bigger =
      Array.init cap (fun i ->
          if i < ts.depth then ts.frames.(i)
          else
            { lock; site; saved_pkru; wrpkru_at_entry; acquired = Array.make 4 0; nacquired = 0;
              sampled = true })
    in
    ts.frames <- bigger
  end;
  let frame = ts.frames.(ts.depth) in
  ts.depth <- ts.depth + 1;
  frame.lock <- lock;
  frame.site <- site;
  frame.saved_pkru <- saved_pkru;
  frame.wrpkru_at_entry <- wrpkru_at_entry;
  frame.nacquired <- 0;
  frame.sampled <- true;
  frame

let holds_lock ts lock =
  let rec scan i = i < ts.depth && (ts.frames.(i).lock = lock || scan (i + 1)) in
  scan 0

let current_frame t tid =
  let ts = thread_state t tid in
  if ts.depth = 0 then None else Some ts.frames.(ts.depth - 1)

let current_site t tid = Option.map (fun f -> f.site) (current_frame t tid)

(* {2 Active-section tracking (used for Read-only domain conflicts)} *)

let ensure_site t site =
  if site < 0 then invalid_arg "Detector: negative section id";
  if site >= Array.length t.active then begin
    let cap = Dense.grow_pow2 (Array.length t.active) site in
    let active = Array.make cap [||] in
    Array.blit t.active 0 active 0 (Array.length t.active);
    t.active <- active;
    let active_n = Array.make cap 0 in
    Array.blit t.active_n 0 active_n 0 (Array.length t.active_n);
    t.active_n <- active_n
  end

let active_enter t ~site ~tid =
  ensure_site t site;
  let n = t.active_n.(site) in
  if n = Array.length t.active.(site) then begin
    let bigger = Array.make (max 4 (2 * n)) 0 in
    Array.blit t.active.(site) 0 bigger 0 n;
    t.active.(site) <- bigger
  end;
  t.active.(site).(n) <- tid;
  t.active_n.(site) <- n + 1;
  t.active_count <- t.active_count + 1;
  if t.active_count > t.max_active then t.max_active <- t.active_count

let active_exit t ~site ~tid =
  ensure_site t site;
  (* Drop the most recent entry of [tid], as the cons-list
     predecessor's head-first scan did. *)
  let stk = t.active.(site) in
  let n = t.active_n.(site) in
  let rec find i = if i < 0 then -1 else if stk.(i) = tid then i else find (i - 1) in
  let i = find (n - 1) in
  if i >= 0 then begin
    for j = i to n - 2 do
      stk.(j) <- stk.(j + 1)
    done;
    t.active_n.(site) <- n - 1
  end;
  t.active_count <- t.active_count - 1

(* Most recent entry first, as the cons-list predecessor returned. *)
let active_tids t ~site =
  if site >= 0 && site < Array.length t.active then begin
    let stk = t.active.(site) in
    let rec go i acc = if i >= t.active_n.(site) then acc else go (i + 1) (stk.(i) :: acc) in
    go 0 []
  end
  else []

let active_readers t ~obj_id ~excluding_tid =
  List.concat_map
    (fun site ->
      List.filter_map
        (fun tid -> if tid <> excluding_tid then Some (tid, site) else None)
        (active_tids t ~site))
    (Section_object_map.sections_reading t.somap ~obj_id)

(* {2 Protection changes} *)

let protect_pages t (meta : Obj_meta.t) pkey =
  let base = Page.base_of_vpage (Page.vpage_of_addr meta.Obj_meta.base) in
  Mpk_hw.pkey_mprotect (hw t) ~base ~len:(meta.Obj_meta.pages * Page.size) pkey

let demote_to_kna t (meta : Obj_meta.t) =
  t.demotions <- t.demotions + 1;
  Dense.Bitset.add t.prov_demoted meta.Obj_meta.id;
  (match trace t with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1)
      (Kard_obs.Event.Key_demote { obj_id = meta.Obj_meta.id; to_ro = false }));
  Domain_state.set t.domains ~obj_id:meta.Obj_meta.id Domain_state.Not_accessed;
  protect_pages t meta Pkey.k_na

let demote_to_ro t (meta : Obj_meta.t) =
  (match trace t with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1)
      (Kard_obs.Event.Key_demote { obj_id = meta.Obj_meta.id; to_ro = true }));
  Domain_state.set t.domains ~obj_id:meta.Obj_meta.id Domain_state.Read_only;
  protect_pages t meta Pkey.k_ro

(* {2 The virtual-key cache (DESIGN.md §11)} *)

(* Batch-retag every page of [objs] to [pkey]: one counted syscall for
   the whole list, charged at the cheaper per-page vkey rate (libmpk's
   eviction batches the ranges into a single kernel crossing). *)
let retag_batch_objects t objs pkey =
  let ranges =
    List.filter_map
      (fun obj_id ->
        match Meta_table.find_id t.env.Hooks.meta obj_id with
        | Some (m : Obj_meta.t) ->
          Some
            ( Page.base_of_vpage (Page.vpage_of_addr m.Obj_meta.base),
              m.Obj_meta.pages * Page.size )
        | None -> None)
      objs
  in
  Mpk_hw.retag_batch (hw t) ranges pkey

let retag_objects t objs pkey =
  let pages, cycles = retag_batch_objects t objs pkey in
  Vkey.note_retag_pages t.vkey pages;
  (pages, cycles)

(* {2 The sampling layer (DESIGN.md §12)} *)

let skip_note t obj_id =
  Dense.Bitset.add t.unsampled obj_id;
  Dense.Bitset.add t.prov_sampling_skipped obj_id;
  if not (Dense.Bitset.mem t.skip_ever obj_id) then begin
    Dense.Bitset.add t.skip_ever obj_id;
    if t.skip_n = Array.length t.skip_list then begin
      let bigger = Array.make (Dense.grow_pow2 t.skip_n t.skip_n) 0 in
      Array.blit t.skip_list 0 bigger 0 t.skip_n;
      t.skip_list <- bigger
    end;
    t.skip_list.(t.skip_n) <- obj_id;
    t.skip_n <- t.skip_n + 1
  end

(* Release every piece of detector state an object leaving the
   sampled set holds; after this only the retag to the default key
   remains and accesses are the zero-cost fast path. *)
let drain_note t obj_id =
  t.skipped_objects <- t.skipped_objects + 1;
  skip_note t obj_id;
  Domain_state.forget t.domains ~obj_id;
  Section_object_map.forget_object t.somap ~obj_id;
  Interleave.finish t.interleave ~obj_id;
  match trace t with
  | None -> ()
  | Some tr ->
    Kard_obs.Trace.emit tr ~tid:(-1)
      (Kard_obs.Event.Key_demote { obj_id; to_ro = false })

(* Defensive path: rotations drain eagerly ({!maybe_rotate}), so an
   object drawn out of the sampled set should never fault — but if one
   does (tags it still carries), drain it here and retry. *)
let drain_unsampled t (meta : Obj_meta.t) =
  drain_note t meta.Obj_meta.id;
  let c = cost t in
  let mprotect = protect_pages t meta Pkey.k_def in
  { Hooks.fault_cycles = mprotect + c.Cost_model.map_op; action = Hooks.Retry }

(* Epoch rotation, observed at section entry against the virtual
   clock: fast-path objects redrawn into the new epoch's sampled set
   are re-armed to [k_na] (their next access re-identifies them), and
   live objects sliding out of the window are drained — state
   released, pages back to the default key — right here, one batched
   retag per direction instead of a full fault round trip per outed
   object.  The policy scan itself is bookkeeping the real runtime
   folds into the epoch timer, so only the retags are charged — to
   the entering section. *)
let maybe_rotate t =
  if not (Sampling.enabled t.sampling) || Sampling.epoch_cycles t.sampling = 0 then 0
  else begin
    let e = Sampling.epoch_of t.sampling ~now:(now t) in
    if e = t.cur_epoch then 0
    else begin
      t.cur_epoch <- e;
      t.sampling_rotations <- t.sampling_rotations + 1;
      let rearm = ref [] in
      for i = t.skip_n - 1 downto 0 do
        let obj_id = t.skip_list.(i) in
        if Dense.Bitset.mem t.unsampled obj_id
           && Sampling.sampled_obj t.sampling ~epoch:e ~obj_id
        then begin
          Dense.Bitset.remove t.unsampled obj_id;
          rearm := obj_id :: !rearm
        end
      done;
      let drain = ref [] in
      Meta_table.iter t.env.Hooks.meta (fun (m : Obj_meta.t) ->
          let obj_id = m.Obj_meta.id in
          if
            (not (Dense.Bitset.mem t.unsampled obj_id))
            && not (Sampling.sampled_obj t.sampling ~epoch:e ~obj_id)
          then drain := obj_id :: !drain);
      let drain = List.sort compare !drain in
      List.iter (fun obj_id -> drain_note t obj_id) drain;
      let drain_cycles =
        match drain with
        | [] -> 0
        | objs -> snd (retag_batch_objects t objs Pkey.k_def)
      in
      let rearm_cycles =
        match !rearm with
        | [] -> 0
        | objs ->
          t.sampled_objects <- t.sampled_objects + List.length objs;
          let pages, cycles = retag_batch_objects t objs Pkey.k_na in
          t.sampling_rearm_pages <- t.sampling_rearm_pages + pages;
          cycles
      in
      drain_cycles + rearm_cycles
    end
  end

(* Make [key] resident (virtual mode), driving the effects the vkey
   table itself never performs: the displaced key's objects are
   batch-retagged to the always-deny tag and the loaded key's objects
   to its slot.  Pinning is answered from ground truth — a key with
   live holders, or whose slot some thread's PKRU still grants, must
   not be displaced or that thread would touch the newly resident
   key's objects unchecked.  Returns the cycle cost, or [None] when
   every slot is pinned by a running thread. *)
let ensure_resident t ~tid key =
  match
    Vkey.ensure t.vkey key ~evictable:(fun ~slot ~vkey ->
        Key_section_map.held_count t.ksmap vkey = 0
        && not (Mpk_hw.any_grant (hw t) (Pkey.of_int slot)))
  with
  | Vkey.Hit _ -> Some 0
  | Vkey.Full -> None
  | Vkey.Loaded { slot; evicted } ->
    let c = cost t in
    let cycles = ref c.Cost_model.vkey_load in
    let evicted_pages = ref 0 in
    if evicted >= 0 then begin
      let pages, cyc =
        retag_objects t (Domain_state.objects_with_key t.domains evicted) evict_tag
      in
      evicted_pages := pages;
      cycles := !cycles + cyc
    end;
    let pages, cyc =
      retag_objects t (Domain_state.objects_with_key t.domains key) (Pkey.of_int slot)
    in
    cycles := !cycles + cyc;
    (match trace t with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid
        (Kard_obs.Event.Vkey_load { vkey = key; slot; evicted; pages = !evicted_pages + pages }));
    Some !cycles

(* Every slot is pinned: pick the resident key to share, preferring
   one whose holding sections touch disjoint object sets (the Table 4
   mitigation), else the first slot in slot order — deterministic
   either way. *)
let share_fallback t ~section =
  let candidates =
    List.filter_map
      (fun p ->
        let v = Vkey.vkey_of_phys t.vkey p in
        if v >= 0 then Some v else None)
      (Array.to_list t.slots)
  in
  let my_objects = List.map fst (Section_object_map.objects_of t.somap ~section) in
  let disjoint v =
    List.for_all
      (fun (h : Key_section_map.holder) ->
        let theirs =
          List.map fst
            (Section_object_map.objects_of t.somap ~section:h.Key_section_map.section)
        in
        not (List.exists (fun o -> List.mem o theirs) my_objects))
      (Key_section_map.holders t.ksmap v)
  in
  let preferred =
    if t.config.Config.share_disjoint_sections then List.find_opt disjoint candidates
    else None
  in
  match (preferred, candidates) with
  | Some v, _ -> v
  | None, v :: _ -> v
  | None, [] -> assert false (* Full implies every slot resident *)

(* {2 PKRU plumbing} *)

(* Grant the physical key backing [key]; callers guarantee residency
   (a key is only granted right after being ensured resident or on a
   fault against its live slot). *)
let grant_in_context t ~tid key perm =
  let pkru = Mpk_hw.pkru_of (hw t) ~tid in
  Mpk_hw.set_pkru_in_context (hw t) ~tid
    (Pkru.set pkru (Pkey.of_int (Vkey.phys_of t.vkey key)) perm)

let frame_note_acquired frame key =
  let rec mem i = i < frame.nacquired && (frame.acquired.(i) = key || mem (i + 1)) in
  if not (mem 0) then begin
    if frame.nacquired = Array.length frame.acquired then begin
      let bigger = Array.make (2 * frame.nacquired) 0 in
      Array.blit frame.acquired 0 bigger 0 frame.nacquired;
      frame.acquired <- bigger
    end;
    frame.acquired.(frame.nacquired) <- key;
    frame.nacquired <- frame.nacquired + 1
  end

(* {2 Key assignment for a write-identified object} *)

(* Returns cycles.  The object lands in the Read-write domain and, if
   the thread gained a key, the PKRU context is updated (reactive
   acquisition, section 5.4). *)
let assign_write_key t ~tid ~frame (meta : Obj_meta.t) =
  let site = frame.site in
  let chosen =
    Key_assign.choose t.assign ~ksmap:t.ksmap ~domains:t.domains ~somap:t.somap ~tid ~section:site
  in
  (* Virtual mode: a Fresh or Recycle choice needs a physical slot
     before its pages can be tagged.  Only when every slot is pinned
     by a running thread does sharing a resident key become the last
     resort — eviction strictly before sharing (DESIGN.md §11). *)
  let decision, load_cycles =
    match chosen with
    | (Key_assign.Fresh key | Key_assign.Recycle (key, _)) when Vkey.virtualized t.vkey -> begin
      match ensure_resident t ~tid key with
      | Some cycles -> (chosen, cycles)
      | None -> (Key_assign.Share (share_fallback t ~section:site), 0)
    end
    | d -> (d, 0)
  in
  (* A Share redirected to the software pool is not a sharing event:
     no key ends up multi-held. *)
  (match decision with
  | Key_assign.Share _ when t.config.Config.software_fallback -> ()
  | d -> Key_assign.note t.assign d);
  let c = cost t in
  let finish_with key assign extra =
    (match trace t with
    | None -> ()
    | Some tr ->
      (match Domain_state.domain_of t.domains ~obj_id:meta.Obj_meta.id with
      | Domain_state.Read_write old when old <> key ->
        Kard_obs.Trace.emit tr ~tid
          (Kard_obs.Event.Key_migrate
             { obj_id = meta.Obj_meta.id; from_key = old; to_key = key })
      | Domain_state.Read_write _ | Domain_state.Read_only | Domain_state.Not_accessed -> ());
      Kard_obs.Trace.emit tr ~tid
        (Kard_obs.Event.Key_assign { key; obj_id = meta.Obj_meta.id; assign }));
    (* Grouping provenance: landing under a key that other live
       objects already carry multiplexes them — faults and non-faults
       against this key stop distinguishing the group members. *)
    (match Domain_state.objects_with_key t.domains key with
    | [] -> ()
    | group ->
      let grouped_other = ref false in
      List.iter
        (fun obj_id ->
          if obj_id <> meta.Obj_meta.id then begin
            grouped_other := true;
            Dense.Bitset.add t.prov_grouped obj_id
          end)
        group;
      if !grouped_other then Dense.Bitset.add t.prov_grouped meta.Obj_meta.id);
    Domain_state.set t.domains ~obj_id:meta.Obj_meta.id (Domain_state.Read_write key);
    Dense.Bitset.add t.rw_seen meta.Obj_meta.id;
    let mprotect = protect_pages t meta (phys_tag t key) in
    sample_occupancy t;
    extra + mprotect + c.Cost_model.map_op
  in
  match decision with
  | Key_assign.Reuse key -> (key, finish_with key Kard_obs.Event.Assign_reuse load_cycles)
  | Key_assign.Fresh key ->
    Key_section_map.acquire t.ksmap key
      { Key_section_map.tid;
        perm = Perm.Read_write;
        section = site;
        lock = frame.lock;
        proactive = false };
    frame_note_acquired frame key;
    grant_in_context t ~tid key Perm.Read_write;
    t.reactive_acq <- t.reactive_acq + 1;
    (key, finish_with key Kard_obs.Event.Assign_fresh (load_cycles + c.Cost_model.atomic_op))
  | Key_assign.Recycle (key, obj_ids) ->
    let demote_cost =
      List.fold_left
        (fun acc obj_id ->
          Dense.Bitset.add t.prov_recycled obj_id;
          match Meta_table.find_id t.env.Hooks.meta obj_id with
          | Some other -> acc + demote_to_ro t other
          | None ->
            Domain_state.forget t.domains ~obj_id;
            acc)
        0 obj_ids
    in
    Key_section_map.acquire t.ksmap key
      { Key_section_map.tid;
        perm = Perm.Read_write;
        section = site;
        lock = frame.lock;
        proactive = false };
    frame_note_acquired frame key;
    grant_in_context t ~tid key Perm.Read_write;
    t.reactive_acq <- t.reactive_acq + 1;
    (key, finish_with key Kard_obs.Event.Assign_recycle
            (load_cycles + demote_cost + c.Cost_model.atomic_op))
  | Key_assign.Share key ->
    if t.config.Config.software_fallback then begin
      (* Section 8: never share — pool the object under a software
         key instead.  Its pages get the reserved always-denied
         hardware tag, so every access traps into the handler. *)
      t.soft_fallbacks <- t.soft_fallbacks + 1;
      Dense.Bitset.add t.prov_softened meta.Obj_meta.id;
      Soft_keys.add_object t.soft ~obj_id:meta.Obj_meta.id;
      let sid = soft_id t in
      (sid, finish_with sid Kard_obs.Event.Assign_share c.Cost_model.atomic_op)
    end
    else begin
      (* Sharing provenance: the key stays multi-held, so accesses by
         any co-holder to any object under it stop faulting — mark the
         incoming object and everything already grouped under the key. *)
      Dense.Bitset.add t.prov_key_shared meta.Obj_meta.id;
      List.iter
        (fun obj_id -> Dense.Bitset.add t.prov_key_shared obj_id)
        (Domain_state.objects_with_key t.domains key);
      Key_section_map.force_acquire t.ksmap key
        { Key_section_map.tid;
        perm = Perm.Read_write;
        section = site;
        lock = frame.lock;
        proactive = false };
      frame_note_acquired frame key;
      grant_in_context t ~tid key Perm.Read_write;
      t.reactive_acq <- t.reactive_acq + 1;
      (key, finish_with key Kard_obs.Event.Assign_share c.Cost_model.atomic_op)
    end

(* {2 Race records} *)

let side_of_holder (h : Key_section_map.holder) =
  { Race_record.thread = h.Key_section_map.tid;
    section = Some h.Key_section_map.section;
    access = (if Perm.equal h.Key_section_map.perm Perm.Read_write then `Write else `Read);
    ip = -1 }

let record_of_fault t (fault : Fault.t) (meta : Obj_meta.t) holding =
  let faulting =
    { Race_record.thread = fault.Fault.thread;
      section = current_site t fault.Fault.thread;
      access = fault.Fault.access;
      ip = fault.Fault.ip }
  in
  { Race_record.obj_id = meta.Obj_meta.id;
    obj_base = meta.Obj_meta.base;
    offset = Obj_meta.offset_of meta fault.Fault.addr;
    faulting;
    holding;
    time = fault.Fault.time }

let handle_verdict t ~obj_id = function
  | Interleave.Pending -> ()
  | Interleave.Spurious records ->
    List.iter
      (fun (r : Race_record.t) -> Dense.Bitset.add t.prov_pruned r.Race_record.obj_id)
      records;
    let removed = Pruning.remove t.pruning records in
    Interleave.note_pruned t.interleave removed;
    Interleave.finish t.interleave ~obj_id
  | Interleave.Confirmed ->
    Interleave.note_confirmed t.interleave;
    Interleave.finish t.interleave ~obj_id

(* Log a race and start/continue protection interleaving on the
   object.  Returns nothing; protection changes are the caller's job. *)
let log_race t (fault : Fault.t) (meta : Obj_meta.t) holding =
  let record = record_of_fault t fault meta holding in
  match Pruning.add t.pruning record with
  | `Redundant ->
    if t.config.Config.protection_interleaving && Interleave.active t.interleave ~obj_id:meta.Obj_meta.id
    then
      handle_verdict t ~obj_id:meta.Obj_meta.id
        (Interleave.observe t.interleave ~obj_id:meta.Obj_meta.id ~tid:fault.Fault.thread
           ~offset:record.Race_record.offset)
  | `Fresh ->
    if t.first_race_cs < 0 then t.first_race_cs <- t.cs_entries;
    (match trace t with
    | None -> ()
    | Some tr ->
      Kard_obs.Trace.emit tr ~tid:fault.Fault.thread
        (Kard_obs.Event.Race
           { obj_id = meta.Obj_meta.id; offset = record.Race_record.offset });
      Kard_obs.Trace.incr (trace t) "kard.races");
    if t.config.Config.protection_interleaving then begin
      if Interleave.active t.interleave ~obj_id:meta.Obj_meta.id then begin
        Interleave.attach_record t.interleave ~obj_id:meta.Obj_meta.id ~record;
        handle_verdict t ~obj_id:meta.Obj_meta.id
          (Interleave.observe t.interleave ~obj_id:meta.Obj_meta.id ~tid:fault.Fault.thread
             ~offset:record.Race_record.offset)
      end
      else Interleave.start t.interleave ~obj_id:meta.Obj_meta.id ~record
    end

(* Feed an interleaving in progress with a fault observation that is
   not itself a fresh race (identification faults on interleaved
   objects). *)
let observe_interleaving t (fault : Fault.t) (meta : Obj_meta.t) =
  if t.config.Config.protection_interleaving
     && Interleave.active t.interleave ~obj_id:meta.Obj_meta.id
  then
    handle_verdict t ~obj_id:meta.Obj_meta.id
      (Interleave.observe t.interleave ~obj_id:meta.Obj_meta.id ~tid:fault.Fault.thread
         ~offset:(Obj_meta.offset_of meta fault.Fault.addr))

(* {2 Fault handling (section 5.5)} *)

let handle_na_fault t (fault : Fault.t) (meta : Obj_meta.t) =
  t.na_faults <- t.na_faults + 1;
  observe_interleaving t fault meta;
  let c = cost t in
  match current_frame t fault.Fault.thread with
  | None ->
    (* Threads outside critical sections hold k_na read-write; a fault
       here means the scheduler caught a demotion mid-flight.  Retry. *)
    { Hooks.fault_cycles = c.Cost_model.map_op; action = Hooks.Retry }
  | Some frame -> begin
    let tid = fault.Fault.thread in
    match fault.Fault.access with
    | `Read ->
      t.ident_read <- t.ident_read + 1;
      Dense.Bitset.add t.ro_seen meta.Obj_meta.id;
      Section_object_map.record t.somap ~section:frame.site ~obj_id:meta.Obj_meta.id
        Section_object_map.Needs_read;
      let mprotect = demote_to_ro t meta in
      { Hooks.fault_cycles = mprotect + (2 * c.Cost_model.map_op); action = Hooks.Retry }
    | `Write ->
      t.ident_write <- t.ident_write + 1;
      Section_object_map.record t.somap ~section:frame.site ~obj_id:meta.Obj_meta.id
        Section_object_map.Needs_write;
      let _key, cycles = assign_write_key t ~tid ~frame meta in
      { Hooks.fault_cycles = cycles + (2 * c.Cost_model.map_op); action = Hooks.Retry }
  end

let handle_ro_fault t (fault : Fault.t) (meta : Obj_meta.t) =
  t.ro_faults <- t.ro_faults + 1;
  let c = cost t in
  let tid = fault.Fault.thread in
  (* A write on the Read-only domain.  Concurrent readers hold no key
     (k_ro is universal), so conflicts are found through the
     section-object map: sections recorded as readers of this object
     that some other thread is executing right now. *)
  let readers = active_readers t ~obj_id:meta.Obj_meta.id ~excluding_tid:tid in
  if readers <> [] then begin
    let holding =
      List.map
        (fun (reader_tid, site) ->
          { Race_record.thread = reader_tid; section = Some site; access = `Read; ip = -1 })
        readers
    in
    log_race t fault meta holding;
    Dense.Bitset.add t.prov_ro_blamed meta.Obj_meta.id
  end
  else observe_interleaving t fault meta;
  match current_frame t tid with
  | Some frame ->
    t.ident_write <- t.ident_write + 1;
    Section_object_map.record t.somap ~section:frame.site ~obj_id:meta.Obj_meta.id
      Section_object_map.Needs_write;
    let _key, cycles = assign_write_key t ~tid ~frame meta in
    { Hooks.fault_cycles = cycles + (2 * c.Cost_model.map_op); action = Hooks.Retry }
  | None ->
    let mprotect = demote_to_kna t meta in
    { Hooks.fault_cycles = mprotect + (2 * c.Cost_model.map_op); action = Hooks.Retry }

let handle_data_fault t (fault : Fault.t) (meta : Obj_meta.t) key =
  t.data_faults <- t.data_faults + 1;
  let c = cost t in
  let tid = fault.Fault.thread in
  (* Who conflicts?  A write conflicts with any other holder; a read
     only with a read-write holder (shared read is fine). *)
  let conflicts =
    match fault.Fault.access with
    | `Write -> Key_section_map.other_holders t.ksmap key ~tid
    | `Read -> begin
      match Key_section_map.write_holder t.ksmap key with
      | Some h when h.Key_section_map.tid <> tid -> [ h ]
      | Some _ | None -> []
    end
  in
  (* Non-racy violation pruning (section 5.5): few keys multiplex many
     objects, so a holder whose section never touches the faulted
     object is a key collision, not a conflict. *)
  let section_touches_obj (h : Key_section_map.holder) =
    Option.is_some
      (Section_object_map.need_of t.somap ~section:h.Key_section_map.section
         ~obj_id:meta.Obj_meta.id)
  in
  let conflicts =
    if t.config.Config.metadata_pruning then List.filter section_touches_obj conflicts
    else conflicts
  in
  let conflicts, rescued =
    if conflicts = [] && t.config.Config.timestamp_pruning then
      (* The key may have been released between the #GP firing and the
         handler running — a window of one fault round trip (section
         5.5).  Two filters keep the window precise: the releaser's
         section must touch this object (key multiplexing otherwise),
         and it must have run under a lock the faulter does not hold —
         back-to-back sections of one lock are ordered, not racing. *)
      let faulter = thread_state t tid in
      match Key_section_map.last_release_by_other t.ksmap key ~tid with
      | Some (time, h)
        when h.Key_section_map.tid <> tid
             && now t - time <= Cost_model.fault_delay_threshold c
             && (fault.Fault.access = `Write || Perm.equal h.Key_section_map.perm Perm.Read_write)
             && (not (holds_lock faulter h.Key_section_map.lock))
             && ((not t.config.Config.metadata_pruning) || section_touches_obj h)
        ->
        ([ h ], true)
      | Some _ | None -> (conflicts, false)
    else (conflicts, false)
  in
  if rescued then begin
    t.ts_rescues <- t.ts_rescues + 1;
    Dense.Bitset.add t.prov_rescued meta.Obj_meta.id
  end;
  if conflicts <> [] then begin
    (* Blame-time provenance: when the record blames a hold formed by
       the proactive entry walk, Algorithm 1 may never have granted
       that hold (it takes only the uncontested subset of KR/KW at
       entry and forgets holds dropped by a nested exit), so the
       report can be runtime-only. *)
    if List.exists (fun (h : Key_section_map.holder) -> h.Key_section_map.proactive) conflicts
    then Dense.Bitset.add t.prov_proactive_blame meta.Obj_meta.id;
    log_race t fault meta (List.map side_of_holder conflicts)
  end
  else observe_interleaving t fault meta;
  match current_frame t tid with
  | Some frame ->
    if conflicts = [] then begin
      (* Benign: late (reactive) acquisition of an unheld key. *)
      let perm =
        match fault.Fault.access with
        | `Write -> Perm.Read_write
        | `Read -> Perm.Read_only
      in
      if Key_section_map.can_acquire t.ksmap key ~tid perm then begin
        Key_section_map.acquire t.ksmap key
          { Key_section_map.tid; perm; section = frame.site; lock = frame.lock;
            proactive = false };
        frame_note_acquired frame key;
        grant_in_context t ~tid key perm;
        t.reactive_acq <- t.reactive_acq + 1;
        let need =
          match fault.Fault.access with
          | `Write -> Section_object_map.Needs_write
          | `Read -> Section_object_map.Needs_read
        in
        Section_object_map.record t.somap ~section:frame.site ~obj_id:meta.Obj_meta.id need;
        sample_occupancy t;
        { Hooks.fault_cycles = 3 * c.Cost_model.map_op; action = Hooks.Retry }
      end
      else begin
        (* Raced with another acquisition while handling; retag the
           object with a key of ours (protection interleaving keeps
           both sides observable). *)
        let _key, cycles = assign_write_key t ~tid ~frame meta in
        { Hooks.fault_cycles = cycles; action = Hooks.Retry }
      end
    end
    else begin
      (* Conflict: interleave protection so the holder faults next
         (figure 4): move the object under a key of the faulter. *)
      let need =
        match fault.Fault.access with
        | `Write -> Section_object_map.Needs_write
        | `Read -> Section_object_map.Needs_read
      in
      Section_object_map.record t.somap ~section:frame.site ~obj_id:meta.Obj_meta.id need;
      let _key, cycles = assign_write_key t ~tid ~frame meta in
      { Hooks.fault_cycles = cycles + (2 * c.Cost_model.map_op); action = Hooks.Retry }
    end
  | None ->
    (* Keyless thread outside any section: stop protecting the object
       until it is re-identified (terminating any interleaving). *)
    let mprotect = demote_to_kna t meta in
    { Hooks.fault_cycles = mprotect + (2 * c.Cost_model.map_op); action = Hooks.Retry }

(* A fault on the always-deny tag of evicted virtual keys: the
   fault-path event that loads a key back in (DESIGN.md §11).  Routing
   follows the object's domain — the tag can also be stale (the object
   was demoted after its key was evicted), in which case the page is
   healed and the access retried. *)
let handle_vkey_miss t (fault : Fault.t) (meta : Obj_meta.t) =
  let c = cost t in
  let tid = fault.Fault.thread in
  match Domain_state.domain_of t.domains ~obj_id:meta.Obj_meta.id with
  | Domain_state.Not_accessed -> handle_na_fault t fault meta
  | Domain_state.Read_only ->
    let mprotect = protect_pages t meta Pkey.k_ro in
    { Hooks.fault_cycles = mprotect + c.Cost_model.map_op; action = Hooks.Retry }
  | Domain_state.Read_write key ->
    if key > Vkey.pool t.vkey || Vkey.resident t.vkey key then begin
      (* Stale tag (the key was reloaded or the object pooled while
         this access was in flight): heal and retry. *)
      let mprotect = protect_pages t meta (phys_tag t key) in
      { Hooks.fault_cycles = mprotect + c.Cost_model.map_op; action = Hooks.Retry }
    end
    else begin
      match current_frame t tid with
      | None ->
        (* Keyless thread outside any section: demote rather than
           load, exactly as the identity-mode data-fault path does. *)
        let mprotect = demote_to_kna t meta in
        { Hooks.fault_cycles = mprotect + (2 * c.Cost_model.map_op); action = Hooks.Retry }
      | Some _ -> begin
        match ensure_resident t ~tid key with
        | Some load_cycles ->
          (* Resident again: the ordinary data-fault logic (conflict
             check, timestamp rescue, reactive acquisition) runs on
             the virtual key, plus the load bill. *)
          let r = handle_data_fault t fault meta key in
          { r with Hooks.fault_cycles = r.Hooks.fault_cycles + load_cycles }
        | None ->
          (* Every slot pinned: the access proceeds unprotected — the
             documented vkey stall window the differential classifier
             attributes via this provenance bit. *)
          Dense.Bitset.add t.prov_vkey_blamed meta.Obj_meta.id;
          { Hooks.fault_cycles = 2 * c.Cost_model.map_op; action = Hooks.Emulate }
      end
    end

(* Accesses to software-pooled objects always fault; the key-enforced
   rules run in software with one virtual key per object, so there is
   nothing to share and no false negative — at a fault per access. *)
let handle_soft_fault t (fault : Fault.t) (meta : Obj_meta.t) =
  t.soft_faults <- t.soft_faults + 1;
  let c = cost t in
  let tid = fault.Fault.thread in
  let frame = current_frame t tid in
  (match frame with
  | Some f ->
    let need =
      match fault.Fault.access with
      | `Write -> Section_object_map.Needs_write
      | `Read -> Section_object_map.Needs_read
    in
    Section_object_map.record t.somap ~section:f.site ~obj_id:meta.Obj_meta.id need
  | None -> ());
  let verdict =
    Soft_keys.access t.soft ~obj_id:meta.Obj_meta.id ~tid
      ~section:(Option.map (fun f -> f.site) frame)
      ~lock:(Option.map (fun f -> f.lock) frame)
      ~access:fault.Fault.access
  in
  (match verdict with
  | Soft_keys.Soft_ok -> ()
  | Soft_keys.Soft_conflict holders ->
    let faulter = thread_state t tid in
    let holders =
      List.filter (fun h -> not (holds_lock faulter h.Key_section_map.lock)) holders
    in
    if holders <> [] then log_race t fault meta (List.map side_of_holder holders));
  { Hooks.fault_cycles = 2 * c.Cost_model.map_op; action = Hooks.Emulate }

let on_fault t (fault : Fault.t) =
  let c = cost t in
  let anomaly () =
    t.anomalies <- t.anomalies + 1;
    { Hooks.fault_cycles = c.Cost_model.map_op; action = Hooks.Emulate }
  in
  match Meta_table.find_vpage t.env.Hooks.meta fault.Fault.vpage with
  | None -> anomaly ()
  | Some meta ->
    if
      Sampling.enabled t.sampling
      && not (Sampling.sampled_obj t.sampling ~epoch:t.cur_epoch ~obj_id:meta.Obj_meta.id)
    then
      (* A rotation drew the object out of the sampled set after it
         was tagged: this fault is the lazy drain point. *)
      drain_unsampled t meta
    else if Pkey.equal fault.Fault.pkey Pkey.k_na then handle_na_fault t fault meta
    else if Pkey.equal fault.Fault.pkey Pkey.k_ro then handle_ro_fault t fault meta
    else if
      t.config.Config.software_fallback
      && Pkey.equal fault.Fault.pkey t.soft_key
      && Soft_keys.mem t.soft ~obj_id:meta.Obj_meta.id
    then handle_soft_fault t fault meta
    else if Vkey.virtualized t.vkey then begin
      if Pkey.equal fault.Fault.pkey evict_tag then handle_vkey_miss t fault meta
      else
        (* A live residency slot: the fault concerns whichever virtual
           key is resident in it right now. *)
        let v = Vkey.vkey_of_phys t.vkey (Pkey.to_int fault.Fault.pkey) in
        if v >= 0 then handle_data_fault t fault meta v else anomaly ()
    end
    else if Pkey.is_data_key fault.Fault.pkey then
      handle_data_fault t fault meta (Pkey.to_int fault.Fault.pkey)
    else anomaly ()

(* {2 Section entry and exit (section 5.4)} *)

(* The proactive acquisition walk over the section's object list
   (section 5.4), as a top-level tail recursion threading the PKRU
   and cycle count: entered on every section entry, it allocates only
   its final result pair. *)
let rec proactive_walk t c ~tid ~frame entries pkru cycles =
  match entries with
  | [] ->
    t.walk_pkru <- pkru;
    cycles
  | (obj_id, need) :: rest -> (
    (* Walking the section's object list is a cache-resident map
       traversal; the per-key work below carries the real cost. *)
    let cycles = cycles + 8 in
    let code = Domain_state.rw_key_code t.domains ~obj_id in
    if code < 0 then (* Not-accessed or Read-only: nothing to acquire *)
      proactive_walk t c ~tid ~frame rest pkru cycles
    else if Vkey.virtualized t.vkey && code > Vkey.pool t.vkey then
      (* Software-pooled: every access faults anyway. *)
      proactive_walk t c ~tid ~frame rest pkru cycles
    else begin
      let phys = Vkey.phys_of t.vkey code in
      if phys < 0 then begin
        (* Evicted virtual key: loading at section entry would cascade
           evictions through the walk, so the entry skips it and the
           first access faults it in reactively (DESIGN.md §11).  The
           hold proactive acquisition would have formed does not exist
           in that window — mark the object so the differential
           classifier can attribute a missed blame. *)
        Dense.Bitset.add t.prov_vkey_blamed obj_id;
        proactive_walk t c ~tid ~frame rest pkru cycles
      end
      else begin
        let key = Pkey.of_int phys in
        let wanted =
          match need with
          | Section_object_map.Needs_write -> Perm.Read_write
          | Section_object_map.Needs_read -> Perm.Read_only
        in
        let already = Pkru.get pkru key in
        if Perm.allows already `Read && Perm.compare already wanted >= 0 then
          proactive_walk t c ~tid ~frame rest pkru cycles
        else begin
          (* During a delay-injection cooldown the key's release is
             stamped in the future: it still counts as held, so the
             entry must fault reactively and the handler can test for a
             conflict. *)
          let cooling =
            t.config.Config.exit_delay_cycles > 0
            &&
            match Key_section_map.last_release t.ksmap code with
            | Some (stamp, _) -> now t < stamp
            | None -> false
          in
          if cooling then proactive_walk t c ~tid ~frame rest pkru cycles
          else if Key_section_map.can_acquire t.ksmap code ~tid wanted then
            proactive_acquire t c ~tid ~frame rest pkru cycles code key wanted
          else if
            Perm.equal wanted Perm.Read_write
            && Key_section_map.can_acquire t.ksmap code ~tid Perm.Read_only
          then
            (* Write-need downgraded to a read hold (the idealized
               algorithm skips contested keys outright); a later fault
               blaming it is caught by the blame-time provenance. *)
            proactive_acquire t c ~tid ~frame rest pkru cycles code key Perm.Read_only
          else proactive_walk t c ~tid ~frame rest pkru cycles
        end
      end
    end)

and proactive_acquire t c ~tid ~frame rest pkru cycles code key perm =
  Key_section_map.acquire t.ksmap code
    { Key_section_map.tid; perm; section = frame.site; lock = frame.lock; proactive = true };
  frame_note_acquired frame code;
  t.proactive_acq <- t.proactive_acq + 1;
  proactive_walk t c ~tid ~frame rest (Pkru.set pkru key perm) (cycles + c.Cost_model.atomic_op)

let on_lock t ~tid ~lock ~site =
  (* On unmodified binaries only the lock names the section
     (section 8); sections sharing a lock merge. *)
  let site =
    match t.config.Config.section_identity with
    | Config.By_call_site -> site
    | Config.By_lock -> lock
  in
  let c = cost t in
  let enabled = Sampling.enabled t.sampling in
  let rotation = if enabled then maybe_rotate t else 0 in
  t.cs_entries <- t.cs_entries + 1;
  let ts = thread_state t tid in
  let pkru0 = Mpk_hw.pkru_of (hw t) ~tid in
  let frame =
    push_frame ts ~lock ~site ~saved_pkru:pkru0 ~wrpkru_at_entry:(Mpk_hw.wrpkru_count (hw t))
  in
  if enabled && not (Sampling.sampled_section t.sampling ~epoch:t.cur_epoch ~section:site)
  then begin
    (* Unsampled section: the near-zero fast path.  No k_na
       retraction (so nothing identifies), no proactive walk, no
       ksmap traffic, no active-set entry — the PKRU is opened to
       all-access for the section's duration so nothing inside can
       fault either (a reactive fault costs a 24k-cycle round trip,
       which would dwarf the protocol it replaces).  The section's
       accesses are simply invisible to the detector — the
       sampled-miss semantic — and the only charges are the policy
       check and the PKRU switch the exit undoes. *)
    frame.sampled <- false;
    t.skipped_sections <- t.skipped_sections + 1;
    rotation + c.Cost_model.sampling_check + Mpk_hw.wrpkru (hw t) ~tid Pkru.all_access
  end
  else begin
    if enabled then begin
      t.sampled_sections <- t.sampled_sections + 1;
      Kard_obs.Trace.incr (trace t) "sampling.sampled_sections"
    end;
    active_enter t ~site ~tid;
    (* Internal synchronization scales with concurrently executing
       sections: the runtime's maps are shared state. *)
    let sync_cost = c.Cost_model.atomic_op * (1 + t.active_count) in
    (* Retract k_na for the duration of the section (section 5.3). *)
    let cycles =
      if t.config.Config.proactive_acquisition then
        proactive_walk t c ~tid ~frame
          (Section_object_map.objects_of t.somap ~section:site)
          (Pkru.set pkru0 Pkey.k_na Perm.No_access)
          (sync_cost + c.Cost_model.map_op)
      else begin
        t.walk_pkru <- Pkru.set pkru0 Pkey.k_na Perm.No_access;
        sync_cost + c.Cost_model.map_op
      end
    in
    let cycles = cycles + Mpk_hw.wrpkru (hw t) ~tid t.walk_pkru in
    sample_occupancy t;
    cycles + rotation + (if enabled then c.Cost_model.sampling_check else 0)
  end

let on_unlock t ~tid ~lock =
  let c = cost t in
  let ts = thread_state t tid in
  if ts.depth = 0 then
    invalid_arg (Printf.sprintf "Kard: thread %d unlocks with no open section" tid)
  else begin
    let frame = ts.frames.(ts.depth - 1) in
    if frame.lock <> lock then
      invalid_arg
        (Printf.sprintf "Kard: thread %d releases lock %d but innermost section holds %d" tid lock
           frame.lock);
    ts.depth <- ts.depth - 1;
    (* An unsampled frame never entered the active set or touched the
       ksmap; its exit only restores the PKRU its entry opened to
       all-access. *)
    let cycles =
      ref (if frame.sampled then c.Cost_model.rdtscp + c.Cost_model.atomic_op else 0)
    in
    (* Delay injection (section 5.5): the thread sleeps at section
       exit, so its keys remain effectively held for the configured
       extra cycles — the release stamp lands in the future, making
       concurrent entries fail proactive acquisition (and fault) and
       keeping the fault-window check positive while other threads
       run.  Sleeping is not CPU time, so nothing is charged. *)
    let time = now t + t.config.Config.exit_delay_cycles in
    (* Most recent acquisition first, as the cons-list predecessor
       released them. *)
    for i = frame.nacquired - 1 downto 0 do
      Key_section_map.release t.ksmap frame.acquired.(i) ~tid ~time;
      cycles := !cycles + c.Cost_model.atomic_op
    done;
    (* Terminate interleavings this thread participated in: the object
       stays unprotected (Not-accessed) until re-identified.  The
       match keeps the common no-interleaving exit closure-free. *)
    (match Interleave.finish_thread t.interleave ~tid with
    | [] -> ()
    | affected ->
      List.iter
        (fun obj_id ->
          match Meta_table.find_id t.env.Hooks.meta obj_id with
          | Some meta -> cycles := !cycles + demote_to_kna t meta
          | None -> Domain_state.forget t.domains ~obj_id)
        affected);
    if t.config.Config.software_fallback then
      Soft_keys.release_thread t.soft ~tid ~time;
    cycles := !cycles + Mpk_hw.wrpkru (hw t) ~tid frame.saved_pkru;
    (match trace t with
    | None -> ()
    | Some _ when frame.sampled ->
      Kard_obs.Trace.observe (trace t) "kard.cs_wrpkru"
        (Mpk_hw.wrpkru_count (hw t) - frame.wrpkru_at_entry);
      sample_occupancy t
    | Some _ -> ());
    if frame.sampled then active_exit t ~site:frame.site ~tid;
    !cycles
  end

(* {2 Allocation hooks} *)

let initial_pkru =
  Pkru.of_assignments
    [ (Pkey.k_ro, Perm.Read_only); (Pkey.k_na, Perm.Read_write) ]

let on_spawn t ~tid =
  Mpk_hw.set_pkru_in_context (hw t) ~tid initial_pkru;
  (cost t).Cost_model.wrpkru

let on_alloc t ~tid:_ (meta : Obj_meta.t) =
  if
    Sampling.enabled t.sampling
    && not (Sampling.sampled_obj t.sampling ~epoch:t.cur_epoch ~obj_id:meta.Obj_meta.id)
  then begin
    (* Unsampled: the pages keep the default key, which every PKRU
       grants, so the object can never fault, retag, or occupy
       ksmap/vkey state until a rotation re-arms it — allocation on
       the fast path costs nothing. *)
    t.skipped_objects <- t.skipped_objects + 1;
    skip_note t meta.Obj_meta.id;
    0
  end
  else begin
    if Sampling.enabled t.sampling then t.sampled_objects <- t.sampled_objects + 1;
    protect_pages t meta Pkey.k_na
  end

let on_free t ~tid:_ (meta : Obj_meta.t) =
  let obj_id = meta.Obj_meta.id in
  Domain_state.forget t.domains ~obj_id;
  Section_object_map.forget_object t.somap ~obj_id;
  Interleave.finish t.interleave ~obj_id;
  (cost t).Cost_model.map_op

(* {2 Assembled interface} *)

let metadata_bytes t =
  let per_domain_entry = 96 in
  let per_somap_entry = 64 in
  let per_section = 48 in
  let per_record = 256 in
  let per_vkey = 16 in
  let fixed = 4096 in
  fixed
  + (per_vkey * Vkey.pool t.vkey)
  + (per_domain_entry * Domain_state.tracked t.domains)
  + (per_somap_entry * Section_object_map.entry_count t.somap)
  + (per_section * Section_object_map.section_count t.somap)
  + (per_record * Pruning.logged t.pruning)

(* Observability of the fast path: when sampling is active, count the
   accesses that land on unsampled objects.  The count charges zero
   cycles — the simulated fast path really is free — but the hooks
   stop being pure no-ops, so [pure_access] must say so (the sharded
   burst engine then falls back to the direct engine, which is
   byte-identical).  At rate 1.0 the hooks stay the pure zeros and
   nothing changes. *)
let count_skipped t addr =
  (match Meta_table.find_vpage t.env.Hooks.meta (Page.vpage_of_addr addr) with
  | Some (meta : Obj_meta.t) when Dense.Bitset.mem t.unsampled meta.Obj_meta.id ->
    t.skipped_accesses <- t.skipped_accesses + 1;
    Kard_obs.Trace.incr (trace t) "sampling.skipped_accesses"
  | Some _ | None -> ());
  0

let count_skipped_block t (block : Kard_sched.Op.block) =
  (match Meta_table.find_vpage t.env.Hooks.meta (Page.vpage_of_addr block.Kard_sched.Op.base) with
  | Some (meta : Obj_meta.t) when Dense.Bitset.mem t.unsampled meta.Obj_meta.id ->
    t.skipped_accesses <- t.skipped_accesses + block.Kard_sched.Op.count;
    Kard_obs.Trace.incr (trace t) "sampling.skipped_accesses"
  | Some _ | None -> ());
  0

let hooks t =
  let counting = Sampling.enabled t.sampling in
  { Hooks.name = "kard";
    pure_access = not counting;
    on_pick = (fun ~tid:_ -> ());
    on_spawn = (fun ~tid -> on_spawn t ~tid);
    on_global = (fun meta -> on_alloc t ~tid:(-1) meta);
    on_alloc = (fun ~tid meta -> on_alloc t ~tid meta);
    on_free = (fun ~tid meta -> on_free t ~tid meta);
    on_lock = (fun ~tid ~lock ~site -> on_lock t ~tid ~lock ~site);
    on_unlock = (fun ~tid ~lock -> on_unlock t ~tid ~lock);
    (* Kard's whole point: no per-access instrumentation.  The
       sampling counters are the one exception, and they charge 0. *)
    on_read =
      (if counting then fun ~tid:_ ~addr -> count_skipped t addr
       else fun ~tid:_ ~addr:_ -> 0);
    on_write =
      (if counting then fun ~tid:_ ~addr -> count_skipped t addr
       else fun ~tid:_ ~addr:_ -> 0);
    on_read_block =
      (if counting then fun ~tid:_ ~block -> count_skipped_block t block
       else fun ~tid:_ ~block:_ -> 0);
    on_write_block =
      (if counting then fun ~tid:_ ~block -> count_skipped_block t block
       else fun ~tid:_ ~block:_ -> 0);
    on_fault = (fun fault -> on_fault t fault);
    on_thread_exit = (fun ~tid:_ -> 0);
    on_finish = (fun () -> ());
    metadata_bytes = (fun () -> metadata_bytes t) }

let races t = Pruning.records t.pruning
let ilu_races t = Pruning.ilu_records t.pruning

let stats t : stats =
  let ks = Key_assign.stats t.assign in
  let vs = Vkey.stats t.vkey in
  { na_faults = t.na_faults;
    ro_faults = t.ro_faults;
    data_faults = t.data_faults;
    anomalies = t.anomalies;
    identifications_read = t.ident_read;
    identifications_write = t.ident_write;
    proactive_acquisitions = t.proactive_acq;
    reactive_acquisitions = t.reactive_acq;
    demotions = t.demotions;
    timestamp_rescues = t.ts_rescues;
    max_active_sections = t.max_active;
    reuse_events = ks.Key_assign.reuse_events;
    fresh_events = ks.Key_assign.fresh_events;
    recycling_events = ks.Key_assign.recycling_events;
    sharing_events = ks.Key_assign.sharing_events;
    migrations = Domain_state.migrations t.domains;
    interleavings_started = Interleave.started_count t.interleave;
    records_logged = Pruning.logged t.pruning;
    records_redundant = Pruning.redundant t.pruning;
    records_pruned_spurious = Pruning.removed_spurious t.pruning;
    soft_fallbacks = t.soft_fallbacks;
    soft_faults = t.soft_faults;
    vkey_pool = vs.Vkey.st_pool;
    vkey_resident = Vkey.resident_count t.vkey;
    vkey_hits = vs.Vkey.st_hits;
    vkey_misses = vs.Vkey.st_misses;
    vkey_evictions = vs.Vkey.st_evictions;
    vkey_loads = vs.Vkey.st_loads;
    vkey_retag_pages = vs.Vkey.st_retag_pages;
    vkey_stalls = vs.Vkey.st_stalls;
    sampling_rate = Sampling.rate t.sampling;
    sampled_sections = t.sampled_sections;
    skipped_sections = t.skipped_sections;
    sampled_objects = t.sampled_objects;
    skipped_objects = t.skipped_objects;
    skipped_accesses = t.skipped_accesses;
    sampling_rotations = t.sampling_rotations;
    sampling_rearm_pages = t.sampling_rearm_pages;
    first_race_cs = t.first_race_cs }

let unique_ro_objects t = Dense.Bitset.count t.ro_seen
let unique_rw_objects t = Dense.Bitset.count t.rw_seen

type provenance = {
  rescued : bool;
  grouped : bool;
  key_shared : bool;
  recycled : bool;
  pruned : bool;
  softened : bool;
  demoted : bool;
  ro_identified : bool;
  ro_blamed : bool;
  proactive_blamed : bool;
  vkey_blamed : bool;
  sampling_skipped : bool;
}

let provenance t ~obj_id =
  { rescued = Dense.Bitset.mem t.prov_rescued obj_id;
    grouped = Dense.Bitset.mem t.prov_grouped obj_id;
    key_shared = Dense.Bitset.mem t.prov_key_shared obj_id;
    recycled = Dense.Bitset.mem t.prov_recycled obj_id;
    pruned = Dense.Bitset.mem t.prov_pruned obj_id;
    softened = Dense.Bitset.mem t.prov_softened obj_id;
    demoted = Dense.Bitset.mem t.prov_demoted obj_id;
    ro_identified = Dense.Bitset.mem t.ro_seen obj_id;
    ro_blamed = Dense.Bitset.mem t.prov_ro_blamed obj_id;
    proactive_blamed = Dense.Bitset.mem t.prov_proactive_blame obj_id;
    vkey_blamed = Dense.Bitset.mem t.prov_vkey_blamed obj_id;
    sampling_skipped = Dense.Bitset.mem t.prov_sampling_skipped obj_id }
let sampling_active t = Sampling.enabled t.sampling
let cs_entries t = t.cs_entries
let first_race_cs t = t.first_race_cs
let domains t = t.domains
let section_object_map t = t.somap
let key_section_map t = t.ksmap
let config t = t.config
let vkey_stats t = Vkey.stats t.vkey
let assignable_keys t = Key_assign.available_keys t.assign
let soft_pool_id t = soft_id t
let expected_page_key t ~key = phys_tag t key

let make ?config ~cell env =
  let t = create ?config env in
  cell := Some t;
  hooks t
