(** Kard runtime configuration.

    The defaults mirror the evaluated system; the ablation benches
    flip individual switches. *)

(** How critical sections are named (section 8's "program binary
    extension"): with compiler support, by the synchronization call
    site; on unmodified binaries (LD_PRELOAD interposition without
    return-address tracking), only the lock identity is available,
    giving coarser sections. *)
type section_identity =
  | By_call_site
  | By_lock

type t = {
  data_keys : int;
      (** Read-write domain keys available ([k1]..[k13] on Intel MPK;
          the "advanced hardware" discussion of section 8 motivates
          larger values, which the ablation bench exercises). *)
  proactive_acquisition : bool;
      (** Acquire known keys at section entry (section 5.4).  When
          off, every first access in a section faults (reactive only). *)
  protection_interleaving : bool;
      (** The false-positive filter of section 5.5. *)
  timestamp_pruning : bool;
      (** Treat keys released less than a fault-delay ago as held. *)
  redundancy_pruning : bool;
      (** Drop repeated records of the same object/section pair. *)
  metadata_pruning : bool;
      (** Prune non-racy violations via the section-object map
          (section 5.5): a fault on a key held by a section that never
          touches the faulted object is key multiplexing, not a
          conflict. *)
  prefer_recycle : bool;
      (** Rule 3 of effective key assignment: recycle before sharing. *)
  share_disjoint_sections : bool;
      (** When sharing is forced, prefer keys whose sections touch
          disjoint object sets (the Table 4 mitigation). *)
  software_fallback : bool;
      (** Section 8: instead of ever sharing a hardware key, move the
          object into a software-protected pool with one virtual key
          per object.  Eliminates the sharing false negative at a
          fault-per-access cost to pooled objects.  When enabled, one
          hardware key is reserved for the pool (at most 12 data
          keys remain). *)
  exit_delay_cycles : int;
      (** Delay injection (section 5.5): hold keys this many extra
          cycles at section exit while a protection interleaving the
          thread participates in is pending, widening the window in
          which a conflicting access still observes a live holder.
          0 disables (the default). *)
  section_identity : section_identity;
      (** Default [By_call_site] (the LLVM-pass deployment). *)
  vkeys : int;
      (** Virtual-key pool size (libmpk-style, DESIGN.md §11).  [0]
          (the default) disables virtualization: key identity is the
          physical data key, byte-identical to the pre-vkey detector.
          A positive value gives the detector that many virtual keys,
          cached over the physical data keys by a clock-eviction table;
          one physical key ([k13]) is repurposed as the always-deny
          tag of evicted keys, so at most 12 data keys remain resident
          (11 under [software_fallback], whose pool key moves to
          [k12]).  Sharing becomes a last resort {e after} eviction,
          shrinking the Table 4 false-negative window. *)
  sampling : float;
      (** Fraction of objects under pkey protection (HardRace-style
          selective monitoring, DESIGN.md §12).  [1.0] (the default)
          is full Kard, byte-identical to the pre-sampling detector.
          Below 1.0 a seeded per-object policy decides at first
          allocation whether an object is {e sampled}; unsampled
          objects keep the default key ([k_def]) and never fault,
          retag, or occupy ksmap/vkey state — their accesses are the
          near-zero fast path.  Reports under sampling are always a
          subset of full Kard's: races can be delayed or missed,
          never invented. *)
  sampling_epoch : int;
      (** Virtual-clock cycles per sampling epoch.  At each epoch
          boundary the sampled set rotates deterministically (the
          hash is salted with the epoch number) so long runs
          eventually cover every object.  The boundary is observed at
          section entry against the machine's virtual clock, which is
          identical at any [--jobs]/[--shards] count — rotation never
          breaks determinism.  [0] disables rotation (a fixed sampled
          set for the whole run). *)
  sampling_seed : int;
      (** Salt of the sampling hash; reports are a pure function of
          (seed, rate, epoch schedule). *)
}

val default : t
val pp : Format.formatter -> t -> unit
