module Dense = Kard_sched.Dense

type domain =
  | Not_accessed
  | Read_only
  | Read_write of int

(* Object ids are handed out sequentially by the allocators, so domain
   state lives in an obj_id-indexed int array rather than a hash table:
   the proactive-acquisition walk queries it once per mapped object on
   every section entry, and an array read neither hashes nor allocates
   the [Read_write] box.

   Encoding: [k >= 0] is Read-write under data key [k]; the negative
   codes distinguish "never recorded" from an explicit Not-accessed so
   [tracked]/[count_in] keep their hash-table meanings. *)
let code_absent = -1
let code_not_accessed = -2
let code_read_only = -3

type t = {
  mutable codes : int array; (* index = obj_id *)
  mutable tracked : int; (* codes <> code_absent *)
  by_key : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* data key -> obj set *)
  mutable migrations : int;
}

let create () =
  { codes = Array.make 256 code_absent;
    tracked = 0;
    by_key = Hashtbl.create 16;
    migrations = 0 }

let code_of t ~obj_id =
  if obj_id >= 0 && obj_id < Array.length t.codes then t.codes.(obj_id) else code_absent

let rw_key_code = code_of

let decode code =
  if code >= 0 then Read_write code
  else if code = code_read_only then Read_only
  else Not_accessed

let encode = function
  | Not_accessed -> code_not_accessed
  | Read_only -> code_read_only
  | Read_write key -> key

let domain_of t ~obj_id = decode (code_of t ~obj_id)

let ensure t obj_id =
  if obj_id >= Array.length t.codes then begin
    let bigger = Array.make (Dense.grow_pow2 (Array.length t.codes) obj_id) code_absent in
    Array.blit t.codes 0 bigger 0 (Array.length t.codes);
    t.codes <- bigger
  end

let key_bucket t k =
  match Hashtbl.find_opt t.by_key k with
  | Some bucket -> bucket
  | None ->
    let bucket = Hashtbl.create 16 in
    Hashtbl.replace t.by_key k bucket;
    bucket

let set t ~obj_id domain =
  if obj_id < 0 then invalid_arg "Domain_state.set: negative obj_id";
  let before_code = code_of t ~obj_id in
  (* Compare decoded domains: recording Not-accessed on a never-seen
     object stays a no-op, exactly as the implicit default did. *)
  if decode before_code <> domain then begin
    ensure t obj_id;
    if before_code >= 0 then Hashtbl.remove (key_bucket t before_code) obj_id;
    if before_code = code_absent then t.tracked <- t.tracked + 1;
    t.codes.(obj_id) <- encode domain;
    (match domain with
    | Read_write key -> Hashtbl.replace (key_bucket t key) obj_id ()
    | Not_accessed | Read_only -> ());
    t.migrations <- t.migrations + 1
  end

let forget t ~obj_id =
  let code = code_of t ~obj_id in
  if code <> code_absent then begin
    if code >= 0 then Hashtbl.remove (key_bucket t code) obj_id;
    t.codes.(obj_id) <- code_absent;
    t.tracked <- t.tracked - 1
  end

let objects_with_key t key =
  match Hashtbl.find_opt t.by_key key with
  | Some bucket -> Hashtbl.fold (fun obj_id () acc -> obj_id :: acc) bucket []
  | None -> []

let key_load t key =
  match Hashtbl.find_opt t.by_key key with
  | Some bucket -> Hashtbl.length bucket
  | None -> 0

let count_in t which =
  let wanted_code =
    match which with
    | `Not_accessed -> code_not_accessed
    | `Read_only -> code_read_only
    | `Read_write -> 0 (* sentinel; matched by the >= 0 test below *)
  in
  let n = ref 0 in
  Array.iter
    (fun code ->
      match which with
      | `Read_write -> if code >= 0 then incr n
      | `Not_accessed | `Read_only -> if code = wanted_code then incr n)
    t.codes;
  !n

let migrations t = t.migrations
let tracked t = t.tracked

let pp_domain fmt = function
  | Not_accessed -> Format.pp_print_string fmt "not-accessed"
  | Read_only -> Format.pp_print_string fmt "read-only"
  | Read_write key -> Format.fprintf fmt "read-write(k%d)" key
