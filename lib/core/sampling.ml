(* The sampling policy (DESIGN.md §12): a pure, seeded decision
   procedure for which objects are under pkey protection.

   Everything here is arithmetic over (seed, rate, epoch, object id) —
   no mutable state, no clock reads, no randomness beyond the salt.
   The detector asks [sampled] at the few points where an object's
   protection status matters (allocation, section entry, fault drain);
   because the answer is a pure function of values that are identical
   at any --jobs/--shards count, the sampled set — and hence every
   report — is byte-identical across parallelism settings.

   The hash is one round of SplitMix64-style finalization over the
   mixed (seed, id) word, giving every object a fixed position on a
   2^20-point ring; an id is sampled when its position falls inside a
   window of width [rate * 2^20].  Rotation slides the window by a
   small fixed fraction of the ring per epoch (HardRace-style set
   rotation, but incremental): the protected fraction stays at [rate]
   in every epoch, an object stays sampled for many consecutive
   epochs once drawn, and the whole ring — every object — is covered
   after one window revolution (>= 128 epochs).  The window matters
   for cost, not just coverage: an independent per-epoch re-draw
   would turn over 2*rate*(1-rate) of the population per rotation
   (half of it at rate 0.5), and every membership flip costs retags
   and a re-identification fault — the churn would exceed what
   sampling saves.  The sliding window bounds churn per epoch to
   2*min(rate, 1/128) of the population, entering and leaving
   combined, so rotation stays a small constant tax on top of the
   steady-state cost that scales with the rate. *)

type t = {
  enabled : bool;
  threshold : int;   (* rate in 1/2^20 units; compare is [hash < threshold] *)
  seed : int;
  epoch_cycles : int; (* 0 = no rotation *)
  rate : float;
}

let fixed_point_bits = 20
let fixed_point_one = 1 lsl fixed_point_bits

let create ~rate ~epoch_cycles ~seed =
  if not (rate > 0.0 && rate <= 1.0) then
    invalid_arg "Sampling.create: rate must be in (0, 1]";
  if epoch_cycles < 0 then invalid_arg "Sampling.create: negative epoch";
  let threshold =
    let t = int_of_float (ceil (rate *. float_of_int fixed_point_one)) in
    min fixed_point_one (max 1 t)
  in
  { enabled = rate < 1.0; threshold; seed; epoch_cycles; rate }

let of_config (c : Config.t) =
  create ~rate:c.Config.sampling ~epoch_cycles:c.Config.sampling_epoch
    ~seed:c.Config.sampling_seed

let enabled t = t.enabled
let rate t = t.rate
let epoch_cycles t = t.epoch_cycles

let epoch_of t ~now = if t.epoch_cycles <= 0 then 0 else now / t.epoch_cycles

(* SplitMix64's finalizer on OCaml's 63-bit ints (the multipliers are
   the 64-bit constants wrapped to 63 bits); empirically unbiased over
   the low 20 bits for the dense ids fed here. *)
let m1 = 0x3f58476d1ce4e5b9
let m2 = 0x14d049bb133111eb
let golden = 0x1e3779b97f4a7c15

let finalize z =
  let z = (z lxor (z lsr 30)) * m1 in
  let z = (z lxor (z lsr 27)) * m2 in
  (z lxor (z lsr 31)) land max_int

(* The id's fixed position on the ring. *)
let position t v = finalize ((v * golden) + t.seed) land (fixed_point_one - 1)

(* Window advance per epoch: 1/128 of the ring, capped at the window
   width so tiny windows still tile the whole ring, never 0.  Every
   object an advance draws in pays a re-identification fault at its
   next access, so churn per epoch — 2 * min(rate, 1/128) of the live
   population, entering and leaving combined — is what rotation costs;
   the 1/128 cap keeps that cost independent of the sampling rate (a
   revolution takes at least 128 epochs) while a full revolution still
   covers every id. *)
let step t = max 1 (min t.threshold (fixed_point_one lsr 7))

let in_window t ~epoch pos =
  let lo = epoch * step t land (fixed_point_one - 1) in
  (pos - lo) land (fixed_point_one - 1) < t.threshold

let sampled_obj t ~epoch ~obj_id =
  (not t.enabled) || in_window t ~epoch (position t (2 * obj_id))

(* Section-entry decision: sections are sampled by their identity
   (call site or lock), independently of the objects they touch — an
   unsampled section skips the entry walk and WRPKRU entirely, and
   faults cannot occur inside it on unsampled objects because those
   pages carry the default key. *)
let sampled_section t ~epoch ~section =
  (not t.enabled) || in_window t ~epoch (position t ((2 * section) + 1))

let pp fmt t =
  if not t.enabled then Format.fprintf fmt "off"
  else
    Format.fprintf fmt "@[<h>rate=%g epoch=%d seed=%#x@]" t.rate t.epoch_cycles
      t.seed
