module Pkey = Kard_mpk.Pkey
module Perm = Kard_mpk.Perm
module Pkru = Kard_mpk.Pkru
module Page = Kard_mpk.Page
module Mpk_hw = Kard_mpk.Mpk_hw
module Hooks = Kard_sched.Hooks

exception Violation of string

type t = {
  env : Hooks.env;
  detector : Detector.t;
  depth : (int, int) Hashtbl.t; (* tid -> section nesting *)
  mutable checks : int;
}

let fail t fmt =
  ignore t;
  Format.kasprintf (fun msg -> raise (Violation msg)) fmt

let check t cond fmt =
  t.checks <- t.checks + 1;
  if not cond then fail t fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let depth_of t tid = Option.value ~default:0 (Hashtbl.find_opt t.depth tid)

let check_outside_pkru t ~tid =
  let pkru = Mpk_hw.pkru_of t.env.Hooks.hw ~tid in
  check t
    (Perm.equal (Pkru.get pkru Pkey.k_na) Perm.Read_write)
    "t%d outside sections must hold k_na read-write" tid;
  check t
    (Perm.equal (Pkru.get pkru Pkey.k_ro) Perm.Read_only)
    "t%d outside sections must hold k_ro read-only" tid;
  List.iter
    (fun key ->
      check t
        (Perm.equal (Pkru.get pkru key) Perm.No_access)
        "t%d outside sections must hold no data key, found %a" tid Pkey.pp key)
    Pkey.data_keys

let check_inside_pkru t ~tid =
  let pkru = Mpk_hw.pkru_of t.env.Hooks.hw ~tid in
  check t
    (Perm.equal (Pkru.get pkru Pkey.k_na) Perm.No_access)
    "t%d inside a section must have k_na retracted" tid

(* Exclusive write / shared read over the key-section map. *)
let check_key_exclusivity t =
  let ksmap = Detector.key_section_map t.detector in
  List.iter
    (fun key ->
      let holders = Key_section_map.holders ksmap key in
      let writers =
        List.filter (fun h -> Perm.equal h.Key_section_map.perm Perm.Read_write) holders
      in
      check t
        (List.length writers <= 1)
        "k%d has %d read-write holders" key (List.length writers);
      check t
        (writers = [] || List.length holders = List.length writers)
        "k%d mixes a read-write holder with readers" key)
    (Detector.assignable_keys t.detector)

(* Sampled consistency between the domain table and the page table. *)
let max_sampled_objects = 64

let check_domain_tags t =
  let domains = Detector.domains t.detector in
  let page_table = Mpk_hw.page_table t.env.Hooks.hw in
  (* Softened objects live past the assignable space, under the pool's
     reserved tag; the detector supplies the expected physical tag per
     key (slot / evict tag under the vkey cache). *)
  let keys =
    if (Detector.config t.detector).Config.software_fallback then
      Detector.assignable_keys t.detector @ [ Detector.soft_pool_id t.detector ]
    else Detector.assignable_keys t.detector
  in
  List.iter
    (fun key ->
      let objs = Domain_state.objects_with_key domains key in
      let expected = Detector.expected_page_key t.detector ~key in
      List.iteri
        (fun i obj_id ->
          if i < max_sampled_objects then
            match Kard_alloc.Meta_table.find_id t.env.Hooks.meta obj_id with
            | Some meta ->
              check t
                (Pkey.equal
                   (Kard_mpk.Page_table.pkey_of_addr page_table meta.Kard_alloc.Obj_meta.base)
                   expected)
                "object #%d is in the read-write domain under k%d but its page disagrees" obj_id
                key
            | None ->
              fail t "object #%d has a domain entry but no metadata" obj_id)
        objs)
    keys

let make ?config ~cell ~vcell env =
  let hooks = Detector.make ?config ~cell env in
  let detector = Option.get !cell in
  let t = { env; detector; depth = Hashtbl.create 16; checks = 0 } in
  vcell := Some t;
  (* When key sharing is possible (or redirected to the software
     pool), exclusivity is deliberately relaxed; skip that check. *)
  let sharing_possible =
    (Detector.config detector).Config.data_keys < Pkey.data_key_count
    || (Detector.config detector).Config.software_fallback
    (* Virtual mode shares only at full-pool pinning, but that is
       run-dependent; keep the check off rather than flag it. *)
    || (Detector.config detector).Config.vkeys > 0
  in
  { hooks with
    Hooks.on_spawn =
      (fun ~tid ->
        let cycles = hooks.Hooks.on_spawn ~tid in
        check_outside_pkru t ~tid;
        cycles);
    on_lock =
      (fun ~tid ~lock ~site ->
        let cycles = hooks.Hooks.on_lock ~tid ~lock ~site in
        Hashtbl.replace t.depth tid (depth_of t tid + 1);
        check_inside_pkru t ~tid;
        if not sharing_possible then check_key_exclusivity t;
        cycles);
    on_unlock =
      (fun ~tid ~lock ->
        let cycles = hooks.Hooks.on_unlock ~tid ~lock in
        Hashtbl.replace t.depth tid (depth_of t tid - 1);
        check t (depth_of t tid >= 0) "t%d exited more sections than it entered" tid;
        if depth_of t tid = 0 then check_outside_pkru t ~tid;
        check_domain_tags t;
        cycles);
    on_fault =
      (fun fault ->
        check t
          (not (Pkey.equal fault.Kard_mpk.Fault.pkey Pkey.k_def))
          "a fault carried the default key";
        hooks.Hooks.on_fault fault);
    on_thread_exit =
      (fun ~tid ->
        let cycles = hooks.Hooks.on_thread_exit ~tid in
        check t (depth_of t tid = 0) "t%d exited while still in a section" tid;
        cycles) }

let checks_performed t = t.checks
