(** The Kard runtime: key-enforced race detection over the MPK model.

    Implements the full pipeline of sections 5.2-5.5 as a set of
    {!Kard_sched.Hooks.t} hooks: protection domains, on-demand shared
    object identification, proactive and reactive key acquisition,
    effective key assignment, the custom fault handler with timestamp
    checks, protection interleaving, and automated pruning. *)

type t

type stats = {
  na_faults : int;          (** Identification faults ([k_na]). *)
  ro_faults : int;          (** Write faults on the Read-only domain. *)
  data_faults : int;        (** Faults on Read-write domain keys. *)
  anomalies : int;          (** Faults the handler could not attribute. *)
  identifications_read : int;
  identifications_write : int;
  proactive_acquisitions : int;
  reactive_acquisitions : int;
  demotions : int;          (** Objects bounced back to Not-accessed. *)
  timestamp_rescues : int;  (** Races attributed via the release-time window. *)
  max_active_sections : int;
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
  migrations : int;
  interleavings_started : int;
  records_logged : int;
  records_redundant : int;
  records_pruned_spurious : int;
  soft_fallbacks : int;   (** Objects moved to the software pool. *)
  soft_faults : int;      (** Per-access faults on pooled objects. *)
  vkey_pool : int;        (** Virtual-key pool size (0 = identity mode). *)
  vkey_resident : int;    (** Virtual keys resident at run end. *)
  vkey_hits : int;        (** {!Kard_mpk.Vkey.ensure} residency hits. *)
  vkey_misses : int;
  vkey_evictions : int;
  vkey_loads : int;
  vkey_retag_pages : int; (** Pages batch-retagged by loads/evictions. *)
  vkey_stalls : int;      (** Misses with every slot pinned (emulated
                              unprotected — the vkey miss window). *)
  sampling_rate : float;  (** [Config.sampling]; 1.0 = full Kard. *)
  sampled_sections : int; (** Section entries that ran the full entry
                              protocol while sampling was active. *)
  skipped_sections : int; (** Section entries on the fast path: no
                              k_na retraction, walk, or PKRU switch. *)
  sampled_objects : int;  (** Protection decisions in favour (at
                              allocation or rotation re-arm). *)
  skipped_objects : int;  (** Fast-path decisions (allocation skip or
                              rotation drain). *)
  skipped_accesses : int; (** Accesses that landed on unsampled
                              objects (charged zero cycles). *)
  sampling_rotations : int; (** Epoch boundaries observed. *)
  sampling_rearm_pages : int; (** Pages batch-retagged back to [k_na]
                                  by rotation re-arms. *)
  first_race_cs : int;    (** Critical-section entries at the first
                              fresh race record, [-1] if none — the
                              detection-latency measure of the
                              sampling sweep. *)
}

val create : ?config:Config.t -> Kard_sched.Hooks.env -> t

val hooks : t -> Kard_sched.Hooks.t

val races : t -> Race_record.t list
(** Surviving potential data-race records. *)

val ilu_races : t -> Race_record.t list

val stats : t -> stats

val domains : t -> Domain_state.t
val section_object_map : t -> Section_object_map.t
val key_section_map : t -> Key_section_map.t
val config : t -> Config.t

val unique_ro_objects : t -> int
(** Distinct objects ever identified into the Read-only domain
    (Table 3 "Shared objects / RO"). *)

val unique_rw_objects : t -> int
(** Distinct objects ever identified into the Read-write domain. *)

(** Per-object provenance: which documented precision-losing
    mechanisms fired on this object during the run.  The differential
    classifier ([lib/fuzz]) uses these bits as the {e evidence} a
    {!Divergence} class demands before explaining a disagreement with
    the reference oracles. *)
type provenance = {
  rescued : bool;     (** Blamed via the release-timestamp window. *)
  grouped : bool;     (** Shared a physical key with another object. *)
  key_shared : bool;  (** Under a key force-shared across sections (rule 3b). *)
  recycled : bool;    (** Demoted to Read-only by a key recycling. *)
  pruned : bool;      (** Had a record removed as interleave-spurious. *)
  softened : bool;    (** Moved to the software key pool. *)
  demoted : bool;     (** Bounced to Not-accessed (keyless access or
                          interleaving wind-down). *)
  ro_identified : bool;  (** Ever identified into the Read-only domain
                             (later readers are invisible there). *)
  ro_blamed : bool;  (** Has a race record from the Read-only write-fault
                         path (fault-time section-object-map blame). *)
  proactive_blamed : bool;  (** Has a race record blaming a hold formed
                                by the proactive section-entry walk —
                                a hold Algorithm 1 may never grant
                                (contested keys are skipped at entry;
                                nested exits can drop an outer hold). *)
  vkey_blamed : bool;  (** Touched by a vkey-cache miss window: an
                           access emulated unprotected because every
                           slot was pinned, or a proactive acquisition
                           skipped because the object's key was
                           evicted at section entry (DESIGN.md §11). *)
  sampling_skipped : bool;  (** Ever on the sampling fast path: left
                                unprotected at allocation, or drained
                                to the default key by an epoch
                                rotation (DESIGN.md §12) — faults the
                                full detector would have seen never
                                fired while the bit's condition
                                held. *)
}

val provenance : t -> obj_id:int -> provenance

val sampling_active : t -> bool
(** Whether the run sampled at a rate below 1.0. *)

val cs_entries : t -> int
(** Total critical-section entries observed (sampled or not) — the
    denominator of the detection-latency metric. *)

val first_race_cs : t -> int
(** [cs_entries] at the moment the first fresh race record was
    logged, or [-1] if the run logged none: the detection-latency
    measure of the sampling sweep (CS entries until first catch). *)

val vkey_stats : t -> Kard_mpk.Vkey.stats
(** Virtual-key cache counters (all zero in identity mode). *)

val assignable_keys : t -> int list
(** The keys effective assignment may hand out: physical data keys in
    identity mode, the virtual pool otherwise. *)

val soft_pool_id : t -> int
(** The domain-table id software-pooled objects sit under. *)

val expected_page_key : t -> key:int -> Kard_mpk.Pkey.t
(** The physical tag pages protected by [key] must carry right now
    (the key itself, its residency slot, the evict tag, or the
    software-pool tag) — the validator's page-table oracle. *)

val make :
  ?config:Config.t -> cell:t option ref -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t
(** Convenience for {!Kard_sched.Machine.create}: builds the detector,
    stores it in [cell] for post-run inspection, returns its hooks. *)
