(** The expected-divergence taxonomy: every way the four race oracles
    (the Kard runtime, pure Algorithm 1, a happens-before replay and
    an Eraser lockset replay) are {e allowed} to disagree on one
    object of one execution.

    The differential fuzzing subsystem ([lib/fuzz]) runs random
    programs under the MPK-driven runtime, replays the recorded event
    trace through the three reference oracles, and classifies every
    per-object disagreement against this list.  A disagreement that
    matches no class is an {!Unexpected} divergence — a real bug in
    one of the four implementations — and fails the campaign.

    The classes are not heuristics: each names a mechanism the paper
    itself documents (key grouping in section 5.4, the release window
    and protection interleaving in section 5.5, key sharing in Table
    4, the ILU scope boundary in section 3), and the runtime exports
    per-object provenance ({!Detector.provenance}) so the classifier
    demands evidence that the mechanism actually fired on that object
    in that run before accepting the explanation. *)

type cls =
  | Grouping_over_report
      (** Kard flags an object Algorithm 1 does not: 13 physical keys
          multiplex many objects (rules 1-3 of effective key
          assignment), so a fault against a group key can blame a
          holder that, per-object, held nothing.  Metadata pruning
          (section 5.5) removes most of these; the survivors — a
          holder whose section genuinely touches the faulted object —
          are the documented over-approximation.  Evidence: the
          object shared its key with another object. *)
  | Grouping_under_report
      (** Algorithm 1 flags an object Kard misses: an access to an
          object whose group key the thread already held (for a
          different object) raises no fault, so the acquisition that
          Algorithm 1 records per-object is invisible to the runtime
          — and metadata pruning then filters the holder at the next
          conflict.  Evidence: the object shared its key with another
          object. *)
  | Timestamp_window
      (** Kard flags an object Algorithm 1 does not: the conflicting
          key was released between the #GP firing and the handler
          running, and the release-window check of section 5.5
          attributed the race to the recent releaser.  In the
          linearized event trace the release precedes the access, so
          the idealized algorithm sees no overlap.  Evidence: the
          object is in the detector's timestamp-rescue log. *)
  | Key_sharing_miss
      (** Algorithm 1 flags an object Kard misses: key assignment ran
          out of keys and shared a held key (rule 3b), so the
          conflicting access did not fault — the Table 4 false
          negative.  Evidence: the object was involved in a sharing
          decision. *)
  | Recycling_miss
      (** Algorithm 1 flags an object Kard misses: the object's key
          was recycled for another object and the object demoted to
          the Read-only domain mid-conflict, dropping the holder
          state a later fault would have tested.  Evidence: the
          object was demoted by a recycling decision. *)
  | Interleave_prune
      (** Algorithm 1 flags an object Kard misses: protection
          interleaving (section 5.5, figure 4) judged the record
          spurious — by design when the two sides touch different
          offsets, and unavoidably when the interleaving window
          closed before the second side re-accessed.  Evidence: a
          record for the object was removed as spurious. *)
  | Demotion_miss
      (** Algorithm 1 flags an object Kard misses: the object was
          bounced back to the Not-accessed domain mid-conflict — by a
          keyless (out-of-section) access or an interleaving
          wind-down — so the per-object key state a later fault would
          have tested was gone and the conflicting access
          re-identified the object instead of racing.  Evidence: the
          object was demoted to Not-accessed during the run. *)
  | Ro_shadow_miss
      (** Algorithm 1 flags an object Kard misses: reads on the
          Read-only domain never fault ([k_ro] is universal), so any
          reader section after the identifying one is invisible to
          the section-object map and a conflicting write cannot find
          it among the active readers.  Evidence: the object was
          identified into the Read-only domain. *)
  | Ro_fault_blame
      (** Kard flags an object Algorithm 1 does not: the Read-only
          domain has no per-thread keys, so a write fault on it finds
          conflicts through the {e fault-time} section-object map —
          every thread currently executing a section recorded as a
          reader of the object is blamed, including activations that
          entered before the object joined the section's read set.
          Algorithm 1 acquires read keys only at enter/access time
          and cannot name these holders.  The blamed reader is often
          a stand-in for a real reader whose own access was invisible
          on [k_ro] (the flip side of {!Ro_shadow_miss}).  Evidence:
          the object has a race record from the Read-only fault
          path. *)
  | Proactive_hold_blame
      (** Kard flags an object Algorithm 1 does not: the race record
          blames a hold formed by the proactive section-entry walk
          that the algorithm never grants.  Two sub-causes observed:
          (a) the walk wanted the object's {e write} key while
          another thread held read permission, so it downgraded to a
          read hold (keeping conflicting writes observable) — the
          algorithm's proactive acquisition (line 4) takes only the
          {e acquirable} subset, skipping a contested write key
          outright; (b) a nested section upgraded and then, on inner
          exit, released the runtime's whole hold, so a re-entering
          thread proactively reclaimed a key the algorithm still
          shows held by the first thread (its saved-set exit keeps
          the outer read hold), making the reclaim contested and
          skipped there.  Either way the report is a true ILU pair:
          the blamed section accessed the object in an earlier
          activation under a different lock than the faulter.
          Evidence: a race record on the object blames a holder whose
          key came from proactive entry-time acquisition (never
          re-acquired by an access of that activation). *)
  | Hb_extra_ilu
      (** The happens-before replay flags a race between
          lock-protected accesses that Kard and Algorithm 1 miss:
          the conflicting critical sections never overlapped in this
          schedule (and no release window applied), so no key was
          held at access time.  Key-enforced detection is
          schedule-sensitive by design (section 3.1 discusses the
          "multiple runs" mitigation); HB is not, over one trace. *)
  | Hb_extra_unlocked
      (** The happens-before replay flags a race with no lock held on
          either side: outside Kard's ILU scope (Table 1, row
          none/none) and outside Algorithm 1, whose keys exist only
          inside critical sections. *)
  | Ilu_not_hb
      (** Kard and/or Algorithm 1 flag an object the happens-before
          replay does not: an ILU {e potential} race whose two sides
          happen to be ordered in this schedule (e.g. through another
          lock's release/acquire edge).  This is the paper's central
          semantic choice: a key held by an overlapping section
          flags the object even when this particular interleaving
          ordered the accesses. *)
  | Lockset_over_report
      (** The lockset replay warns about an object no other oracle
          flags: Eraser ignores whether conflicting accesses can
          actually be concurrent (fork-join phases, publication), the
          superset behaviour of section 3.1 / Table 2. *)
  | Lockset_shared_read_miss
      (** Another oracle flags an object the lockset replay does not:
          Eraser's state machine only warns in Shared-modified, so a
          single writer followed by concurrent readers (state Shared,
          or still Exclusive) races without an empty-lockset
          warning. *)
  | Lockset_init_miss
      (** Another oracle flags an object the lockset replay does not:
          Eraser's initialization heuristic exempts accesses made
          while the object is Virgin/Exclusive from lockset
          refinement, so a race against the first owner's unlocked
          accesses is missed.  Evidence: a strict replay that refines
          from the very first access does warn. *)
  | Vkey_eviction_blame
      (** Kard diverges from Algorithm 1 inside a {e vkey-cache miss
          window} (DESIGN.md §11).  Two sub-causes: (a) a miss found
          every physical residency slot pinned by running threads, so
          the access was emulated unprotected — a fault Algorithm 1
          (which has no cache) would have seen never fired; (b) the
          proactive section-entry walk skipped an object whose virtual
          key was not resident, so a hold the algorithm grants at
          entry formed late (at first access) or not at all.  Either
          direction is bounded by the cache's stall/eviction counters
          and disappears when the pool fits in the physical slots.
          Evidence: the object carries the [vkey_blamed] provenance
          bit. *)
  | Sampling_missed_race
      (** Algorithm 1 flags an object the sampled Kard misses: the
          sampling policy (DESIGN.md §12) left the object — or every
          section that would have blamed it — unprotected during the
          conflict, so no fault fired.  This is the HardRace trade
          made explicit: at rate < 1.0 the detector only ever
          {e removes} protection (unsampled pages keep the default
          key), so misses in this class are the designed cost of the
          near-zero fast path, and the sampled report set must remain
          a subset of full Kard's.  Only admissible while sampling is
          active; over-reports are {e never} explained by sampling. *)
  | Shard_divergence
      (** The sharded machine diverged: running the same program,
          seed and configuration at shards>1 produced a different
          machine report or race-record list than at shards=1.  The
          burst engine's determinism contract (DESIGN.md §10) allows
          {e no} such difference, so this class is never expected —
          it gates the sharded execution engine behind the fuzz
          campaign's oracle equivalence. *)
  | Replay_divergence
      (** Record/replay broke: re-executing a run from its recorded
          nondeterminism log (DESIGN.md §13) produced a different
          machine report or race-record list, the log failed its
          encode/decode round trip, or the replay tape itself did not
          match (a pick, grant or anchor diverged, or the tape was not
          fully consumed).  The log captures {e all} nondeterminism —
          schedule picks and lock-grant order — so replay admits no
          difference whatsoever; this class is never expected.  It
          gates the record/replay layer behind the fuzz campaign's
          oracle equivalence, exactly as {!Shard_divergence} gates the
          burst engine. *)
  | Unexpected
      (** No documented mechanism explains the disagreement: a real
          bug in the runtime, an oracle, or the classifier. *)

val all : cls list
(** Every class, {!Unexpected} last. *)

val name : cls -> string
(** Stable kebab-case identifier (corpus file names, reports). *)

val of_name : string -> cls option

val describe : cls -> string
(** One-line human description. *)

val expected : cls -> bool
(** [true] for every class except {!Shard_divergence},
    {!Replay_divergence} and {!Unexpected}. *)

val compare : cls -> cls -> int
val equal : cls -> cls -> bool
val pp : Format.formatter -> cls -> unit
