(** The key-section map (section 5.4, figure 3).

    Tracks which threads (and on behalf of which critical sections)
    currently hold each Read-write domain key, with what permission,
    and when each key was last released — the input to race checks,
    key assignment and the timestamp-based pruning of section 5.5.

    Keys are plain [int]s: the physical data pkeys in identity mode,
    or virtual keys [1..pool] under the vkey cache (DESIGN.md §11).
    Per-key storage grows on demand, so a pool of thousands only pays
    for the keys actually touched; {!held_by} is answered from a
    per-thread index in O(keys held). *)

type holder = {
  tid : int;
  perm : Kard_mpk.Perm.t;  (** [Read_only] or [Read_write]. *)
  section : int;           (** The section the key was acquired for. *)
  lock : int;              (** The lock guarding that section: conflicts
                               between sections of the same lock are
                               ordered, hence never ILU races. *)
  proactive : bool;        (** Acquired by the section-entry walk (from
                               the section-object map) rather than by an
                               access of this activation — the runtime
                               grants these unconditionally where
                               Algorithm 1 line 4 takes only the
                               uncontested subset. *)
}

type t

val create : unit -> t

val holders : t -> int -> holder list

val other_holders : t -> int -> tid:int -> holder list

val write_holder : t -> int -> holder option
(** The holder with read-write permission, if any (at most one). *)

val held_count : t -> int -> int
(** Live holdings of a key, O(1) — the vkey layer's pinning input. *)

val held_by : t -> tid:int -> (int * Kard_mpk.Perm.t) list
(** Keys the thread holds with their permissions, ascending key
    order. *)

val can_acquire : t -> int -> tid:int -> Kard_mpk.Perm.t -> bool
(** Read-write: no other holder at all; read-only: no other
    read-write holder (section 5.4). *)

val acquire : t -> int -> holder -> unit
(** Upgrades in place if the thread already holds the key.
    @raise Invalid_argument when the acquisition is not permitted. *)

val force_acquire : t -> int -> holder -> unit
(** Key sharing (section 5.4 rule 3b): adds the holding even when it
    violates exclusivity — the documented false-negative source. *)

val release : t -> int -> tid:int -> time:int -> unit
(** Removes the thread's holding and stamps the release time. *)

val last_release : t -> int -> (int * holder) option
(** Time and identity of the most recent release, for the fault-delay
    window check of section 5.5. *)

val last_release_by_other : t -> int -> tid:int -> (int * holder) option
(** The most recent release of the key by a thread other than [tid]
    (each thread's latest release is remembered separately, so a
    faulter's own releases do not mask the conflicting one). *)

val recently_released : t -> int -> now:int -> window:int -> bool

val unheld_keys : t -> among:int list -> int list

val active_sections : t -> int list
(** Sections on whose behalf some key is currently held. *)

val is_section_active : t -> section:int -> bool
