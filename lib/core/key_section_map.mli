(** The key-section map (section 5.4, figure 3).

    Tracks which threads (and on behalf of which critical sections)
    currently hold each Read-write domain key, with what permission,
    and when each key was last released — the input to race checks,
    key assignment and the timestamp-based pruning of section 5.5. *)

type holder = {
  tid : int;
  perm : Kard_mpk.Perm.t;  (** [Read_only] or [Read_write]. *)
  section : int;           (** The section the key was acquired for. *)
  lock : int;              (** The lock guarding that section: conflicts
                               between sections of the same lock are
                               ordered, hence never ILU races. *)
  proactive : bool;        (** Acquired by the section-entry walk (from
                               the section-object map) rather than by an
                               access of this activation — the runtime
                               grants these unconditionally where
                               Algorithm 1 line 4 takes only the
                               uncontested subset. *)
}

type t

val create : unit -> t

val holders : t -> Kard_mpk.Pkey.t -> holder list

val other_holders : t -> Kard_mpk.Pkey.t -> tid:int -> holder list

val write_holder : t -> Kard_mpk.Pkey.t -> holder option
(** The holder with read-write permission, if any (at most one). *)

val held_by : t -> tid:int -> (Kard_mpk.Pkey.t * Kard_mpk.Perm.t) list

val can_acquire : t -> Kard_mpk.Pkey.t -> tid:int -> Kard_mpk.Perm.t -> bool
(** Read-write: no other holder at all; read-only: no other
    read-write holder (section 5.4). *)

val acquire : t -> Kard_mpk.Pkey.t -> holder -> unit
(** Upgrades in place if the thread already holds the key.
    @raise Invalid_argument when the acquisition is not permitted. *)

val force_acquire : t -> Kard_mpk.Pkey.t -> holder -> unit
(** Key sharing (section 5.4 rule 3b): adds the holding even when it
    violates exclusivity — the documented false-negative source. *)

val release : t -> Kard_mpk.Pkey.t -> tid:int -> time:int -> unit
(** Removes the thread's holding and stamps the release time. *)

val last_release : t -> Kard_mpk.Pkey.t -> (int * holder) option
(** Time and identity of the most recent release, for the fault-delay
    window check of section 5.5. *)

val last_release_by_other : t -> Kard_mpk.Pkey.t -> tid:int -> (int * holder) option
(** The most recent release of the key by a thread other than [tid]
    (each thread's latest release is remembered separately, so a
    faulter's own releases do not mask the conflicting one). *)

val recently_released : t -> Kard_mpk.Pkey.t -> now:int -> window:int -> bool

val unheld_keys : t -> among:Kard_mpk.Pkey.t list -> Kard_mpk.Pkey.t list

val active_sections : t -> int list
(** Sections on whose behalf some key is currently held. *)

val is_section_active : t -> section:int -> bool
