(** Per-object protection domains (section 5.2).

    Every sharable object is in exactly one of the three domains:
    Not-accessed ([k_na]), Read-only ([k_ro]) or Read-write (a data
    key).  The Read-write key is a plain [int]: a physical data pkey
    in identity mode, or a virtual key under the vkey cache (the
    physical tag of the object's pages then follows the key's
    residency).  Migrations are what cost [pkey_mprotect] calls at
    run time. *)

type domain =
  | Not_accessed
  | Read_only
  | Read_write of int

type t

val create : unit -> t

val domain_of : t -> obj_id:int -> domain
(** Objects never seen are Not-accessed. *)

val rw_key_code : t -> obj_id:int -> int
(** The key when the object is Read-write under it, negative
    otherwise.  The allocation-free form of {!domain_of} for the
    per-object test on the section-entry hot path, where only the
    Read-write case carries information. *)

val set : t -> obj_id:int -> domain -> unit
val forget : t -> obj_id:int -> unit

val objects_with_key : t -> int -> int list
(** Objects currently in the Read-write domain under this key. *)

val key_load : t -> int -> int
(** [List.length (objects_with_key t key)] in O(1) — the key
    assigner's free-key test. *)

val count_in : t -> [ `Not_accessed | `Read_only | `Read_write ] -> int
(** Objects explicitly recorded in the given domain. *)

val migrations : t -> int
(** Domain changes performed so far (a performance counter). *)

val tracked : t -> int
val pp_domain : Format.formatter -> domain -> unit
