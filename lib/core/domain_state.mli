(** Per-object protection domains (section 5.2).

    Every sharable object is in exactly one of the three domains:
    Not-accessed ([k_na]), Read-only ([k_ro]) or Read-write (one of
    the 13 data keys).  Migrations are what cost [pkey_mprotect]
    calls at run time. *)

type domain =
  | Not_accessed
  | Read_only
  | Read_write of Kard_mpk.Pkey.t

type t

val create : unit -> t

val domain_of : t -> obj_id:int -> domain
(** Objects never seen are Not-accessed. *)

val rw_key_code : t -> obj_id:int -> int
(** [Pkey.to_int key] when the object is Read-write under [key],
    negative otherwise.  The allocation-free form of {!domain_of} for
    the per-object test on the section-entry hot path, where only the
    Read-write case carries information. *)

val set : t -> obj_id:int -> domain -> unit
val forget : t -> obj_id:int -> unit

val objects_with_key : t -> Kard_mpk.Pkey.t -> int list
(** Objects currently in the Read-write domain under this key. *)

val count_in : t -> [ `Not_accessed | `Read_only | `Read_write ] -> int
(** Objects explicitly recorded in the given domain. *)

val migrations : t -> int
(** Domain changes performed so far (a performance counter). *)

val tracked : t -> int
val pp_domain : Format.formatter -> domain -> unit
