type decision =
  | Reuse of int
  | Fresh of int
  | Recycle of int * int list
  | Share of int

type stats = {
  reuse_events : int;
  fresh_events : int;
  recycling_events : int;
  sharing_events : int;
}

(* Keys are plain ints: the physical data pkeys ([1..data_keys]) in
   identity mode, or virtual keys ([1..pool]) when the vkey cache is
   on.  Identity mode keeps the seed's exact scan orders (its reports
   are byte-compatibility-frozen); virtual mode swaps the O(keys)
   linear scans for cursors, because a pool of thousands cannot
   afford an O(pool) walk per assignment:

   - the fresh rule hands out [next_fresh] and bumps it on {!note}
     (every key below the cursor has been assigned at least once);
   - once the cursor exhausts the pool, the recycle rule round-robins
     a clock hand over the pool for the first unheld key, instead of
     sorting all keys by load;
   - sharing — only reachable when every key in the pool is held,
     i.e. essentially never with a real pool — falls back to the
     legacy whole-pool scan. *)
type t = {
  config : Config.t;
  keys : int list;
  pool : int; (* 0 = identity mode *)
  mutable next_fresh : int;
  mutable recycle_hand : int; (* 1-based pool position *)
  mutable stats : stats;
}

let create config =
  let data_key_count = Kard_mpk.Pkey.data_key_count in
  if config.Config.data_keys < 1 || config.Config.data_keys > data_key_count then
    invalid_arg
      (Printf.sprintf "Key_assign.create: data_keys must be within [1, %d]" data_key_count);
  let pool = max 0 config.Config.vkeys in
  let keys =
    if pool > 0 then List.init pool (fun i -> i + 1)
    else
      List.filteri (fun i _ -> i < config.Config.data_keys)
        (List.map Kard_mpk.Pkey.to_int Kard_mpk.Pkey.data_keys)
  in
  { config;
    keys;
    pool;
    next_fresh = 1;
    recycle_hand = 1;
    stats = { reuse_events = 0; fresh_events = 0; recycling_events = 0; sharing_events = 0 } }

let available_keys t = t.keys

let in_key_space t key =
  if t.pool > 0 then key >= 1 && key <= t.pool
  else key >= 1 && key <= t.config.Config.data_keys

let disjoint_sections somap ~section holders =
  let my_objects = List.map fst (Section_object_map.objects_of somap ~section) in
  List.for_all
    (fun holder ->
      let their_objects =
        List.map fst (Section_object_map.objects_of somap ~section:holder.Key_section_map.section)
      in
      not (List.exists (fun obj -> List.mem obj their_objects) my_objects))
    holders

(* Legacy share scoring, shared by both modes (virtual mode only
   reaches it with the whole pool held). *)
let choose_share t ~ksmap ~somap ~section =
  let scored = List.map (fun key -> (key, Key_section_map.holders ksmap key)) t.keys in
  let disjoint =
    if t.config.Config.share_disjoint_sections then
      List.find_opt (fun (_, holders) -> disjoint_sections somap ~section holders) scored
    else None
  in
  match disjoint with
  | Some (key, _) -> Share key
  | None ->
    (* Least-loaded key as a fallback. *)
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) scored
    in
    (match sorted with
    | (key, _) :: _ -> Share key
    | [] -> assert false (* t.keys is non-empty by construction *))

let choose_identity t ~ksmap ~domains ~somap ~section =
  (* Rule 2: an unassigned key (no holders, protects no object). *)
  let fresh =
    List.find_opt
      (fun key ->
        Key_section_map.holders ksmap key = [] && Domain_state.objects_with_key domains key = [])
      t.keys
  in
  match fresh with
  | Some key -> Fresh key
  | None -> begin
    (* Rule 3a: recycle an unheld key, demoting its objects. *)
    let recyclable =
      if t.config.Config.prefer_recycle then
        let unheld = Key_section_map.unheld_keys ksmap ~among:t.keys in
        let with_load =
          List.map (fun key -> (key, Domain_state.objects_with_key domains key)) unheld
        in
        match List.sort (fun (_, a) (_, b) -> compare (List.length a) (List.length b)) with_load with
        | [] -> None
        | (key, objs) :: _ -> Some (key, objs)
      else None
    in
    match recyclable with
    | Some (key, objs) -> Recycle (key, objs)
    | None -> choose_share t ~ksmap ~somap ~section
  end

let choose_virtual t ~ksmap ~domains ~somap ~section =
  if t.next_fresh <= t.pool then Fresh t.next_fresh
  else begin
    (* Recycle hand: first matching key at or after the hand, pool
       order, wrapping — O(scan) amortized instead of an O(pool)
       load-sorted sweep per assignment. *)
    let scan pred =
      let found = ref (-1) in
      let i = ref 0 in
      while !found < 0 && !i < t.pool do
        let key = ((t.recycle_hand - 1 + !i) mod t.pool) + 1 in
        if pred key then found := key;
        incr i
      done;
      if !found < 0 then None else Some !found
    in
    let unheld key = Key_section_map.held_count ksmap key = 0 in
    let recyclable =
      if t.config.Config.prefer_recycle then
        (* Prefer a free key — unheld {e and} protecting nothing — over
           stealing a live association: a pool sized past the active
           section count then converges to stable per-section keys
           (the whole point of virtualization) instead of churning
           object–key bindings the way 13 physical keys must. *)
        match scan (fun key -> unheld key && Domain_state.key_load domains key = 0) with
        | Some key -> Some (key, [])
        | None ->
          (match scan unheld with
          | Some key -> Some (key, Domain_state.objects_with_key domains key)
          | None -> None)
      else None
    in
    match recyclable with
    | Some (key, objs) -> Recycle (key, objs)
    | None -> choose_share t ~ksmap ~somap ~section
  end

let choose t ~ksmap ~domains ~somap ~tid ~section =
  (* Rule 1: reuse a data key the faulting thread already holds with
     read-write permission (granting another thread's read-only key a
     new object would leak writes). *)
  let held =
    List.filter
      (fun (key, perm) ->
        in_key_space t key && Kard_mpk.Perm.equal perm Kard_mpk.Perm.Read_write)
      (Key_section_map.held_by ksmap ~tid)
  in
  match held with
  | (key, _) :: _ -> Reuse key
  | [] ->
    if t.pool > 0 then choose_virtual t ~ksmap ~domains ~somap ~section
    else choose_identity t ~ksmap ~domains ~somap ~section

let note t decision =
  let s = t.stats in
  (match decision with
  | Fresh key when t.pool > 0 ->
    if key >= t.next_fresh then t.next_fresh <- key + 1
  | Recycle (key, _) when t.pool > 0 ->
    (* Advance the hand past the recycled key so successive recycles
       spread over the pool instead of thrashing one key. *)
    t.recycle_hand <- (key mod t.pool) + 1
  | _ -> ());
  t.stats <-
    (match decision with
    | Reuse _ -> { s with reuse_events = s.reuse_events + 1 }
    | Fresh _ -> { s with fresh_events = s.fresh_events + 1 }
    | Recycle _ -> { s with recycling_events = s.recycling_events + 1 }
    | Share _ -> { s with sharing_events = s.sharing_events + 1 })

let stats t = t.stats

let pp_decision fmt = function
  | Reuse key -> Format.fprintf fmt "reuse k%d" key
  | Fresh key -> Format.fprintf fmt "fresh k%d" key
  | Recycle (key, objs) -> Format.fprintf fmt "recycle k%d (%d objects)" key (List.length objs)
  | Share key -> Format.fprintf fmt "share k%d" key
