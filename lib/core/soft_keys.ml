module Perm = Kard_mpk.Perm

type verdict =
  | Soft_ok
  | Soft_conflict of Key_section_map.holder list

(* One virtual key per pooled object, holders tracked directly. *)
type t = {
  holders : (int, Key_section_map.holder list) Hashtbl.t; (* obj -> holders *)
  pool : (int, unit) Hashtbl.t;
}

let create () = { holders = Hashtbl.create 32; pool = Hashtbl.create 32 }

let add_object t ~obj_id =
  Hashtbl.replace t.pool obj_id ();
  if not (Hashtbl.mem t.holders obj_id) then Hashtbl.replace t.holders obj_id []

let mem t ~obj_id = Hashtbl.mem t.pool obj_id

let holders_of t obj_id = Option.value ~default:[] (Hashtbl.find_opt t.holders obj_id)

let access t ~obj_id ~tid ~section ~lock ~access =
  let holders = holders_of t obj_id in
  let mine = List.find_opt (fun h -> h.Key_section_map.tid = tid) holders in
  let others = List.filter (fun h -> h.Key_section_map.tid <> tid) holders in
  let conflicting =
    match access with
    | `Write -> others
    | `Read -> List.filter (fun h -> Perm.equal h.Key_section_map.perm Perm.Read_write) others
  in
  let already_sufficient =
    match mine, access with
    | Some _, `Read -> true
    | Some h, `Write -> Perm.equal h.Key_section_map.perm Perm.Read_write
    | None, (`Read | `Write) -> false
  in
  if conflicting <> [] && not already_sufficient then Soft_conflict conflicting
  else begin
    (match section, lock with
    | Some section, Some lock when not already_sufficient ->
      (* Claim (or upgrade) the virtual key for the section. *)
      let perm =
        match access with
        | `Write -> Perm.Read_write
        | `Read -> Perm.Read_only
      in
      let merged =
        match mine with
        | Some h -> { h with Key_section_map.perm = Perm.join h.Key_section_map.perm perm }
        | None -> { Key_section_map.tid; perm; section; lock; proactive = false }
      in
      Hashtbl.replace t.holders obj_id (merged :: others)
    | _ -> ());
    Soft_ok
  end

let release_thread t ~tid ~time:_ =
  Hashtbl.iter
    (fun obj_id holders ->
      let rest = List.filter (fun h -> h.Key_section_map.tid <> tid) holders in
      if List.length rest <> List.length holders then Hashtbl.replace t.holders obj_id rest)
    (Hashtbl.copy t.holders)

let pooled t = Hashtbl.length t.pool

let pp fmt t =
  Format.fprintf fmt "soft-keys{%d pooled, %d held}" (Hashtbl.length t.pool)
    (Hashtbl.fold (fun _ hs acc -> acc + List.length hs) t.holders 0)
