type need =
  | Needs_read
  | Needs_write

type t = {
  by_section : (int, (int, need) Hashtbl.t) Hashtbl.t;
  by_object : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* [objects_of] is called on every section entry (the proactive
     acquisition walk) but the map only changes on identification
     faults, so the folded entry list is memoized per section and
     invalidated on [record]/[forget_object].  Section ids are small
     dense ints, so the memo is an id-indexed array ([None] = stale)
     and the hit path is one bounds-checked load.  The cached list is
     exactly the fold of the bucket at fill time, so hits and misses
     are indistinguishable to callers. *)
  mutable cache : (int * need) list option array; (* index = section *)
}

let create () =
  { by_section = Hashtbl.create 64;
    by_object = Hashtbl.create 256;
    cache = Array.make 64 None }

let invalidate t section =
  if section >= 0 && section < Array.length t.cache then t.cache.(section) <- None

let ensure_cache t section =
  if section >= Array.length t.cache then begin
    let n = ref (Array.length t.cache) in
    while section >= !n do
      n := 2 * !n
    done;
    let bigger = Array.make !n None in
    Array.blit t.cache 0 bigger 0 (Array.length t.cache);
    t.cache <- bigger
  end

let bucket table key ~size =
  match Hashtbl.find_opt table key with
  | Some b -> b
  | None ->
    let b = Hashtbl.create size in
    Hashtbl.replace table key b;
    b

let record t ~section ~obj_id need =
  let objs = bucket t.by_section section ~size:16 in
  (match Hashtbl.find_opt objs obj_id, need with
  | Some Needs_write, Needs_read -> () (* write need is sticky *)
  | (Some (Needs_read | Needs_write) | None), _ -> Hashtbl.replace objs obj_id need);
  invalidate t section;
  Hashtbl.replace (bucket t.by_object obj_id ~size:8) section ()

let fold_section t section =
  match Hashtbl.find_opt t.by_section section with
  | Some objs -> Hashtbl.fold (fun obj_id need acc -> (obj_id, need) :: acc) objs []
  | None -> []

let objects_of t ~section =
  if section < 0 then fold_section t section
  else begin
    ensure_cache t section;
    match t.cache.(section) with
    | Some entries -> entries
    | None ->
      let entries = fold_section t section in
      t.cache.(section) <- Some entries;
      entries
  end

let need_of t ~section ~obj_id =
  match Hashtbl.find_opt t.by_section section with
  | Some objs -> Hashtbl.find_opt objs obj_id
  | None -> None

let sections_touching t ~obj_id =
  match Hashtbl.find_opt t.by_object obj_id with
  | Some sections -> Hashtbl.fold (fun section () acc -> section :: acc) sections []
  | None -> []

let sections_reading t ~obj_id =
  List.filter
    (fun section -> need_of t ~section ~obj_id = Some Needs_read)
    (sections_touching t ~obj_id)

let forget_object t ~obj_id =
  (match Hashtbl.find_opt t.by_object obj_id with
  | Some sections ->
    Hashtbl.iter
      (fun section () ->
        invalidate t section;
        match Hashtbl.find_opt t.by_section section with
        | Some objs -> Hashtbl.remove objs obj_id
        | None -> ())
      sections
  | None -> ());
  Hashtbl.remove t.by_object obj_id

let section_count t = Hashtbl.length t.by_section

let entry_count t =
  Hashtbl.fold (fun _ objs acc -> acc + Hashtbl.length objs) t.by_section 0

let pp_need fmt = function
  | Needs_read -> Format.pp_print_string fmt "r"
  | Needs_write -> Format.pp_print_string fmt "w"
