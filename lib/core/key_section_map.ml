module Pkey = Kard_mpk.Pkey
module Perm = Kard_mpk.Perm
module Dense = Kard_sched.Dense

type holder = {
  tid : int;
  perm : Perm.t;
  section : int;
  lock : int;
  proactive : bool;
}

(* Keys are the 16 architectural pkeys and threads/sections are small
   dense ids, so every map here is flat storage: acquire and release
   run on every section entry/exit and must neither hash nor
   allocate.  Holders of one key live in parallel arrays ([slots]);
   the [holder] records of the public API are materialized on demand
   by the cold callers (race logging, key assignment).

   Slot order encodes the history the cons-list predecessor exposed:
   slot [n-1] is the most recent holding (list head), a new holding
   appends, and an upgrade moves the holding to the top.  Release
   stamps go to per-key (and per-key-per-releaser) flat arrays, time
   [-1] meaning "never". *)
type slots = {
  mutable tids : int array;
  mutable perms : Perm.t array;
  mutable sections : int array;
  mutable locks : int array;
  mutable proactives : bool array;
  mutable n : int;
}

type release_row = {
  mutable r_time : int array; (* index = releaser tid; -1 = none *)
  mutable r_perm : Perm.t array;
  mutable r_section : int array;
  mutable r_lock : int array;
  mutable r_proactive : bool array;
}

type t = {
  slots : slots array; (* index = key *)
  lr_time : int array; (* key -> last release time, -1 = none *)
  lr_tid : int array;
  lr_perm : Perm.t array;
  lr_section : int array;
  lr_lock : int array;
  lr_proactive : bool array;
  by_releaser : release_row array; (* index = key *)
  mutable section_refs : int array; (* section -> live holdings *)
  mutable max_section : int; (* highest section index ever referenced *)
}

let create () =
  { slots =
      Array.init Pkey.count (fun _ ->
          { tids = [||]; perms = [||]; sections = [||]; locks = [||]; proactives = [||]; n = 0 });
    lr_time = Array.make Pkey.count (-1);
    lr_tid = Array.make Pkey.count 0;
    lr_perm = Array.make Pkey.count Perm.No_access;
    lr_section = Array.make Pkey.count 0;
    lr_lock = Array.make Pkey.count 0;
    lr_proactive = Array.make Pkey.count false;
    by_releaser =
      Array.init Pkey.count (fun _ ->
          { r_time = [||]; r_perm = [||]; r_section = [||]; r_lock = [||]; r_proactive = [||] });
    section_refs = Array.make 64 0;
    max_section = -1 }

let slot_holder s i =
  { tid = s.tids.(i);
    perm = s.perms.(i);
    section = s.sections.(i);
    lock = s.locks.(i);
    proactive = s.proactives.(i) }

(* Newest holding first, as the cons-list predecessor returned. *)
let holders t key =
  let s = t.slots.(Pkey.to_int key) in
  let rec go i acc = if i >= s.n then acc else go (i + 1) (slot_holder s i :: acc) in
  go 0 []

let other_holders t key ~tid =
  let s = t.slots.(Pkey.to_int key) in
  let rec go i acc =
    if i >= s.n then acc
    else go (i + 1) (if s.tids.(i) <> tid then slot_holder s i :: acc else acc)
  in
  go 0 []

let write_holder t key =
  let s = t.slots.(Pkey.to_int key) in
  let rec scan i =
    if i < 0 then None
    else if Perm.equal s.perms.(i) Perm.Read_write then Some (slot_holder s i)
    else scan (i - 1)
  in
  scan (s.n - 1)

let slot_of s ~tid =
  let rec scan i = if i >= s.n then -1 else if s.tids.(i) = tid then i else scan (i + 1) in
  scan 0

let held_by t ~tid =
  (* Ascending key order (canonical): the head of the result is the
     lowest-numbered key the thread holds. *)
  let rec scan k acc =
    if k < 0 then acc
    else
      let s = t.slots.(k) in
      let i = slot_of s ~tid in
      let acc = if i >= 0 then (Pkey.of_int k, s.perms.(i)) :: acc else acc in
      scan (k - 1) acc
  in
  scan (Pkey.count - 1) []

let can_acquire t key ~tid perm =
  let s = t.slots.(Pkey.to_int key) in
  match perm with
  | Perm.Read_write ->
    let rec only_self i = i >= s.n || (s.tids.(i) = tid && only_self (i + 1)) in
    only_self 0
  | Perm.Read_only ->
    let rec no_other_writer i =
      i >= s.n
      || ((s.tids.(i) = tid || not (Perm.equal s.perms.(i) Perm.Read_write))
         && no_other_writer (i + 1))
    in
    no_other_writer 0
  | Perm.No_access -> false

let section_ref t section delta =
  if section < 0 then invalid_arg "Key_section_map: negative section id";
  if section >= Array.length t.section_refs then begin
    let bigger = Array.make (Dense.grow_pow2 (Array.length t.section_refs) section) 0 in
    Array.blit t.section_refs 0 bigger 0 (Array.length t.section_refs);
    t.section_refs <- bigger
  end;
  if section > t.max_section then t.max_section <- section;
  t.section_refs.(section) <- max 0 (t.section_refs.(section) + delta)

let grow_slots s =
  let cap = max 4 (2 * s.n) in
  let bigger_int arr =
    let r = Array.make cap 0 in
    Array.blit arr 0 r 0 s.n;
    r
  in
  let perms = Array.make cap Perm.No_access in
  Array.blit s.perms 0 perms 0 s.n;
  let proactives = Array.make cap false in
  Array.blit s.proactives 0 proactives 0 s.n;
  s.tids <- bigger_int s.tids;
  s.perms <- perms;
  s.sections <- bigger_int s.sections;
  s.locks <- bigger_int s.locks;
  s.proactives <- proactives

(* Remove slot [i], keeping the order of the others. *)
let remove_slot s i =
  for j = i to s.n - 2 do
    s.tids.(j) <- s.tids.(j + 1);
    s.perms.(j) <- s.perms.(j + 1);
    s.sections.(j) <- s.sections.(j + 1);
    s.locks.(j) <- s.locks.(j + 1);
    s.proactives.(j) <- s.proactives.(j + 1)
  done;
  s.n <- s.n - 1

let push_slot s ~tid perm ~section ~lock ~proactive =
  if s.n = Array.length s.tids then grow_slots s;
  let i = s.n in
  s.tids.(i) <- tid;
  s.perms.(i) <- perm;
  s.sections.(i) <- section;
  s.locks.(i) <- lock;
  s.proactives.(i) <- proactive;
  s.n <- i + 1

let add_holding t key holder =
  let s = t.slots.(Pkey.to_int key) in
  let i = slot_of s ~tid:holder.tid in
  if i >= 0 then begin
    (* Upgrade (or idempotent re-acquire): the holding moves to the
       top with the joined permission and the new section/lock.  A
       holding counts as proactive only while every acquisition of it
       was — one access-driven (re)acquire means the thread really
       touched data under the key, which the idealized algorithm also
       grants. *)
    let joined = Perm.join s.perms.(i) holder.perm in
    let proactive = s.proactives.(i) && holder.proactive in
    remove_slot s i;
    push_slot s ~tid:holder.tid joined ~section:holder.section ~lock:holder.lock ~proactive
  end
  else begin
    push_slot s ~tid:holder.tid holder.perm ~section:holder.section ~lock:holder.lock
      ~proactive:holder.proactive;
    section_ref t holder.section 1
  end

let acquire t key holder =
  if not (can_acquire t key ~tid:holder.tid holder.perm) then
    invalid_arg
      (Format.asprintf "Key_section_map.acquire: %a not acquirable by t%d as %a" Pkey.pp key
         holder.tid Perm.pp holder.perm);
  add_holding t key holder

let force_acquire t key holder = add_holding t key holder

let note_release_by t k ~tid ~time ~perm ~section ~lock ~proactive =
  let row = t.by_releaser.(k) in
  if tid >= Array.length row.r_time then begin
    let cap = Dense.grow_pow2 (Array.length row.r_time) tid in
    let grown_int init arr =
      let r = Array.make cap init in
      Array.blit arr 0 r 0 (Array.length arr);
      r
    in
    let perms = Array.make cap Perm.No_access in
    Array.blit row.r_perm 0 perms 0 (Array.length row.r_perm);
    let proactives = Array.make cap false in
    Array.blit row.r_proactive 0 proactives 0 (Array.length row.r_proactive);
    row.r_time <- grown_int (-1) row.r_time;
    row.r_perm <- perms;
    row.r_section <- grown_int 0 row.r_section;
    row.r_lock <- grown_int 0 row.r_lock;
    row.r_proactive <- proactives
  end;
  row.r_time.(tid) <- time;
  row.r_perm.(tid) <- perm;
  row.r_section.(tid) <- section;
  row.r_lock.(tid) <- lock;
  row.r_proactive.(tid) <- proactive

let release t key ~tid ~time =
  let k = Pkey.to_int key in
  let s = t.slots.(k) in
  let i = slot_of s ~tid in
  if i >= 0 then begin
    let perm = s.perms.(i) and section = s.sections.(i) and lock = s.locks.(i) in
    let proactive = s.proactives.(i) in
    remove_slot s i;
    t.lr_time.(k) <- time;
    t.lr_tid.(k) <- tid;
    t.lr_perm.(k) <- perm;
    t.lr_section.(k) <- section;
    t.lr_lock.(k) <- lock;
    t.lr_proactive.(k) <- proactive;
    note_release_by t k ~tid ~time ~perm ~section ~lock ~proactive;
    section_ref t section (-1)
  end

let last_release t key =
  let k = Pkey.to_int key in
  if t.lr_time.(k) < 0 then None
  else
    Some
      ( t.lr_time.(k),
        { tid = t.lr_tid.(k);
          perm = t.lr_perm.(k);
          section = t.lr_section.(k);
          lock = t.lr_lock.(k);
          proactive = t.lr_proactive.(k) } )

let last_release_by_other t key ~tid =
  (* Most recent release of [key] by any other thread; on equal stamps
     the lowest releasing tid wins (canonical). *)
  let row = t.by_releaser.(Pkey.to_int key) in
  let best = ref (-1) in
  let best_time = ref min_int in
  for releaser = 0 to Array.length row.r_time - 1 do
    if releaser <> tid && row.r_time.(releaser) >= 0 && row.r_time.(releaser) > !best_time then begin
      best := releaser;
      best_time := row.r_time.(releaser)
    end
  done;
  if !best < 0 then None
  else
    let r = !best in
    Some
      ( row.r_time.(r),
        { tid = r;
          perm = row.r_perm.(r);
          section = row.r_section.(r);
          lock = row.r_lock.(r);
          proactive = row.r_proactive.(r) } )

let recently_released t key ~now ~window =
  let time = t.lr_time.(Pkey.to_int key) in
  time >= 0 && now - time <= window

let unheld_keys t ~among = List.filter (fun key -> t.slots.(Pkey.to_int key).n = 0) among

let active_sections t =
  let acc = ref [] in
  for section = t.max_section downto 0 do
    if t.section_refs.(section) > 0 then acc := section :: !acc
  done;
  !acc

let is_section_active t ~section =
  section >= 0 && section < Array.length t.section_refs && t.section_refs.(section) > 0
