module Perm = Kard_mpk.Perm
module Dense = Kard_sched.Dense

type holder = {
  tid : int;
  perm : Perm.t;
  section : int;
  lock : int;
  proactive : bool;
}

(* Keys are small dense ints — the 16 architectural pkeys in identity
   mode, or virtual keys 1..pool under the vkey cache — and
   threads/sections are small dense ids, so every map here is flat
   storage: acquire and release run on every section entry/exit and
   must neither hash nor allocate.  Per-key storage grows on demand
   (a vkey pool can be thousands wide but only touched keys pay).
   Holders of one key live in parallel arrays ([slots]); the [holder]
   records of the public API are materialized on demand by the cold
   callers (race logging, key assignment).

   Slot order encodes the history the cons-list predecessor exposed:
   slot [n-1] is the most recent holding (list head), a new holding
   appends, and an upgrade moves the holding to the top.  Release
   stamps go to per-key (and per-key-per-releaser) flat arrays, time
   [-1] meaning "never".

   [held_by] is answered from a per-tid sorted index of held keys —
   O(keys the thread holds), not O(key capacity), which matters once
   the key space is a vkey pool. *)
type slots = {
  mutable tids : int array;
  mutable perms : Perm.t array;
  mutable sections : int array;
  mutable locks : int array;
  mutable proactives : bool array;
  mutable n : int;
}

type release_row = {
  mutable r_time : int array; (* index = releaser tid; -1 = none *)
  mutable r_perm : Perm.t array;
  mutable r_section : int array;
  mutable r_lock : int array;
  mutable r_proactive : bool array;
}

type t = {
  mutable slots : slots array; (* index = key *)
  mutable lr_time : int array; (* key -> last release time, -1 = none *)
  mutable lr_tid : int array;
  mutable lr_perm : Perm.t array;
  mutable lr_section : int array;
  mutable lr_lock : int array;
  mutable lr_proactive : bool array;
  mutable by_releaser : release_row array; (* index = key *)
  mutable section_refs : int array; (* section -> live holdings *)
  mutable max_section : int; (* highest section index ever referenced *)
  mutable tid_keys : int array array; (* tid -> ascending keys held *)
  mutable tid_nkeys : int array;
}

let fresh_slots () =
  { tids = [||]; perms = [||]; sections = [||]; locks = [||]; proactives = [||]; n = 0 }

let fresh_release_row () =
  { r_time = [||]; r_perm = [||]; r_section = [||]; r_lock = [||]; r_proactive = [||] }

let create () =
  let cap = Kard_mpk.Pkey.count in
  { slots = Array.init cap (fun _ -> fresh_slots ());
    lr_time = Array.make cap (-1);
    lr_tid = Array.make cap 0;
    lr_perm = Array.make cap Perm.No_access;
    lr_section = Array.make cap 0;
    lr_lock = Array.make cap 0;
    lr_proactive = Array.make cap false;
    by_releaser = Array.init cap (fun _ -> fresh_release_row ());
    section_refs = Array.make 64 0;
    max_section = -1;
    tid_keys = Array.make 16 [||];
    tid_nkeys = Array.make 16 0 }

(* Grow every key-indexed array to cover [key]. *)
let ensure_key t key =
  if key < 0 then invalid_arg "Key_section_map: negative key";
  let cap = Array.length t.slots in
  if key >= cap then begin
    let cap' = Dense.grow_pow2 cap key in
    let grown mk init arr =
      let r = Array.init cap' (fun i -> if i < cap then arr.(i) else mk init) in
      r
    in
    t.slots <- Array.init cap' (fun i -> if i < cap then t.slots.(i) else fresh_slots ());
    t.lr_time <- grown (fun x -> x) (-1) t.lr_time;
    t.lr_tid <- grown (fun x -> x) 0 t.lr_tid;
    t.lr_perm <- grown (fun x -> x) Perm.No_access t.lr_perm;
    t.lr_section <- grown (fun x -> x) 0 t.lr_section;
    t.lr_lock <- grown (fun x -> x) 0 t.lr_lock;
    t.lr_proactive <- grown (fun x -> x) false t.lr_proactive;
    t.by_releaser <-
      Array.init cap' (fun i -> if i < cap then t.by_releaser.(i) else fresh_release_row ())
  end

let slots_of t key =
  ensure_key t key;
  t.slots.(key)

(* Read-only access: out-of-range keys have no holders. *)
let slots_ro t key = if key >= 0 && key < Array.length t.slots then Some t.slots.(key) else None

let slot_holder s i =
  { tid = s.tids.(i);
    perm = s.perms.(i);
    section = s.sections.(i);
    lock = s.locks.(i);
    proactive = s.proactives.(i) }

(* Newest holding first, as the cons-list predecessor returned. *)
let holders t key =
  match slots_ro t key with
  | None -> []
  | Some s ->
    let rec go i acc = if i >= s.n then acc else go (i + 1) (slot_holder s i :: acc) in
    go 0 []

let other_holders t key ~tid =
  match slots_ro t key with
  | None -> []
  | Some s ->
    let rec go i acc =
      if i >= s.n then acc
      else go (i + 1) (if s.tids.(i) <> tid then slot_holder s i :: acc else acc)
    in
    go 0 []

let write_holder t key =
  match slots_ro t key with
  | None -> None
  | Some s ->
    let rec scan i =
      if i < 0 then None
      else if Perm.equal s.perms.(i) Perm.Read_write then Some (slot_holder s i)
      else scan (i - 1)
    in
    scan (s.n - 1)

let held_count t key = match slots_ro t key with None -> 0 | Some s -> s.n

let slot_of s ~tid =
  let rec scan i = if i >= s.n then -1 else if s.tids.(i) = tid then i else scan (i + 1) in
  scan 0

(* {2 The per-tid held-keys index} *)

let ensure_tid t tid =
  if tid < 0 then invalid_arg "Key_section_map: negative thread id";
  let cap = Array.length t.tid_nkeys in
  if tid >= cap then begin
    let cap' = Dense.grow_pow2 cap tid in
    let keys = Array.make cap' [||] in
    Array.blit t.tid_keys 0 keys 0 cap;
    let nkeys = Array.make cap' 0 in
    Array.blit t.tid_nkeys 0 nkeys 0 cap;
    t.tid_keys <- keys;
    t.tid_nkeys <- nkeys
  end

let index_add t ~tid key =
  ensure_tid t tid;
  let arr = t.tid_keys.(tid) and n = t.tid_nkeys.(tid) in
  let arr =
    if n = Array.length arr then begin
      let bigger = Array.make (max 4 (2 * n)) 0 in
      Array.blit arr 0 bigger 0 n;
      t.tid_keys.(tid) <- bigger;
      bigger
    end
    else arr
  in
  (* Insert keeping ascending order. *)
  let i = ref n in
  while !i > 0 && arr.(!i - 1) > key do
    arr.(!i) <- arr.(!i - 1);
    decr i
  done;
  arr.(!i) <- key;
  t.tid_nkeys.(tid) <- n + 1

let index_remove t ~tid key =
  if tid < Array.length t.tid_nkeys then begin
    let arr = t.tid_keys.(tid) and n = t.tid_nkeys.(tid) in
    let rec find i = if i >= n then -1 else if arr.(i) = key then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      Array.blit arr (i + 1) arr i (n - i - 1);
      t.tid_nkeys.(tid) <- n - 1
    end
  end

(* Ascending key order (canonical): the head of the result is the
   lowest-numbered key the thread holds. *)
let held_by t ~tid =
  if tid < 0 || tid >= Array.length t.tid_nkeys then []
  else begin
    let arr = t.tid_keys.(tid) and n = t.tid_nkeys.(tid) in
    let rec go i acc =
      if i < 0 then acc
      else
        let key = arr.(i) in
        let s = t.slots.(key) in
        let j = slot_of s ~tid in
        go (i - 1) (if j >= 0 then (key, s.perms.(j)) :: acc else acc)
    in
    go (n - 1) []
  end

let can_acquire t key ~tid perm =
  match slots_ro t key with
  | None -> not (Perm.equal perm Perm.No_access)
  | Some s -> (
    match perm with
    | Perm.Read_write ->
      let rec only_self i = i >= s.n || (s.tids.(i) = tid && only_self (i + 1)) in
      only_self 0
    | Perm.Read_only ->
      let rec no_other_writer i =
        i >= s.n
        || ((s.tids.(i) = tid || not (Perm.equal s.perms.(i) Perm.Read_write))
           && no_other_writer (i + 1))
      in
      no_other_writer 0
    | Perm.No_access -> false)

let section_ref t section delta =
  if section < 0 then invalid_arg "Key_section_map: negative section id";
  if section >= Array.length t.section_refs then begin
    let bigger = Array.make (Dense.grow_pow2 (Array.length t.section_refs) section) 0 in
    Array.blit t.section_refs 0 bigger 0 (Array.length t.section_refs);
    t.section_refs <- bigger
  end;
  if section > t.max_section then t.max_section <- section;
  t.section_refs.(section) <- max 0 (t.section_refs.(section) + delta)

let grow_slots s =
  let cap = max 4 (2 * s.n) in
  let bigger_int arr =
    let r = Array.make cap 0 in
    Array.blit arr 0 r 0 s.n;
    r
  in
  let perms = Array.make cap Perm.No_access in
  Array.blit s.perms 0 perms 0 s.n;
  let proactives = Array.make cap false in
  Array.blit s.proactives 0 proactives 0 s.n;
  s.tids <- bigger_int s.tids;
  s.perms <- perms;
  s.sections <- bigger_int s.sections;
  s.locks <- bigger_int s.locks;
  s.proactives <- proactives

(* Remove slot [i], keeping the order of the others. *)
let remove_slot s i =
  for j = i to s.n - 2 do
    s.tids.(j) <- s.tids.(j + 1);
    s.perms.(j) <- s.perms.(j + 1);
    s.sections.(j) <- s.sections.(j + 1);
    s.locks.(j) <- s.locks.(j + 1);
    s.proactives.(j) <- s.proactives.(j + 1)
  done;
  s.n <- s.n - 1

let push_slot s ~tid perm ~section ~lock ~proactive =
  if s.n = Array.length s.tids then grow_slots s;
  let i = s.n in
  s.tids.(i) <- tid;
  s.perms.(i) <- perm;
  s.sections.(i) <- section;
  s.locks.(i) <- lock;
  s.proactives.(i) <- proactive;
  s.n <- i + 1

let add_holding t key holder =
  let s = slots_of t key in
  let i = slot_of s ~tid:holder.tid in
  if i >= 0 then begin
    (* Upgrade (or idempotent re-acquire): the holding moves to the
       top with the joined permission and the new section/lock.  A
       holding counts as proactive only while every acquisition of it
       was — one access-driven (re)acquire means the thread really
       touched data under the key, which the idealized algorithm also
       grants. *)
    let joined = Perm.join s.perms.(i) holder.perm in
    let proactive = s.proactives.(i) && holder.proactive in
    remove_slot s i;
    push_slot s ~tid:holder.tid joined ~section:holder.section ~lock:holder.lock ~proactive
  end
  else begin
    push_slot s ~tid:holder.tid holder.perm ~section:holder.section ~lock:holder.lock
      ~proactive:holder.proactive;
    index_add t ~tid:holder.tid key;
    section_ref t holder.section 1
  end

let acquire t key holder =
  if not (can_acquire t key ~tid:holder.tid holder.perm) then
    invalid_arg
      (Format.asprintf "Key_section_map.acquire: k%d not acquirable by t%d as %a" key holder.tid
         Perm.pp holder.perm);
  add_holding t key holder

let force_acquire t key holder = add_holding t key holder

let note_release_by t k ~tid ~time ~perm ~section ~lock ~proactive =
  let row = t.by_releaser.(k) in
  if tid >= Array.length row.r_time then begin
    let cap = Dense.grow_pow2 (Array.length row.r_time) tid in
    let grown_int init arr =
      let r = Array.make cap init in
      Array.blit arr 0 r 0 (Array.length arr);
      r
    in
    let perms = Array.make cap Perm.No_access in
    Array.blit row.r_perm 0 perms 0 (Array.length row.r_perm);
    let proactives = Array.make cap false in
    Array.blit row.r_proactive 0 proactives 0 (Array.length row.r_proactive);
    row.r_time <- grown_int (-1) row.r_time;
    row.r_perm <- perms;
    row.r_section <- grown_int 0 row.r_section;
    row.r_lock <- grown_int 0 row.r_lock;
    row.r_proactive <- proactives
  end;
  row.r_time.(tid) <- time;
  row.r_perm.(tid) <- perm;
  row.r_section.(tid) <- section;
  row.r_lock.(tid) <- lock;
  row.r_proactive.(tid) <- proactive

let release t key ~tid ~time =
  let s = slots_of t key in
  let i = slot_of s ~tid in
  if i >= 0 then begin
    let perm = s.perms.(i) and section = s.sections.(i) and lock = s.locks.(i) in
    let proactive = s.proactives.(i) in
    remove_slot s i;
    index_remove t ~tid key;
    t.lr_time.(key) <- time;
    t.lr_tid.(key) <- tid;
    t.lr_perm.(key) <- perm;
    t.lr_section.(key) <- section;
    t.lr_lock.(key) <- lock;
    t.lr_proactive.(key) <- proactive;
    note_release_by t key ~tid ~time ~perm ~section ~lock ~proactive;
    section_ref t section (-1)
  end

let last_release t key =
  if key < 0 || key >= Array.length t.lr_time || t.lr_time.(key) < 0 then None
  else
    Some
      ( t.lr_time.(key),
        { tid = t.lr_tid.(key);
          perm = t.lr_perm.(key);
          section = t.lr_section.(key);
          lock = t.lr_lock.(key);
          proactive = t.lr_proactive.(key) } )

let last_release_by_other t key ~tid =
  (* Most recent release of [key] by any other thread; on equal stamps
     the lowest releasing tid wins (canonical). *)
  if key < 0 || key >= Array.length t.by_releaser then None
  else begin
    let row = t.by_releaser.(key) in
    let best = ref (-1) in
    let best_time = ref min_int in
    for releaser = 0 to Array.length row.r_time - 1 do
      if releaser <> tid && row.r_time.(releaser) >= 0 && row.r_time.(releaser) > !best_time
      then begin
        best := releaser;
        best_time := row.r_time.(releaser)
      end
    done;
    if !best < 0 then None
    else
      let r = !best in
      Some
        ( row.r_time.(r),
          { tid = r;
            perm = row.r_perm.(r);
            section = row.r_section.(r);
            lock = row.r_lock.(r);
            proactive = row.r_proactive.(r) } )
  end

let recently_released t key ~now ~window =
  if key < 0 || key >= Array.length t.lr_time then false
  else
    let time = t.lr_time.(key) in
    time >= 0 && now - time <= window

let unheld_keys t ~among = List.filter (fun key -> held_count t key = 0) among

let active_sections t =
  let acc = ref [] in
  for section = t.max_section downto 0 do
    if t.section_refs.(section) > 0 then acc := section :: !acc
  done;
  !acc

let is_section_active t ~section =
  section >= 0 && section < Array.length t.section_refs && t.section_refs.(section) > 0
