(** Deterministic, resumable, parallel fuzz campaigns.

    A campaign of [count] programs derives every input from the
    campaign seed alone: program [i] is generated from
    [Random.State.make [| seed; i |]], the machine seed is drawn from
    the same state, and the detector configuration cycles through
    {!configs} by index.  Jobs are independent, executed on the
    {!Kard_harness.Pool} and merged in submission order — a campaign
    at [--jobs 1] and at [--jobs 8] produces byte-identical reports
    and corpus contents.

    With a corpus directory the campaign persists (no timestamps, no
    hostnames — files depend only on [seed] and [count]):

    - [state.txt] — the machine-readable cumulative record (seed,
      programs done, per-class counts); a rerun with the same seed
      resumes after the programs already done, extending the same
      corpus.
    - [summary.txt] — the human-readable mirror.
    - [exemplar-<class>.ml] — for each divergence class, the first
      program (lowest index) that exhibited it, as a runnable
      {!Prog.to_ocaml} value.
    - [unexpected-<index>.ml] — every program with an unexpected
      divergence, minimized by {!Shrink.minimize} (preserving
      unexpectedness), plus the original as
      [unexpected-<index>-full.ml]. *)

val configs :
  (string * Kard_core.Config.t * int * [ `Default | `Vkey_rotation ] * bool) list
(** The (name, detector configuration, machine shard count, generator
    pressure, replay gate) entries a campaign cycles through: the
    default; a 4-key detector (forcing grouping, recycling and
    sharing); a 4-key detector with the software fallback;
    lock-identity sections; two {e sharded} entries (4 and 3 shards)
    whose programs also run the dual-machine shard gate
    ({!Harness.run}), so burst-engine determinism is fuzzed alongside
    oracle equivalence; three {e vkey rotation} entries — a 64-key
    virtual pool over the full and the 4-key physical budget, plus a
    sharded one — drawn with the [`Vkey_rotation] generator profile
    ({!Prog.generate}) so every program outruns the physical keys and
    the cache's load/evict/stall windows sit under the oracles; four
    {e sampling} entries; and two {e replay-oracle} entries whose
    programs also run the record/replay gate (record the
    nondeterminism log, round-trip the codec, strictly replay, demand
    identical results — any difference is the never-expected
    replay-divergence class), one on the default detector and one
    pairing replay with sampling and the burst engine. *)

type reconstructed = {
  rp_prog : Prog.t;
  rp_config_name : string;
  rp_config : Kard_core.Config.t;
  rp_shards : int;
  rp_replay : bool;
  rp_machine_seed : int;
}

val reconstruct : seed:int -> int -> reconstructed
(** Rebuild program [i] of campaign [seed]: the generator state, the
    {!configs} entry and the machine seed are all pure functions of
    the pair, so a log recorded from a campaign program — header
    target [fuzz:seed:i] — can be re-executed anywhere without
    shipping the program itself. *)

val target : seed:int -> int -> string
(** [fuzz:<seed>:<i>], the header target of a recorded campaign
    program. *)

val of_target : string -> (int * int) option
(** Parse {!target}'s form back to [(seed, i)]. *)

type result = {
  programs : int;       (** Programs run in this invocation. *)
  total : int;          (** Cumulative programs in the corpus (resume). *)
  divergent : int;      (** Cumulative programs with at least one divergence. *)
  class_counts : (Kard_core.Divergence.cls * int) list;
      (** Cumulative per-class divergent-object counts, taxonomy order. *)
  unexpected_indices : int list;  (** Cumulative, sorted. *)
}

val run :
  ?jobs:int ->
  ?corpus:string ->
  ?shards:int ->
  ?sampling:float ->
  ?replay:bool ->
  count:int ->
  seed:int ->
  unit ->
  result
(** Run programs [done..count-1] (where [done] is what the corpus
    already records, 0 without a corpus or on a fresh one).  [count]
    is the cumulative target.  [shards] overrides every config
    entry's shard count (so [--shards 1] disables the shard gate and
    [--shards N] applies it to all programs); [sampling] overrides
    every entry's sampling rate (with a 100k-cycle epoch, so
    rotations happen inside small programs) — under a rate below 1.0
    residual Kard misses classify as the expected
    [sampling-missed-race]; [replay] overrides every entry's replay
    flag (so [--replay] runs the record/replay gate on {e every}
    program, not just the replay-oracle entries).  Campaign results
    then depend on the overrides, so resumable corpora should keep
    them fixed.
    @raise Failure if the corpus directory belongs to a different
    campaign seed. *)

val report : Format.formatter -> result -> unit
(** The summary block (also what [summary.txt] contains). *)
