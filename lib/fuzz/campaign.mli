(** Deterministic, resumable, parallel fuzz campaigns.

    A campaign of [count] programs derives every input from the
    campaign seed alone: program [i] is generated from
    [Random.State.make [| seed; i |]], the machine seed is drawn from
    the same state, and the detector configuration cycles through
    {!configs} by index.  Jobs are independent, executed on the
    {!Kard_harness.Pool} and merged in submission order — a campaign
    at [--jobs 1] and at [--jobs 8] produces byte-identical reports
    and corpus contents.

    With a corpus directory the campaign persists (no timestamps, no
    hostnames — files depend only on [seed] and [count]):

    - [state.txt] — the machine-readable cumulative record (seed,
      programs done, per-class counts); a rerun with the same seed
      resumes after the programs already done, extending the same
      corpus.
    - [summary.txt] — the human-readable mirror.
    - [exemplar-<class>.ml] — for each divergence class, the first
      program (lowest index) that exhibited it, as a runnable
      {!Prog.to_ocaml} value.
    - [unexpected-<index>.ml] — every program with an unexpected
      divergence, minimized by {!Shrink.minimize} (preserving
      unexpectedness), plus the original as
      [unexpected-<index>-full.ml]. *)

val configs :
  (string * Kard_core.Config.t * int * [ `Default | `Vkey_rotation ]) list
(** The (name, detector configuration, machine shard count, generator
    pressure) entries a campaign cycles through: the default; a 4-key
    detector (forcing grouping, recycling and sharing); a 4-key
    detector with the software fallback; lock-identity sections; two
    {e sharded} entries (4 and 3 shards) whose programs also run the
    dual-machine shard gate ({!Harness.run}), so burst-engine
    determinism is fuzzed alongside oracle equivalence; and three
    {e vkey rotation} entries — a 64-key virtual pool over the full
    and the 4-key physical budget, plus a sharded one — drawn with
    the [`Vkey_rotation] generator profile ({!Prog.generate}) so
    every program outruns the physical keys and the cache's
    load/evict/stall windows sit under the oracles. *)

type result = {
  programs : int;       (** Programs run in this invocation. *)
  total : int;          (** Cumulative programs in the corpus (resume). *)
  divergent : int;      (** Cumulative programs with at least one divergence. *)
  class_counts : (Kard_core.Divergence.cls * int) list;
      (** Cumulative per-class divergent-object counts, taxonomy order. *)
  unexpected_indices : int list;  (** Cumulative, sorted. *)
}

val run :
  ?jobs:int ->
  ?corpus:string ->
  ?shards:int ->
  ?sampling:float ->
  count:int ->
  seed:int ->
  unit ->
  result
(** Run programs [done..count-1] (where [done] is what the corpus
    already records, 0 without a corpus or on a fresh one).  [count]
    is the cumulative target.  [shards] overrides every config
    entry's shard count (so [--shards 1] disables the shard gate and
    [--shards N] applies it to all programs); [sampling] overrides
    every entry's sampling rate (with a 100k-cycle epoch, so
    rotations happen inside small programs) — under a rate below 1.0
    residual Kard misses classify as the expected
    [sampling-missed-race].  Campaign results then depend on the
    overrides, so resumable corpora should keep them fixed.
    @raise Failure if the corpus directory belongs to a different
    campaign seed. *)

val report : Format.formatter -> result -> unit
(** The summary block (also what [summary.txt] contains). *)
