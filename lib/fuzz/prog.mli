(** Random fuzz programs: generation, validation, compilation to
    machine thread programs, and pretty-printing as a runnable repro.

    A fuzz program is a tree small enough to delta-debug: [workers]
    worker threads run [phases] in lockstep (a coordinator thread
    allocates the object slots, refreshes some of them between phases,
    and drives the barrier), and each worker's per-phase work is a
    list of structured ops over slot indices.  Deadlock and
    lock-held-exit are impossible {e by construction}: [Locked]
    subtrees are balanced, and nested acquisition only ever takes a
    lock with a strictly larger index than the innermost held one
    (ordered locking), which {!check} enforces.

    Object identity is allocator identity: slots are reallocated
    fresh (unique pages, no recycling), so a refreshed slot is a brand
    new object to the detector and to every oracle — the generator
    covers alloc/free and reuse without ever expressing a
    use-after-free. *)

type op =
  | Read of { slot : int; off : int }
  | Write of { slot : int; off : int }
  | Rmw of { slot : int; off : int }
      (** A lock-free read-modify-write (CAS / fetch-add style):
          compiles to an adjacent read and write of the same cell. *)
  | Compute of int
  | Yield
  | Locked of { lock : int; site : int; body : op list }
      (** A critical section: lock index [lock], synchronization call
          site [site].  Sites and locks vary independently, so the
          generator expresses consistent, inconsistent and absent
          locking. *)
  | Repeat of { times : int; body : op list }
      (** Compiled through {!Kard_sched.Program.repeat}: a dynamic
          program segment built lazily, one iteration at a time. *)

type phase = {
  refresh : int list;     (** Slots freed and reallocated before this
                              phase (must be [[]] for phase 0). *)
  work : op list array;   (** One op list per worker. *)
}

type t = {
  workers : int;
  slots : int;
  locks : int;
  slot_size : int;
  phases : phase list;
}

val check : t -> (unit, string) result
(** Structural validity: positive counts, indices in range, ordered
    lock nesting, [Repeat] times >= 1, every phase with one op list
    per worker, no refresh in phase 0. *)

val generate : ?pressure:[ `Default | `Vkey_rotation ] -> rand:Random.State.t -> unit -> t
(** A random valid program.  Slot counts are bimodal: half the
    programs use a handful of objects, half use more than the 13
    physical data keys so key assignment is forced into grouping,
    recycling, sharing or soft-key spill.  [`Vkey_rotation] shifts
    both modes above the physical budget (14..20 and 24..64 slots):
    the campaign pairs it with virtual-pool configs so the vkey
    cache's load/evict/stall paths — not just key assignment — sit
    under the oracles.  The default profile's stream is unchanged by
    the parameter (corpus seeds stay stable). *)

val op_count : t -> int
(** Total structured ops over all workers and phases (leaves plus
    [Locked]/[Repeat] nodes), the shrinker's size measure. *)

val to_ocaml : t -> string
(** The program as a runnable OCaml value of this very type, suitable
    for pasting into a test and feeding back through
    {!Harness.run} (which compiles it through the
    {!Kard_sched.Program} builders). *)

(** {1 Compilation} *)

type run_ctx
(** Mutable per-run state: slot metas, barrier counters. *)

val spawn_all :
  t ->
  machine:Kard_sched.Machine.t ->
  on_event:(Trace_log.ev -> unit) ->
  run_ctx
(** Compile and spawn the coordinator (tid 0) and the workers (tids
    1..[workers]) on the machine.  [on_event] receives the barrier
    events ([Pass]/[Arrive]/[Release]) the compiled programs emit so
    they interleave with the hook-recorded trace in program order. *)
