module A = Kard_core.Algorithm
module Config = Kard_core.Config
module Vc = Kard_baselines.Vector_clock

(* {1 Algorithm 1} *)

let alg1 ~section_identity events =
  let section ~site ~lock =
    match section_identity with
    | Config.By_call_site -> site
    | Config.By_lock -> lock
  in
  let t = A.create () in
  let racy = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let races =
        match (ev : Trace_log.ev) with
        | Trace_log.Lock { tid; lock; site } ->
          A.step t (A.Enter { thread = tid; section = section ~site ~lock })
        | Trace_log.Unlock { tid; _ } -> A.step t (A.Exit { thread = tid })
        | Trace_log.Read { tid; obj } -> A.step t (A.Read { thread = tid; obj })
        | Trace_log.Write { tid; obj } -> A.step t (A.Write { thread = tid; obj })
        | Trace_log.Alloc _ | Trace_log.Free _ | Trace_log.Pass _ | Trace_log.Arrive _
        | Trace_log.Release _ ->
          []
      in
      List.iter (fun (r : A.race) -> Hashtbl.replace racy r.A.obj ()) races)
    events;
  List.sort compare (Hashtbl.fold (fun obj () acc -> obj :: acc) racy [])

(* {1 Happens-before} *)

type hb_obj = {
  obj : int;
  unlocked_pair : bool;
}

type hb_state = {
  wvc : int array;         (* epoch of each thread's last write *)
  rvc : int array;         (* epoch of each thread's last read *)
  wlocked : bool array;
  rlocked : bool array;
  mutable racy : bool;
  mutable unlocked : bool;
}

let hb ~threads events =
  let c = Array.init threads (fun _ -> Vc.create ~threads) in
  (* Epochs must be distinguishable from the zero of a fresh clock. *)
  Array.iteri (fun t vc -> Vc.tick vc t) c;
  let depth = Array.make threads 0 in
  let lock_vc = Hashtbl.create 8 in
  let arrivals = Hashtbl.create 4 in
  let releases = Hashtbl.create 4 in
  let objs = Hashtbl.create 32 in
  let obj_state obj =
    match Hashtbl.find_opt objs obj with
    | Some st -> st
    | None ->
      let st =
        { wvc = Array.make threads 0;
          rvc = Array.make threads 0;
          wlocked = Array.make threads false;
          rlocked = Array.make threads false;
          racy = false;
          unlocked = false }
      in
      Hashtbl.replace objs obj st;
      st
  in
  let race st ~tid ~other_locked =
    st.racy <- true;
    if depth.(tid) = 0 || not other_locked then st.unlocked <- true
  in
  let on_read ~tid ~obj =
    let st = obj_state obj in
    for u = 0 to threads - 1 do
      if u <> tid && st.wvc.(u) > Vc.get c.(tid) u then
        race st ~tid ~other_locked:st.wlocked.(u)
    done;
    st.rvc.(tid) <- Vc.get c.(tid) tid;
    st.rlocked.(tid) <- depth.(tid) > 0
  in
  let on_write ~tid ~obj =
    let st = obj_state obj in
    for u = 0 to threads - 1 do
      if u <> tid then begin
        if st.wvc.(u) > Vc.get c.(tid) u then race st ~tid ~other_locked:st.wlocked.(u);
        if st.rvc.(u) > Vc.get c.(tid) u then race st ~tid ~other_locked:st.rlocked.(u)
      end
    done;
    st.wvc.(tid) <- Vc.get c.(tid) tid;
    st.wlocked.(tid) <- depth.(tid) > 0
  in
  List.iter
    (fun ev ->
      match (ev : Trace_log.ev) with
      | Trace_log.Lock { tid; lock; _ } ->
        (match Hashtbl.find_opt lock_vc lock with
        | Some l -> Vc.join ~into:c.(tid) l
        | None -> ());
        depth.(tid) <- depth.(tid) + 1
      | Trace_log.Unlock { tid; lock } ->
        Hashtbl.replace lock_vc lock (Vc.copy c.(tid));
        Vc.tick c.(tid) tid;
        depth.(tid) <- depth.(tid) - 1
      | Trace_log.Read { tid; obj } -> on_read ~tid ~obj
      | Trace_log.Write { tid; obj } -> on_write ~tid ~obj
      | Trace_log.Arrive { tid; phase } ->
        (match Hashtbl.find_opt arrivals phase with
        | Some acc -> Vc.join ~into:acc c.(tid)
        | None -> Hashtbl.replace arrivals phase (Vc.copy c.(tid)));
        Vc.tick c.(tid) tid
      | Trace_log.Release { phase } ->
        (match Hashtbl.find_opt arrivals (phase - 1) with
        | Some acc -> Vc.join ~into:c.(0) acc
        | None -> ());
        Hashtbl.replace releases phase (Vc.copy c.(0));
        Vc.tick c.(0) 0
      | Trace_log.Pass { tid; phase } ->
        (match Hashtbl.find_opt releases phase with
        | Some r -> Vc.join ~into:c.(tid) r
        | None -> ())
      | Trace_log.Alloc _ | Trace_log.Free _ -> ())
    events;
  Hashtbl.fold
    (fun obj st acc -> if st.racy then { obj; unlocked_pair = st.unlocked } :: acc else acc)
    objs []
  |> List.sort (fun a b -> compare a.obj b.obj)

(* {1 Eraser lockset} *)

type eraser_state = Virgin | Exclusive of int | Shared | Shared_modified

type lockset_obj = {
  obj : int;
  warned : bool;
  state : eraser_state;
  candidate_nonempty : bool;
  strict_warned : bool;
}

module Int_set = Set.Make (Int)

type ls_state = {
  mutable st : eraser_state;
  mutable candidate : Int_set.t option;  (* None = all locks (not yet refined) *)
  mutable warned_ : bool;
  (* Shadow replay without the Virgin/Exclusive exemption: refined
     from the very first access, warning on the classic write-shared
     + empty-lockset condition.  Divergence between the two replays
     is the evidence for the initialization-heuristic miss. *)
  mutable strict_cand : Int_set.t option;
  mutable accessors : Int_set.t;
  mutable any_write : bool;
  mutable strict_warned_ : bool;
}

let lockset events =
  let held : (int, Int_set.t) Hashtbl.t = Hashtbl.create 8 in
  let held_of tid = Option.value ~default:Int_set.empty (Hashtbl.find_opt held tid) in
  let objs : (int, ls_state) Hashtbl.t = Hashtbl.create 32 in
  let obj_state obj =
    match Hashtbl.find_opt objs obj with
    | Some st -> st
    | None ->
      let st =
        { st = Virgin; candidate = None; warned_ = false;
          strict_cand = None; accessors = Int_set.empty; any_write = false;
          strict_warned_ = false }
      in
      Hashtbl.replace objs obj st;
      st
  in
  let refine st ~tid =
    let now = held_of tid in
    let c = match st.candidate with None -> now | Some c -> Int_set.inter c now in
    st.candidate <- Some c;
    c
  in
  let strict_access st ~tid ~write =
    let now = held_of tid in
    let c = match st.strict_cand with None -> now | Some c -> Int_set.inter c now in
    st.strict_cand <- Some c;
    st.accessors <- Int_set.add tid st.accessors;
    st.any_write <- st.any_write || write;
    if Int_set.cardinal st.accessors >= 2 && st.any_write && Int_set.is_empty c then
      st.strict_warned_ <- true
  in
  let access ~tid ~obj ~write =
    let st = obj_state obj in
    strict_access st ~tid ~write;
    match st.st with
    | Virgin -> st.st <- Exclusive tid
    | Exclusive t0 when t0 = tid -> ()
    | Exclusive _ ->
      st.st <- (if write then Shared_modified else Shared);
      let c = refine st ~tid in
      if write && Int_set.is_empty c then st.warned_ <- true
    | Shared ->
      if write then st.st <- Shared_modified;
      let c = refine st ~tid in
      if st.st = Shared_modified && Int_set.is_empty c then st.warned_ <- true
    | Shared_modified ->
      let c = refine st ~tid in
      if Int_set.is_empty c then st.warned_ <- true
  in
  List.iter
    (fun ev ->
      match (ev : Trace_log.ev) with
      | Trace_log.Lock { tid; lock; _ } -> Hashtbl.replace held tid (Int_set.add lock (held_of tid))
      | Trace_log.Unlock { tid; lock } ->
        Hashtbl.replace held tid (Int_set.remove lock (held_of tid))
      | Trace_log.Read { tid; obj } -> access ~tid ~obj ~write:false
      | Trace_log.Write { tid; obj } -> access ~tid ~obj ~write:true
      | Trace_log.Alloc _ | Trace_log.Free _ | Trace_log.Pass _ | Trace_log.Arrive _
      | Trace_log.Release _ ->
        ())
    events;
  Hashtbl.fold
    (fun obj st acc ->
      { obj;
        warned = st.warned_;
        state = st.st;
        candidate_nonempty =
          (match st.candidate with None -> true | Some c -> not (Int_set.is_empty c));
        strict_warned = st.strict_warned_ }
      :: acc)
    objs []
  |> List.sort (fun a b -> compare a.obj b.obj)
