(** The oracle-equivalence contract, executed.

    Given one run's verdicts from all four detectors plus the Kard
    runtime's per-object provenance, produce a per-object divergence
    classification.  Every disagreement must be claimed by a
    {!Kard_core.Divergence} class whose evidence is present;
    anything left over is {!Kard_core.Divergence.Unexpected} — a
    real bug in the runtime, an oracle, or this classifier. *)

type obj_verdict = {
  obj : int;
  kard : bool;
  alg1 : bool;
  hb : bool;
  lockset : bool;  (** Eraser {e warned} (not merely refined). *)
  classes : Kard_core.Divergence.cls list;
      (** Sorted, deduplicated; [[]] when all four agree. *)
}

val classify :
  ?sampling:bool ->
  provenance:(obj_id:int -> Kard_core.Detector.provenance) ->
  kard:int list ->
  alg1:int list ->
  hb:Oracles.hb_obj list ->
  lockset:Oracles.lockset_obj list ->
  unit ->
  obj_verdict list
(** One verdict per object flagged by at least one detector, sorted
    by object id.  [sampling] (default [false]) marks the run as
    having sampled below rate 1.0: residual Kard misses then classify
    as {!Kard_core.Divergence.Sampling_missed_race} instead of
    [Unexpected] — the miss direction only; over-reports are never
    excused by sampling. *)

val pp_verdict : Format.formatter -> obj_verdict -> unit
