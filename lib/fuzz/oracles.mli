(** Pure reference oracles replaying one recorded trace.

    Each oracle consumes the {!Trace_log.ev} sequence of a single
    run — the machine's own linearization — so all four race
    detectors (the Kard runtime that produced the trace, and the
    three replays here) judge exactly the same schedule.  Every
    oracle reports at {e object} granularity (allocator ids), the
    common coin the classifier compares in. *)

(** {1 Algorithm 1} *)

val alg1 :
  section_identity:Kard_core.Config.section_identity -> Trace_log.ev list -> int list
(** Objects the idealized per-object-key algorithm flags, sorted.
    Sections are named the way the detector under test names them
    ([By_call_site]: the lock site; [By_lock]: the lock id), so the
    replay and the runtime agree on section identity. *)

(** {1 Happens-before} *)

type hb_obj = {
  obj : int;
  unlocked_pair : bool;
      (** Some racing pair had at least one side outside any critical
          section — distinguishes the two documented HB-only classes. *)
}

val hb : threads:int -> Trace_log.ev list -> hb_obj list
(** Objects with at least one pair of conflicting accesses unordered
    by happens-before, sorted by object.  Synchronization edges:
    lock release-to-acquire, and the fuzz program's phase barrier
    ([Arrive]/[Release]/[Pass] events).  Epoch-per-thread vector
    clocks ({!Kard_baselines.Vector_clock}); clocks tick at release
    points. *)

(** {1 Eraser lockset} *)

type eraser_state = Virgin | Exclusive of int | Shared | Shared_modified

type lockset_obj = {
  obj : int;
  warned : bool;          (** Candidate set emptied in Shared-modified. *)
  state : eraser_state;   (** Final state. *)
  candidate_nonempty : bool;
  strict_warned : bool;
      (** A shadow replay {e without} the Virgin/Exclusive
          exemption — refined from the first access, warning once the
          object is write-shared with an empty set — did warn.
          [strict_warned && not warned] is the evidence that Eraser's
          initialization heuristic hid the race. *)
}

val lockset : Trace_log.ev list -> lockset_obj list
(** Eraser's verdict per accessed object, sorted by object.  The
    final state and candidate set are exposed so the classifier can
    demand evidence for the documented misses (warnings only fire in
    Shared-modified). *)
