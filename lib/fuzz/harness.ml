module Machine = Kard_sched.Machine
module Hooks = Kard_sched.Hooks
module Detector = Kard_core.Detector
module Config = Kard_core.Config
module D = Kard_core.Divergence
module Race_record = Kard_core.Race_record
module Log = Kard_replay.Log
module Recorder = Kard_replay.Recorder
module Replayer = Kard_replay.Replayer

type outcome = {
  verdicts : Classify.obj_verdict list;
  divergent : Classify.obj_verdict list;
  classes : D.cls list;
  unexpected : bool;
  stuck : string option;
}

let allocator = Machine.Unique_page { granule = 32; recycle_virtual_pages = false }

(* The primary (trace-logged) machine never bursts — the log wrapper
   makes its access hooks impure — so the burst engine is gated by a
   dual run: the same program, seed and configuration on two
   {e unwrapped} Kard machines, shards=1 vs shards=N, whose full
   reports and race-record lists must be structurally identical
   (DESIGN.md §10).  The unwrapped detector's hooks are pure and the
   interpreter is compiled, so the shards=N run genuinely exercises
   the burst fast path. *)
let shard_gate ~config ~seed ~shards prog =
  let run_at shards =
    let cell = ref None in
    let machine =
      Machine.create ~seed ~shards ~allocator ~make_detector:(Detector.make ~config ~cell) ()
    in
    let (_ : Prog.run_ctx) = Prog.spawn_all prog ~machine ~on_event:(fun _ -> ()) in
    match Machine.run machine with
    | exception Machine.Stuck msg -> Error msg
    | report -> Ok (report, Detector.races (Option.get !cell))
  in
  match (run_at 1, run_at shards) with
  | Ok a, Ok b -> a = b
  | Error a, Error b -> String.equal a b
  | Ok _, Error _ | Error _, Ok _ -> false

(* The record/replay layer (DESIGN.md §13) is gated the same way: the
   program runs once more on an unwrapped Kard machine with the
   recorder composed in, the log is pushed through its wire encoding
   and back — so the codec round-trips on every generated program —
   and a strict replay driven by the decoded tape must reproduce the
   report and race-record list exactly, with every pick, grant and
   anchor matching and the tape fully consumed.  Like the shard gate,
   the unwrapped hooks stay pure, so at shards>1 recording and replay
   both genuinely run on the burst engine. *)
let replay_gate ?(target = "fuzz") ~config ~seed ~shards prog =
  let run_wrapped ?schedule wrap =
    let cell = ref None in
    let make_detector env = wrap env (Detector.make ~config ~cell env) in
    let machine =
      Machine.create ~seed ?schedule ~shards ~allocator ~make_detector ()
    in
    let (_ : Prog.run_ctx) = Prog.spawn_all prog ~machine ~on_event:(fun _ -> ()) in
    match Machine.run machine with
    | exception Machine.Stuck msg -> Error msg
    | report -> Ok (report, Detector.races (Option.get !cell))
  in
  let recorder = Recorder.create () in
  let recorded = run_wrapped (Recorder.wrap recorder) in
  let header =
    { Log.detector = "kard"; target; threads = prog.Prog.workers + 1; scale = 1.0; seed;
      shards; config = Some config }
  in
  match Log.decode (Log.encode (Recorder.log recorder ~header)) with
  | exception Log.Error _ -> false
  | log -> (
    let replayer = Replayer.create ~mode:Replayer.Strict log in
    let replayed =
      run_wrapped ~schedule:(Replayer.schedule replayer) (Replayer.wrap replayer)
    in
    Replayer.check replayer = Ok ()
    && match (recorded, replayed) with
       | Ok a, Ok b -> a = b
       | Error a, Error b -> String.equal a b
       | Ok _, Error _ | Error _, Ok _ -> false)

let run ?(kard_filter = fun (_ : Race_record.t) -> true)
    ?(provenance_filter = fun (p : Detector.provenance) -> p) ?(config = Config.default)
    ?(shards = 1) ?(replay = false) ?replay_target ~seed prog =
  let cell = ref None in
  let log = Trace_log.create () in
  let make_detector env =
    Trace_log.wrap log ~meta:env.Hooks.meta (Detector.make ~config ~cell env)
  in
  let machine = Machine.create ~seed ~shards ~allocator ~make_detector () in
  let (_ : Prog.run_ctx) =
    Prog.spawn_all prog ~machine ~on_event:(fun ev -> Trace_log.emit log ev)
  in
  match Machine.run machine with
  | exception Machine.Stuck msg ->
    { verdicts = []; divergent = []; classes = [ D.Unexpected ]; unexpected = true;
      stuck = Some msg }
  | (_ : Machine.report) ->
    let detector = Option.get !cell in
    let events = Trace_log.events log in
    let kard =
      Detector.races detector
      |> List.filter kard_filter
      |> List.map (fun (r : Race_record.t) -> r.Race_record.obj_id)
      |> List.sort_uniq compare
    in
    let alg1 = Oracles.alg1 ~section_identity:config.Config.section_identity events in
    let hb = Oracles.hb ~threads:(prog.Prog.workers + 1) events in
    let lockset = Oracles.lockset events in
    let verdicts =
      Classify.classify
        ~sampling:(config.Config.sampling < 1.0)
        ~provenance:(fun ~obj_id -> provenance_filter (Detector.provenance detector ~obj_id))
        ~kard ~alg1 ~hb ~lockset ()
    in
    let divergent = List.filter (fun v -> v.Classify.classes <> []) verdicts in
    let shard_ok = shards <= 1 || shard_gate ~config ~seed ~shards prog in
    let replay_ok =
      (not replay) || replay_gate ?target:replay_target ~config ~seed ~shards prog
    in
    let classes =
      List.sort_uniq D.compare
        ((if shard_ok then [] else [ D.Shard_divergence ])
        @ (if replay_ok then [] else [ D.Replay_divergence ])
        @ List.concat_map (fun v -> v.Classify.classes) divergent)
    in
    let unexpected = List.exists (fun c -> not (D.expected c)) classes in
    { verdicts; divergent; classes; unexpected; stuck = None }

let pp_outcome fmt o =
  match o.stuck with
  | Some msg -> Format.fprintf fmt "stuck: %s" msg
  | None ->
    if o.divergent = [] then Format.fprintf fmt "agreement on %d objects" (List.length o.verdicts)
    else
      Format.fprintf fmt "@[<v 0>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Classify.pp_verdict)
        o.divergent
