(** Run one fuzz program under every detector and classify.

    The program executes once on the simulated machine under the Kard
    runtime, with a {!Trace_log} wrapper recording the linearized
    event sequence; the three pure oracles then replay that exact
    sequence, and {!Classify} names every disagreement. *)

type outcome = {
  verdicts : Classify.obj_verdict list;
      (** Every object some detector flagged, sorted by id. *)
  divergent : Classify.obj_verdict list;
      (** The subset with a non-empty class list. *)
  classes : Kard_core.Divergence.cls list;
      (** Union over [divergent], sorted; additionally contains
          {!Kard_core.Divergence.Shard_divergence} when the sharded
          dual run (below) diverged, and
          {!Kard_core.Divergence.Replay_divergence} when the
          record/replay gate (below) did. *)
  unexpected : bool;
  stuck : string option;
      (** The machine raised [Stuck] — impossible for a {!Prog.check}ed
          program, so it counts as unexpected. *)
}

val run :
  ?kard_filter:(Kard_core.Race_record.t -> bool) ->
  ?provenance_filter:(Kard_core.Detector.provenance -> Kard_core.Detector.provenance) ->
  ?config:Kard_core.Config.t ->
  ?shards:int ->
  ?replay:bool ->
  ?replay_target:string ->
  seed:int ->
  Prog.t ->
  outcome
(** [kard_filter] drops Kard race records before comparison, and
    [provenance_filter] rewrites the per-object provenance the
    classifier sees — together the injected-bug levers for the
    shrinker tests: a detector that loses both its records and its
    evidence log turns every surviving divergence into
    {!Kard_core.Divergence.Unexpected} (defaults: keep
    everything).  [config] is the detector configuration (default
    {!Kard_core.Config.default}); [seed] drives the machine
    schedule.

    [shards] (default 1) shards the primary machine and, when greater
    than 1, additionally runs the {e shard gate}: the same program on
    two unwrapped Kard machines — shards=1 and shards=[shards], the
    latter on the burst engine — whose full reports and race-record
    lists must be structurally identical.  A mismatch adds the
    never-expected {!Kard_core.Divergence.Shard_divergence} class, so
    oracle equivalence gates the sharded execution engine.

    [replay] (default false) additionally runs the {e replay gate}:
    the program once more on an unwrapped Kard machine with the
    {!Kard_replay.Recorder} composed in, the log round-tripped
    through its wire encoding, and a strict {!Kard_replay.Replayer}
    re-execution that must reproduce the report and race-record list
    exactly with the tape fully consumed.  Any difference adds the
    never-expected {!Kard_core.Divergence.Replay_divergence} class —
    the campaign cross-checks log fidelity on generated programs the
    same way it gates the burst engine.  [replay_target] names the
    log's header target (default ["fuzz"]). *)

val pp_outcome : Format.formatter -> outcome -> unit
