(** Run one fuzz program under every detector and classify.

    The program executes once on the simulated machine under the Kard
    runtime, with a {!Trace_log} wrapper recording the linearized
    event sequence; the three pure oracles then replay that exact
    sequence, and {!Classify} names every disagreement. *)

type outcome = {
  verdicts : Classify.obj_verdict list;
      (** Every object some detector flagged, sorted by id. *)
  divergent : Classify.obj_verdict list;
      (** The subset with a non-empty class list. *)
  classes : Kard_core.Divergence.cls list;
      (** Union over [divergent], sorted. *)
  unexpected : bool;
  stuck : string option;
      (** The machine raised [Stuck] — impossible for a {!Prog.check}ed
          program, so it counts as unexpected. *)
}

val run :
  ?kard_filter:(Kard_core.Race_record.t -> bool) ->
  ?provenance_filter:(Kard_core.Detector.provenance -> Kard_core.Detector.provenance) ->
  ?config:Kard_core.Config.t ->
  seed:int ->
  Prog.t ->
  outcome
(** [kard_filter] drops Kard race records before comparison, and
    [provenance_filter] rewrites the per-object provenance the
    classifier sees — together the injected-bug levers for the
    shrinker tests: a detector that loses both its records and its
    evidence log turns every surviving divergence into
    {!Kard_core.Divergence.Unexpected} (defaults: keep
    everything).  [config] is the detector configuration (default
    {!Kard_core.Config.default}); [seed] drives the machine
    schedule. *)

val pp_outcome : Format.formatter -> outcome -> unit
