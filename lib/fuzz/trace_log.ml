module Hooks = Kard_sched.Hooks
module Meta_table = Kard_alloc.Meta_table
module Obj_meta = Kard_alloc.Obj_meta

type ev =
  | Lock of { tid : int; lock : int; site : int }
  | Unlock of { tid : int; lock : int }
  | Read of { tid : int; obj : int }
  | Write of { tid : int; obj : int }
  | Alloc of { tid : int; obj : int }
  | Free of { tid : int; obj : int }
  | Pass of { tid : int; phase : int }
  | Arrive of { tid : int; phase : int }
  | Release of { phase : int }

type t = { mutable rev_events : ev list }

let create () = { rev_events = [] }
let emit t ev = t.rev_events <- ev :: t.rev_events
let events t = List.rev t.rev_events

let wrap t ~meta (hooks : Hooks.t) =
  { hooks with
    (* The read/write wrappers below log events: never burst-eligible. *)
    Hooks.pure_access = false;
    on_lock =
      (fun ~tid ~lock ~site ->
        emit t (Lock { tid; lock; site });
        hooks.Hooks.on_lock ~tid ~lock ~site);
    on_unlock =
      (fun ~tid ~lock ->
        emit t (Unlock { tid; lock });
        hooks.Hooks.on_unlock ~tid ~lock);
    on_read =
      (fun ~tid ~addr ->
        (match Meta_table.find_addr meta addr with
        | Some m -> emit t (Read { tid; obj = m.Obj_meta.id })
        | None -> ());
        hooks.Hooks.on_read ~tid ~addr);
    on_write =
      (fun ~tid ~addr ->
        (match Meta_table.find_addr meta addr with
        | Some m -> emit t (Write { tid; obj = m.Obj_meta.id })
        | None -> ());
        hooks.Hooks.on_write ~tid ~addr);
    on_alloc =
      (fun ~tid m ->
        emit t (Alloc { tid; obj = m.Obj_meta.id });
        hooks.Hooks.on_alloc ~tid m);
    on_free =
      (fun ~tid m ->
        emit t (Free { tid; obj = m.Obj_meta.id });
        hooks.Hooks.on_free ~tid m) }

let pp_ev fmt = function
  | Lock { tid; lock; site } -> Format.fprintf fmt "t%d lock %d @%d" tid lock site
  | Unlock { tid; lock } -> Format.fprintf fmt "t%d unlock %d" tid lock
  | Read { tid; obj } -> Format.fprintf fmt "t%d read o%d" tid obj
  | Write { tid; obj } -> Format.fprintf fmt "t%d write o%d" tid obj
  | Alloc { tid; obj } -> Format.fprintf fmt "t%d alloc o%d" tid obj
  | Free { tid; obj } -> Format.fprintf fmt "t%d free o%d" tid obj
  | Pass { tid; phase } -> Format.fprintf fmt "t%d pass p%d" tid phase
  | Arrive { tid; phase } -> Format.fprintf fmt "t%d arrive p%d" tid phase
  | Release { phase } -> Format.fprintf fmt "release p%d" phase
