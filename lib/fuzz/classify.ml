module D = Kard_core.Divergence
module Detector = Kard_core.Detector

type obj_verdict = {
  obj : int;
  kard : bool;
  alg1 : bool;
  hb : bool;
  lockset : bool;
  classes : D.cls list;
}

let classify ?(sampling = false) ~provenance ~kard ~alg1 ~hb ~lockset () =
  let hb_tbl = Hashtbl.create 8 in
  List.iter (fun (h : Oracles.hb_obj) -> Hashtbl.replace hb_tbl h.Oracles.obj h) hb;
  let ls_tbl = Hashtbl.create 8 in
  List.iter (fun (l : Oracles.lockset_obj) -> Hashtbl.replace ls_tbl l.Oracles.obj l) lockset;
  let universe = Hashtbl.create 16 in
  let see obj = Hashtbl.replace universe obj () in
  List.iter see kard;
  List.iter see alg1;
  List.iter (fun (h : Oracles.hb_obj) -> see h.Oracles.obj) hb;
  List.iter (fun (l : Oracles.lockset_obj) -> if l.Oracles.warned then see l.Oracles.obj) lockset;
  let objects = List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) universe []) in
  let verdict obj =
    let k = List.mem obj kard in
    let a = List.mem obj alg1 in
    let h = Hashtbl.find_opt hb_tbl obj in
    let l = Hashtbl.find_opt ls_tbl obj in
    let warned = match l with Some l -> l.Oracles.warned | None -> false in
    let p = provenance ~obj_id:obj in
    let classes = ref [] in
    let add c = classes := c :: !classes in
    (* Axis 1: the central contract — the runtime vs Algorithm 1. *)
    if k && not a then begin
      if p.Detector.rescued then add D.Timestamp_window
      else if p.Detector.ro_blamed then add D.Ro_fault_blame
      else if p.Detector.proactive_blamed then add D.Proactive_hold_blame
      else if p.Detector.grouped then add D.Grouping_over_report
      else if p.Detector.vkey_blamed then add D.Vkey_eviction_blame
      else add D.Unexpected
    end;
    if a && not k then begin
      if p.Detector.key_shared then add D.Key_sharing_miss
      else if p.Detector.recycled then add D.Recycling_miss
      else if p.Detector.pruned then add D.Interleave_prune
      else if p.Detector.grouped then add D.Grouping_under_report
      else if p.Detector.demoted then add D.Demotion_miss
      else if p.Detector.ro_identified then add D.Ro_shadow_miss
      else if p.Detector.vkey_blamed then add D.Vkey_eviction_blame
      else if sampling then
        (* Under a rate < 1.0 any residual miss is the designed trade:
           the object — or every section that would have blamed it —
           was outside the sampled set when the conflict ran, so no
           fault fired.  Only the miss direction: sampling removes
           protection, it never invents a record, so [k && not a]
           above still demands one of the full-detector mechanisms. *)
        add D.Sampling_missed_race
      else add D.Unexpected
    end;
    (* Axis 2: key-based detection (Algorithm 1 as the semantic
       reference) vs happens-before over the same linearization. *)
    (match h with
    | Some hr when not a ->
      if hr.Oracles.unlocked_pair then add D.Hb_extra_unlocked else add D.Hb_extra_ilu
    | Some _ -> ()
    | None -> if a then add D.Ilu_not_hb);
    (* Axis 3: Eraser vs everyone.  The miss direction demands an
       access-witnessed race (HB flags an unordered conflicting pair):
       kard/alg1 potential races can come from proactive section keys
       with no access by the holder's current activation, which a
       pure access-pair analysis cannot see. *)
    if warned && not (k || a || Option.is_some h) then add D.Lockset_over_report;
    if Option.is_some h && not warned then begin
      match l with
      | Some { Oracles.strict_warned = true; _ } ->
        (* The no-exemption shadow replay does warn: the race hid
           behind the Virgin/Exclusive initialization heuristic. *)
        add D.Lockset_init_miss
      | Some { Oracles.state = Oracles.Shared_modified; candidate_nonempty = true; _ } ->
        (* Consistently locked even counting first-owner accesses: no
           documented Eraser miss applies, an oracle lied. *)
        add D.Unexpected
      | Some _ | None -> add D.Lockset_shared_read_miss
    end;
    { obj;
      kard = k;
      alg1 = a;
      hb = Option.is_some h;
      lockset = warned;
      classes = List.sort_uniq D.compare !classes }
  in
  List.map verdict objects

let pp_verdict fmt v =
  let flag b = if b then "+" else "-" in
  Format.fprintf fmt "obj %d [kard%s alg1%s hb%s lockset%s]" v.obj (flag v.kard) (flag v.alg1)
    (flag v.hb) (flag v.lockset);
  match v.classes with
  | [] -> Format.fprintf fmt " agreed"
  | cs ->
    Format.fprintf fmt " %a"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") D.pp)
      cs
