module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op
module Obj_meta = Kard_alloc.Obj_meta
module Builder = Kard_workloads.Builder

type op =
  | Read of { slot : int; off : int }
  | Write of { slot : int; off : int }
  | Rmw of { slot : int; off : int }
  | Compute of int
  | Yield
  | Locked of { lock : int; site : int; body : op list }
  | Repeat of { times : int; body : op list }

type phase = {
  refresh : int list;
  work : op list array;
}

type t = {
  workers : int;
  slots : int;
  locks : int;
  slot_size : int;
  phases : phase list;
}

(* Call sites for critical sections; independent of the lock index so
   consistent and inconsistent locking both arise. *)
let max_sites = 8

(* Id-space offsets keeping machine-level lock ids, section sites and
   allocation sites disjoint. *)
let lock_id l = 200 + l
let lock_site s = 10 + s
let alloc_site slot = 1000 + slot

(* {1 Validation} *)

let check p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_ops ~innermost = function
    | [] -> Ok ()
    | op :: rest -> (
      let r =
        match op with
        | Read { slot; off } | Write { slot; off } | Rmw { slot; off } ->
          if slot < 0 || slot >= p.slots then err "slot %d out of range" slot
          else if off < 0 || off >= p.slot_size then err "offset %d out of range" off
          else Ok ()
        | Compute n -> if n < 0 then err "negative compute" else Ok ()
        | Yield -> Ok ()
        | Locked { lock; site; body } ->
          if lock < 0 || lock >= p.locks then err "lock %d out of range" lock
          else if site < 0 || site >= max_sites then err "site %d out of range" site
          else if lock <= innermost then
            err "lock %d violates ordered nesting under %d" lock innermost
          else check_ops ~innermost:lock body
        | Repeat { times; body } ->
          if times < 1 then err "repeat of %d" times else check_ops ~innermost body
      in
      match r with Ok () -> check_ops ~innermost rest | Error _ -> r)
  in
  if p.workers < 1 then err "workers < 1"
  else if p.slots < 1 then err "slots < 1"
  else if p.locks < 1 then err "locks < 1"
  else if p.slot_size < 1 then err "slot_size < 1"
  else if p.phases = [] then err "no phases"
  else
    let rec check_phases i = function
      | [] -> Ok ()
      | ph :: rest -> (
        if Array.length ph.work <> p.workers then
          err "phase %d has %d op lists for %d workers" i (Array.length ph.work) p.workers
        else if i = 0 && ph.refresh <> [] then err "phase 0 cannot refresh"
        else if List.exists (fun s -> s < 0 || s >= p.slots) ph.refresh then
          err "phase %d refreshes a slot out of range" i
        else if List.length (List.sort_uniq compare ph.refresh) <> List.length ph.refresh then
          err "phase %d refreshes a slot twice" i
        else
          let rec over_workers w =
            if w >= p.workers then Ok ()
            else
              match check_ops ~innermost:(-1) ph.work.(w) with
              | Ok () -> over_workers (w + 1)
              | Error _ as e -> e
          in
          match over_workers 0 with Ok () -> check_phases (i + 1) rest | Error _ as e -> e)
    in
    check_phases 0 p.phases

(* {1 Generation} *)

let generate ?(pressure = `Default) ~rand () =
  let ri n = Random.State.int rand n in
  let workers = 2 + ri 3 in
  (* Bimodal: half the programs stay under the key budget, half blow
     through it (13 data keys) to force grouping/recycling/sharing.
     The vkey-rotation profile shifts both modes up — every program
     exceeds the physical keys and half go far past them (24..64 live
     objects), so a virtual pool is forced through load/evict/stall
     rotation instead of settling into residency. *)
  let slots =
    match pressure with
    | `Default -> if ri 2 = 0 then 1 + ri 6 else 14 + ri 7
    | `Vkey_rotation -> if ri 2 = 0 then 14 + ri 7 else 24 + ri 41
  in
  let locks = 1 + ri 4 in
  let slot_size = 64 in
  let gen_access () =
    let slot = ri slots in
    let off = if ri 2 = 0 then 0 else ri slot_size in
    (slot, off)
  in
  let rec gen_op ~depth ~innermost =
    let can_lock = depth < 2 && innermost < locks - 1 in
    let w = ri (if can_lock then 14 else 10) in
    if w < 3 then
      let slot, off = gen_access () in
      Read { slot; off }
    else if w < 6 then
      let slot, off = gen_access () in
      Write { slot; off }
    else if w = 6 then
      let slot, off = gen_access () in
      Rmw { slot; off }
    else if w = 7 then Compute (1 + ri 2_000)
    else if w = 8 then Yield
    else if w = 9 then
      Repeat { times = 2 + ri 2; body = gen_ops ~depth:(depth + 1) ~innermost (1 + ri 2) }
    else
      let lock = innermost + 1 + ri (locks - innermost - 1) in
      let site = ri max_sites in
      Locked { lock; site; body = gen_ops ~depth:(depth + 1) ~innermost:lock (1 + ri 3) }
  and gen_ops ~depth ~innermost n = List.init n (fun _ -> gen_op ~depth ~innermost) in
  let gen_phase i =
    let refresh =
      if i = 0 then [] else List.filter (fun _ -> ri 6 = 0) (List.init slots (fun s -> s))
    in
    let work = Array.init workers (fun _ -> gen_ops ~depth:0 ~innermost:(-1) (ri 9)) in
    { refresh; work }
  in
  let phases = List.init (1 + ri 3) gen_phase in
  { workers; slots; locks; slot_size; phases }

(* {1 Size} *)

let rec ops_size l = List.fold_left (fun acc op -> acc + op_size op) 0 l

and op_size = function
  | Read _ | Write _ | Rmw _ | Compute _ | Yield -> 1
  | Locked { body; _ } -> 1 + ops_size body
  | Repeat { body; _ } -> 1 + ops_size body

let op_count p =
  List.fold_left
    (fun acc ph -> Array.fold_left (fun acc ops -> acc + ops_size ops) acc ph.work)
    0 p.phases

(* {1 Printing} *)

let rec pp_op fmt = function
  | Read { slot; off } -> Format.fprintf fmt "Read { slot = %d; off = %d }" slot off
  | Write { slot; off } -> Format.fprintf fmt "Write { slot = %d; off = %d }" slot off
  | Rmw { slot; off } -> Format.fprintf fmt "Rmw { slot = %d; off = %d }" slot off
  | Compute n -> Format.fprintf fmt "Compute %d" n
  | Yield -> Format.fprintf fmt "Yield"
  | Locked { lock; site; body } ->
    Format.fprintf fmt "@[<hv 2>Locked { lock = %d; site = %d;@ body = %a }@]" lock site
      pp_ops body
  | Repeat { times; body } ->
    Format.fprintf fmt "@[<hv 2>Repeat { times = %d;@ body = %a }@]" times pp_ops body

and pp_ops fmt ops =
  Format.fprintf fmt "@[<hv 1>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp_op)
    ops

let pp_phase fmt ph =
  Format.fprintf fmt "@[<hv 2>{ refresh = [%a];@ work =@ @[<hv 2>[|%a|]@] }@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") Format.pp_print_int)
    ph.refresh
    (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp_ops)
    (Array.to_seq ph.work)

let to_ocaml p =
  Format.asprintf
    "@[<v 0>let prog : Kard_fuzz.Prog.t =@;\
     <1 2>@[<hv 0>let open Kard_fuzz.Prog in@ @[<hv 2>{ workers = %d;@ slots = %d;@ locks = \
     %d;@ slot_size = %d;@ phases =@ @[<hv 1>[%a]@] }@]@]@]@."
    p.workers p.slots p.locks p.slot_size
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ") pp_phase)
    p.phases

(* {1 Compilation} *)

type run_ctx = {
  slots_meta : Obj_meta.t option array;
  cur : int ref;          (* highest phase the coordinator has opened *)
  arrived : int array;    (* workers finished, per phase *)
}

let addr_of ctx p ~slot ~off =
  match ctx.slots_meta.(slot) with
  | Some m -> m.Obj_meta.base + (off mod p.slot_size)
  | None -> invalid_arg "fuzz: access to an unallocated slot"

let rec compile_ops p ctx ops = Program.concat (List.map (compile_op p ctx) ops)

and compile_op p ctx = function
  | Read { slot; off } -> Program.of_list [ Op.Read (addr_of ctx p ~slot ~off) ]
  | Write { slot; off } -> Program.of_list [ Op.Write (addr_of ctx p ~slot ~off) ]
  | Rmw { slot; off } ->
    let a = addr_of ctx p ~slot ~off in
    Program.of_list [ Op.Read a; Op.Write a ]
  | Compute n -> Program.of_list [ Op.Compute n ]
  | Yield -> Program.of_list [ Op.Yield ]
  | Locked { lock; site; body } ->
    Program.concat
      [ Program.of_list [ Op.Lock { lock = lock_id lock; site = lock_site site } ];
        compile_ops p ctx body;
        Program.of_list [ Op.Unlock { lock = lock_id lock } ] ]
  | Repeat { times; body } -> Program.repeat times (fun _ -> compile_ops p ctx body)

let coordinator p ctx ~on_event =
  let alloc_slot s =
    Program.of_list
      [ Op.Alloc
          { size = p.slot_size;
            site = alloc_site s;
            on_result = (fun m -> ctx.slots_meta.(s) <- Some m) } ]
  in
  let free_slot s =
    Program.delay (fun () ->
        match ctx.slots_meta.(s) with
        | Some m ->
          ctx.slots_meta.(s) <- None;
          Program.of_list [ Op.Free m ]
        | None -> Program.empty)
  in
  let open_phase i ph =
    Program.concat
      [ (if i = 0 then Program.concat (List.init p.slots alloc_slot)
         else
           Program.concat
             [ Builder.wait_until (fun () -> ctx.arrived.(i - 1) >= p.workers);
               Program.concat (List.map free_slot ph.refresh);
               Program.concat (List.map alloc_slot ph.refresh) ]);
        Builder.effect_ (fun () ->
            ctx.cur := i;
            on_event (Trace_log.Release { phase = i })) ]
  in
  Program.concat (List.mapi open_phase p.phases)

let worker p ctx ~on_event w =
  let tid = w + 1 in
  let run_phase i ph =
    Program.concat
      [ Builder.wait_until (fun () -> !(ctx.cur) >= i);
        Builder.effect_ (fun () -> on_event (Trace_log.Pass { tid; phase = i }));
        Program.delay (fun () -> compile_ops p ctx ph.work.(w));
        Builder.effect_ (fun () ->
            ctx.arrived.(i) <- ctx.arrived.(i) + 1;
            on_event (Trace_log.Arrive { tid; phase = i })) ]
  in
  Program.concat (List.mapi run_phase p.phases)

let spawn_all p ~machine ~on_event =
  let ctx =
    { slots_meta = Array.make p.slots None;
      cur = ref (-1);
      arrived = Array.make (List.length p.phases) 0 }
  in
  ignore (Machine.spawn machine (coordinator p ctx ~on_event) : int);
  for w = 0 to p.workers - 1 do
    ignore (Machine.spawn machine (worker p ctx ~on_event w) : int)
  done;
  ctx
