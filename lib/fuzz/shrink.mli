(** Delta-debugging minimizer for divergent fuzz programs.

    Greedy fixpoint over a candidate queue ordered coarse-to-fine —
    drop whole workers, drop whole phases, clear a worker's phase
    work, drop refresh entries, shrink the slot/lock universe, then
    structural op rewrites (remove an op, splice a [Locked]/[Repeat]
    body into its parent, cut [Repeat] counts) and operand shrinks
    (offsets to 0, slot/lock/site indices down, [Compute] to 1).

    Every accepted candidate must pass {!Prog.check}, still satisfy
    the caller's [oracle], and be strictly smaller under a fixed size
    measure — so the process terminates at a local minimum no single
    rewrite can leave. *)

val size : Prog.t -> int
(** The well-founded measure: weighted sum of structure (workers and
    phases dominate) plus op and operand weight.  Exposed for tests
    and for campaign reporting. *)

val minimize :
  ?max_evals:int -> oracle:(Prog.t -> bool) -> Prog.t -> Prog.t * int
(** [minimize ~oracle prog] is the shrunk program and the number of
    oracle evaluations spent.  [prog] itself is assumed to satisfy
    [oracle]; the result always does.  [max_evals] (default [4000])
    bounds the work: the shrink stops early at the best program found
    so far. *)
