module D = Kard_core.Divergence
module Config = Kard_core.Config
module Pool = Kard_harness.Pool

(* (name, detector config, machine shard count, generator pressure,
   replay gate).  The sharded entries make the burst engine a
   standing fuzz subject: every program they draw also runs the
   dual-machine shard gate (Harness.run ?shards), so a determinism
   breach surfaces as the never-expected shard-divergence class and
   fails the campaign.  The vkey rotation entries pair a virtual pool
   with the high-pressure generator profile (every program past the
   13 physical keys, half far past), keeping the cache's
   load/evict/stall windows — and their one expected evidence class,
   vkey-eviction-blame — under the three oracles; the sharded one
   additionally gates vkey eviction against burst-engine
   determinism. *)
let configs =
  let d = Config.default in
  [ ("default", d, 1, `Default, false);
    ("keys4", { d with Config.data_keys = 4 }, 1, `Default, false);
    ("keys4-soft", { d with Config.data_keys = 4; software_fallback = true }, 1, `Default, false);
    ("by-lock", { d with Config.section_identity = Config.By_lock }, 1, `Default, false);
    ("default-shards4", d, 4, `Default, false);
    ("keys4-shards3", { d with Config.data_keys = 4 }, 3, `Default, false);
    ("vkeys64", { d with Config.vkeys = 64 }, 1, `Vkey_rotation, false);
    ("vkeys64-keys4", { d with Config.data_keys = 4; vkeys = 64 }, 1, `Vkey_rotation, false);
    ("vkeys64-shards2", { d with Config.vkeys = 64 }, 2, `Vkey_rotation, false);
    (* The sampling entries keep the subset contract under the three
       oracles: misses classify as the expected sampling-missed-race,
       while an over-report a full-detector mechanism cannot explain
       still fails the campaign.  The short epoch forces rotations
       (drain-at-fault, batched re-arm) inside even these small
       programs; the sharded entry runs the dual-machine gate with
       sampling active. *)
    ("sampling50", { d with Config.sampling = 0.5; sampling_epoch = 100_000 }, 1, `Default, false);
    ("sampling25-keys4",
     { d with Config.sampling = 0.25; sampling_epoch = 100_000; data_keys = 4 }, 1, `Default,
     false);
    ("sampling50-vkeys64",
     { d with Config.sampling = 0.5; sampling_epoch = 100_000; vkeys = 64 }, 1, `Vkey_rotation,
     false);
    ("sampling25-shards2",
     { d with Config.sampling = 0.25; sampling_epoch = 100_000 }, 2, `Default, false);
    (* The replay-oracle entries (DESIGN.md §13) run the record/replay
       gate on their programs: record the run's nondeterminism log,
       round-trip it through the wire codec, strictly replay it, and
       demand an identical report and race list — any difference is
       the never-expected replay-divergence class.  One entry keeps
       the default detector; the other pairs replay with the burst
       engine and a sampled detector, the configuration where a
       clock-reading recorder would break first. *)
    ("replay-oracle", d, 1, `Default, true);
    ("replay-oracle-sampling50-shards2",
     { d with Config.sampling = 0.5; sampling_epoch = 100_000 }, 2, `Default, true) ]

type result = {
  programs : int;
  total : int;
  divergent : int;
  class_counts : (D.cls * int) list;
  unexpected_indices : int list;
}

(* {1 One program = one job} *)

type job_out = {
  idx : int;
  config_name : string;
  obj_classes : D.cls list;  (* one entry per (divergent object, class) pair *)
  is_divergent : bool;
  is_unexpected : bool;
  src : string option;       (* divergent programs carry their repro source *)
  shrunk_src : string option; (* unexpected ones also carry the minimized one *)
}

(* The derivation every consumer shares: program [i] of campaign
   [seed] is a pure function of the pair, so a recorded log whose
   header says [fuzz:seed:i] can be re-executed anywhere — `kard
   record`/`kard replay` rebuild the program through this exact
   path. *)
type reconstructed = {
  rp_prog : Prog.t;
  rp_config_name : string;
  rp_config : Config.t;
  rp_shards : int;
  rp_replay : bool;
  rp_machine_seed : int;
}

let reconstruct ~seed i =
  let rand = Random.State.make [| seed; i |] in
  let config_name, config, entry_shards, pressure, replay =
    List.nth configs (i mod List.length configs)
  in
  let prog = Prog.generate ~pressure ~rand () in
  let mseed = Random.State.int rand 1_000_000 in
  { rp_prog = prog;
    rp_config_name = config_name;
    rp_config = config;
    rp_shards = entry_shards;
    rp_replay = replay;
    rp_machine_seed = mseed }

let target ~seed i = Printf.sprintf "fuzz:%d:%d" seed i

let of_target s =
  match String.split_on_char ':' s with
  | [ "fuzz"; seed; i ] -> (
    match (int_of_string_opt seed, int_of_string_opt i) with
    | Some seed, Some i when i >= 0 -> Some (seed, i)
    | _ -> None)
  | _ -> None

let run_one ?shards ?sampling ?replay ~seed i =
  let r = reconstruct ~seed i in
  let config_name = r.rp_config_name in
  let config =
    match sampling with
    | None -> r.rp_config
    | Some rate -> { r.rp_config with Config.sampling = rate; sampling_epoch = 100_000 }
  in
  let prog = r.rp_prog in
  let mseed = r.rp_machine_seed in
  let shards = Option.value ~default:r.rp_shards shards in
  let replay = Option.value ~default:r.rp_replay replay in
  let outcome =
    Harness.run ~config ~shards ~replay ~replay_target:(target ~seed i) ~seed:mseed prog
  in
  let obj_classes =
    List.concat_map (fun (v : Classify.obj_verdict) -> v.Classify.classes) outcome.Harness.divergent
    @ (if List.exists (D.equal D.Shard_divergence) outcome.Harness.classes then
         [ D.Shard_divergence ]
       else [])
  in
  let is_divergent = obj_classes <> [] || outcome.Harness.stuck <> None in
  let is_unexpected = outcome.Harness.unexpected in
  let header tag =
    Printf.sprintf
      "(* kard fuzz repro: campaign seed %d, program %d, machine seed %d,\n   config %s%s.\n   classes: %s *)\n"
      seed i mseed config_name tag
      (String.concat ", " (List.map D.name (List.sort_uniq D.compare obj_classes)))
  in
  let src = if is_divergent then Some (header "" ^ Prog.to_ocaml prog) else None in
  let shrunk_src =
    if not is_unexpected then None
    else begin
      let oracle p = (Harness.run ~config ~shards ~replay ~seed:mseed p).Harness.unexpected in
      let small, _evals = Shrink.minimize ~oracle prog in
      Some (header ", minimized" ^ Prog.to_ocaml small)
    end
  in
  { idx = i; config_name; obj_classes; is_divergent; is_unexpected; src; shrunk_src }

(* {1 Corpus state} *)

type state = {
  st_seed : int;
  st_done : int;
  st_divergent : int;
  st_counts : (D.cls * int) list;
  st_unexpected : int list;
}

let empty_state seed =
  { st_seed = seed; st_done = 0; st_divergent = 0; st_counts = []; st_unexpected = [] }

let state_path dir = Filename.concat dir "state.txt"

let load_state dir ~seed =
  let path = state_path dir in
  if not (Sys.file_exists path) then empty_state seed
  else begin
    let ic = open_in path in
    let st = ref (empty_state seed) in
    (try
       while true do
         match String.split_on_char ' ' (input_line ic) with
         | [ "seed"; s ] ->
           let s = int_of_string s in
           if s <> seed then begin
             close_in ic;
             failwith
               (Printf.sprintf "corpus %s belongs to campaign seed %d, not %d" dir s seed)
           end
         | [ "done"; n ] -> st := { !st with st_done = int_of_string n }
         | [ "divergent"; n ] -> st := { !st with st_divergent = int_of_string n }
         | [ "class"; name; n ] -> begin
           match D.of_name name with
           | Some c -> st := { !st with st_counts = (c, int_of_string n) :: !st.st_counts }
           | None -> failwith (Printf.sprintf "corpus %s: unknown class %s" dir name)
         end
         | "unexpected" :: idxs ->
           st := { !st with st_unexpected = List.map int_of_string idxs }
         | [] | [ "" ] -> ()
         | line :: _ -> failwith (Printf.sprintf "corpus %s: bad state line %S" dir line)
       done
     with End_of_file -> close_in ic);
    !st
  end

let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let save_state dir st =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "seed %d\n" st.st_seed);
  Buffer.add_string b (Printf.sprintf "done %d\n" st.st_done);
  Buffer.add_string b (Printf.sprintf "divergent %d\n" st.st_divergent);
  List.iter
    (fun (c, n) -> Buffer.add_string b (Printf.sprintf "class %s %d\n" (D.name c) n))
    st.st_counts;
  if st.st_unexpected <> [] then
    Buffer.add_string b
      ("unexpected "
      ^ String.concat " " (List.map string_of_int st.st_unexpected)
      ^ "\n");
  write_file (state_path dir) (Buffer.contents b)

(* {1 Merging} *)

let add_counts counts obj_classes =
  List.fold_left
    (fun acc c ->
      let n = Option.value ~default:0 (List.assoc_opt c acc) in
      (c, n + 1) :: List.remove_assoc c acc)
    counts obj_classes
  |> List.sort (fun (a, _) (b, _) -> D.compare a b)

let result_of_state st ~programs =
  { programs;
    total = st.st_done;
    divergent = st.st_divergent;
    class_counts = List.sort (fun (a, _) (b, _) -> D.compare a b) st.st_counts;
    unexpected_indices = List.sort compare st.st_unexpected }

(* Invocation-independent (no "this run" counts): summary.txt must be
   a pure function of (seed, count) so resumed corpora stay
   byte-identical to one-shot ones. *)
let report fmt r =
  Format.fprintf fmt "@[<v 0>fuzz campaign: %d programs, %d divergent@," r.total r.divergent;
  Format.fprintf fmt "configs: %s@,"
    (String.concat ", " (List.map (fun (n, _, _, _, _) -> n) configs));
  if r.class_counts = [] then Format.fprintf fmt "no divergences@,"
  else
    List.iter
      (fun (c, n) -> Format.fprintf fmt "  %-26s %6d  %s@," (D.name c) n (D.describe c))
      r.class_counts;
  (match r.unexpected_indices with
  | [] -> Format.fprintf fmt "unexpected divergences: none@,"
  | idxs ->
    Format.fprintf fmt "UNEXPECTED divergences at: %s@,"
      (String.concat " " (List.map string_of_int idxs)));
  Format.fprintf fmt "@]"

let run ?jobs ?corpus ?shards ?sampling ?replay ~count ~seed () =
  Option.iter (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755) corpus;
  let st = match corpus with None -> empty_state seed | Some dir -> load_state dir ~seed in
  let start = st.st_done in
  let todo = if count > start then List.init (count - start) (fun k -> start + k) else [] in
  let outs =
    Pool.map ?jobs
      ~label:(fun _ i -> Printf.sprintf "fuzz program %d" i)
      (run_one ?shards ?sampling ?replay ~seed) todo
  in
  (* Merge in submission (= index) order: exemplars are the lowest
     index per class, so corpus contents are jobs-invariant. *)
  let st = ref st in
  List.iter
    (fun out ->
      st :=
        { !st with
          st_done = out.idx + 1;
          st_divergent = (!st.st_divergent + if out.is_divergent then 1 else 0);
          st_counts = add_counts !st.st_counts out.obj_classes;
          st_unexpected =
            (if out.is_unexpected then !st.st_unexpected @ [ out.idx ] else !st.st_unexpected) };
      Option.iter
        (fun dir ->
          (match out.src with
          | None -> ()
          | Some src ->
            List.iter
              (fun c ->
                let path = Filename.concat dir (Printf.sprintf "exemplar-%s.ml" (D.name c)) in
                if not (Sys.file_exists path) then write_file path src)
              (List.sort_uniq D.compare out.obj_classes));
          if out.is_unexpected then begin
            Option.iter
              (fun src ->
                write_file (Filename.concat dir (Printf.sprintf "unexpected-%d-full.ml" out.idx)) src)
              out.src;
            Option.iter
              (fun src ->
                write_file (Filename.concat dir (Printf.sprintf "unexpected-%d.ml" out.idx)) src)
              out.shrunk_src
          end)
        corpus)
    outs;
  let st = { !st with st_done = max !st.st_done count } in
  let r = result_of_state st ~programs:(List.length todo) in
  Option.iter
    (fun dir ->
      save_state dir st;
      write_file (Filename.concat dir "summary.txt") (Format.asprintf "%a@." report r))
    corpus;
  r
