(** The recorded event trace of one fuzzed run.

    A wrapper around the Kard detector's hooks records the
    interleaved lock/access/alloc/free sequence the machine actually
    executed (in hook-firing order, which is the machine's
    linearization), and the compiled fuzz program injects the barrier
    events directly.  The pure oracles ({!Oracles}) replay this one
    sequence, so every oracle judges exactly the schedule the runtime
    saw. *)

type ev =
  | Lock of { tid : int; lock : int; site : int }
  | Unlock of { tid : int; lock : int }
  | Read of { tid : int; obj : int }
  | Write of { tid : int; obj : int }
  | Alloc of { tid : int; obj : int }
  | Free of { tid : int; obj : int }
  | Pass of { tid : int; phase : int }
      (** A worker observed the coordinator's phase publication. *)
  | Arrive of { tid : int; phase : int }
      (** A worker finished its phase work. *)
  | Release of { phase : int }
      (** The coordinator opened the phase (after refreshing slots). *)

type t

val create : unit -> t
val emit : t -> ev -> unit

val events : t -> ev list
(** Chronological order. *)

val wrap :
  t -> meta:Kard_alloc.Meta_table.t -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t
(** Record lock/unlock/read/write/alloc/free through the hook chain
    (resolving addresses to object ids via [meta]) before delegating
    to the wrapped detector. *)

val pp_ev : Format.formatter -> ev -> unit
