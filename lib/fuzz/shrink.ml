module P = Prog

(* {1 Size measure}

   Every rewrite below strictly decreases this sum, which is what
   makes the greedy loop terminate: structure is weighted far above
   operands so a candidate can never trade a dropped op for larger
   indices elsewhere. *)

let rec op_weight = function
  | P.Read { slot; off } | P.Write { slot; off } | P.Rmw { slot; off } ->
    16 + slot + off
  | P.Compute n -> 8 + abs n
  | P.Yield -> 4
  | P.Locked { lock; site; body } -> 16 + lock + site + ops_weight body
  | P.Repeat { times; body } -> 12 + times + ops_weight body

and ops_weight ops = List.fold_left (fun acc op -> acc + op_weight op) 0 ops

let size (p : P.t) =
  let phase_weight (ph : P.phase) =
    (1000 * List.length ph.P.refresh)
    + Array.fold_left (fun acc ops -> acc + ops_weight ops) 0 ph.P.work
  in
  (100_000 * (p.P.workers + List.length p.P.phases))
  + (10 * (p.P.slots + p.P.locks))
  + List.fold_left (fun acc ph -> acc + phase_weight ph) 0 p.P.phases

(* {1 List / array surgery} *)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l

let replace_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

let splice_nth i body l =
  List.concat (List.mapi (fun j y -> if j = i then body else [ y ]) l)

let array_remove i a =
  Array.init
    (Array.length a - 1)
    (fun j -> if j < i then a.(j) else a.(j + 1))

(* {1 Op rewrites} *)

let rec op_rewrites op =
  match op with
  | P.Read { slot; off } ->
    (if off <> 0 then [ P.Read { slot; off = 0 } ] else [])
    @ (if slot > 0 then [ P.Read { slot = slot - 1; off } ] else [])
  | P.Write { slot; off } ->
    (if off <> 0 then [ P.Write { slot; off = 0 } ] else [])
    @ (if slot > 0 then [ P.Write { slot = slot - 1; off } ] else [])
  | P.Rmw { slot; off } ->
    (if off <> 0 then [ P.Rmw { slot; off = 0 } ] else [])
    @ (if slot > 0 then [ P.Rmw { slot = slot - 1; off } ] else [])
  | P.Compute n -> if n <> 1 then [ P.Compute 1 ] else []
  | P.Yield -> []
  | P.Locked { lock; site; body } ->
    (if site <> 0 then [ P.Locked { lock; site = 0; body } ] else [])
    @ (if lock > 0 then [ P.Locked { lock = lock - 1; site; body } ] else [])
    @ List.map (fun b -> P.Locked { lock; site; body = b }) (ops_rewrites body)
  | P.Repeat { times; body } ->
    (if times > 1 then [ P.Repeat { times = 1; body }; P.Repeat { times = times / 2; body } ]
     else [])
    @ List.map (fun b -> P.Repeat { times; body = b }) (ops_rewrites body)

(* Candidate lists for one op list: removals first (largest wins),
   then body splices, then in-place rewrites. *)
and ops_rewrites ops =
  let removals = List.mapi (fun i _ -> remove_nth i ops) ops in
  let splices =
    List.concat
      (List.mapi
         (fun i op ->
           match op with
           | P.Locked { body; _ } | P.Repeat { body; _ } -> [ splice_nth i body ops ]
           | _ -> [])
         ops)
  in
  let in_place =
    List.concat
      (List.mapi (fun i op -> List.map (fun op' -> replace_nth i op' ops) (op_rewrites op)) ops)
  in
  removals @ splices @ in_place

(* {1 Program-level candidates, coarse to fine} *)

let set_work (p : P.t) pi w ops =
  { p with
    P.phases =
      List.mapi
        (fun j (ph : P.phase) ->
          if j <> pi then ph
          else begin
            let work = Array.copy ph.P.work in
            work.(w) <- ops;
            { ph with P.work = work }
          end)
        p.P.phases }

let candidates (p : P.t) =
  let drop_workers =
    if p.P.workers <= 1 then []
    else
      List.init p.P.workers (fun w ->
          { p with
            P.workers = p.P.workers - 1;
            P.phases =
              List.map
                (fun (ph : P.phase) -> { ph with P.work = array_remove w ph.P.work })
                p.P.phases })
  in
  let n_phases = List.length p.P.phases in
  let drop_phases =
    if n_phases <= 1 then []
    else
      List.init n_phases (fun i ->
          let phases = remove_nth i p.P.phases in
          let phases =
            (* The new first phase inherits phase 0's no-refresh rule. *)
            match phases with
            | first :: rest when i = 0 -> { first with P.refresh = [] } :: rest
            | _ -> phases
          in
          { p with P.phases = phases })
  in
  let clear_work =
    List.concat
      (List.mapi
         (fun pi (ph : P.phase) ->
           List.concat
             (List.init (Array.length ph.P.work) (fun w ->
                  if List.length ph.P.work.(w) >= 2 then [ set_work p pi w [] ] else [])))
         p.P.phases)
  in
  let drop_refresh =
    List.concat
      (List.mapi
         (fun pi (ph : P.phase) ->
           List.mapi
             (fun ri _ ->
               let phases =
                 List.mapi
                   (fun j (ph : P.phase) ->
                     if j = pi then { ph with P.refresh = remove_nth ri ph.P.refresh } else ph)
                   p.P.phases
               in
               { p with P.phases = phases })
             ph.P.refresh)
         p.P.phases)
  in
  let shrink_universe =
    (if p.P.slots > 1 then [ { p with P.slots = p.P.slots - 1 } ] else [])
    @ if p.P.locks > 1 then [ { p with P.locks = p.P.locks - 1 } ] else []
  in
  let op_level =
    List.concat
      (List.mapi
         (fun pi (ph : P.phase) ->
           List.concat
             (List.init (Array.length ph.P.work) (fun w ->
                  List.map (set_work p pi w) (ops_rewrites ph.P.work.(w)))))
         p.P.phases)
  in
  drop_workers @ drop_phases @ clear_work @ drop_refresh @ shrink_universe @ op_level

let minimize ?(max_evals = 4000) ~oracle prog =
  let evals = ref 0 in
  let cur = ref prog in
  let rec fixpoint () =
    let cur_size = size !cur in
    let better =
      List.find_opt
        (fun cand ->
          size cand < cur_size
          && Prog.check cand = Ok ()
          && !evals < max_evals
          && begin
               incr evals;
               oracle cand
             end)
        (candidates !cur)
    in
    match better with
    | Some cand ->
      cur := cand;
      if !evals < max_evals then fixpoint ()
    | None -> ()
  in
  fixpoint ();
  (!cur, !evals)
