let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let field name value = str name ^ ":" ^ value
let obj fields = "{" ^ String.concat "," fields ^ "}"

let args_json kind =
  obj
    (List.map
       (fun (k, v) ->
         field k (match v with Event.Int i -> string_of_int i | Event.Str s -> str s))
       (Event.args kind))

let common ~ph ~cat ~name ~tid ~ts extra =
  obj
    ([ field "ph" (str ph);
       field "cat" (str cat);
       field "name" (str name);
       field "pid" "0";
       field "tid" (string_of_int tid);
       field "ts" (string_of_int ts) ]
    @ extra)

let of_event (e : Event.t) =
  let cat = Event.category e.Event.kind in
  let name = Event.name e.Event.kind in
  let tid = e.Event.tid and ts = e.Event.ts in
  match e.Event.kind with
  | Event.Lock_acquire { lock; _ } ->
    common ~ph:"b" ~cat ~name:(Printf.sprintf "critical-section lock=%d" lock) ~tid ~ts
      [ field "id" (string_of_int lock); field "args" (args_json e.Event.kind) ]
  | Event.Lock_release { lock } ->
    common ~ph:"e" ~cat ~name:(Printf.sprintf "critical-section lock=%d" lock) ~tid ~ts
      [ field "id" (string_of_int lock) ]
  | Event.Pkey_occupancy { live } ->
    common ~ph:"C" ~cat ~name:"live-pkeys" ~tid ~ts
      [ field "args" (obj [ field "live" (string_of_int live) ]) ]
  | kind ->
    common ~ph:"i" ~cat ~name ~tid ~ts [ field "s" (str "t"); field "args" (args_json kind) ]

let thread_meta tid =
  let label = if tid < 0 then "runtime" else Printf.sprintf "thread %d" tid in
  obj
    [ field "ph" (str "M");
      field "name" (str "thread_name");
      field "pid" "0";
      field "tid" (string_of_int tid);
      field "args" (obj [ field "name" (str label) ]) ]

(* Request spans render as async slices ([ph] "b"/"e") with the span
   id as the async id: Perfetto groups them into per-request lanes on
   a shared "request" track, next to the per-thread machine events.
   The open event carries the serving lane (worker tid) and the span
   duration as args. *)
let of_span (s : Span.span) =
  let common ~ph extra =
    obj
      ([ field "ph" (str ph);
         field "cat" (str "request");
         field "name" (str s.Span.name);
         field "pid" "0";
         field "tid" (string_of_int s.Span.lane);
         field "id" (string_of_int s.Span.id) ]
      @ extra)
  in
  [ common ~ph:"b"
      [ field "ts" (string_of_int s.Span.start);
        field "args"
          (obj
             [ field "lane" (string_of_int s.Span.lane);
               field "latency_cycles" (string_of_int (Span.duration s)) ]) ];
    common ~ph:"e" [ field "ts" (string_of_int s.Span.stop) ] ]

let to_json ~t =
  let events = Trace.events t in
  let spans = Span.closed (Trace.spans t) in
  let tids =
    List.sort_uniq compare
      (List.map (fun (e : Event.t) -> e.Event.tid) events
      @ List.map (fun (s : Span.span) -> s.Span.lane) spans)
  in
  let entries =
    List.map thread_meta tids @ List.map of_event events
    @ List.concat_map of_span spans
  in
  obj
    [ field "traceEvents" ("[" ^ String.concat "," entries ^ "]");
      field "displayTimeUnit" (str "ms");
      field "otherData"
        (obj
           [ field "clock" (str "virtual-cycles (1 ts unit = 1 cycle)");
             field "dropped_events" (string_of_int (Trace.dropped t)) ]) ]
