(** Per-request span tracking.

    A span is one logical unit of served work — a request — with an
    id, a lane (the worker thread that served it), and open/close
    timestamps in simulated cycles.  Spans are how request latency
    becomes visible in the Chrome/Perfetto export: each closed span
    renders as an async slice alongside the machine's lock/fault/pkey
    events.

    A span's [start] may predate its [open_] call site's clock: an
    open-loop request's latency clock starts at its {e arrival}, which
    can be long before a worker picks it up.  Callers pass the start
    timestamp explicitly for exactly that reason. *)

type span = {
  id : int;
  lane : int;
  name : string;
  start : int;
  stop : int;  (** Clamped to [>= start]. *)
}

type t

val create : unit -> t

val open_ : t -> id:int -> lane:int -> name:string -> ts:int -> unit
(** Begin span [id] at time [ts].  Re-opening an id that is already
    open replaces it. *)

val close : t -> id:int -> ts:int -> unit
(** Close span [id].  Closing an id that is not open increments
    {!dropped_closes} instead of raising. *)

val closed : t -> span list
(** Closed spans, in close order (deterministic per seeded run). *)

val closed_count : t -> int
val open_count : t -> int
val dropped_closes : t -> int
val duration : span -> int

val pp_span : Format.formatter -> span -> unit
