type counter = { mutable c : int }

type histogram = {
  bounds : int array; (* ascending upper bounds *)
  buckets : int array; (* length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_total : int;
  mutable h_min : int;
  mutable h_max : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  windows : (string, Window.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    windows = Hashtbl.create 4 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let default_buckets = Array.init 31 (fun i -> 1 lsl i)

let histogram t ?(buckets = default_buckets) name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Metrics.histogram: buckets must be strictly ascending")
      buckets;
    let h =
      { bounds = Array.copy buckets;
        buckets = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_total = 0;
        h_min = max_int;
        h_max = min_int }
    in
    Hashtbl.replace t.histograms name h;
    h

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec search lo hi =
    (* First bound >= v, or the overflow bucket. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then search lo mid else search (mid + 1) hi
  in
  search 0 n

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_index h v) <- h.buckets.(bucket_index h v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_total <- h.h_total + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let percentile h q =
  if h.h_count = 0 then 0.
  else begin
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.buckets in
    (* Walk to the bucket containing the target rank. *)
    let rec walk i cum =
      if i >= n - 1 then (i, cum)
      else if float_of_int (cum + h.buckets.(i)) >= target then (i, cum)
      else walk (i + 1) (cum + h.buckets.(i))
    in
    let i, before = walk 0 0 in
    let in_bucket = h.buckets.(i) in
    let lo = if i = 0 then 0. else float_of_int h.bounds.(i - 1) in
    let hi =
      if i < Array.length h.bounds then float_of_int h.bounds.(i) else float_of_int h.h_max
    in
    let est =
      if in_bucket = 0 then lo
      else lo +. ((hi -. lo) *. ((target -. float_of_int before) /. float_of_int in_bucket))
    in
    (* The estimate cannot leave the observed range. *)
    Float.min (float_of_int h.h_max) (Float.max (float_of_int h.h_min) est)
  end

type summary = {
  count : int;
  total : int;
  min : int;
  max : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let summary h =
  if h.h_count = 0 then
    { count = 0; total = 0; min = 0; max = 0; mean = 0.; p50 = 0.; p95 = 0.; p99 = 0.;
      p999 = 0. }
  else
    { count = h.h_count;
      total = h.h_total;
      min = h.h_min;
      max = h.h_max;
      mean = float_of_int h.h_total /. float_of_int h.h_count;
      p50 = percentile h 0.50;
      p95 = percentile h 0.95;
      p99 = percentile h 0.99;
      p999 = percentile h 0.999 }

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let default_window_width = 1 lsl 20

let window t ?(width = default_window_width) name =
  match Hashtbl.find_opt t.windows name with
  | Some w -> w
  | None ->
    let w = Window.create ~width () in
    Hashtbl.replace t.windows name w;
    w

let counters t = sorted_bindings t.counters counter_value
let histograms t = sorted_bindings t.histograms summary
let windows t = sorted_bindings t.windows (fun w -> w)

let is_empty t =
  Hashtbl.length t.counters = 0 && Hashtbl.length t.histograms = 0
  && Hashtbl.length t.windows = 0

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%-28s %d@," name v) (counters t);
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "%-28s n=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f p99.9=%.0f max=%d@,"
        name s.count s.mean s.p50 s.p95 s.p99 s.p999 s.max)
    (histograms t);
  List.iter
    (fun (name, w) ->
      let o = Window.overall w in
      Format.fprintf fmt "%-28s n=%d windows=%d p50=%d p99=%d p99.9=%d max=%d@," name
        o.Window.count
        (List.length (Window.rows w))
        o.Window.p50 o.Window.p99 o.Window.p999 o.Window.max)
    (windows t);
  Format.fprintf fmt "@]"
