type t = {
  ring : Event.t Ring.t;
  metrics_ : Metrics.t;
  spans_ : Span.t;
  mutable clock : unit -> int;
  steps_ : bool;
}

type sink = t option

let create ?(capacity = 65536) ?(steps = false) () =
  { ring = Ring.create ~capacity;
    metrics_ = Metrics.create ();
    spans_ = Span.create ();
    clock = (fun () -> 0);
    steps_ = steps }

let none : sink = None

let set_clock t f = t.clock <- f
let now t = t.clock ()
let emit t ~tid kind = Ring.push t.ring { Event.ts = t.clock (); tid; kind }
let steps t = t.steps_
let events t = Ring.to_list t.ring
let event_count t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let metrics t = t.metrics_

let category_counts t =
  let tbl = Hashtbl.create 8 in
  Ring.iter
    (fun (e : Event.t) ->
      let cat = Event.category e.Event.kind in
      Hashtbl.replace tbl cat (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cat)))
    t.ring;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans t = t.spans_

let incr sink name =
  match sink with
  | None -> ()
  | Some t -> Metrics.incr (Metrics.counter t.metrics_ name)

let observe sink name v =
  match sink with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram t.metrics_ name) v

let observe_window sink ?width name v =
  match sink with
  | None -> ()
  | Some t -> Window.observe (Metrics.window t.metrics_ ?width name) ~ts:(t.clock ()) v

let span_open sink ~id ~lane ~name ~ts =
  match sink with
  | None -> ()
  | Some t -> Span.open_ t.spans_ ~id ~lane ~name ~ts

let span_close sink ~id =
  match sink with
  | None -> ()
  | Some t -> Span.close t.spans_ ~id ~ts:(t.clock ())
