type span = {
  id : int;
  lane : int;
  name : string;
  start : int;
  stop : int;
}

(* Open spans are indexed by id; closed spans accumulate in close
   order (which is deterministic per run: the simulated schedule fixes
   it).  Requests are the intended cardinality — thousands, not
   millions — so a hashtable plus a reversed list is enough. *)
type t = {
  open_ : (int, int * int * string) Hashtbl.t; (* id -> lane, start, name *)
  mutable closed_rev : span list;
  mutable closed_count : int;
  mutable dropped_closes : int;
}

let create () =
  { open_ = Hashtbl.create 64; closed_rev = []; closed_count = 0; dropped_closes = 0 }

let open_ t ~id ~lane ~name ~ts = Hashtbl.replace t.open_ id (lane, ts, name)

let close t ~id ~ts =
  match Hashtbl.find_opt t.open_ id with
  | None -> t.dropped_closes <- t.dropped_closes + 1
  | Some (lane, start, name) ->
    Hashtbl.remove t.open_ id;
    t.closed_rev <- { id; lane; name; start; stop = max start ts } :: t.closed_rev;
    t.closed_count <- t.closed_count + 1

let closed t = List.rev t.closed_rev
let closed_count t = t.closed_count
let open_count t = Hashtbl.length t.open_
let dropped_closes t = t.dropped_closes
let duration s = s.stop - s.start

let pp_span fmt s =
  Format.fprintf fmt "@[<h>%s#%d lane=%d [%d, %d) (%d cycles)@]" s.name s.id s.lane s.start
    s.stop (duration s)
