type 'a t = {
  cap : int;
  buf : 'a option array;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; pushed = 0 }

let capacity t = t.cap
let push t x =
  t.buf.(t.pushed mod t.cap) <- Some x;
  t.pushed <- t.pushed + 1

let length t = min t.pushed t.cap
let pushed t = t.pushed
let dropped t = max 0 (t.pushed - t.cap)

let iter f t =
  let n = length t in
  let start = if t.pushed <= t.cap then 0 else t.pushed mod t.cap in
  for i = 0 to n - 1 do
    match t.buf.((start + i) mod t.cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.pushed <- 0
