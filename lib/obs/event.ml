type access = [ `Read | `Write ]

type alloc_kind =
  | Fresh
  | Recycled
  | Global

type assign_kind =
  | Assign_fresh
  | Assign_reuse
  | Assign_recycle
  | Assign_share

type kind =
  | Lock_acquire of { lock : int; site : int; contended : bool }
  | Lock_release of { lock : int }
  | Fault_raised of { addr : int; pkey : int; access : access }
  | Fault_resolved of { addr : int; pkey : int; latency : int }
  | Wrpkru
  | Rdpkru
  | Pkey_mprotect of { base : int; pages : int; pkey : int }
  | Key_assign of { key : int; obj_id : int; assign : assign_kind }
  | Key_demote of { obj_id : int; to_ro : bool }
  | Key_migrate of { obj_id : int; from_key : int; to_key : int }
  | Vkey_load of { vkey : int; slot : int; evicted : int; pages : int }
  | Pkey_occupancy of { live : int }
  | Alloc of { obj_id : int; size : int; alloc : alloc_kind }
  | Free of { obj_id : int }
  | Race of { obj_id : int; offset : int }
  | Step of { op : [ `Read | `Write | `Compute ]; addr : int }

type t = {
  ts : int;
  tid : int;
  kind : kind;
}

let category = function
  | Lock_acquire _ | Lock_release _ -> "lock"
  | Fault_raised _ | Fault_resolved _ -> "fault"
  | Wrpkru | Rdpkru | Pkey_mprotect _ | Pkey_occupancy _ -> "pkey"
  | Key_assign _ | Key_demote _ | Key_migrate _ | Vkey_load _ -> "key"
  | Alloc _ | Free _ -> "alloc"
  | Race _ -> "race"
  | Step _ -> "step"

let name = function
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Fault_raised _ -> "fault"
  | Fault_resolved _ -> "fault-resolved"
  | Wrpkru -> "wrpkru"
  | Rdpkru -> "rdpkru"
  | Pkey_mprotect _ -> "pkey_mprotect"
  | Key_assign _ -> "key-assign"
  | Key_demote _ -> "key-demote"
  | Key_migrate _ -> "key-migrate"
  | Vkey_load _ -> "vkey-load"
  | Pkey_occupancy _ -> "live-pkeys"
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Race _ -> "race-record"
  | Step { op = `Read; _ } -> "read"
  | Step { op = `Write; _ } -> "write"
  | Step { op = `Compute; _ } -> "compute"

type arg =
  | Int of int
  | Str of string

let access_str = function `Read -> "read" | `Write -> "write"

let assign_str = function
  | Assign_fresh -> "fresh"
  | Assign_reuse -> "reuse"
  | Assign_recycle -> "recycle"
  | Assign_share -> "share"

let alloc_str = function
  | Fresh -> "fresh"
  | Recycled -> "recycled"
  | Global -> "global"

let args = function
  | Lock_acquire { lock; site; contended } ->
    [ ("lock", Int lock); ("site", Int site); ("contended", Str (string_of_bool contended)) ]
  | Lock_release { lock } -> [ ("lock", Int lock) ]
  | Fault_raised { addr; pkey; access } ->
    [ ("addr", Int addr); ("pkey", Int pkey); ("access", Str (access_str access)) ]
  | Fault_resolved { addr; pkey; latency } ->
    [ ("addr", Int addr); ("pkey", Int pkey); ("latency_cycles", Int latency) ]
  | Wrpkru | Rdpkru -> []
  | Pkey_mprotect { base; pages; pkey } ->
    [ ("base", Int base); ("pages", Int pages); ("pkey", Int pkey) ]
  | Key_assign { key; obj_id; assign } ->
    [ ("key", Int key); ("obj", Int obj_id); ("rule", Str (assign_str assign)) ]
  | Key_demote { obj_id; to_ro } ->
    [ ("obj", Int obj_id); ("to", Str (if to_ro then "read-only" else "not-accessed")) ]
  | Key_migrate { obj_id; from_key; to_key } ->
    [ ("obj", Int obj_id); ("from", Int from_key); ("to", Int to_key) ]
  | Vkey_load { vkey; slot; evicted; pages } ->
    [ ("vkey", Int vkey); ("slot", Int slot); ("evicted", Int evicted);
      ("pages", Int pages) ]
  | Pkey_occupancy { live } -> [ ("live", Int live) ]
  | Alloc { obj_id; size; alloc } ->
    [ ("obj", Int obj_id); ("size", Int size); ("kind", Str (alloc_str alloc)) ]
  | Free { obj_id } -> [ ("obj", Int obj_id) ]
  | Race { obj_id; offset } -> [ ("obj", Int obj_id); ("offset", Int offset) ]
  | Step { addr; _ } -> [ ("addr", Int addr) ]

let pp fmt t =
  let pp_arg fmt (k, v) =
    match v with
    | Int i -> Format.fprintf fmt "%s=%d" k i
    | Str s -> Format.fprintf fmt "%s=%s" k s
  in
  Format.fprintf fmt "@[<h>[%d] t%d %s/%s %a@]" t.ts t.tid (category t.kind) (name t.kind)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_arg)
    (args t.kind)
