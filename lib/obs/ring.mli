(** A bounded ring buffer.

    The event trace must be always-on capable: a fixed-capacity buffer
    that overwrites the oldest entries instead of growing, so a long
    run's trace memory is bounded and the *tail* of the execution — the
    part that usually explains a failure — is what survives. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1); overwrites the oldest element when full. *)

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed. *)

val dropped : 'a t -> int
(** Elements overwritten so far ([pushed - length]). *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
