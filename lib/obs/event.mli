(** Typed, cycle-stamped trace events.

    This module sits below every other Kard library (the MPK model,
    the allocator, the scheduler and the detector all emit into it),
    so it speaks plain integers: protection keys, addresses and lock
    ids are [int]s here, not the richer types of the layers above. *)

type access = [ `Read | `Write ]

type alloc_kind =
  | Fresh     (** A new unique-page mapping was created. *)
  | Recycled  (** A freed virtual mapping was reused (PUSh-style). *)
  | Global    (** Load-time global registration. *)

type assign_kind =
  | Assign_fresh    (** An unheld key was assigned (rule 1). *)
  | Assign_reuse    (** The section already held a suitable key (rule 2). *)
  | Assign_recycle  (** An idle key was recycled from its objects (rule 3a). *)
  | Assign_share    (** A held key was shared — the FN source (rule 3b). *)

type kind =
  | Lock_acquire of { lock : int; site : int; contended : bool }
  | Lock_release of { lock : int }
  | Fault_raised of { addr : int; pkey : int; access : access }
  | Fault_resolved of { addr : int; pkey : int; latency : int }
      (** [latency] is the full round trip: hardware trap plus the
          handler cycles the detector charged. *)
  | Wrpkru
  | Rdpkru
  | Pkey_mprotect of { base : int; pages : int; pkey : int }
  | Key_assign of { key : int; obj_id : int; assign : assign_kind }
  | Key_demote of { obj_id : int; to_ro : bool }
      (** Domain demotion: to Read-only when [to_ro], else Not-accessed. *)
  | Key_migrate of { obj_id : int; from_key : int; to_key : int }
  | Vkey_load of { vkey : int; slot : int; evicted : int; pages : int }
      (** The virtual-key cache loaded [vkey] into physical slot
          [slot], evicting resident key [evicted] ([-1] if the slot
          was free) and retagging [pages] pages in one batch. *)
  | Pkey_occupancy of { live : int }
      (** Data keys currently held, sampled on every change. *)
  | Alloc of { obj_id : int; size : int; alloc : alloc_kind }
  | Free of { obj_id : int }
  | Race of { obj_id : int; offset : int }
  | Step of { op : [ `Read | `Write | `Compute ]; addr : int }
      (** Per-operation events; only emitted when the trace was created
          with [~steps:true] (they dominate the buffer otherwise). *)

type t = {
  ts : int;   (** Virtual cycle timestamp. *)
  tid : int;  (** Simulated thread, or [-1] for runtime/allocator work. *)
  kind : kind;
}

val category : kind -> string
(** Grouping used by exporters and filters: ["lock"], ["fault"],
    ["pkey"], ["key"], ["alloc"], ["race"] or ["step"]. *)

val name : kind -> string
(** Short event name, e.g. ["wrpkru"] or ["key-migrate"]. *)

type arg =
  | Int of int
  | Str of string

val args : kind -> (string * arg) list
(** Structured payload for exporters. *)

val pp : Format.formatter -> t -> unit
