(** The run-wide observability sink: a bounded cycle-stamped event
    ring plus a metrics registry, behind a zero-cost no-op default.

    The sink is the ['t option] type [sink]: instrumented layers hold
    a [sink] and guard every emission on it, so a run created without
    tracing allocates no ring buffer and performs no work beyond the
    [None] test.  Emission never charges simulated cycles — a traced
    run and an untraced run of the same seed produce identical
    {!Kard_sched.Machine.report}s. *)

type t

type sink = t option
(** [None] is the no-op sink. *)

val create : ?capacity:int -> ?steps:bool -> unit -> t
(** [capacity] bounds the event ring (default 65536 events; the oldest
    events are overwritten when it fills).  [steps] additionally
    records every read/write/compute operation (default false — step
    events dominate the buffer on real workloads). *)

val none : sink

val set_clock : t -> (unit -> int) -> unit
(** Install the virtual cycle clock used to stamp events.  The machine
    does this in [Machine.create]; before a clock is installed events
    are stamped 0. *)

val now : t -> int

val emit : t -> tid:int -> Event.kind -> unit
(** Stamp and record one event.  Hot paths should match on the [sink]
    before constructing the event payload. *)

val steps : t -> bool
(** Whether per-operation step events were requested. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val event_count : t -> int
val dropped : t -> int
val metrics : t -> Metrics.t

val category_counts : t -> (string * int) list
(** Retained events grouped by {!Event.category}, sorted by name. *)

val spans : t -> Span.t
(** The request-span store.  Unlike the event ring it is unbounded:
    spans are per-request, not per-operation, so their cardinality is
    the served request count. *)

(** {1 Sink conveniences}

    One-line guards for cool paths; all are no-ops on [None] and never
    charge simulated cycles. *)

val incr : sink -> string -> unit
val observe : sink -> string -> int -> unit

val observe_window : sink -> ?width:int -> string -> int -> unit
(** Record into the named windowed histogram, stamped with the sink's
    clock ([width] applies on first use only; see {!Metrics.window}). *)

val span_open : sink -> id:int -> lane:int -> name:string -> ts:int -> unit
(** [ts] is explicit: an open-loop request's latency clock starts at
    its arrival, which precedes the dispatching worker's now. *)

val span_close : sink -> id:int -> unit
(** Close at the sink's current clock. *)
