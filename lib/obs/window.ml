(* Log-linear ("HDR-style") bucketing: values below [sub] are exact;
   above, each power-of-two octave is split into [sub] sub-buckets, so
   the recorded value is always within 1/sub (~3%) of the true one.
   Everything is integer arithmetic: summaries are bit-reproducible
   across hosts, which the serve determinism contract relies on. *)

let sub_bits = 5
let sub = 1 lsl sub_bits

(* Enough buckets for any non-negative OCaml int: the exact region
   plus one block of [sub] per remaining octave. *)
let bucket_count = (2 * sub) + ((62 - sub_bits) * sub)

let msb v =
  let r = ref 0 in
  let x = ref v in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

let bucket_index v =
  if v < 2 * sub then v
  else
    let e = msb v in
    (* [e >= sub_bits + 1]; keep the top [sub_bits + 1] bits. *)
    let shifted = v lsr (e - sub_bits) in
    ((e - sub_bits + 1) * sub) + (shifted - sub)

(* Inclusive upper bound of a bucket: the largest value that indexes
   into it.  Percentiles report this bound, so they never
   under-estimate a latency. *)
let bucket_upper i =
  if i < 2 * sub then i
  else
    let block = i / sub and off = i mod sub in
    let shift = block - 1 in
    (((sub + off + 1) lsl shift) - 1 : int)

(* One recorder: a bucket array plus exact count/total/min/max. *)
type recorder = {
  buckets : int array;
  mutable r_count : int;
  mutable r_total : int;
  mutable r_min : int;
  mutable r_max : int;
}

let recorder () =
  { buckets = Array.make bucket_count 0; r_count = 0; r_total = 0; r_min = max_int; r_max = 0 }

let record r v =
  let v = max 0 v in
  let i = bucket_index v in
  r.buckets.(i) <- r.buckets.(i) + 1;
  r.r_count <- r.r_count + 1;
  r.r_total <- r.r_total + v;
  if v < r.r_min then r.r_min <- v;
  if v > r.r_max then r.r_max <- v

let recorder_percentile r q =
  if r.r_count = 0 then 0
  else begin
    let rank =
      let t = int_of_float (Float.round (q *. float_of_int r.r_count)) in
      min r.r_count (max 1 t)
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < bucket_count do
      cum := !cum + r.buckets.(!i);
      incr i
    done;
    (* [!i - 1] is the bucket that carried the target rank. *)
    min r.r_max (max r.r_min (bucket_upper (!i - 1)))
  end

type row = {
  w_start : int;
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
}

let row_of ~start r =
  { w_start = start;
    count = r.r_count;
    max = (if r.r_count = 0 then 0 else r.r_max);
    mean = (if r.r_count = 0 then 0. else float_of_int r.r_total /. float_of_int r.r_count);
    p50 = recorder_percentile r 0.50;
    p95 = recorder_percentile r 0.95;
    p99 = recorder_percentile r 0.99;
    p999 = recorder_percentile r 0.999 }

type t = {
  width : int;
  per_window : (int, recorder) Hashtbl.t;
  all : recorder;
}

let create ~width () =
  if width <= 0 then invalid_arg "Window.create: width must be positive";
  { width; per_window = Hashtbl.create 16; all = recorder () }

let width t = t.width

let observe t ~ts v =
  let ts = max 0 ts in
  let w = ts / t.width in
  let r =
    match Hashtbl.find_opt t.per_window w with
    | Some r -> r
    | None ->
      let r = recorder () in
      Hashtbl.replace t.per_window w r;
      r
  in
  record r v;
  record t.all v

let count t = t.all.r_count

let rows t =
  Hashtbl.fold (fun w r acc -> (w, r) :: acc) t.per_window []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (w, r) -> row_of ~start:(w * t.width) r)

let overall t = row_of ~start:0 t.all
let percentile t q = recorder_percentile t.all q
let max_value t = if t.all.r_count = 0 then 0 else t.all.r_max

let pp fmt t =
  let o = overall t in
  Format.fprintf fmt "@[<v>windows of %d cycles, %d samples total@," t.width o.count;
  List.iter
    (fun r ->
      Format.fprintf fmt "  [%d, %d) n=%d p50=%d p99=%d p99.9=%d max=%d@," r.w_start
        (r.w_start + t.width) r.count r.p50 r.p99 r.p999 r.max)
    (rows t);
  Format.fprintf fmt "@]"
