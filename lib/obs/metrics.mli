(** A registry of named counters and fixed-bucket histograms.

    Counters track event totals (WRPKRU writes, [pkey_mprotect] calls,
    allocation mix); histograms track cycle distributions (fault round
    trips, WRPKRU per critical-section entry, dTLB miss bursts,
    live-pkey occupancy) with percentile summaries estimated from the
    buckets.  Registration is find-or-create by name, so instrumented
    layers need no shared setup. *)

type t
type counter
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Find or create. Creating the same name twice returns the same
    counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Histograms} *)

val default_buckets : int array
(** Powers of two from 1 to 2^30: one relative-error band per
    doubling, enough reach for cycle latencies. *)

val histogram : t -> ?buckets:int array -> string -> histogram
(** Find or create; [buckets] are ascending upper bounds and only
    apply on creation.
    @raise Invalid_argument when [buckets] is empty or not strictly
    ascending. *)

val observe : histogram -> int -> unit
(** Record one sample (clamped to [0] from below). *)

type summary = {
  count : int;     (** Sample count (0 when empty). *)
  total : int;
  min : int;       (** Exact (0 when empty). *)
  max : int;       (** Exact (0 when empty). *)
  mean : float;    (** Exact (0 when empty). *)
  p50 : float;     (** Estimated by linear interpolation in-bucket. *)
  p95 : float;
  p99 : float;
  p999 : float;    (** The tail-SLO percentile, p99.9. *)
}

val summary : histogram -> summary
val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0, 1]; 0 when empty. *)

(** {1 Windowed histograms}

    Named {!Window.t}s registered alongside the counters and
    histograms, for distributions whose evolution over simulated time
    matters (request latency under load). *)

val default_window_width : int
(** [2^20] simulated cycles per window. *)

val window : t -> ?width:int -> string -> Window.t
(** Find or create; [width] only applies on creation. *)

(** {1 Inspection} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * summary) list
(** Sorted by name. *)

val windows : t -> (string * Window.t) list
(** Sorted by name. *)

val is_empty : t -> bool
val pp : Format.formatter -> t -> unit
