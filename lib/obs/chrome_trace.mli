(** Export a {!Trace.t} as Chrome trace-event JSON.

    The output is the JSON-object form of the Trace Event Format
    (a ["traceEvents"] array), loadable in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and in Chrome's
    [about:tracing].  Layout:

    - one track per simulated thread ([pid] 0, [tid] = thread id;
      runtime/allocator events that have no thread land on tid -1,
      named "runtime");
    - critical sections are async spans ([ph] ["b"]/["e"]) with the
      lock id as span id, so nested and contended sections render as
      overlapping slices;
    - every other event is an instant ([ph] ["i"]) carrying its
      structured args;
    - live-pkey occupancy is a counter track ([ph] ["C"]);
    - closed request spans ({!Trace.spans}) are async slices
      ([cat] ["request"], one async id per request), rendering as
      per-request lanes alongside the machine events; each carries its
      serving lane and latency in args.

    Timestamps are virtual cycles reported in the [ts] microsecond
    field verbatim: one displayed microsecond is one simulated
    cycle. *)

val to_json : t:Trace.t -> string
