(** Windowed latency histograms over simulated time.

    A whole-run histogram averages the interesting part away: a serve
    run's warmup ramp, a saturation knee and a steady-state plateau
    all collapse into one number.  A {!t} keeps one log-linear
    recorder per fixed simulated-time window {e and} one for the whole
    run, so both latency-over-time ({!rows}) and run-level percentiles
    ({!overall}) come from the same samples.

    Buckets are log-linear with 32 sub-buckets per power-of-two octave
    (values below 64 are exact, larger ones within ~3%), and every
    summary statistic is computed in integer arithmetic — summaries
    are deterministic, so byte-identical reports across [--jobs]
    values come for free. *)

type t

val create : width:int -> unit -> t
(** [width] is the window length in simulated cycles.
    @raise Invalid_argument when [width <= 0]. *)

val width : t -> int

val observe : t -> ts:int -> int -> unit
(** Record one sample (clamped to [0] from below) in the window
    containing simulated time [ts] and in the whole-run recorder. *)

val count : t -> int
(** Total samples recorded. *)

(** One window's summary.  Percentile fields are inclusive upper
    bounds of the bucket carrying the target rank, clamped to the
    observed range — they never under-report a latency, and are exact
    integers (no interpolation). *)
type row = {
  w_start : int;  (** Window start, in simulated cycles. *)
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
}

val rows : t -> row list
(** Non-empty windows in ascending time order.  Empty windows are
    omitted (their absence is visible through the [w_start] gaps). *)

val overall : t -> row
(** The whole-run summary ([w_start = 0]; zeros when empty). *)

val percentile : t -> float -> int
(** Whole-run percentile for [q] in [0, 1]; 0 when empty. *)

val max_value : t -> int

val pp : Format.formatter -> t -> unit

(**/**)

(* The bucketing internals, exposed for the unit tests that pin the
   ~3% relative-error bound. *)
val bucket_index : int -> int
val bucket_upper : int -> int
