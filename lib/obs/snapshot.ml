type window_view = {
  w_name : string;
  w_width : int;
  w_overall : Window.row;
  w_rows : Window.row list;
}

type t = {
  counters : (string * int) list;
  histograms : (string * Metrics.summary) list;
  windows : window_view list;
}

let of_metrics m =
  { counters = Metrics.counters m;
    histograms = Metrics.histograms m;
    windows =
      List.map
        (fun (name, w) ->
          { w_name = name;
            w_width = Window.width w;
            w_overall = Window.overall w;
            w_rows = Window.rows w })
        (Metrics.windows m) }

let empty = { counters = []; histograms = []; windows = [] }

let find_counter t name =
  Option.value ~default:0
    (Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) t.counters))

let find_window t name = List.find_opt (fun w -> String.equal w.w_name name) t.windows
