(** An immutable snapshot of a metrics registry.

    {!Metrics.t} and {!Window.t} are mutable, single-domain objects
    living inside a run's trace sink; a snapshot is the pure-data view
    taken when the run finishes, safe to ship across domains, merge in
    submission order and serialize (the harness's [Json_report]
    renders one verbatim).  All lists are sorted by name, so two
    snapshots of equal registries are structurally equal. *)

type window_view = {
  w_name : string;
  w_width : int;              (** Cycles per window. *)
  w_overall : Window.row;     (** Whole-run summary. *)
  w_rows : Window.row list;   (** Per-window summaries, time order. *)
}

type t = {
  counters : (string * int) list;
  histograms : (string * Metrics.summary) list;
  windows : window_view list;
}

val of_metrics : Metrics.t -> t
val empty : t

val find_counter : t -> string -> int
(** 0 when absent. *)

val find_window : t -> string -> window_view option
