module Hooks = Kard_sched.Hooks

type t = {
  mutable rev_events : Log.event list;
  mutable picks : int;
  mutable grants : int;
  anchor_interval : int;
}

let default_anchor_interval = 64

let create ?(anchor_interval = default_anchor_interval) () =
  if anchor_interval < 1 then invalid_arg "Recorder.create: anchor_interval must be positive";
  { rev_events = []; picks = 0; grants = 0; anchor_interval }

let wrap t (env : Hooks.env) (hooks : Hooks.t) =
  (* [pure_access] is inherited: the recorder intercepts only the pick
     and lock hooks, so a burst-eligible detector stays burst-eligible
     while being recorded.  Picks are logged at pick time (no clock
     read — it may lag under burst); grants and anchors at [on_lock],
     a committed-clock merge point, which is what makes the log
     byte-identical at any shard count. *)
  { hooks with
    Hooks.on_pick =
      (fun ~tid ->
        t.rev_events <- Log.Pick tid :: t.rev_events;
        t.picks <- t.picks + 1;
        hooks.Hooks.on_pick ~tid);
    on_lock =
      (fun ~tid ~lock ~site ->
        t.rev_events <- Log.Grant { lock; tid } :: t.rev_events;
        t.grants <- t.grants + 1;
        if t.grants mod t.anchor_interval = 0 then
          t.rev_events <-
            Log.Anchor { picks = t.picks; clock = env.Hooks.now () } :: t.rev_events;
        hooks.Hooks.on_lock ~tid ~lock ~site) }

let events t = List.rev t.rev_events
let pick_count t = t.picks
let grant_count t = t.grants
let log t ~header = { Log.header; events = events t }
