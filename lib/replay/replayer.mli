(** Re-execute a recorded run and verify fidelity as it happens.

    The replayer supplies two things: a {!Kard_sched.Schedule.Replay}
    built from the log's pick stream (feed it to the machine instead
    of a seed), and a hook wrapper that checks the re-execution
    against the log while it runs — every pick against the tape (a
    round-robin fallback in [Schedule.Replay] means the runnable sets
    diverged, and surfaces here as a pick mismatch), every
    critical-section grant against the recorded grant order, and
    every anchor's pick count and virtual clock.

    [Strict] mode (the default) verifies everything and holds for
    same-configuration replays at any shard count.  [Schedule_only]
    skips the clock half of anchors: a replay under a {e different}
    detector charges different cycles, so only the schedule and grant
    order — which are detector-independent for closed programs — are
    required to match. *)

type mode =
  | Strict         (** Picks, grants, anchor picks and anchor clocks. *)
  | Schedule_only  (** Cross-detector: skip anchor clock comparison. *)

type violation = {
  at : string;        (** Stream position, e.g. ["pick 1042"]. *)
  expected : string;
  actual : string;
}

type t

val create : ?mode:mode -> Log.t -> t

val schedule : t -> Kard_sched.Schedule.t
(** Pass as [Machine.create ~schedule] (via [Runner]'s [?schedule]). *)

val wrap : t -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t
(** Feed as the [?wrap] argument of {!Kard_harness.Runner.run_build}. *)

val violations : t -> violation list
(** Mismatches so far, in occurrence order (capped at 16). *)

val check : t -> (unit, string) result
(** Call after the run: [Ok ()] iff no violation occurred {e and} the
    tape was fully consumed (an early-ending replay used fewer picks
    or grants than were recorded — also a divergence).  The [Error]
    payload is a printable violation list. *)

val pp_violation : Format.formatter -> violation -> unit
