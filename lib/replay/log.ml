module Config = Kard_core.Config

type header = {
  detector : string;
  target : string;
  threads : int;
  scale : float;
  seed : int;
  shards : int;
  config : Config.t option;
}

type event =
  | Pick of int
  | Grant of { lock : int; tid : int }
  | Anchor of { picks : int; clock : int }

type t = { header : header; events : event list }

type error =
  | Bad_magic
  | Version_mismatch of int
  | Truncated
  | Corrupt of string

exception Error of error

let error_to_string = function
  | Bad_magic -> "not a kard replay log (bad magic)"
  | Version_mismatch v -> Printf.sprintf "log format version %d (this build reads version only)" v
  | Truncated -> "log truncated (no end marker, or a record cut short)"
  | Corrupt msg -> Printf.sprintf "log corrupt: %s" msg

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Kard_replay.Log.Error(%s)" (error_to_string e))
    | _ -> None)

let magic = "KRDL"
let version = 1

(* {1 Wire format}

   Everything after the 4-byte magic is LEB128 varints, raw bytes, or
   raw IEEE-754 bit patterns; see DESIGN.md section 13 for the full
   contract.  Body tags: a byte below [tag_pick_ext] IS a pick (the
   tid inline — one byte per step for the first 240 threads); the
   remaining tags introduce multi-byte records. *)

let tag_pick_ext = 0xF0
let tag_grant = 0xF1
let tag_anchor = 0xF3
let tag_end = 0xFF

(* {2 Primitive encoders} *)

let put_varint buf n =
  if n < 0 then invalid_arg (Printf.sprintf "Log.put_varint: negative %d" n);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

(* Signed values (seeds may be negative) zigzag into the unsigned
   encoder: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ... *)
let put_zigzag buf n = put_varint buf ((n lsl 1) lxor (n asr 62))

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

(* Floats as their exact bit pattern (little-endian int64): [scale]
   and [sampling] round-trip bit-identically, which decimal printing
   cannot guarantee. *)
let put_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let put_bool_mask buf bools =
  put_varint buf (List.fold_left (fun acc b -> (acc lsl 1) lor if b then 1 else 0) 0 bools)

(* {2 Primitive decoders} *)

type cursor = { data : string; mutable pos : int }

let byte c =
  if c.pos >= String.length c.data then raise (Error Truncated);
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec go shift acc =
    if shift > 62 then raise (Error (Corrupt "varint overflow"));
    let b = byte c in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_zigzag c =
  let n = get_varint c in
  (n lsr 1) lxor (- (n land 1))

let get_string c =
  let len = get_varint c in
  if c.pos + len > String.length c.data then raise (Error Truncated);
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_float c =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte c)) (8 * i))
  done;
  Int64.float_of_bits !bits

let get_bool_mask c n =
  let mask = get_varint c in
  if mask lsr n <> 0 then raise (Error (Corrupt "bool mask wider than schema"));
  List.init n (fun i -> (mask lsr (n - 1 - i)) land 1 = 1)

(* {2 Config fingerprint}

   The full detector configuration, not just the knobs the CLI
   exposes: a scenario pins things like [exit_delay_cycles] and
   [section_identity], and a replay that silently dropped them would
   re-execute a different detector. *)

let put_config buf (c : Config.t) =
  put_varint buf c.Config.data_keys;
  put_bool_mask buf
    [ c.Config.proactive_acquisition; c.Config.protection_interleaving;
      c.Config.timestamp_pruning; c.Config.redundancy_pruning; c.Config.metadata_pruning;
      c.Config.prefer_recycle; c.Config.share_disjoint_sections; c.Config.software_fallback ];
  put_varint buf c.Config.exit_delay_cycles;
  Buffer.add_char buf
    (match c.Config.section_identity with Config.By_call_site -> '\000' | Config.By_lock -> '\001');
  put_varint buf c.Config.vkeys;
  put_float buf c.Config.sampling;
  put_varint buf c.Config.sampling_epoch;
  put_zigzag buf c.Config.sampling_seed

let get_config c =
  let data_keys = get_varint c in
  let bools = get_bool_mask c 8 in
  let ( proactive_acquisition, protection_interleaving, timestamp_pruning, redundancy_pruning,
        metadata_pruning, prefer_recycle, share_disjoint_sections, software_fallback ) =
    match bools with
    | [ a; b; c; d; e; f; g; h ] -> (a, b, c, d, e, f, g, h)
    | _ -> assert false
  in
  let exit_delay_cycles = get_varint c in
  let section_identity =
    match byte c with
    | 0 -> Config.By_call_site
    | 1 -> Config.By_lock
    | n -> raise (Error (Corrupt (Printf.sprintf "section identity tag %d" n)))
  in
  let vkeys = get_varint c in
  let sampling = get_float c in
  let sampling_epoch = get_varint c in
  let sampling_seed = get_zigzag c in
  { Config.data_keys; proactive_acquisition; protection_interleaving; timestamp_pruning;
    redundancy_pruning; metadata_pruning; prefer_recycle; share_disjoint_sections;
    software_fallback; exit_delay_cycles; section_identity; vkeys; sampling; sampling_epoch;
    sampling_seed }

(* {2 Whole-log codec} *)

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf version;
  let h = t.header in
  put_string buf h.detector;
  put_string buf h.target;
  put_varint buf h.threads;
  put_float buf h.scale;
  put_zigzag buf h.seed;
  put_varint buf h.shards;
  (match h.config with
  | None -> Buffer.add_char buf '\000'
  | Some c ->
    Buffer.add_char buf '\001';
    put_config buf c);
  let picks = ref 0 and grants = ref 0 in
  let last_anchor_picks = ref 0 and last_anchor_clock = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Pick tid ->
        incr picks;
        if tid < 0 then invalid_arg "Log.encode: negative tid"
        else if tid < tag_pick_ext then Buffer.add_char buf (Char.chr tid)
        else begin
          Buffer.add_char buf (Char.chr tag_pick_ext);
          put_varint buf tid
        end
      | Grant { lock; tid } ->
        incr grants;
        Buffer.add_char buf (Char.chr tag_grant);
        put_varint buf lock;
        put_varint buf tid
      | Anchor { picks = p; clock } ->
        if p < !last_anchor_picks || clock < !last_anchor_clock then
          invalid_arg "Log.encode: anchors must be monotone";
        Buffer.add_char buf (Char.chr tag_anchor);
        put_varint buf (p - !last_anchor_picks);
        put_varint buf (clock - !last_anchor_clock);
        last_anchor_picks := p;
        last_anchor_clock := clock)
    t.events;
  Buffer.add_char buf (Char.chr tag_end);
  put_varint buf !picks;
  put_varint buf !grants;
  Buffer.contents buf

let decode data =
  if String.length data < String.length magic then raise (Error Bad_magic);
  if not (String.equal (String.sub data 0 (String.length magic)) magic) then
    raise (Error Bad_magic);
  let c = { data; pos = String.length magic } in
  let v = get_varint c in
  if v <> version then raise (Error (Version_mismatch v));
  let detector = get_string c in
  let target = get_string c in
  let threads = get_varint c in
  let scale = get_float c in
  let seed = get_zigzag c in
  let shards = get_varint c in
  let config =
    match byte c with
    | 0 -> None
    | 1 -> Some (get_config c)
    | n -> raise (Error (Corrupt (Printf.sprintf "config presence byte %d" n)))
  in
  let header = { detector; target; threads; scale; seed; shards; config } in
  let rev_events = ref [] in
  let picks = ref 0 and grants = ref 0 in
  let anchor_picks = ref 0 and anchor_clock = ref 0 in
  let rec loop () =
    let tag = byte c in
    if tag < tag_pick_ext then begin
      incr picks;
      rev_events := Pick tag :: !rev_events;
      loop ()
    end
    else if tag = tag_pick_ext then begin
      let tid = get_varint c in
      if tid < tag_pick_ext then
        raise (Error (Corrupt (Printf.sprintf "non-canonical extended pick of tid %d" tid)));
      incr picks;
      rev_events := Pick tid :: !rev_events;
      loop ()
    end
    else if tag = tag_grant then begin
      let lock = get_varint c in
      let tid = get_varint c in
      incr grants;
      rev_events := Grant { lock; tid } :: !rev_events;
      loop ()
    end
    else if tag = tag_anchor then begin
      anchor_picks := !anchor_picks + get_varint c;
      anchor_clock := !anchor_clock + get_varint c;
      rev_events := Anchor { picks = !anchor_picks; clock = !anchor_clock } :: !rev_events;
      loop ()
    end
    else if tag = tag_end then begin
      let trailer_picks = get_varint c in
      let trailer_grants = get_varint c in
      if trailer_picks <> !picks then
        raise
          (Error
             (Corrupt (Printf.sprintf "trailer says %d picks, body has %d" trailer_picks !picks)));
      if trailer_grants <> !grants then
        raise
          (Error
             (Corrupt
                (Printf.sprintf "trailer says %d grants, body has %d" trailer_grants !grants)));
      if c.pos <> String.length data then
        raise (Error (Corrupt (Printf.sprintf "%d trailing bytes" (String.length data - c.pos))))
    end
    else raise (Error (Corrupt (Printf.sprintf "unknown tag 0x%02X" tag)))
  in
  loop ();
  { header; events = List.rev !rev_events }

(* {2 Projections} *)

let pick_count t =
  List.fold_left (fun n ev -> match ev with Pick _ -> n + 1 | _ -> n) 0 t.events

let grant_count t =
  List.fold_left (fun n ev -> match ev with Grant _ -> n + 1 | _ -> n) 0 t.events

let picks t =
  let arr = Array.make (pick_count t) 0 in
  let i = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Pick tid ->
        arr.(!i) <- tid;
        incr i
      | Grant _ | Anchor _ -> ())
    t.events;
  arr

(* {2 Files} *)

let to_file path t =
  let oc = open_out_bin path in
  output_string oc (encode t);
  close_out oc

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  decode data

let pp_header fmt h =
  Format.fprintf fmt
    "@[<h>%s on %s (threads=%d scale=%h seed=%d shards=%d%s)@]" h.detector h.target h.threads
    h.scale h.seed h.shards
    (match h.config with
    | None -> ""
    | Some c -> Format.asprintf " %a" Config.pp c)
