module Hooks = Kard_sched.Hooks
module Schedule = Kard_sched.Schedule

type mode =
  | Strict
  | Schedule_only

type violation = {
  at : string;
  expected : string;
  actual : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "@[<h>%s: expected %s, got %s@]" v.at v.expected v.actual

(* Anchors keyed by the grant count at which they were recorded. *)
type anchor = { a_grant : int; a_picks : int; a_clock : int }

type t = {
  mode : mode;
  picks : int array;
  grants : (int * int) array;  (* (lock, tid) in grant order *)
  anchors : anchor array;
  mutable pick_cursor : int;
  mutable grant_cursor : int;
  mutable anchor_cursor : int;
  mutable rev_violations : violation list;
  max_violations : int;
}

let create ?(mode = Strict) (log : Log.t) =
  let picks = Array.make (Log.pick_count log) 0 in
  let grants = Array.make (Log.grant_count log) (0, 0) in
  let rev_anchors = ref [] in
  let pi = ref 0 and gi = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Log.Pick tid ->
        picks.(!pi) <- tid;
        incr pi
      | Log.Grant { lock; tid } ->
        grants.(!gi) <- (lock, tid);
        incr gi
      | Log.Anchor { picks; clock } ->
        rev_anchors := { a_grant = !gi; a_picks = picks; a_clock = clock } :: !rev_anchors)
    log.Log.events;
  { mode;
    picks;
    grants;
    anchors = Array.of_list (List.rev !rev_anchors);
    pick_cursor = 0;
    grant_cursor = 0;
    anchor_cursor = 0;
    rev_violations = [];
    max_violations = 16 }

let schedule t = Schedule.Replay t.picks

let record_violation t ~at ~expected ~actual =
  if List.length t.rev_violations < t.max_violations then
    t.rev_violations <- { at; expected; actual } :: t.rev_violations

let wrap t (env : Hooks.env) (hooks : Hooks.t) =
  { hooks with
    Hooks.on_pick =
      (fun ~tid ->
        let i = t.pick_cursor in
        t.pick_cursor <- i + 1;
        if i >= Array.length t.picks then
          record_violation t
            ~at:(Printf.sprintf "pick %d" i)
            ~expected:(Printf.sprintf "end of tape (%d picks)" (Array.length t.picks))
            ~actual:(Printf.sprintf "tid %d" tid)
        else if t.picks.(i) <> tid then
          (* [Schedule.Replay] fell back to round-robin: the replayed
             machine's runnable set diverged from the recording. *)
          record_violation t
            ~at:(Printf.sprintf "pick %d" i)
            ~expected:(Printf.sprintf "tid %d" t.picks.(i))
            ~actual:(Printf.sprintf "tid %d" tid);
        hooks.Hooks.on_pick ~tid);
    on_lock =
      (fun ~tid ~lock ~site ->
        let g = t.grant_cursor in
        t.grant_cursor <- g + 1;
        (if g >= Array.length t.grants then
           record_violation t
             ~at:(Printf.sprintf "grant %d" g)
             ~expected:(Printf.sprintf "end of grants (%d recorded)" (Array.length t.grants))
             ~actual:(Printf.sprintf "lock %d to tid %d" lock tid)
         else
           let exp_lock, exp_tid = t.grants.(g) in
           if exp_lock <> lock || exp_tid <> tid then
             record_violation t
               ~at:(Printf.sprintf "grant %d" g)
               ~expected:(Printf.sprintf "lock %d to tid %d" exp_lock exp_tid)
               ~actual:(Printf.sprintf "lock %d to tid %d" lock tid));
        (* Anchors were recorded immediately after their grant, so
           verify every anchor keyed to the now-current grant count. *)
        while
          t.anchor_cursor < Array.length t.anchors
          && t.anchors.(t.anchor_cursor).a_grant = t.grant_cursor
        do
          let a = t.anchors.(t.anchor_cursor) in
          t.anchor_cursor <- t.anchor_cursor + 1;
          if a.a_picks <> t.pick_cursor then
            record_violation t
              ~at:(Printf.sprintf "anchor after grant %d" a.a_grant)
              ~expected:(Printf.sprintf "%d picks" a.a_picks)
              ~actual:(Printf.sprintf "%d picks" t.pick_cursor);
          (* The clock half only holds when the replay runs the same
             detector configuration: cycle charges differ otherwise. *)
          match t.mode with
          | Schedule_only -> ()
          | Strict ->
            let now = env.Hooks.now () in
            if a.a_clock <> now then
              record_violation t
                ~at:(Printf.sprintf "anchor after grant %d" a.a_grant)
                ~expected:(Printf.sprintf "clock %d" a.a_clock)
                ~actual:(Printf.sprintf "clock %d" now)
        done;
        hooks.Hooks.on_lock ~tid ~lock ~site) }

let violations t = List.rev t.rev_violations

let check t =
  let leftovers =
    (if t.pick_cursor < Array.length t.picks then
       [ { at = "end of run";
           expected = Printf.sprintf "%d picks" (Array.length t.picks);
           actual = Printf.sprintf "%d picks" t.pick_cursor } ]
     else [])
    @
    if t.grant_cursor < Array.length t.grants then
      [ { at = "end of run";
          expected = Printf.sprintf "%d grants" (Array.length t.grants);
          actual = Printf.sprintf "%d grants" t.grant_cursor } ]
    else []
  in
  match violations t @ leftovers with
  | [] -> Ok ()
  | vs ->
    Error
      (Format.asprintf "@[<v>%a@]"
         (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_violation)
         vs)
