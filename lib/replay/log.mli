(** The compact nondeterminism log: versioned binary format.

    A run of the simulated machine is fully determined by its program,
    its configuration and two streams the scheduler layer funnels:
    the schedule picks and the lock-grant order (FIFO wakeup makes the
    grants a pure function of the picks, but the log carries them
    anyway — they are the replay-time fidelity check, and the bytes
    are cheap).  The log records the configuration fingerprint in a
    header and the streams as a tagged byte body; see DESIGN.md
    section 13 for the wire-format contract and the bytes-per-step
    budget (~1 byte per scheduler step for the first 240 threads,
    plus ~3 bytes per lock acquisition and a few bytes per anchor).

    Decoding is strict: a truncated body, an unknown tag, a
    non-canonical encoding or a trailer/body count mismatch all raise
    {!Error} rather than produce a best-effort log — replaying an
    approximate schedule would silently re-execute a different run. *)

type header = {
  detector : string;  (** Runner detector name: ["kard"], ["baseline"], ... *)
  target : string;
      (** What was recorded: ["spec:NAME"], ["scenario:NAME"] or
          ["fuzz:SEED:INDEX"] (a campaign-generated program,
          reconstructible from the two integers). *)
  threads : int;
  scale : float;  (** Exact bit pattern — not a decimal rendering. *)
  seed : int;
  shards : int;
  config : Kard_core.Config.t option;
      (** The full detector configuration for kard recordings ([None]
          for detectors without one): every knob, not just the CLI
          surface, so scenario configs replay exactly. *)
}

type event =
  | Pick of int  (** The scheduler chose this tid for the next step. *)
  | Grant of { lock : int; tid : int }
      (** [tid] entered the critical section on [lock] (the machine's
          [on_lock] point — uncontended acquire or FIFO ownership
          transfer), at a committed virtual clock even under the burst
          engine. *)
  | Anchor of { picks : int; clock : int }
      (** Periodic checkpoint: absolute pick count and absolute
          virtual clock at a grant.  Pins clock-derived state —
          open-loop arrival timetables, sampling-epoch rotation — to
          the recorded timeline; verified on same-config replays,
          skipped (clock half) on cross-detector ones. *)

type t = { header : header; events : event list }

type error =
  | Bad_magic          (** Not a kard replay log. *)
  | Version_mismatch of int  (** A log from a different format version. *)
  | Truncated          (** Ran out of bytes mid-record or before the end marker. *)
  | Corrupt of string  (** Structurally invalid (bad tag, count mismatch, ...). *)

exception Error of error

val error_to_string : error -> string

val magic : string
(** First four bytes of every log: ["KRDL"]. *)

val version : int
(** The wire-format version this build reads and writes. *)

val encode : t -> string
(** @raise Invalid_argument on negative tids or non-monotone anchors
    (a recorder bug, not an input error). *)

val decode : string -> t
(** Inverse of {!encode}. @raise Error on anything malformed. *)

val to_file : string -> t -> unit
val of_file : string -> t

val picks : t -> int array
(** The pick stream alone — feed to {!Kard_sched.Schedule.Replay}. *)

val pick_count : t -> int
val grant_count : t -> int
val pp_header : Format.formatter -> header -> unit
