(** Record a run's nondeterminism by wrapping its detector hooks.

    The recorder observes through the two hooks the scheduler layer
    already funnels all nondeterminism through: {!Kard_sched.Hooks.t.on_pick}
    (every schedule choice) and [on_lock] (every critical-section
    grant, where it also drops a periodic pick/clock anchor).  Both
    wrappers add zero simulated cycles — [on_pick] cannot charge by
    construction and the [on_lock] wrapper passes the inner
    detector's charge through unchanged — so a recorded run's report
    is byte-identical to an unrecorded one.  [pure_access] is
    inherited from the wrapped detector: recording composes with the
    burst engine. *)

type t

val default_anchor_interval : int
(** Grants between anchors: [64]. *)

val create : ?anchor_interval:int -> unit -> t

val wrap : t -> Kard_sched.Hooks.env -> Kard_sched.Hooks.t -> Kard_sched.Hooks.t
(** Feed as the [?wrap] argument of {!Kard_harness.Runner.run_build}
    (or apply inside a bare [make_detector]). *)

val events : t -> Log.event list
(** Everything recorded so far, in stream order. *)

val pick_count : t -> int
val grant_count : t -> int

val log : t -> header:Log.header -> Log.t
(** Package the recorded streams under [header] (call after the run). *)
