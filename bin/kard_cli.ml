(* kard — command-line driver for the Kard reproduction.

   Subcommands:
     list                      catalog of workloads and race scenarios
     run <workload>            run one workload under one detector
     scenario <name>           run one controlled race scenario
     trace <workload>          run with tracing; export a Chrome/Perfetto trace
     record <target>           run with the nondeterminism recorder on; write a replay log
     replay <file>             re-execute a recorded log, verifying fidelity against the tape
     bench                     tracked benchmarks: throughput (Defaults.throughput_out),
                               --only keys, the key-pressure precision sweep (Defaults.keys_out),
                               --only sampling, the sampling sweep (Defaults.sampling_out),
                               or --only record, recording overhead (Defaults.record_out)
     serve-sweep               open-loop serving latency/goodput sweep (writes Defaults.serve_out)
     repro <experiment>        regenerate a paper table/figure
     fuzz                      differential fuzzing campaign over random programs
*)

module Machine = Kard_sched.Machine
module Spec = Kard_workloads.Spec
module Registry = Kard_workloads.Registry
module Race_suite = Kard_workloads.Race_suite
module Runner = Kard_harness.Runner
module Experiments = Kard_harness.Experiments
module Defaults = Kard_harness.Defaults
module Job = Kard_harness.Job
module Pool = Kard_harness.Pool
module Record = Kard_harness.Record
module Log = Kard_replay.Log
module Campaign = Kard_fuzz.Campaign

open Cmdliner

let detector_conv =
  let parse = function
    | "baseline" -> Ok Runner.Baseline
    | "alloc" -> Ok Runner.Alloc
    | "kard" -> Ok (Runner.Kard (Defaults.kard_config ()))
    | "tsan" -> Ok Runner.Tsan
    | "lockset" -> Ok Runner.Lockset
    | s -> Error (`Msg (Printf.sprintf "unknown detector %S" s))
  in
  let print fmt d = Format.pp_print_string fmt (Runner.detector_name d) in
  Arg.conv (parse, print)

let detector_arg =
  Arg.(value & opt detector_conv (Runner.Kard (Defaults.kard_config ()))
       & info [ "d"; "detector" ] ~docv:"DETECTOR"
           ~doc:"Detector: baseline, alloc, kard, tsan or lockset.")

let vkeys_arg =
  Arg.(value & opt (some int) None
       & info [ "vkeys" ] ~docv:"N"
           ~doc:
             "Virtual-key pool size for the kard detector (default: $(b,\\$KARD_VKEYS) or 0).  \
              0 is identity mode — the detector works directly on the physical data pkeys, \
              byte-identical to the pre-vkey layer; a positive pool virtualizes key identity \
              over the hardware registers with clock eviction (DESIGN.md section 11).")

(* --vkeys only parameterizes the kard detector; other detectors have
   no key space and ignore it. *)
let with_vkeys vkeys detector =
  match (vkeys, detector) with
  | Some n, Runner.Kard c -> Runner.Kard { c with Kard_core.Config.vkeys = n }
  | _, d -> d

let sampling_arg =
  Arg.(value & opt (some float) None
       & info [ "sampling" ] ~docv:"RATE"
           ~doc:
             "Sampling rate in (0,1] for the kard detector (default: $(b,\\$KARD_SAMPLING) or \
              1.0).  1.0 is full Kard — byte-identical to the unsampled detector; below it a \
              seeded per-object/per-section policy decides what gets pkey protection each \
              epoch, and unsampled accesses take a near-zero fast path.  Reports under a rate \
              are always a subset of full Kard's (DESIGN.md section 12).")

(* Like --vkeys: only the kard detector has a sampling policy. *)
let with_sampling sampling detector =
  match (sampling, detector) with
  | Some r, Runner.Kard c -> Runner.Kard { c with Kard_core.Config.sampling = r }
  | _, d -> d

let threads_arg =
  Arg.(value & opt (some int) None & info [ "t"; "threads" ] ~docv:"N" ~doc:"Thread count.")

let scale_arg =
  Arg.(value & opt float Defaults.scale
       & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (0,1].")

let seed_arg =
  Arg.(value & opt int Defaults.seed & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:
             "Worker domains for independent runs (default: $(b,\\$KARD_JOBS) or the host core \
              count).  Results are merged in submission order, so any value produces identical \
              output.")

let shards_arg =
  Arg.(value & opt (some int) None
       & info [ "shards" ] ~docv:"N"
           ~doc:
             "Shard count of each simulated machine (default: $(b,\\$KARD_SHARDS) or 1).  Shards \
              the MPK/TLB hot state by TLB set and, when the detector's access hooks are pure, \
              runs granted accesses on the lock-free burst fast path, draining per shard at \
              virtual-clock merge points.  Reports, JSON and traces are byte-identical at any \
              value (DESIGN.md section 10).")

(* list *)

let list_cmd =
  let action () =
    Printf.printf "Workloads (Table 3):\n";
    List.iter
      (fun spec ->
        Printf.printf "  %-16s %-10s %s\n" spec.Spec.name
          (Spec.category_name spec.Spec.category)
          spec.Spec.description)
      Registry.all;
    Printf.printf "\nServing workloads (open-loop; see `kard serve-sweep`):\n";
    List.iter
      (fun spec ->
        Printf.printf "  %-28s %s\n" spec.Spec.name spec.Spec.description)
      Registry.serving;
    Printf.printf "\nContention stress (the shard benchmark's subject):\n";
    List.iter
      (fun spec ->
        Printf.printf "  %-28s %s\n" spec.Spec.name spec.Spec.description)
      Registry.contention;
    Printf.printf "\nKey-pressure workloads (object-scale precision; see `kard bench --only keys`):\n";
    List.iter
      (fun spec ->
        Printf.printf "  %-28s %s\n" spec.Spec.name spec.Spec.description)
      Registry.key_pressure;
    Printf.printf "\nRace scenarios (Tables 1/4, Figures 1/4):\n";
    List.iter
      (fun s -> Printf.printf "  %-28s %s\n" s.Race_suite.name s.Race_suite.description)
      Race_suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and race scenarios")
    Term.(const action $ const ())

(* run *)

let print_result (result : Runner.result) =
  let r = result.Runner.report in
  Printf.printf "workload:  %s\ndetector:  %s (threads=%d scale=%g seed=%d)\n" result.spec_name
    result.detector_name result.threads result.scale result.seed;
  Printf.printf "cycles:    %s (io %s, wall %s)\n" (Kard_harness.Text_table.fmt_int r.Machine.cycles)
    (Kard_harness.Text_table.fmt_int r.Machine.io_cycles)
    (Kard_harness.Text_table.fmt_int r.Machine.wall_cycles);
  Printf.printf "steps:     %s   reads/writes: %s/%s\n"
    (Kard_harness.Text_table.fmt_int r.Machine.steps)
    (Kard_harness.Text_table.fmt_int r.Machine.reads)
    (Kard_harness.Text_table.fmt_int r.Machine.writes);
  Printf.printf "sections:  %d sites, %s entries (%s contended), max concurrent %d\n"
    r.Machine.unique_sections
    (Kard_harness.Text_table.fmt_int r.Machine.cs_entries)
    (Kard_harness.Text_table.fmt_int r.Machine.contended_entries)
    r.Machine.max_concurrent_sections;
  Printf.printf "faults:    %d   rss: %s KiB   dTLB miss rate: %.5f\n" r.Machine.faults
    (Kard_harness.Text_table.fmt_kb r.Machine.rss_bytes)
    r.Machine.dtlb_miss_rate;
  let hw = r.Machine.hw_stats in
  Printf.printf "hw:        wrpkru %s, rdpkru %s, pkey_mprotect %s (%s pages), dTLB %s/%s\n"
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.wrpkru_calls)
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.rdpkru_calls)
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.pkey_mprotect_calls)
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.pages_retagged)
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.dtlb_misses)
    (Kard_harness.Text_table.fmt_int hw.Kard_mpk.Mpk_hw.dtlb_accesses);
  (match result.Runner.kard_stats with
  | Some s ->
    Printf.printf
      "kard:      ident r/w %d/%d, proactive %d, reactive %d, migrations %d, demotions %d\n"
      s.Kard_core.Detector.identifications_read s.Kard_core.Detector.identifications_write
      s.Kard_core.Detector.proactive_acquisitions s.Kard_core.Detector.reactive_acquisitions
      s.Kard_core.Detector.migrations s.Kard_core.Detector.demotions;
    Printf.printf "keys:      fresh %d, reuse %d, recycle %d, share %d\n"
      s.Kard_core.Detector.fresh_events s.Kard_core.Detector.reuse_events
      s.Kard_core.Detector.recycling_events s.Kard_core.Detector.sharing_events;
    Printf.printf "records:   logged %d, redundant %d, pruned spurious %d, surviving %d (ILU %d)\n"
      s.Kard_core.Detector.records_logged s.Kard_core.Detector.records_redundant
      s.Kard_core.Detector.records_pruned_spurious
      (List.length result.Runner.kard_races)
      (List.length result.Runner.kard_ilu_races);
    List.iter
      (fun race -> Format.printf "  %a@." Kard_core.Race_record.pp race)
      result.Runner.kard_races
  | None -> ());
  if result.Runner.tsan_races <> [] then
    Printf.printf "tsan:      %d races (%d ILU)\n"
      (List.length result.Runner.tsan_races)
      (List.length result.Runner.tsan_ilu_races);
  if result.Runner.lockset_warnings <> [] then
    Printf.printf "lockset:   %d warnings\n" (List.length result.Runner.lockset_warnings)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let run_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let seeds_arg =
    Arg.(value & opt (some (list int)) None
         & info [ "seeds" ] ~docv:"S,S,..."
             ~doc:"Run one job per seed (reported in seed-list order) instead of --seed alone.")
  in
  let action name detector vkeys sampling threads scale seed seeds jobs shards json =
    match Registry.find name with
    | spec ->
      let detector = with_sampling sampling (with_vkeys vkeys detector) in
      let seeds = Option.value ~default:[ seed ] seeds in
      let results =
        Pool.run_jobs ?jobs
          (List.map (fun seed -> Job.spec ?threads ~scale ~seed ?shards detector spec) seeds)
      in
      if json then
        List.iter
          (fun result ->
            print_endline
              (Kard_harness.Json_report.pretty (Kard_harness.Json_report.of_result result)))
          results
      else
        List.iteri
          (fun i result ->
            if i > 0 then print_newline ();
            print_result result)
          results
    | exception Not_found -> Printf.eprintf "unknown workload %S; try `kard list`\n" name
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one workload under one detector")
    Term.(const action $ name_arg $ detector_arg $ vkeys_arg $ sampling_arg $ threads_arg
          $ scale_arg $ seed_arg $ seeds_arg $ jobs_arg $ shards_arg $ json_arg)

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc:"Scenario name.")
  in
  let action name detector vkeys sampling seed shards =
    match Race_suite.find name with
    | scenario ->
      (* A scenario normally runs under its own configuration; --vkeys
         and --sampling override just those knobs on top of it. *)
      let override_config =
        match (vkeys, sampling) with
        | None, None -> None
        | _ ->
          let c = scenario.Race_suite.config in
          let c =
            match vkeys with Some n -> { c with Kard_core.Config.vkeys = n } | None -> c
          in
          let c =
            match sampling with
            | Some r -> { c with Kard_core.Config.sampling = r }
            | None -> c
          in
          Some c
      in
      print_result (Runner.run_scenario ?shards ~seed ?override_config ~detector scenario)
    | exception Not_found -> Printf.eprintf "unknown scenario %S; try `kard list`\n" name
  in
  Cmd.v (Cmd.info "scenario" ~doc:"Run one controlled race scenario")
    Term.(const action $ name_arg $ detector_arg $ vkeys_arg $ sampling_arg $ seed_arg
          $ shards_arg)

(* trace: run a workload with the observability sink on and export a
   Perfetto-loadable Chrome trace plus the metrics registry. *)

let trace_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace output path.")
  in
  let steps_arg =
    Arg.(value & flag
         & info [ "steps" ]
             ~doc:"Also record every read/write/compute step (fills the ring fast).")
  in
  let capacity_arg =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Event ring capacity; oldest events are dropped beyond it.")
  in
  let action name detector vkeys sampling threads scale seed shards out steps capacity =
    let detector = with_sampling sampling (with_vkeys vkeys detector) in
    if capacity <= 0 then Printf.eprintf "trace: --capacity must be positive (got %d)\n" capacity
    else
    match Registry.find name with
    | exception Not_found -> Printf.eprintf "unknown workload %S; try `kard list`\n" name
    | spec ->
      let tr = Kard_obs.Trace.create ~capacity ~steps () in
      let result = Runner.run ~trace:tr ?shards ?threads ~scale ~seed ~detector spec in
      let oc = open_out out in
      output_string oc (Kard_obs.Chrome_trace.to_json ~t:tr);
      close_out oc;
      let r = result.Runner.report in
      Printf.printf "workload:  %s under %s (threads=%d scale=%g seed=%d)\n" result.Runner.spec_name
        result.Runner.detector_name result.Runner.threads result.Runner.scale result.Runner.seed;
      Printf.printf "cycles:    %s   faults: %d   dTLB miss rate: %.5f\n"
        (Kard_harness.Text_table.fmt_int r.Machine.cycles)
        r.Machine.faults r.Machine.dtlb_miss_rate;
      Printf.printf "trace:     %s (load in ui.perfetto.dev or about:tracing)\n\n" out;
      Kard_harness.Obs_report.print_trace_summary tr;
      print_newline ();
      Kard_harness.Obs_report.print_metrics (Kard_obs.Trace.metrics tr)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload with event tracing on; write a Perfetto-loadable Chrome trace")
    Term.(const action $ name_arg $ detector_arg $ vkeys_arg $ sampling_arg $ threads_arg
          $ scale_arg $ seed_arg $ shards_arg $ out_arg $ steps_arg $ capacity_arg)

(* hunt: sweep seeds until a schedule manifests a race, then replay
   that exact interleaving to confirm — the race-debugging loop. *)

let hunt_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc:"Scenario name.")
  in
  let tries_arg =
    Arg.(value & opt int 50 & info [ "tries" ] ~docv:"N" ~doc:"Seeds to sweep (default 50).")
  in
  let action name tries jobs =
    match Race_suite.find name with
    | exception Not_found -> Printf.eprintf "unknown scenario %S; try `kard list`\n" name
    | scenario ->
      let detector = Runner.Kard scenario.Race_suite.config in
      (* Sweep one pool-width batch of seeds at a time, scanning each
         batch in seed order: the reported hit is always the smallest
         racing seed, exactly as the old serial loop found it. *)
      let width = Pool.resolve_jobs jobs in
      let rec sweep = function
        | [] -> None
        | batch :: rest ->
          let results =
            Pool.run_jobs ?jobs
              (List.map (fun seed -> Job.scenario ~seed detector scenario) batch)
          in
          let hit =
            List.find_opt
              (fun (_, r) -> r.Runner.kard_ilu_races <> [])
              (List.combine batch results)
          in
          (match hit with Some _ -> hit | None -> sweep rest)
      in
      (match sweep (Pool.chunks width (List.init tries (fun i -> i + 1))) with
      | None -> Printf.printf "no race manifested in %d schedules\n" tries
      | Some (seed, found) ->
        Printf.printf "race manifested at seed %d (%d/%d schedules swept):\n" seed seed tries;
        List.iter
          (fun race -> Format.printf "  %a@." Kard_core.Race_record.pp race)
          found.Runner.kard_ilu_races;
        (* Replay the recorded interleaving: must reproduce exactly. *)
        let tape = found.Runner.report.Machine.schedule_trace in
        let cell = ref None in
        let machine =
          Machine.create ~schedule:(Kard_sched.Schedule.Replay tape)
            ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
            ~make_detector:(Kard_core.Detector.make ~config:scenario.Race_suite.config ~cell)
            ()
        in
        scenario.Race_suite.build machine;
        let (_ : Machine.report) = Machine.run machine in
        let replayed = Kard_core.Detector.ilu_races (Option.get !cell) in
        Printf.printf "replayed the %d-step schedule: %d race(s) reproduced %s\n"
          (Array.length tape) (List.length replayed)
          (if List.length replayed = List.length found.Runner.kard_ilu_races then "(exact)"
           else "(differs!)"))
  in
  Cmd.v
    (Cmd.info "hunt" ~doc:"Sweep schedules for a race, then replay the found interleaving")
    Term.(const action $ name_arg $ tries_arg $ jobs_arg)

(* record / replay: the nondeterminism-log layer (DESIGN.md §13).
   With --json both commands print only the run's result JSON on
   stdout — status and fidelity lines go to stderr — so CI can diff a
   recorded run against its replay byte-for-byte.  Targets are
   workloads, scenario:NAME, or fuzz:SEED:INDEX (a campaign program,
   reconstructed from the pair). *)

let fuzz_build (r : Campaign.reconstructed) machine =
  let (_ : Kard_fuzz.Prog.run_ctx) =
    Kard_fuzz.Prog.spawn_all r.Campaign.rp_prog ~machine ~on_event:(fun _ -> ())
  in
  ()

let print_or_json ~json result =
  if json then
    print_endline (Kard_harness.Json_report.pretty (Kard_harness.Json_report.of_result result))
  else print_result result

let sanitize_target name =
  String.map (function ':' | '/' -> '-' | c -> c) name

let record_cmd =
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TARGET"
             ~doc:
               "What to record: a workload name, $(b,scenario:)NAME, or \
                $(b,fuzz:)SEED$(b,:)INDEX (program INDEX of fuzz campaign SEED, reconstructed \
                from the pair — no program file needed).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out"; "output" ] ~docv:"FILE"
             ~doc:"Replay-log output path (default: $(docv) derived from the target name).")
  in
  let action target detector vkeys sampling threads scale seed shards out json =
    let fail msg =
      Printf.eprintf "record: %s\n" msg;
      exit 2
    in
    let out = Option.value ~default:(sanitize_target target ^ ".rlog") out in
    let result, log =
      match Campaign.of_target target with
      | Some (cseed, i) ->
        (* A campaign program records under its campaign entry's
           detector configuration and machine seed by default;
           --sampling/--vkeys (e.g. record cheap, replay full) and
           --seed still apply on top. *)
        let r = Campaign.reconstruct ~seed:cseed i in
        let detector =
          with_sampling sampling (with_vkeys vkeys (Runner.Kard r.Campaign.rp_config))
        in
        let seed =
          if seed = Defaults.seed then r.Campaign.rp_machine_seed else seed
        in
        Record.record_build ?shards
          ~threads:(r.Campaign.rp_prog.Kard_fuzz.Prog.workers + 1)
          ~scale:1.0 ~seed ~detector ~target (fuzz_build r)
          (Printf.sprintf "fuzz-%d-%d" cseed i)
      | None -> (
        match Record.find_subject target with
        | Error msg -> fail msg
        | Ok subject ->
          let detector = with_sampling sampling (with_vkeys vkeys detector) in
          let override_config =
            match subject with
            | Record.Scenario sc when vkeys <> None || sampling <> None ->
              let c = sc.Race_suite.config in
              let c =
                match vkeys with Some n -> { c with Kard_core.Config.vkeys = n } | None -> c
              in
              let c =
                match sampling with
                | Some r -> { c with Kard_core.Config.sampling = r }
                | None -> c
              in
              Some c
            | Record.Scenario _ | Record.Spec _ -> None
          in
          Record.record ?threads ~scale ~seed ?shards ?override_config ~detector subject)
    in
    Log.to_file out log;
    Printf.eprintf "recorded %s: %d picks, %d grants, %d bytes -> %s\n"
      log.Log.header.Log.target (Log.pick_count log) (Log.grant_count log)
      (String.length (Log.encode log)) out;
    print_or_json ~json result
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a target with the nondeterminism recorder on and write a compact replay log \
          (schedule picks, lock-grant order, anchors; recording costs zero simulated cycles)")
    Term.(const action $ target_arg $ detector_arg $ vkeys_arg $ sampling_arg $ threads_arg
          $ scale_arg $ seed_arg $ shards_arg $ out_arg $ json_arg)

let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Replay log written by $(b,kard record).")
  in
  let detector_opt_arg =
    Arg.(value & opt (some detector_conv) None
         & info [ "d"; "detector" ] ~docv:"DETECTOR"
             ~doc:
               "Replay under this detector instead of the recorded one (cross-detector replay: \
                record under cheap sampling, re-detect under full kard, tsan or lockset; \
                fidelity checking drops to schedule-only strength).")
  in
  let action file detector vkeys sampling shards json =
    let fail msg =
      Printf.eprintf "replay: %s\n" msg;
      exit 2
    in
    let log = try Log.of_file file with Log.Error e -> fail (Log.error_to_string e) in
    let h = log.Log.header in
    Printf.eprintf "replaying %s: %s, %d picks, %d grants\n" file
      (Format.asprintf "%a" Log.pp_header h)
      (Log.pick_count log) (Log.grant_count log);
    (* An explicit -d/--vkeys/--sampling builds an override detector;
       otherwise the header's own detector replays in strict mode. *)
    let detector =
      match (detector, vkeys, sampling) with
      | None, None, None -> None
      | _ ->
        let base =
          match detector with
          | Some d -> d
          | None -> (match Record.detector_of_header h with Ok d -> d | Error msg -> fail msg)
        in
        Some (with_sampling sampling (with_vkeys vkeys base))
    in
    let outcome =
      match Campaign.of_target h.Log.target with
      | Some (cseed, i) ->
        let r = Campaign.reconstruct ~seed:cseed i in
        Record.replay_build ?shards ?detector log (fuzz_build r)
          (Printf.sprintf "fuzz-%d-%d" cseed i)
      | None -> Record.replay ?shards ?detector log
    in
    match outcome with
    | Error msg -> fail msg
    | Ok (result, fidelity) ->
      print_or_json ~json result;
      (match fidelity with
      | Ok () -> Printf.eprintf "replay fidelity: ok (tape fully consumed)\n"
      | Error msg ->
        Printf.eprintf "replay fidelity: DIVERGED\n%s\n" msg;
        exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded run from its nondeterminism log, byte-identical to the \
          original, verifying every pick, lock grant and anchor against the tape (exit 1 on \
          divergence)")
    Term.(const action $ file_arg $ detector_opt_arg $ vkeys_arg $ sampling_arg $ shards_arg
          $ json_arg)

(* bench: the tracked simulator-throughput benchmark (BENCH_pr4.json). *)

let bench_cmd =
  let only_conv =
    let parse = function
      | "throughput" -> Ok `Throughput
      | "keys" -> Ok `Keys
      | "sampling" -> Ok `Sampling
      | "record" -> Ok `Record
      | s ->
        Error
          (`Msg (Printf.sprintf "unknown benchmark %S (throughput, keys, sampling or record)" s))
    in
    let print fmt o =
      Format.pp_print_string fmt
        (match o with
        | `Throughput -> "throughput"
        | `Keys -> "keys"
        | `Sampling -> "sampling"
        | `Record -> "record")
    in
    Arg.conv (parse, print)
  in
  (* The tracked filenames render from Defaults so the help text can
     never go stale against where `kard bench` actually writes. *)
  let only_arg =
    Arg.(value & opt only_conv `Throughput
         & info [ "only" ] ~docv:"BENCH"
             ~doc:
               (Printf.sprintf
                  "Which tracked benchmark to run: $(b,throughput) (simulator ops/sec, %s), \
                   $(b,keys) (the key-pressure precision sweep, %s), $(b,sampling) (detection \
                   probability/latency vs rate plus the sampled-kard serve sweep, %s) or \
                   $(b,record) (record/replay overhead and log bytes per step, %s)."
                  Defaults.throughput_out Defaults.keys_out Defaults.sampling_out
                  Defaults.record_out))
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out"; "output" ] ~docv:"FILE"
             ~doc:"JSON output path (default: the benchmark's tracked file).")
  in
  let threads_arg =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16; 32; 64 ]
         & info [ "threads" ] ~docv:"N,N,..." ~doc:"Thread counts to sweep (throughput only).")
  in
  let scale_opt_arg =
    Arg.(value & opt (some float) None
         & info [ "scale" ] ~docv:"F"
             ~doc:
               "Workload scale factor (0,1] (default: the global default for throughput, 1.0 \
                for keys — the precision claim is about object count).")
  in
  let action only scale seed threads_list vkeys jobs shards out =
    match only with
    | `Throughput ->
      let scale = Option.value ~default:Defaults.scale scale in
      let out = Option.value ~default:Defaults.throughput_out out in
      let rows = Experiments.throughput ~threads_list ~scale ~seed ?shards () in
      Experiments.print_throughput rows;
      let json =
        Kard_harness.Json_report.of_throughput ~build:"dev" ~workload:"memcached" ~scale ~seed
          rows
      in
      let oc = open_out out in
      output_string oc (Kard_harness.Json_report.pretty json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    | `Keys ->
      let scale = Option.value ~default:1.0 scale in
      let out = Option.value ~default:Defaults.keys_out out in
      let b = Experiments.keys ?jobs ?pool:vkeys ~scale ~seed ?shards () in
      Experiments.print_keys_bench b;
      let json = Kard_harness.Json_report.of_keys_bench ~build:"dev" b in
      let oc = open_out out in
      output_string oc (Kard_harness.Json_report.pretty json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    | `Sampling ->
      let out = Option.value ~default:Defaults.sampling_out out in
      let b = Experiments.sampling ?jobs ?scale ?shards () in
      Experiments.print_sampling b;
      let json =
        Kard_harness.Json_report.of_sampling_bench ~build:"dev"
          ~threads:Defaults.table_threads ~scale:Defaults.serve_scale ~seed:Defaults.seed b
      in
      let oc = open_out out in
      output_string oc (Kard_harness.Json_report.pretty json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    | `Record ->
      let out = Option.value ~default:Defaults.record_out out in
      let b = Experiments.record_bench ?scale ~seed ?shards () in
      Experiments.print_record b;
      let json = Kard_harness.Json_report.of_record_bench ~build:"dev" b in
      let oc = open_out out in
      output_string oc (Kard_harness.Json_report.pretty json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run a tracked benchmark: simulator throughput (default), the key-pressure precision \
          sweep (--only keys), the sampling sweep (--only sampling) or record/replay overhead \
          (--only record)")
    Term.(const action $ only_arg $ scale_opt_arg $ seed_arg $ threads_arg $ vkeys_arg $ jobs_arg
          $ shards_arg $ out_arg)

(* serve-sweep: the open-loop production-serving benchmark
   (BENCH_pr6.json).  Sweeps offered load over detectors and reports
   latency percentiles plus goodput under the p99 SLO. *)

let serve_sweep_cmd =
  let module Openloop = Kard_workloads.Openloop in
  let server_conv =
    let parse = function
      | "nginx" -> Ok Openloop.Nginx
      | "memcached" -> Ok Openloop.Memcached
      | s -> Error (`Msg (Printf.sprintf "unknown server %S (nginx or memcached)" s))
    in
    Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Openloop.server_name s))
  in
  let server_arg =
    Arg.(value & opt server_conv Openloop.Nginx
         & info [ "server" ] ~docv:"SERVER" ~doc:"Simulated server: nginx or memcached.")
  in
  let arrivals_conv =
    let parse = function
      | "poisson" -> Ok Openloop.Poisson
      | "bursty" -> Ok Openloop.default_bursty
      | s -> Error (`Msg (Printf.sprintf "unknown arrival model %S (poisson or bursty)" s))
    in
    Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Openloop.arrival_name m))
  in
  let arrivals_arg =
    Arg.(value & opt arrivals_conv Openloop.Poisson
         & info [ "arrivals" ] ~docv:"MODEL"
             ~doc:
               "Arrival process: poisson (memoryless) or bursty (Markov-modulated, 8x rate \
                bursts).")
  in
  let rates_arg =
    Arg.(value & opt (list float) Experiments.default_serve_rates
         & info [ "rates" ] ~docv:"R,R,..."
             ~doc:"Offered loads to sweep, in requests per million simulated cycles.")
  in
  let slo_arg =
    Arg.(value & opt int Defaults.serve_slo
         & info [ "slo" ] ~docv:"CYCLES" ~doc:"Latency SLO: p99 budget in simulated cycles.")
  in
  let serve_scale_arg =
    Arg.(value & opt float Defaults.serve_scale
         & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (0,1].")
  in
  let out_arg =
    Arg.(value & opt string Defaults.serve_out
         & info [ "o"; "out"; "output" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  let threads_opt_arg =
    Arg.(value & opt int Defaults.table_threads
         & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker thread count of the simulated server.")
  in
  let action server model rates slo threads scale seed jobs shards sampling out =
    (* --sampling swaps the default kard contestant for a sampled one
       (same "kard" label, so goodput keys stay comparable). *)
    let detectors =
      match sampling with
      | None -> Experiments.serve_detectors
      | Some _ ->
        List.map (fun (name, d) -> (name, with_sampling sampling d)) Experiments.serve_detectors
    in
    let sweep =
      Experiments.serve ?jobs ~server ~model ~detectors ~rates ~threads ~scale ~seed ~slo
        ?shards ()
    in
    Experiments.print_serve sweep;
    let json = Kard_harness.Json_report.of_serve_sweep ~threads ~scale ~seed sweep in
    let oc = open_out out in
    output_string oc (Kard_harness.Json_report.pretty json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "serve-sweep"
       ~doc:
         "Open-loop serving benchmark: sweep offered load over detectors, report latency \
          percentiles and goodput under the p99 SLO")
    Term.(const action $ server_arg $ arrivals_arg $ rates_arg $ slo_arg $ threads_opt_arg
          $ serve_scale_arg $ seed_arg $ jobs_arg $ shards_arg $ sampling_arg $ out_arg)

(* fuzz: the differential campaign.  Exit code 1 on any unexpected
   divergence so CI can gate on it. *)

let fuzz_cmd =
  let count_arg =
    Arg.(value & opt int 1000
         & info [ "n"; "count" ] ~docv:"N"
             ~doc:"Cumulative number of programs (a resumed corpus runs only the remainder).")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:
               "Corpus directory: campaign state (resumable), per-class exemplar repros, and \
                minimized repros for unexpected divergences.")
  in
  let replay_arg =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:
               "Run the record/replay gate on every program (default: only the replay-oracle \
                config entries): record the run's nondeterminism log, round-trip the codec, \
                strictly replay, and demand an identical report and race list.  Any difference \
                is the never-expected replay-divergence class.")
  in
  let action count seed corpus jobs shards sampling replay =
    let replay = if replay then Some true else None in
    let r = Kard_fuzz.Campaign.run ?jobs ?corpus ?shards ?sampling ?replay ~count ~seed () in
    Format.printf "%a@." Kard_fuzz.Campaign.report r;
    Printf.printf "(%d programs this invocation%s)\n" r.Kard_fuzz.Campaign.programs
      (match corpus with None -> "" | Some dir -> Printf.sprintf ", corpus %s" dir);
    if r.Kard_fuzz.Campaign.unexpected_indices <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs under the Kard runtime, replayed through pure \
          Algorithm 1, happens-before and Eraser-lockset oracles; every divergence must match \
          the documented taxonomy")
    Term.(const action $ count_arg $ seed_arg $ corpus_arg $ jobs_arg $ shards_arg $ sampling_arg
          $ replay_arg)

(* repro *)

let repro_one ?jobs ~scale = function
  | "table1" | "figure1" | "table4" | "figure4" | "scenarios" ->
    Experiments.print_scenarios (Experiments.scenarios ?jobs ())
  | "table3" -> Experiments.print_table3 (Experiments.table3 ?jobs ~scale ())
  | "table5" ->
    print_endline "full key budget (13 data keys):";
    Experiments.print_table5 (Experiments.table5 ?jobs ~scale ());
    print_endline "\npressure-scaled key budget (4 data keys; see EXPERIMENTS.md):";
    Experiments.print_table5 (Experiments.table5 ?jobs ~data_keys:4 ~scale ())
  | "table6" -> Experiments.print_table6 (Experiments.table6 ?jobs ~scale ())
  | "figure2" -> Experiments.print_figure2 (Experiments.figure2 ())
  | "figure5" -> Experiments.print_figure5 (Experiments.figure5 ?jobs ~scale ())
  | "nginx-sweep" -> Experiments.print_nginx_sweep (Experiments.nginx_sweep ?jobs ~scale ())
  | "memory" -> Experiments.print_memory (Experiments.memory ?jobs ~scale ())
  | "ablation" -> Experiments.print_ablation (Experiments.ablation ?jobs ~scale ())
  | "micro" -> Experiments.print_micro ()
  | exp -> Printf.eprintf "unknown experiment %S\n" exp

let repro_cmd =
  let exp_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"EXPERIMENT"
             ~doc:
               "One of: table1, table3, table4, table5, table6, figure2, figure5, nginx-sweep, \
                memory, ablation, micro, all.")
  in
  let action exp scale jobs =
    let experiments =
      if exp = "all" then
        [ "micro"; "figure2"; "scenarios"; "table3"; "table5"; "table6"; "figure5"; "nginx-sweep";
          "memory"; "ablation" ]
      else [ exp ]
    in
    List.iter
      (fun e ->
        Printf.printf "== %s ==\n" e;
        repro_one ?jobs ~scale e;
        print_newline ())
      experiments
  in
  Cmd.v (Cmd.info "repro" ~doc:"Regenerate a table or figure from the paper")
    Term.(const action $ exp_arg $ scale_arg $ jobs_arg)

let () =
  let info = Cmd.info "kard" ~doc:"Kard: MPK-based data race detection (ASPLOS'21), simulated" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; scenario_cmd; trace_cmd; hunt_cmd; record_cmd; replay_cmd;
            bench_cmd; serve_sweep_cmd; repro_cmd; fuzz_cmd ]))
