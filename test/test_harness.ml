(* Tests for the experiment harness: statistics, table rendering, the
   runner, and experiment shapes. *)

module Stats = Kard_harness.Stats
module Text_table = Kard_harness.Text_table
module Runner = Kard_harness.Runner
module Experiments = Kard_harness.Experiments
module Registry = Kard_workloads.Registry
module Machine = Kard_sched.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

(* Paper-matching assertions run the full detector: experiments that
   read $KARD_SAMPLING through [Defaults.kard_config] would
   legitimately sample the documented races out, so pin the identity
   rate for the call's duration (DESIGN.md §12).  [Defaults.sampling]
   re-reads the environment on every call, making this deterministic;
   malformed values ("") read as 1.0, so restoring an unset variable
   is safe. *)
let with_full_kard f =
  let old = Sys.getenv_opt "KARD_SAMPLING" in
  Unix.putenv "KARD_SAMPLING" "1.0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "KARD_SAMPLING" (Option.value old ~default:""))
    f

(* {1 Stats} *)

let test_geomean_ratio () =
  check_float "geomean of 2 and 8" 4.0 (Stats.geomean_ratio [ 2.; 8. ]);
  check_float "singleton" 3.0 (Stats.geomean_ratio [ 3. ]);
  check "empty rejected" true
    (try
       ignore (Stats.geomean_ratio []);
       false
     with Invalid_argument _ -> true);
  check "non-positive rejected" true
    (try
       ignore (Stats.geomean_ratio [ 1.; 0. ]);
       false
     with Invalid_argument _ -> true)

let test_geomean_overhead () =
  (* Matches the paper's convention: percentages become ratios. *)
  check "identity" true (abs_float (Stats.geomean_overhead_pct [ 0.; 0. ]) < 1e-9);
  let g = Stats.geomean_overhead_pct [ 100.; 0. ] in
  check "sqrt(2) - 1" true (abs_float (g -. 41.42135) < 0.001);
  (* Negative overheads are legal (ocean_cp, lu_cb rows). *)
  let g2 = Stats.geomean_overhead_pct [ -50.; 100. ] in
  check "mixed signs" true (abs_float g2 < 1e-9)

let rejects_empty f =
  try
    ignore (f [] : float);
    false
  with Invalid_argument _ -> true

let test_pct_and_mean () =
  check_float "pct" 50.0 (Stats.pct 150. 100.);
  check_float "pct zero base" 0.0 (Stats.pct 5. 0.);
  check_float "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  check "mean empty rejected" true (rejects_empty Stats.mean)

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.; 5.; 5. ]);
  (* Population stddev of [2;4;4;4;5;5;7;9] is exactly 2. *)
  check_float "textbook set" 2.0 (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]);
  check "empty rejected" true (rejects_empty Stats.stddev)

let test_percentile () =
  let values = [ 4.; 1.; 3.; 2. ] in
  check_float "p0 is min" 1.0 (Stats.percentile values 0.);
  check_float "p100 is max" 4.0 (Stats.percentile values 100.);
  check_float "median interpolates" 2.5 (Stats.percentile values 50.);
  check_float "p25 on sorted ranks" 1.75 (Stats.percentile values 25.);
  check_float "singleton" 7.0 (Stats.percentile [ 7. ] 99.);
  check "empty rejected" true (rejects_empty (fun vs -> Stats.percentile vs 50.));
  check "q out of range rejected" true
    (try
       ignore (Stats.percentile values 101. : float);
       false
     with Invalid_argument _ -> true)

let test_summarize () =
  (* Known distribution: 1..1000 uniformly.  The type-7 estimator lands
     p-th percentiles of 1..n on 1 + p/100 * (n - 1) exactly. *)
  let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize values in
  check_int "count" 1000 s.Stats.count;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 1000.0 s.Stats.max;
  check_float "mean" 500.5 s.Stats.mean;
  check_float "p50" 500.5 s.Stats.p50;
  check_float "p95" 950.05 s.Stats.p95;
  check_float "p99" 990.01 s.Stats.p99;
  check_float "p999" 999.001 s.Stats.p999;
  (* Agrees with the standalone estimator on an unsorted sample. *)
  let sample = [ 9.; 1.; 4.; 25.; 16. ] in
  let s2 = Stats.summarize sample in
  check_float "p95 matches percentile" (Stats.percentile sample 95.) s2.Stats.p95;
  check_float "p999 matches percentile" (Stats.percentile sample 99.9) s2.Stats.p999;
  (* A two-point mass at 0 and 100: every tail rank sits inside the
     last gap, so p99 < p99.9 < max strictly. *)
  let bimodal = List.init 100 (fun i -> if i < 99 then 0. else 100.) in
  let s3 = Stats.summarize bimodal in
  check_float "bimodal p50" 0.0 s3.Stats.p50;
  check "bimodal tail ordering" true
    (s3.Stats.p99 < s3.Stats.p999 && s3.Stats.p999 < s3.Stats.max);
  let s4 = Stats.summarize [ 7. ] in
  check_float "singleton collapses" 7.0 s4.Stats.p999;
  check "empty rejected" true
    (try
       ignore (Stats.summarize []);
       false
     with Invalid_argument _ -> true)

(* {1 Text_table} *)

let test_table_render () =
  let s = Text_table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check_int "header+rule+2 rows+trailer" 5 (List.length lines);
  check "rows aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_formats () =
  check "pct" true (String.equal "+7.0%" (Text_table.fmt_pct 7.0));
  check "negative pct" true (String.equal "-5.9%" (Text_table.fmt_pct (-5.9)));
  check "times" true (String.equal "7.9x" (Text_table.fmt_times 7.9));
  check "thousands" true (String.equal "4,402,000" (Text_table.fmt_int 4_402_000));
  check "small int" true (String.equal "37" (Text_table.fmt_int 37));
  check "kb" true (String.equal "4" (Text_table.fmt_kb 4096));
  check "rate" true (String.equal "0.00013" (Text_table.fmt_rate 0.00013))

(* {1 Runner} *)

let test_runner_detector_names () =
  check "baseline" true (Runner.detector_name Runner.Baseline = "baseline");
  check "kard" true (Runner.detector_name (Runner.Kard (Kard_harness.Defaults.kard_config ())) = "kard");
  check "tsan" true (Runner.detector_name Runner.Tsan = "tsan")

let test_runner_overhead_math () =
  let spec = Registry.find "aget" in
  let base = Runner.run ~scale:0.002 ~detector:Runner.Baseline spec in
  let kard = Runner.run ~scale:0.002 ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ())) spec in
  let pct = Runner.overhead_pct ~baseline:base kard in
  check "kard costs something" true (pct > 0.);
  check "self overhead is zero" true (abs_float (Runner.overhead_pct ~baseline:base base) < 1e-9)

let test_runner_detector_payloads () =
  let spec = Registry.find "aget" in
  let base = Runner.run ~scale:0.002 ~detector:Runner.Baseline spec in
  check "baseline has no kard stats" true (base.Runner.kard_stats = None);
  check "baseline reports no races" true (base.Runner.kard_races = []);
  let tsan = Runner.run ~scale:0.002 ~detector:Runner.Tsan spec in
  check "tsan run has no kard stats" true (tsan.Runner.kard_stats = None)

(* {1 Experiments} *)

let test_table3_shape () =
  let specs = [ Registry.find "aget"; Registry.find "streamcluster" ] in
  let rows = Experiments.table3 ~scale:0.002 ~specs () in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun row ->
      (* TSan is far slower than Kard on every workload. *)
      check "tsan slower than kard" true (Experiments.t3_tsan_pct row > Experiments.t3_kard_pct row);
      check "kard not slower than 10x" true (Experiments.t3_kard_pct row < 1000.))
    rows

let test_scenarios_all_pass () =
  let rows = Experiments.scenarios () in
  List.iter
    (fun row ->
      let name = row.Experiments.scenario.Kard_workloads.Race_suite.name in
      check (name ^ " kard") true row.Experiments.kard_ok;
      check (name ^ " tsan") true row.Experiments.tsan_ok;
      check (name ^ " lockset") true row.Experiments.lockset_ok)
    rows

let test_figure2_numbers () =
  let s = Experiments.figure2 () in
  check_int "128 objects" 128 s.Experiments.objects;
  check_int "128 virtual pages" 128 s.Experiments.virtual_pages;
  check "physically consolidated" true (s.Experiments.physical_pages <= 16)

let test_nginx_sweep_monotone () =
  let rows = Experiments.nginx_sweep ~sizes:[ 128; 1024 ] ~scale:0.002 () in
  match rows with
  | [ small; large ] ->
    check "smaller files suffer more" true
      (small.Experiments.kard_pct > large.Experiments.kard_pct)
  | _ -> Alcotest.fail "expected two rows"

let test_chart_bars () =
  let s = Kard_harness.Chart.bars ~width:10 [ ("a", 10.); ("bb", 5.) ] in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  check_int "two lines" 2 (List.length lines);
  check "largest bar fills width" true
    (String.length (List.nth (String.split_on_char '|' (List.hd lines)) 1) = 10);
  (* Zero and negative values keep the chart well-formed. *)
  let s2 = Kard_harness.Chart.bars ~width:10 [ ("x", 0.); ("y", -3.) ] in
  check "handles non-positive" true (String.length s2 > 0)

let test_chart_grouped () =
  let s =
    Kard_harness.Chart.grouped ~width:8 ~series:[ "t=8"; "t=16" ]
      [ ("alpha", [ 1.; 2. ]); ("beta", [ 4.; 8. ]) ]
  in
  check "contains labels" true
    (List.for_all
       (fun needle ->
         let rec find i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || find (i + 1))
         in
         find 0)
       [ "alpha"; "beta"; "t=8"; "t=16" ])

let test_explorer_scenarios () =
  let s =
    Kard_harness.Explorer.explore_scenario ~seeds:[ 1; 2; 3; 4; 5 ]
      Kard_workloads.Race_suite.ilu_lock_lock
  in
  check_int "five runs" 5 s.Kard_harness.Explorer.runs;
  check "always detected" true (s.Kard_harness.Explorer.detection_rate = 1.0);
  let clean =
    Kard_harness.Explorer.explore_scenario ~seeds:[ 1; 2; 3 ] Kard_workloads.Race_suite.same_lock
  in
  check "never false positives" true (clean.Kard_harness.Explorer.detection_rate = 0.0)

let test_explorer_spec () =
  with_full_kard @@ fun () ->
  let s = Kard_harness.Explorer.explore_spec ~seeds:[ 1; 2 ] (Registry.find "aget") in
  check_int "two runs" 2 s.Kard_harness.Explorer.runs;
  check "aget race robust" true (s.Kard_harness.Explorer.detecting_runs >= 1)

let test_memory_breakdown () =
  let rows =
    Experiments.memory ~scale:0.002
      ~specs:[ Registry.find "water_spatial"; Registry.find "aget" ] ()
  in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun row ->
      check "components do not exceed the total" true
        (row.Experiments.kard_data + row.Experiments.kard_page_tables
         + row.Experiments.kard_metadata
        <= row.Experiments.kard_rss + 4096))
    rows;
  (* water_spatial's unique-paged molecules dominate aget's footprint. *)
  (match rows with
  | [ water; aget ] ->
    let pct r =
      Stats.pct (float_of_int r.Experiments.kard_rss) (float_of_int r.Experiments.base_rss)
    in
    check "water_spatial blows up, aget does not" true (pct water > pct aget)
  | _ -> Alcotest.fail "expected two rows")

let test_table6_shape () =
  with_full_kard @@ fun () ->
  let rows = Experiments.table6 ~scale:0.01 () in
  check_int "four applications" 4 (List.length rows);
  List.iter
    (fun row ->
      check
        (row.Experiments.app ^ " matches paper")
        true
        (row.Experiments.kard_races = row.Experiments.paper_kard))
    rows

(* {1 Json_report} *)

module Json = Kard_harness.Json_report

let contains haystack needle =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

let test_json_escape () =
  check "quotes" true (String.equal "a\\\"b" (Json.escape "a\"b"));
  check "backslash" true (String.equal "a\\\\b" (Json.escape "a\\b"));
  check "newline" true (String.equal "a\\nb" (Json.escape "a\nb"));
  check "control" true (String.equal "\\u0001" (Json.escape "\x01"))

let test_json_race () =
  let race =
    { Kard_core.Race_record.obj_id = 7;
      obj_base = 0x1000;
      offset = 16;
      faulting = { Kard_core.Race_record.thread = 1; section = None; access = `Read; ip = 3 };
      holding = [ { Kard_core.Race_record.thread = 2; section = Some 9; access = `Write; ip = -1 } ];
      time = 42 }
  in
  let json = Json.of_race race in
  check "object id" true (contains json "\"object\":7");
  check "null section" true (contains json "\"section\":null");
  check "ilu true" true (contains json "\"ilu\":true");
  check "holder section" true (contains json "\"section\":9")

let test_json_result () =
  let r = Runner.run ~scale:0.002 ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ()))
      (Registry.find "aget")
  in
  let json = Json.of_result r in
  check "workload" true (contains json "\"workload\":\"aget\"");
  check "kard stats present" true (contains json "\"kard\":{");
  check "races array" true (contains json "\"races\":[");
  let base = Runner.run ~scale:0.002 ~detector:Runner.Baseline (Registry.find "aget") in
  check "baseline has no kard object" false (contains (Json.of_result base) "\"kard\":{")

let test_json_metrics () =
  let m = Kard_obs.Metrics.create () in
  Kard_obs.Metrics.incr (Kard_obs.Metrics.counter m "hits");
  let h = Kard_obs.Metrics.histogram m "lat" in
  List.iter (Kard_obs.Metrics.observe h) [ 1; 2; 3; 4 ];
  let json = Json.of_metrics m in
  check "counter emitted" true (contains json "\"hits\":1");
  check "histogram named" true (contains json "\"lat\":{");
  List.iter
    (fun field -> check (field ^ " present") true (contains json ("\"" ^ field ^ "\":")))
    [ "count"; "total"; "min"; "max"; "mean"; "p50"; "p95"; "p99"; "p999" ];
  check "count value" true (contains json "\"count\":4")

let test_json_traced_result () =
  let tr = Kard_obs.Trace.create () in
  let r =
    Runner.run ~trace:tr ~scale:0.002 ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ()))
      (Registry.find "aget")
  in
  let json = Json.of_result r in
  check "trace summary" true (contains json "\"trace\":{");
  check "category counts" true (contains json "\"categories\":{");
  check "metrics registry" true (contains json "\"metrics\":{");
  let untraced =
    Runner.run ~scale:0.002 ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ()))
      (Registry.find "aget")
  in
  check "untraced run embeds neither" false (contains (Json.of_result untraced) "\"metrics\":{")

let test_json_pretty () =
  let pretty = Json.pretty "{\"a\":1,\"b\":[2,3]}" in
  check "newlines added" true (contains pretty "\n");
  check "content preserved" true (contains pretty "\"a\": 1");
  (* Braces inside strings must not be re-indented. *)
  let tricky = Json.pretty "{\"s\":\"a{b}c\"}" in
  check "string braces untouched" true (contains tricky "a{b}c");
  (* Pretty-printing only moves whitespace: stripping it back yields
     the compact input, even with escapes inside strings. *)
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> '\n' && c <> ' ')
    |> String.of_seq
  in
  let compact = "{\"s\":\"a\\\"{\\\\\",\"n\":[1,{\"m\":2}]}" in
  check "round-trips modulo whitespace" true (String.equal compact (strip (Json.pretty compact)))

let () =
  Alcotest.run "kard_harness"
    [ ( "stats",
        [ Alcotest.test_case "geomean ratio" `Quick test_geomean_ratio;
          Alcotest.test_case "geomean overhead" `Quick test_geomean_overhead;
          Alcotest.test_case "pct and mean" `Quick test_pct_and_mean;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile ] );
      ( "text_table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats ] );
      ( "runner",
        [ Alcotest.test_case "detector names" `Quick test_runner_detector_names;
          Alcotest.test_case "overhead math" `Slow test_runner_overhead_math;
          Alcotest.test_case "detector payloads" `Slow test_runner_detector_payloads ] );
      ( "experiments",
        [ Alcotest.test_case "table3 shape" `Slow test_table3_shape;
          Alcotest.test_case "scenarios pass" `Slow test_scenarios_all_pass;
          Alcotest.test_case "figure2" `Quick test_figure2_numbers;
          Alcotest.test_case "nginx sweep monotone" `Slow test_nginx_sweep_monotone;
          Alcotest.test_case "memory breakdown" `Slow test_memory_breakdown;
          Alcotest.test_case "table6 matches paper" `Slow test_table6_shape ] );
      ( "explorer",
        [ Alcotest.test_case "scenario sweep" `Slow test_explorer_scenarios;
          Alcotest.test_case "spec sweep" `Slow test_explorer_spec ] );
      ( "chart",
        [ Alcotest.test_case "bars" `Quick test_chart_bars;
          Alcotest.test_case "grouped" `Quick test_chart_grouped ] );
      ( "json",
        [ Alcotest.test_case "escape" `Quick test_json_escape;
          Alcotest.test_case "race record" `Quick test_json_race;
          Alcotest.test_case "result" `Slow test_json_result;
          Alcotest.test_case "metrics" `Quick test_json_metrics;
          Alcotest.test_case "traced result" `Slow test_json_traced_result;
          Alcotest.test_case "pretty" `Quick test_json_pretty ] ) ]
