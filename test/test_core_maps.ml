(* Tests for the runtime's bookkeeping: protection domains, the
   section-object map, the key-section map, and effective key
   assignment (paper sections 5.2-5.4). *)

module Pkey = Kard_mpk.Pkey
module Perm = Kard_mpk.Perm
module Domain_state = Kard_core.Domain_state
module Somap = Kard_core.Section_object_map
module Ksmap = Kard_core.Key_section_map
module Key_assign = Kard_core.Key_assign
module Config = Kard_core.Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Domain_state} *)

let test_domain_default_and_migration () =
  let d = Domain_state.create () in
  check "unknown objects are not-accessed" true
    (Domain_state.domain_of d ~obj_id:9 = Domain_state.Not_accessed);
  Domain_state.set d ~obj_id:9 Domain_state.Read_only;
  check "read-only" true (Domain_state.domain_of d ~obj_id:9 = Domain_state.Read_only);
  check_int "one migration" 1 (Domain_state.migrations d);
  Domain_state.set d ~obj_id:9 Domain_state.Read_only;
  check_int "idempotent set is free" 1 (Domain_state.migrations d)

let test_domain_key_index () =
  let d = Domain_state.create () in
  let k1 = 1 in
  Domain_state.set d ~obj_id:1 (Domain_state.Read_write k1);
  Domain_state.set d ~obj_id:2 (Domain_state.Read_write k1);
  check_int "two objects on k1" 2 (List.length (Domain_state.objects_with_key d k1));
  Domain_state.set d ~obj_id:1 Domain_state.Read_only;
  check_int "one left after demotion" 1 (List.length (Domain_state.objects_with_key d k1));
  Domain_state.forget d ~obj_id:2;
  check_int "none after forget" 0 (List.length (Domain_state.objects_with_key d k1))

let test_domain_counts () =
  let d = Domain_state.create () in
  Domain_state.set d ~obj_id:1 Domain_state.Read_only;
  Domain_state.set d ~obj_id:2 (Domain_state.Read_write 3);
  (* Setting a fresh object to Not-accessed is a no-op: that is
     already its implicit domain. *)
  Domain_state.set d ~obj_id:3 Domain_state.Not_accessed;
  check_int "ro count" 1 (Domain_state.count_in d `Read_only);
  check_int "rw count" 1 (Domain_state.count_in d `Read_write);
  check_int "na count" 0 (Domain_state.count_in d `Not_accessed);
  check_int "tracked" 2 (Domain_state.tracked d);
  (* A demotion from a real domain is tracked explicitly. *)
  Domain_state.set d ~obj_id:1 Domain_state.Not_accessed;
  check_int "demoted counts as na" 1 (Domain_state.count_in d `Not_accessed)

(* {1 Section_object_map} *)

let test_somap_record_lookup () =
  let m = Somap.create () in
  Somap.record m ~section:10 ~obj_id:1 Somap.Needs_read;
  Somap.record m ~section:10 ~obj_id:2 Somap.Needs_write;
  check_int "two objects" 2 (List.length (Somap.objects_of m ~section:10));
  check "need of 1" true (Somap.need_of m ~section:10 ~obj_id:1 = Some Somap.Needs_read);
  check "unknown section empty" true (Somap.objects_of m ~section:99 = [])

let test_somap_write_sticky () =
  let m = Somap.create () in
  Somap.record m ~section:10 ~obj_id:1 Somap.Needs_write;
  Somap.record m ~section:10 ~obj_id:1 Somap.Needs_read;
  check "write survives later read" true
    (Somap.need_of m ~section:10 ~obj_id:1 = Some Somap.Needs_write);
  Somap.record m ~section:10 ~obj_id:2 Somap.Needs_read;
  Somap.record m ~section:10 ~obj_id:2 Somap.Needs_write;
  check "read upgrades to write" true
    (Somap.need_of m ~section:10 ~obj_id:2 = Some Somap.Needs_write)

let test_somap_reverse_index () =
  let m = Somap.create () in
  Somap.record m ~section:10 ~obj_id:1 Somap.Needs_read;
  Somap.record m ~section:20 ~obj_id:1 Somap.Needs_read;
  Somap.record m ~section:30 ~obj_id:1 Somap.Needs_write;
  check_int "three touching" 3 (List.length (Somap.sections_touching m ~obj_id:1));
  check_int "two reading" 2 (List.length (Somap.sections_reading m ~obj_id:1));
  Somap.forget_object m ~obj_id:1;
  check_int "forgotten" 0 (List.length (Somap.sections_touching m ~obj_id:1));
  check "removed from sections" true (Somap.need_of m ~section:10 ~obj_id:1 = None)

(* {1 Key_section_map} *)

let holder ?(perm = Perm.Read_write) ?(section = 10) ?(lock = 1) ?(proactive = false) tid =
  { Ksmap.tid; perm; section; lock; proactive }

let test_ksmap_exclusive_write () =
  let m = Ksmap.create () in
  let k = 1 in
  Ksmap.acquire m k (holder 0);
  check "second rw denied" false (Ksmap.can_acquire m k ~tid:1 Perm.Read_write);
  check "ro denied under rw" false (Ksmap.can_acquire m k ~tid:1 Perm.Read_only);
  check "holder may re-acquire" true (Ksmap.can_acquire m k ~tid:0 Perm.Read_write);
  check "write holder found" true
    (match Ksmap.write_holder m k with
    | Some h -> h.Ksmap.tid = 0
    | None -> false)

let test_ksmap_shared_read () =
  let m = Ksmap.create () in
  let k = 2 in
  Ksmap.acquire m k (holder ~perm:Perm.Read_only 0);
  check "second reader allowed" true (Ksmap.can_acquire m k ~tid:1 Perm.Read_only);
  Ksmap.acquire m k (holder ~perm:Perm.Read_only ~section:20 1);
  check_int "two holders" 2 (List.length (Ksmap.holders m k));
  check "writer denied under readers" false (Ksmap.can_acquire m k ~tid:2 Perm.Read_write);
  check "no write holder" true (Ksmap.write_holder m k = None)

let test_ksmap_release_and_timestamp () =
  let m = Ksmap.create () in
  let k = 3 in
  Ksmap.acquire m k (holder 0);
  Ksmap.release m k ~tid:0 ~time:1000;
  check "released" true (Ksmap.holders m k = []);
  (match Ksmap.last_release m k with
  | Some (1000, h) -> check_int "releaser identity kept" 0 h.Ksmap.tid
  | _ -> Alcotest.fail "expected release record");
  check "recent within window" true (Ksmap.recently_released m k ~now:1500 ~window:1000);
  check "stale outside window" false (Ksmap.recently_released m k ~now:99_999 ~window:1000)

let test_ksmap_upgrade () =
  let m = Ksmap.create () in
  let k = 4 in
  Ksmap.acquire m k (holder ~perm:Perm.Read_only 0);
  Ksmap.acquire m k (holder ~perm:Perm.Read_write 0);
  (match Ksmap.write_holder m k with
  | Some h -> check_int "upgraded in place" 0 h.Ksmap.tid
  | None -> Alcotest.fail "expected upgrade");
  check_int "still one holding" 1 (List.length (Ksmap.holders m k))

let test_ksmap_force_acquire () =
  let m = Ksmap.create () in
  let k = 5 in
  Ksmap.acquire m k (holder 0);
  check "normal acquire raises" true
    (try
       Ksmap.acquire m k (holder 1);
       false
     with Invalid_argument _ -> true);
  Ksmap.force_acquire m k (holder ~section:20 1);
  check_int "shared holding" 2 (List.length (Ksmap.holders m k))

let test_ksmap_sections () =
  let m = Ksmap.create () in
  Ksmap.acquire m 1 (holder ~section:10 0);
  Ksmap.acquire m 2 (holder ~section:20 1);
  check "section 10 active" true (Ksmap.is_section_active m ~section:10);
  check_int "two active" 2 (List.length (Ksmap.active_sections m));
  Ksmap.release m 1 ~tid:0 ~time:0;
  check "section 10 inactive" false (Ksmap.is_section_active m ~section:10)

(* {1 Key_assign: the three rules of section 5.4} *)

let assign_env () =
  let config = Config.default in
  (Key_assign.create config, Ksmap.create (), Domain_state.create (), Somap.create ())

let test_assign_reuse_rule () =
  let ka, ksmap, domains, somap = assign_env () in
  Ksmap.acquire ksmap 5 (holder 0);
  (match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:0 ~section:10 with
  | Key_assign.Reuse k -> check_int "reuses held key" 5 k
  | _ -> Alcotest.fail "expected Reuse")

let test_assign_fresh_rule () =
  let ka, ksmap, domains, somap = assign_env () in
  (match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:0 ~section:10 with
  | Key_assign.Fresh _ -> ()
  | _ -> Alcotest.fail "expected Fresh when keys are unassigned")

let test_assign_recycle_rule () =
  let ka, ksmap, domains, somap = assign_env () in
  (* All 13 keys protect objects, none held: recycling picks the key
     with the fewest objects to demote. *)
  List.iteri
    (fun i key ->
      Domain_state.set domains ~obj_id:(100 + i) (Domain_state.Read_write key);
      if i <> 4 then Domain_state.set domains ~obj_id:(200 + i) (Domain_state.Read_write key))
    (Key_assign.available_keys ka);
  (match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:0 ~section:10 with
  | Key_assign.Recycle (k, objs) ->
    check_int "cheapest key" 5 k;
    check_int "its objects listed" 1 (List.length objs)
  | _ -> Alcotest.fail "expected Recycle")

let test_assign_share_rule () =
  let config = { Config.default with Config.data_keys = 2 } in
  let ka = Key_assign.create config in
  let ksmap = Ksmap.create () in
  let domains = Domain_state.create () in
  let somap = Somap.create () in
  (* Both keys held, both protecting objects: sharing is forced. *)
  List.iteri
    (fun i key ->
      Domain_state.set domains ~obj_id:i (Domain_state.Read_write key);
      Ksmap.acquire ksmap key (holder ~section:(20 + i) i))
    (Key_assign.available_keys ka);
  Somap.record somap ~section:20 ~obj_id:0 Somap.Needs_write;
  Somap.record somap ~section:21 ~obj_id:1 Somap.Needs_write;
  Somap.record somap ~section:10 ~obj_id:50 Somap.Needs_write;
  (match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:5 ~section:10 with
  | Key_assign.Share _ -> ()
  | d -> Alcotest.failf "expected Share, got %s" (Format.asprintf "%a" Key_assign.pp_decision d))

let test_assign_key_budget () =
  check "zero keys rejected" true
    (try
       ignore (Key_assign.create { Config.default with Config.data_keys = 0 });
       false
     with Invalid_argument _ -> true);
  check "14 keys rejected" true
    (try
       ignore (Key_assign.create { Config.default with Config.data_keys = 14 });
       false
     with Invalid_argument _ -> true);
  let ka = Key_assign.create { Config.default with Config.data_keys = 3 } in
  check_int "budget respected" 3 (List.length (Key_assign.available_keys ka))

let test_assign_stats () =
  let ka, ksmap, domains, somap = assign_env () in
  let d = Key_assign.choose ka ~ksmap ~domains ~somap ~tid:0 ~section:10 in
  Key_assign.note ka d;
  check_int "fresh counted" 1 (Key_assign.stats ka).Key_assign.fresh_events

(* {1 Soft_keys: the section 8 software fallback} *)

module Soft_keys = Kard_core.Soft_keys

let test_soft_pool_membership () =
  let s = Soft_keys.create () in
  check "empty" false (Soft_keys.mem s ~obj_id:1);
  Soft_keys.add_object s ~obj_id:1;
  check "pooled" true (Soft_keys.mem s ~obj_id:1);
  check_int "count" 1 (Soft_keys.pooled s)

let test_soft_exclusive_write () =
  let s = Soft_keys.create () in
  Soft_keys.add_object s ~obj_id:1;
  check "writer claims" true
    (Soft_keys.access s ~obj_id:1 ~tid:0 ~section:(Some 10) ~lock:(Some 1) ~access:`Write
    = Soft_keys.Soft_ok);
  (match Soft_keys.access s ~obj_id:1 ~tid:1 ~section:(Some 20) ~lock:(Some 2) ~access:`Write with
  | Soft_keys.Soft_conflict [ h ] -> check_int "holder id" 0 h.Ksmap.tid
  | _ -> Alcotest.fail "expected conflict");
  check "holder re-access fine" true
    (Soft_keys.access s ~obj_id:1 ~tid:0 ~section:(Some 10) ~lock:(Some 1) ~access:`Read
    = Soft_keys.Soft_ok)

let test_soft_shared_read () =
  let s = Soft_keys.create () in
  Soft_keys.add_object s ~obj_id:1;
  check "reader 1" true
    (Soft_keys.access s ~obj_id:1 ~tid:0 ~section:(Some 10) ~lock:(Some 1) ~access:`Read
    = Soft_keys.Soft_ok);
  check "reader 2 shares" true
    (Soft_keys.access s ~obj_id:1 ~tid:1 ~section:(Some 20) ~lock:(Some 2) ~access:`Read
    = Soft_keys.Soft_ok);
  check "writer conflicts with readers" true
    (match Soft_keys.access s ~obj_id:1 ~tid:2 ~section:(Some 30) ~lock:(Some 3) ~access:`Write with
    | Soft_keys.Soft_conflict _ -> true
    | Soft_keys.Soft_ok -> false)

let test_soft_release () =
  let s = Soft_keys.create () in
  Soft_keys.add_object s ~obj_id:1;
  ignore (Soft_keys.access s ~obj_id:1 ~tid:0 ~section:(Some 10) ~lock:(Some 1) ~access:`Write);
  Soft_keys.release_thread s ~tid:0 ~time:100;
  check "free after release" true
    (Soft_keys.access s ~obj_id:1 ~tid:1 ~section:(Some 20) ~lock:(Some 2) ~access:`Write
    = Soft_keys.Soft_ok)

let test_soft_outside_section () =
  let s = Soft_keys.create () in
  Soft_keys.add_object s ~obj_id:1;
  (* Outside-section accesses check conflicts but never claim. *)
  check "outside ok when free" true
    (Soft_keys.access s ~obj_id:1 ~tid:0 ~section:None ~lock:None ~access:`Write = Soft_keys.Soft_ok);
  check "still free" true
    (Soft_keys.access s ~obj_id:1 ~tid:1 ~section:(Some 20) ~lock:(Some 2) ~access:`Write
    = Soft_keys.Soft_ok)

(* {1 Key_assign saturation: the full-table decisions} *)

(* Put every data key under protection (one object each, recorded in
   the somap under its holder's section) and, unless [skip] says
   otherwise, under a live holder too. *)
let saturate ?(skip = fun _ -> false) ka ksmap domains somap =
  List.iteri
    (fun i key ->
      Domain_state.set domains ~obj_id:(100 + i) (Domain_state.Read_write key);
      Somap.record somap ~section:(20 + i) ~obj_id:(100 + i) Somap.Needs_write;
      if not (skip i) then Ksmap.acquire ksmap key (holder ~section:(20 + i) ~lock:i i))
    (Key_assign.available_keys ka)

let test_assign_saturation_share () =
  let ka, ksmap, domains, somap = assign_env () in
  saturate ka ksmap domains somap;
  Somap.record somap ~section:10 ~obj_id:500 Somap.Needs_write;
  match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:50 ~section:10 with
  | Key_assign.Share k ->
    check "shared key is a data key" true (List.mem k (Key_assign.available_keys ka));
    check "shared key is genuinely held" true (Ksmap.holders ksmap k <> [])
  | d ->
    Alcotest.failf "expected Share at full saturation, got %s"
      (Format.asprintf "%a" Key_assign.pp_decision d)

let test_assign_saturation_recycle () =
  (* One holder short of saturation: the single unheld key must be
     recycled — sharing is strictly a last resort. *)
  let ka, ksmap, domains, somap = assign_env () in
  let spare_idx = 7 in
  saturate ~skip:(fun i -> i = spare_idx) ka ksmap domains somap;
  let spare = List.nth (Key_assign.available_keys ka) spare_idx in
  Domain_state.set domains ~obj_id:300 (Domain_state.Read_write spare);
  match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:50 ~section:10 with
  | Key_assign.Recycle (k, objs) ->
    check_int "the single unheld key" spare k;
    check "every protected object demoted" true
      (List.sort compare objs
      = List.sort compare (Domain_state.objects_with_key domains spare))
  | d ->
    Alcotest.failf "expected Recycle of the unheld key, got %s"
      (Format.asprintf "%a" Key_assign.pp_decision d)

let test_assign_saturation_soft_spill () =
  (* The section 8 fallback at the sharing moment: [choose] still says
     Share, but with [software_fallback] on the detector pools the
     object instead of force-acquiring — conflicts on it are caught in
     the pool while the saturated key table is left untouched. *)
  let config = { Config.default with Config.software_fallback = true } in
  let ka = Key_assign.create config in
  let ksmap = Ksmap.create () in
  let domains = Domain_state.create () in
  let somap = Somap.create () in
  saturate ka ksmap domains somap;
  (match Key_assign.choose ka ~ksmap ~domains ~somap ~tid:50 ~section:10 with
  | Key_assign.Share _ -> ()
  | d ->
    Alcotest.failf "expected Share at full saturation, got %s"
      (Format.asprintf "%a" Key_assign.pp_decision d));
  let soft = Soft_keys.create () in
  Soft_keys.add_object soft ~obj_id:500;
  check "spilled object pooled" true (Soft_keys.mem soft ~obj_id:500);
  check "spill claims no data key" true
    (List.for_all
       (fun k -> not (List.mem 500 (Domain_state.objects_with_key domains k)))
       (Key_assign.available_keys ka));
  check "spiller's write claims in the pool" true
    (Soft_keys.access soft ~obj_id:500 ~tid:50 ~section:(Some 10) ~lock:(Some 9) ~access:`Write
    = Soft_keys.Soft_ok);
  (match
     Soft_keys.access soft ~obj_id:500 ~tid:3 ~section:(Some 23) ~lock:(Some 3) ~access:`Write
   with
  | Soft_keys.Soft_conflict [ h ] -> check_int "conflict blames the pool holder" 50 h.Ksmap.tid
  | _ -> Alcotest.fail "expected a soft conflict on the spilled object");
  check "key table still fully held after the spill" true
    (List.for_all (fun k -> Ksmap.holders ksmap k <> []) (Key_assign.available_keys ka))

(* {1 Key assignment properties} *)

let assign_state_gen =
  QCheck.Gen.(
    let* keys = int_range 1 13 in
    (* Per data key: held by a thread (Some tid) or not, plus how many
       objects it protects. *)
    let* key_states = list_size (return keys) (pair (opt (int_range 0 3)) (int_range 0 3)) in
    return (keys, key_states))

let assign_decision_prop =
  QCheck.Test.make ~name:"key assignment decisions respect the rules" ~count:400
    (QCheck.make ~print:(fun _ -> "<state>") assign_state_gen)
    (fun (keys, key_states) ->
      let config = { Config.default with Config.data_keys = keys } in
      let ka = Key_assign.create config in
      let ksmap = Ksmap.create () in
      let domains = Domain_state.create () in
      let somap = Somap.create () in
      let next_obj = ref 100 in
      List.iteri
        (fun i (held_by, objects) ->
          let key = List.nth (Key_assign.available_keys ka) i in
          for _ = 1 to objects do
            Domain_state.set domains ~obj_id:!next_obj (Domain_state.Read_write key);
            incr next_obj
          done;
          match held_by with
          | Some tid -> Ksmap.acquire ksmap key (holder ~section:(20 + tid) ~lock:tid tid)
          | None -> ())
        key_states;
      let faulter = 9 (* holds nothing *) in
      let decision = Key_assign.choose ka ~ksmap ~domains ~somap ~tid:faulter ~section:10 in
      let unassigned_exists =
        List.exists
          (fun key ->
            Ksmap.holders ksmap key = [] && Domain_state.objects_with_key domains key = [])
          (Key_assign.available_keys ka)
      in
      let unheld_exists =
        List.exists (fun key -> Ksmap.holders ksmap key = []) (Key_assign.available_keys ka)
      in
      match decision with
      | Key_assign.Reuse _ -> false (* the faulter holds nothing *)
      | Key_assign.Fresh key ->
        unassigned_exists
        && Ksmap.holders ksmap key = []
        && Domain_state.objects_with_key domains key = []
      | Key_assign.Recycle (key, objs) ->
        (not unassigned_exists)
        && Ksmap.holders ksmap key = []
        && List.sort compare objs
           = List.sort compare (Domain_state.objects_with_key domains key)
      | Key_assign.Share _ -> not unheld_exists)

let () =
  Alcotest.run "kard_core_maps"
    [ ( "domains",
        [ Alcotest.test_case "default and migration" `Quick test_domain_default_and_migration;
          Alcotest.test_case "key index" `Quick test_domain_key_index;
          Alcotest.test_case "counts" `Quick test_domain_counts ] );
      ( "section_object_map",
        [ Alcotest.test_case "record/lookup" `Quick test_somap_record_lookup;
          Alcotest.test_case "write sticky" `Quick test_somap_write_sticky;
          Alcotest.test_case "reverse index" `Quick test_somap_reverse_index ] );
      ( "key_section_map",
        [ Alcotest.test_case "exclusive write" `Quick test_ksmap_exclusive_write;
          Alcotest.test_case "shared read" `Quick test_ksmap_shared_read;
          Alcotest.test_case "release and timestamp" `Quick test_ksmap_release_and_timestamp;
          Alcotest.test_case "upgrade" `Quick test_ksmap_upgrade;
          Alcotest.test_case "force acquire (sharing)" `Quick test_ksmap_force_acquire;
          Alcotest.test_case "active sections" `Quick test_ksmap_sections ] );
      ( "key_assign",
        [ Alcotest.test_case "rule 1: reuse" `Quick test_assign_reuse_rule;
          Alcotest.test_case "rule 2: fresh" `Quick test_assign_fresh_rule;
          Alcotest.test_case "rule 3a: recycle" `Quick test_assign_recycle_rule;
          Alcotest.test_case "rule 3b: share" `Quick test_assign_share_rule;
          Alcotest.test_case "key budget" `Quick test_assign_key_budget;
          Alcotest.test_case "stats" `Quick test_assign_stats;
          Alcotest.test_case "saturation: recycle the one unheld key" `Quick
            test_assign_saturation_recycle;
          Alcotest.test_case "saturation: share when all keys held" `Quick
            test_assign_saturation_share;
          Alcotest.test_case "saturation: soft pool takes the spill" `Quick
            test_assign_saturation_soft_spill ] );
      ("key_assign properties", [ QCheck_alcotest.to_alcotest assign_decision_prop ]);
      ( "soft_keys",
        [ Alcotest.test_case "pool membership" `Quick test_soft_pool_membership;
          Alcotest.test_case "exclusive write" `Quick test_soft_exclusive_write;
          Alcotest.test_case "shared read" `Quick test_soft_shared_read;
          Alcotest.test_case "release" `Quick test_soft_release;
          Alcotest.test_case "outside section" `Quick test_soft_outside_section ] ) ]
